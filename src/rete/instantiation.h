#ifndef SOREL_RETE_INSTANTIATION_H_
#define SOREL_RETE_INSTANTIATION_H_

#include <vector>

#include "lang/compiled_rule.h"
#include "wm/wme.h"

namespace sorel {

/// One regular instantiation's matched WMEs, indexed by token position
/// (i.e., by positive CE).
using Row = std::vector<WmePtr>;

/// A conflict-set resident: either a regular instantiation (one row) or a
/// set-oriented instantiation (many rows, §4.1). SOIs are *live* views into
/// the S-node's γ-memory — "updates to an active SOI ... transparently
/// update the SOI in the conflict set" (§5) — so rows are collected fresh
/// when the instantiation fires.
class InstantiationRef {
 public:
  virtual ~InstantiationRef() = default;

  virtual const CompiledRule& rule() const = 0;

  /// Appends the current rows (a snapshot safe to iterate while WM mutates).
  virtual void CollectRows(std::vector<Row>* out) const = 0;

  /// Time tags for LEX recency, sorted descending. For an SOI these are the
  /// tags of its most recent member row.
  virtual std::vector<TimeTag> RecencyTags() const = 0;

  /// Time tag of the WME matching the first CE (for MEA).
  virtual TimeTag FirstCeTag() const = 0;
};

/// Lexicographic comparison of descending recency tag lists; on a common
/// prefix the longer list dominates (OPS5 LEX). Returns <0, 0, >0.
int CompareRecencyTags(const std::vector<TimeTag>& a,
                       const std::vector<TimeTag>& b);

}  // namespace sorel

#endif  // SOREL_RETE_INSTANTIATION_H_
