#ifndef SOREL_RETE_NETWORK_H_
#define SOREL_RETE_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/status.h"
#include "lang/compiled_rule.h"
#include "lang/rule_base.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rete/columnar.h"
#include "rete/conflict_set.h"
#include "rete/matcher.h"
#include "rete/token.h"
#include "wm/working_memory.h"

namespace sorel {

class ReteMatcher;
class ThreadPool;

/// Construction-time options for the Rete matcher.
struct ReteOptions {
  /// Hash-index alpha memories and beta output memories on their equality
  /// join tests (Doorenbos-style), so joins probe one bucket instead of
  /// scanning the whole memory. Off restores the seed's linear scans —
  /// kept as the ablation baseline for bench_fig3_snode and
  /// bench_workload_seating.
  bool use_indexed_joins = true;
  /// Worker pool for parallel ChangeBatch propagation (borrowed, may be
  /// null). With a pool, OnBatch runs the shared alpha phase sequentially
  /// and fans the per-rule beta replays out as pool tasks; conflict-set
  /// sends are buffered per rule and merged deterministically, so the
  /// observable behavior stays bit-identical to the sequential path.
  ThreadPool* pool = nullptr;
  /// Intra-rule parallelism threshold (0 disables). When a single join
  /// scan — a right-activation probing one node's candidate tokens, a
  /// left-activation probing an alpha memory, or a negative node's blocker
  /// count — faces at least this many candidates, the pure join-test
  /// evaluations fork into parallel slices on `pool`, and the matching
  /// candidates are then applied (token creation, propagation, sink and
  /// conflict-set sends) on the forking thread in exact scan order. Only
  /// side-effect-free predicate evaluation leaves the owning thread, so
  /// traces, conflict sets, and counters other than the split/slice stats
  /// stay bit-identical to the unsplit path. Requires `pool`.
  int intra_split_min = 0;
  /// Observability hooks (borrowed, may be null): the registry gets the
  /// rete.* counters as views (plus the matcher's reset hook); the tracer
  /// receives rule_replay events on the parallel batch path.
  obs::MetricRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  /// Tear down removal batches with bulk tree deletion: tokens are sink-
  /// detached and dead-marked during the tree walk, then every touched
  /// memory, sibling list, and anchor vector is compacted in one stable
  /// pass per flush (see docs/INTERNALS.md, "Removal path & memory
  /// layout"). Off restores the per-token erase(remove(...)) cascades —
  /// the ablation baseline the removal property test cross-checks.
  bool bulk_removal = true;
  /// Tokens per slab in the per-shard token arenas; 0 allocates tokens
  /// individually on the heap (ablation baseline) while keeping the
  /// per-shard free lists.
  int token_slab = static_cast<int>(TokenArena::kDefaultSlabSize);
  /// Columnar (struct-of-arrays) alpha memories: items live in parallel
  /// tag/WME/liveness columns (AlphaColumns) with hash indexes mapping join
  /// keys to row-id lists, so join probes scan contiguous arrays and
  /// removal tombstones compact in one stable pass. Off restores the
  /// array-of-WmePtr layout — the ablation baseline; both layouts produce
  /// bit-identical traces, conflict sets, and counters (pinned by
  /// removal_property_test and the differential fuzzer).
  bool soa_memories = true;
  /// Shared compiled topology (borrowed, may be null). When set — an Engine
  /// bound to a CompiledRuleBase — AddRule resolves each CE's alpha pattern
  /// by pointer out of the topology instead of copying tests into the
  /// memory, so N sessions share one immutable pattern set and each
  /// AlphaMemory holds only its private item storage. Null keeps the
  /// self-contained path: the matcher derives (and owns) patterns from the
  /// conditions it sees. Both paths dedup structurally in first-use order,
  /// so network shape and traces are bit-identical.
  const NetworkTopology* topology = nullptr;
};

/// Hot-path counters for the match network (see docs/INTERNALS.md,
/// "Indexed memories & match statistics").
struct ReteStats {
  /// Candidate (token, WME) pairs whose join tests were evaluated.
  uint64_t join_attempts = 0;
  /// Hash-bucket lookups on the indexed paths.
  uint64_t index_probes = 0;
  uint64_t tokens_created = 0;
  uint64_t tokens_deleted = 0;
  /// Right-activation calls into beta nodes (one per alpha successor per
  /// propagated change — the per-change propagation cost).
  uint64_t right_activations = 0;
  /// ChangeBatch deliveries handled natively (batched_wm on).
  uint64_t batches = 0;
  /// Removal runs whose alpha exits were grouped (no negative successors;
  /// sequential path only — the parallel replay subsumes the grouping).
  uint64_t grouped_removals = 0;
  /// NewToken requests served from the token free list instead of the heap.
  uint64_t token_pool_hits = 0;
  /// Batches propagated through the worker pool.
  uint64_t parallel_batches = 0;
  /// Per-rule replay tasks dispatched across those batches.
  uint64_t replay_tasks = 0;
  /// Join scans whose candidate set met ReteOptions::intra_split_min and
  /// were evaluated as parallel slices (intra-rule parallelism).
  uint64_t intra_splits = 0;
  /// Slice tasks dispatched across those splits.
  uint64_t intra_slice_tasks = 0;
  /// Deferred-compaction flushes on the bulk removal path (one per removal
  /// run / per-WME removal / shard-replay flush point; 0 with
  /// ReteOptions::bulk_removal off).
  uint64_t bulk_deletes = 0;
  /// Fresh token slabs allocated across the per-shard arenas.
  uint64_t arena_slabs = 0;
};

/// Terminal consumer of a rule's tokens: a P-node for regular rules or an
/// S-node (src/core) for set-oriented rules.
class ReteSink {
 public:
  virtual ~ReteSink() = default;
  /// `added` follows the sign of the token (+/- in the paper's Figure 3).
  virtual void OnToken(Token* token, bool added) = 0;
  /// Bracket a ChangeBatch: between Begin and End the sink may defer its
  /// conflict-set decisions (the S-node defers γ-memory sends and `:test`
  /// evaluation to End — one re-eval per touched SOI instead of one per
  /// member token). Defaults are no-ops (P-nodes stay eager).
  virtual void OnBatchBegin() {}
  virtual void OnBatchEnd() {}
};

class AlphaMemory;
class BetaNode;

/// One rule's private slice of the match state: its beta chain, sink, and
/// token anchoring. Everything a shard owns is touched by exactly one
/// replay task during parallel propagation, so workers need no locks.
struct RuleShard {
  const CompiledRule* rule = nullptr;
  std::vector<BetaNode*> chain;
  ReteSink* sink = nullptr;
  /// Position in rule-registration order (index into ReteMatcher::shards_);
  /// the deterministic-merge tie-break across rules.
  size_t ordinal = 0;
  /// One tokens_by_wme entry: the tokens anchored on a WME plus the bulk-
  /// removal dirty flag (dead entries pending compaction). An entry exists
  /// iff it holds tokens — eager erasure, checked by
  /// ReteMatcher::CheckAnchorInvariants in debug builds.
  struct AnchorList {
    std::vector<TokenId> tokens;  // ids into this shard's arena
    bool dirty = false;
  };
  /// Tokens whose own WME is the keyed one, this rule's chain only — the
  /// per-rule half of tree-based removal.
  std::unordered_map<TimeTag, AnchorList> tokens_by_wme;
  /// Slab storage and free list for every token of this rule's chain.
  /// Shard-owned so replay tasks recycle without locks and in the same
  /// order as the sequential path.
  TokenArena arena;
  /// Whether the chain contains a negative node (set by AddRule); removal
  /// replays must flush deletions per WME in that case to preserve the
  /// per-WME unblocking interleaving.
  bool has_negative = false;
  /// This rule's beta nodes grouped by alpha memory, each group in
  /// successor (newest-first) order — the replay's right-activation
  /// schedule. Relative order within one rule never changes (other rules
  /// only prepend to the shared successor lists), so this is computed once
  /// at AddRule.
  std::vector<std::pair<AlphaMemory*, std::vector<BetaNode*>>> amem_nodes;
  /// Dummy parent of this rule's level-1 tokens. Per-shard (not per
  /// matcher) so concurrent replays never push into a shared `children`
  /// vector.
  Token root;

  const std::vector<BetaNode*>* SuccessorsOf(const AlphaMemory* am) const {
    for (const auto& [mem, nodes] : amem_nodes) {
      if (mem == am) return &nodes;
    }
    return nullptr;
  }
};

/// An alpha memory: the WMEs of one class passing one set of intra-WME
/// tests (constants, disjunctions, and same-WME variable consistency).
/// Shared across rules/CEs with identical tests (the Rete "shared tests"
/// property the paper preserves, §5). The tests themselves live in an
/// immutable `AlphaPattern` (borrowed — owned by the bound
/// CompiledRuleBase's topology, or by the matcher when self-contained);
/// the memory owns only the mutable per-session item storage.
///
/// Two storage layouts (ReteOptions::soa_memories):
///  - AoS (off): `items_`, a vector<WmePtr> erased in place on removal;
///    index buckets own vector<WmePtr> copies.
///  - SoA (on): `cols_`, parallel tag/WME/liveness columns with tombstoned
///    removal and threshold-triggered stable compaction; index buckets map
///    join keys to row-id lists over those columns, and each index keeps
///    the join-key values it extracted per row as contiguous `Value`
///    columns so compaction rebuilds buckets without dereferencing WMEs.
/// Scans go through `Items()`/`Probe()`, which return layout-neutral
/// AlphaSpans; live rows keep insertion order in both layouts, so every
/// observable (traces, conflict sets, counters) is bit-identical.
class AlphaMemory {
 public:
  /// Hash index over the memory's items keyed by a field-value tuple;
  /// shared by every successor whose equality join tests name the same
  /// WME-side fields. Buckets preserve item insertion order, matching a
  /// linear scan of the memory.
  class Index {
   public:
    Index(std::vector<int> fields, bool soa)
        : fields_(std::move(fields)), soa_(soa) {
      if (soa_) key_cols_.resize(fields_.size());
    }

    JoinKey KeyOf(const Wme& wme) const;
    const std::vector<int>& fields() const { return fields_; }

   private:
    friend class AlphaMemory;

    // --- AoS mode ---
    /// The bucket for `key`, or nullptr if empty.
    const std::vector<WmePtr>* Find(const JoinKey& key) const;
    void Insert(const WmePtr& wme);
    void Remove(const WmePtr& wme);
    /// Removes every WME in `wmes` (also given as a pointer set in
    /// `victims`), compacting each touched bucket once.
    void RemoveBatch(const std::vector<WmePtr>& wmes,
                     const std::unordered_set<const Wme*>& victims);

    // --- SoA mode ---
    /// The row-id bucket for `key`, or nullptr; may contain dead rows
    /// (callers filter with AlphaColumns::IsLive).
    const std::vector<uint32_t>* FindRows(const JoinKey& key) const;
    /// Registers row `row` (just appended to the columns): extracts the
    /// key fields into the per-field value columns and buckets the row id.
    /// `live` is false only when seeding a late-created index over a
    /// tombstoned row — the key columns get nil padding and no bucket
    /// entry.
    void InsertRow(const Wme* wme, uint32_t row, bool live);
    /// Follows an AlphaColumns::Compact: compacts the key-value columns by
    /// `remap` (a contiguous scan — no WME derefs) and rebuilds the row
    /// buckets, preserving ascending-row (= insertion) order per bucket.
    void Rekey(const std::vector<uint32_t>& remap, size_t new_rows);

    std::vector<int> fields_;
    bool soa_ = false;
    std::unordered_map<JoinKey, std::vector<WmePtr>, JoinKeyHash> buckets_;
    std::unordered_map<JoinKey, std::vector<uint32_t>, JoinKeyHash>
        row_buckets_;
    /// One pre-extracted `Value` column per indexed field, row-aligned
    /// with the owning memory's columns (nil for dead rows).
    std::vector<std::vector<Value>> key_cols_;
  };

  AlphaMemory(const AlphaPattern* pattern, bool soa);

  /// True if `wme` (already of the right class) passes all tests.
  bool Accepts(const Wme& wme) const { return pattern_->Accepts(wme); }

  /// True if this memory can be shared with `cond`'s alpha tests.
  bool SameTests(const CompiledCondition& cond) const {
    return pattern_->Matches(cond);
  }

  /// The immutable test signature this memory instantiates.
  const AlphaPattern* pattern() const { return pattern_; }

  /// The index keyed on `fields`, creating (and seeding from the current
  /// items) if absent.
  Index* GetOrCreateIndex(const std::vector<int>& fields);

  /// Layout-neutral view of every item (SoA spans include tombstoned rows;
  /// scan loops filter with AlphaSpan::Live).
  AlphaSpan Items() const {
    return soa_ ? AlphaSpan(&cols_, nullptr) : AlphaSpan(&items_);
  }
  /// Layout-neutral view of `index`'s bucket for `key` (empty span if the
  /// bucket does not exist).
  AlphaSpan Probe(const Index* index, const JoinKey& key) const;
  /// Live item count (identical across layouts).
  size_t num_items() const { return soa_ ? cols_.live() : items_.size(); }
  /// Copies the live items, in insertion order, into `out`.
  void SnapshotItems(std::vector<WmePtr>* out) const;

  SymbolId cls() const { return pattern_->cls; }
  size_t num_indexes() const { return indexes_.size(); }
  bool columnar() const { return soa_; }
  /// Bytes held by the item storage and indexes (the `rete.alpha_bytes`
  /// gauge; AoS counts items_ + bucket copies, SoA the columns + row
  /// buckets + key columns).
  size_t MemoryBytes() const;

 private:
  friend class ReteMatcher;

  /// Appends an item, keeping every index in sync.
  void AddItem(const WmePtr& wme);
  /// Removes an item (stable order in AoS, tombstone in SoA), returning
  /// whether it was present — callers assert presence, the
  /// exactly-once-per-batch discipline.
  bool RemoveItem(const WmePtr& wme);
  /// Removes every WME in `wmes` in one pass (AoS: one stable compaction
  /// of the items and each touched bucket; SoA: tombstones), returning how
  /// many were found.
  size_t RemoveItems(const std::vector<WmePtr>& wmes);
  /// SoA: runs a compaction pass (columns + every index) once enough
  /// tombstones accumulate. Callers must not hold row ids across it.
  void MaybeCompact();

  /// Borrowed immutable test signature; outlives the memory (owned by the
  /// shared rule base's topology or by the matcher's owned_patterns_).
  const AlphaPattern* pattern_;
  bool soa_ = false;
  std::vector<WmePtr> items_;  // AoS layout
  AlphaColumns cols_;          // SoA layout
  std::vector<uint32_t> remap_scratch_;
  std::vector<std::unique_ptr<Index>> indexes_;
  /// Right-activation targets, newest-first (Doorenbos's ordering, which
  /// avoids duplicate tokens when one WME feeds several CEs of a rule).
  std::vector<class BetaNode*> successors_;
};

/// A node of the beta network: a join node or a negative node. Each rule
/// compiles to a linear chain of beta nodes ending in a sink.
class BetaNode {
 public:
  BetaNode(ReteMatcher* net, AlphaMemory* amem, BetaNode* parent,
           const CompiledCondition* cond);
  virtual ~BetaNode() = default;

  /// A new token arrived from the upstream node.
  virtual void OnParentToken(Token* t) = 0;
  /// `wme` was added to / removed from this node's alpha memory.
  virtual void RightActivate(const WmePtr& wme, bool added) = 0;
  /// Called by per-token deletion; detaches `t` and compacts it out of the
  /// output memory immediately.
  void OnOwnedTokenDeleted(Token* t);
  /// The detach half of token deletion: unindexes `t`, updates node-local
  /// state, and notifies the sink if `t` had reached it — without touching
  /// `outputs_`, whose compaction the bulk removal path defers to one
  /// stable pass per flush (ReteMatcher::FlushDeletions).
  virtual void DetachToken(Token* t) = 0;
  /// Called by the matcher right after `t` entered this node's output
  /// memory; maintains the node-specific token indexes.
  virtual void OnTokenRegistered(Token* t);
  /// Whether `t` (one of this node's outputs) is visible downstream. Left
  /// indexes hold *all* of a parent's outputs in creation order — the same
  /// relative order a linear scan of the parent's memory sees — and filter
  /// with this at probe time, so indexed and linear joins produce tokens
  /// in the same sequence.
  virtual bool IsOutputActive(const Token* t) const;

  void set_child(BetaNode* child) { child_ = child; }
  void set_sink(ReteSink* sink) { sink_ = sink; }
  AlphaMemory* amem() const { return amem_; }
  const CompiledCondition& cond() const { return *cond_; }
  /// True when this node joins through hash indexes (equality tests exist
  /// and the matcher runs with ReteOptions::use_indexed_joins).
  bool indexed() const { return indexed_; }

 protected:
  friend class ReteMatcher;  // token registration touches outputs_

  /// Evaluates this node's join tests for `wme` against the token chain.
  bool Matches(const Token* t, const Wme& wme) const;
  /// Evaluates only the non-equality join tests (the equality ones are
  /// guaranteed by the index bucket).
  bool MatchesResidual(const Token* t, const Wme& wme) const;
  /// The WME-side key of this node's equality join tests.
  JoinKey WmeKey(const Wme& wme) const;
  /// The token-side key; false if a referenced WME is missing from the
  /// chain (such a token can never satisfy the equality tests).
  bool TokenKey(const Token* t, JoinKey* out) const;
  /// Adds/removes an upstream token to this node's left index (called by
  /// the parent when its active output set changes). No-ops when the node
  /// is not indexed.
  void IndexLeftToken(Token* t);
  void UnindexLeftToken(Token* t);
  /// Drops `t` from the child's left index; DetachToken overrides call
  /// this (they cannot touch the child's protected members directly) while
  /// the token chain is still intact.
  void UnindexFromChild(Token* t);
  /// Hands a token to the downstream node / sink.
  void PropagateDown(Token* t);

  /// The parent's output memory — the candidate list of an unindexed
  /// left-side scan. Defined here (not in the derived nodes) so it is the
  /// base class accessing its own protected member on another instance,
  /// which C++ permits where `parent_->outputs_` from a derived class
  /// would not be.
  const std::vector<TokenId>& ParentOutputs() const {
    return parent_->outputs_;
  }

  /// Resolves an output/child/anchor id against this node's shard arena.
  Token* TokenAt(TokenId id) const { return shard_->arena.At(id); }

  ReteMatcher* net_;
  AlphaMemory* amem_;
  BetaNode* parent_;  // null for the first node (root token upstream)
  const CompiledCondition* cond_;
  BetaNode* child_ = nullptr;
  ReteSink* sink_ = nullptr;
  /// This node's token memory as 32-bit ids into the shard arena (half the
  /// entry size of Token*; FlushDeletions compacts a vector of ints).
  std::vector<TokenId> outputs_;
  /// The rule shard this node belongs to (set by AddRule).
  RuleShard* shard_ = nullptr;
  /// Current position in amem_->successors_ (maintained by the matcher on
  /// rule add/remove); the within-alpha-memory merge tie-break.
  int succ_ordinal_ = 0;
  /// Bulk removal: `outputs_` holds dead tokens pending compaction (the
  /// node is already queued in the current DeletionScratch).
  bool compact_pending_ = false;

  // --- indexed-join state (unused when !indexed_) ---
  bool indexed_ = false;
  /// This node's amem items bucketed by the equality WME-side fields.
  AlphaMemory::Index* aindex_ = nullptr;
  /// The parent's active outputs bucketed by this node's token-side
  /// equality values (empty for the first node — the root token is the
  /// only upstream).
  TokenIndex left_index_;
};

/// Positive CE: joins upstream tokens with alpha memory WMEs.
class JoinNode : public BetaNode {
 public:
  using BetaNode::BetaNode;
  void OnParentToken(Token* t) override;
  void RightActivate(const WmePtr& wme, bool added) override;
  void DetachToken(Token* t) override;
};

/// Negated CE: propagates upstream tokens that have *no* match in the alpha
/// memory; maintains a blocker count per token.
class NegativeNode : public BetaNode {
 public:
  using BetaNode::BetaNode;
  void OnParentToken(Token* t) override;
  void RightActivate(const WmePtr& wme, bool added) override;
  void DetachToken(Token* t) override;
  void OnTokenRegistered(Token* t) override;
  bool IsOutputActive(const Token* t) const override {
    return t->propagated;
  }

 private:
  int CountBlockers(const Token* t) const;
  void Propagate(Token* t);
  void Retract(Token* t);

  /// All of this node's own output tokens (propagated or not) bucketed by
  /// the token-side equality values, so RightActivate touches only the
  /// tokens whose blocker count the WME can change.
  TokenIndex own_index_;
};

/// P-node: terminal for regular (non-set-oriented) rules; owns one
/// conflict-set instantiation per complete token.
class PNode : public ReteSink {
 public:
  PNode(const CompiledRule* rule, ConflictSet* cs) : rule_(rule), cs_(cs) {}
  ~PNode() override;

  void OnToken(Token* token, bool added) override;

  size_t size() const { return insts_.size(); }

 private:
  class RegularInst;
  const CompiledRule* rule_;
  ConflictSet* cs_;
  std::unordered_map<Token*, std::unique_ptr<InstantiationRef>> insts_;
};

/// Builds the terminal node for a rule. The engine supplies a factory that
/// creates a PNode for regular rules and an S-node for set-oriented ones
/// (keeping this library independent of src/core).
using SinkFactory =
    std::function<std::unique_ptr<ReteSink>(const CompiledRule&)>;

/// The extended Rete network of §5: shared alpha memories, per-rule join
/// chains, negative nodes, and pluggable terminals.
///
/// Threading model (ReteOptions::pool set): OnBatch splits into three
/// phases. Phase A (coordinator) walks the batch once, inserting every add
/// into its alpha memories and recording a per-change replay plan; removed
/// WMEs stay physically present but are marked in `replay_removed_`. Phase
/// B fans one task per touched rule shard out to the pool; each task
/// replays the change sequence against its own beta chain, with all alpha
/// reads filtered through `ReplayVisibleTag` so every scan sees exactly the
/// memory contents the sequential interleaving would have seen at that
/// change. Conflict-set sends are buffered per shard with deterministic
/// stamps. Phase C (coordinator) merges stats, applies the conflict-set
/// deltas in the sequential order, performs the physical alpha exits, and
/// runs the sinks' batch-end flushes — bit-identical to `pool == nullptr`.
class ReteMatcher : public Matcher {
 public:
  /// `sink_factory` may be null, in which case every rule gets a plain
  /// PNode (set-oriented rules are then rejected by AddRule).
  ReteMatcher(WorkingMemory* wm, ConflictSet* cs, SinkFactory sink_factory,
              ReteOptions options = {});
  ~ReteMatcher() override;

  ReteMatcher(const ReteMatcher&) = delete;
  ReteMatcher& operator=(const ReteMatcher&) = delete;

  Status AddRule(const CompiledRule* rule) override;
  Status RemoveRule(const CompiledRule* rule) override;
  ConflictSet& conflict_set() override { return *cs_; }

  void OnAdd(const WmePtr& wme) override;
  void OnRemove(const WmePtr& wme) override;
  /// Native batched propagation: brackets every sink with
  /// OnBatchBegin/OnBatchEnd, replays the changes in staging order (the
  /// ordering per-WME listeners would see), and groups consecutive removals'
  /// alpha-memory exits when no negative node is watching (a negative
  /// successor needs the per-WME unblocking order to stay bit-identical).
  /// With a worker pool configured, the per-rule replays run concurrently
  /// (see the class comment).
  void OnBatch(const ChangeBatch& batch) override;

  // --- token management (used by beta nodes) ---
  Token* NewToken(BetaNode* owner, Token* parent, WmePtr wme);
  void DeleteTokenTree(Token* t);

  // --- introspection for tests and benches ---
  /// Prints the network topology: alpha memories (class, tests, items,
  /// successors) and each rule's beta chain with memory sizes.
  void DumpNetwork(std::ostream& out, const SymbolTable& symbols) const;
  size_t num_alpha_memories() const;
  size_t live_tokens() const { return live_tokens_; }
  size_t num_beta_nodes() const { return nodes_.size(); }
  /// Recyclable tokens currently parked across the per-shard arenas.
  size_t free_tokens() const;

  const ReteOptions& options() const { return options_; }
  const ReteStats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  friend class BetaNode;  // nodes bump stats through net_
  friend class JoinNode;
  friend class NegativeNode;

  /// Per-task replay state, installed in `tls_replay_` while a shard task
  /// runs. Everything a worker would otherwise write to shared matcher
  /// state (counters, live-token accounting) accumulates here and is
  /// merged by the coordinator after the join; token recycling goes
  /// straight to the shard's own arena, which no other task touches.
  struct ReplayCtx {
    ReteMatcher* net = nullptr;
    RuleShard* shard = nullptr;
    ReteStats stats;
    int64_t live_token_delta = 0;
    // Visibility state for the change currently being replayed.
    size_t epoch = 0;
    TimeTag prev_ceiling = 0;
    TimeTag add_ceiling = 0;
    const std::vector<AlphaMemory*>* cur_amems = nullptr;
    size_t cur_amem_ord = 0;
    /// Time tag of the removal change being replayed (0 for adds) — the
    /// replay-task counterpart of ReteMatcher::removing_tag_.
    TimeTag removing_tag = 0;
  };

  /// One batch change's replay plan (phase A output).
  struct ChangeRec {
    /// Alpha memories the change's WME entered (adds, in activation order)
    /// or occupied (removals, in the order ApplyAdd filed them).
    std::vector<AlphaMemory*> amems;
    /// Highest time tag visible before / after this change's add (adds are
    /// tag-monotone within a batch, so a ceiling encodes add visibility).
    TimeTag prev_ceiling = 0;
    TimeTag ceiling = 0;
  };

  /// One in-progress bulk deletion (ReteOptions::bulk_removal): the dead
  /// tokens awaiting recycle plus every container that needs exactly one
  /// stable compaction pass. Sequential paths reuse the matcher's
  /// `scratch_`; each replay task keeps its own (it only ever names
  /// per-shard state, so no synchronization).
  struct DeletionScratch {
    std::vector<Token*> dead;
    /// Nodes whose outputs_ hold dead entries (compact_pending_ set).
    std::vector<BetaNode*> dirty_nodes;
    /// Live parents whose children vector holds dead entries, paired with
    /// the arena those child ids resolve against (the dead children's
    /// shard; the parent itself may be the arena-less shard root).
    std::vector<std::pair<TokenArena*, Token*>> dirty_parents;
    /// tokens_by_wme entries holding dead entries (AnchorList::dirty set).
    std::vector<std::pair<RuleShard*, TimeTag>> dirty_anchors;
    bool empty() const { return dead.empty(); }
  };

  /// One removal batch's grouped alpha exits: victims collected per
  /// memory, then each memory compacted once by Commit(). Commit asserts
  /// every victim was present — ApplyRemove and the grouped run previously
  /// both exited overlapping ranges, masked only because linear RemoveItem
  /// of an absent item was a silent no-op.
  class AlphaExitBatch {
   public:
    void Add(AlphaMemory* am, const WmePtr& wme);
    void Commit();

   private:
    std::unordered_map<AlphaMemory*, std::vector<WmePtr>> exits_;
    std::vector<AlphaMemory*> order_;  // first-touch order, deterministic
  };

  /// The stats sink for the current thread: the replay-task accumulator
  /// during phase B, the matcher's own counters otherwise.
  ReteStats& stats_sink() {
    ReplayCtx* ctx = tls_replay_;
    return (ctx != nullptr && ctx->net == this) ? ctx->stats : stats_;
  }

  /// The replay context installed on this thread for *this* matcher, or
  /// nullptr (sequential paths). Slice-scan forks capture it explicitly:
  /// a pool worker executing a slice task has its own thread-locals, not
  /// the forking replay's.
  ReplayCtx* CurrentReplayCtx() const {
    ReplayCtx* ctx = tls_replay_;
    return (ctx != nullptr && ctx->net == this) ? ctx : nullptr;
  }

  /// Whether the item with time tag `tag` — found in `amem`'s physical
  /// storage — is visible to the replay `ctx` at its current change.
  /// Callers outside a replay (ctx == nullptr) skip the call entirely:
  /// everything physically live is visible. Pure: reads only the context
  /// and `replay_removed_`, which is frozen during phase B — safe from
  /// concurrent slice tasks. Keyed by tag (unique per WME) so columnar
  /// scans check visibility from the contiguous tag column without
  /// touching the WME.
  bool ReplayVisibleTag(TimeTag tag, const AlphaMemory* amem,
                        const ReplayCtx* ctx) const {
    if (tag > ctx->add_ceiling) return false;  // added later in the batch
    if (tag > ctx->prev_ceiling) {
      // The tag belongs to the WME of the change being replayed.
      // Sequential ApplyAdd inserts it into one alpha memory at a time,
      // activating that memory's successors before inserting into the
      // next — so mid-change it is visible only in the memories already
      // entered.
      const std::vector<AlphaMemory*>& amems = *ctx->cur_amems;
      for (size_t i = 0; i <= ctx->cur_amem_ord && i < amems.size(); ++i) {
        if (amems[i] == amem) return true;
      }
      return false;
    }
    if (!replay_removed_.empty()) {
      auto it = replay_removed_.find(tag);
      if (it != replay_removed_.end() && it->second <= ctx->epoch) {
        return false;  // removed at or before the current change
      }
    }
    return true;
  }

  /// True when a join scan over `candidates` qualifies for slice-parallel
  /// evaluation (ReteOptions::intra_split_min reached and a pool exists).
  bool ShouldSplit(size_t candidates) const {
    return options_.intra_split_min > 0 && options_.pool != nullptr &&
           candidates >= static_cast<size_t>(options_.intra_split_min);
  }

  /// Intra-rule slice fork/join: evaluates `eval(i, slice_stats)` for every
  /// i in [0, n) across parallel slice tasks and records each outcome in
  /// `(*hits)[i]`. `eval` must be pure with respect to matcher state — join
  /// tests and visibility checks only; the caller then applies the hits
  /// (token creation, propagation, conflict-set sends) serially in scan
  /// order, which keeps observable behavior bit-identical to the unsplit
  /// scan. Per-slice stats merge into the calling thread's stats sink.
  void ParallelEval(size_t n,
                    const std::function<bool(size_t, ReteStats*)>& eval,
                    std::vector<char>* hits);

  /// The alpha memory for `cond`, creating it if absent. `pattern` is the
  /// shared topology's assignment for this CE (pointer-identity lookup) or
  /// null for self-contained matchers, which dedup structurally and own the
  /// pattern they derive.
  AlphaMemory* GetOrCreateAlpha(const CompiledCondition& cond,
                                const AlphaPattern* pattern);

  /// Shared bodies of OnAdd/OnRemove (also used by the batched path).
  void ApplyAdd(const WmePtr& wme);
  void ApplyRemove(const WmePtr& wme);
  /// Processes `changes[begin, end)` — a run of consecutive removals — with
  /// the alpha-memory exits hoisted ahead of token deletion. Falls back to
  /// per-WME ApplyRemove when a touched alpha has a negative successor.
  void ApplyRemoveRun(const std::vector<WmChange>& changes, size_t begin,
                      size_t end);
  /// Token-tree deletion half of a removal (after the alpha exits): deletes
  /// the WME's anchored tokens shard by shard in registration order.
  void FinishRemove(const WmePtr& wme);

  // --- bulk tree deletion (ReteOptions::bulk_removal) ---
  /// Recursively detaches `t`'s subtree: sinks are notified in the exact
  /// per-token deletion order, tokens are dead-marked, and every touched
  /// container is queued in `s` for one deferred compaction pass.
  void BulkDeleteTree(Token* t, DeletionScratch* s);
  /// BulkDeleteTree over every tree anchored on `tag` in `shard`, erasing
  /// the anchor entry.
  void BulkDeleteAnchored(RuleShard* shard, TimeTag tag, DeletionScratch* s);
  /// Compacts every queued container (stable order) and recycles the dead
  /// tokens into their shards' arenas. Scans must never observe a dead
  /// token: callers flush before any join scan can reach a queued
  /// container (per WME when negative nodes watch the memories, per
  /// removal run / before the next add otherwise).
  void FlushDeletions(DeletionScratch* s);
  /// Debug invariant sweep: no anchor entry is empty, dirty, or holding a
  /// dead token once a batch completes. No-op in release builds.
  void CheckAnchorInvariants() const;

  /// The sequential OnBatch body.
  void OnBatchSequential(const ChangeBatch& batch);
  /// The three-phase parallel OnBatch body (requires options_.pool).
  void OnBatchParallel(const ChangeBatch& batch);
  /// Phase B task: replays the whole change sequence against one shard.
  void ReplayShard(RuleShard* shard, const std::vector<WmChange>& changes,
                   const std::vector<ChangeRec>& plan,
                   ConflictSet::Delta* delta, ReplayCtx* ctx);
  /// Folds a finished task's accumulators into the matcher state.
  void MergeCtx(ReplayCtx* ctx);

  /// Reassigns succ_ordinal_ for every successor of `am` (after an insert
  /// or erase shifted positions).
  static void RenumberSuccessors(AlphaMemory* am);

  WorkingMemory* wm_;
  ConflictSet* cs_;
  SinkFactory sink_factory_;
  std::unordered_map<SymbolId, std::vector<std::unique_ptr<AlphaMemory>>>
      alphas_by_class_;
  /// Patterns this matcher derived itself (options_.topology unset); a
  /// bound matcher borrows the shared topology's patterns instead and
  /// leaves this empty.
  std::vector<std::unique_ptr<AlphaPattern>> owned_patterns_;
  std::vector<std::unique_ptr<BetaNode>> nodes_;
  std::vector<std::unique_ptr<ReteSink>> sinks_;
  /// Per-rule shards, by rule and in registration order.
  std::unordered_map<const CompiledRule*, std::unique_ptr<RuleShard>>
      rule_shards_;
  std::vector<RuleShard*> shards_;
  /// Alpha memories each live WME passed (the shared half of removal).
  std::unordered_map<TimeTag, std::vector<AlphaMemory*>> wme_amems_;
  /// WMEs removed by the in-flight batch (parallel path only): time tag ->
  /// index of its removal change. Physically still in the alpha memories
  /// until phase C; ReplayVisibleTag hides them from later epochs.
  std::unordered_map<TimeTag, size_t> replay_removed_;
  size_t live_tokens_ = 0;
  /// Bulk-deletion scratch of the sequential paths (reused across flushes
  /// to keep its vectors' capacity warm).
  DeletionScratch scratch_;
  /// Time tag of the removal the sequential path is currently applying
  /// (ApplyRemove steps 2–3), stamped onto tokens its unblock cascade
  /// creates (Token::born_of_removal); 0 outside a removal. Replay tasks
  /// carry their own copy in ReplayCtx::removing_tag.
  TimeTag removing_tag_ = 0;
  ReteOptions options_;
  ReteStats stats_;
  /// "phase.match" scope timer, non-null only when the registry has timing
  /// enabled (EngineOptions::enable_timers).
  obs::Timer* match_timer_ = nullptr;
  /// The replay context of the task running on this thread, if any.
  static thread_local ReplayCtx* tls_replay_;
};

}  // namespace sorel

#endif  // SOREL_RETE_NETWORK_H_
