#ifndef SOREL_RETE_COLUMNAR_H_
#define SOREL_RETE_COLUMNAR_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "wm/wme.h"

namespace sorel {

/// Columnar (struct-of-arrays) backing store for an alpha memory: parallel
/// arrays indexed by row id. Rows are appended at the end and killed in
/// place (tombstoned); `Compact` squeezes the dead rows out once enough
/// accumulate and reports the old->new row mapping so hash indexes over row
/// ids can follow.
///
/// Invariants:
///  - live rows keep their relative (insertion) order forever — appends go
///    at the end and Compact is stable — so a scan over live rows visits
///    WMEs in exactly the order the AoS `vector<WmePtr>` would;
///  - `wmes_[row]` is reset at Kill time, the same moment the AoS layout's
///    `erase` drops its reference, so WME block recycling order (and the
///    `wm.wme_pool_hits` counter) is identical across layouts;
///  - `tags_[row]` survives the kill until compaction: removal runs and
///    replay-visibility checks identify rows by time tag alone.
class AlphaColumns {
 public:
  static constexpr uint32_t kNoRow = 0xffffffffu;

  /// Appends a live row; returns its row id.
  uint32_t Append(const WmePtr& w) {
    uint32_t row = static_cast<uint32_t>(tags_.size());
    row_of_.emplace(w->time_tag(), row);
    tags_.push_back(w->time_tag());
    wmes_.push_back(w);
    alive_.push_back(1);
    ++live_;
    return row;
  }

  /// Tombstones the row holding `tag` and drops its WME reference.
  /// Returns the row id, or kNoRow if the tag is not (or no longer) live.
  uint32_t Kill(TimeTag tag) {
    auto it = row_of_.find(tag);
    if (it == row_of_.end()) return kNoRow;
    uint32_t row = it->second;
    row_of_.erase(it);
    assert(alive_[row] != 0);
    alive_[row] = 0;
    wmes_[row].reset();
    --live_;
    return row;
  }

  /// Total rows including tombstones (the physical column length).
  size_t rows() const { return tags_.size(); }
  size_t live() const { return live_; }
  size_t dead() const { return tags_.size() - live_; }

  bool IsLive(uint32_t row) const { return alive_[row] != 0; }
  TimeTag Tag(uint32_t row) const { return tags_[row]; }
  const WmePtr& Ptr(uint32_t row) const { return wmes_[row]; }

  /// Whether enough tombstones have piled up to be worth a compaction
  /// pass: at least a slab's worth dead and at least half the rows.
  bool NeedsCompaction() const {
    size_t d = dead();
    return d >= 64 && d * 2 >= rows();
  }

  /// Squeezes out dead rows (stable). Fills `remap` with old-row -> new-row
  /// (kNoRow for dead rows) so the caller can rewrite its indexes. Must not
  /// run while any scan holds row ids.
  void Compact(std::vector<uint32_t>* remap);

  size_t MemoryBytes() const {
    return tags_.capacity() * sizeof(TimeTag) +
           wmes_.capacity() * sizeof(WmePtr) +
           alive_.capacity() * sizeof(uint8_t) +
           row_of_.size() * (sizeof(TimeTag) + sizeof(uint32_t));
  }

 private:
  std::vector<WmePtr> wmes_;    // null for dead rows
  std::vector<TimeTag> tags_;   // valid for dead rows until compaction
  std::vector<uint8_t> alive_;  // 1 = live, 0 = tombstone
  std::unordered_map<TimeTag, uint32_t> row_of_;  // live rows only
  size_t live_ = 0;
};

/// A read-only view over one alpha scan's worth of items, abstracting over
/// the two layouts: an AoS `vector<WmePtr>` span, or a set of rows in an
/// AlphaColumns store (all rows, or an index bucket's row-id list). Join
/// loops iterate positions [0, size()) and use Live/Tag/Ptr; the AoS side
/// is always fully live.
class AlphaSpan {
 public:
  AlphaSpan() = default;
  explicit AlphaSpan(const std::vector<WmePtr>* aos) : aos_(aos) {}
  AlphaSpan(const AlphaColumns* cols, const std::vector<uint32_t>* rows)
      : cols_(cols), rows_(rows) {}

  size_t size() const {
    if (aos_ != nullptr) return aos_->size();
    if (cols_ == nullptr) return 0;
    return rows_ != nullptr ? rows_->size() : cols_->rows();
  }
  bool empty() const { return size() == 0; }
  bool columnar() const { return cols_ != nullptr; }

  bool Live(size_t i) const {
    return aos_ != nullptr || cols_->IsLive(Row(i));
  }
  TimeTag Tag(size_t i) const {
    return aos_ != nullptr ? (*aos_)[i]->time_tag() : cols_->Tag(Row(i));
  }
  const WmePtr& Ptr(size_t i) const {
    return aos_ != nullptr ? (*aos_)[i] : cols_->Ptr(Row(i));
  }

  /// Narrows a columnar span to its live rows, gathered into `*sel` (a
  /// caller-provided scratch selection vector). AoS spans are returned
  /// unchanged — they have no dead entries. The gathered span's size is the
  /// layout-independent "physical item count" used for split decisions.
  AlphaSpan GatherLive(std::vector<uint32_t>* sel) const {
    if (aos_ != nullptr) return *this;
    sel->clear();
    size_t n = size();
    for (size_t i = 0; i < n; ++i) {
      if (cols_->IsLive(Row(i))) sel->push_back(Row(i));
    }
    return AlphaSpan(cols_, sel);
  }

 private:
  uint32_t Row(size_t i) const {
    return rows_ != nullptr ? (*rows_)[i] : static_cast<uint32_t>(i);
  }

  const std::vector<WmePtr>* aos_ = nullptr;
  const AlphaColumns* cols_ = nullptr;
  const std::vector<uint32_t>* rows_ = nullptr;  // null = all rows
};

}  // namespace sorel

#endif  // SOREL_RETE_COLUMNAR_H_
