#include "rete/conflict_set.h"

#include <algorithm>

namespace sorel {

void ConflictSet::Add(InstantiationRef* inst) {
  auto [it, inserted] = entries_.try_emplace(inst);
  if (inserted) {
    it->second.seq = next_seq_++;
  } else {
    it->second.fired = false;
  }
}

void ConflictSet::Remove(InstantiationRef* inst) { entries_.erase(inst); }

void ConflictSet::MarkFired(InstantiationRef* inst, bool remove_entry) {
  if (remove_entry) {
    entries_.erase(inst);
    return;
  }
  auto it = entries_.find(inst);
  if (it != entries_.end()) it->second.fired = true;
}

int CompareRecencyTags(const std::vector<TimeTag>& a,
                       const std::vector<TimeTag>& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] > b[i] ? 1 : -1;
  }
  if (a.size() != b.size()) return a.size() > b.size() ? 1 : -1;
  return 0;
}

bool ConflictSet::Precedes(Strategy strategy, const InstantiationRef& a,
                           uint64_t seq_a, const InstantiationRef& b,
                           uint64_t seq_b) {
  if (strategy == Strategy::kMea) {
    TimeTag fa = a.FirstCeTag(), fb = b.FirstCeTag();
    if (fa != fb) return fa > fb;
  }
  int rec = CompareRecencyTags(a.RecencyTags(), b.RecencyTags());
  if (rec != 0) return rec > 0;
  int sa = a.rule().specificity, sb = b.rule().specificity;
  if (sa != sb) return sa > sb;
  return seq_a > seq_b;  // arbitrary but deterministic
}

InstantiationRef* ConflictSet::Select(Strategy strategy) const {
  InstantiationRef* best = nullptr;
  uint64_t best_seq = 0;
  for (const auto& [inst, entry] : entries_) {
    if (entry.fired) continue;
    if (best == nullptr ||
        Precedes(strategy, *inst, entry.seq, *best, best_seq)) {
      best = inst;
      best_seq = entry.seq;
    }
  }
  return best;
}

std::vector<InstantiationRef*> ConflictSet::SortedEligible(
    Strategy strategy) const {
  std::vector<std::pair<InstantiationRef*, uint64_t>> eligible;
  for (const auto& [inst, entry] : entries_) {
    if (!entry.fired) eligible.emplace_back(inst, entry.seq);
  }
  std::sort(eligible.begin(), eligible.end(),
            [strategy](const auto& a, const auto& b) {
              return Precedes(strategy, *a.first, a.second, *b.first,
                              b.second);
            });
  std::vector<InstantiationRef*> out;
  out.reserve(eligible.size());
  for (const auto& [inst, seq] : eligible) out.push_back(inst);
  return out;
}

size_t ConflictSet::EligibleCount() const {
  size_t n = 0;
  for (const auto& [inst, entry] : entries_) {
    if (!entry.fired) ++n;
  }
  return n;
}

std::vector<InstantiationRef*> ConflictSet::Entries() const {
  std::vector<std::pair<uint64_t, InstantiationRef*>> ordered;
  ordered.reserve(entries_.size());
  for (const auto& [inst, entry] : entries_) {
    ordered.emplace_back(entry.seq, inst);
  }
  std::sort(ordered.begin(), ordered.end());
  std::vector<InstantiationRef*> out;
  out.reserve(ordered.size());
  for (const auto& [seq, inst] : ordered) out.push_back(inst);
  return out;
}

}  // namespace sorel
