#include "rete/conflict_set.h"

#include <algorithm>
#include <utility>

namespace sorel {

namespace {

// Which conflict set (if any) this thread is currently buffering for, and
// where. One pair suffices: a thread drives at most one matcher task at a
// time, and each task targets a single conflict set.
thread_local const ConflictSet* tls_delta_owner = nullptr;
thread_local ConflictSet::Delta* tls_delta = nullptr;

}  // namespace

int CompareRecencyTags(const std::vector<TimeTag>& a,
                       const std::vector<TimeTag>& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] > b[i] ? 1 : -1;
  }
  if (a.size() != b.size()) return a.size() > b.size() ? 1 : -1;
  return 0;
}

bool ConflictSet::Cmp::operator()(const Ref& a, const Ref& b) const {
  ++*comparisons;
  if (mea && a.entry->first_ce != b.entry->first_ce) {
    return a.entry->first_ce > b.entry->first_ce;
  }
  int rec = CompareRecencyTags(a.entry->rec, b.entry->rec);
  if (rec != 0) return rec > 0;
  if (a.entry->specificity != b.entry->specificity) {
    return a.entry->specificity > b.entry->specificity;
  }
  return a.entry->seq > b.entry->seq;  // unique: total order
}

ConflictSet::ConflictSet(bool use_index, obs::MetricRegistry* metrics)
    : use_index_(use_index),
      metrics_(metrics),
      lex_(Cmp{/*mea=*/false, &stats_.comparisons}),
      mea_(Cmp{/*mea=*/true, &stats_.comparisons}) {
  if (metrics_ == nullptr) return;
  metrics_->RegisterCounter(this, "select.selects",
                            [this] { return stats_.selects; });
  metrics_->RegisterCounter(this, "select.comparisons",
                            [this] { return stats_.comparisons; });
  metrics_->RegisterGauge(this, "select.entries", [this] {
    return static_cast<double>(entries_.size());
  });
  metrics_->RegisterReset(this, [this] { ResetStats(); });
}

ConflictSet::~ConflictSet() {
  if (metrics_ != nullptr) metrics_->Unregister(this);
}

ConflictSet::KeySnapshot ConflictSet::SnapshotKeys(
    const InstantiationRef& inst) {
  KeySnapshot keys;
  keys.rec = inst.RecencyTags();
  keys.first_ce = inst.FirstCeTag();
  keys.specificity = inst.rule().specificity;
  return keys;
}

ConflictSet::Delta* ConflictSet::ThreadDelta() const {
  return tls_delta_owner == this ? tls_delta : nullptr;
}

void ConflictSet::SetThreadDelta(const ConflictSet* cs, Delta* delta) {
  tls_delta_owner = delta == nullptr ? nullptr : cs;
  tls_delta = delta;
}

ConflictSet::ScopedThreadDelta::ScopedThreadDelta(const ConflictSet* cs,
                                                  Delta* delta)
    : prev_owner_(tls_delta_owner), prev_delta_(tls_delta) {
  SetThreadDelta(cs, delta);
}

ConflictSet::ScopedThreadDelta::~ScopedThreadDelta() {
  tls_delta_owner = prev_owner_;
  tls_delta = prev_delta_;
}

void ConflictSet::IndexEntry(InstantiationRef* inst, const Entry& e) {
  if (!use_index_) return;
  lex_.insert(Ref{inst, &e});
  mea_.insert(Ref{inst, &e});
}

void ConflictSet::UnindexEntry(InstantiationRef* inst, const Entry& e) {
  if (!use_index_) return;
  lex_.erase(Ref{inst, &e});
  mea_.erase(Ref{inst, &e});
}

void ConflictSet::Add(InstantiationRef* inst) {
  if (Delta* d = ThreadDelta()) {
    d->ops_.push_back({d->stamp_, /*add=*/true, inst, SnapshotKeys(*inst)});
    return;
  }
  AddWithKeys(inst, SnapshotKeys(*inst));
}

void ConflictSet::AddWithKeys(InstantiationRef* inst, KeySnapshot keys) {
  auto [it, inserted] = entries_.try_emplace(inst);
  Entry& e = it->second;
  if (inserted) {
    e.seq = next_seq_++;
  } else {
    // Re-filed entry: its content (and thus sort keys) may have changed, so
    // reposition it. Unindex under the *old* cached keys before touching
    // them.
    if (!e.fired) UnindexEntry(inst, e);
    if (e.fired) {
      // Re-activation of a fired SOI: it re-enters the conflict set *now*,
      // so it tie-breaks by this moment, not by when it first appeared.
      e.fired = false;
      e.seq = next_seq_++;
    }
  }
  e.rec = std::move(keys.rec);
  e.first_ce = keys.first_ce;
  e.specificity = keys.specificity;
  IndexEntry(inst, e);
}

void ConflictSet::Remove(InstantiationRef* inst) {
  if (Delta* d = ThreadDelta()) {
    d->ops_.push_back({d->stamp_, /*add=*/false, inst, {}});
    return;
  }
  RemoveNow(inst);
}

void ConflictSet::RemoveNow(InstantiationRef* inst) {
  auto it = entries_.find(inst);
  if (it == entries_.end()) return;
  if (!it->second.fired) UnindexEntry(inst, it->second);
  entries_.erase(it);
}

void ConflictSet::Release(std::unique_ptr<InstantiationRef> dead) {
  if (Delta* d = ThreadDelta()) {
    d->graveyard_.push_back(std::move(dead));
    return;
  }
  // Destroyed here: no deferred op can still reference it.
}

void ConflictSet::ApplyDeltas(std::vector<Delta>* deltas) {
  struct Flat {
    Delta::Op* op;
    uint32_t delta_pos;
    uint32_t seq;
  };
  std::vector<Flat> flat;
  size_t total = 0;
  for (const Delta& d : *deltas) total += d.ops_.size();
  flat.reserve(total);
  for (size_t di = 0; di < deltas->size(); ++di) {
    auto& ops = (*deltas)[di].ops_;
    for (size_t oi = 0; oi < ops.size(); ++oi) {
      flat.push_back({&ops[oi], static_cast<uint32_t>(di),
                      static_cast<uint32_t>(oi)});
    }
  }
  // (stamp, delta position, buffering order) is a strict total order, so
  // plain sort is deterministic. The result is exactly the op sequence the
  // sequential propagation would have issued.
  std::sort(flat.begin(), flat.end(), [](const Flat& a, const Flat& b) {
    if (a.op->stamp < b.op->stamp) return true;
    if (b.op->stamp < a.op->stamp) return false;
    if (a.delta_pos != b.delta_pos) return a.delta_pos < b.delta_pos;
    return a.seq < b.seq;
  });
  for (const Flat& f : flat) {
    if (f.op->add) {
      AddWithKeys(f.op->inst, std::move(f.op->keys));
    } else {
      RemoveNow(f.op->inst);
    }
  }
  for (Delta& d : *deltas) {
    d.ops_.clear();
    d.graveyard_.clear();  // dead instantiations are safe to free now
  }
}

void ConflictSet::MarkFired(InstantiationRef* inst, bool remove_entry) {
  auto it = entries_.find(inst);
  if (it == entries_.end()) return;
  if (!it->second.fired) UnindexEntry(inst, it->second);
  if (remove_entry) {
    entries_.erase(it);
    return;
  }
  it->second.fired = true;
}

bool ConflictSet::Precedes(Strategy strategy, const Entry& a, const Entry& b) {
  if (strategy == Strategy::kMea && a.first_ce != b.first_ce) {
    return a.first_ce > b.first_ce;
  }
  int rec = CompareRecencyTags(a.rec, b.rec);
  if (rec != 0) return rec > 0;
  if (a.specificity != b.specificity) return a.specificity > b.specificity;
  return a.seq > b.seq;  // arbitrary but deterministic
}

InstantiationRef* ConflictSet::Select(Strategy strategy) const {
  ++stats_.selects;
  if (use_index_) {
    const Index& index = IndexFor(strategy);
    return index.empty() ? nullptr : index.begin()->inst;
  }
  InstantiationRef* best = nullptr;
  const Entry* best_entry = nullptr;
  for (const auto& [inst, entry] : entries_) {
    if (entry.fired) continue;
    if (best != nullptr) ++stats_.comparisons;
    if (best == nullptr || Precedes(strategy, entry, *best_entry)) {
      best = inst;
      best_entry = &entry;
    }
  }
  return best;
}

std::vector<InstantiationRef*> ConflictSet::SortedEligible(
    Strategy strategy) const {
  std::vector<InstantiationRef*> out;
  if (use_index_) {
    const Index& index = IndexFor(strategy);
    out.reserve(index.size());
    for (const Ref& ref : index) out.push_back(ref.inst);
    return out;
  }
  std::vector<std::pair<InstantiationRef*, const Entry*>> eligible;
  for (const auto& [inst, entry] : entries_) {
    if (!entry.fired) eligible.emplace_back(inst, &entry);
  }
  std::sort(eligible.begin(), eligible.end(),
            [this, strategy](const auto& a, const auto& b) {
              ++stats_.comparisons;
              return Precedes(strategy, *a.second, *b.second);
            });
  out.reserve(eligible.size());
  for (const auto& [inst, entry] : eligible) out.push_back(inst);
  return out;
}

size_t ConflictSet::EligibleCount() const {
  if (use_index_) return lex_.size();
  size_t n = 0;
  for (const auto& [inst, entry] : entries_) {
    if (!entry.fired) ++n;
  }
  return n;
}

std::vector<ConflictSet::EntryState> ConflictSet::EntriesWithState() const {
  std::vector<std::pair<uint64_t, EntryState>> ordered;
  ordered.reserve(entries_.size());
  for (const auto& [inst, entry] : entries_) {
    ordered.emplace_back(entry.seq, EntryState{inst, entry.fired});
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<EntryState> out;
  out.reserve(ordered.size());
  for (const auto& [seq, state] : ordered) out.push_back(state);
  return out;
}

std::vector<InstantiationRef*> ConflictSet::Entries() const {
  std::vector<std::pair<uint64_t, InstantiationRef*>> ordered;
  ordered.reserve(entries_.size());
  for (const auto& [inst, entry] : entries_) {
    ordered.emplace_back(entry.seq, inst);
  }
  std::sort(ordered.begin(), ordered.end());
  std::vector<InstantiationRef*> out;
  out.reserve(ordered.size());
  for (const auto& [seq, inst] : ordered) out.push_back(inst);
  return out;
}

void ConflictSet::Clear() {
  entries_.clear();
  lex_.clear();
  mea_.clear();
}

}  // namespace sorel
