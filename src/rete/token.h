#ifndef SOREL_RETE_TOKEN_H_
#define SOREL_RETE_TOKEN_H_

#include <unordered_map>
#include <vector>

#include "base/value.h"
#include "rete/instantiation.h"
#include "wm/wme.h"

namespace sorel {

class BetaNode;

/// A partial match: a path of WMEs through the beta network. Join-node
/// tokens carry the WME matched at their level; negative-node tokens carry
/// none (`wme == nullptr`). Tokens form a tree via parent/children links so
/// that WME removal deletes whole subtrees (tree-based removal).
struct Token {
  Token* parent = nullptr;
  WmePtr wme;  // null for the root and for negative-node tokens
  BetaNode* owner = nullptr;
  std::vector<Token*> children;
  /// Negative-node tokens: number of WMEs currently matching the negated CE.
  int blockers = 0;
  /// Negative-node tokens: whether currently propagated downstream.
  bool propagated = false;
};

/// WME matched at token position `pos` along the chain ending in `t`
/// (positions count positive CEs, 0-based). Returns nullptr if out of range.
const Wme* WmeAt(const Token* t, int pos);

/// Fills `out` with the chain's WMEs indexed by token position.
void TokenRow(const Token* t, Row* out);

/// Composite key of an indexed equality join: the values (in join-test
/// order) both sides must agree on. Equality and hashing follow `Value`
/// semantics — numerically equal int/float compare and hash alike — which
/// is exactly `EvalTestPred(kEq)`, so a bucket probe sees the same matches
/// a linear scan would.
struct JoinKey {
  std::vector<Value> values;

  friend bool operator==(const JoinKey& a, const JoinKey& b) {
    if (a.values.size() != b.values.size()) return false;
    for (size_t i = 0; i < a.values.size(); ++i) {
      if (!(a.values[i] == b.values[i])) return false;
    }
    return true;
  }
};

struct JoinKeyHash {
  size_t operator()(const JoinKey& key) const;
};

/// Hash index over tokens keyed by `JoinKey`. Buckets preserve insertion
/// order (and removal keeps the remaining order), so iterating one bucket
/// visits tokens in the same relative order a linear scan of the owning
/// memory would — firing sequences stay identical to the unindexed path.
class TokenIndex {
 public:
  void Insert(const JoinKey& key, Token* t);
  void Remove(const JoinKey& key, Token* t);
  /// The bucket for `key`, or nullptr if empty.
  const std::vector<Token*>* Find(const JoinKey& key) const;
  size_t num_buckets() const { return buckets_.size(); }

 private:
  std::unordered_map<JoinKey, std::vector<Token*>, JoinKeyHash> buckets_;
};

}  // namespace sorel

#endif  // SOREL_RETE_TOKEN_H_
