#ifndef SOREL_RETE_TOKEN_H_
#define SOREL_RETE_TOKEN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/value.h"
#include "rete/instantiation.h"
#include "wm/wme.h"

namespace sorel {

class BetaNode;

/// Index of a token within its shard's TokenArena. Output/child/anchor
/// containers store these 32-bit ids instead of `Token*` — half the entry
/// size, and compaction of those containers moves ints, not pointers. The
/// id is stable for the token's whole arena lifetime (free-list recycling
/// hands the same id back out).
using TokenId = uint32_t;
inline constexpr TokenId kNilToken = 0xffffffffu;

/// A partial match: a path of WMEs through the beta network. Join-node
/// tokens carry the WME matched at their level; negative-node tokens carry
/// none (`wme == nullptr`). Tokens form a tree via parent/children links so
/// that WME removal deletes whole subtrees (tree-based removal).
struct Token {
  Token* parent = nullptr;
  WmePtr wme;  // null for the root and for negative-node tokens
  BetaNode* owner = nullptr;
  /// This token's arena index, assigned once when the arena carves the
  /// token and preserved across free-list recycling. kNilToken only for
  /// tokens that live outside an arena (shard roots).
  TokenId self = kNilToken;
  std::vector<TokenId> children;
  /// Negative-node tokens: number of WMEs currently matching the negated CE.
  int blockers = 0;
  /// Time tag of the removal whose unblock cascade created this token, or 0.
  /// Such a token counted its blockers *after* that WME left the alpha
  /// memories, so the WME's own still-pending right-activations must skip
  /// it — decrementing a count that never included the WME would double-apply
  /// the removal (NegativeNode::RightActivate).
  TimeTag born_of_removal = 0;
  /// Negative-node tokens: whether currently propagated downstream.
  bool propagated = false;
  /// Bulk removal: set between the detach/notify step and the deferred
  /// container compaction (ReteMatcher::FlushDeletions); never set outside
  /// an in-progress removal batch.
  bool dead = false;
  /// Bulk removal: `children` holds dead entries pending compaction.
  bool children_dirty = false;
};

/// Slab allocator and free list for tokens. Each rule shard owns one arena:
/// tokens never migrate across shards and a shard is replayed by exactly
/// one task, so arenas need no locks — and recycling happens in the same
/// per-shard order under sequential and parallel propagation, which keeps
/// the `rete.token_pool_hits` counter bit-identical across thread counts.
/// Slabs are never returned individually: destroying the arena frees every
/// token it ever produced in one sweep (the structural form of the
/// `~ReteMatcher` bulk teardown).
class TokenArena {
 public:
  static constexpr size_t kDefaultSlabSize = 256;

  TokenArena() = default;
  ~TokenArena();
  TokenArena(const TokenArena&) = delete;
  TokenArena& operator=(const TokenArena&) = delete;

  /// Tokens per slab; 0 allocates each token individually on the heap (the
  /// ablation baseline) while keeping the free list and whole-arena
  /// teardown. Must be called before the first Alloc; later calls are
  /// ignored.
  void set_slab_size(size_t n);

  /// Returns a default-initialized token. `*pool_hit` reports a free-list
  /// reuse, `*new_slab` that a fresh slab had to be allocated.
  Token* Alloc(bool* pool_hit, bool* new_slab);

  /// Returns a token to the free list. The caller must have reset its
  /// fields (in particular released `wme`); the memory stays owned by the
  /// arena either way. `self` survives recycling.
  void Recycle(Token* t) { free_.push_back(t); }

  /// Resolves an arena index back to its token. O(1): slab mode divides by
  /// the slab size, heap mode indexes the tracking vector.
  Token* At(TokenId id) const {
    if (slab_size_ == 0) return heap_[id];
    return slabs_[id / slab_size_].get() + (id % slab_size_);
  }

  size_t free_size() const { return free_.size(); }
  size_t num_slabs() const { return slabs_.size(); }

  /// Bytes held by slabs / heap tokens / the free list — the
  /// `rete.token_arena_bytes` gauge. Slab mode counts whole slabs
  /// (allocated capacity, not just carved tokens).
  size_t MemoryBytes() const {
    size_t bytes = free_.capacity() * sizeof(Token*);
    if (slab_size_ == 0) {
      bytes += heap_.size() * sizeof(Token) + heap_.capacity() * sizeof(Token*);
    } else {
      bytes += slabs_.size() * slab_size_ * sizeof(Token);
    }
    return bytes;
  }

 private:
  size_t slab_size_ = kDefaultSlabSize;
  std::vector<std::unique_ptr<Token[]>> slabs_;
  size_t used_in_last_ = 0;  // tokens handed out of slabs_.back()
  std::vector<Token*> heap_;  // slab_size_ == 0: every token ever allocated
  std::vector<Token*> free_;
};

/// WME matched at token position `pos` along the chain ending in `t`
/// (positions count positive CEs, 0-based). Returns nullptr if out of range.
const Wme* WmeAt(const Token* t, int pos);

/// Fills `out` with the chain's WMEs indexed by token position.
void TokenRow(const Token* t, Row* out);

/// Composite key of an indexed equality join: the values (in join-test
/// order) both sides must agree on. Equality and hashing follow `Value`
/// semantics — numerically equal int/float compare and hash alike — which
/// is exactly `EvalTestPred(kEq)`, so a bucket probe sees the same matches
/// a linear scan would.
struct JoinKey {
  std::vector<Value> values;

  friend bool operator==(const JoinKey& a, const JoinKey& b) {
    if (a.values.size() != b.values.size()) return false;
    for (size_t i = 0; i < a.values.size(); ++i) {
      if (!(a.values[i] == b.values[i])) return false;
    }
    return true;
  }
};

struct JoinKeyHash {
  size_t operator()(const JoinKey& key) const;
};

/// Hash index over tokens keyed by `JoinKey`; buckets hold arena ids.
/// Buckets preserve insertion order (and removal keeps the remaining
/// order), so iterating one bucket visits tokens in the same relative
/// order a linear scan of the owning memory would — firing sequences stay
/// identical to the unindexed path.
class TokenIndex {
 public:
  void Insert(const JoinKey& key, TokenId t);
  void Remove(const JoinKey& key, TokenId t);
  /// The bucket for `key`, or nullptr if empty.
  const std::vector<TokenId>* Find(const JoinKey& key) const;
  size_t num_buckets() const { return buckets_.size(); }

 private:
  std::unordered_map<JoinKey, std::vector<TokenId>, JoinKeyHash> buckets_;
};

}  // namespace sorel

#endif  // SOREL_RETE_TOKEN_H_
