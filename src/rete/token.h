#ifndef SOREL_RETE_TOKEN_H_
#define SOREL_RETE_TOKEN_H_

#include <vector>

#include "rete/instantiation.h"
#include "wm/wme.h"

namespace sorel {

class BetaNode;

/// A partial match: a path of WMEs through the beta network. Join-node
/// tokens carry the WME matched at their level; negative-node tokens carry
/// none (`wme == nullptr`). Tokens form a tree via parent/children links so
/// that WME removal deletes whole subtrees (tree-based removal).
struct Token {
  Token* parent = nullptr;
  WmePtr wme;  // null for the root and for negative-node tokens
  BetaNode* owner = nullptr;
  std::vector<Token*> children;
  /// Negative-node tokens: number of WMEs currently matching the negated CE.
  int blockers = 0;
  /// Negative-node tokens: whether currently propagated downstream.
  bool propagated = false;
};

/// WME matched at token position `pos` along the chain ending in `t`
/// (positions count positive CEs, 0-based). Returns nullptr if out of range.
const Wme* WmeAt(const Token* t, int pos);

/// Fills `out` with the chain's WMEs indexed by token position.
void TokenRow(const Token* t, Row* out);

}  // namespace sorel

#endif  // SOREL_RETE_TOKEN_H_
