#ifndef SOREL_RETE_MATCHER_H_
#define SOREL_RETE_MATCHER_H_

#include "base/status.h"
#include "lang/compiled_rule.h"
#include "rete/conflict_set.h"
#include "wm/working_memory.h"

namespace sorel {

/// A match algorithm: consumes WM changes, produces conflict-set updates.
/// Implemented by `ReteMatcher` (with S-node support, the paper's extended
/// Rete) and `TreatMatcher` (the tuple-oriented baseline).
class Matcher : public WorkingMemory::Listener {
 public:
  ~Matcher() override = default;

  /// Adds a production. The rule object must outlive the matcher. Existing
  /// WM contents are matched immediately.
  virtual Status AddRule(const CompiledRule* rule) = 0;

  /// Removes a production: its instantiations leave the conflict set and
  /// all per-rule match state is reclaimed (OPS5's `excise`).
  virtual Status RemoveRule(const CompiledRule* rule) = 0;

  virtual ConflictSet& conflict_set() = 0;
};

}  // namespace sorel

#endif  // SOREL_RETE_MATCHER_H_
