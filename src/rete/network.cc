#include "rete/network.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "base/thread_pool.h"
#include "lang/ast.h"

namespace sorel {

thread_local ReteMatcher::ReplayCtx* ReteMatcher::tls_replay_ = nullptr;

// ---------------------------------------------------------------- alpha ---

AlphaMemory::AlphaMemory(const AlphaPattern* pattern, bool soa)
    : pattern_(pattern), soa_(soa) {}

JoinKey AlphaMemory::Index::KeyOf(const Wme& wme) const {
  JoinKey key;
  key.values.reserve(fields_.size());
  for (int f : fields_) key.values.push_back(wme.field(f));
  return key;
}

const std::vector<WmePtr>* AlphaMemory::Index::Find(const JoinKey& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? nullptr : &it->second;
}

void AlphaMemory::Index::Insert(const WmePtr& wme) {
  buckets_[KeyOf(*wme)].push_back(wme);
}

void AlphaMemory::Index::Remove(const WmePtr& wme) {
  auto it = buckets_.find(KeyOf(*wme));
  if (it == buckets_.end()) return;
  auto& bucket = it->second;
  bucket.erase(std::remove(bucket.begin(), bucket.end(), wme), bucket.end());
  if (bucket.empty()) buckets_.erase(it);
}

void AlphaMemory::Index::RemoveBatch(
    const std::vector<WmePtr>& wmes,
    const std::unordered_set<const Wme*>& victims) {
  if (wmes.size() == 1) {
    Remove(wmes.front());
    return;
  }
  // Group the victims' keys so each touched bucket is compacted once even
  // when many victims share it.
  std::unordered_set<JoinKey, JoinKeyHash> keys;
  keys.reserve(wmes.size());
  for (const WmePtr& w : wmes) keys.insert(KeyOf(*w));
  for (const JoinKey& key : keys) {
    auto it = buckets_.find(key);
    if (it == buckets_.end()) continue;
    std::erase_if(it->second, [&](const WmePtr& w) {
      return victims.count(w.get()) != 0;
    });
    if (it->second.empty()) buckets_.erase(it);
  }
}

const std::vector<uint32_t>* AlphaMemory::Index::FindRows(
    const JoinKey& key) const {
  auto it = row_buckets_.find(key);
  return it == row_buckets_.end() ? nullptr : &it->second;
}

void AlphaMemory::Index::InsertRow(const Wme* wme, uint32_t row, bool live) {
  // Rows arrive in append order, so the key columns stay row-aligned with
  // the owning memory's columns by construction.
  assert(key_cols_.empty() || key_cols_[0].size() == row);
  if (!live) {
    // Nil padding for a tombstoned row (late index creation only); the
    // buckets never reference it and compaction drops it.
    for (auto& col : key_cols_) col.emplace_back();
    return;
  }
  JoinKey key;
  key.values.reserve(fields_.size());
  for (size_t f = 0; f < fields_.size(); ++f) {
    Value v = wme->field(fields_[f]);
    key_cols_[f].push_back(v);
    key.values.push_back(std::move(v));
  }
  row_buckets_[key].push_back(row);
}

void AlphaMemory::Index::Rekey(const std::vector<uint32_t>& remap,
                               size_t new_rows) {
  // Compact the key columns in place — a contiguous Value scan, no WME
  // dereferences — then rebuild the buckets by ascending new row id, which
  // is insertion order (compaction is stable).
  for (auto& col : key_cols_) {
    for (uint32_t old_row = 0; old_row < remap.size(); ++old_row) {
      uint32_t new_row = remap[old_row];
      if (new_row == AlphaColumns::kNoRow) continue;
      if (new_row != old_row) col[new_row] = std::move(col[old_row]);
    }
    col.resize(new_rows);
    if (col.capacity() >= 1024 && col.size() * 4 <= col.capacity()) {
      col.shrink_to_fit();
    }
  }
  row_buckets_.clear();
  JoinKey key;
  for (uint32_t row = 0; row < new_rows; ++row) {
    key.values.clear();
    for (const auto& col : key_cols_) key.values.push_back(col[row]);
    row_buckets_[key].push_back(row);
  }
}

AlphaMemory::Index* AlphaMemory::GetOrCreateIndex(
    const std::vector<int>& fields) {
  for (const auto& idx : indexes_) {
    if (idx->fields() == fields) return idx.get();
  }
  auto idx = std::make_unique<Index>(fields, soa_);
  if (soa_) {
    for (uint32_t row = 0; row < cols_.rows(); ++row) {
      idx->InsertRow(cols_.Ptr(row).get(), row, cols_.IsLive(row));
    }
  } else {
    for (const WmePtr& w : items_) idx->Insert(w);
  }
  indexes_.push_back(std::move(idx));
  return indexes_.back().get();
}

AlphaSpan AlphaMemory::Probe(const Index* index, const JoinKey& key) const {
  if (soa_) {
    const std::vector<uint32_t>* rows = index->FindRows(key);
    return rows == nullptr ? AlphaSpan() : AlphaSpan(&cols_, rows);
  }
  const std::vector<WmePtr>* bucket = index->Find(key);
  return bucket == nullptr ? AlphaSpan() : AlphaSpan(bucket);
}

void AlphaMemory::SnapshotItems(std::vector<WmePtr>* out) const {
  out->clear();
  if (!soa_) {
    *out = items_;
    return;
  }
  out->reserve(cols_.live());
  for (uint32_t row = 0; row < cols_.rows(); ++row) {
    if (cols_.IsLive(row)) out->push_back(cols_.Ptr(row));
  }
}

void AlphaMemory::AddItem(const WmePtr& wme) {
  if (soa_) {
    uint32_t row = cols_.Append(wme);
    for (const auto& idx : indexes_) idx->InsertRow(wme.get(), row, true);
    return;
  }
  items_.push_back(wme);
  for (const auto& idx : indexes_) idx->Insert(wme);
}

bool AlphaMemory::RemoveItem(const WmePtr& wme) {
  if (soa_) {
    // Tombstone only; buckets keep the dead row until the next compaction
    // (probe loops filter with IsLive). The WME reference drops here — the
    // same moment the AoS erase below releases it.
    bool found = cols_.Kill(wme->time_tag()) != AlphaColumns::kNoRow;
    if (found) MaybeCompact();
    return found;
  }
  size_t before = items_.size();
  items_.erase(std::remove(items_.begin(), items_.end(), wme), items_.end());
  for (const auto& idx : indexes_) idx->Remove(wme);
  return items_.size() != before;
}

size_t AlphaMemory::RemoveItems(const std::vector<WmePtr>& wmes) {
  if (soa_) {
    size_t found = 0;
    for (const WmePtr& w : wmes) {
      if (cols_.Kill(w->time_tag()) != AlphaColumns::kNoRow) ++found;
    }
    if (found != 0) MaybeCompact();
    return found;
  }
  if (wmes.size() == 1) return RemoveItem(wmes.front()) ? 1 : 0;
  std::unordered_set<const Wme*> victims;
  victims.reserve(wmes.size());
  for (const WmePtr& w : wmes) victims.insert(w.get());
  size_t before = items_.size();
  std::erase_if(items_, [&](const WmePtr& w) {
    return victims.count(w.get()) != 0;
  });
  for (const auto& idx : indexes_) idx->RemoveBatch(wmes, victims);
  return before - items_.size();
}

void AlphaMemory::MaybeCompact() {
  if (!cols_.NeedsCompaction()) return;
  cols_.Compact(&remap_scratch_);
  for (const auto& idx : indexes_) {
    idx->Rekey(remap_scratch_, cols_.rows());
  }
}

size_t AlphaMemory::MemoryBytes() const {
  size_t bytes = items_.capacity() * sizeof(WmePtr) + cols_.MemoryBytes();
  for (const auto& idx : indexes_) {
    for (const auto& [key, bucket] : idx->buckets_) {
      bytes += key.values.size() * sizeof(Value) +
               bucket.capacity() * sizeof(WmePtr);
    }
    for (const auto& [key, bucket] : idx->row_buckets_) {
      bytes += key.values.size() * sizeof(Value) +
               bucket.capacity() * sizeof(uint32_t);
    }
    for (const auto& col : idx->key_cols_) {
      bytes += col.capacity() * sizeof(Value);
    }
  }
  return bytes;
}

// ----------------------------------------------------------------- beta ---

BetaNode::BetaNode(ReteMatcher* net, AlphaMemory* amem, BetaNode* parent,
                   const CompiledCondition* cond)
    : net_(net), amem_(amem), parent_(parent), cond_(cond) {
  // A condition with equality join tests always references an earlier
  // positive CE, so an indexed node necessarily has a parent.
  if (net_->options().use_indexed_joins && !cond_->eq_join_tests.empty()) {
    indexed_ = true;
    std::vector<int> fields;
    fields.reserve(cond_->eq_join_tests.size());
    for (const JoinTest& jt : cond_->eq_join_tests) fields.push_back(jt.field);
    aindex_ = amem_->GetOrCreateIndex(fields);
  }
}

bool BetaNode::Matches(const Token* t, const Wme& wme) const {
  for (const JoinTest& jt : cond_->join_tests) {
    const Wme* other = WmeAt(t, jt.other_token_pos);
    if (other == nullptr) return false;
    if (!EvalTestPred(jt.pred, wme.field(jt.field),
                      other->field(jt.other_field))) {
      return false;
    }
  }
  return true;
}

bool BetaNode::MatchesResidual(const Token* t, const Wme& wme) const {
  for (const JoinTest& jt : cond_->residual_join_tests) {
    const Wme* other = WmeAt(t, jt.other_token_pos);
    if (other == nullptr) return false;
    if (!EvalTestPred(jt.pred, wme.field(jt.field),
                      other->field(jt.other_field))) {
      return false;
    }
  }
  return true;
}

JoinKey BetaNode::WmeKey(const Wme& wme) const {
  JoinKey key;
  key.values.reserve(cond_->eq_join_tests.size());
  for (const JoinTest& jt : cond_->eq_join_tests) {
    key.values.push_back(wme.field(jt.field));
  }
  return key;
}

bool BetaNode::TokenKey(const Token* t, JoinKey* out) const {
  out->values.clear();
  out->values.reserve(cond_->eq_join_tests.size());
  for (const JoinTest& jt : cond_->eq_join_tests) {
    const Wme* other = WmeAt(t, jt.other_token_pos);
    if (other == nullptr) return false;
    out->values.push_back(other->field(jt.other_field));
  }
  return true;
}

void BetaNode::OnTokenRegistered(Token* t) {
  if (child_ != nullptr) child_->IndexLeftToken(t);
}

bool BetaNode::IsOutputActive(const Token*) const { return true; }

void BetaNode::OnOwnedTokenDeleted(Token* t) {
  DetachToken(t);
  outputs_.erase(std::remove(outputs_.begin(), outputs_.end(), t->self),
                 outputs_.end());
}

void BetaNode::IndexLeftToken(Token* t) {
  if (!indexed_) return;
  JoinKey key;
  if (TokenKey(t, &key)) left_index_.Insert(key, t->self);
}

void BetaNode::UnindexLeftToken(Token* t) {
  if (!indexed_) return;
  JoinKey key;
  if (TokenKey(t, &key)) left_index_.Remove(key, t->self);
}

void BetaNode::UnindexFromChild(Token* t) {
  if (child_ != nullptr) child_->UnindexLeftToken(t);
}

void BetaNode::PropagateDown(Token* t) {
  if (child_ != nullptr) child_->OnParentToken(t);
  if (sink_ != nullptr) sink_->OnToken(t, /*added=*/true);
}

// ----------------------------------------------------------------- join ---

void JoinNode::OnParentToken(Token* t) {
  AlphaSpan span;
  bool residual;
  if (indexed_) {
    ++net_->stats_sink().index_probes;
    JoinKey key;
    if (!TokenKey(t, &key)) return;
    span = amem_->Probe(aindex_, key);
    if (span.empty()) return;
    residual = true;  // the bucket guarantees the equality tests
  } else {
    span = amem_->Items();
    residual = false;
  }
  const ReteMatcher::ReplayCtx* rctx = net_->CurrentReplayCtx();
  std::vector<uint32_t> sel;
  if (net_->ShouldSplit(span.size())) {
    // A columnar span counts tombstoned rows; gather the live ones first so
    // the split decision (and ParallelEval's slice layout, hence the
    // intra_splits / intra_slice_tasks counters) sees the same candidate
    // count the AoS layout's physically-compacted vector has.
    AlphaSpan live = span.GatherLive(&sel);
    if (net_->ShouldSplit(live.size())) {
      // Intra-rule split: fork the pure join tests into slices, then
      // create and propagate the matches serially in scan order —
      // bit-identical to the loop below. The slices capture this thread's
      // replay context explicitly: a pool worker's own thread-locals are
      // not the fork's.
      std::vector<char> hits;
      net_->ParallelEval(
          live.size(),
          [&](size_t i, ReteStats* stats) {
            if (rctx != nullptr &&
                !net_->ReplayVisibleTag(live.Tag(i), amem_, rctx)) {
              return false;
            }
            ++stats->join_attempts;
            return residual ? MatchesResidual(t, *live.Ptr(i))
                            : Matches(t, *live.Ptr(i));
          },
          &hits);
      for (size_t i = 0; i < live.size(); ++i) {
        if (hits[i] != 0) {
          Token* out = net_->NewToken(this, t, live.Ptr(i));
          PropagateDown(out);
        }
      }
      return;
    }
    span = live;  // already gathered; fall through to the serial loop
  }
  // Serial loop: propagation never mutates this alpha memory, but stay
  // defensive about iterator invalidation conventions. Dead rows are
  // skipped before any counter bump — equivalent to their physical absence
  // under the AoS layout.
  for (size_t i = 0; i < span.size(); ++i) {
    if (!span.Live(i)) continue;
    if (rctx != nullptr && !net_->ReplayVisibleTag(span.Tag(i), amem_, rctx)) {
      continue;
    }
    ++net_->stats_sink().join_attempts;
    const WmePtr& w = span.Ptr(i);
    bool ok = residual ? MatchesResidual(t, *w) : Matches(t, *w);
    if (ok) {
      Token* out = net_->NewToken(this, t, w);
      PropagateDown(out);
    }
  }
}

void JoinNode::RightActivate(const WmePtr& wme, bool added) {
  if (!added) return;  // removals are handled by token-tree deletion
  if (parent_ == nullptr) {
    Token* root = &shard_->root;
    ++net_->stats_sink().join_attempts;
    if (Matches(root, *wme)) {
      Token* out = net_->NewToken(this, root, wme);
      PropagateDown(out);
    }
    return;
  }
  const std::vector<TokenId>* candidates;
  bool residual;
  if (indexed_) {
    ++net_->stats_sink().index_probes;
    candidates = left_index_.Find(WmeKey(*wme));
    if (candidates == nullptr) return;
    residual = true;
  } else {
    candidates = &ParentOutputs();
    residual = false;
  }
  if (net_->ShouldSplit(candidates->size())) {
    // Split scan (see OnParentToken): parallel pure tests, serial in-order
    // apply. IsOutputActive applies the same visibility filter the linear
    // path uses, so both paths see the same candidate sequence.
    std::vector<char> hits;
    net_->ParallelEval(
        candidates->size(),
        [&](size_t i, ReteStats* stats) {
          Token* t = TokenAt((*candidates)[i]);
          if (!parent_->IsOutputActive(t)) return false;
          ++stats->join_attempts;
          return residual ? MatchesResidual(t, *wme) : Matches(t, *wme);
        },
        &hits);
    for (size_t i = 0; i < candidates->size(); ++i) {
      if (hits[i] != 0) {
        Token* out = net_->NewToken(this, TokenAt((*candidates)[i]), wme);
        PropagateDown(out);
      }
    }
    return;
  }
  for (size_t i = 0; i < candidates->size(); ++i) {
    Token* t = TokenAt((*candidates)[i]);
    if (!parent_->IsOutputActive(t)) continue;
    ++net_->stats_sink().join_attempts;
    bool ok = residual ? MatchesResidual(t, *wme) : Matches(t, *wme);
    if (ok) {
      Token* out = net_->NewToken(this, t, wme);
      PropagateDown(out);
    }
  }
}

void JoinNode::DetachToken(Token* t) {
  UnindexFromChild(t);
  if (sink_ != nullptr) sink_->OnToken(t, /*added=*/false);
}

// ------------------------------------------------------------- negative ---

int NegativeNode::CountBlockers(const Token* t) const {
  AlphaSpan span;
  bool residual;
  if (indexed_) {
    ++net_->stats_sink().index_probes;
    JoinKey key;
    if (!TokenKey(t, &key)) return 0;
    span = amem_->Probe(aindex_, key);
    if (span.empty()) return 0;
    residual = true;
  } else {
    span = amem_->Items();
    residual = false;
  }
  const ReteMatcher::ReplayCtx* rctx = net_->CurrentReplayCtx();
  std::vector<uint32_t> sel;
  if (net_->ShouldSplit(span.size())) {
    // Gather live rows first so the split decision matches the AoS
    // layout's physical count (see JoinNode::OnParentToken).
    AlphaSpan live = span.GatherLive(&sel);
    if (net_->ShouldSplit(live.size())) {
      // A blocker count is order-insensitive, so the split result is the
      // hit total — no apply phase needed.
      std::vector<char> hits;
      net_->ParallelEval(
          live.size(),
          [&](size_t i, ReteStats* stats) {
            if (rctx != nullptr &&
                !net_->ReplayVisibleTag(live.Tag(i), amem_, rctx)) {
              return false;
            }
            ++stats->join_attempts;
            return residual ? MatchesResidual(t, *live.Ptr(i))
                            : Matches(t, *live.Ptr(i));
          },
          &hits);
      return static_cast<int>(std::count(hits.begin(), hits.end(), 1));
    }
    span = live;
  }
  int n = 0;
  for (size_t i = 0; i < span.size(); ++i) {
    if (!span.Live(i)) continue;
    if (rctx != nullptr && !net_->ReplayVisibleTag(span.Tag(i), amem_, rctx)) {
      continue;
    }
    ++net_->stats_sink().join_attempts;
    bool ok = residual ? MatchesResidual(t, *span.Ptr(i))
                       : Matches(t, *span.Ptr(i));
    if (ok) ++n;
  }
  return n;
}

void NegativeNode::OnParentToken(Token* up) {
  Token* t = net_->NewToken(this, up, nullptr);
  t->blockers = CountBlockers(t);
  if (t->blockers == 0) Propagate(t);
}

void NegativeNode::OnTokenRegistered(Token* t) {
  BetaNode::OnTokenRegistered(t);
  if (!indexed_) return;
  JoinKey key;
  if (TokenKey(t, &key)) own_index_.Insert(key, t->self);
}

void NegativeNode::RightActivate(const WmePtr& wme, bool added) {
  // A WME removal must never drive a blocker count below zero: the count
  // was established by CountBlockers and every removal is paired with an
  // addition seen by this node. Underflow would wrap the token into a
  // permanently-blocked state, so clamp at zero (and trip in debug builds,
  // where it signals index/memory desynchronization).
  auto update = [&](Token* t) {
    if (added) {
      if (t->blockers++ == 0) Retract(t);
    } else {
      // A token born during this very removal's unblock cascade counted
      // its blockers after the WME had already left the alpha memories, so
      // the count never included it — decrementing would double-apply the
      // removal and could propagate a token other WMEs still block.
      if (t->born_of_removal == wme->time_tag()) return;
      assert(t->blockers > 0 && "negative-node blocker count underflow");
      if (t->blockers > 0 && --t->blockers == 0) Propagate(t);
    }
  };
  const std::vector<TokenId>* candidates;
  bool residual;
  if (indexed_) {
    ++net_->stats_sink().index_probes;
    // Retract/Propagate cascade strictly downstream, so this node's own
    // outputs — and therefore this bucket — stay stable while iterating.
    candidates = own_index_.Find(WmeKey(*wme));
    if (candidates == nullptr) return;
    residual = true;
  } else {
    // Snapshot: Retract/Propagate can cascade but never changes outputs_ of
    // this node (children live downstream).
    candidates = &outputs_;
    residual = false;
  }
  if (net_->ShouldSplit(candidates->size())) {
    // Split scan: the join tests read only immutable WME fields and the
    // tokens' (frozen) upstream chains — blocker counts mutate strictly in
    // the serial apply loop below, so slice evaluation sees stable state.
    std::vector<char> hits;
    net_->ParallelEval(
        candidates->size(),
        [&](size_t i, ReteStats* stats) {
          ++stats->join_attempts;
          Token* t = TokenAt((*candidates)[i]);
          return residual ? MatchesResidual(t, *wme) : Matches(t, *wme);
        },
        &hits);
    for (size_t i = 0; i < candidates->size(); ++i) {
      if (hits[i] != 0) update(TokenAt((*candidates)[i]));
    }
    return;
  }
  for (size_t i = 0; i < candidates->size(); ++i) {
    Token* t = TokenAt((*candidates)[i]);
    ++net_->stats_sink().join_attempts;
    bool ok = residual ? MatchesResidual(t, *wme) : Matches(t, *wme);
    if (!ok) continue;
    update(t);
  }
}

void NegativeNode::Propagate(Token* t) {
  t->propagated = true;
  if (child_ != nullptr) child_->OnParentToken(t);
  if (sink_ != nullptr) sink_->OnToken(t, /*added=*/true);
}

void NegativeNode::Retract(Token* t) {
  while (!t->children.empty()) {
    net_->DeleteTokenTree(TokenAt(t->children.back()));
  }
  if (sink_ != nullptr && t->propagated) sink_->OnToken(t, /*added=*/false);
  t->propagated = false;
}

void NegativeNode::DetachToken(Token* t) {
  if (indexed_) {
    JoinKey key;
    if (TokenKey(t, &key)) own_index_.Remove(key, t->self);
  }
  UnindexFromChild(t);
  if (sink_ != nullptr && t->propagated) sink_->OnToken(t, /*added=*/false);
}

// ---------------------------------------------------------------- pnode ---

/// Conflict-set entry for a regular instantiation: one complete token.
class PNode::RegularInst : public InstantiationRef {
 public:
  RegularInst(const CompiledRule* rule, Token* token)
      : rule_(rule), token_(token) {}

  const CompiledRule& rule() const override { return *rule_; }

  void CollectRows(std::vector<Row>* out) const override {
    Row row;
    TokenRow(token_, &row);
    out->push_back(std::move(row));
  }

  std::vector<TimeTag> RecencyTags() const override {
    std::vector<TimeTag> tags;
    for (const Token* t = token_; t != nullptr; t = t->parent) {
      if (t->wme != nullptr) tags.push_back(t->wme->time_tag());
    }
    std::sort(tags.rbegin(), tags.rend());
    return tags;
  }

  TimeTag FirstCeTag() const override {
    const Wme* w = WmeAt(token_, 0);
    return w == nullptr ? 0 : w->time_tag();
  }

 private:
  const CompiledRule* rule_;
  Token* token_;
};

PNode::~PNode() {
  for (auto& [token, inst] : insts_) cs_->Remove(inst.get());
}

void PNode::OnToken(Token* token, bool added) {
  if (added) {
    auto inst = std::make_unique<RegularInst>(rule_, token);
    cs_->Add(inst.get());
    insts_.emplace(token, std::move(inst));
    return;
  }
  auto it = insts_.find(token);
  if (it == insts_.end()) return;
  cs_->Remove(it->second.get());
  // Keep the instantiation alive until any buffered conflict-set ops have
  // been applied: a freed address could be reused by a same-batch Add and
  // alias it in the conflict set's entry map.
  cs_->Release(std::move(it->second));
  insts_.erase(it);
}

// -------------------------------------------------------------- matcher ---

ReteMatcher::ReteMatcher(WorkingMemory* wm, ConflictSet* cs,
                         SinkFactory sink_factory, ReteOptions options)
    : wm_(wm),
      cs_(cs),
      sink_factory_(std::move(sink_factory)),
      options_(options) {
  wm_->AddListener(this);
  if (obs::MetricRegistry* m = options_.metrics; m != nullptr) {
    m->RegisterCounter(this, "rete.join_attempts",
                       [this] { return stats_.join_attempts; });
    m->RegisterCounter(this, "rete.index_probes",
                       [this] { return stats_.index_probes; });
    m->RegisterCounter(this, "rete.tokens_created",
                       [this] { return stats_.tokens_created; });
    m->RegisterCounter(this, "rete.tokens_deleted",
                       [this] { return stats_.tokens_deleted; });
    m->RegisterCounter(this, "rete.right_activations",
                       [this] { return stats_.right_activations; });
    m->RegisterCounter(this, "rete.batches",
                       [this] { return stats_.batches; });
    m->RegisterCounter(this, "rete.grouped_removals",
                       [this] { return stats_.grouped_removals; });
    m->RegisterCounter(this, "rete.token_pool_hits",
                       [this] { return stats_.token_pool_hits; });
    m->RegisterCounter(this, "rete.parallel_batches",
                       [this] { return stats_.parallel_batches; });
    m->RegisterCounter(this, "rete.replay_tasks",
                       [this] { return stats_.replay_tasks; });
    m->RegisterCounter(this, "rete.intra_splits",
                       [this] { return stats_.intra_splits; });
    m->RegisterCounter(this, "rete.intra_slice_tasks",
                       [this] { return stats_.intra_slice_tasks; });
    m->RegisterCounter(this, "rete.bulk_deletes",
                       [this] { return stats_.bulk_deletes; });
    m->RegisterCounter(this, "rete.arena_slabs",
                       [this] { return stats_.arena_slabs; });
    m->RegisterGauge(this, "rete.live_tokens", [this] {
      return static_cast<double>(live_tokens_);
    });
    m->RegisterGauge(this, "rete.token_arena_bytes", [this] {
      size_t bytes = 0;
      for (const RuleShard* s : shards_) bytes += s->arena.MemoryBytes();
      return static_cast<double>(bytes);
    });
    m->RegisterGauge(this, "rete.alpha_bytes", [this] {
      size_t bytes = 0;
      for (const auto& [cls, mems] : alphas_by_class_) {
        for (const auto& am : mems) bytes += am->MemoryBytes();
      }
      return static_cast<double>(bytes);
    });
    m->RegisterReset(this, [this] { ResetStats(); });
    if (m->timing_enabled()) {
      match_timer_ = m->GetOrCreateTimer("phase.match");
    }
  }
}

ReteMatcher::~ReteMatcher() {
  if (options_.metrics != nullptr) options_.metrics->Unregister(this);
  wm_->RemoveListener(this);
  // Token teardown is structural: every token — live or recycled — sits in
  // its shard's arena, and the arenas die with rule_shards_. (The PR 4
  // bulk-delete walk over outputs_ is no longer needed.)
}

size_t ReteMatcher::free_tokens() const {
  size_t n = 0;
  for (const RuleShard* shard : shards_) n += shard->arena.free_size();
  return n;
}

Token* ReteMatcher::NewToken(BetaNode* owner, Token* parent, WmePtr wme) {
  RuleShard* shard = owner->shard_;
  ReteStats& stats = stats_sink();
  bool pool_hit = false;
  bool new_slab = false;
  Token* t = shard->arena.Alloc(&pool_hit, &new_slab);
  if (pool_hit) ++stats.token_pool_hits;
  if (new_slab) ++stats.arena_slabs;
  t->owner = owner;
  t->parent = parent;
  t->wme = std::move(wme);
  if (parent != nullptr) parent->children.push_back(t->self);
  if (t->wme != nullptr) {
    shard->tokens_by_wme[t->wme->time_tag()].tokens.push_back(t->self);
  }
  // Register in the owner's output memory.
  // (BetaNode::outputs_ is protected; ReteMatcher is a friend.)
  owner->outputs_.push_back(t->self);
  owner->OnTokenRegistered(t);
  ReplayCtx* ctx = CurrentReplayCtx();
  t->born_of_removal = (ctx != nullptr) ? ctx->removing_tag : removing_tag_;
  if (ctx != nullptr) {
    ++ctx->live_token_delta;
  } else {
    ++live_tokens_;
  }
  ++stats.tokens_created;
  return t;
}

namespace {

/// Resets a detached token's fields for its next incarnation. `children`
/// keeps its capacity (the caller guarantees it holds no live entries) and
/// `self` keeps its arena id — it names the slot, not the incarnation.
void ResetToken(Token* t) {
  t->wme.reset();
  t->parent = nullptr;
  t->owner = nullptr;
  t->children.clear();
  t->blockers = 0;
  t->born_of_removal = 0;
  t->propagated = false;
  t->dead = false;
  t->children_dirty = false;
}

}  // namespace

void ReteMatcher::DeleteTokenTree(Token* t) {
  RuleShard* shard = t->owner->shard_;
  while (!t->children.empty()) {
    DeleteTokenTree(shard->arena.At(t->children.back()));
  }
  t->owner->OnOwnedTokenDeleted(t);
  if (t->parent != nullptr) {
    auto& siblings = t->parent->children;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), t->self),
                   siblings.end());
  }
  if (t->wme != nullptr) {
    auto it = shard->tokens_by_wme.find(t->wme->time_tag());
    if (it != shard->tokens_by_wme.end()) {
      auto& tokens = it->second.tokens;
      tokens.erase(std::remove(tokens.begin(), tokens.end(), t->self),
                   tokens.end());
      // Eager entry erasure: an anchor entry exists iff it holds tokens,
      // so removal drivers re-find instead of holding iterators across a
      // cascade (see FinishRemove).
      if (tokens.empty()) shard->tokens_by_wme.erase(it);
    }
  }
  ResetToken(t);
  shard->arena.Recycle(t);
  ReplayCtx* ctx = CurrentReplayCtx();
  if (ctx != nullptr) {
    --ctx->live_token_delta;
    ++ctx->stats.tokens_deleted;
  } else {
    --live_tokens_;
    ++stats_.tokens_deleted;
  }
}

void ReteMatcher::BulkDeleteTree(Token* t, DeletionScratch* s) {
  BetaNode* owner = t->owner;
  RuleShard* shard = owner->shard_;
  // Children back-to-front, skipping ones an earlier tree already took —
  // the exact order DeleteTokenTree's while(!empty()) back() pops them in
  // (deletion only removes entries, never reorders, and nothing can be
  // appended mid-teardown).
  for (size_t i = t->children.size(); i-- > 0;) {
    Token* c = shard->arena.At(t->children[i]);
    if (!c->dead) BulkDeleteTree(c, s);
  }
  owner->DetachToken(t);
  t->dead = true;
  if (!owner->compact_pending_) {
    owner->compact_pending_ = true;
    s->dirty_nodes.push_back(owner);
  }
  if (t->parent != nullptr && !t->parent->children_dirty) {
    t->parent->children_dirty = true;
    // The parent may be the arena-less shard root; pair it with the arena
    // its (dead) child ids resolve against.
    s->dirty_parents.emplace_back(&shard->arena, t->parent);
  }
  if (t->wme != nullptr) {
    auto it = shard->tokens_by_wme.find(t->wme->time_tag());
    if (it != shard->tokens_by_wme.end() && !it->second.dirty) {
      it->second.dirty = true;
      s->dirty_anchors.emplace_back(shard, t->wme->time_tag());
    }
  }
  s->dead.push_back(t);
  ReplayCtx* ctx = CurrentReplayCtx();
  if (ctx != nullptr) {
    --ctx->live_token_delta;
    ++ctx->stats.tokens_deleted;
  } else {
    --live_tokens_;
    ++stats_.tokens_deleted;
  }
}

void ReteMatcher::BulkDeleteAnchored(RuleShard* shard, TimeTag tag,
                                     DeletionScratch* s) {
  auto it = shard->tokens_by_wme.find(tag);
  if (it == shard->tokens_by_wme.end()) return;
  // Highest-index-first over the anchored roots, skipping tokens an
  // earlier tree's cascade already killed — the same root sequence the
  // per-token driver's while(!empty()) back() loop processes. The vector
  // itself stays untouched until the entry is dropped whole below.
  auto& anchored = it->second.tokens;
  for (size_t i = anchored.size(); i-- > 0;) {
    Token* t = shard->arena.At(anchored[i]);
    if (!t->dead) BulkDeleteTree(t, s);
  }
  shard->tokens_by_wme.erase(it);
}

void ReteMatcher::FlushDeletions(DeletionScratch* s) {
  if (s->dead.empty()) return;
  for (BetaNode* node : s->dirty_nodes) {
    const TokenArena& arena = node->shard_->arena;
    std::erase_if(node->outputs_,
                  [&arena](TokenId id) { return arena.At(id)->dead; });
    node->compact_pending_ = false;
  }
  s->dirty_nodes.clear();
  for (const auto& [arena, parent] : s->dirty_parents) {
    parent->children_dirty = false;
    // A parent that died itself gets its children vector cleared wholesale
    // at recycle time below.
    if (!parent->dead) {
      const TokenArena* a = arena;
      std::erase_if(parent->children,
                    [a](TokenId id) { return a->At(id)->dead; });
    }
  }
  s->dirty_parents.clear();
  for (const auto& [shard, tag] : s->dirty_anchors) {
    auto it = shard->tokens_by_wme.find(tag);
    if (it == shard->tokens_by_wme.end()) continue;  // drained wholesale
    it->second.dirty = false;
    const TokenArena& arena = shard->arena;
    std::erase_if(it->second.tokens,
                  [&arena](TokenId id) { return arena.At(id)->dead; });
    if (it->second.tokens.empty()) shard->tokens_by_wme.erase(it);
  }
  s->dirty_anchors.clear();
  for (Token* t : s->dead) {
    TokenArena& arena = t->owner->shard_->arena;
    ResetToken(t);
    arena.Recycle(t);
  }
  s->dead.clear();
  ++stats_sink().bulk_deletes;
}

void ReteMatcher::CheckAnchorInvariants() const {
#ifndef NDEBUG
  for (const RuleShard* shard : shards_) {
    for (const auto& [tag, anchor] : shard->tokens_by_wme) {
      assert(!anchor.tokens.empty() && "stale empty tokens_by_wme entry");
      assert(!anchor.dirty && "anchor left dirty after a batch");
      for (TokenId id : anchor.tokens) {
        assert(!shard->arena.At(id)->dead &&
               "dead token anchored after a batch");
      }
    }
  }
#endif
}

void ReteMatcher::ParallelEval(
    size_t n, const std::function<bool(size_t, ReteStats*)>& eval,
    std::vector<char>* hits) {
  hits->assign(n, 0);
  // One slice per executing thread (workers + the forking caller), but
  // never slices smaller than half the split threshold — tiny slices are
  // pure dispatch overhead.
  size_t max_slices = static_cast<size_t>(options_.pool->num_threads()) + 1;
  size_t min_per_slice =
      std::max<size_t>(1, static_cast<size_t>(options_.intra_split_min) / 2);
  size_t slices = std::max<size_t>(
      2, std::min(max_slices, (n + min_per_slice - 1) / min_per_slice));
  size_t chunk = (n + slices - 1) / slices;
  std::vector<ReteStats> slice_stats(slices);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(slices);
  for (size_t s = 0; s < slices; ++s) {
    size_t lo = s * chunk;
    size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    // Slices write disjoint hits[] ranges and their own stats accumulator;
    // `eval` itself is pure, so no synchronization is needed beyond the
    // RunAll join.
    tasks.push_back([&eval, hits, &slice_stats, lo, hi, s] {
      ReteStats* stats = &slice_stats[s];
      for (size_t i = lo; i < hi; ++i) {
        if (eval(i, stats)) (*hits)[i] = 1;
      }
    });
  }
  ReteStats& sink = stats_sink();
  ++sink.intra_splits;
  sink.intra_slice_tasks += tasks.size();
  options_.pool->RunAll(std::move(tasks));
  for (const ReteStats& s : slice_stats) {
    sink.join_attempts += s.join_attempts;
    sink.index_probes += s.index_probes;
  }
}

AlphaMemory* ReteMatcher::GetOrCreateAlpha(const CompiledCondition& cond,
                                           const AlphaPattern* pattern) {
  auto& memories = alphas_by_class_[cond.cls];
  for (const auto& am : memories) {
    // Bound rules resolve by pattern identity (the topology already ran the
    // structural dedup); self-contained rules compare structurally. Both
    // scans visit memories in creation order, so sharing decisions — and
    // hence network shape — are identical across the two modes.
    if (pattern != nullptr ? am->pattern() == pattern : am->SameTests(cond)) {
      return am.get();
    }
  }
  if (pattern == nullptr) {
    owned_patterns_.push_back(AlphaPattern::FromCondition(cond));
    pattern = owned_patterns_.back().get();
  }
  auto am = std::make_unique<AlphaMemory>(pattern, options_.soa_memories);
  // Seed with the current working memory.
  for (const WmePtr& w : wm_->Snapshot()) {
    if (w->cls() == cond.cls && am->Accepts(*w)) {
      am->AddItem(w);
      wme_amems_[w->time_tag()].push_back(am.get());
    }
  }
  memories.push_back(std::move(am));
  return memories.back().get();
}

void ReteMatcher::RenumberSuccessors(AlphaMemory* am) {
  for (size_t i = 0; i < am->successors_.size(); ++i) {
    am->successors_[i]->succ_ordinal_ = static_cast<int>(i);
  }
}

Status ReteMatcher::AddRule(const CompiledRule* rule) {
  if (rule->has_set && sink_factory_ == nullptr) {
    return Status::Unimplemented(
        "rule '" + rule->name +
        "': this matcher was built without set-oriented (S-node) support");
  }
  auto shard = std::make_unique<RuleShard>();
  shard->rule = rule;
  shard->ordinal = shards_.size();
  shard->arena.set_slab_size(
      options_.token_slab < 0 ? 0 : static_cast<size_t>(options_.token_slab));
  // Build the linear beta chain.
  const std::vector<const AlphaPattern*>* bound =
      options_.topology != nullptr ? options_.topology->PatternsFor(rule)
                                   : nullptr;
  std::vector<BetaNode*> chain;
  BetaNode* prev = nullptr;
  for (const CompiledCondition& cond : rule->conditions) {
    size_t ce = static_cast<size_t>(&cond - rule->conditions.data());
    AlphaMemory* am =
        GetOrCreateAlpha(cond, bound != nullptr ? (*bound)[ce] : nullptr);
    std::unique_ptr<BetaNode> node;
    if (cond.negated) {
      shard->has_negative = true;
      node = std::make_unique<NegativeNode>(this, am, prev, &cond);
    } else {
      node = std::make_unique<JoinNode>(this, am, prev, &cond);
    }
    node->shard_ = shard.get();
    // Newest successors first (duplicate-token avoidance).
    am->successors_.insert(am->successors_.begin(), node.get());
    RenumberSuccessors(am);
    if (prev != nullptr) prev->set_child(node.get());
    prev = node.get();
    chain.push_back(node.get());
    nodes_.push_back(std::move(node));
  }
  std::unique_ptr<ReteSink> sink;
  if (sink_factory_ != nullptr) {
    sink = sink_factory_(*rule);
  } else {
    sink = std::make_unique<PNode>(rule, cs_);
  }
  prev->set_sink(sink.get());
  shard->chain = chain;
  shard->sink = sink.get();
  // Group this rule's nodes by alpha memory in successor order: within one
  // memory a rule's later-chain nodes sit earlier (each insert above
  // prepends), so walking the chain backwards yields successor order.
  for (auto cit = chain.rbegin(); cit != chain.rend(); ++cit) {
    BetaNode* node = *cit;
    std::vector<BetaNode*>* group = nullptr;
    for (auto& [mem, nodes] : shard->amem_nodes) {
      if (mem == node->amem_) {
        group = &nodes;
        break;
      }
    }
    if (group == nullptr) {
      shard->amem_nodes.emplace_back(node->amem_, std::vector<BetaNode*>());
      group = &shard->amem_nodes.back().second;
    }
    group->push_back(node);
  }
  shards_.push_back(shard.get());
  rule_shards_.emplace(rule, std::move(shard));
  sinks_.push_back(std::move(sink));

  // Populate from existing WM: right-activating the first node cascades
  // left-activations through the whole (already wired) chain.
  BetaNode* first = chain.front();
  std::vector<WmePtr> seed;
  first->amem()->SnapshotItems(&seed);
  for (const WmePtr& w : seed) first->RightActivate(w, /*added=*/true);
  return Status::Ok();
}

Status ReteMatcher::RemoveRule(const CompiledRule* rule) {
  auto it = rule_shards_.find(rule);
  if (it == rule_shards_.end()) {
    return Status::NotFound("rule not loaded: " + rule->name);
  }
  std::unique_ptr<RuleShard> shard = std::move(it->second);
  rule_shards_.erase(it);
  // 1. Delete the chain's tokens. Every downstream token descends from a
  //    first-node output, so deleting those roots cascades through the
  //    whole chain (and notifies the sink for retracted instantiations).
  BetaNode* first = shard->chain.front();
  while (!first->outputs_.empty()) {
    DeleteTokenTree(shard->arena.At(first->outputs_.back()));
  }
  // 2. Unhook from the shared alpha memories.
  for (BetaNode* node : shard->chain) {
    auto& succs = node->amem_->successors_;
    succs.erase(std::remove(succs.begin(), succs.end(), node), succs.end());
    RenumberSuccessors(node->amem_);
  }
  // 3. Destroy the sink (removes any remaining conflict-set entries, e.g.
  //    inactive SOIs are dropped with it) and the nodes.
  std::erase_if(sinks_, [&](const std::unique_ptr<ReteSink>& s) {
    return s.get() == shard->sink;
  });
  for (BetaNode* node : shard->chain) {
    std::erase_if(nodes_, [&](const std::unique_ptr<BetaNode>& n) {
      return n.get() == node;
    });
  }
  shards_.erase(std::remove(shards_.begin(), shards_.end(), shard.get()),
                shards_.end());
  for (size_t i = 0; i < shards_.size(); ++i) shards_[i]->ordinal = i;
  return Status::Ok();
}

void ReteMatcher::ApplyAdd(const WmePtr& wme) {
  auto it = alphas_by_class_.find(wme->cls());
  if (it == alphas_by_class_.end()) return;
  for (const auto& am : it->second) {
    if (!am->Accepts(*wme)) continue;
    am->AddItem(wme);
    wme_amems_[wme->time_tag()].push_back(am.get());
    // Immediate per-memory activation, successors newest-first: this is the
    // ordering that makes one WME matching several CEs of a rule produce
    // each combined token exactly once.
    for (size_t i = 0; i < am->successors_.size(); ++i) {
      ++stats_.right_activations;
      am->successors_[i]->RightActivate(wme, /*added=*/true);
    }
  }
}

void ReteMatcher::ApplyRemove(const WmePtr& wme) {
  auto it = wme_amems_.find(wme->time_tag());
  if (it == wme_amems_.end()) return;
  // 1. Remove from alpha memories so joins no longer see it. wme_amems_ is
  // the single source of truth for which memories hold the WME, so each
  // exit must find its item (exactly-once-per-batch discipline; the
  // grouped and per-WME paths never overlap on a WME).
  for (AlphaMemory* am : it->second) {
    bool removed = am->RemoveItem(wme);
    assert(removed && "WME missing from an alpha memory it was filed under");
    (void)removed;
  }
  // 2. Unblock negative nodes (may propagate new tokens — those are
  // stamped with this removal's tag so its remaining right-activations
  // skip them; see Token::born_of_removal).
  removing_tag_ = wme->time_tag();
  for (AlphaMemory* am : it->second) {
    for (size_t i = 0; i < am->successors_.size(); ++i) {
      ++stats_.right_activations;
      am->successors_[i]->RightActivate(wme, /*added=*/false);
    }
  }
  // 3. Tree-delete every token anchored on this WME.
  FinishRemove(wme);
  removing_tag_ = 0;
  wme_amems_.erase(wme->time_tag());
}

void ReteMatcher::OnAdd(const WmePtr& wme) {
  obs::ScopedTimer timer(match_timer_);
  ApplyAdd(wme);
}

void ReteMatcher::OnRemove(const WmePtr& wme) {
  obs::ScopedTimer timer(match_timer_);
  ApplyRemove(wme);
}

void ReteMatcher::ApplyRemoveRun(const std::vector<WmChange>& changes,
                                 size_t begin, size_t end) {
  if (end - begin == 1) {
    ApplyRemove(changes[begin].wme);
    return;
  }
  // A grouped run pulls every WME out of its alpha memories before any
  // token deletion, so joins re-seeded later in the batch never see a
  // half-removed set. Safe only when no touched alpha feeds a negative
  // node: negative successors react to removals (blocker counts) and the
  // per-WME interleaving of unblocking vs. token deletion is observable
  // in the sink's Touch sequence.
  for (size_t i = begin; i < end; ++i) {
    auto it = wme_amems_.find(changes[i].wme->time_tag());
    if (it == wme_amems_.end()) continue;
    for (AlphaMemory* am : it->second) {
      for (BetaNode* succ : am->successors_) {
        if (succ->cond().negated) {
          // The scan mutates nothing, so the fallback is a clean per-WME
          // replay of the whole run.
          for (size_t j = begin; j < end; ++j) ApplyRemove(changes[j].wme);
          return;
        }
      }
    }
  }
  // Phase 1: all alpha exits, grouped per memory — one compaction pass per
  // touched memory for the whole run instead of one scan per (WME, memory)
  // pair.
  AlphaExitBatch exits;
  for (size_t i = begin; i < end; ++i) {
    const WmePtr& wme = changes[i].wme;
    auto it = wme_amems_.find(wme->time_tag());
    if (it == wme_amems_.end()) continue;
    for (AlphaMemory* am : it->second) exits.Add(am, wme);
  }
  exits.Commit();
  // Phase 2: per-WME token-tree deletion, batch order. (No negative
  // successors anywhere in the run, and JoinNode::RightActivate ignores
  // removals, so the skipped right-activations are provably no-ops.)
  if (options_.bulk_removal) {
    // Defer the container compaction across the whole run: nothing between
    // these deletions scans an output memory (no right-activations happen
    // in this phase, and the tree walks themselves skip dead tokens), so
    // one flush at the end suffices.
    for (size_t i = begin; i < end; ++i) {
      TimeTag tag = changes[i].wme->time_tag();
      for (RuleShard* shard : shards_) BulkDeleteAnchored(shard, tag, &scratch_);
      wme_amems_.erase(tag);
    }
    FlushDeletions(&scratch_);
  } else {
    for (size_t i = begin; i < end; ++i) {
      FinishRemove(changes[i].wme);
      wme_amems_.erase(changes[i].wme->time_tag());
    }
  }
  ++stats_.grouped_removals;
}

void ReteMatcher::AlphaExitBatch::Add(AlphaMemory* am, const WmePtr& wme) {
  auto [it, fresh] = exits_.try_emplace(am);
  if (fresh) order_.push_back(am);
  it->second.push_back(wme);
}

void ReteMatcher::AlphaExitBatch::Commit() {
  for (AlphaMemory* am : order_) {
    const std::vector<WmePtr>& wmes = exits_[am];
    size_t removed = am->RemoveItems(wmes);
    assert(removed == wmes.size() &&
           "a WME must leave each alpha memory exactly once per batch");
    (void)removed;
  }
  exits_.clear();
  order_.clear();
}

void ReteMatcher::FinishRemove(const WmePtr& wme) {
  TimeTag tag = wme->time_tag();
  // Shard by shard in registration order — the same order the parallel
  // merge applies per-rule deletion ops in.
  if (options_.bulk_removal) {
    for (RuleShard* shard : shards_) BulkDeleteAnchored(shard, tag, &scratch_);
    // Flush before returning: on the per-WME path (negative successors
    // present) the next WME's unblock cascade scans output memories.
    FlushDeletions(&scratch_);
    return;
  }
  // Per-token path: deletions edit the anchored list in place (a token in
  // the list can delete a descendant that is also in the list) and erase
  // the entry when it drains, so re-find instead of holding an iterator.
  for (RuleShard* shard : shards_) {
    while (true) {
      auto it = shard->tokens_by_wme.find(tag);
      if (it == shard->tokens_by_wme.end()) break;
      DeleteTokenTree(shard->arena.At(it->second.tokens.back()));
    }
  }
}

void ReteMatcher::OnBatch(const ChangeBatch& batch) {
  obs::ScopedTimer timer(match_timer_);
  if (options_.pool != nullptr) {
    OnBatchParallel(batch);
    return;
  }
  OnBatchSequential(batch);
}

void ReteMatcher::OnBatchSequential(const ChangeBatch& batch) {
  ++stats_.batches;
  for (const auto& s : sinks_) s->OnBatchBegin();
  const std::vector<WmChange>& changes = batch.changes;
  size_t i = 0;
  while (i < changes.size()) {
    if (changes[i].added) {
      ApplyAdd(changes[i].wme);
      ++i;
      continue;
    }
    size_t j = i;
    while (j < changes.size() && !changes[j].added) ++j;
    ApplyRemoveRun(changes, i, j);
    i = j;
  }
  for (const auto& s : sinks_) s->OnBatchEnd();
#ifndef NDEBUG
  CheckAnchorInvariants();
#endif
}

void ReteMatcher::OnBatchParallel(const ChangeBatch& batch) {
  ++stats_.batches;
  ++stats_.parallel_batches;
  for (const auto& s : sinks_) s->OnBatchBegin();
  const std::vector<WmChange>& changes = batch.changes;

  // --- Phase A (coordinator): alpha entries + the replay plan. ---
  //
  // Adds go into their alpha memories right away (all replay tasks read the
  // same physical memories); removals are only *marked* — they leave in
  // phase C, after every task is done reading. ReplayVisibleTag gives each
  // task the exact per-change view the sequential interleaving had.
  replay_removed_.clear();
  std::vector<ChangeRec> plan;
  plan.reserve(changes.size());
  // Staged adds carry strictly increasing time tags, all larger than any
  // pre-batch WME's, so "visible as of change e" is just a tag ceiling.
  TimeTag ceiling = std::numeric_limits<TimeTag>::max();
  for (const WmChange& c : changes) {
    if (c.added) {
      ceiling = c.wme->time_tag() - 1;
      break;
    }
  }
  std::vector<char> touched(shards_.size(), 0);
  for (size_t e = 0; e < changes.size(); ++e) {
    const WmChange& c = changes[e];
    ChangeRec rec;
    rec.prev_ceiling = ceiling;
    if (c.added) {
      auto it = alphas_by_class_.find(c.wme->cls());
      if (it != alphas_by_class_.end()) {
        for (const auto& am : it->second) {
          if (!am->Accepts(*c.wme)) continue;
          am->AddItem(c.wme);
          wme_amems_[c.wme->time_tag()].push_back(am.get());
          rec.amems.push_back(am.get());
        }
      }
      ceiling = c.wme->time_tag();
    } else {
      auto it = wme_amems_.find(c.wme->time_tag());
      if (it != wme_amems_.end()) rec.amems = it->second;
      replay_removed_.emplace(c.wme->time_tag(), e);
      for (RuleShard* shard : shards_) {
        if (shard->tokens_by_wme.count(c.wme->time_tag()) != 0) {
          touched[shard->ordinal] = 1;
        }
      }
    }
    rec.ceiling = ceiling;
    for (AlphaMemory* am : rec.amems) {
      for (BetaNode* succ : am->successors_) {
        touched[succ->shard_->ordinal] = 1;
      }
    }
    plan.push_back(std::move(rec));
  }

  // --- Phase B: one replay task per touched rule shard. ---
  std::vector<RuleShard*> targets;
  for (RuleShard* s : shards_) {
    if (touched[s->ordinal] != 0) targets.push_back(s);
  }
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    for (RuleShard* s : targets) {
      options_.tracer->Emit(obs::TraceEvent("rule_replay")
                                .Str("rule", s->rule->name)
                                .Num("changes", changes.size()));
    }
  }
  if (!targets.empty()) {
    std::vector<ConflictSet::Delta> deltas(targets.size());
    std::vector<ReplayCtx> ctxs(targets.size());
    stats_.replay_tasks += targets.size();
    if (targets.size() == 1) {
      // One touched rule: replay inline, dispatch would only add latency.
      ReplayShard(targets[0], changes, plan, &deltas[0], &ctxs[0]);
    } else {
      std::vector<std::function<void()>> tasks;
      tasks.reserve(targets.size());
      for (size_t i = 0; i < targets.size(); ++i) {
        tasks.push_back([this, &changes, &plan, &deltas, &ctxs, &targets, i] {
          ReplayShard(targets[i], changes, plan, &deltas[i], &ctxs[i]);
        });
      }
      options_.pool->RunAll(std::move(tasks));
    }
    // --- Phase C: deterministic merge, registration order. ---
    for (ReplayCtx& ctx : ctxs) MergeCtx(&ctx);
    cs_->ApplyDeltas(&deltas);
  }
  // Physical alpha exits for the batch's removals (the marks kept them in
  // place during phase B), grouped per memory so each is compacted once.
  AlphaExitBatch exits;
  for (size_t e = 0; e < changes.size(); ++e) {
    if (changes[e].added) continue;
    const WmePtr& wme = changes[e].wme;
    for (AlphaMemory* am : plan[e].amems) exits.Add(am, wme);
    wme_amems_.erase(wme->time_tag());
  }
  exits.Commit();
  replay_removed_.clear();
  for (const auto& s : sinks_) s->OnBatchEnd();
#ifndef NDEBUG
  CheckAnchorInvariants();
#endif
}

void ReteMatcher::ReplayShard(RuleShard* shard,
                              const std::vector<WmChange>& changes,
                              const std::vector<ChangeRec>& plan,
                              ConflictSet::Delta* delta, ReplayCtx* ctx) {
  ctx->net = this;
  ctx->shard = shard;
  // Save/restore rather than set/null: while this task waits on a slice
  // fork it help-drains the pool queue, and can run *another* replay task
  // (this matcher's or another matcher's) whose exit must put back this
  // frame's thread-locals, not clear them.
  ReplayCtx* prev_replay = tls_replay_;
  tls_replay_ = ctx;
  ConflictSet::ScopedThreadDelta scoped_delta(cs_, delta);
  // Bulk removal defers container compaction across consecutive removal
  // changes — but only while no scan can observe a dead token: an add's
  // right-activations probe output memories, and a negative node's unblock
  // cascade does too, so those flush first. Shards with a negative node
  // flush per change (the per-WME interleaving FinishRemove preserves).
  DeletionScratch scratch;
  const bool defer = options_.bulk_removal && !shard->has_negative;
  for (size_t e = 0; e < changes.size(); ++e) {
    const WmChange& c = changes[e];
    const ChangeRec& rec = plan[e];
    if (c.added && !scratch.empty()) FlushDeletions(&scratch);
    ctx->epoch = e;
    ctx->prev_ceiling = rec.prev_ceiling;
    ctx->add_ceiling = rec.ceiling;
    ctx->removing_tag = c.added ? 0 : c.wme->time_tag();
    ctx->cur_amems = &rec.amems;
    for (size_t a = 0; a < rec.amems.size(); ++a) {
      ctx->cur_amem_ord = a;
      const std::vector<BetaNode*>* nodes = shard->SuccessorsOf(rec.amems[a]);
      if (nodes == nullptr) continue;
      for (BetaNode* node : *nodes) {
        delta->SetStamp({static_cast<uint32_t>(e), 0, static_cast<uint32_t>(a),
                         static_cast<uint32_t>(node->succ_ordinal_)});
        ++ctx->stats.right_activations;
        node->RightActivate(c.wme, c.added);
      }
    }
    if (!c.added) {
      // Token-tree deletion for this removal, after its unblock cascade —
      // the same per-change interleaving as the sequential ApplyRemove.
      delta->SetStamp({static_cast<uint32_t>(e), 1, 0, 0});
      if (options_.bulk_removal) {
        BulkDeleteAnchored(shard, c.wme->time_tag(), &scratch);
        if (!defer) FlushDeletions(&scratch);
      } else {
        // Per-token path; entries erase themselves when drained, so
        // re-find instead of holding an iterator (see FinishRemove).
        TimeTag tag = c.wme->time_tag();
        while (true) {
          auto it = shard->tokens_by_wme.find(tag);
          if (it == shard->tokens_by_wme.end()) break;
          DeleteTokenTree(shard->arena.At(it->second.tokens.back()));
        }
      }
    }
  }
  if (!scratch.empty()) FlushDeletions(&scratch);
  tls_replay_ = prev_replay;
}

void ReteMatcher::MergeCtx(ReplayCtx* ctx) {
  const ReteStats& s = ctx->stats;
  stats_.join_attempts += s.join_attempts;
  stats_.index_probes += s.index_probes;
  stats_.tokens_created += s.tokens_created;
  stats_.tokens_deleted += s.tokens_deleted;
  stats_.right_activations += s.right_activations;
  stats_.token_pool_hits += s.token_pool_hits;
  stats_.intra_splits += s.intra_splits;
  stats_.intra_slice_tasks += s.intra_slice_tasks;
  stats_.bulk_deletes += s.bulk_deletes;
  stats_.arena_slabs += s.arena_slabs;
  live_tokens_ = static_cast<size_t>(static_cast<int64_t>(live_tokens_) +
                                     ctx->live_token_delta);
}

void ReteMatcher::DumpNetwork(std::ostream& out,
                              const SymbolTable& symbols) const {
  out << "alpha network:\n";
  for (const auto& [cls, memories] : alphas_by_class_) {
    for (const auto& am : memories) {
      const AlphaPattern& p = *am->pattern();
      out << "  (" << symbols.Name(cls) << ") tests="
          << p.const_tests.size() + p.member_tests.size() +
                 p.intra_tests.size()
          << " items=" << am->num_items()
          << " indexes=" << am->indexes_.size()
          << " successors=" << am->successors_.size() << "\n";
    }
  }
  out << "beta network:\n";
  for (const RuleShard* shard : shards_) {
    out << "  rule " << shard->rule->name << ":";
    for (BetaNode* node : shard->chain) {
      bool negative = node->cond().negated;
      out << " " << (negative ? "neg" : "join")
          << (node->indexed() ? "*" : "") << "(" << node->outputs_.size()
          << ")";
    }
    out << " -> " << (shard->rule->has_set ? "S-node" : "P-node") << "\n";
  }
}

size_t ReteMatcher::num_alpha_memories() const {
  size_t n = 0;
  for (const auto& [cls, memories] : alphas_by_class_) n += memories.size();
  return n;
}

}  // namespace sorel
