#ifndef SOREL_RETE_CONFLICT_SET_H_
#define SOREL_RETE_CONFLICT_SET_H_

#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "rete/instantiation.h"

namespace sorel {

/// Conflict-resolution strategies (OPS5).
enum class Strategy { kLex, kMea };

/// The conflict set: all instantiations currently eligible to fire plus
/// fired-but-unchanged SOIs awaiting a change (§6: "if any part of the
/// instantiation changes, the instantiation is again eligible to fire").
///
/// Regular instantiations are removed when they fire (classic refraction —
/// a time-tag-identical instantiation can never re-arise). SOIs stay with a
/// `fired` flag that any subsequent γ-memory change clears via Add/Touch.
///
/// Selection is served from two ordered indexes (one per strategy) over the
/// eligible entries, so `Select` is O(log n) instead of a full scan. Sort
/// keys (recency tags, first-CE tag, specificity) are *cached* in the entry
/// at Add/Touch time; this is sound because every γ-memory content change
/// reaches the conflict set as an Add/Touch/Remove call, and it means index
/// erasure always uses the keys the entry was filed under even if the live
/// instantiation has since changed. Pass `use_index = false` to fall back
/// to the linear scan (the ablation baseline for benchmarks).
class ConflictSet {
 public:
  /// Counters for the selection hot path. With the index on, `comparisons`
  /// counts comparator calls paid at insert/erase time; with it off, the
  /// per-Select scan comparisons. Either way it is the total ordering work.
  struct Stats {
    uint64_t selects = 0;
    uint64_t comparisons = 0;
  };

  /// `metrics` (borrowed, may be null) registers the select.* counters as
  /// registry views.
  explicit ConflictSet(bool use_index = true,
                       obs::MetricRegistry* metrics = nullptr);
  ~ConflictSet();

  // The ordered indexes hold pointers into entry storage and the
  // comparators point back at stats_; copying would alias both.
  ConflictSet(const ConflictSet&) = delete;
  ConflictSet& operator=(const ConflictSet&) = delete;

  // --- deferred operation support (parallel match propagation) ---
  //
  // Worker threads replaying per-rule match state must not mutate the
  // shared conflict set. Instead each worker routes its Add/Touch/Remove
  // calls into a private Delta (SetThreadDelta), and the coordinating
  // thread applies all deltas afterwards in one deterministic merge — the
  // exact op order the sequential propagation would have produced, so the
  // `seq` tie-break counter advances identically.

  /// Sort keys of an instantiation captured at buffering time. A deferred
  /// op must not re-read the live instantiation at apply time: by then a
  /// later op of the same rule may have changed or destroyed it. Snapshots
  /// are taken at the op's logical position in the rule's own program
  /// order, which is exactly what the sequential interleaving would have
  /// read (instantiations are private to one rule, so no other rule's ops
  /// can touch them in between).
  struct KeySnapshot {
    std::vector<TimeTag> rec;  // recency tags, descending
    TimeTag first_ce = 0;
    int specificity = 0;
  };

  /// Position of a deferred op in the sequential op order: which batch
  /// change produced it, then the within-change step. Ties across deltas
  /// break by delta position (= rule-registration order), then by
  /// buffering order within one delta.
  struct OpStamp {
    uint32_t change = 0;  // batch change index; changes.size() for batch-end
    uint32_t phase = 0;   // 0 = activation cascade, 1 = token-tree deletion
    uint32_t amem = 0;    // alpha-memory ordinal within the change
    uint32_t succ = 0;    // successor ordinal within the alpha memory

    friend bool operator<(const OpStamp& a, const OpStamp& b) {
      if (a.change != b.change) return a.change < b.change;
      if (a.phase != b.phase) return a.phase < b.phase;
      if (a.amem != b.amem) return a.amem < b.amem;
      return a.succ < b.succ;
    }
  };

  /// One worker's buffered op stream, plus a graveyard keeping erased
  /// instantiations alive until the delta is applied (a same-batch
  /// allocation reusing a dead instantiation's address would alias it in
  /// the entries map).
  class Delta {
   public:
    /// Sets the stamp attached to subsequently buffered ops.
    void SetStamp(const OpStamp& stamp) { stamp_ = stamp; }
    bool empty() const { return ops_.empty() && graveyard_.empty(); }
    size_t num_ops() const { return ops_.size(); }

   private:
    friend class ConflictSet;

    struct Op {
      OpStamp stamp;
      bool add;  // true: Add/Touch; false: Remove
      InstantiationRef* inst;
      KeySnapshot keys;  // adds only
    };

    OpStamp stamp_;
    std::vector<Op> ops_;
    std::vector<std::unique_ptr<InstantiationRef>> graveyard_;
  };

  /// Redirects this thread's Add/Touch/Remove/Release calls on `cs` into
  /// `delta` (nullptr restores direct mutation). Thread-local: other
  /// threads and other conflict sets are unaffected.
  static void SetThreadDelta(const ConflictSet* cs, Delta* delta);

  /// RAII redirection that restores the previous redirection — possibly
  /// another conflict set's — on destruction. Replay tasks use this instead
  /// of a bare set/null pair: with nested fork/join, a thread waiting on a
  /// slice sub-batch help-drains the pool queue and can execute another
  /// replay task mid-frame, and a plain null-on-exit there would destroy
  /// the outer frame's buffering.
  class ScopedThreadDelta {
   public:
    ScopedThreadDelta(const ConflictSet* cs, Delta* delta);
    ~ScopedThreadDelta();

    ScopedThreadDelta(const ScopedThreadDelta&) = delete;
    ScopedThreadDelta& operator=(const ScopedThreadDelta&) = delete;

   private:
    const ConflictSet* prev_owner_;
    Delta* prev_delta_;
  };

  /// Applies every buffered op across `deltas` in the merged deterministic
  /// order — (stamp, delta position, buffering order) — then destroys the
  /// graveyards. Delta position must be rule-registration order for the
  /// merge to reproduce the sequential op stream.
  void ApplyDeltas(std::vector<Delta>* deltas);

  /// Destroys a dead instantiation — immediately, or (when this thread is
  /// currently buffering into a delta) after that delta is applied.
  void Release(std::unique_ptr<InstantiationRef> dead);

  /// Inserts `inst`, or reinstates it if present: the fired flag clears,
  /// cached sort keys refresh, and — when the entry had fired — it gets a
  /// fresh `seq`, so a re-activated SOI tie-breaks as the recent arrival it
  /// is rather than keeping the rank of its first insertion.
  void Add(InstantiationRef* inst);

  /// Removes `inst` if present.
  void Remove(InstantiationRef* inst);

  /// Signals that `inst` changed (content or recency): clears fired.
  /// Equivalent to Add; spelled separately for S-node `time` tokens.
  void Touch(InstantiationRef* inst) { Add(inst); }

  /// Marks `inst` fired. With `remove_entry` the entry is dropped entirely
  /// (regular instantiations); otherwise it stays, ineligible until the next
  /// Add/Touch (SOIs).
  void MarkFired(InstantiationRef* inst, bool remove_entry);

  /// Returns the best eligible instantiation under `strategy`, or nullptr.
  InstantiationRef* Select(Strategy strategy) const;

  /// All eligible instantiations, best first — the candidate batch for
  /// parallel firing (§8.1: DIPS "attempts to execute all satisfied
  /// instantiations concurrently").
  std::vector<InstantiationRef*> SortedEligible(Strategy strategy) const;

  /// Total entries (including fired-but-retained SOIs).
  size_t size() const { return entries_.size(); }

  /// Entries that could fire now.
  size_t EligibleCount() const;

  /// All entries in insertion order (stable; for tests and tracing).
  std::vector<InstantiationRef*> Entries() const;

  /// An entry plus its refraction state, for snapshot/restore (src/server):
  /// a fired-but-retained SOI must come back ineligible, and a regular
  /// entry that refraction removed must not resurface after a rebuild.
  struct EntryState {
    InstantiationRef* inst;
    bool fired;
  };

  /// All entries with their fired flags, in insertion order.
  std::vector<EntryState> EntriesWithState() const;

  void Clear();

  bool use_index() const { return use_index_; }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  struct Entry {
    bool fired = false;
    uint64_t seq = 0;
    // Sort keys cached at (re-)insertion; the indexes are keyed on these,
    // never on the live instantiation.
    std::vector<TimeTag> rec;   // recency tags, descending
    TimeTag first_ce = 0;       // MEA primary key
    int specificity = 0;
  };

  /// What the ordered indexes store: the instantiation plus its cached
  /// keys. Entry pointers are stable (unordered_map nodes don't move).
  struct Ref {
    InstantiationRef* inst;
    const Entry* entry;
  };

  /// Best-first ordering over cached keys; `seq` (unique per entry) makes
  /// it a strict total order, so std::set holds one element per entry.
  struct Cmp {
    bool mea;
    uint64_t* comparisons;
    bool operator()(const Ref& a, const Ref& b) const;
  };

  using Index = std::set<Ref, Cmp>;

  // Returns true if `a` should fire before `b`.
  static bool Precedes(Strategy strategy, const Entry& a, const Entry& b);

  static KeySnapshot SnapshotKeys(const InstantiationRef& inst);
  /// Add with pre-computed sort keys (the deferred-apply path never reads
  /// the live instantiation).
  void AddWithKeys(InstantiationRef* inst, KeySnapshot keys);
  /// The non-deferring body of Remove.
  void RemoveNow(InstantiationRef* inst);
  /// This thread's delta for `this`, or nullptr.
  Delta* ThreadDelta() const;
  /// Files / unfiles an eligible entry in both ordered indexes. Unindex
  /// must run *before* any cached-key mutation — erasure locates the
  /// element by the keys it was inserted under.
  void IndexEntry(InstantiationRef* inst, const Entry& e);
  void UnindexEntry(InstantiationRef* inst, const Entry& e);

  const Index& IndexFor(Strategy strategy) const {
    return strategy == Strategy::kMea ? mea_ : lex_;
  }

  bool use_index_;
  obs::MetricRegistry* metrics_ = nullptr;  // borrowed; may be null
  std::unordered_map<InstantiationRef*, Entry> entries_;
  uint64_t next_seq_ = 0;
  mutable Stats stats_;
  Index lex_;
  Index mea_;
};

}  // namespace sorel

#endif  // SOREL_RETE_CONFLICT_SET_H_
