#ifndef SOREL_RETE_CONFLICT_SET_H_
#define SOREL_RETE_CONFLICT_SET_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rete/instantiation.h"

namespace sorel {

/// Conflict-resolution strategies (OPS5).
enum class Strategy { kLex, kMea };

/// The conflict set: all instantiations currently eligible to fire plus
/// fired-but-unchanged SOIs awaiting a change (§6: "if any part of the
/// instantiation changes, the instantiation is again eligible to fire").
///
/// Regular instantiations are removed when they fire (classic refraction —
/// a time-tag-identical instantiation can never re-arise). SOIs stay with a
/// `fired` flag that any subsequent γ-memory change clears via Add/Touch.
class ConflictSet {
 public:
  /// Inserts `inst`, or reinstates it (clears the fired flag) if present.
  void Add(InstantiationRef* inst);

  /// Removes `inst` if present.
  void Remove(InstantiationRef* inst);

  /// Signals that `inst` changed (content or recency): clears fired.
  /// Equivalent to Add; spelled separately for S-node `time` tokens.
  void Touch(InstantiationRef* inst) { Add(inst); }

  /// Marks `inst` fired. With `remove_entry` the entry is dropped entirely
  /// (regular instantiations); otherwise it stays, ineligible until the next
  /// Add/Touch (SOIs).
  void MarkFired(InstantiationRef* inst, bool remove_entry);

  /// Returns the best eligible instantiation under `strategy`, or nullptr.
  InstantiationRef* Select(Strategy strategy) const;

  /// All eligible instantiations, best first — the candidate batch for
  /// parallel firing (§8.1: DIPS "attempts to execute all satisfied
  /// instantiations concurrently").
  std::vector<InstantiationRef*> SortedEligible(Strategy strategy) const;

  /// Total entries (including fired-but-retained SOIs).
  size_t size() const { return entries_.size(); }

  /// Entries that could fire now.
  size_t EligibleCount() const;

  /// All entries in insertion order (stable; for tests and tracing).
  std::vector<InstantiationRef*> Entries() const;

  void Clear() { entries_.clear(); }

 private:
  struct Entry {
    bool fired = false;
    uint64_t seq = 0;
  };

  // Returns true if `a` should fire before `b`.
  static bool Precedes(Strategy strategy, const InstantiationRef& a,
                       uint64_t seq_a, const InstantiationRef& b,
                       uint64_t seq_b);

  std::unordered_map<InstantiationRef*, Entry> entries_;
  uint64_t next_seq_ = 0;
};

}  // namespace sorel

#endif  // SOREL_RETE_CONFLICT_SET_H_
