#include "rete/token.h"

namespace sorel {

const Wme* WmeAt(const Token* t, int pos) {
  // Count the wme-bearing depth of the chain, then walk to `pos`.
  int depth = 0;
  for (const Token* cur = t; cur != nullptr; cur = cur->parent) {
    if (cur->wme != nullptr) ++depth;
  }
  if (pos < 0 || pos >= depth) return nullptr;
  int remaining = depth - 1 - pos;  // wme-bearing ancestors to skip
  for (const Token* cur = t; cur != nullptr; cur = cur->parent) {
    if (cur->wme == nullptr) continue;
    if (remaining == 0) return cur->wme.get();
    --remaining;
  }
  return nullptr;
}

void TokenRow(const Token* t, Row* out) {
  int depth = 0;
  for (const Token* cur = t; cur != nullptr; cur = cur->parent) {
    if (cur->wme != nullptr) ++depth;
  }
  out->assign(static_cast<size_t>(depth), nullptr);
  int i = depth - 1;
  for (const Token* cur = t; cur != nullptr; cur = cur->parent) {
    if (cur->wme == nullptr) continue;
    (*out)[static_cast<size_t>(i--)] = cur->wme;
  }
}

}  // namespace sorel
