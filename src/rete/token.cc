#include "rete/token.h"

#include <algorithm>

namespace sorel {

const Wme* WmeAt(const Token* t, int pos) {
  // Count the wme-bearing depth of the chain, then walk to `pos`.
  int depth = 0;
  for (const Token* cur = t; cur != nullptr; cur = cur->parent) {
    if (cur->wme != nullptr) ++depth;
  }
  if (pos < 0 || pos >= depth) return nullptr;
  int remaining = depth - 1 - pos;  // wme-bearing ancestors to skip
  for (const Token* cur = t; cur != nullptr; cur = cur->parent) {
    if (cur->wme == nullptr) continue;
    if (remaining == 0) return cur->wme.get();
    --remaining;
  }
  return nullptr;
}

void TokenRow(const Token* t, Row* out) {
  int depth = 0;
  for (const Token* cur = t; cur != nullptr; cur = cur->parent) {
    if (cur->wme != nullptr) ++depth;
  }
  out->assign(static_cast<size_t>(depth), nullptr);
  int i = depth - 1;
  for (const Token* cur = t; cur != nullptr; cur = cur->parent) {
    if (cur->wme == nullptr) continue;
    (*out)[static_cast<size_t>(i--)] = cur->wme;
  }
}

size_t JoinKeyHash::operator()(const JoinKey& key) const {
  size_t h = 0x9e3779b97f4a7c15ull;
  for (const Value& v : key.values) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

void TokenIndex::Insert(const JoinKey& key, Token* t) {
  buckets_[key].push_back(t);
}

void TokenIndex::Remove(const JoinKey& key, Token* t) {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return;
  auto& bucket = it->second;
  bucket.erase(std::remove(bucket.begin(), bucket.end(), t), bucket.end());
  if (bucket.empty()) buckets_.erase(it);
}

const std::vector<Token*>* TokenIndex::Find(const JoinKey& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? nullptr : &it->second;
}

}  // namespace sorel
