#include "rete/token.h"

#include <algorithm>

namespace sorel {

const Wme* WmeAt(const Token* t, int pos) {
  // Count the wme-bearing depth of the chain, then walk to `pos`.
  int depth = 0;
  for (const Token* cur = t; cur != nullptr; cur = cur->parent) {
    if (cur->wme != nullptr) ++depth;
  }
  if (pos < 0 || pos >= depth) return nullptr;
  int remaining = depth - 1 - pos;  // wme-bearing ancestors to skip
  for (const Token* cur = t; cur != nullptr; cur = cur->parent) {
    if (cur->wme == nullptr) continue;
    if (remaining == 0) return cur->wme.get();
    --remaining;
  }
  return nullptr;
}

void TokenRow(const Token* t, Row* out) {
  int depth = 0;
  for (const Token* cur = t; cur != nullptr; cur = cur->parent) {
    if (cur->wme != nullptr) ++depth;
  }
  out->assign(static_cast<size_t>(depth), nullptr);
  int i = depth - 1;
  for (const Token* cur = t; cur != nullptr; cur = cur->parent) {
    if (cur->wme == nullptr) continue;
    (*out)[static_cast<size_t>(i--)] = cur->wme;
  }
}

TokenArena::~TokenArena() {
  // Slab tokens are destroyed by the unique_ptr<Token[]> deleters (running
  // ~Token releases any WmePtr a live token still holds); heap-mode tokens
  // are tracked in heap_ exactly once each, live or recycled.
  for (Token* t : heap_) delete t;
}

void TokenArena::set_slab_size(size_t n) {
  if (slabs_.empty() && heap_.empty()) slab_size_ = n;
}

Token* TokenArena::Alloc(bool* pool_hit, bool* new_slab) {
  *new_slab = false;
  if (!free_.empty()) {
    Token* t = free_.back();
    free_.pop_back();
    *pool_hit = true;
    return t;
  }
  *pool_hit = false;
  if (slab_size_ == 0) {
    Token* t = new Token;
    t->self = static_cast<TokenId>(heap_.size());
    heap_.push_back(t);
    return t;
  }
  if (slabs_.empty() || used_in_last_ == slab_size_) {
    slabs_.push_back(std::make_unique<Token[]>(slab_size_));
    used_in_last_ = 0;
    *new_slab = true;
  }
  Token* t = &slabs_.back()[used_in_last_];
  t->self = static_cast<TokenId>((slabs_.size() - 1) * slab_size_ +
                                 used_in_last_);
  ++used_in_last_;
  return t;
}

size_t JoinKeyHash::operator()(const JoinKey& key) const {
  size_t h = 0x9e3779b97f4a7c15ull;
  for (const Value& v : key.values) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

void TokenIndex::Insert(const JoinKey& key, TokenId t) {
  buckets_[key].push_back(t);
}

void TokenIndex::Remove(const JoinKey& key, TokenId t) {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return;
  auto& bucket = it->second;
  bucket.erase(std::remove(bucket.begin(), bucket.end(), t), bucket.end());
  if (bucket.empty()) buckets_.erase(it);
}

const std::vector<TokenId>* TokenIndex::Find(const JoinKey& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? nullptr : &it->second;
}

}  // namespace sorel
