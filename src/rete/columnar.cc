#include "rete/columnar.h"

#include <utility>

namespace sorel {

void AlphaColumns::Compact(std::vector<uint32_t>* remap) {
  size_t n = tags_.size();
  remap->assign(n, kNoRow);
  uint32_t out = 0;
  for (uint32_t row = 0; row < n; ++row) {
    if (alive_[row] == 0) continue;
    (*remap)[row] = out;
    if (out != row) {
      tags_[out] = tags_[row];
      wmes_[out] = std::move(wmes_[row]);
      alive_[out] = 1;
    }
    ++out;
  }
  tags_.resize(out);
  wmes_.resize(out);
  alive_.resize(out);
  for (auto& [tag, row] : row_of_) row = (*remap)[row];
  // Cap peak RSS once a memory has drained far below its high-water mark;
  // small or mostly-full columns keep their capacity for reuse.
  if (tags_.capacity() >= 1024 && tags_.size() * 4 <= tags_.capacity()) {
    tags_.shrink_to_fit();
    wmes_.shrink_to_fit();
    alive_.shrink_to_fit();
  }
}

}  // namespace sorel
