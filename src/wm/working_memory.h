#ifndef SOREL_WM_WORKING_MEMORY_H_
#define SOREL_WM_WORKING_MEMORY_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "base/status.h"
#include "base/symbol_table.h"
#include "base/value.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "wm/change_batch.h"
#include "wm/schema.h"
#include "wm/wme.h"

namespace sorel {

/// One change of a recovered ChangeBatch, as read back from a server WAL
/// record (src/server/wal.h). Unlike a live `WmChange` it carries the
/// original time tag explicitly: commit-time netting can leave gaps in a
/// batch's tag sequence, so replay must not let the counter re-derive them.
struct ReplayChange {
  bool added = true;
  TimeTag tag = 0;
  SymbolId cls = kInvalidSymbol;     // adds only
  std::vector<Value> fields;         // adds only
  TimeTag modify_pair = 0;
};

/// The working memory: the set of live WMEs, indexed by time tag.
///
/// Matchers (Rete, TREAT, DIPS) subscribe as `Listener`s. Outside a
/// transaction every add/remove is delivered synchronously through
/// `OnAdd`/`OnRemove`, which is what drives incremental matching. Inside a
/// `Begin`/`Commit` transaction, changes apply to the live set immediately
/// (reads see them) but listener delivery is deferred: the whole staged
/// sequence arrives as one `OnBatch` at top-level commit, and `Rollback`
/// undoes the staged changes without listeners ever observing them — the
/// all-or-nothing semantics §8.1's DIPS transactions call for.
class WorkingMemory {
 public:
  /// Receives WM change notifications. Listeners must not mutate WM from
  /// inside a callback (the engine serializes all mutations).
  class Listener {
   public:
    virtual ~Listener() = default;
    virtual void OnAdd(const WmePtr& wme) = 0;
    virtual void OnRemove(const WmePtr& wme) = 0;
    /// A committed transaction's changes, in staging order. The default
    /// adapter replays them through the per-WME callbacks, so listeners
    /// that never heard of batches keep working; matchers override this
    /// with a native batched path.
    virtual void OnBatch(const ChangeBatch& batch) {
      for (const WmChange& c : batch.changes) {
        if (c.added) {
          OnAdd(c.wme);
        } else {
          OnRemove(c.wme);
        }
      }
    }
  };

  /// Counters for the propagation boundary (see Engine::match_stats()).
  struct Stats {
    uint64_t adds = 0;
    uint64_t removes = 0;
    /// Per-WME notifications delivered outside transactions (each one is a
    /// full propagation wave through every listener).
    uint64_t direct_events = 0;
    /// OnBatch deliveries (one propagation wave per committed transaction).
    uint64_t batches = 0;
    /// Changes delivered inside those batches.
    uint64_t batched_changes = 0;
    uint64_t rollbacks = 0;
    uint64_t changes_rolled_back = 0;
    /// Slab-pool recycling (EngineOptions::wme_arena). Only populated in
    /// Engine::match_stats() snapshots — the live numbers belong to the
    /// pool, not this struct — and zero when the pool is disabled.
    uint64_t wme_pool_hits = 0;
    uint64_t wme_slabs = 0;
  };

  /// `metrics` / `tracer` (borrowed, may be null) hook this WM into the
  /// observability layer: the wm.* counters register as registry views and
  /// top-level commits / rollbacks emit batch_commit / rollback events.
  /// `slab_wmes` allocates WMEs from a block-recycling slab pool
  /// (EngineOptions::wme_arena; off falls back to make_shared).
  WorkingMemory(const SchemaRegistry* schemas, const SymbolTable* symbols,
                obs::MetricRegistry* metrics = nullptr,
                obs::Tracer* tracer = nullptr, bool slab_wmes = true);
  ~WorkingMemory();

  WorkingMemory(const WorkingMemory&) = delete;
  WorkingMemory& operator=(const WorkingMemory&) = delete;

  void AddListener(Listener* listener) { listeners_.push_back(listener); }
  void RemoveListener(Listener* listener);

  /// Creates a WME of class `cls` with the given attribute values
  /// (unmentioned attributes are nil). Errors on unknown class/attribute.
  Result<WmePtr> Make(SymbolId cls,
                      const std::vector<std::pair<SymbolId, Value>>& values);

  /// Creates a WME with a full field vector (sized to the class schema).
  Result<WmePtr> MakeFromFields(SymbolId cls, std::vector<Value> fields);

  /// Removes the WME with `tag`. Errors if no such live WME.
  Status Remove(TimeTag tag);

  /// OPS5 modify: removes `tag` and re-makes its class with `fields` under a
  /// fresh time tag, staging the two halves as a linked delta pair when
  /// inside a transaction. Returns the new WME.
  Result<WmePtr> Replace(TimeTag tag, std::vector<Value> fields);

  // --- transactions ---
  /// Opens a (possibly nested) transaction. Changes staged inside are
  /// visible to reads immediately but withheld from listeners until the
  /// outermost Commit.
  void Begin();
  /// Closes the innermost transaction. At top level, delivers all staged
  /// changes to every listener as one ChangeBatch. Errors if no transaction
  /// is open.
  Status Commit();
  /// Aborts the innermost transaction: undoes its staged changes (live set
  /// and time-tag counter restored) and discards them. Listeners never
  /// observe them.
  void Rollback();
  bool InTransaction() const { return !savepoints_.empty(); }
  size_t transaction_depth() const { return savepoints_.size(); }

  // --- WAL recovery (src/server) ---
  /// Re-applies a recovered change sequence exactly as recorded: adds
  /// re-make their WMEs under the original time tags, removes retract by
  /// tag, and every change keeps its recorded modify pairing. With
  /// `transactional`, the whole sequence is wrapped in Begin/Commit and
  /// reaches listeners as one ChangeBatch — the normal batch path — and
  /// otherwise each change is delivered as a direct per-WME event, exactly
  /// as the live run delivered it. `next_tag_after` restores the tag
  /// counter to its recorded post-commit value (netting can make it run
  /// ahead of the last add in the batch). Errors if `transactional` is
  /// requested inside an open transaction, on a tag collision with a live
  /// WME, or on a schema mismatch; a failed transactional replay rolls
  /// back.
  Status ApplyReplay(const std::vector<ReplayChange>& changes,
                     TimeTag next_tag_after, bool transactional);

  /// Live WME with `tag`, or nullptr.
  WmePtr Find(TimeTag tag) const;

  /// Live WMEs in time-tag order.
  std::vector<WmePtr> Snapshot() const;

  size_t size() const { return live_.size(); }
  /// Next time tag that will be assigned (monotone counter, never reused).
  TimeTag next_time_tag() const { return next_tag_; }

  const SchemaRegistry& schemas() const { return *schemas_; }
  const SymbolTable& symbols() const { return *symbols_; }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  void NotifyAdd(const WmePtr& wme, TimeTag modify_pair);
  void NotifyRemove(const WmePtr& wme, TimeTag modify_pair);
  /// WME construction: through the slab pool when enabled, make_shared
  /// otherwise.
  WmePtr AllocateWme(SymbolId cls, std::vector<Value> fields, TimeTag tag);

  const SchemaRegistry* schemas_;
  const SymbolTable* symbols_;
  obs::MetricRegistry* metrics_ = nullptr;  // borrowed; may be null
  obs::Tracer* tracer_ = nullptr;           // borrowed; may be null
  std::map<TimeTag, WmePtr> live_;
  std::vector<Listener*> listeners_;
  TimeTag next_tag_ = 1;
  /// Staged changes of the open transaction stack (all depths, in order);
  /// doubles as the rollback undo log.
  std::vector<WmChange> staged_;
  struct Savepoint {
    size_t mark;       // staged_ size at Begin
    TimeTag next_tag;  // tag counter at Begin, restored on Rollback
  };
  /// One entry per open transaction.
  std::vector<Savepoint> savepoints_;
  Stats stats_;
  /// Slab pool for WME blocks (null when slab allocation is disabled).
  /// shared_ptr: every WME's control block co-owns the pool, so WMEs that
  /// outlive this WorkingMemory still free into live storage.
  std::shared_ptr<class WmeBlockPool> wme_pool_;
};

}  // namespace sorel

#endif  // SOREL_WM_WORKING_MEMORY_H_
