#ifndef SOREL_WM_WORKING_MEMORY_H_
#define SOREL_WM_WORKING_MEMORY_H_

#include <map>
#include <utility>
#include <vector>

#include "base/status.h"
#include "base/symbol_table.h"
#include "base/value.h"
#include "wm/schema.h"
#include "wm/wme.h"

namespace sorel {

/// The working memory: the set of live WMEs, indexed by time tag.
///
/// Matchers (Rete, TREAT, DIPS) subscribe as `Listener`s and receive every
/// add/remove synchronously, which is what drives incremental matching.
class WorkingMemory {
 public:
  /// Receives WM change notifications. Listeners must not mutate WM from
  /// inside a callback (the engine serializes all mutations).
  class Listener {
   public:
    virtual ~Listener() = default;
    virtual void OnAdd(const WmePtr& wme) = 0;
    virtual void OnRemove(const WmePtr& wme) = 0;
  };

  WorkingMemory(const SchemaRegistry* schemas, const SymbolTable* symbols)
      : schemas_(schemas), symbols_(symbols) {}

  WorkingMemory(const WorkingMemory&) = delete;
  WorkingMemory& operator=(const WorkingMemory&) = delete;

  void AddListener(Listener* listener) { listeners_.push_back(listener); }
  void RemoveListener(Listener* listener);

  /// Creates a WME of class `cls` with the given attribute values
  /// (unmentioned attributes are nil). Errors on unknown class/attribute.
  Result<WmePtr> Make(SymbolId cls,
                      const std::vector<std::pair<SymbolId, Value>>& values);

  /// Creates a WME with a full field vector (sized to the class schema).
  Result<WmePtr> MakeFromFields(SymbolId cls, std::vector<Value> fields);

  /// Removes the WME with `tag`. Errors if no such live WME.
  Status Remove(TimeTag tag);

  /// Live WME with `tag`, or nullptr.
  WmePtr Find(TimeTag tag) const;

  /// Live WMEs in time-tag order.
  std::vector<WmePtr> Snapshot() const;

  size_t size() const { return live_.size(); }
  /// Next time tag that will be assigned (monotone counter, never reused).
  TimeTag next_time_tag() const { return next_tag_; }

  const SchemaRegistry& schemas() const { return *schemas_; }
  const SymbolTable& symbols() const { return *symbols_; }

 private:
  const SchemaRegistry* schemas_;
  const SymbolTable* symbols_;
  std::map<TimeTag, WmePtr> live_;
  std::vector<Listener*> listeners_;
  TimeTag next_tag_ = 1;
};

}  // namespace sorel

#endif  // SOREL_WM_WORKING_MEMORY_H_
