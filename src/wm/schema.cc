#include "wm/schema.h"

#include <string>
#include <utility>

namespace sorel {

ClassSchema::ClassSchema(SymbolId cls, std::vector<SymbolId> attrs)
    : cls_(cls), attrs_(std::move(attrs)) {
  for (int i = 0; i < static_cast<int>(attrs_.size()); ++i) {
    index_.emplace(attrs_[i], i);
  }
}

int ClassSchema::FieldOf(SymbolId attr) const {
  auto it = index_.find(attr);
  return it == index_.end() ? -1 : it->second;
}

Status SchemaRegistry::Declare(SymbolId cls, std::vector<SymbolId> attrs,
                               const SymbolTable& symbols) {
  auto it = schemas_.find(cls);
  if (it != schemas_.end()) {
    if (it->second.attrs() == attrs) return Status::Ok();
    return Status::InvalidArgument(
        "class '" + std::string(symbols.Name(cls)) +
        "' re-declared with a different attribute list");
  }
  schemas_.emplace(cls, ClassSchema(cls, std::move(attrs)));
  return Status::Ok();
}

const ClassSchema* SchemaRegistry::Find(SymbolId cls) const {
  auto it = schemas_.find(cls);
  return it == schemas_.end() ? nullptr : &it->second;
}

}  // namespace sorel
