#ifndef SOREL_WM_WME_H_
#define SOREL_WM_WME_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/symbol_table.h"
#include "base/value.h"
#include "wm/schema.h"

namespace sorel {

/// Time tag type. Time tags are assigned in strictly increasing order and
/// uniquely identify a WME for its whole lifetime (paper §3: "Each WME has a
/// time tag that uniquely identifies it").
using TimeTag = int64_t;

/// A working memory element: an instance of a `literalize`d class with one
/// `Value` per declared attribute. Immutable once created; "modify" is
/// remove + make with a fresh time tag, as in OPS5.
class Wme {
 public:
  Wme(SymbolId cls, std::vector<Value> fields, TimeTag time_tag)
      : cls_(cls), fields_(std::move(fields)), time_tag_(time_tag) {}

  SymbolId cls() const { return cls_; }
  TimeTag time_tag() const { return time_tag_; }
  const std::vector<Value>& fields() const { return fields_; }
  /// Value of field `i`; `i` must be a valid field index of the class.
  const Value& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  int num_fields() const { return static_cast<int>(fields_.size()); }

  /// "tag: (class ^attr value ...)" — only non-nil attributes are printed.
  std::string ToString(const SymbolTable& symbols,
                       const ClassSchema& schema) const;

 private:
  SymbolId cls_;
  std::vector<Value> fields_;
  TimeTag time_tag_;
};

/// Shared immutable handle. Tokens and instantiation snapshots keep WMEs
/// alive after removal from working memory.
using WmePtr = std::shared_ptr<const Wme>;

}  // namespace sorel

#endif  // SOREL_WM_WME_H_
