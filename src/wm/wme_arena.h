#ifndef SOREL_WM_WME_ARENA_H_
#define SOREL_WM_WME_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace sorel {

/// Fixed-size-block slab pool backing WME storage. WMEs are created with
/// `std::allocate_shared`, so every block is one combined shared_ptr
/// control block + `Wme` payload; the first allocation's size bootstraps
/// the pool's block size and anything else falls through to plain
/// operator new.
///
/// Threading: allocation happens only on the WM mutation thread, but the
/// *last* reference to a removed WME is often dropped inside a parallel
/// match replay, so deallocation can race in from worker threads. The
/// free list is therefore a Treiber stack — lock-free pushes from any
/// thread, pops from the single allocating thread (single-popper, so the
/// classic ABA hazard cannot arise: a node this thread is mid-pop on
/// cannot be re-allocated and re-pushed by anyone else).
///
/// Lifetime: WorkingMemory holds the pool through a shared_ptr, and every
/// control block stores a `WmeSlabAllocator` copy holding another
/// reference — so the pool outlives every WME it carved, even WMEs that
/// outlive the WorkingMemory itself (snapshots, instantiation rows).
class WmeBlockPool {
 public:
  struct Stats {
    uint64_t pool_hits = 0;  // allocations served from the free list
    uint64_t slabs = 0;      // slabs carved since the last reset
  };

  explicit WmeBlockPool(size_t blocks_per_slab = 512)
      : blocks_per_slab_(blocks_per_slab) {}

  WmeBlockPool(const WmeBlockPool&) = delete;
  WmeBlockPool& operator=(const WmeBlockPool&) = delete;

  void* Alloc(size_t size) {
    if (block_size_ == 0) {
      block_size_ = RoundUp(size);
    } else if (RoundUp(size) != block_size_) {
      return ::operator new(size);
    }
    FreeNode* head = free_head_.load(std::memory_order_acquire);
    while (head != nullptr &&
           !free_head_.compare_exchange_weak(head, head->next,
                                             std::memory_order_acquire,
                                             std::memory_order_acquire)) {
    }
    if (head != nullptr) {
      ++stats_.pool_hits;
      return head;
    }
    if (slabs_.empty() || used_in_last_ == blocks_per_slab_) {
      slabs_.push_back(std::make_unique<char[]>(block_size_ *
                                                blocks_per_slab_));
      used_in_last_ = 0;
      ++stats_.slabs;
    }
    return slabs_.back().get() + block_size_ * used_in_last_++;
  }

  void Free(void* p, size_t size) {
    if (RoundUp(size) != block_size_) {
      ::operator delete(p);
      return;
    }
    auto* node = static_cast<FreeNode*>(p);
    FreeNode* head = free_head_.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!free_head_.compare_exchange_weak(head, node,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
  }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

  /// Bytes held by the carved slabs (free-listed blocks included — they
  /// belong to a slab). Read from the allocating thread.
  size_t bytes_held() const {
    return slabs_.size() * block_size_ * blocks_per_slab_;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  /// Blocks must hold a FreeNode when recycled and keep every payload
  /// suitably aligned within a max_align_t-aligned slab.
  static size_t RoundUp(size_t size) {
    size_t a = alignof(std::max_align_t);
    size_t n = size < sizeof(FreeNode) ? sizeof(FreeNode) : size;
    return (n + a - 1) / a * a;
  }

  const size_t blocks_per_slab_;
  size_t block_size_ = 0;  // set by the first allocation
  std::vector<std::unique_ptr<char[]>> slabs_;
  size_t used_in_last_ = 0;
  std::atomic<FreeNode*> free_head_{nullptr};
  Stats stats_;  // mutated on the allocating thread only
};

/// std allocator adapter handing allocate_shared's single-object blocks to
/// a WmeBlockPool. Copies (including the one stored in each control block)
/// share the pool and keep it alive.
template <typename T>
class WmeSlabAllocator {
 public:
  using value_type = T;

  explicit WmeSlabAllocator(std::shared_ptr<WmeBlockPool> pool)
      : pool_(std::move(pool)) {}

  template <typename U>
  WmeSlabAllocator(const WmeSlabAllocator<U>& other) : pool_(other.pool_) {}

  T* allocate(size_t n) {
    if (n == 1) return static_cast<T*>(pool_->Alloc(sizeof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, size_t n) {
    if (n == 1) {
      pool_->Free(p, sizeof(T));
      return;
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const WmeSlabAllocator<U>& other) const {
    return pool_ == other.pool_;
  }

  // Public so the converting constructor can read across instantiations.
  std::shared_ptr<WmeBlockPool> pool_;
};

}  // namespace sorel

#endif  // SOREL_WM_WME_ARENA_H_
