#ifndef SOREL_WM_SCHEMA_H_
#define SOREL_WM_SCHEMA_H_

#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/symbol_table.h"

namespace sorel {

/// Attribute layout of one WME class, declared with `(literalize ...)`.
/// Maps attribute names to dense field indices, as OPS5 does.
class ClassSchema {
 public:
  ClassSchema(SymbolId cls, std::vector<SymbolId> attrs);

  SymbolId cls() const { return cls_; }
  /// Declared attributes in declaration order.
  const std::vector<SymbolId>& attrs() const { return attrs_; }
  int num_fields() const { return static_cast<int>(attrs_.size()); }

  /// Field index for `attr`, or -1 if not declared.
  int FieldOf(SymbolId attr) const;

 private:
  SymbolId cls_;
  std::vector<SymbolId> attrs_;
  std::unordered_map<SymbolId, int> index_;
};

/// Registry of all `literalize` declarations known to an engine.
class SchemaRegistry {
 public:
  /// Declares class `cls` with attributes `attrs`. Re-declaring an existing
  /// class with a different attribute list is an error; an identical
  /// re-declaration is a no-op.
  Status Declare(SymbolId cls, std::vector<SymbolId> attrs,
                 const SymbolTable& symbols);

  /// Returns the schema for `cls`, or nullptr if undeclared.
  const ClassSchema* Find(SymbolId cls) const;

  size_t size() const { return schemas_.size(); }

 private:
  std::unordered_map<SymbolId, ClassSchema> schemas_;
};

}  // namespace sorel

#endif  // SOREL_WM_SCHEMA_H_
