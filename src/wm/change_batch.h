#ifndef SOREL_WM_CHANGE_BATCH_H_
#define SOREL_WM_CHANGE_BATCH_H_

#include <cstddef>
#include <vector>

#include "wm/wme.h"

namespace sorel {

/// One staged working-memory change inside a transaction.
struct WmChange {
  WmePtr wme;
  bool added;  // false: removal
  /// For the two halves of a modify (remove + re-make delta pair): the time
  /// tag of the paired WME (the new one on the removal, the old one on the
  /// addition). 0 for a plain make/remove.
  TimeTag modify_pair = 0;
};

/// The unit delivered to `WorkingMemory::Listener::OnBatch`: every change a
/// transaction committed, in staging order. Removals and additions may
/// interleave (a `set-modify` stages remove/add pairs per member); matchers
/// that reorder internally must preserve the observable match state the
/// in-order replay would produce.
struct ChangeBatch {
  std::vector<WmChange> changes;

  bool empty() const { return changes.empty(); }
  size_t size() const { return changes.size(); }
  size_t num_adds() const {
    size_t n = 0;
    for (const WmChange& c : changes) n += c.added ? 1 : 0;
    return n;
  }
  size_t num_removes() const { return changes.size() - num_adds(); }
};

}  // namespace sorel

#endif  // SOREL_WM_CHANGE_BATCH_H_
