#include "wm/working_memory.h"

#include <algorithm>
#include <string>

#include "wm/wme.h"
#include "wm/wme_arena.h"

namespace sorel {

std::string Wme::ToString(const SymbolTable& symbols,
                          const ClassSchema& schema) const {
  std::string out = std::to_string(time_tag_) + ": (";
  out += symbols.Name(cls_);
  for (int i = 0; i < num_fields(); ++i) {
    if (field(i).is_nil()) continue;
    out += " ^";
    out += symbols.Name(schema.attrs()[static_cast<size_t>(i)]);
    out += " ";
    out += field(i).ToString(symbols);
  }
  out += ")";
  return out;
}

WorkingMemory::WorkingMemory(const SchemaRegistry* schemas,
                             const SymbolTable* symbols,
                             obs::MetricRegistry* metrics, obs::Tracer* tracer,
                             bool slab_wmes)
    : schemas_(schemas), symbols_(symbols), metrics_(metrics),
      tracer_(tracer) {
  if (slab_wmes) wme_pool_ = std::make_shared<WmeBlockPool>();
  if (metrics_ == nullptr) return;
  if (wme_pool_ != nullptr) {
    metrics_->RegisterCounter(this, "wm.wme_pool_hits", [this] {
      return wme_pool_->stats().pool_hits;
    });
    metrics_->RegisterCounter(
        this, "wm.wme_slabs", [this] { return wme_pool_->stats().slabs; });
    metrics_->RegisterGauge(this, "wm.arena_bytes", [this] {
      return static_cast<double>(wme_pool_->bytes_held());
    });
  }
  metrics_->RegisterCounter(this, "wm.adds", [this] { return stats_.adds; });
  metrics_->RegisterCounter(this, "wm.removes",
                            [this] { return stats_.removes; });
  metrics_->RegisterCounter(this, "wm.direct_events",
                            [this] { return stats_.direct_events; });
  metrics_->RegisterCounter(this, "wm.batches",
                            [this] { return stats_.batches; });
  metrics_->RegisterCounter(this, "wm.batched_changes",
                            [this] { return stats_.batched_changes; });
  metrics_->RegisterCounter(this, "wm.rollbacks",
                            [this] { return stats_.rollbacks; });
  metrics_->RegisterCounter(this, "wm.changes_rolled_back",
                            [this] { return stats_.changes_rolled_back; });
  metrics_->RegisterGauge(this, "wm.size",
                          [this] { return static_cast<double>(live_.size()); });
  metrics_->RegisterReset(this, [this] {
    ResetStats();
    if (wme_pool_ != nullptr) wme_pool_->ResetStats();
  });
}

WmePtr WorkingMemory::AllocateWme(SymbolId cls, std::vector<Value> fields,
                                  TimeTag tag) {
  if (wme_pool_ != nullptr) {
    // allocate_shared puts the Wme and its control block in one pool
    // block; the stored allocator copy keeps the pool alive until the
    // block frees itself back (possibly from a match worker thread — the
    // pool's free list is lock-free for exactly that push).
    return std::allocate_shared<Wme>(WmeSlabAllocator<Wme>(wme_pool_), cls,
                                     std::move(fields), tag);
  }
  return std::make_shared<const Wme>(cls, std::move(fields), tag);
}

WorkingMemory::~WorkingMemory() {
  if (metrics_ != nullptr) metrics_->Unregister(this);
}

void WorkingMemory::RemoveListener(Listener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

Result<WmePtr> WorkingMemory::Make(
    SymbolId cls, const std::vector<std::pair<SymbolId, Value>>& values) {
  const ClassSchema* schema = schemas_->Find(cls);
  if (schema == nullptr) {
    return Status::InvalidArgument("make: class '" +
                                   std::string(symbols_->Name(cls)) +
                                   "' was never literalized");
  }
  std::vector<Value> fields(static_cast<size_t>(schema->num_fields()));
  for (const auto& [attr, value] : values) {
    int field = schema->FieldOf(attr);
    if (field < 0) {
      return Status::InvalidArgument(
          "make: class '" + std::string(symbols_->Name(cls)) +
          "' has no attribute '" + std::string(symbols_->Name(attr)) + "'");
    }
    fields[static_cast<size_t>(field)] = value;
  }
  return MakeFromFields(cls, std::move(fields));
}

Result<WmePtr> WorkingMemory::MakeFromFields(SymbolId cls,
                                             std::vector<Value> fields) {
  const ClassSchema* schema = schemas_->Find(cls);
  if (schema == nullptr) {
    return Status::InvalidArgument("make: class '" +
                                   std::string(symbols_->Name(cls)) +
                                   "' was never literalized");
  }
  if (static_cast<int>(fields.size()) != schema->num_fields()) {
    return Status::InvalidArgument("make: wrong field count for class '" +
                                   std::string(symbols_->Name(cls)) + "'");
  }
  WmePtr wme = AllocateWme(cls, std::move(fields), next_tag_++);
  live_.emplace(wme->time_tag(), wme);
  NotifyAdd(wme, /*modify_pair=*/0);
  return wme;
}

Status WorkingMemory::Remove(TimeTag tag) {
  auto it = live_.find(tag);
  if (it == live_.end()) {
    return Status::NotFound("remove: no live WME with time tag " +
                            std::to_string(tag));
  }
  WmePtr wme = it->second;
  live_.erase(it);
  NotifyRemove(wme, /*modify_pair=*/0);
  return Status::Ok();
}

Result<WmePtr> WorkingMemory::Replace(TimeTag tag, std::vector<Value> fields) {
  auto it = live_.find(tag);
  if (it == live_.end()) {
    return Status::NotFound("modify: no live WME with time tag " +
                            std::to_string(tag));
  }
  WmePtr old = it->second;
  const ClassSchema* schema = schemas_->Find(old->cls());
  if (static_cast<int>(fields.size()) != schema->num_fields()) {
    return Status::InvalidArgument("modify: wrong field count for class '" +
                                   std::string(symbols_->Name(old->cls())) +
                                   "'");
  }
  WmePtr wme = AllocateWme(old->cls(), std::move(fields), next_tag_++);
  live_.erase(it);
  NotifyRemove(old, /*modify_pair=*/wme->time_tag());
  live_.emplace(wme->time_tag(), wme);
  NotifyAdd(wme, /*modify_pair=*/tag);
  return wme;
}

void WorkingMemory::NotifyAdd(const WmePtr& wme, TimeTag modify_pair) {
  ++stats_.adds;
  if (InTransaction()) {
    staged_.push_back({wme, /*added=*/true, modify_pair});
    return;
  }
  ++stats_.direct_events;
  for (Listener* l : listeners_) l->OnAdd(wme);
}

void WorkingMemory::NotifyRemove(const WmePtr& wme, TimeTag modify_pair) {
  ++stats_.removes;
  if (InTransaction()) {
    // Staged even when the add is in the same transaction: the staged
    // sequence doubles as the undo log, and a rollback to a savepoint
    // between the add and this remove must restore the WME. Never-
    // observable pairs are netted out at top-level commit instead.
    staged_.push_back({wme, /*added=*/false, modify_pair});
    return;
  }
  ++stats_.direct_events;
  for (Listener* l : listeners_) l->OnRemove(wme);
}

void WorkingMemory::Begin() { savepoints_.push_back({staged_.size(), next_tag_}); }

Status WorkingMemory::Commit() {
  if (savepoints_.empty()) {
    return Status::InvalidArgument("commit: no open transaction");
  }
  savepoints_.pop_back();
  if (!savepoints_.empty()) return Status::Ok();  // nested: defer delivery
  if (staged_.empty()) return Status::Ok();
  ChangeBatch batch;
  batch.changes.reserve(staged_.size());
  // A WME both made and removed inside the transaction was never
  // observable: net the pair out of the delivered batch.
  std::vector<TimeTag> netted;
  for (WmChange& c : staged_) {
    if (!c.added) {
      bool cancelled = false;
      for (size_t i = batch.changes.size(); i-- > 0;) {
        WmChange& add = batch.changes[i];
        if (add.added && add.wme->time_tag() == c.wme->time_tag()) {
          netted.push_back(add.wme->time_tag());
          batch.changes.erase(batch.changes.begin() +
                              static_cast<ptrdiff_t>(i));
          cancelled = true;
          break;
        }
      }
      if (cancelled) continue;
    }
    batch.changes.push_back(std::move(c));
  }
  staged_.clear();
  if (batch.changes.empty()) return Status::Ok();
  // A netted WME's modify partner survives as a plain add/remove.
  for (WmChange& c : batch.changes) {
    for (TimeTag dead : netted) {
      if (c.modify_pair == dead) c.modify_pair = 0;
    }
  }
  ++stats_.batches;
  stats_.batched_changes += batch.changes.size();
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Emit(obs::TraceEvent("batch_commit")
                      .Num("changes", batch.changes.size()));
  }
  for (Listener* l : listeners_) l->OnBatch(batch);
  return Status::Ok();
}

void WorkingMemory::Rollback() {
  if (savepoints_.empty()) return;
  Savepoint sp = savepoints_.back();
  savepoints_.pop_back();
  ++stats_.rollbacks;
  stats_.changes_rolled_back += staged_.size() - sp.mark;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Emit(
        obs::TraceEvent("rollback").Num("changes", staged_.size() - sp.mark));
  }
  // Undo newest-first so interleaved modify pairs restore cleanly.
  while (staged_.size() > sp.mark) {
    const WmChange& c = staged_.back();
    if (c.added) {
      live_.erase(c.wme->time_tag());
    } else {
      live_.emplace(c.wme->time_tag(), c.wme);
    }
    staged_.pop_back();
  }
  // Every tag handed out since Begin belonged to a now-undone add, so the
  // counter can rewind: the aborted transaction leaves no trace at all.
  next_tag_ = sp.next_tag;
}

Status WorkingMemory::ApplyReplay(const std::vector<ReplayChange>& changes,
                                  TimeTag next_tag_after, bool transactional) {
  if (transactional && InTransaction()) {
    return Status::InvalidArgument(
        "replay: transactional replay inside an open transaction");
  }
  if (transactional) Begin();
  auto fail = [this, transactional](Status status) {
    if (transactional) Rollback();
    return status;
  };
  for (const ReplayChange& c : changes) {
    if (c.added) {
      const ClassSchema* schema = schemas_->Find(c.cls);
      if (schema == nullptr) {
        return fail(Status::InvalidArgument(
            "replay: class '" + std::string(symbols_->Name(c.cls)) +
            "' was never literalized"));
      }
      if (static_cast<int>(c.fields.size()) != schema->num_fields()) {
        return fail(Status::InvalidArgument(
            "replay: wrong field count for class '" +
            std::string(symbols_->Name(c.cls)) + "'"));
      }
      if (live_.count(c.tag) != 0) {
        return fail(Status::InvalidArgument(
            "replay: time tag " + std::to_string(c.tag) +
            " is already live"));
      }
      // Route through the counter so the allocation and stats paths are
      // the live Make path exactly; the recorded tag overrides whatever
      // the counter would have said (netting gaps, see header comment).
      next_tag_ = c.tag;
      WmePtr wme = AllocateWme(c.cls, c.fields, next_tag_++);
      live_.emplace(wme->time_tag(), wme);
      NotifyAdd(wme, c.modify_pair);
    } else {
      auto it = live_.find(c.tag);
      if (it == live_.end()) {
        return fail(Status::NotFound(
            "replay: no live WME with time tag " + std::to_string(c.tag)));
      }
      WmePtr wme = it->second;
      live_.erase(it);
      NotifyRemove(wme, c.modify_pair);
    }
  }
  next_tag_ = next_tag_after;
  if (transactional) return Commit();
  return Status::Ok();
}

WmePtr WorkingMemory::Find(TimeTag tag) const {
  auto it = live_.find(tag);
  return it == live_.end() ? nullptr : it->second;
}

std::vector<WmePtr> WorkingMemory::Snapshot() const {
  std::vector<WmePtr> out;
  out.reserve(live_.size());
  for (const auto& [tag, wme] : live_) out.push_back(wme);
  return out;
}

}  // namespace sorel
