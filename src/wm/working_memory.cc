#include "wm/working_memory.h"

#include <algorithm>
#include <string>

#include "wm/wme.h"

namespace sorel {

std::string Wme::ToString(const SymbolTable& symbols,
                          const ClassSchema& schema) const {
  std::string out = std::to_string(time_tag_) + ": (";
  out += symbols.Name(cls_);
  for (int i = 0; i < num_fields(); ++i) {
    if (field(i).is_nil()) continue;
    out += " ^";
    out += symbols.Name(schema.attrs()[static_cast<size_t>(i)]);
    out += " ";
    out += field(i).ToString(symbols);
  }
  out += ")";
  return out;
}

void WorkingMemory::RemoveListener(Listener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

Result<WmePtr> WorkingMemory::Make(
    SymbolId cls, const std::vector<std::pair<SymbolId, Value>>& values) {
  const ClassSchema* schema = schemas_->Find(cls);
  if (schema == nullptr) {
    return Status::InvalidArgument("make: class '" +
                                   std::string(symbols_->Name(cls)) +
                                   "' was never literalized");
  }
  std::vector<Value> fields(static_cast<size_t>(schema->num_fields()));
  for (const auto& [attr, value] : values) {
    int field = schema->FieldOf(attr);
    if (field < 0) {
      return Status::InvalidArgument(
          "make: class '" + std::string(symbols_->Name(cls)) +
          "' has no attribute '" + std::string(symbols_->Name(attr)) + "'");
    }
    fields[static_cast<size_t>(field)] = value;
  }
  return MakeFromFields(cls, std::move(fields));
}

Result<WmePtr> WorkingMemory::MakeFromFields(SymbolId cls,
                                             std::vector<Value> fields) {
  const ClassSchema* schema = schemas_->Find(cls);
  if (schema == nullptr) {
    return Status::InvalidArgument("make: class '" +
                                   std::string(symbols_->Name(cls)) +
                                   "' was never literalized");
  }
  if (static_cast<int>(fields.size()) != schema->num_fields()) {
    return Status::InvalidArgument("make: wrong field count for class '" +
                                   std::string(symbols_->Name(cls)) + "'");
  }
  auto wme = std::make_shared<const Wme>(cls, std::move(fields), next_tag_++);
  live_.emplace(wme->time_tag(), wme);
  for (Listener* l : listeners_) l->OnAdd(wme);
  return WmePtr(wme);
}

Status WorkingMemory::Remove(TimeTag tag) {
  auto it = live_.find(tag);
  if (it == live_.end()) {
    return Status::NotFound("remove: no live WME with time tag " +
                            std::to_string(tag));
  }
  WmePtr wme = it->second;
  live_.erase(it);
  for (Listener* l : listeners_) l->OnRemove(wme);
  return Status::Ok();
}

WmePtr WorkingMemory::Find(TimeTag tag) const {
  auto it = live_.find(tag);
  return it == live_.end() ? nullptr : it->second;
}

std::vector<WmePtr> WorkingMemory::Snapshot() const {
  std::vector<WmePtr> out;
  out.reserve(live_.size());
  for (const auto& [tag, wme] : live_) out.push_back(wme);
  return out;
}

}  // namespace sorel
