#include "plan/plan_matcher.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <utility>

#include "base/thread_pool.h"
#include "rdb/wme_ops.h"
#include "rete/columnar.h"
#include "rete/instantiation.h"

namespace sorel {

namespace {

struct TagVecHash {
  size_t operator()(const std::vector<TimeTag>& tags) const {
    size_t h = 0x9e3779b97f4a7c15ull;
    for (TimeTag t : tags) {
      h ^= std::hash<TimeTag>()(t) + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

std::vector<TimeTag> RowSignature(const Row& row) {
  std::vector<TimeTag> sig;
  sig.reserve(row.size());
  for (const WmePtr& w : row) sig.push_back(w->time_tag());
  return sig;
}

/// One resolved pairwise join predicate of an execution step, evaluated as
/// `wme.field pred row[other_pos].other_field` (the bound side is already
/// in the row; mirrored from the compiled test when the original owner
/// executes first).
struct PairSpec {
  int field;
  TestPred pred;
  int other_pos;  // token position of the bound side
  int other_field;
};

}  // namespace

/// A plan-matcher instantiation: one complete row, owned by the matcher.
class PlanMatcher::PlanInst : public InstantiationRef {
 public:
  PlanInst(const CompiledRule* rule, Row row)
      : rule_(rule), row_(std::move(row)) {}

  const CompiledRule& rule() const override { return *rule_; }
  void CollectRows(std::vector<Row>* out) const override {
    out->push_back(row_);
  }
  std::vector<TimeTag> RecencyTags() const override {
    std::vector<TimeTag> tags = RowSignature(row_);
    std::sort(tags.rbegin(), tags.rend());
    return tags;
  }
  TimeTag FirstCeTag() const override {
    return row_.empty() ? 0 : row_.front()->time_tag();
  }
  const Row& row() const { return row_; }

 private:
  const CompiledRule* rule_;
  Row row_;
};

/// A shared alpha group: the Rete alpha-memory identity (class + alpha
/// tests) with its successor list, newest-first. Item storage lives
/// per-successor (each rule's CeState owns a column store), so parallel
/// per-rule replays touch no shared mutable state; the group exists to
/// reproduce Rete's activation-event order and memory-sharing structure.
/// Like Rete's AlphaMemory, the tests themselves are a borrowed immutable
/// `AlphaPattern` — from the bound rule base's topology, or owned by the
/// matcher when self-contained.
struct PlanMatcher::AlphaGroup {
  const AlphaPattern* pattern = nullptr;
  struct Succ {
    RuleState* rs;
    int ce;
  };
  std::vector<Succ> succs;  // newest-first (Doorenbos ordering)

  bool SameTests(const CompiledCondition& cond) const {
    return pattern->Matches(cond);
  }
};

/// One rule's per-CE alpha storage: a columnar store scanned through
/// AlphaSpan views, plus the owning shared group.
struct PlanMatcher::CeState {
  AlphaColumns cols;
  AlphaGroup* group = nullptr;
};

/// One step of an execution plan: which condition to bind next and the
/// pairwise predicates connecting it to the already-bound prefix.
struct PlanMatcher::Step {
  int ce = 0;
  bool negated = false;
  std::vector<PairSpec> eq;
  std::vector<PairSpec> residual;
  std::vector<int> eq_fields;  // this-side fields, the hash-join key
  double est = 0;              // optimizer's intermediate-size estimate
};

struct PlanMatcher::ExecPlan {
  std::vector<Step> steps;
};

struct PlanMatcher::RuleState {
  const CompiledRule* rule = nullptr;
  std::vector<CeState> ces;  // per condition (original index)
  std::vector<JoinEdge> edges;
  /// Unseeded execution order (rule-add search, unblock re-searches).
  ExecPlan canonical;
  /// Per positive CE: the order with that CE's seed bound first.
  std::vector<ExecPlan> seeded;
  /// Live cardinalities when the plans were last built (drift detection).
  std::vector<double> cards_at_build;
  /// Current instantiations keyed by their time-tag signature.
  std::unordered_map<std::vector<TimeTag>, std::unique_ptr<PlanInst>,
                     TagVecHash>
      insts;
  /// Scratch flag: a removal touched a positive CE (phase-c sweep due).
  bool touched_remove = false;
};

/// Search parameters: an optional pinned seed (additions), an optional
/// removed-blocker constraint (negated-CE unblock re-search), and whether
/// this is an unconstrained full search.
struct PlanMatcher::SearchCtx {
  int seed_ce = -1;
  WmePtr seed;
  const AlphaGroup* seed_group = nullptr;
  int neg_seed_ce = -1;
  const Wme* neg_seed = nullptr;
};

PlanMatcher::PlanMatcher(WorkingMemory* wm, ConflictSet* cs,
                         JoinOrder join_order, ThreadPool* pool,
                         obs::MetricRegistry* metrics, obs::Tracer* tracer,
                         const NetworkTopology* topology)
    : wm_(wm), cs_(cs), join_order_(join_order), pool_(pool),
      metrics_(metrics), tracer_(tracer), topology_(topology) {
  wm_->AddListener(this);
  if (metrics_ != nullptr) {
    metrics_->RegisterGauge(this, "plan.alpha_bytes", [this] {
      return static_cast<double>(AlphaMemoryBytes());
    });
    metrics_->RegisterCounter(this, "plan.join_attempts",
                              [this] { return stats_.join_attempts; });
    metrics_->RegisterCounter(this, "plan.reorders",
                              [this] { return stats_.reorders; });
    metrics_->RegisterCounter(this, "plan.est_cardinality_error", [this] {
      return stats_.est_cardinality_error;
    });
    metrics_->RegisterCounter(this, "plan.index_builds",
                              [this] { return stats_.index_builds; });
    metrics_->RegisterCounter(this, "plan.seeded_searches",
                              [this] { return stats_.seeded_searches; });
    metrics_->RegisterCounter(this, "plan.full_searches",
                              [this] { return stats_.full_searches; });
    metrics_->RegisterCounter(this, "plan.batches",
                              [this] { return stats_.batches; });
    metrics_->RegisterReset(this, [this] { ResetStats(); });
    if (metrics_->timing_enabled()) {
      match_timer_ = metrics_->GetOrCreateTimer("phase.match");
    }
  }
}

PlanMatcher::~PlanMatcher() {
  if (metrics_ != nullptr) metrics_->Unregister(this);
  wm_->RemoveListener(this);
  for (const auto& rs : rules_) {
    for (const auto& [sig, inst] : rs->insts) cs_->Remove(inst.get());
  }
}

PlanMatcher::AlphaGroup* PlanMatcher::GetOrCreateGroup(
    const CompiledCondition& cond, const AlphaPattern* pattern) {
  auto& groups = groups_by_class_[cond.cls];
  for (const auto& g : groups) {
    // Pattern identity when bound to a shared topology, structural scan
    // otherwise — the same two-mode dedup as ReteMatcher::GetOrCreateAlpha,
    // and the same creation order either way.
    if (pattern != nullptr ? g->pattern == pattern : g->SameTests(cond)) {
      return g.get();
    }
  }
  if (pattern == nullptr) {
    owned_patterns_.push_back(AlphaPattern::FromCondition(cond));
    pattern = owned_patterns_.back().get();
  }
  auto g = std::make_unique<AlphaGroup>();
  g->pattern = pattern;
  groups.push_back(std::move(g));
  return groups.back().get();
}

void PlanMatcher::ScheduleFor(const Wme& wme,
                              std::vector<AlphaGroup*>* out) const {
  out->clear();
  auto it = groups_by_class_.find(wme.cls());
  if (it == groups_by_class_.end()) return;
  for (const auto& g : it->second) {
    if (g->pattern->Accepts(wme)) out->push_back(g.get());
  }
}

void PlanMatcher::BuildPlans(RuleState* rs, bool count_reorder,
                             Stats* stats) {
  const CompiledRule& rule = *rs->rule;
  const size_t n = rule.conditions.size();
  CardVec cards(n, 0.0);
  for (size_t ce = 0; ce < n; ++ce) {
    cards[ce] = static_cast<double>(rs->ces[ce].cols.live());
  }

  auto make_plan = [&](const std::vector<int>& order,
                       const std::vector<double>& est) {
    ExecPlan plan;
    std::vector<char> bound(static_cast<size_t>(rule.num_positive), 0);
    for (size_t p = 0; p < order.size(); ++p) {
      const int ce = order[p];
      const CompiledCondition& cond = rule.conditions[static_cast<size_t>(ce)];
      Step step;
      step.ce = ce;
      step.negated = cond.negated;
      step.est = p < est.size() ? est[p] : 0;
      for (const JoinEdge& e : rs->edges) {
        const CompiledCondition& other =
            rule.conditions[static_cast<size_t>(e.a == ce ? e.b : e.a)];
        PairSpec spec;
        if (e.a == ce) {
          // `e.b` is always positive; only usable once it is bound.
          if (!bound[static_cast<size_t>(other.token_pos)]) continue;
          spec = {e.a_field, e.pred, other.token_pos, e.b_field};
        } else if (e.b == ce) {
          // Mirrored: the compiled owner `e.a` executes later (or is
          // negated and owns the test at its own step).
          if (other.negated || !bound[static_cast<size_t>(other.token_pos)])
            continue;
          spec = {e.b_field, MirrorPred(e.pred), other.token_pos, e.a_field};
        } else {
          continue;
        }
        if (spec.pred == TestPred::kEq) {
          step.eq.push_back(spec);
          step.eq_fields.push_back(spec.field);
        } else {
          step.residual.push_back(spec);
        }
      }
      if (!cond.negated) bound[static_cast<size_t>(cond.token_pos)] = 1;
      plan.steps.push_back(std::move(step));
    }
    return plan;
  };

  auto order_of = [&](int seed_ce) {
    JoinOrderResult r;
    if (join_order_ == JoinOrder::kOptimized) {
      r = OptimizeJoinOrder(rule, cards, seed_ce);
    } else {
      r.order.resize(n);
      for (size_t i = 0; i < n; ++i) r.order[i] = static_cast<int>(i);
    }
    return r;
  };

  JoinOrderResult canonical = order_of(-1);
  if (count_reorder && !rs->canonical.steps.empty()) {
    bool changed = canonical.order.size() != rs->canonical.steps.size();
    for (size_t i = 0; !changed && i < canonical.order.size(); ++i) {
      changed = canonical.order[i] != rs->canonical.steps[i].ce;
    }
    if (changed) ++stats->reorders;
  }
  rs->canonical = make_plan(canonical.order, canonical.est);
  rs->seeded.assign(n, ExecPlan{});
  for (size_t ce = 0; ce < n; ++ce) {
    if (rule.conditions[ce].negated) continue;
    JoinOrderResult r = order_of(static_cast<int>(ce));
    rs->seeded[ce] = make_plan(r.order, r.est);
  }
  rs->cards_at_build = std::move(cards);
}

namespace {

bool EvalPairSpecs(const std::vector<PairSpec>& specs, const Row& row,
                   const Wme& wme) {
  for (const PairSpec& s : specs) {
    const WmePtr& other = row[static_cast<size_t>(s.other_pos)];
    if (!EvalTestPred(s.pred, wme.field(s.field),
                      other->field(s.other_field))) {
      return false;
    }
  }
  return true;
}

// Building an ephemeral hash index costs roughly an order of magnitude
// more per alpha row than a field comparison, so the build only pays for
// itself when enough rows probe it. Below this, equality links are
// evaluated as scan predicates like any residual test. Seeded searches —
// the per-change steady state — probe with one row and always scan;
// load-time full searches and unblock re-searches cross the threshold.
constexpr size_t kIndexProbeThreshold = 16;

JoinKey ProbeKey(const std::vector<PairSpec>& eq, const Row& row) {
  JoinKey key;
  key.values.reserve(eq.size());
  for (const PairSpec& s : eq) {
    key.values.push_back(
        row[static_cast<size_t>(s.other_pos)]->field(s.other_field));
  }
  return key;
}

}  // namespace

void PlanMatcher::RunPlan(RuleState* rs, const ExecPlan& plan,
                          const SearchCtx& ctx, std::vector<Row>* out,
                          Stats* stats) const {
  const CompiledRule& rule = *rs->rule;
  std::vector<Row> cur, next;
  cur.emplace_back(static_cast<size_t>(rule.num_positive));
  rdb::WmeHashIndex index;

  for (const Step& step : plan.steps) {
    if (cur.empty()) return;
    const CompiledCondition& cond =
        rule.conditions[static_cast<size_t>(step.ce)];
    const CeState& cs = rs->ces[static_cast<size_t>(step.ce)];
    next.clear();

    if (!step.negated && step.ce == ctx.seed_ce) {
      // Bind the pinned seed into every surviving row.
      for (Row& row : cur) {
        ++stats->join_attempts;
        if (!EvalPairSpecs(step.eq, row, *ctx.seed) ||
            !EvalPairSpecs(step.residual, row, *ctx.seed)) {
          continue;
        }
        row[static_cast<size_t>(cond.token_pos)] = ctx.seed;
        next.push_back(std::move(row));
      }
    } else if (!step.negated) {
      AlphaSpan span(&cs.cols, nullptr);
      // Same-group visibility exclusion: within the seed's activation
      // event, the seed WME is not yet visible at *earlier chain
      // positions* fed by the same alpha group (Rete processes one
      // memory's successors newest-first, so the earlier CE's event —
      // which creates those rows — has not run yet).
      TimeTag skip_tag = 0;
      if (ctx.seed_ce >= 0 && step.ce < ctx.seed_ce &&
          cs.group == ctx.seed_group) {
        skip_tag = ctx.seed->time_tag();
      }
      if (!step.eq.empty() && cur.size() >= kIndexProbeThreshold) {
        index.Build(span, step.eq_fields);
        ++stats->index_builds;
        for (const Row& row : cur) {
          const std::vector<uint32_t>* bucket =
              index.Find(ProbeKey(step.eq, row));
          if (bucket == nullptr) continue;
          for (uint32_t i : *bucket) {
            const WmePtr& w = span.Ptr(i);
            if (skip_tag != 0 && w->time_tag() == skip_tag) continue;
            ++stats->join_attempts;
            if (!EvalPairSpecs(step.residual, row, *w)) continue;
            Row r = row;
            r[static_cast<size_t>(cond.token_pos)] = w;
            next.push_back(std::move(r));
          }
        }
      } else {
        const size_t n = span.size();
        for (const Row& row : cur) {
          for (size_t i = 0; i < n; ++i) {
            if (!span.Live(i)) continue;
            const WmePtr& w = span.Ptr(i);
            if (skip_tag != 0 && w->time_tag() == skip_tag) continue;
            ++stats->join_attempts;
            if (!EvalPairSpecs(step.eq, row, *w)) continue;
            if (!EvalPairSpecs(step.residual, row, *w)) continue;
            Row r = row;
            r[static_cast<size_t>(cond.token_pos)] = w;
            next.push_back(std::move(r));
          }
        }
      }
    } else {
      // Negated: drop blocked rows. With equality links an ephemeral
      // hash index narrows the blocker candidates; otherwise scan.
      AlphaSpan span(&cs.cols, nullptr);
      const bool use_index = !step.eq.empty() && span.size() != 0 &&
                             cur.size() >= kIndexProbeThreshold;
      if (use_index) {
        index.Build(span, step.eq_fields);
        ++stats->index_builds;
      }
      for (Row& row : cur) {
        if (step.ce == ctx.neg_seed_ce) {
          // Unblock re-search: only rows the removed blocker matched can
          // have become unblocked.
          if (!EvalPairSpecs(step.eq, row, *ctx.neg_seed) ||
              !EvalPairSpecs(step.residual, row, *ctx.neg_seed)) {
            continue;
          }
        }
        bool blocked = false;
        if (use_index) {
          const std::vector<uint32_t>* bucket =
              index.Find(ProbeKey(step.eq, row));
          if (bucket != nullptr) {
            for (uint32_t i : *bucket) {
              ++stats->join_attempts;
              if (EvalPairSpecs(step.residual, row, *span.Ptr(i))) {
                blocked = true;
                break;
              }
            }
          }
        } else {
          const size_t n = span.size();
          for (size_t i = 0; i < n && !blocked; ++i) {
            if (!span.Live(i)) continue;
            ++stats->join_attempts;
            blocked = EvalPairSpecs(step.eq, row, *span.Ptr(i)) &&
                      EvalPairSpecs(step.residual, row, *span.Ptr(i));
          }
        }
        if (!blocked) next.push_back(std::move(row));
      }
    }
    cur.swap(next);
    if (join_order_ == JoinOrder::kOptimized && !step.negated) {
      const long long actual = static_cast<long long>(cur.size());
      const long long est = std::llround(step.est);
      stats->est_cardinality_error +=
          static_cast<uint64_t>(std::llabs(actual - est));
    }
  }
  for (Row& r : cur) out->push_back(std::move(r));
}

void PlanMatcher::EmitRows(RuleState* rs, std::vector<Row>* rows) {
  if (rows->empty()) return;
  // Canonical emission order: chain-order time-tag vectors, ascending.
  // Alpha items arrive in tag order, so this is exactly the nested-scan
  // order Rete's activation event produces on every pair of rows that
  // could tie in the conflict set (identical tag multisets).
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      const TimeTag ta = a[i]->time_tag(), tb = b[i]->time_tag();
      if (ta != tb) return ta < tb;
    }
    return false;
  });
  for (Row& row : *rows) {
    std::vector<TimeTag> sig = RowSignature(row);
    if (rs->insts.count(sig) != 0) continue;
    auto inst = std::make_unique<PlanInst>(rs->rule, std::move(row));
    cs_->Add(inst.get());
    rs->insts.emplace(std::move(sig), std::move(inst));
  }
}

void PlanMatcher::ActivateAdd(RuleState* rs, int ce, const WmePtr& wme,
                              size_t group_ord, Stats* stats) {
  (void)group_ord;
  const CompiledCondition& cond =
      rs->rule->conditions[static_cast<size_t>(ce)];
  if (cond.negated) {
    // The new blocker deletes the instantiations it now blocks
    // (deterministic order: sorted signatures).
    std::vector<std::vector<TimeTag>> victims;
    for (const auto& [sig, inst] : rs->insts) {
      if (PassesJoinTests(cond, inst->row(), *wme)) victims.push_back(sig);
    }
    std::sort(victims.begin(), victims.end());
    for (const auto& sig : victims) {
      auto it = rs->insts.find(sig);
      cs_->Remove(it->second.get());
      cs_->Release(std::move(it->second));
      rs->insts.erase(it);
    }
    return;
  }
  ++stats->seeded_searches;
  SearchCtx ctx;
  ctx.seed_ce = ce;
  ctx.seed = wme;
  ctx.seed_group = rs->ces[static_cast<size_t>(ce)].group;
  std::vector<Row> rows;
  RunPlan(rs, rs->seeded[static_cast<size_t>(ce)], ctx, &rows, stats);
  EmitRows(rs, &rows);
}

void PlanMatcher::UnblockSearch(RuleState* rs, int ce, const WmePtr& wme,
                                Stats* stats) {
  ++stats->full_searches;
  SearchCtx ctx;
  ctx.neg_seed_ce = ce;
  ctx.neg_seed = wme.get();
  std::vector<Row> rows;
  RunPlan(rs, rs->canonical, ctx, &rows, stats);
  EmitRows(rs, &rows);  // dedup drops the rows that were never blocked
}

void PlanMatcher::DropInstsContaining(RuleState* rs, TimeTag tag) {
  for (auto it = rs->insts.begin(); it != rs->insts.end();) {
    bool contains = false;
    for (const WmePtr& w : it->second->row()) {
      if (w->time_tag() == tag) {
        contains = true;
        break;
      }
    }
    if (contains) {
      cs_->Remove(it->second.get());
      // Keep the instantiation alive until buffered conflict-set ops have
      // been applied (a reused address would alias in the entry map).
      cs_->Release(std::move(it->second));
      it = rs->insts.erase(it);
    } else {
      ++it;
    }
  }
}

void PlanMatcher::ApplyAdd(const WmePtr& wme,
                           const std::vector<AlphaGroup*>& schedule) {
  for (size_t i = 0; i < schedule.size(); ++i) {
    AlphaGroup* g = schedule[i];
    // Rete inserts the WME into one memory, then right-activates that
    // memory's successors before inserting into the next — the physical
    // order the seeded searches' visibility relies on.
    for (const auto& succ : g->succs) {
      succ.rs->ces[static_cast<size_t>(succ.ce)].cols.Append(wme);
    }
    for (const auto& succ : g->succs) {
      ActivateAdd(succ.rs, succ.ce, wme, i, &stats_);
    }
  }
}

void PlanMatcher::ApplyRemove(const WmePtr& wme,
                              const std::vector<AlphaGroup*>& schedule) {
  const TimeTag tag = wme->time_tag();
  // Phase A: alpha exits, all memories first (Rete's removal order).
  for (AlphaGroup* g : schedule) {
    for (const auto& succ : g->succs) {
      RuleState* rs = succ.rs;
      if (rs->ces[static_cast<size_t>(succ.ce)].cols.Kill(tag) ==
          AlphaColumns::kNoRow) {
        continue;
      }
      if (!rs->rule->conditions[static_cast<size_t>(succ.ce)].negated) {
        rs->touched_remove = true;
      }
    }
  }
  // Phase B: negated-CE unblock re-searches, in activation-event order.
  for (AlphaGroup* g : schedule) {
    for (const auto& succ : g->succs) {
      if (succ.rs->rule->conditions[static_cast<size_t>(succ.ce)].negated) {
        UnblockSearch(succ.rs, succ.ce, wme, &stats_);
      }
    }
  }
  // Phase C: drop the instantiations containing the WME, rule
  // registration order (Rete deletes token trees shard by shard).
  for (const auto& rs : rules_) {
    if (!rs->touched_remove) continue;
    rs->touched_remove = false;
    DropInstsContaining(rs.get(), tag);
  }
}

void PlanMatcher::ReplayRule(
    RuleState* rs, const ChangeBatch& batch,
    const std::vector<std::vector<AlphaGroup*>>& schedules,
    ConflictSet::Delta* delta, Stats* stats) {
  // Scoped: while this task waits inside the pool it may help-drain and
  // execute another replay task, whose exit must restore this frame's
  // redirection rather than clear it.
  ConflictSet::ScopedThreadDelta scoped_delta(cs_, delta);
  for (size_t e = 0; e < batch.changes.size(); ++e) {
    const WmChange& c = batch.changes[e];
    const std::vector<AlphaGroup*>& schedule = schedules[e];
    if (c.added) {
      for (size_t i = 0; i < schedule.size(); ++i) {
        AlphaGroup* g = schedule[i];
        bool mine = false;
        for (const auto& succ : g->succs) {
          if (succ.rs != rs) continue;
          rs->ces[static_cast<size_t>(succ.ce)].cols.Append(c.wme);
          mine = true;
        }
        if (!mine) continue;
        for (size_t s = 0; s < g->succs.size(); ++s) {
          if (g->succs[s].rs != rs) continue;
          delta->SetStamp({static_cast<uint32_t>(e), 0,
                           static_cast<uint32_t>(i),
                           static_cast<uint32_t>(s)});
          ActivateAdd(rs, g->succs[s].ce, c.wme, i, stats);
        }
      }
    } else {
      const TimeTag tag = c.wme->time_tag();
      bool touched_pos = false;
      for (AlphaGroup* g : schedule) {
        for (const auto& succ : g->succs) {
          if (succ.rs != rs) continue;
          if (rs->ces[static_cast<size_t>(succ.ce)].cols.Kill(tag) ==
              AlphaColumns::kNoRow) {
            continue;
          }
          if (!rs->rule->conditions[static_cast<size_t>(succ.ce)].negated) {
            touched_pos = true;
          }
        }
      }
      for (size_t i = 0; i < schedule.size(); ++i) {
        AlphaGroup* g = schedule[i];
        for (size_t s = 0; s < g->succs.size(); ++s) {
          if (g->succs[s].rs != rs) continue;
          const int ce = g->succs[s].ce;
          if (!rs->rule->conditions[static_cast<size_t>(ce)].negated)
            continue;
          delta->SetStamp({static_cast<uint32_t>(e), 0,
                           static_cast<uint32_t>(i),
                           static_cast<uint32_t>(s)});
          UnblockSearch(rs, ce, c.wme, stats);
        }
      }
      if (touched_pos) {
        delta->SetStamp({static_cast<uint32_t>(e), 1, 0, 0});
        DropInstsContaining(rs, tag);
      }
    }
  }
}

void PlanMatcher::OnAdd(const WmePtr& wme) {
  obs::ScopedTimer timer(match_timer_);
  std::vector<AlphaGroup*> schedule;
  ScheduleFor(*wme, &schedule);
  ApplyAdd(wme, schedule);
  MaybeReoptimize();
  MaybeCompact();
}

void PlanMatcher::OnRemove(const WmePtr& wme) {
  obs::ScopedTimer timer(match_timer_);
  std::vector<AlphaGroup*> schedule;
  ScheduleFor(*wme, &schedule);
  ApplyRemove(wme, schedule);
  MaybeReoptimize();
  MaybeCompact();
}

void PlanMatcher::OnBatch(const ChangeBatch& batch) {
  obs::ScopedTimer timer(match_timer_);
  ++stats_.batches;
  std::vector<std::vector<AlphaGroup*>> schedules(batch.changes.size());
  for (size_t e = 0; e < batch.changes.size(); ++e) {
    ScheduleFor(*batch.changes[e].wme, &schedules[e]);
  }
  if (pool_ != nullptr && rules_.size() > 1) {
    if (tracer_ != nullptr && tracer_->enabled()) {
      for (const auto& rs : rules_) {
        tracer_->Emit(obs::TraceEvent("rule_replay")
                          .Str("rule", rs->rule->name)
                          .Num("changes", batch.changes.size()));
      }
    }
    // Rule states are disjoint; each rule replays the whole batch as one
    // task. The OpStamps ({change, phase, group ordinal, successor
    // ordinal}) merge the buffered op streams into exactly the sequential
    // activation-event order.
    std::vector<ConflictSet::Delta> deltas(rules_.size());
    std::vector<Stats> stats(rules_.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(rules_.size());
    for (size_t i = 0; i < rules_.size(); ++i) {
      tasks.push_back([this, &batch, &schedules, &deltas, &stats, i] {
        ReplayRule(rules_[i].get(), batch, schedules, &deltas[i], &stats[i]);
      });
    }
    pool_->RunAll(std::move(tasks));
    for (const Stats& s : stats) {
      stats_.join_attempts += s.join_attempts;
      stats_.est_cardinality_error += s.est_cardinality_error;
      stats_.index_builds += s.index_builds;
      stats_.seeded_searches += s.seeded_searches;
      stats_.full_searches += s.full_searches;
    }
    cs_->ApplyDeltas(&deltas);
  } else {
    for (const WmChange& c : batch.changes) {
      const auto& schedule =
          schedules[static_cast<size_t>(&c - batch.changes.data())];
      if (c.added) {
        ApplyAdd(c.wme, schedule);
      } else {
        ApplyRemove(c.wme, schedule);
      }
    }
  }
  MaybeReoptimize();
  MaybeCompact();
}

void PlanMatcher::MaybeReoptimize() {
  if (join_order_ != JoinOrder::kOptimized) return;
  for (const auto& rs : rules_) {
    bool drifted = false;
    for (size_t ce = 0; ce < rs->ces.size(); ++ce) {
      const double cur = static_cast<double>(rs->ces[ce].cols.live());
      const double prev = rs->cards_at_build[ce];
      if (cur < 16 && prev < 16) continue;
      if (cur >= 2 * prev || prev >= 2 * cur) {
        drifted = true;
        break;
      }
    }
    if (drifted) BuildPlans(rs.get(), /*count_reorder=*/true, &stats_);
  }
}

void PlanMatcher::MaybeCompact() {
  std::vector<uint32_t> remap;
  for (const auto& rs : rules_) {
    for (CeState& ce : rs->ces) {
      if (ce.cols.NeedsCompaction()) ce.cols.Compact(&remap);
    }
  }
}

Status PlanMatcher::AddRule(const CompiledRule* rule) {
  if (rule->has_set) {
    return Status::Unimplemented(
        "rule '" + rule->name +
        "': the plan matcher is tuple-oriented and does not support "
        "set-oriented constructs");
  }
  auto rs = std::make_unique<RuleState>();
  rs->rule = rule;
  rs->ces.resize(rule->conditions.size());
  const std::vector<const AlphaPattern*>* bound =
      topology_ != nullptr ? topology_->PatternsFor(rule) : nullptr;
  for (size_t ce = 0; ce < rule->conditions.size(); ++ce) {
    AlphaGroup* g = GetOrCreateGroup(rule->conditions[ce],
                                     bound != nullptr ? (*bound)[ce] : nullptr);
    rs->ces[ce].group = g;
    // Newest-first successor insertion (Doorenbos's duplicate-avoiding
    // order, which the activation events reproduce).
    g->succs.insert(g->succs.begin(),
                    AlphaGroup::Succ{rs.get(), static_cast<int>(ce)});
  }
  for (const WmePtr& w : wm_->Snapshot()) {
    for (size_t ce = 0; ce < rule->conditions.size(); ++ce) {
      const CompiledCondition& cond = rule->conditions[ce];
      if (w->cls() == cond.cls && PassesAlphaTests(cond, *w)) {
        rs->ces[ce].cols.Append(w);
      }
    }
  }
  rs->edges = BuildJoinGraph(*rule);
  BuildPlans(rs.get(), /*count_reorder=*/false, &stats_);
  ++stats_.full_searches;
  SearchCtx ctx;
  std::vector<Row> rows;
  RunPlan(rs.get(), rs->canonical, ctx, &rows, &stats_);
  EmitRows(rs.get(), &rows);
  rules_.push_back(std::move(rs));
  return Status::Ok();
}

Status PlanMatcher::RemoveRule(const CompiledRule* rule) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if ((*it)->rule != rule) continue;
    RuleState* rs = it->get();
    for (auto& [cls, groups] : groups_by_class_) {
      for (const auto& g : groups) {
        std::erase_if(g->succs, [rs](const AlphaGroup::Succ& s) {
          return s.rs == rs;
        });
      }
    }
    for (const auto& [sig, inst] : rs->insts) cs_->Remove(inst.get());
    rules_.erase(it);
    return Status::Ok();
  }
  return Status::NotFound("rule not loaded: " + rule->name);
}

size_t PlanMatcher::num_instantiations() const {
  size_t n = 0;
  for (const auto& rs : rules_) n += rs->insts.size();
  return n;
}

size_t PlanMatcher::AlphaMemoryBytes() const {
  size_t n = 0;
  for (const auto& rs : rules_) {
    for (const CeState& ce : rs->ces) n += ce.cols.MemoryBytes();
  }
  return n;
}

}  // namespace sorel
