#ifndef SOREL_PLAN_PLAN_MATCHER_H_
#define SOREL_PLAN_PLAN_MATCHER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "lang/compiled_rule.h"
#include "lang/join_order.h"
#include "lang/rule_base.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rete/conflict_set.h"
#include "rete/matcher.h"
#include "wm/working_memory.h"

namespace sorel {

class ThreadPool;

/// The plan/iterator matcher (CORGI-style, see PAPERS.md): no beta
/// memories — per-change match work is a pipeline of select/hash-join
/// iterators (src/rdb/wme_ops.h) over columnar alpha scan views, executed
/// in a cost-chosen join order. Worst-case space is linear in the alpha
/// memories (ephemeral hash tables die with each search) and per-batch
/// match work is bounded by (changes x alpha sizes + output), where Rete's
/// beta memories can go combinatorial on pathological CE orders.
///
/// Observable behavior is bit-identical to the sequential Rete path: a
/// shared alpha-group registry reproduces Rete's activation-event order
/// (per-class memory creation order x newest-first successors), and each
/// event's result set — which is order-independent — is emitted sorted by
/// the rows' chain-order time-tag vectors, which matches Rete's emission
/// order on every pair of instantiations that could tie in the conflict
/// set (see docs/INTERNALS.md, "Join ordering & the plan matcher").
///
/// Set-oriented rules are rejected (like TREAT, the other alpha-only
/// matcher): incremental SOI maintenance needs the S-node's token stream.
class PlanMatcher : public Matcher {
 public:
  struct Stats {
    /// Candidate (row, WME) pairs whose join tests were evaluated — the
    /// plan analog of rete.join_attempts.
    uint64_t join_attempts = 0;
    /// Plan recomputations (cardinality drift at a batch boundary) that
    /// produced a different execution order.
    uint64_t reorders = 0;
    /// Accumulated |estimated - actual| intermediate rows across executed
    /// full-search plan steps (optimized order only) — how wrong the cost
    /// model was.
    uint64_t est_cardinality_error = 0;
    /// Ephemeral hash-join build passes over alpha spans.
    uint64_t index_builds = 0;
    uint64_t seeded_searches = 0;
    /// Unconstrained searches: rule-add seeding and negated-CE unblock
    /// re-searches.
    uint64_t full_searches = 0;
    /// ChangeBatch deliveries handled natively.
    uint64_t batches = 0;
  };

  /// `join_order` picks the execution order (textual = chain order, the
  /// TREAT/OPS5 baseline; optimized = greedy smallest-intermediate-first).
  /// Either way traces stay bit-identical — the order only moves work.
  /// `pool` (borrowed, may be null) enables parallel batch propagation:
  /// rule states are disjoint, so each rule replays the batch as one task
  /// with conflict-set sends buffered under Rete-shaped OpStamps and
  /// merged into the exact sequential order. `metrics`/`tracer` hook into
  /// the observability layer (plan.* counters, rule_replay events).
  /// `topology` (borrowed, may be null): the shared compiled topology of a
  /// bound rule base — alpha groups then reference its immutable patterns
  /// by pointer instead of the matcher deriving private copies.
  PlanMatcher(WorkingMemory* wm, ConflictSet* cs,
              JoinOrder join_order = JoinOrder::kOptimized,
              ThreadPool* pool = nullptr,
              obs::MetricRegistry* metrics = nullptr,
              obs::Tracer* tracer = nullptr,
              const NetworkTopology* topology = nullptr);
  ~PlanMatcher() override;

  PlanMatcher(const PlanMatcher&) = delete;
  PlanMatcher& operator=(const PlanMatcher&) = delete;

  Status AddRule(const CompiledRule* rule) override;
  Status RemoveRule(const CompiledRule* rule) override;
  ConflictSet& conflict_set() override { return *cs_; }

  void OnAdd(const WmePtr& wme) override;
  void OnRemove(const WmePtr& wme) override;
  void OnBatch(const ChangeBatch& batch) override;

  size_t num_instantiations() const;
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  class PlanInst;
  struct AlphaGroup;
  struct CeState;
  struct RuleState;
  struct Step;
  struct ExecPlan;
  struct SearchCtx;

  /// The alpha group for `cond`, creating it if absent. `pattern` is the
  /// bound topology's assignment (pointer-identity lookup) or null for
  /// self-contained matchers (structural dedup, matcher-owned pattern).
  AlphaGroup* GetOrCreateGroup(const CompiledCondition& cond,
                               const AlphaPattern* pattern);
  /// The accepting alpha groups for `wme`, in creation order — one
  /// change's activation-event schedule (shared across rules).
  void ScheduleFor(const Wme& wme, std::vector<AlphaGroup*>* out) const;

  /// Builds `rs`'s execution plans (canonical + per-seed) from current
  /// alpha cardinalities. `count_reorder` bumps plan.reorders if the
  /// canonical order changed.
  void BuildPlans(RuleState* rs, bool count_reorder, Stats* stats);
  /// Recomputes plans for rules whose cardinalities drifted (>= 2x and
  /// past a floor) since the last build. Coordinator-only, so the check is
  /// deterministic across thread counts.
  void MaybeReoptimize();
  /// Compacts tombstoned alpha columns once enough dead rows accumulate.
  void MaybeCompact();

  /// Runs `plan` and appends complete rows to `out`. Counters accumulate
  /// into `stats` (per-task private on the parallel path).
  void RunPlan(RuleState* rs, const ExecPlan& plan, const SearchCtx& ctx,
               std::vector<Row>* out, Stats* stats) const;
  /// Sorts `rows` into canonical (chain-order tag-lex) order and emits
  /// each through the conflict set, deduping against live instantiations.
  void EmitRows(RuleState* rs, std::vector<Row>* rows);

  /// Activation of one (rule, ce) successor for an added WME: negated CEs
  /// drop the instantiations the WME now blocks, positive CEs run a
  /// seeded search. `group_ord` is the event's position in the change's
  /// schedule (the same-group visibility exclusion).
  void ActivateAdd(RuleState* rs, int ce, const WmePtr& wme,
                   size_t group_ord, Stats* stats);
  /// Unblocking re-search after `wme` left a negated CE's alpha memory:
  /// emits rows that `wme` blocked and nothing still blocks.
  void UnblockSearch(RuleState* rs, int ce, const WmePtr& wme, Stats* stats);
  void DropInstsContaining(RuleState* rs, TimeTag tag);

  /// Per-change bodies. The sequential path interleaves rules in schedule
  /// order; the parallel path replays per rule with OpStamps reproducing
  /// that interleaving.
  void ApplyAdd(const WmePtr& wme, const std::vector<AlphaGroup*>& schedule);
  void ApplyRemove(const WmePtr& wme,
                   const std::vector<AlphaGroup*>& schedule);
  /// One parallel-batch task: replays every change against one rule,
  /// stamping conflict-set ops with {change, phase, group ordinal,
  /// successor ordinal} — the sequential event order.
  void ReplayRule(RuleState* rs, const ChangeBatch& batch,
                  const std::vector<std::vector<AlphaGroup*>>& schedules,
                  ConflictSet::Delta* delta, Stats* stats);

  size_t AlphaMemoryBytes() const;

  WorkingMemory* wm_;
  ConflictSet* cs_;
  JoinOrder join_order_;
  ThreadPool* pool_;
  obs::MetricRegistry* metrics_ = nullptr;  // borrowed; may be null
  obs::Tracer* tracer_ = nullptr;           // borrowed; may be null
  obs::Timer* match_timer_ = nullptr;       // non-null when timing enabled
  /// Shared alpha groups per class, in creation order — the Rete
  /// alpha-memory sharing structure, kept for activation-event ordering
  /// and so per-CE storage registration mirrors Rete's network exactly.
  std::unordered_map<SymbolId, std::vector<std::unique_ptr<AlphaGroup>>>
      groups_by_class_;
  /// Shared topology of the bound rule base (borrowed, may be null).
  const NetworkTopology* topology_ = nullptr;
  /// Patterns derived by this matcher itself (self-contained mode only).
  std::vector<std::unique_ptr<AlphaPattern>> owned_patterns_;
  std::vector<std::unique_ptr<RuleState>> rules_;  // registration order
  Stats stats_;
};

}  // namespace sorel

#endif  // SOREL_PLAN_PLAN_MATCHER_H_
