#ifndef SOREL_DIPS_DIPS_H_
#define SOREL_DIPS_DIPS_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "core/soi_key.h"
#include "dips/cond_table.h"
#include "lang/compiled_rule.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdb/ops.h"
#include "rete/conflict_set.h"
#include "rete/matcher.h"
#include "wm/working_memory.h"

namespace sorel {

class ThreadPool;

namespace dips {

/// The DIPS matcher (§8): OPS5 matching implemented on the relational
/// substrate. Each CE's matches live in a COND table; instantiations are
/// computed by a relational query (equi-joins on shared pattern-variable
/// columns, anti-joins for negated CEs) and set-oriented instantiations are
/// the groups of that query's result under the partition key — exactly the
/// `group-by` retrieval of §8.2 / Figure 6.
///
/// After every WM change the affected rules' match relations are
/// re-evaluated and diffed against the current conflict set (DIPS is a
/// query-per-cycle system; the per-change cost is measured in
/// bench_fig6_dips). Unlike TREAT, set-oriented rules are fully supported:
/// this is the paper's §8.2 contribution.
class DipsMatcher : public Matcher {
 public:
  struct Stats {
    /// Match-relation recomputations (the dominant per-change cost).
    uint64_t refreshes = 0;
    /// ChangeBatch deliveries handled natively (one Refresh per touched
    /// rule per batch, however many changes the batch carried).
    uint64_t batches = 0;
  };

  /// `pool` (borrowed, may be null) enables parallel batch propagation:
  /// DIPS is already rule-major (per-rule COND tables and one Refresh per
  /// touched rule), so each rule's table updates + refresh run as one
  /// worker task with conflict-set sends buffered and merged in rule order.
  /// `metrics` / `tracer` (borrowed, may be null) hook the matcher into the
  /// observability layer: dips.* counters register as registry views and
  /// batch replays emit per-rule rule_replay events.
  DipsMatcher(WorkingMemory* wm, ConflictSet* cs, ThreadPool* pool = nullptr,
              obs::MetricRegistry* metrics = nullptr,
              obs::Tracer* tracer = nullptr);
  ~DipsMatcher() override;

  DipsMatcher(const DipsMatcher&) = delete;
  DipsMatcher& operator=(const DipsMatcher&) = delete;

  Status AddRule(const CompiledRule* rule) override;
  Status RemoveRule(const CompiledRule* rule) override;
  ConflictSet& conflict_set() override { return *cs_; }

  void OnAdd(const WmePtr& wme) override;
  void OnRemove(const WmePtr& wme) override;
  /// Native batched propagation: applies every change to the COND tables
  /// first, then recomputes each touched rule's match relation once —
  /// DIPS's query-per-change becomes query-per-transaction (§8.1). Note
  /// the coalescing is observable in one corner: an SOI whose membership
  /// changes and reverts within the same transaction diffs as unchanged
  /// and is not re-marked eligible.
  void OnBatch(const ChangeBatch& batch) override;

  /// The rule's full match relation: tag columns `t<pos>` per positive CE
  /// plus one column per pattern variable.
  Result<rdb::Relation> MatchRelation(const CompiledRule* rule) const;

  /// Figure 6's "Query to retrieve SOIs": the match relation projected to
  /// the tag columns and sorted (grouped) by the SOI partition-key columns.
  Result<rdb::Relation> RetrieveSois(const CompiledRule* rule) const;

  /// One row per SOI group: partition key columns plus a `rows` count.
  Result<rdb::Relation> SoiSummary(const CompiledRule* rule) const;

  /// COND table of `rule`'s `ce_index`-th CE (for tests/inspection).
  const CondTable* cond_table(const CompiledRule* rule, int ce_index) const;

  /// First internal error hit inside a WM-change callback, if any.
  const Status& last_error() const { return last_error_; }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  class DipsInst;
  class DipsSoi;

  struct TagVecHash {
    size_t operator()(const std::vector<TimeTag>& tags) const;
  };

  struct RuleState {
    const CompiledRule* rule = nullptr;
    std::vector<CondTable> tables;  // one per CE, in CE order
    // Regular instantiations keyed by row signature.
    std::unordered_map<std::vector<TimeTag>, std::unique_ptr<DipsInst>,
                       TagVecHash>
        insts;
    // Set-oriented instantiations keyed by partition key.
    std::unordered_map<SoiKey, std::unique_ptr<DipsSoi>, SoiKeyHash> sois;
  };

  /// Column names of the SOI partition key in the match relation.
  static std::vector<std::string> KeyColumns(const CompiledRule& rule);

  /// Bytes held by every rule's COND-table relations — the session-private
  /// match state (the `dips.table_bytes` gauge).
  size_t TableMemoryBytes() const;

  Result<rdb::Relation> ComputeMatch(const RuleState& rs) const;
  /// Recomputes the match and diffs it into the conflict set. Counters go
  /// through `stats` so concurrent per-rule refreshes accumulate privately.
  Status Refresh(RuleState* rs, Stats* stats);
  Status RefreshRegular(RuleState* rs, const rdb::Relation& match);
  Status RefreshSet(RuleState* rs, const rdb::Relation& match);
  /// One task of the parallel batch path: applies every change to one
  /// rule's COND tables and refreshes it, buffering conflict-set ops into
  /// `delta`.
  Status ReplayRule(RuleState* rs, const ChangeBatch& batch,
                    ConflictSet::Delta* delta, Stats* stats);
  /// Materializes one match tuple into an instantiation row.
  Result<Row> RowFromTuple(const RuleState& rs, const rdb::Relation& match,
                           const rdb::Tuple& tuple) const;

  WorkingMemory* wm_;
  ConflictSet* cs_;
  ThreadPool* pool_;
  obs::MetricRegistry* metrics_ = nullptr;  // borrowed; may be null
  obs::Tracer* tracer_ = nullptr;           // borrowed; may be null
  obs::Timer* match_timer_ = nullptr;       // non-null when timing enabled
  std::vector<std::unique_ptr<RuleState>> rules_;
  Status last_error_;
  Stats stats_;
};

}  // namespace dips
}  // namespace sorel

#endif  // SOREL_DIPS_DIPS_H_
