#include "dips/cond_table.h"

#include <algorithm>
#include <utility>

namespace sorel {
namespace dips {

namespace {

/// Finds the variable whose canonical binding site is (token_pos, field);
/// join tests are always emitted against canonical sites.
const VarInfo* FindVarByCanonicalSite(const CompiledRule& rule, int token_pos,
                                      int field) {
  for (const auto& [name, info] : rule.vars) {
    if (info.kind == VarInfo::Kind::kValue && !info.occurrences.empty() &&
        info.occurrences.front() == std::make_pair(token_pos, field)) {
      return &info;
    }
  }
  return nullptr;
}

}  // namespace

Result<CondTable> CondTable::Create(const CompiledRule* rule, int ce_index) {
  CondTable table;
  table.rule_ = rule;
  table.cond_ = &rule->conditions[static_cast<size_t>(ce_index)];
  const CompiledCondition& cond = *table.cond_;

  std::vector<std::string> columns;
  if (cond.negated) {
    table.tag_column_ = "tneg" + std::to_string(ce_index);
    columns.push_back(table.tag_column_);
    // One column per join test: eq tests become anti-join keys, others are
    // residual predicates.
    for (size_t k = 0; k < cond.join_tests.size(); ++k) {
      const JoinTest& jt = cond.join_tests[k];
      const VarInfo* ref = FindVarByCanonicalSite(*rule, jt.other_token_pos,
                                                  jt.other_field);
      if (ref == nullptr) {
        return Status::CompileError(
            "DIPS: cannot resolve join reference in negated CE of rule '" +
            rule->name + "'");
      }
      PredColumn pc;
      pc.column = "_n" + std::to_string(ce_index) + "_" + std::to_string(k);
      pc.pred = jt.pred;
      pc.ref_var = ref->name;
      pc.field = jt.field;
      pc.is_eq = jt.pred == TestPred::kEq;
      columns.push_back(pc.column);
      table.pred_columns_.push_back(std::move(pc));
    }
  } else {
    table.tag_column_ = "t" + std::to_string(cond.token_pos);
    columns.push_back(table.tag_column_);
    // Variable columns: every value PV with a binding occurrence here,
    // sorted by name for deterministic schemas.
    std::vector<std::pair<std::string, int>> vars;
    for (const auto& [name, info] : rule->vars) {
      if (info.kind != VarInfo::Kind::kValue) continue;
      for (const auto& [pos, field] : info.occurrences) {
        if (pos == cond.token_pos) {
          vars.emplace_back(name, field);
          break;
        }
      }
    }
    std::sort(vars.begin(), vars.end());
    for (auto& [name, field] : vars) {
      columns.push_back(name);
      table.var_columns_.emplace_back(name, field);
    }
    // Non-equality join predicates need the tested field as a column.
    for (size_t k = 0; k < cond.join_tests.size(); ++k) {
      const JoinTest& jt = cond.join_tests[k];
      if (jt.pred == TestPred::kEq) continue;  // covered by variable columns
      const VarInfo* ref = FindVarByCanonicalSite(*rule, jt.other_token_pos,
                                                  jt.other_field);
      if (ref == nullptr) {
        return Status::CompileError(
            "DIPS: cannot resolve join reference in rule '" + rule->name +
            "'");
      }
      PredColumn pc;
      pc.column = "_p" + std::to_string(cond.token_pos) + "_" +
                  std::to_string(k);
      pc.pred = jt.pred;
      pc.ref_var = ref->name;
      pc.field = jt.field;
      pc.is_eq = false;
      columns.push_back(pc.column);
      table.pred_columns_.push_back(std::move(pc));
    }
  }
  table.rel_ = rdb::Relation(rdb::RelSchema(std::move(columns)));
  return table;
}

bool CondTable::Accepts(const Wme& wme) const {
  return wme.cls() == cond_->cls && PassesAlphaTests(*cond_, wme);
}

Status CondTable::Insert(const Wme& wme) {
  rdb::Tuple row;
  row.reserve(static_cast<size_t>(rel_.schema().arity()));
  row.push_back(Value::Int(wme.time_tag()));
  for (const auto& [name, field] : var_columns_) {
    row.push_back(wme.field(field));
  }
  for (const PredColumn& pc : pred_columns_) {
    row.push_back(wme.field(pc.field));
  }
  return rel_.Insert(std::move(row));
}

void CondTable::RemoveTag(TimeTag tag) {
  Value key = Value::Int(tag);
  rel_.Erase([&key](const rdb::Tuple& row) { return row[0] == key; });
}

}  // namespace dips
}  // namespace sorel
