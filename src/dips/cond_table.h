#ifndef SOREL_DIPS_COND_TABLE_H_
#define SOREL_DIPS_COND_TABLE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "lang/compiled_rule.h"
#include "rdb/relation.h"
#include "wm/wme.h"

namespace sorel {
namespace dips {

/// A COND table (§8.1): the relational storage for one CE of one rule,
/// holding the WME identifiers (time tags, the paper's WME-TAGS refinement
/// of §8.2) and the attribute bindings the rule references.
///
/// Schema:
///   - positive CE at token position p: ["t<p>", <variable columns>,
///     <"_p<k>" columns for non-equality join tests>]
///   - negated CE: ["tneg<ce>", <"_n<k>" columns, one per join test>]
///
/// Variable columns are named by the pattern variable, so the DIPS match
/// query can equi-join COND tables on shared column names — the relational
/// reading of OPS5 joins (§3).
class CondTable {
 public:
  /// Metadata for one non-key predicate column.
  struct PredColumn {
    std::string column;   // "_p<k>" / "_n<k>"
    TestPred pred;        // wme.field PRED referenced-variable
    std::string ref_var;  // canonical variable it compares against
    int field;            // WME field stored in the column
    bool is_eq;           // equality tests become join keys instead
  };

  static Result<CondTable> Create(const CompiledRule* rule, int ce_index);

  const CompiledCondition& cond() const { return *cond_; }
  const rdb::Relation& relation() const { return rel_; }
  const std::string& tag_column() const { return tag_column_; }
  /// Variable columns (positive CEs): column name == variable name.
  const std::vector<std::pair<std::string, int>>& var_columns() const {
    return var_columns_;
  }
  const std::vector<PredColumn>& pred_columns() const {
    return pred_columns_;
  }

  /// True if `wme` belongs here (class + alpha tests).
  bool Accepts(const Wme& wme) const;

  /// Inserts a row for `wme` (must pass Accepts).
  Status Insert(const Wme& wme);

  /// Deletes the row(s) with this tag.
  void RemoveTag(TimeTag tag);

 private:
  CondTable() = default;

  const CompiledRule* rule_ = nullptr;
  const CompiledCondition* cond_ = nullptr;
  std::string tag_column_;
  std::vector<std::pair<std::string, int>> var_columns_;  // (var, field)
  std::vector<PredColumn> pred_columns_;
  rdb::Relation rel_;
};

}  // namespace dips
}  // namespace sorel

#endif  // SOREL_DIPS_COND_TABLE_H_
