#include "dips/dips.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "base/thread_pool.h"
#include "core/test_eval.h"

namespace sorel {
namespace dips {

namespace {

std::vector<TimeTag> RowRecency(const Row& row) {
  std::vector<TimeTag> tags;
  tags.reserve(row.size());
  for (const WmePtr& w : row) tags.push_back(w->time_tag());
  std::sort(tags.rbegin(), tags.rend());
  return tags;
}

std::vector<TimeTag> RowSignature(const Row& row) {
  std::vector<TimeTag> sig;
  sig.reserve(row.size());
  for (const WmePtr& w : row) sig.push_back(w->time_tag());
  return sig;
}

}  // namespace

size_t DipsMatcher::TagVecHash::operator()(
    const std::vector<TimeTag>& tags) const {
  size_t h = 0x9e3779b97f4a7c15ull;
  for (TimeTag t : tags) {
    h ^= std::hash<TimeTag>()(t) + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

/// A regular instantiation materialized from the match relation.
class DipsMatcher::DipsInst : public InstantiationRef {
 public:
  DipsInst(const CompiledRule* rule, Row row)
      : rule_(rule), row_(std::move(row)) {}

  const CompiledRule& rule() const override { return *rule_; }
  void CollectRows(std::vector<Row>* out) const override {
    out->push_back(row_);
  }
  std::vector<TimeTag> RecencyTags() const override {
    return RowRecency(row_);
  }
  TimeTag FirstCeTag() const override {
    return row_.empty() ? 0 : row_.front()->time_tag();
  }

 private:
  const CompiledRule* rule_;
  Row row_;
};

/// A set-oriented instantiation: one group of the match relation (§8.2).
class DipsMatcher::DipsSoi : public InstantiationRef {
 public:
  explicit DipsSoi(const CompiledRule* rule) : rule_(rule) {}

  const CompiledRule& rule() const override { return *rule_; }
  void CollectRows(std::vector<Row>* out) const override {
    out->reserve(out->size() + rows_.size());
    for (const Row& row : rows_) out->push_back(row);
  }
  std::vector<TimeTag> RecencyTags() const override {
    return rows_.empty() ? std::vector<TimeTag>{} : RowRecency(rows_.front());
  }
  TimeTag FirstCeTag() const override {
    return rows_.empty() || rows_.front().empty()
               ? 0
               : rows_.front().front()->time_tag();
  }

  const std::vector<Row>& rows() const { return rows_; }
  bool active() const { return active_; }

 private:
  friend class DipsMatcher;

  const CompiledRule* rule_;
  std::vector<Row> rows_;  // descending recency, like the conflict set
  std::vector<std::vector<TimeTag>> sig_;  // per-row signatures, for diffing
  bool active_ = false;
};

DipsMatcher::DipsMatcher(WorkingMemory* wm, ConflictSet* cs, ThreadPool* pool,
                         obs::MetricRegistry* metrics, obs::Tracer* tracer)
    : wm_(wm), cs_(cs), pool_(pool), metrics_(metrics), tracer_(tracer) {
  wm_->AddListener(this);
  if (metrics_ != nullptr) {
    metrics_->RegisterCounter(this, "dips.refreshes",
                              [this] { return stats_.refreshes; });
    metrics_->RegisterCounter(this, "dips.batches",
                              [this] { return stats_.batches; });
    // Per-session COND-table storage (the rule programs themselves are
    // shared when the engine is bound to a CompiledRuleBase; these
    // relations are what each session pays privately).
    metrics_->RegisterGauge(this, "dips.table_bytes", [this] {
      return static_cast<double>(TableMemoryBytes());
    });
    metrics_->RegisterReset(this, [this] { ResetStats(); });
    if (metrics_->timing_enabled()) {
      match_timer_ = metrics_->GetOrCreateTimer("phase.match");
    }
  }
}

DipsMatcher::~DipsMatcher() {
  if (metrics_ != nullptr) metrics_->Unregister(this);
  wm_->RemoveListener(this);
  for (const auto& rs : rules_) {
    for (const auto& [sig, inst] : rs->insts) cs_->Remove(inst.get());
    for (const auto& [key, soi] : rs->sois) {
      if (soi->active()) cs_->Remove(soi.get());
    }
  }
}

Status DipsMatcher::AddRule(const CompiledRule* rule) {
  auto rs = std::make_unique<RuleState>();
  rs->rule = rule;
  for (int ce = 0; ce < static_cast<int>(rule->conditions.size()); ++ce) {
    SOREL_ASSIGN_OR_RETURN(CondTable table, CondTable::Create(rule, ce));
    rs->tables.push_back(std::move(table));
  }
  for (const WmePtr& w : wm_->Snapshot()) {
    for (CondTable& table : rs->tables) {
      if (table.Accepts(*w)) SOREL_RETURN_IF_ERROR(table.Insert(*w));
    }
  }
  SOREL_RETURN_IF_ERROR(Refresh(rs.get(), &stats_));
  rules_.push_back(std::move(rs));
  return Status::Ok();
}

Status DipsMatcher::RemoveRule(const CompiledRule* rule) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if ((*it)->rule != rule) continue;
    for (const auto& [sig, inst] : (*it)->insts) cs_->Remove(inst.get());
    for (const auto& [key, soi] : (*it)->sois) {
      if (soi->active()) cs_->Remove(soi.get());
    }
    rules_.erase(it);
    return Status::Ok();
  }
  return Status::NotFound("rule not loaded: " + rule->name);
}

void DipsMatcher::OnAdd(const WmePtr& wme) {
  obs::ScopedTimer timer(match_timer_);
  for (const auto& rs : rules_) {
    bool changed = false;
    for (CondTable& table : rs->tables) {
      if (!table.Accepts(*wme)) continue;
      Status s = table.Insert(*wme);
      if (!s.ok() && last_error_.ok()) last_error_ = s;
      changed = true;
    }
    if (changed) {
      Status s = Refresh(rs.get(), &stats_);
      if (!s.ok() && last_error_.ok()) last_error_ = s;
    }
  }
}

void DipsMatcher::OnRemove(const WmePtr& wme) {
  obs::ScopedTimer timer(match_timer_);
  for (const auto& rs : rules_) {
    bool changed = false;
    for (CondTable& table : rs->tables) {
      if (!table.Accepts(*wme)) continue;
      table.RemoveTag(wme->time_tag());
      changed = true;
    }
    if (changed) {
      Status s = Refresh(rs.get(), &stats_);
      if (!s.ok() && last_error_.ok()) last_error_ = s;
    }
  }
}

Status DipsMatcher::ReplayRule(RuleState* rs, const ChangeBatch& batch,
                               ConflictSet::Delta* delta, Stats* stats) {
  // Scoped: pool help-drain can nest another replay task inside this frame;
  // its exit must restore this frame's redirection, not clear it.
  ConflictSet::ScopedThreadDelta scoped_delta(cs_, delta);
  bool changed = false;
  Status result = Status::Ok();
  for (const WmChange& c : batch.changes) {
    for (CondTable& table : rs->tables) {
      if (!table.Accepts(*c.wme)) continue;
      if (c.added) {
        Status s = table.Insert(*c.wme);
        if (!s.ok() && result.ok()) result = s;
      } else {
        table.RemoveTag(c.wme->time_tag());
      }
      changed = true;
    }
  }
  if (changed && result.ok()) result = Refresh(rs, stats);
  return result;
}

void DipsMatcher::OnBatch(const ChangeBatch& batch) {
  obs::ScopedTimer timer(match_timer_);
  ++stats_.batches;
  if (tracer_ != nullptr && tracer_->enabled()) {
    for (const auto& rs : rules_) {
      tracer_->Emit(obs::TraceEvent("rule_replay")
                        .Str("rule", rs->rule->name)
                        .Num("changes", batch.changes.size()));
    }
  }
  if (pool_ != nullptr && rules_.size() > 1) {
    // Rule states are disjoint and the sequential path refreshes touched
    // rules in registration order, so one task per rule plus a rule-order
    // delta merge reproduces the sequential conflict-set op stream.
    std::vector<ConflictSet::Delta> deltas(rules_.size());
    std::vector<Stats> stats(rules_.size());
    std::vector<Status> errors(rules_.size(), Status::Ok());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(rules_.size());
    for (size_t i = 0; i < rules_.size(); ++i) {
      tasks.push_back([this, &batch, &deltas, &stats, &errors, i] {
        errors[i] = ReplayRule(rules_[i].get(), batch, &deltas[i], &stats[i]);
      });
    }
    pool_->RunAll(std::move(tasks));
    for (size_t i = 0; i < rules_.size(); ++i) {
      stats_.refreshes += stats[i].refreshes;
      if (!errors[i].ok() && last_error_.ok()) last_error_ = errors[i];
    }
    cs_->ApplyDeltas(&deltas);
    return;
  }
  std::vector<RuleState*> touched;
  for (const auto& rs : rules_) {
    bool changed = false;
    for (const WmChange& c : batch.changes) {
      for (CondTable& table : rs->tables) {
        if (!table.Accepts(*c.wme)) continue;
        if (c.added) {
          Status s = table.Insert(*c.wme);
          if (!s.ok() && last_error_.ok()) last_error_ = s;
        } else {
          table.RemoveTag(c.wme->time_tag());
        }
        changed = true;
      }
    }
    if (changed) touched.push_back(rs.get());
  }
  for (RuleState* rs : touched) {
    Status s = Refresh(rs, &stats_);
    if (!s.ok() && last_error_.ok()) last_error_ = s;
  }
}

Result<rdb::Relation> DipsMatcher::ComputeMatch(const RuleState& rs) const {
  const CompiledRule& rule = *rs.rule;
  rdb::Relation acc = rs.tables[0].relation();
  for (size_t i = 1; i < rule.conditions.size(); ++i) {
    const CondTable& table = rs.tables[i];
    // Residual (non-equality) join predicates.
    struct ResidualPred {
      int left_col;
      int right_col;
      TestPred pred;
    };
    std::vector<ResidualPred> preds;
    for (const CondTable::PredColumn& pc : table.pred_columns()) {
      if (pc.is_eq) continue;
      int left_col = acc.schema().IndexOf(pc.ref_var);
      int right_col = table.relation().schema().IndexOf(pc.column);
      if (left_col < 0 || right_col < 0) {
        return Status::RuntimeError("DIPS: dangling join reference in '" +
                                    rule.name + "'");
      }
      preds.push_back({left_col, right_col, pc.pred});
    }
    rdb::PairPred residual = nullptr;
    if (!preds.empty()) {
      residual = [preds](const rdb::Tuple& l, const rdb::Tuple& r) {
        for (const ResidualPred& p : preds) {
          if (!EvalTestPred(p.pred, r[static_cast<size_t>(p.right_col)],
                            l[static_cast<size_t>(p.left_col)])) {
            return false;
          }
        }
        return true;
      };
    }
    if (table.cond().negated) {
      std::vector<std::pair<std::string, std::string>> keys;
      for (const CondTable::PredColumn& pc : table.pred_columns()) {
        if (pc.is_eq) keys.emplace_back(pc.ref_var, pc.column);
      }
      SOREL_ASSIGN_OR_RETURN(
          acc, rdb::AntiJoin(acc, table.relation(), keys, residual));
    } else {
      std::vector<std::pair<std::string, std::string>> keys;
      for (const auto& [var, field] : table.var_columns()) {
        if (acc.schema().IndexOf(var) >= 0) keys.emplace_back(var, var);
      }
      SOREL_ASSIGN_OR_RETURN(
          acc, rdb::HashJoin(acc, table.relation(), keys, residual));
    }
  }
  return acc;
}

Result<rdb::Relation> DipsMatcher::MatchRelation(
    const CompiledRule* rule) const {
  for (const auto& rs : rules_) {
    if (rs->rule == rule) return ComputeMatch(*rs);
  }
  return Status::NotFound("rule not loaded in DIPS matcher: " + rule->name);
}

size_t DipsMatcher::TableMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& rs : rules_) {
    for (const CondTable& table : rs->tables) {
      const std::vector<rdb::Tuple>& rows = table.relation().rows();
      bytes += rows.capacity() * sizeof(rdb::Tuple);
      for (const rdb::Tuple& row : rows) {
        bytes += row.capacity() * sizeof(Value);
      }
    }
  }
  return bytes;
}

std::vector<std::string> DipsMatcher::KeyColumns(const CompiledRule& rule) {
  std::vector<std::string> keys;
  for (int pos : rule.key_token_positions) {
    keys.push_back("t" + std::to_string(pos));
  }
  for (const std::string& var : rule.ast.scalar_vars) keys.push_back(var);
  return keys;
}

Result<rdb::Relation> DipsMatcher::RetrieveSois(
    const CompiledRule* rule) const {
  SOREL_ASSIGN_OR_RETURN(rdb::Relation match, MatchRelation(rule));
  std::vector<std::string> keys = KeyColumns(*rule);
  rdb::Relation sorted = match;
  if (!keys.empty()) {
    SOREL_ASSIGN_OR_RETURN(sorted, rdb::Sort(match, keys));
  }
  std::vector<std::string> tag_cols;
  for (int pos = 0; pos < rule->num_positive; ++pos) {
    tag_cols.push_back("t" + std::to_string(pos));
  }
  return rdb::Project(sorted, tag_cols);
}

Result<rdb::Relation> DipsMatcher::SoiSummary(const CompiledRule* rule) const {
  SOREL_ASSIGN_OR_RETURN(rdb::Relation match, MatchRelation(rule));
  std::vector<rdb::AggColumn> aggs;
  aggs.push_back({AggOp::kCount, "", "rows", /*count_star=*/true});
  return rdb::GroupBy(match, KeyColumns(*rule), aggs);
}

const CondTable* DipsMatcher::cond_table(const CompiledRule* rule,
                                         int ce_index) const {
  for (const auto& rs : rules_) {
    if (rs->rule == rule) {
      return &rs->tables[static_cast<size_t>(ce_index)];
    }
  }
  return nullptr;
}

Result<Row> DipsMatcher::RowFromTuple(const RuleState& rs,
                                      const rdb::Relation& match,
                                      const rdb::Tuple& tuple) const {
  Row row(static_cast<size_t>(rs.rule->num_positive));
  for (int pos = 0; pos < rs.rule->num_positive; ++pos) {
    int col = match.schema().IndexOf("t" + std::to_string(pos));
    if (col < 0) return Status::RuntimeError("DIPS: missing tag column");
    WmePtr wme = wm_->Find(tuple[static_cast<size_t>(col)].as_int());
    if (wme == nullptr) {
      return Status::RuntimeError("DIPS: match references a dead WME");
    }
    row[static_cast<size_t>(pos)] = std::move(wme);
  }
  return row;
}

Status DipsMatcher::Refresh(RuleState* rs, Stats* stats) {
  ++stats->refreshes;
  SOREL_ASSIGN_OR_RETURN(rdb::Relation match, ComputeMatch(*rs));
  if (rs->rule->has_set) return RefreshSet(rs, match);
  return RefreshRegular(rs, match);
}

Status DipsMatcher::RefreshRegular(RuleState* rs,
                                   const rdb::Relation& match) {
  std::unordered_map<std::vector<TimeTag>, Row, TagVecHash> current;
  for (const rdb::Tuple& tuple : match.rows()) {
    SOREL_ASSIGN_OR_RETURN(Row row, RowFromTuple(*rs, match, tuple));
    current.emplace(RowSignature(row), std::move(row));
  }
  // Drop vanished instantiations. Release keeps each alive until any
  // buffered conflict-set ops have been applied (a reused address would
  // alias in the entry map).
  for (auto it = rs->insts.begin(); it != rs->insts.end();) {
    if (current.count(it->first) == 0) {
      cs_->Remove(it->second.get());
      cs_->Release(std::move(it->second));
      it = rs->insts.erase(it);
    } else {
      ++it;
    }
  }
  // Add new ones.
  for (auto& [sig, row] : current) {
    if (rs->insts.count(sig) != 0) continue;
    auto inst = std::make_unique<DipsInst>(rs->rule, std::move(row));
    cs_->Add(inst.get());
    rs->insts.emplace(sig, std::move(inst));
  }
  return Status::Ok();
}

Status DipsMatcher::RefreshSet(RuleState* rs, const rdb::Relation& match) {
  // Group the match relation by the partition key.
  std::unordered_map<SoiKey, std::vector<Row>, SoiKeyHash> groups;
  for (const rdb::Tuple& tuple : match.rows()) {
    SOREL_ASSIGN_OR_RETURN(Row row, RowFromTuple(*rs, match, tuple));
    SoiKey key = MakeSoiKey(*rs->rule, row);
    groups[key].push_back(std::move(row));
  }
  // Sort each group's rows by descending recency (conflict-set order).
  for (auto& [key, rows] : groups) {
    std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      return CompareRecencyTags(RowRecency(a), RowRecency(b)) > 0;
    });
  }
  // Drop vanished SOIs (Release: see RefreshRegular).
  for (auto it = rs->sois.begin(); it != rs->sois.end();) {
    if (groups.count(it->first) == 0) {
      if (it->second->active_) cs_->Remove(it->second.get());
      cs_->Release(std::move(it->second));
      it = rs->sois.erase(it);
    } else {
      ++it;
    }
  }
  // Create or update the rest.
  for (auto& [key, rows] : groups) {
    std::vector<std::vector<TimeTag>> sig;
    sig.reserve(rows.size());
    for (const Row& row : rows) sig.push_back(RowSignature(row));
    auto it = rs->sois.find(key);
    if (it != rs->sois.end() && it->second->sig_ == sig) continue;  // no change
    if (it == rs->sois.end()) {
      it = rs->sois.emplace(key, std::make_unique<DipsSoi>(rs->rule)).first;
    }
    DipsSoi* soi = it->second.get();
    soi->rows_ = std::move(rows);
    soi->sig_ = std::move(sig);
    SOREL_ASSIGN_OR_RETURN(bool pass, EvalTestOverRows(*rs->rule, soi->rows_));
    if (pass) {
      soi->active_ = true;
      cs_->Add(soi);  // insert or reinstate eligibility (§6)
    } else if (soi->active_) {
      soi->active_ = false;
      cs_->Remove(soi);
    }
  }
  return Status::Ok();
}

}  // namespace dips
}  // namespace sorel
