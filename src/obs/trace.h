#ifndef SOREL_OBS_TRACE_H_
#define SOREL_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace sorel {
namespace obs {

/// One structured event in the engine's trace stream: a type tag, a global
/// sequence number (stamped by the Tracer), and typed key/value fields.
/// Event types emitted by the engine:
///
///   cycle_begin   {cycle}                      recognize-act cycle starts
///   select        {rule, rows, tags}           conflict-set selection
///   fire          {rule, rows}                 instantiation chosen to fire
///   rhs_apply     {rule, rows, actions}        RHS finished applying
///   cycle_end     {cycle}                      cycle done (also RunParallel,
///                                              with {eligible, batch})
///   batch_commit  {changes}                    top-level WM commit delivered
///   rollback      {changes}                    WM transaction rolled back
///   rule_replay   {rule}                       per-rule match replay of one
///                                              batch (granularity depends on
///                                              matcher and parallel config)
class TraceEvent {
 public:
  struct Field {
    const char* key;
    bool is_num;
    std::string str;  // !is_num
    uint64_t num;     // is_num
  };

  explicit TraceEvent(const char* type) : type_(type) {}

  TraceEvent&& Str(const char* key, std::string value) && {
    fields_.push_back({key, false, std::move(value), 0});
    return std::move(*this);
  }
  TraceEvent&& Num(const char* key, uint64_t value) && {
    fields_.push_back({key, true, {}, value});
    return std::move(*this);
  }

  const char* type() const { return type_; }
  uint64_t seq() const { return seq_; }
  void set_seq(uint64_t seq) { seq_ = seq; }
  const std::vector<Field>& fields() const { return fields_; }

 private:
  const char* type_;
  uint64_t seq_ = 0;
  std::vector<Field> fields_;
};

/// Consumer of the event stream. Write is only ever called from the
/// coordinating thread (workers never emit), so sinks need no locking.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Write(const TraceEvent& event) = 0;
};

/// One JSON object per line: {"ev":"fire","seq":7,"rule":"r1","rows":2}.
/// The machine-readable exporter — fuzz repros and CI artifacts parse it
/// back with obs::ParseJson and check it with ValidateTraceLine.
class JsonLinesTraceSink : public TraceSink {
 public:
  explicit JsonLinesTraceSink(std::ostream* out) : out_(out) {}
  void Write(const TraceEvent& event) override;

 private:
  std::ostream* out_;
};

/// Aligned human-readable lines: "[7] fire rule=r1 rows=2".
class TextTraceSink : public TraceSink {
 public:
  explicit TextTraceSink(std::ostream* out) : out_(out) {}
  void Write(const TraceEvent& event) override;

 private:
  std::ostream* out_;
};

/// The emission point components hold: a borrowed sink (swappable at run
/// time) plus the stream's sequence counter. `enabled()` is the one-branch
/// guard hot paths pay when tracing is off — build the event only after it.
class Tracer {
 public:
  void set_sink(TraceSink* sink) { sink_ = sink; }
  bool enabled() const { return sink_ != nullptr; }

  void Emit(TraceEvent event) {
    if (sink_ == nullptr) return;
    event.set_seq(++seq_);
    sink_->Write(event);
  }

 private:
  TraceSink* sink_ = nullptr;
  uint64_t seq_ = 0;
};

}  // namespace obs
}  // namespace sorel

#endif  // SOREL_OBS_TRACE_H_
