#ifndef SOREL_OBS_METRICS_H_
#define SOREL_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sorel {
namespace obs {

/// Folded view of one phase timer: sample count, total wall time, and a
/// log2(ns) histogram for tail estimates.
struct TimerSnapshot {
  /// Bucket b counts samples with 2^(b-1) <= ns < 2^b (bucket 0: 0-1 ns).
  static constexpr int kBuckets = 40;

  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t buckets[kBuckets] = {};

  double TotalMs() const { return static_cast<double>(total_ns) / 1e6; }
  double MeanUs() const {
    return count == 0 ? 0.0
                      : static_cast<double>(total_ns) / 1e3 /
                            static_cast<double>(count);
  }
  /// Upper bound (us) of the histogram bucket containing the 99th
  /// percentile sample — a coarse tail estimate, exact to a factor of 2.
  double ApproxP99Us() const;
};

/// A phase timer samples can be recorded into from any thread: writes land
/// in per-worker shards (relaxed atomics, cache-line separated) that are
/// folded on read, so the hot path never contends on a lock.
class Timer {
 public:
  Timer();

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  void Record(uint64_t ns);
  TimerSnapshot Snapshot() const;
  void Reset();

 private:
  static constexpr int kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> count;
    std::atomic<uint64_t> total_ns;
    std::atomic<uint64_t> buckets[TimerSnapshot::kBuckets];
  };
  Shard shards_[kShards];
};

/// Times a scope into `timer`; a null timer makes it a no-op, which is how
/// the disabled configuration stays off the clock entirely.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer) : timer_(timer) {
    if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (timer_ == nullptr) return;
    timer_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// The engine-wide metric registry. Components do NOT move their hot-path
/// counters here — they keep their plain `Stats` structs (cheap single-
/// threaded increments, per-task shard copies merged by the coordinator)
/// and register *views*: a named getter per counter plus one reset hook.
/// The registry folds those views on read (duplicate names sum, which is
/// how per-S-node counters aggregate) and fans `ResetAll` out to every
/// hook, so no hand-kept field list can drift out of sync again.
///
/// Registration and snapshots happen on the coordinating thread; only
/// Timer::Record is called from workers (and is lock-free).
class MetricRegistry {
 public:
  using CounterGetter = std::function<uint64_t()>;
  using GaugeGetter = std::function<double()>;

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Registers a named counter view. `owner` keys later Unregister calls
  /// (components pass `this` and unregister in their destructor). The same
  /// name may be registered by several owners; snapshots sum them.
  void RegisterCounter(const void* owner, std::string name,
                       CounterGetter getter);

  /// Registers a point-in-time gauge (live sizes, occupancy). Gauges are
  /// snapshots of live state, so ResetAll leaves them alone.
  void RegisterGauge(const void* owner, std::string name, GaugeGetter getter);

  /// Registers a hook ResetAll runs (a component's ResetStats).
  void RegisterReset(const void* owner, std::function<void()> reset);

  /// Drops every registration made under `owner`.
  void Unregister(const void* owner);

  /// Folded counter values by name, duplicate registrations summed.
  std::map<std::string, uint64_t> SnapshotCounters() const;
  std::map<std::string, double> SnapshotGauges() const;

  /// The named timer, created on first use. The pointer stays valid for
  /// the registry's lifetime (ResetAll clears samples, never timers).
  Timer* GetOrCreateTimer(const std::string& name);
  std::map<std::string, TimerSnapshot> SnapshotTimers() const;

  /// Master switch consulted by components before installing scope timers
  /// on their hot paths; off costs one branch per would-be sample.
  void set_timing_enabled(bool on) { timing_enabled_ = on; }
  bool timing_enabled() const { return timing_enabled_; }

  /// Runs every reset hook and zeroes every timer's samples.
  void ResetAll();

  /// Registered counter names (sorted, deduplicated) — lets tests sweep
  /// coverage without a hand-kept list.
  std::vector<std::string> CounterNames() const;

 private:
  struct Counter {
    const void* owner;
    std::string name;
    CounterGetter getter;
  };
  struct Gauge {
    const void* owner;
    std::string name;
    GaugeGetter getter;
  };
  struct ResetHook {
    const void* owner;
    std::function<void()> fn;
  };

  mutable std::mutex mu_;
  bool timing_enabled_ = false;
  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<ResetHook> resets_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

}  // namespace obs
}  // namespace sorel

#endif  // SOREL_OBS_METRICS_H_
