#include "obs/trace.h"

#include "obs/json.h"

namespace sorel {
namespace obs {

void JsonLinesTraceSink::Write(const TraceEvent& event) {
  *out_ << "{\"ev\":\"" << JsonEscape(event.type()) << "\",\"seq\":"
        << event.seq();
  for (const TraceEvent::Field& f : event.fields()) {
    *out_ << ",\"" << JsonEscape(f.key) << "\":";
    if (f.is_num) {
      *out_ << f.num;
    } else {
      *out_ << "\"" << JsonEscape(f.str) << "\"";
    }
  }
  *out_ << "}\n";
}

void TextTraceSink::Write(const TraceEvent& event) {
  *out_ << "[" << event.seq() << "] " << event.type();
  for (const TraceEvent::Field& f : event.fields()) {
    *out_ << " " << f.key << "=";
    if (f.is_num) {
      *out_ << f.num;
    } else {
      *out_ << f.str;
    }
  }
  *out_ << "\n";
}

}  // namespace obs
}  // namespace sorel
