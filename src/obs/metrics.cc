#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <thread>

namespace sorel {
namespace obs {

double TimerSnapshot::ApproxP99Us() const {
  if (count == 0) return 0.0;
  uint64_t target = count - count / 100;  // ceil(0.99 * count)
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= target) {
      return static_cast<double>(uint64_t{1} << b) / 1e3;
    }
  }
  return static_cast<double>(uint64_t{1} << (kBuckets - 1)) / 1e3;
}

namespace {

int BucketOf(uint64_t ns) {
  int b = 64 - std::countl_zero(ns);
  return b >= TimerSnapshot::kBuckets ? TimerSnapshot::kBuckets - 1 : b;
}

size_t ShardOf() {
  // Hash of the thread id, stable per thread — workers land on distinct
  // shards with high probability, and collisions only cost an atomic RMW.
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

Timer::Timer() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.total_ns.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

void Timer::Record(uint64_t ns) {
  Shard& s = shards_[ShardOf() % kShards];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.total_ns.fetch_add(ns, std::memory_order_relaxed);
  s.buckets[BucketOf(ns)].fetch_add(1, std::memory_order_relaxed);
}

TimerSnapshot Timer::Snapshot() const {
  TimerSnapshot out;
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.total_ns += s.total_ns.load(std::memory_order_relaxed);
    for (int b = 0; b < TimerSnapshot::kBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Timer::Reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.total_ns.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

void MetricRegistry::RegisterCounter(const void* owner, std::string name,
                                     CounterGetter getter) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.push_back({owner, std::move(name), std::move(getter)});
}

void MetricRegistry::RegisterGauge(const void* owner, std::string name,
                                   GaugeGetter getter) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_.push_back({owner, std::move(name), std::move(getter)});
}

void MetricRegistry::RegisterReset(const void* owner,
                                   std::function<void()> reset) {
  std::lock_guard<std::mutex> lock(mu_);
  resets_.push_back({owner, std::move(reset)});
}

void MetricRegistry::Unregister(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(counters_, [owner](const Counter& c) {
    return c.owner == owner;
  });
  std::erase_if(gauges_, [owner](const Gauge& g) { return g.owner == owner; });
  std::erase_if(resets_, [owner](const ResetHook& r) {
    return r.owner == owner;
  });
}

std::map<std::string, uint64_t> MetricRegistry::SnapshotCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const Counter& c : counters_) out[c.name] += c.getter();
  return out;
}

std::map<std::string, double> MetricRegistry::SnapshotGauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const Gauge& g : gauges_) out[g.name] += g.getter();
  return out;
}

Timer* MetricRegistry::GetOrCreateTimer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Timer>& slot = timers_[name];
  if (slot == nullptr) slot = std::make_unique<Timer>();
  return slot.get();
}

std::map<std::string, TimerSnapshot> MetricRegistry::SnapshotTimers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, TimerSnapshot> out;
  for (const auto& [name, timer] : timers_) out[name] = timer->Snapshot();
  return out;
}

void MetricRegistry::ResetAll() {
  // Copy the hooks out so a hook that (indirectly) touches the registry
  // never deadlocks on mu_.
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hooks.reserve(resets_.size());
    for (const ResetHook& r : resets_) hooks.push_back(r.fn);
    for (const auto& [name, timer] : timers_) timer->Reset();
  }
  for (const auto& hook : hooks) hook();
}

std::vector<std::string> MetricRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const Counter& c : counters_) names.push_back(c.name);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace obs
}  // namespace sorel
