#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sorel {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (v == std::floor(v) && std::fabs(v) < 9e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent JSON parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    SOREL_RETURN_IF_ERROR(ParseValue(&v, /*depth=*/0));
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Status::Ok();
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Status::Ok();
    }
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      out->kind = JsonValue::Kind::kNull;
      return Status::Ok();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Error(std::string("unexpected character '") + c + "'");
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Eat('}')) return Status::Ok();
    while (true) {
      SkipWs();
      std::string key;
      SOREL_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Eat(':')) return Error("expected ':'");
      JsonValue value;
      SOREL_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Eat(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      SOREL_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->items.push_back(std::move(value));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    if (!Eat('"')) return Error("expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          *out += e;
          break;
        case 'n':
          *out += '\n';
          break;
        case 't':
          *out += '\t';
          break;
        case 'r':
          *out += '\r';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            unsigned digit;
            if (h >= '0' && h <= '9') {
              digit = static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              digit = static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              digit = static_cast<unsigned>(h - 'A') + 10;
            } else {
              return Error("bad \\u escape");
            }
            code = code * 16 + digit;
          }
          // Our emitters only \u-escape control characters; anything outside
          // ASCII decodes to '?' rather than growing a UTF-8 encoder here.
          *out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Eat('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (end == num.c_str() || *end != '\0') return Error("bad number");
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

Status ValidateBenchReport(const JsonValue& doc) {
  if (!doc.is_object()) return Status::InvalidArgument("report: not an object");
  const JsonValue* bench = doc.Find("bench");
  if (bench == nullptr || !bench->is_string() || bench->string.empty()) {
    return Status::InvalidArgument("report: missing \"bench\" name string");
  }
  const JsonValue* config = doc.Find("config");
  if (config == nullptr || !config->is_object()) {
    return Status::InvalidArgument("report: missing \"config\" object");
  }
  for (const auto& [key, value] : config->members) {
    if (!value.is_number()) {
      return Status::InvalidArgument("report: config key \"" + key +
                                     "\" is not a number");
    }
  }
  const JsonValue* results = doc.Find("results");
  if (results == nullptr || !results->is_array()) {
    return Status::InvalidArgument("report: missing \"results\" array");
  }
  for (size_t i = 0; i < results->items.size(); ++i) {
    const JsonValue& row = results->items[i];
    if (!row.is_object()) {
      return Status::InvalidArgument("report: result row " +
                                     std::to_string(i) + " is not an object");
    }
    const JsonValue* label = row.Find("label");
    if (label == nullptr || !label->is_string()) {
      return Status::InvalidArgument("report: result row " +
                                     std::to_string(i) + " has no label");
    }
    for (const auto& [key, value] : row.members) {
      if (key == "label") continue;
      if (!value.is_number()) {
        return Status::InvalidArgument("report: result field \"" + key +
                                       "\" is not a number");
      }
    }
  }
  return Status::Ok();
}

Status ValidateTraceLine(const JsonValue& doc) {
  if (!doc.is_object()) return Status::InvalidArgument("trace: not an object");
  const JsonValue* ev = doc.Find("ev");
  if (ev == nullptr || !ev->is_string() || ev->string.empty()) {
    return Status::InvalidArgument("trace: missing \"ev\" type string");
  }
  const JsonValue* seq = doc.Find("seq");
  if (seq == nullptr || !seq->is_number()) {
    return Status::InvalidArgument("trace: missing numeric \"seq\"");
  }
  for (const auto& [key, value] : doc.members) {
    if (!value.is_number() && !value.is_string()) {
      return Status::InvalidArgument("trace: field \"" + key +
                                     "\" is neither number nor string");
    }
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace sorel
