#ifndef SOREL_OBS_JSON_H_
#define SOREL_OBS_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace sorel {
namespace obs {

/// JSON string escaping: backslash, quote, and control characters (bench
/// labels and trace fields carry user-ish text like rule names).
std::string JsonEscape(std::string_view s);

/// Renders a double the way our reports do: integral values print without a
/// fraction, everything else as %.6g.
std::string JsonNumber(double v);

/// A parsed JSON document — just enough structure for the schema checkers
/// below and for tests that want to inspect bench/trace output. Object
/// members keep source order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  /// Object member by key, or nullptr.
  const JsonValue* Find(std::string_view key) const;
};

/// Strict-enough recursive-descent parser for the JSON this repo emits
/// (JsonReport files, TraceSink lines). Errors carry a byte offset.
Result<JsonValue> ParseJson(std::string_view text);

/// Schema check for a `bench_util.h` JsonReport document: a "bench" string,
/// a "config" object of numbers, and a "results" array of rows that each
/// carry a "label" string plus numeric fields.
Status ValidateBenchReport(const JsonValue& doc);

/// Schema check for one TraceSink JSON line: an "ev" string, a numeric
/// "seq", and string-or-number fields otherwise.
Status ValidateTraceLine(const JsonValue& doc);

}  // namespace obs
}  // namespace sorel

#endif  // SOREL_OBS_JSON_H_
