#include "rdb/query.h"

namespace sorel {
namespace rdb {

Query&& Query::Push(Stage stage) && {
  stages_.push_back(std::move(stage));
  return std::move(*this);
}

Query&& Query::Where(std::string column, TestPred pred, Value value) && {
  return std::move(*this).Push(
      [column = std::move(column), pred, value](Relation in) {
        return SelectWhere(in, column, pred, value);
      });
}

Query&& Query::Where(RowPred pred) && {
  return std::move(*this).Push([pred = std::move(pred)](Relation in) {
    return Result<Relation>(Select(in, pred));
  });
}

Query&& Query::Join(Relation right,
                    std::vector<std::pair<std::string, std::string>> keys,
                    PairPred residual) && {
  return std::move(*this).Push(
      [right = std::move(right), keys = std::move(keys),
       residual = std::move(residual)](Relation in) {
        return HashJoin(in, right, keys, residual);
      });
}

Query&& Query::AntiJoin(Relation right,
                        std::vector<std::pair<std::string, std::string>> keys,
                        PairPred residual) && {
  return std::move(*this).Push(
      [right = std::move(right), keys = std::move(keys),
       residual = std::move(residual)](Relation in) {
        return rdb::AntiJoin(in, right, keys, residual);
      });
}

Query&& Query::Project(std::vector<std::string> columns) && {
  return std::move(*this).Push([columns = std::move(columns)](Relation in) {
    return rdb::Project(in, columns);
  });
}

Query&& Query::Rename(
    std::vector<std::pair<std::string, std::string>> renames) && {
  return std::move(*this).Push([renames = std::move(renames)](Relation in) {
    return rdb::Rename(in, renames);
  });
}

Query&& Query::GroupBy(std::vector<std::string> keys,
                       std::vector<AggColumn> aggs) && {
  return std::move(*this).Push(
      [keys = std::move(keys), aggs = std::move(aggs)](Relation in) {
        return rdb::GroupBy(in, keys, aggs);
      });
}

Query&& Query::OrderBy(std::vector<std::string> columns) && {
  return std::move(*this).Push([columns = std::move(columns)](Relation in) {
    return Sort(in, columns);
  });
}

Query&& Query::Distinct() && {
  return std::move(*this).Push([](Relation in) {
    return Result<Relation>(rdb::Distinct(in));
  });
}

Result<Relation> Query::Execute() && {
  Relation current = std::move(base_);
  for (Stage& stage : stages_) {
    SOREL_ASSIGN_OR_RETURN(current, stage(std::move(current)));
  }
  return current;
}

}  // namespace rdb
}  // namespace sorel
