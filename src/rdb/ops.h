#ifndef SOREL_RDB_OPS_H_
#define SOREL_RDB_OPS_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "lang/ast.h"
#include "rdb/relation.h"

namespace sorel {
namespace rdb {

/// Row predicate used by Select / join residuals.
using RowPred = std::function<bool(const Tuple&)>;
/// Residual predicate over a (left, right) tuple pair in joins.
using PairPred = std::function<bool(const Tuple&, const Tuple&)>;

/// σ: rows of `in` satisfying `pred`.
Relation Select(const Relation& in, const RowPred& pred);

/// σ with a simple `column pred constant` condition.
Result<Relation> SelectWhere(const Relation& in, std::string_view column,
                             TestPred pred, const Value& value);

/// π: keeps `columns` in the given order (duplicates of rows preserved).
Result<Relation> Project(const Relation& in,
                         const std::vector<std::string>& columns);

/// ρ: renames columns (from -> to pairs).
Result<Relation> Rename(
    const Relation& in,
    const std::vector<std::pair<std::string, std::string>>& renames);

/// Equi-hash-join on `keys` (left column, right column). The result schema
/// is left's columns followed by right's non-key columns; a non-key name
/// collision is an error. With empty `keys` this is a cross product. An
/// optional `residual` filters joined pairs (for non-equality conditions).
Result<Relation> HashJoin(
    const Relation& left, const Relation& right,
    const std::vector<std::pair<std::string, std::string>>& keys,
    const PairPred& residual = nullptr);

/// Anti-join: left rows with NO right partner under `keys` + `residual`
/// (relational NOT EXISTS; used for negated CEs in DIPS).
Result<Relation> AntiJoin(
    const Relation& left, const Relation& right,
    const std::vector<std::pair<std::string, std::string>>& keys,
    const PairPred& residual = nullptr);

/// δ: distinct rows (first occurrence kept, order preserved).
Relation Distinct(const Relation& in);

/// Sorts by `columns` ascending using Value::Compare; stable.
Result<Relation> Sort(const Relation& in,
                      const std::vector<std::string>& columns);

/// One aggregate output column of GroupBy.
struct AggColumn {
  AggOp op;
  std::string column;  // input column (ignored for count-star)
  std::string as;      // output column name
  bool count_star = false;  // count rows instead of distinct values
};

/// γ: SQL GROUP BY over `keys` with `aggs` (distinct-value semantics for
/// count/sum/min/max/avg, matching the engine's aggregate semantics; use
/// `count_star` for plain row counts). Output schema: keys then aggregates.
/// Groups appear in first-seen order.
Result<Relation> GroupBy(const Relation& in,
                         const std::vector<std::string>& keys,
                         const std::vector<AggColumn>& aggs);

/// ∪ of two union-compatible relations (bag semantics).
Result<Relation> Union(const Relation& a, const Relation& b);

}  // namespace rdb
}  // namespace sorel

#endif  // SOREL_RDB_OPS_H_
