#ifndef SOREL_RDB_QUERY_H_
#define SOREL_RDB_QUERY_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rdb/ops.h"
#include "rdb/relation.h"

namespace sorel {
namespace rdb {

/// A fluent, lazily evaluated pipeline over the rdb operators — the query
/// shape DIPS issues against COND tables (§8.2), reusable by library
/// clients:
///
///   SOREL_ASSIGN_OR_RETURN(
///       Relation result,
///       Query(cond_e)
///           .Join(cond_w, {{"x", "x"}})
///           .Where("salary", TestPred::kGt, Value::Int(1000))
///           .GroupBy({"t0"}, {{AggOp::kCount, "", "rows", true}})
///           .OrderBy({"rows"})
///           .Execute());
///
/// Stages are recorded and run left to right by `Execute()`; the first
/// error aborts the pipeline. Input relations are captured by value so the
/// query remains valid after its sources change (snapshot semantics, as a
/// disk-based DIPS transaction would see).
class Query {
 public:
  explicit Query(Relation base) : base_(std::move(base)) {}

  /// σ with `column pred constant`.
  Query&& Where(std::string column, TestPred pred, Value value) &&;
  /// σ with an arbitrary row predicate.
  Query&& Where(RowPred pred) &&;
  /// Equi-join against `right` (keys: left column, right column), with an
  /// optional non-equality residual.
  Query&& Join(Relation right,
               std::vector<std::pair<std::string, std::string>> keys,
               PairPred residual = nullptr) &&;
  /// Anti-join (NOT EXISTS) against `right`.
  Query&& AntiJoin(Relation right,
                   std::vector<std::pair<std::string, std::string>> keys,
                   PairPred residual = nullptr) &&;
  /// π to `columns`, in order.
  Query&& Project(std::vector<std::string> columns) &&;
  /// ρ column renames (from -> to).
  Query&& Rename(std::vector<std::pair<std::string, std::string>> renames) &&;
  /// γ grouping with aggregate columns.
  Query&& GroupBy(std::vector<std::string> keys,
                  std::vector<AggColumn> aggs) &&;
  /// Ascending stable sort by `columns`.
  Query&& OrderBy(std::vector<std::string> columns) &&;
  /// δ distinct rows.
  Query&& Distinct() &&;

  /// Runs the pipeline.
  Result<Relation> Execute() &&;

 private:
  using Stage = std::function<Result<Relation>(Relation)>;

  Query&& Push(Stage stage) &&;

  Relation base_;
  std::vector<Stage> stages_;
};

}  // namespace rdb
}  // namespace sorel

#endif  // SOREL_RDB_QUERY_H_
