#ifndef SOREL_RDB_RELATION_H_
#define SOREL_RDB_RELATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "base/symbol_table.h"
#include "base/value.h"

namespace sorel {
namespace rdb {

/// A tuple: one `Value` per schema column. `nil` doubles as SQL NULL.
using Tuple = std::vector<Value>;

/// Column-name schema of a relation.
class RelSchema {
 public:
  RelSchema() = default;
  explicit RelSchema(std::vector<std::string> columns);

  /// Index of `column`, or -1.
  int IndexOf(std::string_view column) const;
  int arity() const { return static_cast<int>(columns_.size()); }
  const std::vector<std::string>& columns() const { return columns_; }

  bool operator==(const RelSchema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<std::string> columns_;
};

/// An in-memory relation: a schema plus a bag of tuples (the DIPS substrate
/// of §8 — COND tables, intermediate join results, SOI groups).
class Relation {
 public:
  Relation() = default;
  explicit Relation(RelSchema schema) : schema_(std::move(schema)) {}

  const RelSchema& schema() const { return schema_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends `row`; errors if the arity does not match the schema.
  Status Insert(Tuple row);

  /// Removes all rows for which `pred` holds; returns how many.
  template <typename Pred>
  size_t Erase(Pred pred) {
    size_t before = rows_.size();
    std::erase_if(rows_, pred);
    return before - rows_.size();
  }

  /// Value of `column` in `row` (both must be valid).
  const Value& At(size_t row, int column) const {
    return rows_[row][static_cast<size_t>(column)];
  }

  /// Multi-line debug rendering with a header row.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  RelSchema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace rdb
}  // namespace sorel

#endif  // SOREL_RDB_RELATION_H_
