#ifndef SOREL_RDB_WME_OPS_H_
#define SOREL_RDB_WME_OPS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lang/ast.h"
#include "rete/columnar.h"
#include "rete/token.h"
#include "wm/wme.h"

namespace sorel {
namespace rdb {

/// Iterator-style operators over alpha-memory scan views (`AlphaSpan`),
/// the physical substrate of the plan matcher's join pipeline. Unlike the
/// Relation-based operators in ops.h these never materialize `Value`
/// tuples: they stream over the columnar alpha storage and hand back span
/// positions, so a join step costs one pass over the build side plus one
/// probe per row — no beta memories, linear space.

/// σ over a scan view: appends to `out` the positions of `span` whose
/// live WME satisfies `pred`. Returns the number selected.
template <typename Pred>
size_t SelectPositions(const AlphaSpan& span, Pred&& pred,
                       std::vector<uint32_t>* out) {
  size_t hits = 0;
  const size_t n = span.size();
  for (size_t i = 0; i < n; ++i) {
    if (!span.Live(i)) continue;
    if (!pred(*span.Ptr(i))) continue;
    out->push_back(static_cast<uint32_t>(i));
    ++hits;
  }
  return hits;
}

/// Build side of a hash join over an alpha scan view: buckets the live
/// positions of one `AlphaSpan` by the values of `fields` (JoinKey /
/// `Value` equality — numerically equal int/float hash alike, matching
/// EvalTestPred(kEq)). Built once per join step and discarded with the
/// search, so worst-case space stays linear in the alpha memories.
class WmeHashIndex {
 public:
  WmeHashIndex() = default;

  /// Rebuilds the index over `span` keyed on `fields`. Dead rows are
  /// skipped; bucket entries keep scan (insertion) order.
  void Build(const AlphaSpan& span, const std::vector<int>& fields);

  /// The positions whose key equals `key`, or nullptr if none.
  const std::vector<uint32_t>* Find(const JoinKey& key) const {
    auto it = buckets_.find(key);
    return it == buckets_.end() ? nullptr : &it->second;
  }

  /// Extracts this index's key from an arbitrary WME (the probe side).
  JoinKey KeyOf(const Wme& wme) const;

  size_t num_keys() const { return buckets_.size(); }

 private:
  std::vector<int> fields_;
  std::unordered_map<JoinKey, std::vector<uint32_t>, JoinKeyHash> buckets_;
};

}  // namespace rdb
}  // namespace sorel

#endif  // SOREL_RDB_WME_OPS_H_
