#include "rdb/ops.h"

#include <algorithm>
#include <unordered_map>

#include "core/aggregate.h"

namespace sorel {
namespace rdb {

namespace {

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 0x9e3779b97f4a7c15ull;
    for (const Value& v : t) {
      h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

Result<std::vector<int>> ResolveColumns(const Relation& in,
                                        const std::vector<std::string>& cols) {
  std::vector<int> idx;
  idx.reserve(cols.size());
  for (const std::string& c : cols) {
    int i = in.schema().IndexOf(c);
    if (i < 0) return Status::InvalidArgument("no such column: " + c);
    idx.push_back(i);
  }
  return idx;
}

Tuple KeyOf(const Tuple& row, const std::vector<int>& idx) {
  Tuple key;
  key.reserve(idx.size());
  for (int i : idx) key.push_back(row[static_cast<size_t>(i)]);
  return key;
}

}  // namespace

Relation Select(const Relation& in, const RowPred& pred) {
  Relation out(in.schema());
  for (const Tuple& row : in.rows()) {
    if (pred(row)) (void)out.Insert(row);
  }
  return out;
}

Result<Relation> SelectWhere(const Relation& in, std::string_view column,
                             TestPred pred, const Value& value) {
  int i = in.schema().IndexOf(column);
  if (i < 0) {
    return Status::InvalidArgument("no such column: " + std::string(column));
  }
  return Select(in, [i, pred, value](const Tuple& row) {
    return EvalTestPred(pred, row[static_cast<size_t>(i)], value);
  });
}

Result<Relation> Project(const Relation& in,
                         const std::vector<std::string>& columns) {
  SOREL_ASSIGN_OR_RETURN(std::vector<int> idx, ResolveColumns(in, columns));
  Relation out{RelSchema(columns)};
  for (const Tuple& row : in.rows()) {
    SOREL_RETURN_IF_ERROR(out.Insert(KeyOf(row, idx)));
  }
  return out;
}

Result<Relation> Rename(
    const Relation& in,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  std::vector<std::string> columns = in.schema().columns();
  for (const auto& [from, to] : renames) {
    int i = in.schema().IndexOf(from);
    if (i < 0) return Status::InvalidArgument("no such column: " + from);
    columns[static_cast<size_t>(i)] = to;
  }
  Relation out{RelSchema(std::move(columns))};
  for (const Tuple& row : in.rows()) SOREL_RETURN_IF_ERROR(out.Insert(row));
  return out;
}

namespace {

// Common machinery for HashJoin/AntiJoin: per-left-row partner iteration.
struct JoinIndex {
  std::vector<int> left_idx, right_idx;
  std::unordered_multimap<Tuple, size_t, TupleHash> right_by_key;
};

Result<JoinIndex> BuildJoinIndex(
    const Relation& left, const Relation& right,
    const std::vector<std::pair<std::string, std::string>>& keys) {
  JoinIndex ji;
  for (const auto& [l, r] : keys) {
    int li = left.schema().IndexOf(l);
    int ri = right.schema().IndexOf(r);
    if (li < 0) return Status::InvalidArgument("no such column: " + l);
    if (ri < 0) return Status::InvalidArgument("no such column: " + r);
    ji.left_idx.push_back(li);
    ji.right_idx.push_back(ri);
  }
  for (size_t j = 0; j < right.rows().size(); ++j) {
    ji.right_by_key.emplace(KeyOf(right.rows()[j], ji.right_idx), j);
  }
  return ji;
}

}  // namespace

Result<Relation> HashJoin(
    const Relation& left, const Relation& right,
    const std::vector<std::pair<std::string, std::string>>& keys,
    const PairPred& residual) {
  SOREL_ASSIGN_OR_RETURN(JoinIndex ji, BuildJoinIndex(left, right, keys));
  // Output schema: left columns + right non-key columns.
  std::vector<std::string> out_cols = left.schema().columns();
  std::vector<int> right_keep;
  for (int i = 0; i < right.schema().arity(); ++i) {
    if (std::find(ji.right_idx.begin(), ji.right_idx.end(), i) !=
        ji.right_idx.end()) {
      continue;
    }
    const std::string& name =
        right.schema().columns()[static_cast<size_t>(i)];
    if (std::find(out_cols.begin(), out_cols.end(), name) != out_cols.end()) {
      return Status::InvalidArgument("join column name collision: " + name);
    }
    out_cols.push_back(name);
    right_keep.push_back(i);
  }
  Relation out{RelSchema(std::move(out_cols))};
  for (const Tuple& lrow : left.rows()) {
    Tuple key = KeyOf(lrow, ji.left_idx);
    auto [lo, hi] = ji.right_by_key.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      const Tuple& rrow = right.rows()[it->second];
      if (residual != nullptr && !residual(lrow, rrow)) continue;
      Tuple joined = lrow;
      for (int i : right_keep) joined.push_back(rrow[static_cast<size_t>(i)]);
      SOREL_RETURN_IF_ERROR(out.Insert(std::move(joined)));
    }
  }
  return out;
}

Result<Relation> AntiJoin(
    const Relation& left, const Relation& right,
    const std::vector<std::pair<std::string, std::string>>& keys,
    const PairPred& residual) {
  SOREL_ASSIGN_OR_RETURN(JoinIndex ji, BuildJoinIndex(left, right, keys));
  Relation out(left.schema());
  for (const Tuple& lrow : left.rows()) {
    Tuple key = KeyOf(lrow, ji.left_idx);
    auto [lo, hi] = ji.right_by_key.equal_range(key);
    bool blocked = false;
    for (auto it = lo; it != hi && !blocked; ++it) {
      const Tuple& rrow = right.rows()[it->second];
      blocked = residual == nullptr || residual(lrow, rrow);
    }
    if (!blocked) SOREL_RETURN_IF_ERROR(out.Insert(lrow));
  }
  return out;
}

Relation Distinct(const Relation& in) {
  Relation out(in.schema());
  std::unordered_map<Tuple, bool, TupleHash> seen;
  for (const Tuple& row : in.rows()) {
    if (seen.emplace(row, true).second) (void)out.Insert(row);
  }
  return out;
}

Result<Relation> Sort(const Relation& in,
                      const std::vector<std::string>& columns) {
  SOREL_ASSIGN_OR_RETURN(std::vector<int> idx, ResolveColumns(in, columns));
  Relation out(in.schema());
  std::vector<Tuple> rows = in.rows();
  std::stable_sort(rows.begin(), rows.end(),
                   [&idx](const Tuple& a, const Tuple& b) {
                     for (int i : idx) {
                       int c = Value::Compare(a[static_cast<size_t>(i)],
                                              b[static_cast<size_t>(i)]);
                       if (c != 0) return c < 0;
                     }
                     return false;
                   });
  for (Tuple& row : rows) SOREL_RETURN_IF_ERROR(out.Insert(std::move(row)));
  return out;
}

Result<Relation> GroupBy(const Relation& in,
                         const std::vector<std::string>& keys,
                         const std::vector<AggColumn>& aggs) {
  SOREL_ASSIGN_OR_RETURN(std::vector<int> key_idx, ResolveColumns(in, keys));
  struct Group {
    Tuple key;
    std::vector<AggState> states;
    int64_t row_count = 0;
  };
  std::vector<int> agg_idx;
  for (const AggColumn& a : aggs) {
    if (a.count_star) {
      agg_idx.push_back(-1);
      continue;
    }
    int i = in.schema().IndexOf(a.column);
    if (i < 0) return Status::InvalidArgument("no such column: " + a.column);
    agg_idx.push_back(i);
  }
  std::unordered_map<Tuple, size_t, TupleHash> index;
  std::vector<Group> groups;
  for (const Tuple& row : in.rows()) {
    Tuple key = KeyOf(row, key_idx);
    auto [it, inserted] = index.emplace(key, groups.size());
    if (inserted) {
      Group g;
      g.key = std::move(key);
      for (const AggColumn& a : aggs) g.states.emplace_back(a.op);
      groups.push_back(std::move(g));
    }
    Group& g = groups[it->second];
    ++g.row_count;
    for (size_t k = 0; k < aggs.size(); ++k) {
      if (agg_idx[k] >= 0) {
        g.states[k].Insert(row[static_cast<size_t>(agg_idx[k])]);
      }
    }
  }
  std::vector<std::string> out_cols = keys;
  for (const AggColumn& a : aggs) out_cols.push_back(a.as);
  Relation out{RelSchema(std::move(out_cols))};
  for (const Group& g : groups) {
    Tuple row = g.key;
    for (size_t k = 0; k < aggs.size(); ++k) {
      if (aggs[k].count_star) {
        row.push_back(Value::Int(g.row_count));
      } else {
        SOREL_ASSIGN_OR_RETURN(Value v, g.states[k].Current());
        row.push_back(v);
      }
    }
    SOREL_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  return out;
}

Result<Relation> Union(const Relation& a, const Relation& b) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("union of incompatible schemas");
  }
  Relation out(a.schema());
  for (const Tuple& row : a.rows()) SOREL_RETURN_IF_ERROR(out.Insert(row));
  for (const Tuple& row : b.rows()) SOREL_RETURN_IF_ERROR(out.Insert(row));
  return out;
}

}  // namespace rdb
}  // namespace sorel
