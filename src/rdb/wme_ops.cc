#include "rdb/wme_ops.h"

namespace sorel {
namespace rdb {

void WmeHashIndex::Build(const AlphaSpan& span,
                         const std::vector<int>& fields) {
  fields_ = fields;
  buckets_.clear();
  const size_t n = span.size();
  for (size_t i = 0; i < n; ++i) {
    if (!span.Live(i)) continue;
    buckets_[KeyOf(*span.Ptr(i))].push_back(static_cast<uint32_t>(i));
  }
}

JoinKey WmeHashIndex::KeyOf(const Wme& wme) const {
  JoinKey key;
  key.values.reserve(fields_.size());
  for (int f : fields_) key.values.push_back(wme.field(f));
  return key;
}

}  // namespace rdb
}  // namespace sorel
