#include "rdb/relation.h"

#include <utility>

namespace sorel {
namespace rdb {

RelSchema::RelSchema(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

int RelSchema::IndexOf(std::string_view column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == column) return static_cast<int>(i);
  }
  return -1;
}

Status Relation::Insert(Tuple row) {
  if (static_cast<int>(row.size()) != schema_.arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(row.size()) +
        " does not match schema arity " + std::to_string(schema_.arity()));
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

std::string Relation::ToString(const SymbolTable& symbols) const {
  std::string out;
  for (size_t i = 0; i < schema_.columns().size(); ++i) {
    if (i > 0) out += " | ";
    out += schema_.columns()[i];
  }
  out += "\n";
  for (const Tuple& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString(symbols);
    }
    out += "\n";
  }
  return out;
}

}  // namespace rdb
}  // namespace sorel
