#ifndef SOREL_SERVER_ENGINE_SERVER_H_
#define SOREL_SERVER_ENGINE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "lang/rule_base.h"
#include "server/session.h"

namespace sorel {
namespace obs {
struct JsonValue;
}  // namespace obs

namespace server {

struct EngineServerOptions {
  /// Directory holding per-session WAL and snapshot files (created if
  /// missing).
  std::string data_dir = ".";
  /// Default WAL fsync batching for sessions that don't override it.
  int fsync_every = 1;
  /// Cap on sessions resident in memory at once; 0 = unlimited. When an
  /// open (or a transparent reopen) would exceed the cap, the
  /// least-recently-used idle session is checkpointed (snapshot + WAL
  /// truncate) and released; its name stays valid, and the next command
  /// addressing it reopens it from snapshot + WAL with state intact.
  /// Sessions inside an open client transaction are never evicted.
  int max_resident_sessions = 0;
};

/// A multi-session rule service: N independent sessions — each its own
/// working memory, conflict set, and WAL — all bound to ONE shared
/// compiled rule base (parse, compiled rules, optimized join orders, and
/// network topology are produced once per rule-source fingerprint and
/// shared read-only), driven over a line-oriented JSON protocol. One
/// request line in, exactly one response line out:
///
///   {"cmd":"open","session":"s1","matcher":"rete"}
///   {"ok":true,"session":"s1","recovered":false,...}
///
/// Commands: ping, rules, sessions, open, close, make, remove, modify,
/// run, begin, commit, rollback, wm, cs, metrics, trace, wal, snapshot,
/// dump, shutdown. Errors come back as
/// {"ok":false,"code":"<StatusCodeName>","error":"..."} and never kill the
/// server. The core is transport-agnostic — `HandleLine` maps one request
/// to one response, and sorel_serve wires it to stdio or a unix socket.
///
/// Threading: HandleLine is safe to call from any number of transport
/// threads concurrently. Commands on distinct sessions run in parallel
/// (each slot has its own mutex); commands on the same session serialize.
/// The shared rule base is deeply immutable, so concurrent matching
/// against it needs no locking. Lock ordering: a slot mutex may be taken
/// before the server mutex (close, eviction bookkeeping), never the
/// reverse for a blocking acquire — the eviction scan only try_locks
/// candidate slots while holding nothing.
class EngineServer {
 public:
  /// Compiles `rules_source` into the shared rule base once; every session
  /// that opens binds to it (a broken rule base fails server start, not
  /// every later `open`).
  static Result<std::unique_ptr<EngineServer>> Create(
      std::string rules_source, EngineServerOptions options = {});

  ~EngineServer();

  /// Handles one protocol line, returning one JSON response line (no
  /// trailing newline). Never throws, never returns malformed JSON.
  /// Thread-safe.
  std::string HandleLine(std::string_view line);

  /// True after a `shutdown` command: the transport loop should drain and
  /// exit. Sessions are synced and closed by then.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// The live session named `name`, or nullptr (unknown, closed, or
  /// currently evicted). Tests reach in for state comparisons the protocol
  /// doesn't expose verbatim; not synchronized against concurrent evicts.
  Session* FindSession(const std::string& name);

  const std::vector<std::string>& rule_names() const { return rule_names_; }

  /// The shared compiled artifact (tests assert pointer identity against
  /// each session engine's rule_base()).
  const RuleBasePtr& rule_base() const { return base_; }

  /// Value of the server.sessions_resident gauge.
  int sessions_resident() const {
    return resident_.load(std::memory_order_relaxed);
  }
  /// Value of the server.shared_network_bytes gauge: bytes of every live
  /// compiled rule base in the registry (shared across all bound sessions,
  /// counted once here rather than per session).
  size_t shared_network_bytes() const;

 private:
  /// One session name's lifetime: the slot survives eviction (the session
  /// pointer drops, the WAL + snapshot persist) and is only removed by
  /// `close` / shutdown. `mu` serializes all commands on the session;
  /// `resident` mirrors `session != nullptr` atomically so the eviction
  /// scan can read it under the server mutex alone.
  struct Slot {
    std::mutex mu;
    SessionOptions options;
    std::shared_ptr<Session> session;
    std::atomic<bool> resident{false};
    std::atomic<uint64_t> last_used{0};
    std::atomic<bool> closed{false};
  };

  EngineServer(std::string rules_source, EngineServerOptions options);

  std::string CmdOpen(const obs::JsonValue& req);
  /// Re-materializes an evicted slot's session from snapshot + WAL.
  /// Requires slot->mu held.
  Status Reopen(const std::string& name, Slot* slot);
  /// Registers the server-level gauges into a freshly (re)opened session's
  /// engine registry, so they show up in `metrics` and Profile() output.
  void InstallGauges(Session* session);
  /// Checkpoints and releases LRU idle sessions until the resident count
  /// is back under the cap (or no candidate is evictable). `keep` is the
  /// slot driving the overflow — never a victim. Caller must NOT hold the
  /// server mutex; may hold keep->mu.
  void MaybeEvict(Slot* keep);

  std::string rules_source_;
  EngineServerOptions options_;
  std::vector<std::string> rule_names_;
  /// The base every session binds to (also pinned in bases_).
  RuleBasePtr base_;

  // Declared before slots_ so the slots (whose gauge lambdas read them)
  // are destroyed first.
  std::atomic<int> resident_{0};
  std::atomic<uint64_t> clock_{0};
  std::atomic<bool> shutdown_{false};

  mutable std::mutex mu_;
  /// Compiled rule bases by source fingerprint. Weak: a base dies with its
  /// last bound session (or the server's own pin for the default base).
  std::unordered_map<uint64_t, std::weak_ptr<const CompiledRuleBase>> bases_;
  std::map<std::string, std::shared_ptr<Slot>> slots_;
};

}  // namespace server
}  // namespace sorel

#endif  // SOREL_SERVER_ENGINE_SERVER_H_
