#ifndef SOREL_SERVER_ENGINE_SERVER_H_
#define SOREL_SERVER_ENGINE_SERVER_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "server/session.h"

namespace sorel {
namespace server {

struct EngineServerOptions {
  /// Directory holding per-session WAL and snapshot files (created if
  /// missing).
  std::string data_dir = ".";
  /// Default WAL fsync batching for sessions that don't override it.
  int fsync_every = 1;
};

/// A multi-session rule service: N independent sessions — each its own
/// working memory, conflict set, and WAL — instantiated from one shared
/// rule source, driven over a line-oriented JSON protocol. One request
/// line in, exactly one response line out:
///
///   {"cmd":"open","session":"s1","matcher":"rete"}
///   {"ok":true,"session":"s1","recovered":false,...}
///
/// Commands: ping, rules, sessions, open, close, make, remove, modify,
/// run, begin, commit, rollback, wm, cs, metrics, trace, wal, snapshot,
/// dump, shutdown. Errors come back as
/// {"ok":false,"code":"<StatusCodeName>","error":"..."} and never kill the
/// server. The core is transport-agnostic — `HandleLine` maps one request
/// to one response, and sorel_serve wires it to stdio or a unix socket.
class EngineServer {
 public:
  /// Validates `rules_source` by compiling it once; the source is then
  /// loaded into every session that opens.
  static Result<std::unique_ptr<EngineServer>> Create(
      std::string rules_source, EngineServerOptions options = {});

  /// Handles one protocol line, returning one JSON response line (no
  /// trailing newline). Never throws, never returns malformed JSON.
  std::string HandleLine(std::string_view line);

  /// True after a `shutdown` command: the transport loop should drain and
  /// exit. Sessions are synced and closed by then.
  bool shutdown_requested() const { return shutdown_; }

  /// The session named `name`, or nullptr (tests reach in for state
  /// comparisons the protocol doesn't expose verbatim).
  Session* FindSession(const std::string& name);

  const std::vector<std::string>& rule_names() const { return rule_names_; }

 private:
  EngineServer(std::string rules_source, EngineServerOptions options);

  std::string rules_source_;
  EngineServerOptions options_;
  std::vector<std::string> rule_names_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;
  bool shutdown_ = false;
};

}  // namespace server
}  // namespace sorel

#endif  // SOREL_SERVER_ENGINE_SERVER_H_
