#ifndef SOREL_SERVER_CODEC_H_
#define SOREL_SERVER_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "base/symbol_table.h"
#include "base/value.h"
#include "obs/json.h"
#include "wm/change_batch.h"
#include "wm/working_memory.h"

namespace sorel {
namespace server {

/// One decoded WAL record. Two kinds:
///
///   kBatch — a committed ChangeBatch (or one direct, non-transactional
///   per-WME event), recorded physically: exact time tags, modify pairs,
///   and the post-commit tag counter. Replays through
///   `WorkingMemory::ApplyReplay`, i.e. the normal batch path.
///
///   kRun — a recognize-act run requested by the client, recorded
///   logically: the engine is deterministic (pinned by the property
///   suites), so re-executing `Run(max_firings)` against the bit-identical
///   recovered state reproduces the original firings, traces, and
///   counters. Batches committed *inside* a run are therefore not
///   journaled — the run record regenerates them.
struct WalEntry {
  enum class Kind { kBatch, kRun };
  Kind kind = Kind::kBatch;
  uint64_t lsn = 0;
  // kBatch
  bool direct = false;  // delivered as a per-WME event, not a transaction
  TimeTag next_tag = 0;
  std::vector<ReplayChange> changes;
  // kRun
  int max_firings = -1;
};

/// Renders a Value as JSON that round-trips exactly: null, {"i":"<dec>"}
/// (64-bit ints as strings — JSON numbers are doubles), {"f":"<hexfloat>"}
/// (bit-exact), or {"s":"text"} (any bytes; JSON escaping covers what the
/// OPS5 quoting syntax cannot).
std::string EncodeValue(const Value& v, const SymbolTable& symbols);
Result<Value> DecodeValue(const obs::JsonValue& j, SymbolTable* symbols);

/// Exact int64 as a JSON string token (quotes included).
std::string EncodeTag(int64_t v);
Result<int64_t> DecodeTag(const obs::JsonValue& j);

/// WAL payload encoders. `changes` come straight from the live listener.
std::string EncodeBatch(uint64_t lsn, bool direct,
                        const std::vector<WmChange>& changes,
                        TimeTag next_tag, const SymbolTable& symbols);
std::string EncodeRun(uint64_t lsn, int max_firings);

/// Parses one WAL payload, interning class and symbol names into the
/// recovering engine's table.
Result<WalEntry> DecodeEntry(std::string_view payload, SymbolTable* symbols);

// --- snapshot lines (one JSON object per line; see session.cc) ---

struct SnapshotHeader {
  uint64_t lsn = 0;
  TimeTag next_tag = 1;
};

/// A conflict-set entry's identity + refraction state: rule name plus the
/// matched rows' time tags in CE order (CE order, not recency order —
/// symmetric joins can give two instantiations the same tag *multiset*).
struct CsEntrySnapshot {
  std::string rule;
  std::vector<std::vector<TimeTag>> rows;
  bool fired = false;

  /// Stable identity string ("rule|1,2;3,4;") used to match restored
  /// entries against recorded ones.
  std::string Key() const;
};

std::string EncodeSnapshotHeader(const SnapshotHeader& header);
Result<SnapshotHeader> DecodeSnapshotHeader(std::string_view line);

std::string EncodeSnapshotWme(const Wme& wme, const SymbolTable& symbols);
Result<ReplayChange> DecodeSnapshotWme(std::string_view line,
                                       SymbolTable* symbols);

std::string EncodeSnapshotCsEntry(const CsEntrySnapshot& entry);
Result<CsEntrySnapshot> DecodeSnapshotCsEntry(std::string_view line);

/// Trailer carrying the expected line counts — a snapshot missing it (or
/// with wrong counts) was torn mid-write and must be rejected.
std::string EncodeSnapshotEnd(size_t wmes, size_t cs_entries);
Status CheckSnapshotEnd(std::string_view line, size_t wmes,
                        size_t cs_entries);

/// Kind tag of a snapshot line ("header", "wme", "cs", "end"), or an error.
Result<std::string> SnapshotLineKind(std::string_view line);

}  // namespace server
}  // namespace sorel

#endif  // SOREL_SERVER_CODEC_H_
