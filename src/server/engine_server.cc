#include "server/engine_server.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>
#include <utility>

#include "obs/json.h"
#include "server/codec.h"

namespace sorel {
namespace server {

namespace {

std::string ErrorLine(const Status& status) {
  return "{\"ok\":false,\"code\":\"" +
         std::string(StatusCodeName(status.code())) + "\",\"error\":\"" +
         obs::JsonEscape(status.message()) + "\"}";
}

std::string Quoted(std::string_view s) {
  return "\"" + obs::JsonEscape(s) + "\"";
}

/// Session names become file names, so restrict them hard: no separators,
/// no dot-leading hidden/relative names.
Status CheckSessionName(const std::string& name) {
  if (name.empty() || name.size() > 64 || name[0] == '.') {
    return Status::InvalidArgument("open: bad session name '" + name + "'");
  }
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) {
      return Status::InvalidArgument("open: bad session name '" + name +
                                     "' (allowed: [A-Za-z0-9._-])");
    }
  }
  return Status::Ok();
}

Result<std::string> ArgString(const obs::JsonValue& req,
                              std::string_view key) {
  const obs::JsonValue* v = req.Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument("missing string argument '" +
                                   std::string(key) + "'");
  }
  return v->string;
}

/// A protocol time tag: a decimal string (exact) or a JSON number.
Result<TimeTag> ArgTag(const obs::JsonValue& req, std::string_view key) {
  const obs::JsonValue* v = req.Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument("missing argument '" + std::string(key) +
                                   "'");
  }
  if (v->is_number()) return static_cast<TimeTag>(v->number);
  if (v->is_string()) return DecodeTag(*v);
  return Status::InvalidArgument("argument '" + std::string(key) +
                                 "' is not a tag");
}

/// Protocol value coercion: null -> nil, booleans -> the true/false
/// symbols, integral numbers -> Int, other numbers -> Float, strings ->
/// symbols. The {"i"|"f"|"s": "..."} object forms from codec.h are also
/// accepted for exact 64-bit ints and bit-exact floats.
Result<Value> CoerceValue(const obs::JsonValue& j, SymbolTable* symbols) {
  switch (j.kind) {
    case obs::JsonValue::Kind::kNull:
      return Value::Nil();
    case obs::JsonValue::Kind::kBool:
      return Value::Bool(j.boolean);
    case obs::JsonValue::Kind::kNumber:
      if (std::nearbyint(j.number) == j.number &&
          j.number >= -9007199254740992.0 && j.number <= 9007199254740992.0) {
        return Value::Int(static_cast<int64_t>(j.number));
      }
      return Value::Float(j.number);
    case obs::JsonValue::Kind::kString:
      return Value::Symbol(symbols->Intern(j.string));
    case obs::JsonValue::Kind::kObject:
      return DecodeValue(j, symbols);
    case obs::JsonValue::Kind::kArray:
      break;
  }
  return Status::InvalidArgument("cannot coerce value to an attribute");
}

Result<std::vector<std::pair<std::string, Value>>> ArgAttrs(
    const obs::JsonValue& req, SymbolTable* symbols) {
  const obs::JsonValue* attrs = req.Find("attrs");
  if (attrs == nullptr || !attrs->is_object()) {
    return Status::InvalidArgument("missing object argument 'attrs'");
  }
  std::vector<std::pair<std::string, Value>> out;
  out.reserve(attrs->members.size());
  for (const auto& [name, j] : attrs->members) {
    SOREL_ASSIGN_OR_RETURN(Value v, CoerceValue(j, symbols));
    out.emplace_back(name, v);
  }
  return out;
}

Result<MatcherKind> ParseMatcher(const std::string& name) {
  if (name == "rete") return MatcherKind::kRete;
  if (name == "treat") return MatcherKind::kTreat;
  if (name == "dips") return MatcherKind::kDips;
  if (name == "plan") return MatcherKind::kPlan;
  return Status::InvalidArgument("open: unknown matcher '" + name + "'");
}

Result<Strategy> ParseStrategy(const std::string& name) {
  if (name == "lex") return Strategy::kLex;
  if (name == "mea") return Strategy::kMea;
  return Status::InvalidArgument("open: unknown strategy '" + name + "'");
}

/// Splits drained JSON-lines trace text into a JSON array of the raw
/// objects (they are valid JSON already; no re-encoding).
std::string TraceLinesToArray(const std::string& text) {
  std::string out = "[";
  size_t start = 0;
  bool first = true;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) {
      if (!first) out += ",";
      out.append(text, start, end - start);
      first = false;
    }
    start = end + 1;
  }
  out += "]";
  return out;
}

/// Gauges are doubles but almost always carry byte/count values; print
/// integral ones exactly and the rest with enough digits to round-trip.
std::string GaugeToString(double value) {
  if (std::nearbyint(value) == value && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

EngineServer::EngineServer(std::string rules_source,
                           EngineServerOptions options)
    : rules_source_(std::move(rules_source)), options_(std::move(options)) {}

EngineServer::~EngineServer() = default;

Result<std::unique_ptr<EngineServer>> EngineServer::Create(
    std::string rules_source, EngineServerOptions options) {
  if (options.data_dir.empty()) options.data_dir = ".";
  if (::mkdir(options.data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::RuntimeError("server: cannot create data dir '" +
                                options.data_dir +
                                "': " + std::strerror(errno));
  }
  std::unique_ptr<EngineServer> server(
      new EngineServer(std::move(rules_source), std::move(options)));
  // Compile the shared rule base once up front: a broken rule base should
  // fail server start, not every later `open` — and every session binds
  // this one artifact instead of recompiling.
  SOREL_ASSIGN_OR_RETURN(server->base_,
                         CompiledRuleBase::Compile(server->rules_source_));
  server->bases_[server->base_->fingerprint()] = server->base_;
  for (const CompiledRulePtr& rule : server->base_->rules()) {
    server->rule_names_.push_back(rule->name);
  }
  return server;
}

Session* EngineServer::FindSession(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  return it == slots_.end() ? nullptr : it->second->session.get();
}

size_t EngineServer::shared_network_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [fp, weak] : bases_) {
    if (RuleBasePtr base = weak.lock()) total += base->MemoryBytes();
  }
  return total;
}

void EngineServer::InstallGauges(Session* session) {
  obs::MetricRegistry& metrics = session->engine().metrics();
  metrics.RegisterGauge(this, "server.sessions_resident", [this] {
    return static_cast<double>(resident_.load(std::memory_order_relaxed));
  });
  metrics.RegisterGauge(this, "server.shared_network_bytes", [this] {
    return static_cast<double>(shared_network_bytes());
  });
}

Status EngineServer::Reopen(const std::string& name, Slot* slot) {
  Result<std::unique_ptr<Session>> session =
      Session::Open(name, base_, options_.data_dir, slot->options);
  SOREL_RETURN_IF_ERROR(session.status());
  slot->session = std::move(*session);
  InstallGauges(slot->session.get());
  slot->resident.store(true, std::memory_order_release);
  resident_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void EngineServer::MaybeEvict(Slot* keep) {
  if (options_.max_resident_sessions <= 0) return;
  std::vector<std::shared_ptr<Slot>> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, slot] : slots_) {
      if (slot.get() == keep) continue;
      if (slot->closed.load(std::memory_order_relaxed)) continue;
      if (!slot->resident.load(std::memory_order_relaxed)) continue;
      candidates.push_back(slot);
    }
  }
  // Oldest first. A candidate whose slot mutex is held is mid-command —
  // by definition not LRU-idle — so try_lock failure just skips it.
  std::sort(candidates.begin(), candidates.end(),
            [](const std::shared_ptr<Slot>& a, const std::shared_ptr<Slot>& b) {
              return a->last_used.load(std::memory_order_relaxed) <
                     b->last_used.load(std::memory_order_relaxed);
            });
  for (const std::shared_ptr<Slot>& slot : candidates) {
    if (resident_.load(std::memory_order_relaxed) <=
        options_.max_resident_sessions) {
      break;
    }
    std::unique_lock<std::mutex> lock(slot->mu, std::try_to_lock);
    if (!lock.owns_lock()) continue;
    if (slot->closed.load(std::memory_order_relaxed) ||
        !slot->resident.load(std::memory_order_relaxed)) {
      continue;
    }
    Session* session = slot->session.get();
    // An open client transaction pins the session: its staged batch lives
    // only in memory and a snapshot would refuse anyway.
    if (session->engine().wm().InTransaction()) continue;
    // Checkpoint so reopen replays snapshot + empty WAL, not full history.
    // On failure keep the session resident — correctness over memory.
    if (!session->TakeSnapshot().ok()) continue;
    slot->session.reset();
    slot->resident.store(false, std::memory_order_release);
    resident_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::string EngineServer::CmdOpen(const obs::JsonValue& req) {
  Result<std::string> name = ArgString(req, "session");
  if (!name.ok()) return ErrorLine(name.status());
  Status valid = CheckSessionName(*name);
  if (!valid.ok()) return ErrorLine(valid);
  SessionOptions sopts;
  sopts.fsync_every = options_.fsync_every;
  if (const obs::JsonValue* m = req.Find("matcher")) {
    if (!m->is_string()) {
      return ErrorLine(Status::InvalidArgument("open: 'matcher' must be "
                                               "a string"));
    }
    Result<MatcherKind> kind = ParseMatcher(m->string);
    if (!kind.ok()) return ErrorLine(kind.status());
    sopts.matcher = *kind;
  }
  if (const obs::JsonValue* s = req.Find("strategy")) {
    if (!s->is_string()) {
      return ErrorLine(Status::InvalidArgument("open: 'strategy' must be "
                                               "a string"));
    }
    Result<Strategy> strat = ParseStrategy(s->string);
    if (!strat.ok()) return ErrorLine(strat.status());
    sopts.strategy = *strat;
  }
  if (const obs::JsonValue* t = req.Find("threads")) {
    if (!t->is_number()) {
      return ErrorLine(Status::InvalidArgument("open: 'threads' must be "
                                               "a number"));
    }
    sopts.match_threads = static_cast<int>(t->number);
  }
  if (const obs::JsonValue* f = req.Find("fsync_every")) {
    if (!f->is_number()) {
      return ErrorLine(Status::InvalidArgument("open: 'fsync_every' must "
                                               "be a number"));
    }
    sopts.fsync_every = static_cast<int>(f->number);
  }
  if (const obs::JsonValue* t = req.Find("trace")) {
    sopts.capture_trace = t->kind == obs::JsonValue::Kind::kBool &&
                          t->boolean;
  }

  // Claim the name under the server mutex (the insert decides races), then
  // do the actual open under the slot mutex alone.
  std::shared_ptr<Slot> slot = std::make_shared<Slot>();
  slot->options = sopts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = slots_.emplace(*name, slot);
    if (!inserted) {
      return ErrorLine(Status::InvalidArgument("open: session '" + *name +
                                               "' is already open"));
    }
  }
  std::lock_guard<std::mutex> lock(slot->mu);
  slot->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  Status opened = Reopen(*name, slot.get());
  if (!opened.ok()) {
    // Release the name: a failed open must not burn it.
    std::lock_guard<std::mutex> server_lock(mu_);
    slots_.erase(*name);
    return ErrorLine(opened);
  }
  MaybeEvict(slot.get());
  const RecoveryInfo& rec = slot->session->recovery();
  std::string out = "{\"ok\":true,\"session\":" + Quoted(*name);
  bool recovered = rec.had_snapshot || rec.replayed_records > 0;
  out += recovered ? ",\"recovered\":true" : ",\"recovered\":false";
  out += rec.had_snapshot ? ",\"snapshot\":true" : ",\"snapshot\":false";
  out += ",\"replayed\":" + std::to_string(rec.replayed_records);
  out += ",\"torn_bytes\":" + std::to_string(rec.torn_bytes);
  out += rec.crc_mismatch ? ",\"crc_mismatch\":true"
                          : ",\"crc_mismatch\":false";
  out += "}";
  return out;
}

std::string EngineServer::HandleLine(std::string_view line) {
  Result<obs::JsonValue> parsed = obs::ParseJson(line);
  if (!parsed.ok()) {
    // A request that is not JSON at all is a protocol parse error, distinct
    // from a well-formed request with bad arguments.
    return ErrorLine(Status::ParseError(parsed.status().message()));
  }
  const obs::JsonValue& req = *parsed;
  if (!req.is_object()) {
    return ErrorLine(Status::InvalidArgument("request is not a JSON object"));
  }
  Result<std::string> cmd = ArgString(req, "cmd");
  if (!cmd.ok()) return ErrorLine(cmd.status());

  if (*cmd == "ping") return "{\"ok\":true,\"pong\":true}";

  if (*cmd == "rules") {
    std::string out = "{\"ok\":true,\"rules\":[";
    for (size_t i = 0; i < rule_names_.size(); ++i) {
      if (i != 0) out += ",";
      out += Quoted(rule_names_[i]);
    }
    return out + "]}";
  }

  if (*cmd == "sessions") {
    std::string out = "{\"ok\":true,\"sessions\":[";
    std::lock_guard<std::mutex> lock(mu_);
    bool first = true;
    for (const auto& [name, slot] : slots_) {
      if (!first) out += ",";
      out += Quoted(name);
      first = false;
    }
    return out + "]}";
  }

  if (*cmd == "shutdown") {
    std::vector<std::shared_ptr<Slot>> all;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [name, slot] : slots_) all.push_back(slot);
    }
    for (const std::shared_ptr<Slot>& slot : all) {
      std::lock_guard<std::mutex> lock(slot->mu);
      if (slot->session != nullptr) {
        Status synced = slot->session->SyncWal();
        if (!synced.ok()) return ErrorLine(synced);
        slot->session.reset();
        if (slot->resident.exchange(false)) {
          resident_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      slot->closed.store(true, std::memory_order_release);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      slots_.clear();
    }
    shutdown_.store(true, std::memory_order_release);
    return "{\"ok\":true,\"bye\":true}";
  }

  if (*cmd == "open") return CmdOpen(req);

  // Everything below addresses an existing session.
  Result<std::string> name = ArgString(req, "session");
  if (!name.ok()) return ErrorLine(name.status());
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(*name);
    if (it != slots_.end()) slot = it->second;
  }
  if (slot == nullptr || slot->closed.load(std::memory_order_acquire)) {
    return ErrorLine(Status::NotFound("unknown session '" + *name + "'"));
  }
  slot->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  // Converge under the residency cap opportunistically: an overflow can
  // outlive the open that caused it when every candidate was busy at the
  // time (the eviction scan only try_locks). Cheap when under cap.
  if (options_.max_resident_sessions > 0 &&
      resident_.load(std::memory_order_relaxed) >
          options_.max_resident_sessions) {
    MaybeEvict(slot.get());
  }
  std::lock_guard<std::mutex> session_lock(slot->mu);
  // Re-check: a close/shutdown may have won the race for the slot mutex.
  if (slot->closed.load(std::memory_order_acquire)) {
    return ErrorLine(Status::NotFound("unknown session '" + *name + "'"));
  }

  if (*cmd == "close") {
    if (slot->session != nullptr) {
      Status synced = slot->session->SyncWal();
      if (!synced.ok()) return ErrorLine(synced);
      slot->session.reset();
      if (slot->resident.exchange(false)) {
        resident_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    slot->closed.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mu_);
    slots_.erase(*name);
    return "{\"ok\":true,\"closed\":" + Quoted(*name) + "}";
  }

  // Transparent reopen of an evicted session: its snapshot + WAL rebuild
  // the exact state it was evicted with, bound to the same shared base.
  if (slot->session == nullptr) {
    Status reopened = Reopen(*name, slot.get());
    if (!reopened.ok()) return ErrorLine(reopened);
    MaybeEvict(slot.get());
  }
  Session* session = slot->session.get();

  Engine& engine = session->engine();

  if (*cmd == "make") {
    Result<std::string> cls = ArgString(req, "cls");
    if (!cls.ok()) return ErrorLine(cls.status());
    auto attrs = ArgAttrs(req, &engine.symbols());
    if (!attrs.ok()) return ErrorLine(attrs.status());
    Result<TimeTag> tag = session->Make(*cls, *attrs);
    if (!tag.ok()) return ErrorLine(tag.status());
    return "{\"ok\":true,\"tag\":" + EncodeTag(*tag) +
           ",\"out\":" + Quoted(session->DrainOutput()) + "}";
  }

  if (*cmd == "remove") {
    Result<TimeTag> tag = ArgTag(req, "tag");
    if (!tag.ok()) return ErrorLine(tag.status());
    Status removed = session->Remove(*tag);
    if (!removed.ok()) return ErrorLine(removed);
    return "{\"ok\":true,\"out\":" + Quoted(session->DrainOutput()) + "}";
  }

  if (*cmd == "modify") {
    Result<TimeTag> tag = ArgTag(req, "tag");
    if (!tag.ok()) return ErrorLine(tag.status());
    auto attrs = ArgAttrs(req, &engine.symbols());
    if (!attrs.ok()) return ErrorLine(attrs.status());
    Result<TimeTag> fresh = session->Modify(*tag, *attrs);
    if (!fresh.ok()) return ErrorLine(fresh.status());
    return "{\"ok\":true,\"tag\":" + EncodeTag(*fresh) +
           ",\"out\":" + Quoted(session->DrainOutput()) + "}";
  }

  if (*cmd == "run") {
    int max = -1;
    if (const obs::JsonValue* m = req.Find("max")) {
      if (!m->is_number()) {
        return ErrorLine(Status::InvalidArgument("run: 'max' must be a "
                                                 "number"));
      }
      max = static_cast<int>(m->number);
    }
    Result<int> fired = session->Run(max);
    if (!fired.ok()) return ErrorLine(fired.status());
    std::string out = "{\"ok\":true,\"fired\":" + std::to_string(*fired);
    out += engine.halted() ? ",\"halted\":true" : ",\"halted\":false";
    return out + ",\"out\":" + Quoted(session->DrainOutput()) + "}";
  }

  if (*cmd == "begin") {
    Status began = session->Begin();
    if (!began.ok()) return ErrorLine(began);
    return "{\"ok\":true,\"depth\":" +
           std::to_string(engine.wm().transaction_depth()) + "}";
  }

  if (*cmd == "commit") {
    Status committed = session->Commit();
    if (!committed.ok()) return ErrorLine(committed);
    // Ending the transaction unpins this session; if an open overflowed
    // the residency cap while it was pinned, converge back under it now.
    if (!engine.wm().InTransaction()) MaybeEvict(slot.get());
    return "{\"ok\":true,\"depth\":" +
           std::to_string(engine.wm().transaction_depth()) +
           ",\"out\":" + Quoted(session->DrainOutput()) + "}";
  }

  if (*cmd == "rollback") {
    Status rolled = session->Rollback();
    if (!rolled.ok()) return ErrorLine(rolled);
    if (!engine.wm().InTransaction()) MaybeEvict(slot.get());
    return "{\"ok\":true,\"depth\":" +
           std::to_string(engine.wm().transaction_depth()) + "}";
  }

  if (*cmd == "wm") {
    std::vector<WmePtr> wmes = engine.wm().Snapshot();
    std::string out = "{\"ok\":true,\"size\":" + std::to_string(wmes.size());
    out += ",\"next_tag\":" + EncodeTag(engine.wm().next_time_tag());
    out += ",\"wmes\":[";
    for (size_t i = 0; i < wmes.size(); ++i) {
      if (i != 0) out += ",";
      out += EncodeSnapshotWme(*wmes[i], engine.symbols());
    }
    return out + "]}";
  }

  if (*cmd == "cs") {
    std::string out = "{\"ok\":true,\"entries\":[";
    bool first = true;
    for (const ConflictSet::EntryState& state :
         engine.conflict_set().EntriesWithState()) {
      CsEntrySnapshot entry;
      entry.rule = state.inst->rule().name;
      std::vector<Row> rows;
      state.inst->CollectRows(&rows);
      for (const Row& row : rows) {
        std::vector<TimeTag> tags;
        for (const WmePtr& wme : row) {
          tags.push_back(wme == nullptr ? 0 : wme->time_tag());
        }
        entry.rows.push_back(std::move(tags));
      }
      entry.fired = state.fired;
      if (!first) out += ",";
      out += EncodeSnapshotCsEntry(entry);
      first = false;
    }
    return out + "]}";
  }

  if (*cmd == "metrics") {
    std::string out = "{\"ok\":true,\"counters\":{";
    bool first = true;
    for (const auto& [counter, value] : engine.metrics().SnapshotCounters()) {
      if (!first) out += ",";
      out += Quoted(counter) + ":\"" + std::to_string(value) + "\"";
      first = false;
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [gauge, value] : engine.metrics().SnapshotGauges()) {
      if (!first) out += ",";
      out += Quoted(gauge) + ":\"" + GaugeToString(value) + "\"";
      first = false;
    }
    return out + "}}";
  }

  if (*cmd == "trace") {
    return "{\"ok\":true,\"trace\":" +
           TraceLinesToArray(session->DrainTrace()) + "}";
  }

  if (*cmd == "wal") {
    const WalWriter::Stats& stats = session->wal_stats();
    return "{\"ok\":true,\"records\":" + std::to_string(stats.records) +
           ",\"bytes\":" + std::to_string(stats.bytes) +
           ",\"fsyncs\":" + std::to_string(stats.fsyncs) +
           ",\"next_lsn\":\"" + std::to_string(session->next_lsn()) + "\"}";
  }

  if (*cmd == "snapshot") {
    Status took = session->TakeSnapshot();
    if (!took.ok()) return ErrorLine(took);
    return "{\"ok\":true,\"snapshot_lsn\":\"" +
           std::to_string(session->next_lsn() - 1) + "\"}";
  }

  if (*cmd == "dump") {
    std::ostringstream dump;
    engine.DumpWm(dump);
    return "{\"ok\":true,\"dump\":" + Quoted(dump.str()) + "}";
  }

  return ErrorLine(
      Status::InvalidArgument("unknown command '" + *cmd + "'"));
}

}  // namespace server
}  // namespace sorel
