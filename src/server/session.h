#ifndef SOREL_SERVER_SESSION_H_
#define SOREL_SERVER_SESSION_H_

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/status.h"
#include "engine/engine.h"
#include "obs/trace.h"
#include "server/wal.h"

namespace sorel {
namespace server {

/// Per-session configuration (the matcher sweep knobs the recovery tests
/// exercise, plus the WAL durability knob).
struct SessionOptions {
  MatcherKind matcher = MatcherKind::kRete;
  Strategy strategy = Strategy::kLex;
  int match_threads = 0;
  /// Fsync the WAL every N appended records (1 = every record).
  int fsync_every = 1;
  /// Capture the structured TraceEvent stream as JSON lines (drained over
  /// the protocol with `trace`).
  bool capture_trace = false;
  /// Emit "FIRE rule [tags]" lines into the session's output buffer.
  bool trace_firings = true;
};

/// What recovery found when the session opened: how much intact history
/// was replayed and whether the WAL ended in a torn record.
struct RecoveryInfo {
  bool had_snapshot = false;
  uint64_t replayed_records = 0;
  uint64_t torn_bytes = 0;
  bool crc_mismatch = false;
};

/// One engine instance with durability: every committed ChangeBatch (and
/// every direct, non-transactional WM event) is journaled to an
/// append-only CRC-framed WAL, and `run` commands are journaled logically
/// and re-executed at recovery (see codec.h for why). Opening a session
/// whose WAL or snapshot files exist replays that history through the
/// normal engine paths, so the recovered session is bit-identical to the
/// live one — same firing traces, conflict set, counters, and time tags.
class Session {
 public:
  /// Opens (and, when its files exist, recovers) the session named `name`,
  /// bound to a shared compiled rule base: the engine binds to `base`
  /// first — rules load and startup actions re-execute at every open,
  /// which is why they are not journaled — then the snapshot and WAL tail
  /// replay through the normal engine paths. Any number of concurrently
  /// open sessions may bind the same base; each owns only its mutable
  /// match state. WAL and snapshot live at `<data_dir>/<name>.wal` /
  /// `<data_dir>/<name>.snap`.
  static Result<std::unique_ptr<Session>> Open(const std::string& name,
                                               RuleBasePtr base,
                                               const std::string& data_dir,
                                               const SessionOptions& options);
  /// Convenience: compiles `rules_source` into a private rule base and
  /// opens a session bound to it.
  static Result<std::unique_ptr<Session>> Open(const std::string& name,
                                               const std::string& rules_source,
                                               const std::string& data_dir,
                                               const SessionOptions& options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- journaled commands ---
  Result<TimeTag> Make(
      std::string_view cls,
      const std::vector<std::pair<std::string, Value>>& values);
  Status Remove(TimeTag tag);
  Result<TimeTag> Modify(
      TimeTag tag, const std::vector<std::pair<std::string, Value>>& values);
  /// Journals a logical run record, then runs the engine with journaling
  /// suppressed (recovery re-executes the record instead). Refused inside
  /// an open client transaction: the run's firings would stage into the
  /// client batch and the two records would double-apply at replay.
  Result<int> Run(int max_firings);
  Status Begin();
  /// Commits the client transaction. A top-level commit whose batch netted
  /// to nothing still consumed time tags, so it journals an empty batch
  /// record carrying the tag counter.
  Status Commit();
  Status Rollback();

  /// Checkpoints: syncs the WAL, writes WM + conflict-set state (with
  /// refraction flags) to `<name>.snap` via a tmp-file rename, then
  /// truncates the WAL. Recovery loads the snapshot and replays only WAL
  /// records past its LSN. Refused inside an open transaction.
  Status TakeSnapshot();

  /// Flushes any fsync-batched WAL appends (shutdown path).
  Status SyncWal();

  // --- inspection ---
  Engine& engine() { return *engine_; }
  const std::string& name() const { return name_; }
  const RecoveryInfo& recovery() const { return recovery_; }
  const WalWriter::Stats& wal_stats() const { return wal_.stats(); }
  const std::string& wal_path() const { return wal_path_; }
  const std::string& snapshot_path() const { return snapshot_path_; }
  uint64_t next_lsn() const { return next_lsn_; }

  /// Engine output (write actions, FIRE lines) since the last drain.
  std::string DrainOutput();
  /// Captured trace JSON lines since the last drain (empty unless
  /// SessionOptions::capture_trace).
  std::string DrainTrace();

 private:
  class WalListener;

  Session(std::string name, const SessionOptions& options);

  Status Recover();
  Status LoadSnapshot();
  /// Journals one WAL payload, recording the first failure in wal_error_.
  void Journal(const std::string& payload);
  /// First journaling failure, or OK. Mutating commands report it: a WAL
  /// that stopped persisting must not fail silently.
  Status WalHealth() const { return wal_error_; }

  std::string name_;
  SessionOptions options_;
  std::string wal_path_;
  std::string snapshot_path_;

  // Streams are declared before the engine: EngineOptions borrows the
  // trace sink, so the engine must be destroyed first (members destroy in
  // reverse order).
  std::ostringstream out_;
  std::ostringstream trace_out_;
  obs::JsonLinesTraceSink trace_sink_{&trace_out_};

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<WalListener> listener_;
  WalWriter wal_;
  Status wal_error_;
  bool suppress_journal_ = false;
  /// LSN of the next record to append. Records carry LSNs so recovery can
  /// skip WAL entries already covered by the snapshot (a crash between the
  /// snapshot rename and the WAL truncate leaves both on disk).
  uint64_t next_lsn_ = 1;
  uint64_t snapshot_lsn_ = 0;
  RecoveryInfo recovery_;
};

}  // namespace server
}  // namespace sorel

#endif  // SOREL_SERVER_SESSION_H_
