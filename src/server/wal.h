#ifndef SOREL_SERVER_WAL_H_
#define SOREL_SERVER_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace sorel {
namespace server {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data` —
/// the per-record checksum the WAL frames carry.
uint32_t Crc32(std::string_view data);

/// One recovered WAL record: its payload plus the file offset of the byte
/// after its frame (the truncation point a snapshot or a test can cut at).
struct WalRecord {
  std::string payload;
  uint64_t end_offset = 0;
};

/// What a full read of a WAL file found. A torn or corrupt tail is not an
/// error: it is the expected shape of a crash mid-append, so the reader
/// reports it and the caller recovers from the last intact record.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// Bytes of a torn final frame (short header, short payload, or CRC
  /// mismatch) that were dropped. 0 when the file ends cleanly.
  uint64_t torn_bytes = 0;
  /// True when the dropped tail failed its CRC check (as opposed to being
  /// merely short) — the torn-final-record case the recovery tests pin.
  bool crc_mismatch = false;
};

/// Append-only writer of CRC-framed records:
///
///   [u32le payload_len][u32le crc32(payload)][payload bytes]
///
/// Appends buffer in stdio and reach the disk with fsync; `fsync_every`
/// batches the fsyncs (1 = sync every record, N = sync every N records —
/// the group-commit knob). `Sync` forces the batch out (snapshot and
/// shutdown call it).
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending (created if missing).
  Status Open(const std::string& path, int fsync_every = 1);

  /// Frames and appends one record; fsyncs when the batch is due.
  Status Append(std::string_view payload);

  /// Flushes and fsyncs any pending appends.
  Status Sync();

  /// Truncates the file to zero length (WAL reset after a snapshot). The
  /// writer stays open and subsequent appends start a fresh file.
  Status Truncate();

  void Close();
  bool is_open() const { return file_ != nullptr; }

  struct Stats {
    uint64_t records = 0;
    uint64_t bytes = 0;
    uint64_t fsyncs = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  int fsync_every_ = 1;
  int pending_ = 0;  // records appended since the last fsync
  Stats stats_;
};

/// Reads every intact record of the WAL at `path`. A missing file reads as
/// empty. The first damaged frame (short header, short payload, or CRC
/// mismatch) ends the read: length-prefixed framing cannot resync past it,
/// so everything from that point on is reported as the torn tail. An I/O
/// failure opening or reading the file is a hard error.
Result<WalReadResult> ReadWal(const std::string& path);

}  // namespace server
}  // namespace sorel

#endif  // SOREL_SERVER_WAL_H_
