#include "server/codec.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace sorel {
namespace server {

namespace {

/// Exact round-trip rendering of an int64 (JSON numbers are doubles, which
/// lose precision past 2^53 — tags and integer field values must not).
std::string QuotedInt(int64_t v) { return "\"" + std::to_string(v) + "\""; }

std::string QuotedU64(uint64_t v) { return "\"" + std::to_string(v) + "\""; }

Result<int64_t> ParseInt(const std::string& text, std::string_view what) {
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("codec: bad " + std::string(what) + " '" +
                                   text + "'");
  }
  return static_cast<int64_t>(v);
}

Result<const obs::JsonValue*> Member(const obs::JsonValue& j,
                                     std::string_view key) {
  const obs::JsonValue* m = j.Find(key);
  if (m == nullptr) {
    return Status::InvalidArgument("codec: missing member '" +
                                   std::string(key) + "'");
  }
  return m;
}

Result<std::string> MemberString(const obs::JsonValue& j,
                                 std::string_view key) {
  SOREL_ASSIGN_OR_RETURN(const obs::JsonValue* m, Member(j, key));
  if (!m->is_string()) {
    return Status::InvalidArgument("codec: member '" + std::string(key) +
                                   "' is not a string");
  }
  return m->string;
}

Result<int64_t> MemberInt(const obs::JsonValue& j, std::string_view key) {
  SOREL_ASSIGN_OR_RETURN(std::string text, MemberString(j, key));
  return ParseInt(text, key);
}

Result<bool> MemberBool(const obs::JsonValue& j, std::string_view key) {
  SOREL_ASSIGN_OR_RETURN(const obs::JsonValue* m, Member(j, key));
  if (m->kind != obs::JsonValue::Kind::kBool) {
    return Status::InvalidArgument("codec: member '" + std::string(key) +
                                   "' is not a bool");
  }
  return m->boolean;
}

/// Bit-exact double rendering: C99 hexfloat, which strtod parses back to
/// the identical bit pattern (decimal shortest-round-trip would need
/// %.17g + care; hexfloat is exact by construction).
std::string HexFloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

Result<double> ParseHexFloat(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("codec: bad float '" + text + "'");
  }
  return v;
}

Result<ReplayChange> DecodeChange(const obs::JsonValue& j,
                                  SymbolTable* symbols) {
  if (!j.is_object()) {
    return Status::InvalidArgument("codec: change is not an object");
  }
  SOREL_ASSIGN_OR_RETURN(std::string op, MemberString(j, "op"));
  ReplayChange change;
  SOREL_ASSIGN_OR_RETURN(change.tag, MemberInt(j, "tag"));
  SOREL_ASSIGN_OR_RETURN(change.modify_pair, MemberInt(j, "pair"));
  if (op == "rm") {
    change.added = false;
    return change;
  }
  if (op != "add") {
    return Status::InvalidArgument("codec: unknown change op '" + op + "'");
  }
  change.added = true;
  SOREL_ASSIGN_OR_RETURN(std::string cls, MemberString(j, "cls"));
  change.cls = symbols->Intern(cls);
  SOREL_ASSIGN_OR_RETURN(const obs::JsonValue* fields, Member(j, "fields"));
  if (!fields->is_array()) {
    return Status::InvalidArgument("codec: 'fields' is not an array");
  }
  change.fields.reserve(fields->items.size());
  for (const obs::JsonValue& f : fields->items) {
    SOREL_ASSIGN_OR_RETURN(Value v, DecodeValue(f, symbols));
    change.fields.push_back(v);
  }
  return change;
}

std::string EncodeChange(const WmChange& c, const SymbolTable& symbols) {
  std::string out;
  if (c.added) {
    out += "{\"op\":\"add\",\"tag\":" + QuotedInt(c.wme->time_tag());
    out += ",\"cls\":\"" +
           obs::JsonEscape(symbols.Name(c.wme->cls())) + "\"";
    out += ",\"pair\":" + QuotedInt(c.modify_pair);
    out += ",\"fields\":[";
    const auto& fields = c.wme->fields();
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i != 0) out += ",";
      out += EncodeValue(fields[i], symbols);
    }
    out += "]}";
  } else {
    out += "{\"op\":\"rm\",\"tag\":" + QuotedInt(c.wme->time_tag());
    out += ",\"pair\":" + QuotedInt(c.modify_pair) + "}";
  }
  return out;
}

}  // namespace

std::string EncodeValue(const Value& v, const SymbolTable& symbols) {
  switch (v.kind()) {
    case ValueKind::kNil:
      return "null";
    case ValueKind::kInt:
      return "{\"i\":" + QuotedInt(v.as_int()) + "}";
    case ValueKind::kFloat:
      return "{\"f\":\"" + HexFloat(v.as_float()) + "\"}";
    case ValueKind::kSymbol:
      return "{\"s\":\"" + obs::JsonEscape(symbols.Name(v.as_symbol())) +
             "\"}";
  }
  return "null";
}

Result<Value> DecodeValue(const obs::JsonValue& j, SymbolTable* symbols) {
  if (j.kind == obs::JsonValue::Kind::kNull) return Value::Nil();
  if (!j.is_object() || j.members.size() != 1) {
    return Status::InvalidArgument("codec: bad value encoding");
  }
  const auto& [key, inner] = j.members[0];
  if (!inner.is_string()) {
    return Status::InvalidArgument("codec: value member '" + key +
                                   "' is not a string");
  }
  if (key == "i") {
    SOREL_ASSIGN_OR_RETURN(int64_t v, ParseInt(inner.string, "int value"));
    return Value::Int(v);
  }
  if (key == "f") {
    SOREL_ASSIGN_OR_RETURN(double v, ParseHexFloat(inner.string));
    return Value::Float(v);
  }
  if (key == "s") return Value::Symbol(symbols->Intern(inner.string));
  return Status::InvalidArgument("codec: unknown value kind '" + key + "'");
}

std::string EncodeTag(int64_t v) { return QuotedInt(v); }

Result<int64_t> DecodeTag(const obs::JsonValue& j) {
  if (!j.is_string()) {
    return Status::InvalidArgument("codec: tag is not a string");
  }
  return ParseInt(j.string, "tag");
}

std::string EncodeBatch(uint64_t lsn, bool direct,
                        const std::vector<WmChange>& changes,
                        TimeTag next_tag, const SymbolTable& symbols) {
  std::string out = "{\"t\":\"batch\",\"lsn\":" + QuotedU64(lsn);
  out += direct ? ",\"direct\":true" : ",\"direct\":false";
  out += ",\"next_tag\":" + QuotedInt(next_tag);
  out += ",\"changes\":[";
  for (size_t i = 0; i < changes.size(); ++i) {
    if (i != 0) out += ",";
    out += EncodeChange(changes[i], symbols);
  }
  out += "]}";
  return out;
}

std::string EncodeRun(uint64_t lsn, int max_firings) {
  return "{\"t\":\"run\",\"lsn\":" + QuotedU64(lsn) +
         ",\"max\":" + QuotedInt(max_firings) + "}";
}

Result<WalEntry> DecodeEntry(std::string_view payload, SymbolTable* symbols) {
  SOREL_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::ParseJson(payload));
  if (!doc.is_object()) {
    return Status::InvalidArgument("codec: record is not an object");
  }
  SOREL_ASSIGN_OR_RETURN(std::string type, MemberString(doc, "t"));
  WalEntry entry;
  SOREL_ASSIGN_OR_RETURN(int64_t lsn, MemberInt(doc, "lsn"));
  if (lsn < 0) return Status::InvalidArgument("codec: negative lsn");
  entry.lsn = static_cast<uint64_t>(lsn);
  if (type == "run") {
    entry.kind = WalEntry::Kind::kRun;
    SOREL_ASSIGN_OR_RETURN(int64_t max, MemberInt(doc, "max"));
    entry.max_firings = static_cast<int>(max);
    return entry;
  }
  if (type != "batch") {
    return Status::InvalidArgument("codec: unknown record type '" + type +
                                   "'");
  }
  entry.kind = WalEntry::Kind::kBatch;
  SOREL_ASSIGN_OR_RETURN(entry.direct, MemberBool(doc, "direct"));
  SOREL_ASSIGN_OR_RETURN(entry.next_tag, MemberInt(doc, "next_tag"));
  SOREL_ASSIGN_OR_RETURN(const obs::JsonValue* changes,
                         Member(doc, "changes"));
  if (!changes->is_array()) {
    return Status::InvalidArgument("codec: 'changes' is not an array");
  }
  entry.changes.reserve(changes->items.size());
  for (const obs::JsonValue& c : changes->items) {
    SOREL_ASSIGN_OR_RETURN(ReplayChange change, DecodeChange(c, symbols));
    entry.changes.push_back(std::move(change));
  }
  return entry;
}

// --- snapshot lines ---

std::string CsEntrySnapshot::Key() const {
  std::string key = rule + "|";
  for (const auto& row : rows) {
    for (TimeTag tag : row) {
      key += std::to_string(tag);
      key += ",";
    }
    key += ";";
  }
  return key;
}

std::string EncodeSnapshotHeader(const SnapshotHeader& header) {
  return "{\"t\":\"snap-header\",\"v\":1,\"lsn\":" + QuotedU64(header.lsn) +
         ",\"next_tag\":" + QuotedInt(header.next_tag) + "}";
}

Result<SnapshotHeader> DecodeSnapshotHeader(std::string_view line) {
  SOREL_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::ParseJson(line));
  SOREL_ASSIGN_OR_RETURN(std::string type, MemberString(doc, "t"));
  if (type != "snap-header") {
    return Status::InvalidArgument("snapshot: expected header, got '" + type +
                                   "'");
  }
  const obs::JsonValue* version = doc.Find("v");
  if (version == nullptr || !version->is_number() || version->number != 1) {
    return Status::InvalidArgument("snapshot: unsupported version");
  }
  SnapshotHeader header;
  SOREL_ASSIGN_OR_RETURN(int64_t lsn, MemberInt(doc, "lsn"));
  if (lsn < 0) return Status::InvalidArgument("snapshot: negative lsn");
  header.lsn = static_cast<uint64_t>(lsn);
  SOREL_ASSIGN_OR_RETURN(header.next_tag, MemberInt(doc, "next_tag"));
  return header;
}

std::string EncodeSnapshotWme(const Wme& wme, const SymbolTable& symbols) {
  std::string out = "{\"t\":\"wme\",\"tag\":" + QuotedInt(wme.time_tag());
  out += ",\"cls\":\"" + obs::JsonEscape(symbols.Name(wme.cls())) + "\"";
  out += ",\"fields\":[";
  const auto& fields = wme.fields();
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out += ",";
    out += EncodeValue(fields[i], symbols);
  }
  out += "]}";
  return out;
}

Result<ReplayChange> DecodeSnapshotWme(std::string_view line,
                                       SymbolTable* symbols) {
  SOREL_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::ParseJson(line));
  SOREL_ASSIGN_OR_RETURN(std::string type, MemberString(doc, "t"));
  if (type != "wme") {
    return Status::InvalidArgument("snapshot: expected wme line, got '" +
                                   type + "'");
  }
  ReplayChange change;
  change.added = true;
  SOREL_ASSIGN_OR_RETURN(change.tag, MemberInt(doc, "tag"));
  SOREL_ASSIGN_OR_RETURN(std::string cls, MemberString(doc, "cls"));
  change.cls = symbols->Intern(cls);
  SOREL_ASSIGN_OR_RETURN(const obs::JsonValue* fields,
                         Member(doc, "fields"));
  if (!fields->is_array()) {
    return Status::InvalidArgument("snapshot: 'fields' is not an array");
  }
  change.fields.reserve(fields->items.size());
  for (const obs::JsonValue& f : fields->items) {
    SOREL_ASSIGN_OR_RETURN(Value v, DecodeValue(f, symbols));
    change.fields.push_back(v);
  }
  return change;
}

std::string EncodeSnapshotCsEntry(const CsEntrySnapshot& entry) {
  std::string out = "{\"t\":\"cs\",\"rule\":\"" + obs::JsonEscape(entry.rule) +
                    "\",\"rows\":[";
  for (size_t r = 0; r < entry.rows.size(); ++r) {
    if (r != 0) out += ",";
    out += "[";
    for (size_t i = 0; i < entry.rows[r].size(); ++i) {
      if (i != 0) out += ",";
      out += QuotedInt(entry.rows[r][i]);
    }
    out += "]";
  }
  out += entry.fired ? "],\"fired\":true}" : "],\"fired\":false}";
  return out;
}

Result<CsEntrySnapshot> DecodeSnapshotCsEntry(std::string_view line) {
  SOREL_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::ParseJson(line));
  SOREL_ASSIGN_OR_RETURN(std::string type, MemberString(doc, "t"));
  if (type != "cs") {
    return Status::InvalidArgument("snapshot: expected cs line, got '" +
                                   type + "'");
  }
  CsEntrySnapshot entry;
  SOREL_ASSIGN_OR_RETURN(entry.rule, MemberString(doc, "rule"));
  SOREL_ASSIGN_OR_RETURN(entry.fired, MemberBool(doc, "fired"));
  SOREL_ASSIGN_OR_RETURN(const obs::JsonValue* rows, Member(doc, "rows"));
  if (!rows->is_array()) {
    return Status::InvalidArgument("snapshot: 'rows' is not an array");
  }
  for (const obs::JsonValue& row : rows->items) {
    if (!row.is_array()) {
      return Status::InvalidArgument("snapshot: cs row is not an array");
    }
    std::vector<TimeTag> tags;
    tags.reserve(row.items.size());
    for (const obs::JsonValue& tag : row.items) {
      SOREL_ASSIGN_OR_RETURN(int64_t t, DecodeTag(tag));
      tags.push_back(t);
    }
    entry.rows.push_back(std::move(tags));
  }
  return entry;
}

std::string EncodeSnapshotEnd(size_t wmes, size_t cs_entries) {
  return "{\"t\":\"snap-end\",\"wmes\":" +
         QuotedU64(static_cast<uint64_t>(wmes)) +
         ",\"cs\":" + QuotedU64(static_cast<uint64_t>(cs_entries)) + "}";
}

Status CheckSnapshotEnd(std::string_view line, size_t wmes,
                        size_t cs_entries) {
  SOREL_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::ParseJson(line));
  SOREL_ASSIGN_OR_RETURN(std::string type, MemberString(doc, "t"));
  if (type != "snap-end") {
    return Status::InvalidArgument("snapshot: expected trailer, got '" +
                                   type + "'");
  }
  SOREL_ASSIGN_OR_RETURN(int64_t want_wmes, MemberInt(doc, "wmes"));
  SOREL_ASSIGN_OR_RETURN(int64_t want_cs, MemberInt(doc, "cs"));
  if (want_wmes != static_cast<int64_t>(wmes) ||
      want_cs != static_cast<int64_t>(cs_entries)) {
    return Status::RuntimeError(
        "snapshot: line counts disagree with trailer (torn snapshot?)");
  }
  return Status::Ok();
}

Result<std::string> SnapshotLineKind(std::string_view line) {
  SOREL_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("snapshot: line is not an object");
  }
  SOREL_ASSIGN_OR_RETURN(std::string type, MemberString(doc, "t"));
  if (type == "snap-header") return std::string("header");
  if (type == "wme") return std::string("wme");
  if (type == "cs") return std::string("cs");
  if (type == "snap-end") return std::string("end");
  return Status::InvalidArgument("snapshot: unknown line type '" + type +
                                 "'");
}

}  // namespace server
}  // namespace sorel
