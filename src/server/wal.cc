#include "server/wal.h"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

namespace sorel {
namespace server {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void PutU32Le(uint32_t v, char out[4]) {
  out[0] = static_cast<char>(v & 0xFF);
  out[1] = static_cast<char>((v >> 8) & 0xFF);
  out[2] = static_cast<char>((v >> 16) & 0xFF);
  out[3] = static_cast<char>((v >> 24) & 0xFF);
}

uint32_t GetU32Le(const char in[4]) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

/// Guard against a corrupt length field making the reader allocate wild
/// amounts; no sane record approaches this.
constexpr uint32_t kMaxRecordLen = 1u << 30;

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path, int fsync_every) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::RuntimeError("wal: cannot open '" + path +
                                "': " + std::strerror(errno));
  }
  path_ = path;
  fsync_every_ = fsync_every < 1 ? 1 : fsync_every;
  pending_ = 0;
  return Status::Ok();
}

Status WalWriter::Append(std::string_view payload) {
  if (file_ == nullptr) return Status::InvalidArgument("wal: not open");
  char header[8];
  PutU32Le(static_cast<uint32_t>(payload.size()), header);
  PutU32Le(Crc32(payload), header + 4);
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      (!payload.empty() &&
       std::fwrite(payload.data(), 1, payload.size(), file_) !=
           payload.size())) {
    return Status::RuntimeError("wal: short write to '" + path_ + "'");
  }
  ++stats_.records;
  stats_.bytes += sizeof(header) + payload.size();
  if (++pending_ >= fsync_every_) return Sync();
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::InvalidArgument("wal: not open");
  if (pending_ == 0) return Status::Ok();
  if (std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    return Status::RuntimeError("wal: fsync of '" + path_ +
                                "' failed: " + std::strerror(errno));
  }
  pending_ = 0;
  ++stats_.fsyncs;
  return Status::Ok();
}

Status WalWriter::Truncate() {
  if (file_ == nullptr) return Status::InvalidArgument("wal: not open");
  // Flush buffered appends first so they don't resurface after the
  // truncate, then cut the file and fsync the new (empty) state.
  if (std::fflush(file_) != 0 ||
      ::ftruncate(fileno(file_), 0) != 0 ||
      ::fsync(fileno(file_)) != 0) {
    return Status::RuntimeError("wal: truncate of '" + path_ +
                                "' failed: " + std::strerror(errno));
  }
  // "ab" streams position on write, so no explicit seek is needed; reset
  // the batch so the next append starts a fresh group.
  pending_ = 0;
  return Status::Ok();
}

void WalWriter::Close() {
  if (file_ == nullptr) return;
  std::fflush(file_);
  ::fsync(fileno(file_));
  std::fclose(file_);
  file_ = nullptr;
}

Result<WalReadResult> ReadWal(const std::string& path) {
  WalReadResult out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return out;  // no WAL yet: empty history
    return Status::RuntimeError("wal: cannot read '" + path +
                                "': " + std::strerror(errno));
  }
  uint64_t offset = 0;
  for (;;) {
    char header[8];
    size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0) break;  // clean end
    if (got < sizeof(header)) {
      out.torn_bytes = got;
      break;
    }
    uint32_t len = GetU32Le(header);
    uint32_t crc = GetU32Le(header + 4);
    if (len > kMaxRecordLen) {
      // A wild length is indistinguishable from a torn header; count what
      // actually remains in the file as the tail.
      std::fseek(f, 0, SEEK_END);
      out.torn_bytes =
          static_cast<uint64_t>(std::ftell(f)) - offset;
      out.crc_mismatch = true;
      break;
    }
    std::string payload(len, '\0');
    size_t body = len == 0 ? 0 : std::fread(payload.data(), 1, len, f);
    if (body < len) {
      out.torn_bytes = sizeof(header) + body;
      break;
    }
    if (Crc32(payload) != crc) {
      std::fseek(f, 0, SEEK_END);
      out.torn_bytes = static_cast<uint64_t>(std::ftell(f)) - offset;
      out.crc_mismatch = true;
      break;
    }
    offset += sizeof(header) + len;
    out.records.push_back({std::move(payload), offset});
  }
  std::fclose(f);
  return out;
}

}  // namespace server
}  // namespace sorel
