#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <unordered_set>
#include <sstream>
#include <utility>

#include "dips/dips.h"
#include "lang/parser.h"
#include "treat/treat.h"

namespace sorel {

/// Prints working-memory changes (OPS5's `watch 1`-style tracing).
class Engine::WmTracer : public WorkingMemory::Listener {
 public:
  explicit WmTracer(Engine* engine) : engine_(engine) {}
  void OnAdd(const WmePtr& wme) override { Print("==>", wme); }
  void OnRemove(const WmePtr& wme) override { Print("<==", wme); }

 private:
  void Print(const char* arrow, const WmePtr& wme) {
    const ClassSchema* schema = engine_->schemas().Find(wme->cls());
    *engine_->out_ << arrow << " "
                   << wme->ToString(engine_->symbols_, *schema) << "\n";
  }
  Engine* engine_;
};

Engine::Engine(EngineOptions options)
    : Engine(std::move(options), nullptr) {}

Engine::Engine(EngineOptions options, RuleBasePtr base)
    : options_(std::move(options)),
      base_(std::move(base)),
      wm_(std::make_unique<WorkingMemory>(
          base_ != nullptr ? &base_->schemas() : &schemas_, &symbols_,
          &metrics_, &trace_, options_.wme_arena)),
      cs_(options_.indexed_conflict_set, &metrics_),
      compiler_(&symbols_, &schemas_),
      rhs_(wm_.get(), &symbols_, &std::cout, &metrics_, &trace_) {
  if (base_ != nullptr) {
    // Adopt the base's interning before anything can intern: the shared
    // rules, schemas, and startup actions all hold the base's SymbolIds by
    // value, and CopyFrom preserves ids exactly.
    symbols_.CopyFrom(base_->symbols());
    // Hand the matcher the shared topology so its alpha structures borrow
    // the base's immutable patterns (pointer-identity dedup) instead of
    // deriving private copies.
    options_.rete.topology = &base_->topology();
  }
  // Before any matcher is built: they consult timing_enabled() at
  // construction to decide whether to install hot-path scope timers.
  metrics_.set_timing_enabled(options_.enable_timers);
  trace_.set_sink(options_.trace_sink);
  if (options_.enable_timers) {
    select_timer_ = metrics_.GetOrCreateTimer("phase.select");
    act_timer_ = metrics_.GetOrCreateTimer("phase.act");
  }
  rhs_.set_output(out_);
  if (options_.match_threads > 0 || options_.parallel_rhs) {
    pool_ = std::make_unique<ThreadPool>(
        options_.match_threads > 0 ? options_.match_threads : 2);
  }
  // The matchers see the pool only when match_threads asks for parallel
  // propagation — a parallel_rhs-only pool must not flip them onto the
  // parallel batch path.
  ThreadPool* match_pool = options_.match_threads > 0 ? pool_.get() : nullptr;
  if (match_pool != nullptr) {
    options_.rete.pool = match_pool;
    options_.rete.intra_split_min = options_.intra_rule_split_min_tokens;
  }
  options_.rete.metrics = &metrics_;
  options_.rete.tracer = &trace_;
  if (options_.matcher == MatcherKind::kRete) {
    SinkFactory factory = [this](const CompiledRule& rule)
        -> std::unique_ptr<ReteSink> {
      if (!rule.has_set) return std::make_unique<PNode>(&rule, &cs_);
      auto snode = std::make_unique<SNode>(&rule, &cs_, options_.snode,
                                           &metrics_);
      snodes_[rule.name] = snode.get();
      return snode;
    };
    auto rete = std::make_unique<ReteMatcher>(wm_.get(), &cs_,
                                              std::move(factory),
                                              options_.rete);
    rete_ = rete.get();
    matcher_ = std::move(rete);
  } else if (options_.matcher == MatcherKind::kTreat) {
    auto treat = std::make_unique<TreatMatcher>(
        wm_.get(), &cs_, match_pool, options_.intra_rule_split_min_tokens,
        &metrics_, &trace_, options_.rete.soa_memories);
    treat_ = treat.get();
    matcher_ = std::move(treat);
  } else if (options_.matcher == MatcherKind::kPlan) {
    auto plan = std::make_unique<PlanMatcher>(
        wm_.get(), &cs_, options_.join_order, match_pool, &metrics_, &trace_,
        base_ != nullptr ? &base_->topology() : nullptr);
    plan_ = plan.get();
    matcher_ = std::move(plan);
  } else {
    auto dips = std::make_unique<dips::DipsMatcher>(
        wm_.get(), &cs_, match_pool, &metrics_, &trace_);
    dips_ = dips.get();
    matcher_ = std::move(dips);
  }
  // The pool lives in sorel_base (below the obs layer), so the engine
  // registers its counters; run/parallel stats are the engine's own.
  if (pool_ != nullptr) {
    ThreadPool* pool = pool_.get();
    metrics_.RegisterCounter(this, "pool.threads",
                             [pool] { return pool->stats().threads; });
    metrics_.RegisterCounter(this, "pool.tasks",
                             [pool] { return pool->stats().tasks; });
    metrics_.RegisterCounter(this, "pool.batches",
                             [pool] { return pool->stats().batches; });
    metrics_.RegisterCounter(this, "pool.nested_batches",
                             [pool] { return pool->stats().nested_batches; });
    metrics_.RegisterCounter(this, "pool.max_task_depth",
                             [pool] { return pool->stats().max_task_depth; });
  }
  metrics_.RegisterCounter(this, "run.firings",
                           [this] { return run_stats_.firings; });
  metrics_.RegisterCounter(this, "run.actions",
                           [this] { return run_stats_.actions; });
  metrics_.RegisterCounter(this, "parallel.cycles",
                           [this] { return parallel_stats_.cycles; });
  metrics_.RegisterCounter(this, "parallel.firings",
                           [this] { return parallel_stats_.firings; });
  metrics_.RegisterCounter(this, "parallel.largest_batch",
                           [this] { return parallel_stats_.largest_batch; });
  metrics_.RegisterCounter(this, "parallel.conflicts",
                           [this] { return parallel_stats_.conflicts; });
  metrics_.RegisterReset(this, [this] {
    if (pool_ != nullptr) pool_->ResetStats();
    run_stats_ = {};
    parallel_stats_ = {};
  });
  rhs_.set_transactional(options_.batched_wm);
  rhs_.set_pool(pool_.get());
  rhs_.set_parallel(options_.parallel_rhs);
  startup_context_.name = "startup";
  if (options_.trace_wm) {
    tracer_ = std::make_unique<WmTracer>(this);
    wm_->AddListener(tracer_.get());
  }
  if (base_ != nullptr) {
    // Bind: load every base rule into the fresh matcher, then run the
    // base's startup actions — the same order LoadString performs them in,
    // so network shape, time tags, and traces are bit-identical to a
    // private compile of base->source().
    for (const CompiledRulePtr& rule : base_->rules()) {
      bind_status_ = matcher_->AddRule(rule.get());
      if (!bind_status_.ok()) return;
      active_rules_.push_back(rule.get());
    }
    if (!base_->startup().empty()) {
      Result<RhsExecutor::FireResult> result =
          rhs_.ExecuteStandalone(startup_context_, base_->startup());
      if (!result.ok()) bind_status_ = result.status();
    }
    const CompiledRuleBase* b = base_.get();
    metrics_.RegisterGauge(this, "engine.rule_base_bytes", [b] {
      return static_cast<double>(b->MemoryBytes());
    });
  }
}

Engine::~Engine() {
  metrics_.Unregister(this);
  if (tracer_ != nullptr) wm_->RemoveListener(tracer_.get());
}

void Engine::set_output(std::ostream* out) {
  out_ = out;
  rhs_.set_output(out);
}

void Engine::set_trace_wm(bool on) {
  options_.trace_wm = on;
  if (on && tracer_ == nullptr) {
    tracer_ = std::make_unique<WmTracer>(this);
    wm_->AddListener(tracer_.get());
  } else if (!on && tracer_ != nullptr) {
    wm_->RemoveListener(tracer_.get());
    tracer_.reset();
  }
}

Status Engine::LoadString(std::string_view source) {
  if (base_ != nullptr) {
    return Status::InvalidArgument(
        "engine is bound to a shared rule base; the compiled artifact is "
        "immutable — open a session on a base compiled from the new source");
  }
  SOREL_ASSIGN_OR_RETURN(ProgramAst program, Parse(source));
  for (const LiteralizeAst& lit : program.literalizes) {
    SOREL_RETURN_IF_ERROR(compiler_.DeclareLiteralize(lit));
  }
  for (RuleAst& rule_ast : program.rules) {
    if (FindRule(rule_ast.name) != nullptr) {
      return Status::CompileError("duplicate rule name '" + rule_ast.name +
                                  "'");
    }
    SOREL_ASSIGN_OR_RETURN(CompiledRulePtr rule,
                           compiler_.Compile(std::move(rule_ast)));
    // Load-time CE pre-reordering: Rete and TREAT execute the textual CE
    // chain, so the optimized order is applied by rewriting the rule once
    // before network construction. The plan matcher re-derives its order
    // at run time and leaves the rule untouched; DIPS refreshes whole
    // relations and is order-insensitive. Set-oriented rules keep their
    // chain (the S-node's element CE anchors it).
    if (options_.join_order == JoinOrder::kOptimized && !rule->has_set &&
        (options_.matcher == MatcherKind::kRete ||
         options_.matcher == MatcherKind::kTreat)) {
      JoinOrderResult r =
          OptimizeJoinOrder(*rule, EstimateCards(*rule, wm_->Snapshot()));
      if (r.reordered) ReorderRuleInPlace(rule.get(), r.order);
    }
    SOREL_RETURN_IF_ERROR(matcher_->AddRule(rule.get()));
    active_rules_.push_back(rule.get());
    rules_.push_back(std::move(rule));
  }
  if (!program.startup.empty()) {
    SOREL_RETURN_IF_ERROR(compiler_.CompileStartup(&program.startup));
    SOREL_ASSIGN_OR_RETURN(
        RhsExecutor::FireResult result,
        rhs_.ExecuteStandalone(startup_context_, program.startup));
    (void)result;
  }
  return Status::Ok();
}

Status Engine::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::InvalidArgument("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadString(buf.str());
}

Result<TimeTag> Engine::MakeWme(
    std::string_view cls,
    const std::vector<std::pair<std::string, Value>>& values) {
  std::vector<std::pair<SymbolId, Value>> resolved;
  resolved.reserve(values.size());
  for (const auto& [attr, value] : values) {
    resolved.emplace_back(symbols_.Intern(attr), value);
  }
  SOREL_ASSIGN_OR_RETURN(WmePtr wme,
                         wm_->Make(symbols_.Intern(cls), resolved));
  return wme->time_tag();
}

Status Engine::RemoveWme(TimeTag tag) { return wm_->Remove(tag); }

Result<TimeTag> Engine::ModifyWme(
    TimeTag tag, const std::vector<std::pair<std::string, Value>>& values) {
  WmePtr old = wm_->Find(tag);
  if (old == nullptr) {
    return Status::NotFound("modify: no live WME with time tag " +
                            std::to_string(tag));
  }
  const ClassSchema* schema = schemas().Find(old->cls());
  std::vector<Value> fields = old->fields();
  for (const auto& [attr, value] : values) {
    int field = schema->FieldOf(symbols_.Intern(attr));
    if (field < 0) {
      return Status::InvalidArgument("modify: class '" +
                                     std::string(symbols_.Name(old->cls())) +
                                     "' has no attribute '" + attr + "'");
    }
    fields[static_cast<size_t>(field)] = value;
  }
  // One transaction when batching: the matchers see the modify as a single
  // delta-pair batch instead of a free-standing remove + add.
  if (options_.batched_wm) wm_->Begin();
  Result<WmePtr> wme = wm_->Replace(tag, std::move(fields));
  if (options_.batched_wm) {
    if (wme.ok()) {
      SOREL_RETURN_IF_ERROR(wm_->Commit());
    } else {
      wm_->Rollback();
    }
  }
  SOREL_RETURN_IF_ERROR(wme.status());
  return (*wme)->time_tag();
}

namespace {

// Quotes a symbol if it contains delimiter characters or looks numeric.
// The lexer accepts both |...| and "..." quoted atoms (no escapes), so a
// symbol containing '|' is emitted in double quotes and vice versa. A
// symbol containing both delimiters is unrepresentable in the source
// syntax and cannot round-trip.
std::string QuoteAtom(std::string_view text) {
  bool needs_quote = text.empty();
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0 ||
        std::string_view("()[]{};^<>=|\"").find(c) != std::string_view::npos) {
      needs_quote = true;
    }
  }
  if (!text.empty() &&
      (std::isdigit(static_cast<unsigned char>(text.front())) != 0 ||
       text.front() == '-' || text.front() == '+')) {
    needs_quote = true;
  }
  if (!needs_quote) return std::string(text);
  char delim = text.find('|') != std::string_view::npos ? '"' : '|';
  return delim + std::string(text) + delim;
}

}  // namespace

void Engine::DumpWm(std::ostream& out) const {
  out << "(startup\n";
  for (const WmePtr& wme : wm_->Snapshot()) {
    const ClassSchema* schema = schemas().Find(wme->cls());
    out << "  (make " << symbols_.Name(wme->cls());
    for (int i = 0; i < wme->num_fields(); ++i) {
      const Value& v = wme->field(i);
      if (v.is_nil()) continue;
      out << " ^" << symbols_.Name(schema->attrs()[static_cast<size_t>(i)])
          << " ";
      if (v.is_symbol()) {
        out << QuoteAtom(symbols_.Name(v.as_symbol()));
      } else {
        out << v.ToString(symbols_);
      }
    }
    out << ")\n";
  }
  out << ")\n";
}

Status Engine::ExciseRule(std::string_view name) {
  const CompiledRule* rule = FindRule(name);
  if (rule == nullptr) {
    return Status::NotFound("no rule named '" + std::string(name) + "'");
  }
  SOREL_RETURN_IF_ERROR(matcher_->RemoveRule(rule));
  snodes_.erase(std::string(name));
  std::erase(active_rules_, rule);
  // Bound engines leave rules_ empty — the base keeps the rule alive for
  // the other sessions (and for a later re-bind); only this session's
  // match state is pruned.
  std::erase_if(rules_, [rule](const CompiledRulePtr& r) {
    return r.get() == rule;
  });
  return Status::Ok();
}

SNode* Engine::snode(std::string_view rule_name) {
  auto it = snodes_.find(rule_name);
  return it == snodes_.end() ? nullptr : it->second;
}

const CompiledRule* Engine::FindRule(std::string_view name) const {
  for (const CompiledRule* rule : active_rules_) {
    if (rule->name == name) return rule;
  }
  return nullptr;
}

Status Engine::MatchError() const {
  for (const auto& [name, snode] : snodes_) {
    if (!snode->last_error().ok()) return snode->last_error();
  }
  if (dips_ != nullptr && !dips_->last_error().ok()) {
    return dips_->last_error();
  }
  return Status::Ok();
}

Engine::MatchStats Engine::match_stats() const {
  // A registry snapshot: each field reads the sum of the views registered
  // under its metric name (names a configuration lacks read as zero), so
  // the values are bit-identical to polling the components directly.
  std::map<std::string, uint64_t> c = metrics_.SnapshotCounters();
  auto get = [&c](const char* name) -> uint64_t {
    auto it = c.find(name);
    return it == c.end() ? 0 : it->second;
  };
  MatchStats stats;
  stats.rete.join_attempts = get("rete.join_attempts");
  stats.rete.index_probes = get("rete.index_probes");
  stats.rete.tokens_created = get("rete.tokens_created");
  stats.rete.tokens_deleted = get("rete.tokens_deleted");
  stats.rete.right_activations = get("rete.right_activations");
  stats.rete.batches = get("rete.batches");
  stats.rete.grouped_removals = get("rete.grouped_removals");
  stats.rete.token_pool_hits = get("rete.token_pool_hits");
  stats.rete.parallel_batches = get("rete.parallel_batches");
  stats.rete.replay_tasks = get("rete.replay_tasks");
  stats.rete.intra_splits = get("rete.intra_splits");
  stats.rete.intra_slice_tasks = get("rete.intra_slice_tasks");
  stats.rete.bulk_deletes = get("rete.bulk_deletes");
  stats.rete.arena_slabs = get("rete.arena_slabs");
  stats.select.selects = get("select.selects");
  stats.select.comparisons = get("select.comparisons");
  stats.snode.tokens = get("snode.tokens");
  stats.snode.sends_plus = get("snode.sends_plus");
  stats.snode.sends_minus = get("snode.sends_minus");
  stats.snode.sends_time = get("snode.sends_time");
  stats.snode.sois_created = get("snode.sois_created");
  stats.snode.sois_deleted = get("snode.sois_deleted");
  stats.snode.test_evals = get("snode.test_evals");
  stats.snode.batch_flushes = get("snode.batch_flushes");
  stats.treat.seeded_searches = get("treat.seeded_searches");
  stats.treat.full_searches = get("treat.full_searches");
  stats.treat.batches = get("treat.batches");
  stats.treat.coalesced_researches = get("treat.coalesced_researches");
  stats.treat.grouped_removals = get("treat.grouped_removals");
  stats.treat.intra_splits = get("treat.intra_splits");
  stats.treat.intra_slice_tasks = get("treat.intra_slice_tasks");
  stats.dips.refreshes = get("dips.refreshes");
  stats.dips.batches = get("dips.batches");
  stats.plan.join_attempts = get("plan.join_attempts");
  stats.plan.reorders = get("plan.reorders");
  stats.plan.est_cardinality_error = get("plan.est_cardinality_error");
  stats.plan.index_builds = get("plan.index_builds");
  stats.plan.seeded_searches = get("plan.seeded_searches");
  stats.plan.full_searches = get("plan.full_searches");
  stats.plan.batches = get("plan.batches");
  stats.wm.adds = get("wm.adds");
  stats.wm.removes = get("wm.removes");
  stats.wm.direct_events = get("wm.direct_events");
  stats.wm.batches = get("wm.batches");
  stats.wm.batched_changes = get("wm.batched_changes");
  stats.wm.rollbacks = get("wm.rollbacks");
  stats.wm.changes_rolled_back = get("wm.changes_rolled_back");
  stats.wm.wme_pool_hits = get("wm.wme_pool_hits");
  stats.wm.wme_slabs = get("wm.wme_slabs");
  stats.pool.threads = get("pool.threads");
  stats.pool.tasks = get("pool.tasks");
  stats.pool.batches = get("pool.batches");
  stats.pool.nested_batches = get("pool.nested_batches");
  stats.pool.max_task_depth = get("pool.max_task_depth");
  return stats;
}

void Engine::ResetMatchStats() { metrics_.ResetAll(); }

namespace {

void ProfileSection(std::ostream& out, const char* title,
                    const std::vector<std::pair<std::string,
                                                obs::TimerSnapshot>>& rows) {
  if (rows.empty()) return;
  out << title << "\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-28s %10s %12s %10s %10s\n", "name",
                "count", "total_ms", "mean_us", "~p99_us");
  out << line;
  for (const auto& [name, snap] : rows) {
    std::snprintf(line, sizeof(line),
                  "  %-28s %10llu %12.3f %10.2f %10.2f\n", name.c_str(),
                  static_cast<unsigned long long>(snap.count), snap.TotalMs(),
                  snap.MeanUs(), snap.ApproxP99Us());
    out << line;
  }
}

}  // namespace

void Engine::Profile(std::ostream& out) const {
  std::map<std::string, obs::TimerSnapshot> timers = metrics_.SnapshotTimers();
  out << "--- profile ---\n";
  // Arena / memory-layout gauges are cheap point-in-time reads, so they
  // print even when timing is disabled.
  std::map<std::string, double> gauges = metrics_.SnapshotGauges();
  bool any_bytes = false;
  for (const auto& [name, value] : gauges) {
    if (name.size() < 6 || name.rfind("_bytes") != name.size() - 6) continue;
    if (!any_bytes) {
      out << "memory\n";
      any_bytes = true;
    }
    char line[160];
    std::snprintf(line, sizeof(line), "  %-28s %12.1f KiB\n", name.c_str(),
                  value / 1024.0);
    out << line;
  }
  if (!options_.enable_timers) {
    out << "(timers disabled; construct with EngineOptions::enable_timers)\n";
    return;
  }
  // Phase rows first (match / select / act), then per-rule firing time.
  std::vector<std::pair<std::string, obs::TimerSnapshot>> phases;
  std::vector<std::pair<std::string, obs::TimerSnapshot>> rules;
  for (const auto& [name, snap] : timers) {
    if (name.rfind("phase.", 0) == 0) {
      phases.emplace_back(name, snap);
    } else if (name.rfind("rule.", 0) == 0 && snap.count > 0) {
      rules.emplace_back(name, snap);
    }
  }
  // Largest total first: the rule the run actually spent its time in.
  std::sort(rules.begin(), rules.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  ProfileSection(out, "phases", phases);
  ProfileSection(out, "rules (by total act time)", rules);
}

Result<int> Engine::Run(int max_firings) {
  halted_ = false;
  int fired = 0;
  while (max_firings < 0 || fired < max_firings) {
    // Surface errors the match network had to swallow inside WM-change
    // callbacks (the affected instantiations are unreliable from here on).
    SOREL_RETURN_IF_ERROR(MatchError());
    InstantiationRef* inst;
    {
      obs::ScopedTimer select_scope(select_timer_);
      inst = cs_.Select(options_.strategy);
    }
    if (inst == nullptr) break;
    const CompiledRule& rule = inst->rule();
    // Snapshot before firing: RHS actions may retract (or even delete) the
    // instantiation itself.
    std::vector<Row> rows;
    inst->CollectRows(&rows);
    if (trace_.enabled()) {
      trace_.Emit(obs::TraceEvent("cycle_begin")
                      .Num("cycle", static_cast<uint64_t>(fired)));
      std::string tags;
      for (TimeTag t : inst->RecencyTags()) {
        if (!tags.empty()) tags += ' ';
        tags += std::to_string(t);
      }
      trace_.Emit(obs::TraceEvent("select")
                      .Str("rule", rule.name)
                      .Num("rows", rows.size())
                      .Str("tags", std::move(tags)));
    }
    if (options_.trace_firings) {
      *out_ << "FIRE " << rule.name;
      for (TimeTag t : inst->RecencyTags()) *out_ << " " << t;
      *out_ << " (" << rows.size() << (rows.size() == 1 ? " row)" : " rows)")
            << "\n";
    }
    // Regular instantiations obey classic refraction (drop the entry); SOIs
    // stay, ineligible until the γ-memory changes again (§6).
    cs_.MarkFired(inst, /*remove_entry=*/!rule.has_set);
    if (trace_.enabled()) {
      trace_.Emit(obs::TraceEvent("fire")
                      .Str("rule", rule.name)
                      .Num("rows", rows.size()));
    }
    std::chrono::steady_clock::time_point act_start;
    if (act_timer_ != nullptr) act_start = std::chrono::steady_clock::now();
    SOREL_ASSIGN_OR_RETURN(RhsExecutor::FireResult result,
                           rhs_.Fire(rule, std::move(rows)));
    if (act_timer_ != nullptr) {
      auto ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - act_start)
              .count());
      act_timer_->Record(ns);
      metrics_.GetOrCreateTimer("rule." + rule.name)->Record(ns);
    }
    ++fired;
    ++run_stats_.firings;
    run_stats_.actions += result.actions;
    ++run_stats_.firings_by_rule[rule.name];
    if (trace_.enabled()) {
      trace_.Emit(obs::TraceEvent("cycle_end")
                      .Num("cycle", static_cast<uint64_t>(fired - 1)));
    }
    if (result.halted) {
      halted_ = true;
      break;
    }
  }
  run_stats_.match = match_stats();
  // The final firing (or pre-Run WM changes, when nothing fired) may have
  // corrupted a γ-memory too.
  SOREL_RETURN_IF_ERROR(MatchError());
  return fired;
}

Result<int> Engine::RunParallel(int max_cycles) {
  halted_ = false;
  int cycles = 0;
  while (max_cycles < 0 || cycles < max_cycles) {
    SOREL_RETURN_IF_ERROR(MatchError());
    std::vector<InstantiationRef*> eligible;
    {
      obs::ScopedTimer select_scope(select_timer_);
      eligible = cs_.SortedEligible(options_.strategy);
    }
    if (eligible.empty()) break;
    if (trace_.enabled()) {
      trace_.Emit(obs::TraceEvent("cycle_begin")
                      .Num("cycle", static_cast<uint64_t>(cycles))
                      .Num("eligible", eligible.size()));
    }
    // Greedy batch: support sets must be pairwise disjoint.
    struct Pending {
      const CompiledRule* rule;
      std::vector<Row> rows;
    };
    std::vector<Pending> batch;
    std::unordered_set<TimeTag> claimed;
    for (InstantiationRef* inst : eligible) {
      std::vector<Row> rows;
      inst->CollectRows(&rows);
      bool overlaps = false;
      std::vector<TimeTag> tags;
      for (const Row& row : rows) {
        for (const WmePtr& w : row) {
          if (claimed.count(w->time_tag()) != 0) overlaps = true;
          tags.push_back(w->time_tag());
        }
      }
      if (overlaps) {
        ++parallel_stats_.conflicts;
        continue;
      }
      for (TimeTag t : tags) claimed.insert(t);
      cs_.MarkFired(inst, /*remove_entry=*/!inst->rule().has_set);
      batch.push_back({&inst->rule(), std::move(rows)});
    }
    // Execute the batch inside one cycle-level transaction: all members
    // were snapshotted against the same WM state, disjoint support keeps
    // their effects independent, and the matchers see the cycle's combined
    // effect as a single ChangeBatch at commit. An error aborts the whole
    // cycle (§8.1's transaction semantics).
    if (options_.batched_wm) wm_->Begin();
    for (Pending& pending : batch) {
      size_t num_rows = pending.rows.size();
      if (trace_.enabled()) {
        trace_.Emit(obs::TraceEvent("fire")
                        .Str("rule", pending.rule->name)
                        .Num("rows", num_rows));
      }
      std::chrono::steady_clock::time_point act_start;
      if (act_timer_ != nullptr) act_start = std::chrono::steady_clock::now();
      Result<RhsExecutor::FireResult> result =
          rhs_.Fire(*pending.rule, std::move(pending.rows));
      if (act_timer_ != nullptr) {
        auto ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - act_start)
                .count());
        act_timer_->Record(ns);
        metrics_.GetOrCreateTimer("rule." + pending.rule->name)->Record(ns);
      }
      if (!result.ok()) {
        if (options_.batched_wm) wm_->Rollback();
        return result.status();
      }
      ++run_stats_.firings;
      ++parallel_stats_.firings;
      run_stats_.actions += result->actions;
      ++run_stats_.firings_by_rule[pending.rule->name];
      if (result->halted) halted_ = true;
    }
    if (options_.batched_wm) SOREL_RETURN_IF_ERROR(wm_->Commit());
    if (trace_.enabled()) {
      trace_.Emit(obs::TraceEvent("cycle_end")
                      .Num("cycle", static_cast<uint64_t>(cycles))
                      .Num("batch", batch.size()));
    }
    ++cycles;
    ++parallel_stats_.cycles;
    parallel_stats_.largest_batch =
        std::max(parallel_stats_.largest_batch,
                 static_cast<uint64_t>(batch.size()));
    if (halted_) break;
  }
  run_stats_.match = match_stats();
  SOREL_RETURN_IF_ERROR(MatchError());
  return cycles;
}

}  // namespace sorel
