#include "engine/engine.h"

#include <algorithm>
#include <fstream>
#include <unordered_set>
#include <sstream>
#include <utility>

#include "dips/dips.h"
#include "lang/parser.h"
#include "treat/treat.h"

namespace sorel {

/// Prints working-memory changes (OPS5's `watch 1`-style tracing).
class Engine::WmTracer : public WorkingMemory::Listener {
 public:
  explicit WmTracer(Engine* engine) : engine_(engine) {}
  void OnAdd(const WmePtr& wme) override { Print("==>", wme); }
  void OnRemove(const WmePtr& wme) override { Print("<==", wme); }

 private:
  void Print(const char* arrow, const WmePtr& wme) {
    const ClassSchema* schema = engine_->schemas_.Find(wme->cls());
    *engine_->out_ << arrow << " "
                   << wme->ToString(engine_->symbols_, *schema) << "\n";
  }
  Engine* engine_;
};

Engine::Engine(EngineOptions options)
    : options_(options),
      wm_(std::make_unique<WorkingMemory>(&schemas_, &symbols_)),
      cs_(options_.indexed_conflict_set),
      compiler_(&symbols_, &schemas_),
      rhs_(wm_.get(), &symbols_, &std::cout) {
  rhs_.set_output(out_);
  if (options_.match_threads > 0 || options_.parallel_rhs) {
    pool_ = std::make_unique<ThreadPool>(
        options_.match_threads > 0 ? options_.match_threads : 2);
  }
  // The matchers see the pool only when match_threads asks for parallel
  // propagation — a parallel_rhs-only pool must not flip them onto the
  // parallel batch path.
  ThreadPool* match_pool = options_.match_threads > 0 ? pool_.get() : nullptr;
  if (match_pool != nullptr) {
    options_.rete.pool = match_pool;
    options_.rete.intra_split_min = options_.intra_rule_split_min_tokens;
  }
  if (options_.matcher == MatcherKind::kRete) {
    SinkFactory factory = [this](const CompiledRule& rule)
        -> std::unique_ptr<ReteSink> {
      if (!rule.has_set) return std::make_unique<PNode>(&rule, &cs_);
      auto snode = std::make_unique<SNode>(&rule, &cs_, options_.snode);
      snodes_[rule.name] = snode.get();
      return snode;
    };
    auto rete = std::make_unique<ReteMatcher>(wm_.get(), &cs_,
                                              std::move(factory),
                                              options_.rete);
    rete_ = rete.get();
    matcher_ = std::move(rete);
  } else if (options_.matcher == MatcherKind::kTreat) {
    auto treat = std::make_unique<TreatMatcher>(
        wm_.get(), &cs_, match_pool, options_.intra_rule_split_min_tokens);
    treat_ = treat.get();
    matcher_ = std::move(treat);
  } else {
    auto dips =
        std::make_unique<dips::DipsMatcher>(wm_.get(), &cs_, match_pool);
    dips_ = dips.get();
    matcher_ = std::move(dips);
  }
  rhs_.set_transactional(options_.batched_wm);
  rhs_.set_pool(pool_.get());
  rhs_.set_parallel(options_.parallel_rhs);
  startup_context_.name = "startup";
  if (options_.trace_wm) {
    tracer_ = std::make_unique<WmTracer>(this);
    wm_->AddListener(tracer_.get());
  }
}

Engine::~Engine() {
  if (tracer_ != nullptr) wm_->RemoveListener(tracer_.get());
}

void Engine::set_output(std::ostream* out) {
  out_ = out;
  rhs_.set_output(out);
}

void Engine::set_trace_wm(bool on) {
  options_.trace_wm = on;
  if (on && tracer_ == nullptr) {
    tracer_ = std::make_unique<WmTracer>(this);
    wm_->AddListener(tracer_.get());
  } else if (!on && tracer_ != nullptr) {
    wm_->RemoveListener(tracer_.get());
    tracer_.reset();
  }
}

Status Engine::LoadString(std::string_view source) {
  SOREL_ASSIGN_OR_RETURN(ProgramAst program, Parse(source));
  for (const LiteralizeAst& lit : program.literalizes) {
    SOREL_RETURN_IF_ERROR(compiler_.DeclareLiteralize(lit));
  }
  for (RuleAst& rule_ast : program.rules) {
    if (FindRule(rule_ast.name) != nullptr) {
      return Status::CompileError("duplicate rule name '" + rule_ast.name +
                                  "'");
    }
    SOREL_ASSIGN_OR_RETURN(CompiledRulePtr rule,
                           compiler_.Compile(std::move(rule_ast)));
    SOREL_RETURN_IF_ERROR(matcher_->AddRule(rule.get()));
    rules_.push_back(std::move(rule));
  }
  if (!program.startup.empty()) {
    SOREL_RETURN_IF_ERROR(compiler_.CompileStartup(&program.startup));
    SOREL_ASSIGN_OR_RETURN(
        RhsExecutor::FireResult result,
        rhs_.ExecuteStandalone(startup_context_, program.startup));
    (void)result;
  }
  return Status::Ok();
}

Status Engine::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::InvalidArgument("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadString(buf.str());
}

Result<TimeTag> Engine::MakeWme(
    std::string_view cls,
    const std::vector<std::pair<std::string, Value>>& values) {
  std::vector<std::pair<SymbolId, Value>> resolved;
  resolved.reserve(values.size());
  for (const auto& [attr, value] : values) {
    resolved.emplace_back(symbols_.Intern(attr), value);
  }
  SOREL_ASSIGN_OR_RETURN(WmePtr wme,
                         wm_->Make(symbols_.Intern(cls), resolved));
  return wme->time_tag();
}

Status Engine::RemoveWme(TimeTag tag) { return wm_->Remove(tag); }

Result<TimeTag> Engine::ModifyWme(
    TimeTag tag, const std::vector<std::pair<std::string, Value>>& values) {
  WmePtr old = wm_->Find(tag);
  if (old == nullptr) {
    return Status::NotFound("modify: no live WME with time tag " +
                            std::to_string(tag));
  }
  const ClassSchema* schema = schemas_.Find(old->cls());
  std::vector<Value> fields = old->fields();
  for (const auto& [attr, value] : values) {
    int field = schema->FieldOf(symbols_.Intern(attr));
    if (field < 0) {
      return Status::InvalidArgument("modify: class '" +
                                     std::string(symbols_.Name(old->cls())) +
                                     "' has no attribute '" + attr + "'");
    }
    fields[static_cast<size_t>(field)] = value;
  }
  // One transaction when batching: the matchers see the modify as a single
  // delta-pair batch instead of a free-standing remove + add.
  if (options_.batched_wm) wm_->Begin();
  Result<WmePtr> wme = wm_->Replace(tag, std::move(fields));
  if (options_.batched_wm) {
    if (wme.ok()) {
      SOREL_RETURN_IF_ERROR(wm_->Commit());
    } else {
      wm_->Rollback();
    }
  }
  SOREL_RETURN_IF_ERROR(wme.status());
  return (*wme)->time_tag();
}

namespace {

// Quotes a symbol if it contains delimiter characters or looks numeric.
// The lexer accepts both |...| and "..." quoted atoms (no escapes), so a
// symbol containing '|' is emitted in double quotes and vice versa. A
// symbol containing both delimiters is unrepresentable in the source
// syntax and cannot round-trip.
std::string QuoteAtom(std::string_view text) {
  bool needs_quote = text.empty();
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0 ||
        std::string_view("()[]{};^<>=|\"").find(c) != std::string_view::npos) {
      needs_quote = true;
    }
  }
  if (!text.empty() &&
      (std::isdigit(static_cast<unsigned char>(text.front())) != 0 ||
       text.front() == '-' || text.front() == '+')) {
    needs_quote = true;
  }
  if (!needs_quote) return std::string(text);
  char delim = text.find('|') != std::string_view::npos ? '"' : '|';
  return delim + std::string(text) + delim;
}

}  // namespace

void Engine::DumpWm(std::ostream& out) const {
  out << "(startup\n";
  for (const WmePtr& wme : wm_->Snapshot()) {
    const ClassSchema* schema = schemas_.Find(wme->cls());
    out << "  (make " << symbols_.Name(wme->cls());
    for (int i = 0; i < wme->num_fields(); ++i) {
      const Value& v = wme->field(i);
      if (v.is_nil()) continue;
      out << " ^" << symbols_.Name(schema->attrs()[static_cast<size_t>(i)])
          << " ";
      if (v.is_symbol()) {
        out << QuoteAtom(symbols_.Name(v.as_symbol()));
      } else {
        out << v.ToString(symbols_);
      }
    }
    out << ")\n";
  }
  out << ")\n";
}

Status Engine::ExciseRule(std::string_view name) {
  const CompiledRule* rule = FindRule(name);
  if (rule == nullptr) {
    return Status::NotFound("no rule named '" + std::string(name) + "'");
  }
  SOREL_RETURN_IF_ERROR(matcher_->RemoveRule(rule));
  snodes_.erase(std::string(name));
  std::erase_if(rules_, [rule](const CompiledRulePtr& r) {
    return r.get() == rule;
  });
  return Status::Ok();
}

SNode* Engine::snode(std::string_view rule_name) {
  auto it = snodes_.find(rule_name);
  return it == snodes_.end() ? nullptr : it->second;
}

const CompiledRule* Engine::FindRule(std::string_view name) const {
  for (const CompiledRulePtr& rule : rules_) {
    if (rule->name == name) return rule.get();
  }
  return nullptr;
}

Status Engine::MatchError() const {
  for (const auto& [name, snode] : snodes_) {
    if (!snode->last_error().ok()) return snode->last_error();
  }
  if (dips_ != nullptr && !dips_->last_error().ok()) {
    return dips_->last_error();
  }
  return Status::Ok();
}

Engine::MatchStats Engine::match_stats() const {
  MatchStats stats;
  if (rete_ != nullptr) stats.rete = rete_->stats();
  stats.select = cs_.stats();
  for (const auto& [name, snode] : snodes_) {
    const SNode::Stats& s = snode->stats();
    stats.snode.tokens += s.tokens;
    stats.snode.sends_plus += s.sends_plus;
    stats.snode.sends_minus += s.sends_minus;
    stats.snode.sends_time += s.sends_time;
    stats.snode.sois_created += s.sois_created;
    stats.snode.sois_deleted += s.sois_deleted;
    stats.snode.test_evals += s.test_evals;
    stats.snode.batch_flushes += s.batch_flushes;
  }
  if (treat_ != nullptr) stats.treat = treat_->stats();
  if (dips_ != nullptr) stats.dips = dips_->stats();
  stats.wm = wm_->stats();
  if (pool_ != nullptr) stats.pool = pool_->stats();
  return stats;
}

void Engine::ResetMatchStats() {
  if (rete_ != nullptr) rete_->ResetStats();
  cs_.ResetStats();
  for (const auto& [name, snode] : snodes_) snode->ResetStats();
  if (treat_ != nullptr) treat_->ResetStats();
  if (dips_ != nullptr) dips_->ResetStats();
  wm_->ResetStats();
  if (pool_ != nullptr) pool_->ResetStats();
  rhs_.ResetStats();
  run_stats_ = {};
  parallel_stats_ = {};
}

Result<int> Engine::Run(int max_firings) {
  halted_ = false;
  int fired = 0;
  while (max_firings < 0 || fired < max_firings) {
    // Surface errors the match network had to swallow inside WM-change
    // callbacks (the affected instantiations are unreliable from here on).
    SOREL_RETURN_IF_ERROR(MatchError());
    InstantiationRef* inst = cs_.Select(options_.strategy);
    if (inst == nullptr) break;
    const CompiledRule& rule = inst->rule();
    // Snapshot before firing: RHS actions may retract (or even delete) the
    // instantiation itself.
    std::vector<Row> rows;
    inst->CollectRows(&rows);
    if (options_.trace_firings) {
      *out_ << "FIRE " << rule.name;
      for (TimeTag t : inst->RecencyTags()) *out_ << " " << t;
      *out_ << " (" << rows.size() << (rows.size() == 1 ? " row)" : " rows)")
            << "\n";
    }
    // Regular instantiations obey classic refraction (drop the entry); SOIs
    // stay, ineligible until the γ-memory changes again (§6).
    cs_.MarkFired(inst, /*remove_entry=*/!rule.has_set);
    SOREL_ASSIGN_OR_RETURN(RhsExecutor::FireResult result,
                           rhs_.Fire(rule, std::move(rows)));
    ++fired;
    ++run_stats_.firings;
    run_stats_.actions += result.actions;
    ++run_stats_.firings_by_rule[rule.name];
    if (result.halted) {
      halted_ = true;
      break;
    }
  }
  run_stats_.match = match_stats();
  // The final firing (or pre-Run WM changes, when nothing fired) may have
  // corrupted a γ-memory too.
  SOREL_RETURN_IF_ERROR(MatchError());
  return fired;
}

Result<int> Engine::RunParallel(int max_cycles) {
  halted_ = false;
  int cycles = 0;
  while (max_cycles < 0 || cycles < max_cycles) {
    SOREL_RETURN_IF_ERROR(MatchError());
    std::vector<InstantiationRef*> eligible =
        cs_.SortedEligible(options_.strategy);
    if (eligible.empty()) break;
    // Greedy batch: support sets must be pairwise disjoint.
    struct Pending {
      const CompiledRule* rule;
      std::vector<Row> rows;
    };
    std::vector<Pending> batch;
    std::unordered_set<TimeTag> claimed;
    for (InstantiationRef* inst : eligible) {
      std::vector<Row> rows;
      inst->CollectRows(&rows);
      bool overlaps = false;
      std::vector<TimeTag> tags;
      for (const Row& row : rows) {
        for (const WmePtr& w : row) {
          if (claimed.count(w->time_tag()) != 0) overlaps = true;
          tags.push_back(w->time_tag());
        }
      }
      if (overlaps) {
        ++parallel_stats_.conflicts;
        continue;
      }
      for (TimeTag t : tags) claimed.insert(t);
      cs_.MarkFired(inst, /*remove_entry=*/!inst->rule().has_set);
      batch.push_back({&inst->rule(), std::move(rows)});
    }
    // Execute the batch inside one cycle-level transaction: all members
    // were snapshotted against the same WM state, disjoint support keeps
    // their effects independent, and the matchers see the cycle's combined
    // effect as a single ChangeBatch at commit. An error aborts the whole
    // cycle (§8.1's transaction semantics).
    if (options_.batched_wm) wm_->Begin();
    for (Pending& pending : batch) {
      Result<RhsExecutor::FireResult> result =
          rhs_.Fire(*pending.rule, std::move(pending.rows));
      if (!result.ok()) {
        if (options_.batched_wm) wm_->Rollback();
        return result.status();
      }
      ++run_stats_.firings;
      ++parallel_stats_.firings;
      run_stats_.actions += result->actions;
      ++run_stats_.firings_by_rule[pending.rule->name];
      if (result->halted) halted_ = true;
    }
    if (options_.batched_wm) SOREL_RETURN_IF_ERROR(wm_->Commit());
    ++cycles;
    ++parallel_stats_.cycles;
    parallel_stats_.largest_batch =
        std::max(parallel_stats_.largest_batch,
                 static_cast<uint64_t>(batch.size()));
    if (halted_) break;
  }
  run_stats_.match = match_stats();
  SOREL_RETURN_IF_ERROR(MatchError());
  return cycles;
}

}  // namespace sorel
