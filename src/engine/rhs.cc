#include "engine/rhs.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/thread_pool.h"
#include "core/aggregate.h"
#include "lang/eval.h"

namespace sorel {

/// Mutable execution state of one firing.
class RhsExecutor::ExecState {
 public:
  ExecState(const CompiledRule& rule, std::vector<Row> rows)
      : rule_(&rule), rows_(std::move(rows)) {
    selection_.resize(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i) selection_[i] = i;
  }

  const CompiledRule& rule() const { return *rule_; }
  const std::vector<Row>& rows() const { return rows_; }
  const std::vector<size_t>& selection() const { return selection_; }
  std::vector<size_t>* mutable_selection() { return &selection_; }

  std::unordered_map<std::string, Value>& locals() { return locals_; }
  std::unordered_set<std::string>& fixed_vars() { return fixed_vars_; }
  std::unordered_set<int>& fixed_positions() { return fixed_positions_; }

  bool halted = false;

  /// Scalar resolution per §4.1/§6: locals first; then scalar PVs; then
  /// set-oriented PVs that are fixed by an enclosing foreach.
  Result<Value> ResolveVar(const std::string& name) const {
    return ResolveVar(name, selection_);
  }

  /// Same, against an explicit selection: parallel RHS evaluates each
  /// foreach member under that member's sub-selection without mutating the
  /// shared state.
  Result<Value> ResolveVar(const std::string& name,
                           const std::vector<size_t>& selection) const {
    auto local = locals_.find(name);
    if (local != locals_.end()) return local->second;
    const VarInfo* info = rule_->FindVar(name);
    if (info == nullptr) {
      return Status::RuntimeError("unbound variable <" + name + ">");
    }
    if (info->kind == VarInfo::Kind::kElement) {
      return Status::RuntimeError("element variable <" + name +
                                  "> used as a value");
    }
    if (info->set_oriented && fixed_vars_.count(name) == 0) {
      bool fixed = false;
      for (const auto& [pos, field] : info->occurrences) {
        if (fixed_positions_.count(pos) != 0) fixed = true;
      }
      if (!fixed) {
        return Status::RuntimeError(
            "set-oriented variable <" + name +
            "> read outside foreach/aggregate");
      }
    }
    if (selection.empty()) {
      return Status::RuntimeError("variable <" + name +
                                  "> read with empty selection");
    }
    const auto& [pos, field] = info->occurrences.front();
    return rows_[selection.front()][static_cast<size_t>(pos)]->field(field);
  }

  /// Aggregates on the RHS are computed over the current selection with
  /// the same distinct-domain semantics as the S-node.
  Result<Value> EvalAggregate(const Expr& agg) const {
    return EvalAggregate(agg, selection_);
  }

  Result<Value> EvalAggregate(const Expr& agg,
                              const std::vector<size_t>& selection) const {
    const VarInfo* info = rule_->FindVar(agg.var);
    if (info == nullptr) {
      return Status::RuntimeError("unbound variable <" + agg.var + ">");
    }
    AggState state(agg.agg_op);
    if (info->kind == VarInfo::Kind::kElement) {
      for (size_t i : selection) {
        state.Insert(Value::Int(
            rows_[i][static_cast<size_t>(info->elem_token_pos)]->time_tag()));
      }
    } else {
      if (info->occurrences.empty()) {
        return Status::RuntimeError("variable <" + agg.var +
                                    "> has no binding site");
      }
      const auto& [pos, field] = info->occurrences.front();
      for (size_t i : selection) {
        state.Insert(rows_[i][static_cast<size_t>(pos)]->field(field));
      }
    }
    return state.Current();
  }

  /// The single WME an element variable denotes under the current scope.
  Result<WmePtr> ResolveElemWme(const std::string& name) const {
    return ResolveElemWme(name, selection_);
  }

  Result<WmePtr> ResolveElemWme(const std::string& name,
                                const std::vector<size_t>& selection) const {
    const VarInfo* info = rule_->FindVar(name);
    if (info == nullptr || info->kind != VarInfo::Kind::kElement) {
      return Status::RuntimeError("<" + name + "> is not an element variable");
    }
    if (info->set_oriented &&
        fixed_positions_.count(info->elem_token_pos) == 0) {
      return Status::RuntimeError("set-oriented element variable <" + name +
                                  "> needs set-modify/set-remove or foreach");
    }
    if (selection.empty()) {
      return Status::RuntimeError("element variable <" + name +
                                  "> read with empty selection");
    }
    return rows_[selection.front()]
                [static_cast<size_t>(info->elem_token_pos)];
  }

 private:
  const CompiledRule* rule_;
  std::vector<Row> rows_;
  std::vector<size_t> selection_;
  std::unordered_map<std::string, Value> locals_;
  std::unordered_set<std::string> fixed_vars_;
  std::unordered_set<int> fixed_positions_;
};

/// Adapts ExecState to the expression evaluator. The two-argument form
/// pins an explicit selection (a foreach member's sub-selection) so
/// parallel member evaluations need not mutate the shared state.
class RhsExecutor::RhsEvalContext : public EvalContext {
 public:
  explicit RhsEvalContext(const ExecState& state)
      : state_(&state), selection_(&state.selection()) {}
  RhsEvalContext(const ExecState& state,
                 const std::vector<size_t>* selection)
      : state_(&state), selection_(selection) {}
  Result<Value> ResolveVar(const std::string& name) const override {
    return state_->ResolveVar(name, *selection_);
  }
  Result<Value> EvalAggregate(const Expr& agg) const override {
    return state_->EvalAggregate(agg, *selection_);
  }

 private:
  const ExecState* state_;
  const std::vector<size_t>* selection_;
};

/// Pre-evaluated effects of one make/modify/remove for one member. The
/// statuses are recorded separately so the serial apply loop reproduces
/// the sequential check order: target resolution errors surface before the
/// liveness check, expression/attribute errors only after it.
struct RhsExecutor::ActionEval {
  Status target_status = Status::Ok();  // kModify/kRemove target resolution
  WmePtr target;
  Status eval_status = Status::Ok();  // first expression/attribute error
  std::vector<std::pair<SymbolId, Value>> make_values;  // kMake assigns
  std::vector<std::pair<int, Value>> mod_fields;  // kModify: field + value
};

Status RhsExecutor::RunInTransaction(const std::function<Status()>& body) {
  if (!transactional_) return body();
  wm_->Begin();
  Status s = body();
  if (s.ok()) return wm_->Commit();
  wm_->Rollback();
  return s;
}

RhsExecutor::RhsExecutor(WorkingMemory* wm, SymbolTable* symbols,
                         std::ostream* out, obs::MetricRegistry* metrics,
                         obs::Tracer* tracer)
    : wm_(wm), symbols_(symbols), out_(out), metrics_(metrics),
      tracer_(tracer) {
  if (metrics_ == nullptr) return;
  metrics_->RegisterCounter(this, "rhs.firings",
                            [this] { return stats_.firings; });
  metrics_->RegisterCounter(this, "rhs.actions",
                            [this] { return stats_.actions; });
  metrics_->RegisterCounter(this, "rhs.wmes_made",
                            [this] { return stats_.wmes_made; });
  metrics_->RegisterCounter(this, "rhs.wmes_removed",
                            [this] { return stats_.wmes_removed; });
  metrics_->RegisterCounter(this, "rhs.skipped_dead_targets",
                            [this] { return stats_.skipped_dead_targets; });
  metrics_->RegisterCounter(this, "rhs.parallel_forks",
                            [this] { return stats_.parallel_forks; });
  metrics_->RegisterCounter(this, "rhs.parallel_member_tasks",
                            [this] { return stats_.parallel_member_tasks; });
  metrics_->RegisterReset(this, [this] { ResetStats(); });
}

RhsExecutor::~RhsExecutor() {
  if (metrics_ != nullptr) metrics_->Unregister(this);
}

Result<RhsExecutor::FireResult> RhsExecutor::Fire(const CompiledRule& rule,
                                                  std::vector<Row> rows) {
  size_t num_rows = rows.size();
  ExecState state(rule, std::move(rows));
  uint64_t actions_before = stats_.actions;
  // The whole firing is one transaction: its changes reach the matchers as
  // a single ChangeBatch, and an error anywhere undoes all of them.
  SOREL_RETURN_IF_ERROR(
      RunInTransaction([&] { return ExecuteList(rule.ast.actions, &state); }));
  ++stats_.firings;
  FireResult result;
  result.halted = state.halted;
  result.actions = stats_.actions - actions_before;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Emit(obs::TraceEvent("rhs_apply")
                      .Str("rule", rule.name)
                      .Num("rows", num_rows)
                      .Num("actions", result.actions));
  }
  return result;
}

Result<RhsExecutor::FireResult> RhsExecutor::ExecuteStandalone(
    const CompiledRule& context, const std::vector<ActionPtr>& actions) {
  ExecState state(context, {});
  uint64_t actions_before = stats_.actions;
  SOREL_RETURN_IF_ERROR(
      RunInTransaction([&] { return ExecuteList(actions, &state); }));
  FireResult result;
  result.halted = state.halted;
  result.actions = stats_.actions - actions_before;
  return result;
}

Status RhsExecutor::ExecuteList(const std::vector<ActionPtr>& actions,
                                ExecState* state) {
  for (const ActionPtr& action : actions) {
    if (state->halted) return Status::Ok();
    SOREL_RETURN_IF_ERROR(Execute(*action, state));
  }
  return Status::Ok();
}

Status RhsExecutor::Execute(const Action& action, ExecState* state) {
  switch (action.kind) {
    // WM-mutating actions each get a nested sub-transaction: a multi-WME
    // action (set-modify over N members, or a modify whose expression
    // errors after the remove half) is all-or-nothing on its own.
    case Action::Kind::kMake:
      ++stats_.actions;
      return RunInTransaction([&] { return DoMake(action, state); });
    case Action::Kind::kModify:
    case Action::Kind::kRemove:
      ++stats_.actions;
      return RunInTransaction(
          [&] { return DoModifyOrRemove(action, state); });
    case Action::Kind::kSetModify:
    case Action::Kind::kSetRemove:
      return RunInTransaction(
          [&] { return DoSetModifyOrRemove(action, state); });
    case Action::Kind::kWrite:
      ++stats_.actions;
      return DoWrite(action, state);
    case Action::Kind::kBind: {
      ++stats_.actions;
      RhsEvalContext ctx(*state);
      SOREL_ASSIGN_OR_RETURN(Value v, EvalExpr(*action.expr, ctx));
      state->locals()[action.var] = v;
      return Status::Ok();
    }
    case Action::Kind::kForeach:
      return DoForeach(action, state);
    case Action::Kind::kIf: {
      RhsEvalContext ctx(*state);
      SOREL_ASSIGN_OR_RETURN(Value cond, EvalExpr(*action.expr, ctx));
      return ExecuteList(cond.IsTruthy() ? action.body : action.else_body,
                         state);
    }
    case Action::Kind::kHalt:
      ++stats_.actions;
      state->halted = true;
      return Status::Ok();
  }
  return Status::Ok();
}

Status RhsExecutor::DoMake(const Action& action, ExecState* state) {
  SymbolId cls = symbols_->Intern(action.cls);
  std::vector<std::pair<SymbolId, Value>> values;
  values.reserve(action.assigns.size());
  RhsEvalContext ctx(*state);
  for (const auto& [attr, expr] : action.assigns) {
    SOREL_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, ctx));
    values.emplace_back(symbols_->Intern(attr), v);
  }
  SOREL_ASSIGN_OR_RETURN(WmePtr wme, wm_->Make(cls, values));
  (void)wme;
  ++stats_.wmes_made;
  return Status::Ok();
}

Status RhsExecutor::RemoveIfLive(TimeTag tag) {
  // Lenient removal: the snapshot may reference WMEs already removed
  // earlier in this same firing (§8.1 notes how tuple-oriented systems
  // suffer from instantiations invalidating each other; set-oriented RHS
  // actions are defined over the snapshot instead).
  if (wm_->Find(tag) == nullptr) {
    ++stats_.skipped_dead_targets;
    return Status::Ok();
  }
  SOREL_RETURN_IF_ERROR(wm_->Remove(tag));
  ++stats_.wmes_removed;
  return Status::Ok();
}

Status RhsExecutor::ModifyWme(const Wme& old, const Action& action,
                              ExecState* state) {
  if (wm_->Find(old.time_tag()) == nullptr) {
    ++stats_.skipped_dead_targets;
    return Status::Ok();
  }
  std::vector<Value> fields = old.fields();
  RhsEvalContext ctx(*state);
  const ClassSchema* schema = wm_->schemas().Find(old.cls());
  for (const auto& [attr, expr] : action.assigns) {
    SOREL_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, ctx));
    int field = schema->FieldOf(symbols_->Intern(attr));
    if (field < 0) {
      return Status::RuntimeError("modify: unknown attribute '" + attr + "'");
    }
    fields[static_cast<size_t>(field)] = v;
  }
  // Replace stages the remove/re-make as a linked delta pair (one modify,
  // not two unrelated events, when inside a transaction).
  SOREL_ASSIGN_OR_RETURN(WmePtr wme,
                         wm_->Replace(old.time_tag(), std::move(fields)));
  (void)wme;
  ++stats_.wmes_removed;
  ++stats_.wmes_made;
  return Status::Ok();
}

Status RhsExecutor::DoModifyOrRemove(const Action& action, ExecState* state) {
  WmePtr target;
  if (action.var.empty() && action.remove_ordinal > 0) {
    // (remove N): the WME matching the N-th CE.
    int ce = action.remove_ordinal - 1;
    const CompiledCondition& cond =
        state->rule().conditions[static_cast<size_t>(ce)];
    if (state->selection().empty()) {
      return Status::RuntimeError("remove: empty selection");
    }
    target = state->rows()[state->selection().front()]
                          [static_cast<size_t>(cond.token_pos)];
  } else {
    SOREL_ASSIGN_OR_RETURN(target, state->ResolveElemWme(action.var));
  }
  if (action.kind == Action::Kind::kRemove) {
    return RemoveIfLive(target->time_tag());
  }
  return ModifyWme(*target, action, state);
}

Status RhsExecutor::DoSetModifyOrRemove(const Action& action,
                                        ExecState* state) {
  const VarInfo* info = state->rule().FindVar(action.var);
  if (info == nullptr || info->kind != VarInfo::Kind::kElement) {
    return Status::RuntimeError("set-modify/set-remove target <" +
                                action.var + "> is not an element variable");
  }
  // Distinct WMEs at the CE's position across the current selection, in
  // selection (conflict-set) order.
  std::vector<WmePtr> targets;
  std::unordered_set<TimeTag> seen;
  for (size_t i : state->selection()) {
    const WmePtr& w =
        state->rows()[i][static_cast<size_t>(info->elem_token_pos)];
    if (seen.insert(w->time_tag()).second) targets.push_back(w);
  }
  if (action.kind == Action::Kind::kSetModify &&
      ShouldParallelize(targets.size())) {
    return DoSetModifyParallel(action, state, targets);
  }
  for (const WmePtr& w : targets) {
    ++stats_.actions;
    if (action.kind == Action::Kind::kSetRemove) {
      SOREL_RETURN_IF_ERROR(RemoveIfLive(w->time_tag()));
    } else {
      SOREL_RETURN_IF_ERROR(ModifyWme(*w, action, state));
    }
  }
  return Status::Ok();
}

bool RhsExecutor::BodyIsParallelizable(const std::vector<ActionPtr>& body) {
  if (body.empty()) return false;
  for (const ActionPtr& a : body) {
    switch (a->kind) {
      case Action::Kind::kMake:
      case Action::Kind::kModify:
      case Action::Kind::kRemove:
        continue;
      default:
        // bind/write/halt/if/foreach/set-* bodies carry order-dependent or
        // output side effects; leave them on the sequential path.
        return false;
    }
  }
  return true;
}

void RhsExecutor::EvaluateModifyAssigns(const Action& action,
                                        const ExecState& state,
                                        const std::vector<size_t>& selection,
                                        ActionEval* out) const {
  // Sequential ModifyWme interleaves per assign: expression first, then the
  // attribute lookup — reproduce that order so the recorded first error is
  // the one the sequential path would surface.
  const ClassSchema* schema = wm_->schemas().Find(out->target->cls());
  RhsEvalContext ctx(state, &selection);
  out->mod_fields.reserve(action.assigns.size());
  for (const auto& [attr, expr] : action.assigns) {
    Result<Value> v = EvalExpr(*expr, ctx);
    if (!v.ok()) {
      out->eval_status = v.status();
      return;
    }
    int field = schema->FieldOf(symbols_->Find(attr));
    if (field < 0) {
      out->eval_status =
          Status::RuntimeError("modify: unknown attribute '" + attr + "'");
      return;
    }
    out->mod_fields.emplace_back(field, *v);
  }
}

void RhsExecutor::EvaluateBodyAction(const Action& action,
                                     const ExecState& state,
                                     const std::vector<size_t>& selection,
                                     ActionEval* out) const {
  RhsEvalContext ctx(state, &selection);
  if (action.kind == Action::Kind::kMake) {
    out->make_values.reserve(action.assigns.size());
    for (const auto& [attr, expr] : action.assigns) {
      Result<Value> v = EvalExpr(*expr, ctx);
      if (!v.ok()) {
        out->eval_status = v.status();
        return;
      }
      out->make_values.emplace_back(symbols_->Find(attr), *v);
    }
    return;
  }
  // kModify / kRemove: resolve the target exactly as DoModifyOrRemove.
  if (action.var.empty() && action.remove_ordinal > 0) {
    int ce = action.remove_ordinal - 1;
    const CompiledCondition& cond =
        state.rule().conditions[static_cast<size_t>(ce)];
    if (selection.empty()) {
      out->target_status = Status::RuntimeError("remove: empty selection");
      return;
    }
    out->target = state.rows()[selection.front()]
                              [static_cast<size_t>(cond.token_pos)];
  } else {
    Result<WmePtr> target = state.ResolveElemWme(action.var, selection);
    if (!target.ok()) {
      out->target_status = target.status();
      return;
    }
    out->target = *target;
  }
  if (action.kind == Action::Kind::kModify) {
    EvaluateModifyAssigns(action, state, selection, out);
  }
}

Status RhsExecutor::ApplyBodyAction(const Action& action,
                                    const ActionEval& eval) {
  ++stats_.actions;
  return RunInTransaction([&]() -> Status {
    if (action.kind == Action::Kind::kMake) {
      SOREL_RETURN_IF_ERROR(eval.eval_status);
      SOREL_ASSIGN_OR_RETURN(
          WmePtr wme, wm_->Make(symbols_->Find(action.cls), eval.make_values));
      (void)wme;
      ++stats_.wmes_made;
      return Status::Ok();
    }
    SOREL_RETURN_IF_ERROR(eval.target_status);
    if (action.kind == Action::Kind::kRemove) {
      return RemoveIfLive(eval.target->time_tag());
    }
    // Modify: liveness before the recorded evaluation error — a dead target
    // skips silently, exactly as the sequential path (which never evaluates
    // a dead member's expressions at all).
    if (wm_->Find(eval.target->time_tag()) == nullptr) {
      ++stats_.skipped_dead_targets;
      return Status::Ok();
    }
    SOREL_RETURN_IF_ERROR(eval.eval_status);
    std::vector<Value> fields = eval.target->fields();
    for (const auto& [field, v] : eval.mod_fields) {
      fields[static_cast<size_t>(field)] = v;
    }
    SOREL_ASSIGN_OR_RETURN(
        WmePtr wme, wm_->Replace(eval.target->time_tag(), std::move(fields)));
    (void)wme;
    ++stats_.wmes_removed;
    ++stats_.wmes_made;
    return Status::Ok();
  });
}

Status RhsExecutor::DoSetModifyParallel(const Action& action,
                                        ExecState* state,
                                        const std::vector<WmePtr>& targets) {
  // Pre-intern what the member tasks will look up (Intern mutates the
  // symbol table; workers use the const Find).
  for (const auto& [attr, expr] : action.assigns) symbols_->Intern(attr);
  // A set-modify's evaluation context does not vary by member (the
  // selection is the whole set), but the sequential path still evaluates
  // per member — replicate that per-member evaluation, just on the pool.
  std::vector<ActionEval> evals(targets.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(targets.size());
  const ExecState& st = *state;
  for (size_t m = 0; m < targets.size(); ++m) {
    evals[m].target = targets[m];
    tasks.push_back([this, &action, &st, &evals, m] {
      EvaluateModifyAssigns(action, st, st.selection(), &evals[m]);
    });
  }
  ++stats_.parallel_forks;
  stats_.parallel_member_tasks += tasks.size();
  pool_->RunAll(std::move(tasks));
  // Serial apply in member order — the sequential loop, minus the already
  // finished evaluations.
  for (size_t m = 0; m < targets.size(); ++m) {
    ++stats_.actions;
    if (wm_->Find(targets[m]->time_tag()) == nullptr) {
      ++stats_.skipped_dead_targets;
      continue;
    }
    SOREL_RETURN_IF_ERROR(evals[m].eval_status);
    std::vector<Value> fields = targets[m]->fields();
    for (const auto& [field, v] : evals[m].mod_fields) {
      fields[static_cast<size_t>(field)] = v;
    }
    SOREL_ASSIGN_OR_RETURN(
        WmePtr wme, wm_->Replace(targets[m]->time_tag(), std::move(fields)));
    (void)wme;
    ++stats_.wmes_removed;
    ++stats_.wmes_made;
  }
  return Status::Ok();
}

Status RhsExecutor::ForeachMembersParallel(
    const Action& action, ExecState* state,
    const std::vector<std::vector<size_t>>& subs) {
  for (const ActionPtr& a : action.body) {
    if (a->kind == Action::Kind::kMake) symbols_->Intern(a->cls);
    for (const auto& [attr, expr] : a->assigns) symbols_->Intern(attr);
  }
  std::vector<std::vector<ActionEval>> evals(subs.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(subs.size());
  const ExecState& st = *state;
  for (size_t m = 0; m < subs.size(); ++m) {
    evals[m].resize(action.body.size());
    tasks.push_back([this, &action, &st, &subs, &evals, m] {
      for (size_t a = 0; a < action.body.size(); ++a) {
        EvaluateBodyAction(*action.body[a], st, subs[m], &evals[m][a]);
      }
    });
  }
  ++stats_.parallel_forks;
  stats_.parallel_member_tasks += tasks.size();
  pool_->RunAll(std::move(tasks));
  for (size_t m = 0; m < subs.size(); ++m) {
    for (size_t a = 0; a < action.body.size(); ++a) {
      SOREL_RETURN_IF_ERROR(ApplyBodyAction(*action.body[a], evals[m][a]));
    }
  }
  return Status::Ok();
}

Status RhsExecutor::DoWrite(const Action& action, ExecState* state) {
  RhsEvalContext ctx(*state);
  for (const ExprPtr& arg : action.write_args) {
    if (arg->kind == Expr::Kind::kCrlf) {
      *out_ << "\n";
      at_line_start_ = true;
      continue;
    }
    SOREL_ASSIGN_OR_RETURN(Value v, EvalExpr(*arg, ctx));
    if (!at_line_start_) *out_ << " ";
    *out_ << v.ToString(*symbols_);
    at_line_start_ = false;
  }
  return Status::Ok();
}

Status RhsExecutor::DoForeach(const Action& action, ExecState* state) {
  const VarInfo* info = state->rule().FindVar(action.var);
  if (info == nullptr) {
    return Status::RuntimeError("foreach over unbound variable <" +
                                action.var + ">");
  }
  std::vector<size_t> saved_selection = state->selection();
  bool var_was_fixed = state->fixed_vars().count(action.var) != 0;
  state->fixed_vars().insert(action.var);
  bool pos_was_fixed = false;
  int elem_pos = -1;
  if (info->kind == VarInfo::Kind::kElement) {
    elem_pos = info->elem_token_pos;
    pos_was_fixed = state->fixed_positions().count(elem_pos) != 0;
    state->fixed_positions().insert(elem_pos);
  }

  // Per-member sub-selections, in iteration order.
  std::vector<std::vector<size_t>> subs;
  if (info->kind == VarInfo::Kind::kElement) {
    // Iterate over distinct WMEs ("imagine iterating over distinct
    // time-tags", §6.2).
    std::vector<WmePtr> order;
    std::unordered_set<TimeTag> seen;
    for (size_t i : saved_selection) {
      const WmePtr& w =
          state->rows()[i][static_cast<size_t>(elem_pos)];
      if (seen.insert(w->time_tag()).second) order.push_back(w);
    }
    if (action.order == Action::Order::kAscending) {
      std::sort(order.begin(), order.end(),
                [](const WmePtr& a, const WmePtr& b) {
                  return a->time_tag() < b->time_tag();
                });
    } else if (action.order == Action::Order::kDescending) {
      std::sort(order.begin(), order.end(),
                [](const WmePtr& a, const WmePtr& b) {
                  return a->time_tag() > b->time_tag();
                });
    }
    for (const WmePtr& w : order) {
      std::vector<size_t> sub;
      for (size_t i : saved_selection) {
        if (state->rows()[i][static_cast<size_t>(elem_pos)]->time_tag() ==
            w->time_tag()) {
          sub.push_back(i);
        }
      }
      subs.push_back(std::move(sub));
    }
  } else {
    // Iterate over the distinct values of the PV's domain (§6.1). Default
    // order: first appearance in conflict-set (recency) order.
    const auto& [pos, field] = info->occurrences.front();
    std::vector<Value> order;
    for (size_t i : saved_selection) {
      const Value& v = state->rows()[i][static_cast<size_t>(pos)]->field(field);
      if (std::find(order.begin(), order.end(), v) == order.end()) {
        order.push_back(v);
      }
    }
    if (action.order == Action::Order::kAscending) {
      std::sort(order.begin(), order.end(), ValueNameLess(*symbols_));
    } else if (action.order == Action::Order::kDescending) {
      ValueNameLess less(*symbols_);
      std::sort(order.begin(), order.end(),
                [&less](const Value& a, const Value& b) { return less(b, a); });
    }
    for (const Value& v : order) {
      std::vector<size_t> sub;
      for (size_t i : saved_selection) {
        if (state->rows()[i][static_cast<size_t>(pos)]->field(field) == v) {
          sub.push_back(i);
        }
      }
      subs.push_back(std::move(sub));
    }
  }

  Status status = Status::Ok();
  if (BodyIsParallelizable(action.body) && ShouldParallelize(subs.size())) {
    status = ForeachMembersParallel(action, state, subs);
  } else {
    for (std::vector<size_t>& sub : subs) {
      *state->mutable_selection() = std::move(sub);
      status = ExecuteList(action.body, state);
      if (!status.ok() || state->halted) break;
    }
  }

  *state->mutable_selection() = std::move(saved_selection);
  if (!var_was_fixed) state->fixed_vars().erase(action.var);
  if (elem_pos >= 0 && !pos_was_fixed) state->fixed_positions().erase(elem_pos);
  return status;
}

}  // namespace sorel
