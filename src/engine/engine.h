#ifndef SOREL_ENGINE_ENGINE_H_
#define SOREL_ENGINE_ENGINE_H_

#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "base/symbol_table.h"
#include "base/thread_pool.h"
#include "base/value.h"
#include "core/snode.h"
#include "dips/dips.h"
#include "engine/rhs.h"
#include "lang/compiled_rule.h"
#include "lang/compiler.h"
#include "lang/join_order.h"
#include "lang/rule_base.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/plan_matcher.h"
#include "rete/conflict_set.h"
#include "rete/matcher.h"
#include "rete/network.h"
#include "treat/treat.h"
#include "wm/schema.h"
#include "wm/working_memory.h"

namespace sorel {

/// Which match algorithm drives the engine.
enum class MatcherKind {
  kRete,   // the paper's extended Rete (S-node support)
  kTreat,  // tuple-oriented TREAT baseline (no set-oriented rules)
  kDips,   // relational (COND-table) matching per §8, set-oriented included
  kPlan,   // plan/iterator matcher: cost-ordered join pipelines, no betas
};

/// Construction-time options.
struct EngineOptions {
  Strategy strategy = Strategy::kLex;
  MatcherKind matcher = MatcherKind::kRete;
  SNodeOptions snode;
  /// Print "FIRE rule [tags]" lines to the output stream.
  bool trace_firings = false;
  /// Print "==> (wme)" / "<== (wme)" lines on every WM change.
  bool trace_wm = false;
  /// Match-network options (kRete only).
  ReteOptions rete;
  /// Join-order policy. kTextual keeps the program's CE order (the OPS5
  /// baseline). kOptimized picks a cost-guided order from live alpha
  /// cardinalities: the plan matcher executes it directly (and re-derives
  /// it when cardinalities drift), while kRete/kTreat apply it once per
  /// rule at load time as a CE pre-reordering pass (tuple-oriented rules
  /// only; with MEA the reordered first CE becomes the recency anchor).
  /// Either way, matching stays semantically exact — order moves work.
  JoinOrder join_order = JoinOrder::kTextual;
  /// Serve conflict-set selection from the ordered index; off falls back
  /// to the linear scan (ablation baseline).
  bool indexed_conflict_set = true;
  /// Run each firing (and each WM-mutating RHS action) inside a WM
  /// transaction: the firing's changes reach the matchers as one
  /// ChangeBatch at commit, each matcher propagates them natively (the
  /// S-node evaluates `:test` once per touched SOI, TREAT coalesces
  /// unblocking re-searches, DIPS refreshes once per rule), and an error
  /// mid-action rolls the whole firing back (§8.1). Off restores the
  /// seed's per-WME propagation — the ablation baseline.
  bool batched_wm = true;
  /// Allocate WMEs from a per-WM slab pool (`std::allocate_shared` with a
  /// block-recycling allocator), so WME payloads and their shared_ptr
  /// control blocks sit in contiguous, recycled storage — removal-heavy
  /// churn stops round-tripping through the general-purpose heap. Off
  /// (ablation baseline) falls back to make_shared.
  bool wme_arena = true;
  /// Worker threads for batch match propagation. 0 (the ablation baseline)
  /// keeps the single-threaded path; N > 0 spawns a pool of N workers and
  /// every matcher fans each ChangeBatch out per rule (Rete replays
  /// per-rule beta chains, TREAT re-searches per rule, DIPS refreshes per
  /// rule), buffering conflict-set sends into per-rule deltas that merge
  /// deterministically — firing traces, conflict-set order, and time-tag
  /// counters are bit-identical to match_threads = 0.
  int match_threads = 0;
  /// Intra-rule match parallelism (kRete / kTreat, with match_threads > 0):
  /// when one rule's replay work scans at least this many candidate tokens
  /// or alpha rows, the scan's pure join tests fork into slices on the
  /// worker pool; token creation, propagation, and conflict-set sends stay
  /// serial in scan order, so traces remain bit-identical. 0 disables.
  int intra_rule_split_min_tokens = 0;
  /// Evaluate the member expressions of one firing's set-modify (and of a
  /// foreach whose body is only make/modify/remove) on the worker pool;
  /// members commit serially in member order inside the action's
  /// transaction, and an error rolls back exactly as sequentially (§8.1).
  /// Implies a pool even when match_threads == 0.
  bool parallel_rhs = false;
  /// Install phase timers (match/select/act) and per-rule firing timers in
  /// the metric registry; `Profile()` renders them. Off (the default) costs
  /// nothing on the hot paths: components only install a ScopedTimer when
  /// this was set at construction, and a null timer is a no-op.
  bool enable_timers = false;
  /// Structured trace sink (borrowed; may be null). When set, the engine
  /// and its components emit the TraceEvent stream documented in
  /// obs/trace.h (cycle/select/fire/rhs_apply plus WM batch_commit/rollback
  /// and per-rule rule_replay). Swappable later via set_trace_sink().
  obs::TraceSink* trace_sink = nullptr;
};

/// The sorel production-system engine: an OPS5 interpreter extended with
/// the paper's set-oriented constructs. Typical use:
///
///   Engine engine;
///   engine.LoadString(R"((literalize player name team)
///                        (p compete [player ^name <n> ^team A]
///                                   [player ^name <n> ^team B]
///                                   --> (write ...)))");
///   engine.MakeWme("player", {{"name", engine.Sym("Jack")},
///                             {"team", engine.Sym("A")}});
///   engine.Run();
class Engine {
 public:
  /// Hot-path counters for the matcher and the conflict set, assembled by
  /// `match_stats()` (zeros for the sources a configuration lacks).
  struct MatchStats {
    ReteStats rete;
    ConflictSet::Stats select;
    /// Aggregated over every S-node (kRete with set-oriented rules).
    SNode::Stats snode;
    TreatMatcher::Stats treat;
    dips::DipsMatcher::Stats dips;
    PlanMatcher::Stats plan;
    /// Propagation-boundary counters (direct events vs. batches).
    WorkingMemory::Stats wm;
    /// Worker-pool counters (zeros when match_threads == 0).
    ThreadPool::Stats pool;
  };

  struct RunStats {
    uint64_t firings = 0;
    uint64_t actions = 0;
    std::map<std::string, uint64_t> firings_by_rule;
    /// Snapshot of `match_stats()` taken when Run/RunParallel returns.
    MatchStats match;
  };

  explicit Engine(EngineOptions options = {});
  /// Binds a session to a shared compiled rule base: instead of compiling
  /// source privately, the engine copies the base's symbol interning,
  /// reads its schema registry directly, hands the matcher the base's
  /// shared network topology, loads every base rule, and executes the
  /// base's startup actions against its own (empty) working memory. All
  /// mutable match state — alpha items, tokens, conflict set, WM — stays
  /// per-engine; the base is read-only and may be bound by any number of
  /// engines concurrently. Observable behavior is bit-identical to a
  /// private `LoadString(base->source())` on a fresh engine.
  Engine(EngineOptions options, RuleBasePtr base);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Loads `(literalize ...)` and `(p ...)` forms from source text.
  /// Refused on an engine bound to a shared rule base (the compiled
  /// artifact is immutable; open a differently-fingerprinted base instead).
  Status LoadString(std::string_view source);
  Status LoadFile(const std::string& path);

  /// Runs the recognize–act cycle until quiescence, `halt`, or
  /// `max_firings` (< 0: unlimited). Returns the number of firings.
  Result<int> Run(int max_firings = -1);

  /// Removes a production (OPS5's `excise`): its instantiations leave the
  /// conflict set and the match network is pruned.
  Status ExciseRule(std::string_view name);

  /// Parallel-firing mode (§8.1: DIPS "attempts to execute all satisfied
  /// instantiations concurrently, relying on transaction semantics to block
  /// inconsistent updates"). Each *cycle* greedily selects, in
  /// conflict-resolution order, a maximal batch of eligible instantiations
  /// whose matched WMEs are pairwise disjoint (the conservative conflict
  /// test: overlapping support could invalidate each other, the problem
  /// Raschid et al. report), snapshots them all against the same WM state,
  /// then fires the batch. Returns the number of cycles executed; see
  /// `parallel_stats()` for firings per cycle — the §1 parallelism measure.
  Result<int> RunParallel(int max_cycles = -1);

  struct ParallelStats {
    uint64_t cycles = 0;
    uint64_t firings = 0;
    uint64_t largest_batch = 0;
    /// Instantiations skipped because their support overlapped a batch
    /// member (the would-be transaction aborts of §8.1).
    uint64_t conflicts = 0;
  };
  const ParallelStats& parallel_stats() const { return parallel_stats_; }

  /// True if the last Run ended with a `(halt)`.
  bool halted() const { return halted_; }

  // --- programmatic working-memory access ---
  /// Creates a WME; unmentioned attributes are nil. Returns its time tag.
  Result<TimeTag> MakeWme(
      std::string_view cls,
      const std::vector<std::pair<std::string, Value>>& values);
  Status RemoveWme(TimeTag tag);
  /// OPS5 modify semantics: remove + re-make with the given attributes
  /// changed and a fresh time tag. Returns the new tag.
  Result<TimeTag> ModifyWme(
      TimeTag tag, const std::vector<std::pair<std::string, Value>>& values);
  /// Writes the live working memory as a reloadable `(startup (make ...))`
  /// form — a poor man's checkpoint (DIPS-style persistence, §8).
  void DumpWm(std::ostream& out) const;
  /// Interned symbol value for `text` (convenience for MakeWme).
  Value Sym(std::string_view text) { return Value::Symbol(symbols_.Intern(text)); }

  /// OK after construction, or the first error binding to the rule base hit
  /// (a rule the configured matcher rejects, a failing startup action).
  /// Always OK on self-compiled engines — their loading reports through
  /// LoadString's return value.
  const Status& bind_status() const { return bind_status_; }

  // --- component access ---
  SymbolTable& symbols() { return symbols_; }
  /// The schema registry rules were compiled against: the shared base's
  /// when bound, this engine's own otherwise.
  const SchemaRegistry& schemas() const {
    return base_ != nullptr ? base_->schemas() : schemas_;
  }
  WorkingMemory& wm() { return *wm_; }
  ConflictSet& conflict_set() { return cs_; }
  Matcher& matcher() { return *matcher_; }
  /// Non-null when options.matcher == kRete.
  ReteMatcher* rete_matcher() { return rete_; }
  /// The S-node of a set-oriented rule, or nullptr (regular rule / TREAT).
  SNode* snode(std::string_view rule_name);
  const CompiledRule* FindRule(std::string_view name) const;
  /// The loaded rules in load order. Borrowed pointers: owned by this
  /// engine (LoadString) or by the bound shared rule base.
  const std::vector<const CompiledRule*>& rules() const {
    return active_rules_;
  }
  /// The shared rule base this engine is bound to, or null (self-compiled).
  const RuleBasePtr& rule_base() const { return base_; }

  /// Redirects `write` output and traces (default: std::cout).
  void set_output(std::ostream* out);
  /// Toggles firing traces at run time (OPS5 `watch`-style).
  void set_trace_firings(bool on) { options_.trace_firings = on; }
  /// Toggles working-memory change traces at run time.
  void set_trace_wm(bool on);
  const RunStats& run_stats() const { return run_stats_; }
  const RhsExecutor::Stats& rhs_stats() const { return rhs_.stats(); }
  /// Live matcher + conflict-set counters (see MatchStats), assembled from
  /// a registry snapshot: every field is the sum of the registry views
  /// registered under its metric name (so per-S-node counters aggregate),
  /// and sources a configuration lacks read as zero.
  MatchStats match_stats() const;
  /// Zeroes every counter a benchmark can read by fanning out to every
  /// reset hook in the metric registry (matcher, conflict set, S-nodes,
  /// WM, worker pool, RHS, run/parallel stats) and clearing all timers.
  /// Components register their own hooks, so no hand-kept field list can
  /// drift out of sync.
  void ResetMatchStats();

  // --- observability ---
  /// The engine-wide metric registry: every component's counters are
  /// registered here as named views (see obs/metrics.h); benchmarks and
  /// tests can snapshot or extend it.
  obs::MetricRegistry& metrics() { return metrics_; }
  const obs::MetricRegistry& metrics() const { return metrics_; }
  /// Swaps the structured trace sink at run time (null disables).
  void set_trace_sink(obs::TraceSink* sink) { trace_.set_sink(sink); }
  /// Writes a wall-time breakdown of the run: per-phase (match / select /
  /// act) and per-rule firing timers, with sample counts, totals, means,
  /// and a coarse p99. Requires EngineOptions::enable_timers; otherwise
  /// prints a pointer to that flag.
  void Profile(std::ostream& out) const;

 private:
  /// First error a match-network callback swallowed (S-node `:test`
  /// evaluation, DIPS COND-table maintenance), or OK. Run checks this
  /// every cycle so match-time failures surface instead of silently
  /// freezing the affected instantiations.
  Status MatchError() const;

  EngineOptions options_;
  /// The shared compiled artifact when bound (null otherwise). Declared
  /// first among the components so it is destroyed last: the matcher, WM,
  /// and sinks all hold pointers into the base's rules, schemas, and
  /// topology during teardown.
  RuleBasePtr base_;
  SymbolTable symbols_;
  SchemaRegistry schemas_;
  // The registry and tracer are declared before every component that
  // registers with them (and destroyed after — components Unregister in
  // their destructors).
  obs::MetricRegistry metrics_;
  obs::Tracer trace_;
  std::unique_ptr<WorkingMemory> wm_;
  ConflictSet cs_;
  std::ostream* out_ = &std::cout;
  std::map<std::string, SNode*, std::less<>> snodes_;
  // Rules are declared before the matcher: beta nodes and S-nodes hold
  // pointers into them, and the matcher's teardown still dereferences them.
  // Self-compiled engines own their rules here; bound engines leave this
  // empty (the base owns the rules) — either way `active_rules_` is the
  // load-ordered view the matcher and the public API work from.
  std::vector<CompiledRulePtr> rules_;
  std::vector<const CompiledRule*> active_rules_;
  // The pool outlives the matcher (declared first): the matcher holds a
  // borrowed ThreadPool* and may still reference it during teardown.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Matcher> matcher_;
  ReteMatcher* rete_ = nullptr;  // borrowed view of matcher_ when Rete
  TreatMatcher* treat_ = nullptr;  // borrowed view when TREAT
  dips::DipsMatcher* dips_ = nullptr;  // borrowed view when DIPS
  PlanMatcher* plan_ = nullptr;  // borrowed view when plan
  RuleCompiler compiler_;
  RhsExecutor rhs_;
  RunStats run_stats_;
  ParallelStats parallel_stats_;
  // Cached registry timers; non-null only with options.enable_timers.
  obs::Timer* select_timer_ = nullptr;
  obs::Timer* act_timer_ = nullptr;
  bool halted_ = false;
  /// First error binding to the shared rule base (see bind_status()).
  Status bind_status_;
  /// Empty rule context for startup-action execution.
  CompiledRule startup_context_;
  /// Listener printing WM changes when options.trace_wm is set.
  class WmTracer;
  std::unique_ptr<WorkingMemory::Listener> tracer_;
};

}  // namespace sorel

#endif  // SOREL_ENGINE_ENGINE_H_
