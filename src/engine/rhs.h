#ifndef SOREL_ENGINE_RHS_H_
#define SOREL_ENGINE_RHS_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

#include "base/status.h"
#include "base/symbol_table.h"
#include "lang/compiled_rule.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rete/instantiation.h"
#include "wm/working_memory.h"

namespace sorel {

class ThreadPool;

/// Executes the RHS of a firing instantiation (§6): regular actions,
/// set-oriented `set-modify`/`set-remove`, and the compositional `foreach`
/// iterator over set-oriented PVs and CEs, including nested iteration,
/// `bind` locals, and `if`/`else`.
///
/// The rows are a snapshot taken at selection time, so actions that change
/// the instantiation's own support (e.g. SwitchTeams' set-modify) are
/// well-defined.
///
/// In transactional mode (EngineOptions::batched_wm) each firing runs
/// inside a WM transaction, with every WM-mutating action in a nested
/// sub-transaction: an action that errors on its k-th member leaves no
/// partial effect, the whole firing's changes reach the matchers as one
/// ChangeBatch at commit, and an error rolls the entire firing back —
/// §8.1's all-or-nothing transaction semantics. Non-transactional mode
/// propagates each mutation immediately, as in OPS5.
class RhsExecutor {
 public:
  struct FireResult {
    bool halted = false;
    uint64_t actions = 0;  // primitive actions executed in this firing
  };

  struct Stats {
    uint64_t firings = 0;
    uint64_t actions = 0;
    uint64_t wmes_made = 0;
    uint64_t wmes_removed = 0;
    uint64_t skipped_dead_targets = 0;  // modify/remove of dead WMEs
    /// Set-modify / foreach actions whose member expressions were evaluated
    /// on the worker pool (parallel RHS), and the member tasks dispatched.
    uint64_t parallel_forks = 0;
    uint64_t parallel_member_tasks = 0;
  };

  /// `metrics` / `tracer` (borrowed, may be null) hook the executor into
  /// the observability layer: rhs.* counters register as registry views and
  /// each successful firing emits an rhs_apply event.
  RhsExecutor(WorkingMemory* wm, SymbolTable* symbols, std::ostream* out,
              obs::MetricRegistry* metrics = nullptr,
              obs::Tracer* tracer = nullptr);
  ~RhsExecutor();

  RhsExecutor(const RhsExecutor&) = delete;
  RhsExecutor& operator=(const RhsExecutor&) = delete;

  /// Runs `rule`'s actions over the snapshot `rows` (ordered as in the
  /// conflict set: most recent first).
  Result<FireResult> Fire(const CompiledRule& rule, std::vector<Row> rows);

  /// Runs a free-standing action list (startup forms, shell commands) with
  /// no matched rows. `context` supplies the (usually empty) variable
  /// table.
  Result<FireResult> ExecuteStandalone(const CompiledRule& context,
                                       const std::vector<ActionPtr>& actions);

  void set_output(std::ostream* out) { out_ = out; }
  /// Enables per-firing / per-action WM transactions (see class comment).
  void set_transactional(bool on) { transactional_ = on; }
  bool transactional() const { return transactional_; }
  /// Parallel RHS (EngineOptions::parallel_rhs): with a pool and the flag
  /// on, the per-member expression evaluations of a set-modify (and of a
  /// foreach whose body is only make/modify/remove) fork onto the pool;
  /// the members' WM effects then apply serially in member order with the
  /// sequential path's exact transaction bracketing, so WM contents,
  /// Status, and counters other than the parallel_* stats are unchanged.
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  void set_parallel(bool on) { parallel_ = on; }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  class ExecState;
  class RhsEvalContext;
  /// Pre-evaluated effects of one body action for one member (parallel
  /// RHS): the resolved target, the evaluated values, and the first error
  /// each evaluation stage hit, recorded separately so the serial apply
  /// loop can reproduce the sequential check order (target resolution →
  /// liveness → expression/attribute errors) exactly.
  struct ActionEval;

  /// True when `members` member evaluations should fork onto the pool.
  bool ShouldParallelize(size_t members) const {
    return parallel_ && pool_ != nullptr && members >= 2;
  }
  /// True when every action in `body` is make/modify/remove — the forms
  /// whose evaluation reads only the frozen row snapshot, making member
  /// evaluations independent.
  static bool BodyIsParallelizable(const std::vector<ActionPtr>& body);

  Status ExecuteList(const std::vector<ActionPtr>& actions, ExecState* state);
  Status Execute(const Action& action, ExecState* state);
  /// Runs `body` inside a (possibly nested) WM transaction when
  /// transactional mode is on; rolls back on error.
  Status RunInTransaction(const std::function<Status()>& body);
  Status DoMake(const Action& action, ExecState* state);
  Status DoModifyOrRemove(const Action& action, ExecState* state);
  Status DoSetModifyOrRemove(const Action& action, ExecState* state);
  Status DoWrite(const Action& action, ExecState* state);
  Status DoForeach(const Action& action, ExecState* state);
  /// Parallel member evaluation for a set-modify over `targets` (runs
  /// inside the action's transaction; the serial apply mirrors the
  /// sequential loop).
  Status DoSetModifyParallel(const Action& action, ExecState* state,
                             const std::vector<WmePtr>& targets);
  /// Parallel member evaluation for an eligible foreach: `subs` holds the
  /// per-member sub-selections in iteration order.
  Status ForeachMembersParallel(const Action& action, ExecState* state,
                                const std::vector<std::vector<size_t>>& subs);
  /// Evaluates one make/modify/remove for one member's sub-selection — the
  /// pure half of the action, safe to run on a pool worker.
  void EvaluateBodyAction(const Action& action, const ExecState& state,
                          const std::vector<size_t>& selection,
                          ActionEval* out) const;
  /// Evaluates a modify's assigns against `out->target`'s snapshot with the
  /// sequential per-assign expression → attribute-lookup order.
  void EvaluateModifyAssigns(const Action& action, const ExecState& state,
                             const std::vector<size_t>& selection,
                             ActionEval* out) const;
  /// Applies one pre-evaluated body action (the WM-mutating half), with
  /// the same transaction bracketing, stats, and error order as Execute.
  Status ApplyBodyAction(const Action& action, const ActionEval& eval);
  /// remove+make with updated fields (OPS5 modify: fresh time tag).
  Status ModifyWme(const Wme& old, const Action& action, ExecState* state);
  Status RemoveIfLive(TimeTag tag);

  WorkingMemory* wm_;
  SymbolTable* symbols_;
  std::ostream* out_;
  bool transactional_ = false;
  ThreadPool* pool_ = nullptr;  // borrowed; may be null
  bool parallel_ = false;
  obs::MetricRegistry* metrics_ = nullptr;  // borrowed; may be null
  obs::Tracer* tracer_ = nullptr;           // borrowed; may be null
  Stats stats_;
  // Write-action spacing persists across firings: a space precedes each
  // value unless at the start of an output line (after crlf).
  bool at_line_start_ = true;
};

}  // namespace sorel

#endif  // SOREL_ENGINE_RHS_H_
