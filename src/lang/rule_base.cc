#include "lang/rule_base.h"

#include <utility>

#include "lang/compiler.h"
#include "lang/parser.h"

namespace sorel {

// --------------------------------------------------------------- pattern ---

std::unique_ptr<AlphaPattern> AlphaPattern::FromCondition(
    const CompiledCondition& cond) {
  auto p = std::make_unique<AlphaPattern>();
  p->cls = cond.cls;
  p->const_tests = cond.const_tests;
  p->member_tests = cond.member_tests;
  p->intra_tests = cond.intra_tests;
  return p;
}

bool AlphaPattern::Accepts(const Wme& wme) const {
  for (const ConstantTest& t : const_tests) {
    if (!EvalTestPred(t.pred, wme.field(t.field), t.value)) return false;
  }
  for (const MemberTest& t : member_tests) {
    bool any = false;
    for (const Value& v : t.values) {
      if (wme.field(t.field) == v) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  for (const IntraTest& t : intra_tests) {
    if (!EvalTestPred(t.pred, wme.field(t.field), wme.field(t.other_field))) {
      return false;
    }
  }
  return true;
}

bool AlphaPattern::Matches(const CompiledCondition& cond) const {
  return cls == cond.cls && SameConstantTests(const_tests, cond.const_tests) &&
         SameMemberTests(member_tests, cond.member_tests) &&
         SameIntraTests(intra_tests, cond.intra_tests);
}

size_t AlphaPattern::MemoryBytes() const {
  size_t bytes = sizeof(AlphaPattern) +
                 const_tests.capacity() * sizeof(ConstantTest) +
                 intra_tests.capacity() * sizeof(IntraTest) +
                 member_tests.capacity() * sizeof(MemberTest);
  for (const MemberTest& t : member_tests) {
    bytes += t.values.capacity() * sizeof(Value);
  }
  return bytes;
}

// -------------------------------------------------------------- topology ---

void NetworkTopology::AddRule(const CompiledRule* rule) {
  std::vector<const AlphaPattern*> assigned;
  assigned.reserve(rule->conditions.size());
  for (const CompiledCondition& cond : rule->conditions) {
    const AlphaPattern* found = nullptr;
    // First-use order, structural dedup — the same scan order an unbound
    // GetOrCreateAlpha runs, so pattern identity == memory sharing.
    for (const auto& p : patterns_) {
      if (p->Matches(cond)) {
        found = p.get();
        break;
      }
    }
    if (found == nullptr) {
      patterns_.push_back(AlphaPattern::FromCondition(cond));
      found = patterns_.back().get();
    }
    assigned.push_back(found);
  }
  by_rule_.emplace(rule, std::move(assigned));
}

size_t NetworkTopology::MemoryBytes() const {
  size_t bytes = patterns_.capacity() * sizeof(patterns_[0]);
  for (const auto& p : patterns_) bytes += p->MemoryBytes();
  for (const auto& [rule, assigned] : by_rule_) {
    bytes += sizeof(rule) + assigned.capacity() * sizeof(const AlphaPattern*);
  }
  return bytes;
}

// ------------------------------------------------------------- rule base ---

uint64_t CompiledRuleBase::Fingerprint(std::string_view source,
                                       const RuleBaseConfig& config) {
  // FNV-1a 64: stable, dependency-free, and cheap — collisions across the
  // handful of rule sources one server instance loads are not a concern.
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 0x100000001b3ull;
  };
  for (char c : source) mix(static_cast<uint8_t>(c));
  mix(static_cast<uint8_t>(config.join_order));
  mix(static_cast<uint8_t>(config.reorder_at_load));
  return h;
}

Result<RuleBasePtr> CompiledRuleBase::Compile(std::string source,
                                              RuleBaseConfig config) {
  // shared_ptr<const ...> via a mutable local: the object is only written
  // here, before anyone else can see it.
  std::shared_ptr<CompiledRuleBase> base(new CompiledRuleBase());
  base->source_ = std::move(source);
  base->config_ = config;
  base->fingerprint_ = Fingerprint(base->source_, config);

  // The same sequence as Engine::LoadString on a fresh engine: parse,
  // declare, compile each rule (duplicate-name check), optional load-time
  // CE pre-reordering, then resolve the startup actions. Running it here
  // once instead of once per session is the whole point; keeping the order
  // identical is what makes a bound session bit-identical to a private one.
  SOREL_ASSIGN_OR_RETURN(ProgramAst program, Parse(base->source_));
  RuleCompiler compiler(&base->symbols_, &base->schemas_);
  for (const LiteralizeAst& lit : program.literalizes) {
    SOREL_RETURN_IF_ERROR(compiler.DeclareLiteralize(lit));
  }
  for (RuleAst& rule_ast : program.rules) {
    if (base->FindRule(rule_ast.name) != nullptr) {
      return Status::CompileError("duplicate rule name '" + rule_ast.name +
                                  "'");
    }
    SOREL_ASSIGN_OR_RETURN(CompiledRulePtr rule,
                           compiler.Compile(std::move(rule_ast)));
    if (config.join_order == JoinOrder::kOptimized && config.reorder_at_load &&
        !rule->has_set) {
      // Compile-time WM is empty, so EstimateCards falls back to the static
      // test-count heuristic — the estimates (and the order) every session
      // loading rules before data would have derived.
      JoinOrderResult r = OptimizeJoinOrder(*rule, EstimateCards(*rule, {}));
      if (r.reordered) ReorderRuleInPlace(rule.get(), r.order);
    }
    base->topology_.AddRule(rule.get());
    base->rules_.push_back(std::move(rule));
  }
  if (!program.startup.empty()) {
    SOREL_RETURN_IF_ERROR(compiler.CompileStartup(&program.startup));
    base->startup_ = std::move(program.startup);
  }
  return RuleBasePtr(std::move(base));
}

const CompiledRule* CompiledRuleBase::FindRule(std::string_view name) const {
  for (const CompiledRulePtr& rule : rules_) {
    if (rule->name == name) return rule.get();
  }
  return nullptr;
}

size_t CompiledRuleBase::MemoryBytes() const {
  // An estimate of the dominant shared storage: the source text, each
  // rule's condition/test vectors, and the topology. AST action trees are
  // approximated by their node counts' worth of pointers — exact RHS sizing
  // would buy precision nobody reads off a KiB gauge.
  size_t bytes = sizeof(CompiledRuleBase) + source_.capacity();
  for (const CompiledRulePtr& rule : rules_) {
    bytes += sizeof(CompiledRule) + rule->name.capacity();
    bytes += rule->conditions.capacity() * sizeof(CompiledCondition);
    for (const CompiledCondition& cond : rule->conditions) {
      bytes += cond.const_tests.capacity() * sizeof(ConstantTest) +
               cond.member_tests.capacity() * sizeof(MemberTest) +
               cond.intra_tests.capacity() * sizeof(IntraTest) +
               (cond.join_tests.capacity() + cond.eq_join_tests.capacity() +
                cond.residual_join_tests.capacity()) *
                   sizeof(JoinTest);
    }
    for (const auto& [name, var] : rule->vars) {
      bytes += name.capacity() + sizeof(VarInfo) +
               var.occurrences.capacity() * sizeof(std::pair<int, int>);
    }
    bytes += rule->test_aggregates.capacity() * sizeof(AggregateSpec);
    bytes += (rule->ast.actions.size() + startup_.size()) * sizeof(ActionPtr);
  }
  bytes += topology_.MemoryBytes();
  return bytes;
}

}  // namespace sorel
