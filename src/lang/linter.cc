#include "lang/linter.h"

#include <unordered_set>

namespace sorel {

std::string_view LintCodeName(LintCode code) {
  switch (code) {
    case LintCode::kUnusedVariable:
      return "unused-variable";
    case LintCode::kCrossProduct:
      return "cross-product";
    case LintCode::kPointlessSet:
      return "pointless-set";
    case LintCode::kSelfTrigger:
      return "self-trigger";
    case LintCode::kNoTestNoPartition:
      return "tuple-rule-in-disguise";
  }
  return "?";
}

namespace {

/// What the RHS and `:test` do with names, collected in one walk.
struct Usage {
  std::unordered_set<std::string> read_vars;     // value reads
  std::unordered_set<std::string> agg_vars;      // aggregate targets
  std::unordered_set<std::string> iterated_vars; // foreach targets
  std::unordered_set<std::string> elem_targets;  // modify/remove/set-* targets
  std::unordered_set<std::string> made_classes;  // make targets
  bool has_set_consumer = false;  // foreach / set-modify / set-remove / agg
};

void ScanExpr(const Expr* e, Usage* usage) {
  if (e == nullptr) return;
  switch (e->kind) {
    case Expr::Kind::kVar:
      usage->read_vars.insert(e->var);
      break;
    case Expr::Kind::kAggregate:
      usage->agg_vars.insert(e->var);
      usage->has_set_consumer = true;
      break;
    default:
      break;
  }
  ScanExpr(e->lhs.get(), usage);
  ScanExpr(e->rhs.get(), usage);
}

void ScanActions(const std::vector<ActionPtr>& actions, Usage* usage) {
  for (const ActionPtr& a : actions) {
    switch (a->kind) {
      case Action::Kind::kMake:
        usage->made_classes.insert(a->cls);
        break;
      case Action::Kind::kModify:
      case Action::Kind::kRemove:
        if (!a->var.empty()) usage->elem_targets.insert(a->var);
        break;
      case Action::Kind::kSetModify:
      case Action::Kind::kSetRemove:
        usage->elem_targets.insert(a->var);
        usage->has_set_consumer = true;
        break;
      case Action::Kind::kForeach:
        usage->iterated_vars.insert(a->var);
        usage->has_set_consumer = true;
        break;
      default:
        break;
    }
    for (const auto& [attr, expr] : a->assigns) ScanExpr(expr.get(), usage);
    ScanExpr(a->expr.get(), usage);
    for (const ExprPtr& arg : a->write_args) ScanExpr(arg.get(), usage);
    ScanActions(a->body, usage);
    ScanActions(a->else_body, usage);
  }
}

bool VarTouchesCe(const VarInfo& info, int token_pos) {
  if (info.kind == VarInfo::Kind::kElement) {
    return info.elem_token_pos == token_pos;
  }
  for (const auto& [pos, field] : info.occurrences) {
    if (pos == token_pos) return true;
  }
  return false;
}

}  // namespace

std::vector<LintWarning> LintRule(const CompiledRule& rule) {
  std::vector<LintWarning> warnings;
  auto warn = [&](LintCode code, std::string message) {
    warnings.push_back({code, rule.name, std::move(message)});
  };

  Usage usage;
  ScanActions(rule.ast.actions, &usage);
  if (rule.ast.test != nullptr) ScanExpr(rule.ast.test.get(), &usage);

  // --- unused variables ---
  for (const auto& [name, info] : rule.vars) {
    bool used = usage.read_vars.count(name) != 0 ||
                usage.agg_vars.count(name) != 0 ||
                usage.iterated_vars.count(name) != 0 ||
                usage.elem_targets.count(name) != 0;
    if (info.kind == VarInfo::Kind::kValue && info.occurrences.size() > 1) {
      used = true;  // participates in a join
    }
    if (info.in_scalar_clause) used = true;  // partitions the SOI
    if (!used) {
      warn(LintCode::kUnusedVariable,
           "variable <" + name + "> is bound but never used");
    }
  }

  // --- unconstrained joins ---
  for (const CompiledCondition& cond : rule.conditions) {
    if (cond.negated || cond.token_pos <= 0) continue;
    if (cond.join_tests.empty()) {
      warn(LintCode::kCrossProduct,
           "condition element " + std::to_string(cond.ce_index + 1) +
               " has no join test against earlier CEs (cross product)");
    }
  }

  // --- set CEs that are never consumed as sets ---
  for (const CompiledCondition& cond : rule.conditions) {
    if (!cond.set_oriented) continue;
    bool consumed = false;
    for (const auto& [name, info] : rule.vars) {
      if (!info.set_oriented || !VarTouchesCe(info, cond.token_pos)) continue;
      if (usage.agg_vars.count(name) != 0 ||
          usage.iterated_vars.count(name) != 0 ||
          (info.kind == VarInfo::Kind::kElement &&
           usage.elem_targets.count(name) != 0)) {
        consumed = true;
      }
    }
    if (!consumed) {
      warn(LintCode::kPointlessSet,
           "set-oriented CE " + std::to_string(cond.ce_index + 1) +
               " is never used through an aggregate, foreach, or set "
               "action");
    }
  }

  // --- RHS makes what the LHS matches ---
  // (The linter sees interned names through the AST, so compare by text.)
  std::unordered_set<std::string> matched_classes;
  for (const ConditionAst& ce : rule.ast.conditions) {
    if (!ce.negated) matched_classes.insert(ce.cls);
  }
  for (const std::string& cls : usage.made_classes) {
    if (matched_classes.count(cls) != 0) {
      warn(LintCode::kSelfTrigger,
           "RHS makes a '" + cls +
               "' WME that this rule's own LHS matches (possible loop)");
    }
  }

  // --- a set rule that never consumes its sets at all ---
  if (rule.has_set && rule.ast.test == nullptr && !usage.has_set_consumer) {
    warn(LintCode::kNoTestNoPartition,
         "set-oriented rule has no :test, foreach, aggregate, or set "
         "action — set brackets only suppress multiple firings here");
  }

  return warnings;
}

}  // namespace sorel
