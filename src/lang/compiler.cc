#include "lang/compiler.h"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

namespace sorel {

namespace {

/// Per-compilation state for one rule.
class RuleAnalysis {
 public:
  RuleAnalysis(SymbolTable* symbols, SchemaRegistry* schemas)
      : symbols_(symbols), schemas_(schemas) {}

  Result<CompiledRulePtr> Run(RuleAst rule_ast) {
    auto rule = std::make_unique<CompiledRule>();
    rule->name = rule_ast.name;
    rule->ast = std::move(rule_ast);
    rule_ = rule.get();

    SOREL_RETURN_IF_ERROR(CompileConditions());
    SplitJoinTests();
    SOREL_RETURN_IF_ERROR(ApplyScalarClause());
    ClassifyVariables();
    BuildPartitionKey();
    SOREL_RETURN_IF_ERROR(CompileTest());
    SOREL_RETURN_IF_ERROR(ValidateRhs());
    ComputeSpecificity();
    return CompiledRulePtr(std::move(rule));
  }

 private:
  Status Err(SourceLoc loc, std::string msg) const {
    return Status::CompileError("rule '" + rule_->name + "' (line " +
                                std::to_string(loc.line) + "): " +
                                std::move(msg));
  }

  // Resolves a parsed constant (see TestTerm doc: symbol texts are stashed).
  Value ResolveConst(const Value& parsed, const std::string& text) {
    if (text.empty()) return parsed;
    if (text == "nil") return Value::Nil();
    return Value::Symbol(symbols_->Intern(text));
  }

  bool IsSetCe(int ce_index) const {
    return rule_->ast.conditions[static_cast<size_t>(ce_index)].set_oriented;
  }

  // ---------- conditions ----------
  Status CompileConditions() {
    const auto& ces = rule_->ast.conditions;
    if (ces.empty()) {
      return Err(rule_->ast.loc, "rule has no condition elements");
    }
    if (ces[0].negated) {
      return Err(ces[0].loc, "first condition element must be positive");
    }
    int next_pos = 0;
    for (int i = 0; i < static_cast<int>(ces.size()); ++i) {
      const ConditionAst& ce = ces[static_cast<size_t>(i)];
      CompiledCondition cc;
      cc.ce_index = i;
      cc.negated = ce.negated;
      cc.set_oriented = ce.set_oriented;
      if (ce.negated && ce.set_oriented) {
        return Err(ce.loc, "negated set-oriented CEs are not supported");
      }
      if (ce.negated && !ce.elem_var.empty()) {
        return Err(ce.loc, "a negated CE cannot have an element variable");
      }
      cc.cls = symbols_->Intern(ce.cls);
      cc.schema = schemas_->Find(cc.cls);
      if (cc.schema == nullptr) {
        return Err(ce.loc, "class '" + ce.cls + "' was never literalized");
      }
      cc.token_pos = ce.negated ? -1 : next_pos++;
      SOREL_RETURN_IF_ERROR(CompileCeTests(ce, &cc));
      if (!ce.elem_var.empty()) {
        SOREL_RETURN_IF_ERROR(BindElementVar(ce, cc.token_pos));
      }
      if (ce.set_oriented) rule_->has_set = true;
      rule_->conditions.push_back(std::move(cc));
    }
    rule_->num_positive = next_pos;
    return Status::Ok();
  }

  Status CompileCeTests(const ConditionAst& ce, CompiledCondition* cc) {
    // Variables bound locally inside a negated CE are invisible elsewhere.
    std::unordered_map<std::string, int> neg_locals;  // name -> field
    for (const AttrTest& at : ce.attrs) {
      SymbolId attr = symbols_->Intern(at.attr);
      int field = cc->schema->FieldOf(attr);
      if (field < 0) {
        return Err(at.loc, "class '" + ce.cls + "' has no attribute '" +
                               at.attr + "'");
      }
      if (at.kind == AttrTest::Kind::kDisjunction) {
        MemberTest mt;
        mt.field = field;
        for (size_t k = 0; k < at.disjunction.size(); ++k) {
          mt.values.push_back(
              ResolveConst(at.disjunction[k], at.disjunction_texts[k]));
        }
        cc->member_tests.push_back(std::move(mt));
        continue;
      }
      for (const auto& [pred, term] : at.atoms) {
        if (term.kind == TestTerm::Kind::kConst) {
          cc->const_tests.push_back(
              {field, pred, ResolveConst(term.constant, term.var)});
          continue;
        }
        // Variable term.
        const std::string& name = term.var;
        if (ce.negated) {
          SOREL_RETURN_IF_ERROR(
              CompileNegatedVar(at.loc, name, pred, field, cc, &neg_locals));
          continue;
        }
        SOREL_RETURN_IF_ERROR(
            CompilePositiveVar(at.loc, name, pred, field, cc));
      }
    }
    return Status::Ok();
  }

  Status CompilePositiveVar(SourceLoc loc, const std::string& name,
                            TestPred pred, int field, CompiledCondition* cc) {
    auto it = rule_->vars.find(name);
    if (it == rule_->vars.end()) {
      if (pred != TestPred::kEq) {
        return Err(loc, "variable <" + name +
                            "> used in a predicate before being bound");
      }
      VarInfo info;
      info.name = name;
      info.kind = VarInfo::Kind::kValue;
      info.occurrences.emplace_back(cc->token_pos, field);
      occurrence_ce_[name].push_back(cc->ce_index);
      rule_->vars.emplace(name, std::move(info));
      return Status::Ok();
    }
    VarInfo& info = it->second;
    if (info.kind == VarInfo::Kind::kElement) {
      return Err(loc, "element variable <" + name +
                          "> cannot be used as a value");
    }
    // Earlier occurrence in this same CE -> intra test; otherwise join test
    // against the canonical (first) occurrence.
    int same_ce_field = -1;
    for (const auto& [pos, f] : info.occurrences) {
      if (pos == cc->token_pos) {
        same_ce_field = f;
        break;
      }
    }
    if (same_ce_field >= 0) {
      cc->intra_tests.push_back({field, pred, same_ce_field});
    } else {
      const auto& [opos, ofield] = info.occurrences.front();
      cc->join_tests.push_back({field, pred, opos, ofield});
    }
    if (pred == TestPred::kEq && same_ce_field < 0) {
      info.occurrences.emplace_back(cc->token_pos, field);
      occurrence_ce_[name].push_back(cc->ce_index);
    }
    return Status::Ok();
  }

  Status CompileNegatedVar(SourceLoc loc, const std::string& name,
                           TestPred pred, int field, CompiledCondition* cc,
                           std::unordered_map<std::string, int>* neg_locals) {
    auto global = rule_->vars.find(name);
    if (global != rule_->vars.end() &&
        global->second.kind == VarInfo::Kind::kValue) {
      const auto& [opos, ofield] = global->second.occurrences.front();
      cc->join_tests.push_back({field, pred, opos, ofield});
      return Status::Ok();
    }
    auto local = neg_locals->find(name);
    if (local != neg_locals->end()) {
      cc->intra_tests.push_back({field, pred, local->second});
      return Status::Ok();
    }
    if (pred != TestPred::kEq) {
      return Err(loc, "variable <" + name +
                          "> used in a predicate before being bound");
    }
    neg_locals->emplace(name, field);
    return Status::Ok();
  }

  Status BindElementVar(const ConditionAst& ce, int token_pos) {
    if (rule_->vars.count(ce.elem_var) != 0) {
      return Err(ce.loc,
                 "element variable <" + ce.elem_var + "> already bound");
    }
    VarInfo info;
    info.name = ce.elem_var;
    info.kind = VarInfo::Kind::kElement;
    info.elem_token_pos = token_pos;
    info.set_oriented = ce.set_oriented;
    rule_->vars.emplace(ce.elem_var, std::move(info));
    return Status::Ok();
  }

  // ---------- :scalar and variable classification ----------
  Status ApplyScalarClause() {
    for (const std::string& name : rule_->ast.scalar_vars) {
      auto it = rule_->vars.find(name);
      if (it == rule_->vars.end()) {
        return Err(rule_->ast.loc,
                   ":scalar lists unbound variable <" + name + ">");
      }
      if (it->second.kind == VarInfo::Kind::kElement) {
        return Err(rule_->ast.loc, ":scalar cannot list element variable <" +
                                       name + ">");
      }
      it->second.in_scalar_clause = true;
    }
    return Status::Ok();
  }

  void ClassifyVariables() {
    for (auto& [name, info] : rule_->vars) {
      if (info.kind == VarInfo::Kind::kElement) continue;  // set by CE kind
      bool all_set = true;
      for (int ce : occurrence_ce_[name]) {
        if (!IsSetCe(ce)) all_set = false;
      }
      info.set_oriented = all_set && !info.in_scalar_clause;
    }
  }

  void BuildPartitionKey() {
    for (const CompiledCondition& cc : rule_->conditions) {
      if (!cc.negated && !cc.set_oriented) {
        rule_->key_token_positions.push_back(cc.token_pos);
      }
    }
    for (const std::string& name : rule_->ast.scalar_vars) {
      const VarInfo& info = rule_->vars.at(name);
      rule_->key_scalars.push_back(info.occurrences.front());
    }
  }

  // ---------- :test ----------
  Status CompileTest() {
    if (rule_->ast.test == nullptr) return Status::Ok();
    if (!rule_->has_set) {
      return Err(rule_->ast.loc,
                 ":test requires at least one set-oriented CE");
    }
    return CompileExpr(rule_->ast.test.get(), /*in_test=*/true,
                       /*scope=*/nullptr);
  }

  // ---------- RHS ----------
  struct RhsScope {
    std::unordered_set<std::string> locals;        // bind targets
    std::unordered_set<std::string> fixed_vars;    // foreach iterator vars
    std::unordered_set<int> fixed_positions;       // CEs fixed by foreach
  };

  // True if `info` can be read as a scalar value under `scope`.
  bool ScalarUsable(const VarInfo& info, const RhsScope* scope) const {
    if (info.kind == VarInfo::Kind::kElement) return false;
    if (!info.set_oriented) return true;
    if (scope == nullptr) return false;
    if (scope->fixed_vars.count(info.name) != 0) return true;
    for (const auto& [pos, field] : info.occurrences) {
      if (scope->fixed_positions.count(pos) != 0) return true;
    }
    return false;
  }

  Status CompileExpr(Expr* e, bool in_test, const RhsScope* scope) {
    switch (e->kind) {
      case Expr::Kind::kConst:
        e->constant = ResolveConst(e->constant, e->var);
        return Status::Ok();
      case Expr::Kind::kCrlf:
        if (in_test) return Err(e->loc, "(crlf) is only valid inside write");
        return Status::Ok();
      case Expr::Kind::kVar: {
        const VarInfo* info = rule_->FindVar(e->var);
        if (info == nullptr) {
          if (scope != nullptr && scope->locals.count(e->var) != 0) {
            return Status::Ok();  // RHS-local bind target
          }
          return Err(e->loc, "unbound variable <" + e->var + ">");
        }
        if (info->kind == VarInfo::Kind::kElement) {
          return Err(e->loc, "element variable <" + e->var +
                                 "> cannot be used as a value");
        }
        if (!ScalarUsable(*info, scope)) {
          return Err(e->loc,
                     "set-oriented variable <" + e->var +
                         "> needs an aggregate, foreach, or :scalar");
        }
        return Status::Ok();
      }
      case Expr::Kind::kAggregate: {
        const VarInfo* info = rule_->FindVar(e->var);
        if (info == nullptr) {
          return Err(e->loc, "unbound variable <" + e->var + ">");
        }
        if (!info->set_oriented) {
          return Err(e->loc, "aggregate over non-set-oriented variable <" +
                                 e->var + ">");
        }
        if (info->kind == VarInfo::Kind::kElement &&
            e->agg_op != AggOp::kCount) {
          return Err(e->loc,
                     std::string(AggOpName(e->agg_op)) +
                         " cannot be applied to an element variable; only "
                         "count is defined over WMEs");
        }
        if (in_test) e->agg_index = InternAggregate(*info, e->agg_op);
        return Status::Ok();
      }
      case Expr::Kind::kNot:
        return CompileExpr(e->lhs.get(), in_test, scope);
      case Expr::Kind::kBinary:
        SOREL_RETURN_IF_ERROR(CompileExpr(e->lhs.get(), in_test, scope));
        return CompileExpr(e->rhs.get(), in_test, scope);
    }
    return Status::Ok();
  }

  int InternAggregate(const VarInfo& info, AggOp op) {
    for (int i = 0; i < static_cast<int>(rule_->test_aggregates.size()); ++i) {
      const AggregateSpec& spec =
          rule_->test_aggregates[static_cast<size_t>(i)];
      if (spec.op == op && spec.var == info.name) return i;
    }
    AggregateSpec spec;
    spec.op = op;
    spec.var = info.name;
    if (info.kind == VarInfo::Kind::kElement) {
      spec.over_element = true;
      spec.token_pos = info.elem_token_pos;
    } else {
      spec.over_element = false;
      spec.token_pos = info.occurrences.front().first;
      spec.field = info.occurrences.front().second;
    }
    rule_->test_aggregates.push_back(spec);
    return static_cast<int>(rule_->test_aggregates.size()) - 1;
  }

  Status ValidateRhs() {
    RhsScope scope;
    // `bind` scoping is firing-wide (a rebind inside foreach persists), so
    // collect all bind targets up front; use-before-bind is caught at run
    // time as an unbound local.
    CollectBinds(rule_->ast.actions, &scope);
    return ValidateActions(rule_->ast.actions, &scope);
  }

  void CollectBinds(const std::vector<ActionPtr>& actions, RhsScope* scope) {
    for (const ActionPtr& a : actions) {
      if (a->kind == Action::Kind::kBind) scope->locals.insert(a->var);
      CollectBinds(a->body, scope);
      CollectBinds(a->else_body, scope);
    }
  }

  Status ValidateActions(const std::vector<ActionPtr>& actions,
                         RhsScope* scope) {
    for (const ActionPtr& a : actions) {
      SOREL_RETURN_IF_ERROR(ValidateAction(*a, scope));
    }
    return Status::Ok();
  }

  Status ValidateAction(Action& a, RhsScope* scope) {
    switch (a.kind) {
      case Action::Kind::kMake: {
        SymbolId cls = symbols_->Intern(a.cls);
        const ClassSchema* schema = schemas_->Find(cls);
        if (schema == nullptr) {
          return Err(a.loc, "make: class '" + a.cls + "' never literalized");
        }
        return ValidateAssigns(a, *schema, scope);
      }
      case Action::Kind::kModify:
      case Action::Kind::kRemove: {
        if (a.kind == Action::Kind::kRemove && a.var.empty()) {
          return ValidateRemoveOrdinal(a);
        }
        const VarInfo* info = rule_->FindVar(a.var);
        if (info == nullptr || info->kind != VarInfo::Kind::kElement) {
          return Err(a.loc, "target of modify/remove must be an element "
                            "variable bound with { ce <var> }");
        }
        if (info->set_oriented &&
            scope->fixed_positions.count(info->elem_token_pos) == 0) {
          return Err(a.loc, "element variable <" + a.var +
                                "> is set-oriented; use set-modify/"
                                "set-remove or a foreach over it");
        }
        if (a.kind == Action::Kind::kModify) {
          const ClassSchema* schema =
              SchemaOfTokenPos(info->elem_token_pos);
          return ValidateAssigns(a, *schema, scope);
        }
        return Status::Ok();
      }
      case Action::Kind::kSetModify:
      case Action::Kind::kSetRemove: {
        const VarInfo* info = rule_->FindVar(a.var);
        if (info == nullptr || info->kind != VarInfo::Kind::kElement ||
            !info->set_oriented) {
          return Err(a.loc, "target of set-modify/set-remove must be the "
                            "element variable of a set-oriented CE");
        }
        if (a.kind == Action::Kind::kSetModify) {
          const ClassSchema* schema =
              SchemaOfTokenPos(info->elem_token_pos);
          return ValidateAssigns(a, *schema, scope);
        }
        return Status::Ok();
      }
      case Action::Kind::kWrite: {
        for (ExprPtr& arg : a.write_args) {
          SOREL_RETURN_IF_ERROR(
              CompileExpr(arg.get(), /*in_test=*/false, scope));
        }
        return Status::Ok();
      }
      case Action::Kind::kBind: {
        const VarInfo* info = rule_->FindVar(a.var);
        if (info != nullptr) {
          return Err(a.loc, "bind target <" + a.var +
                                "> shadows an LHS variable");
        }
        return CompileExpr(a.expr.get(), /*in_test=*/false, scope);
      }
      case Action::Kind::kForeach: {
        const VarInfo* info = rule_->FindVar(a.var);
        if (info == nullptr) {
          return Err(a.loc, "foreach over unbound variable <" + a.var + ">");
        }
        if (!info->set_oriented) {
          return Err(a.loc, "foreach over non-set-oriented variable <" +
                                a.var + ">");
        }
        RhsScope inner = *scope;
        inner.fixed_vars.insert(a.var);
        if (info->kind == VarInfo::Kind::kElement) {
          inner.fixed_positions.insert(info->elem_token_pos);
        }
        return ValidateActions(a.body, &inner);
      }
      case Action::Kind::kIf: {
        SOREL_RETURN_IF_ERROR(
            CompileExpr(a.expr.get(), /*in_test=*/false, scope));
        SOREL_RETURN_IF_ERROR(ValidateActions(a.body, scope));
        return ValidateActions(a.else_body, scope);
      }
      case Action::Kind::kHalt:
        return Status::Ok();
    }
    return Status::Ok();
  }

  Status ValidateRemoveOrdinal(const Action& a) {
    int idx = a.remove_ordinal - 1;  // ordinals are 1-based
    if (idx < 0 || idx >= static_cast<int>(rule_->conditions.size())) {
      return Err(a.loc, "remove: condition ordinal out of range");
    }
    const CompiledCondition& cc = rule_->conditions[static_cast<size_t>(idx)];
    if (cc.negated) return Err(a.loc, "remove: cannot remove a negated CE");
    if (cc.set_oriented) {
      return Err(a.loc,
                 "remove: use set-remove for set-oriented CE ordinals");
    }
    return Status::Ok();
  }

  const ClassSchema* SchemaOfTokenPos(int token_pos) const {
    for (const CompiledCondition& cc : rule_->conditions) {
      if (cc.token_pos == token_pos) return cc.schema;
    }
    return nullptr;
  }

  Status ValidateAssigns(Action& a, const ClassSchema& schema,
                         const RhsScope* scope) {
    for (auto& [attr, expr] : a.assigns) {
      SymbolId id = symbols_->Intern(attr);
      if (schema.FieldOf(id) < 0) {
        return Err(a.loc, "class '" +
                              std::string(symbols_->Name(schema.cls())) +
                              "' has no attribute '" + attr + "'");
      }
      SOREL_RETURN_IF_ERROR(CompileExpr(expr.get(), /*in_test=*/false, scope));
    }
    return Status::Ok();
  }

  // ---------- join-key extraction ----------
  /// Separates each CE's join tests into the equality tests (the hash key
  /// of an indexed join memory) and the residual predicates. Equality on
  /// `Value` is exactly `EvalTestPred(kEq)` (numeric cross-kind equality
  /// included), so probing a hash bucket keyed on the equality fields is
  /// semantics-preserving.
  void SplitJoinTests() {
    for (CompiledCondition& cc : rule_->conditions) {
      for (const JoinTest& jt : cc.join_tests) {
        if (jt.pred == TestPred::kEq) {
          cc.eq_join_tests.push_back(jt);
        } else {
          cc.residual_join_tests.push_back(jt);
        }
      }
    }
  }

  // ---------- LEX specificity ----------
  void ComputeSpecificity() {
    int n = 0;
    for (const CompiledCondition& cc : rule_->conditions) {
      n += 1;  // the class test
      n += static_cast<int>(cc.const_tests.size() + cc.member_tests.size() +
                            cc.intra_tests.size() + cc.join_tests.size());
    }
    rule_->specificity = n;
  }

  SymbolTable* symbols_;
  SchemaRegistry* schemas_;
  CompiledRule* rule_ = nullptr;
  // CE indices of each value variable's binding occurrences (parallel to
  // VarInfo::occurrences), used to classify set-oriented variables.
  std::unordered_map<std::string, std::vector<int>> occurrence_ce_;
};

}  // namespace

Status RuleCompiler::DeclareLiteralize(const LiteralizeAst& lit) {
  std::vector<SymbolId> attrs;
  attrs.reserve(lit.attrs.size());
  for (const std::string& a : lit.attrs) attrs.push_back(symbols_->Intern(a));
  return schemas_->Declare(symbols_->Intern(lit.cls), std::move(attrs),
                           *symbols_);
}

Result<CompiledRulePtr> RuleCompiler::Compile(RuleAst rule) {
  return RuleAnalysis(symbols_, schemas_).Run(std::move(rule));
}

namespace {

/// Minimal validation/resolution for startup actions (no rule context).
class StartupAnalysis {
 public:
  StartupAnalysis(SymbolTable* symbols, SchemaRegistry* schemas)
      : symbols_(symbols), schemas_(schemas) {}

  Status Run(std::vector<ActionPtr>* actions) {
    for (ActionPtr& action : *actions) {
      SOREL_RETURN_IF_ERROR(Validate(action.get()));
    }
    return Status::Ok();
  }

 private:
  static Status Err(SourceLoc loc, std::string msg) {
    return Status::CompileError("startup (line " + std::to_string(loc.line) +
                                "): " + std::move(msg));
  }

  Status ResolveExpr(Expr* e) {
    if (e == nullptr) return Status::Ok();
    switch (e->kind) {
      case Expr::Kind::kConst:
        if (!e->var.empty()) {
          e->constant = e->var == "nil"
                            ? Value::Nil()
                            : Value::Symbol(symbols_->Intern(e->var));
        }
        return Status::Ok();
      case Expr::Kind::kVar:
        if (locals_.count(e->var) == 0) {
          return Err(e->loc, "unbound variable <" + e->var + ">");
        }
        return Status::Ok();
      case Expr::Kind::kAggregate:
        return Err(e->loc, "aggregates are not allowed in startup");
      case Expr::Kind::kCrlf:
        return Status::Ok();
      case Expr::Kind::kNot:
        return ResolveExpr(e->lhs.get());
      case Expr::Kind::kBinary:
        SOREL_RETURN_IF_ERROR(ResolveExpr(e->lhs.get()));
        return ResolveExpr(e->rhs.get());
    }
    return Status::Ok();
  }

  Status Validate(Action* a) {
    switch (a->kind) {
      case Action::Kind::kMake: {
        const ClassSchema* schema = schemas_->Find(symbols_->Intern(a->cls));
        if (schema == nullptr) {
          return Err(a->loc, "class '" + a->cls + "' never literalized");
        }
        for (auto& [attr, expr] : a->assigns) {
          if (schema->FieldOf(symbols_->Intern(attr)) < 0) {
            return Err(a->loc, "class '" + a->cls + "' has no attribute '" +
                                   attr + "'");
          }
          SOREL_RETURN_IF_ERROR(ResolveExpr(expr.get()));
        }
        return Status::Ok();
      }
      case Action::Kind::kWrite:
        for (ExprPtr& arg : a->write_args) {
          SOREL_RETURN_IF_ERROR(ResolveExpr(arg.get()));
        }
        return Status::Ok();
      case Action::Kind::kBind:
        SOREL_RETURN_IF_ERROR(ResolveExpr(a->expr.get()));
        locals_.insert(a->var);
        return Status::Ok();
      case Action::Kind::kIf: {
        SOREL_RETURN_IF_ERROR(ResolveExpr(a->expr.get()));
        for (ActionPtr& sub : a->body) SOREL_RETURN_IF_ERROR(Validate(sub.get()));
        for (ActionPtr& sub : a->else_body) {
          SOREL_RETURN_IF_ERROR(Validate(sub.get()));
        }
        return Status::Ok();
      }
      case Action::Kind::kHalt:
        return Status::Ok();
      default:
        return Err(a->loc,
                   "only make/write/bind/if/halt are allowed in startup");
    }
  }

  SymbolTable* symbols_;
  SchemaRegistry* schemas_;
  std::unordered_set<std::string> locals_;
};

}  // namespace

Status RuleCompiler::CompileStartup(std::vector<ActionPtr>* actions) {
  return StartupAnalysis(symbols_, schemas_).Run(actions);
}

}  // namespace sorel
