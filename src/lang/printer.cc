#include "lang/printer.h"

namespace sorel {

namespace {

std::string_view BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kMod:
      return "mod";
    case BinOp::kEq:
      return "==";
    case BinOp::kNe:
      return "<>";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "and";
    case BinOp::kOr:
      return "or";
  }
  return "?";
}

std::string Indent(int n) { return std::string(static_cast<size_t>(n), ' '); }

}  // namespace

std::string AstPrinter::PrintConst(const Value& value,
                                   const std::string& text) const {
  if (!text.empty()) return text;  // parser-stashed symbol text
  return value.ToString(*symbols_);
}

std::string AstPrinter::PrintTerm(const TestTerm& term) const {
  if (term.kind == TestTerm::Kind::kVar) return "<" + term.var + ">";
  return PrintConst(term.constant, term.var);
}

std::string AstPrinter::PrintAttrTest(const AttrTest& test) const {
  std::string out = "^" + test.attr + " ";
  if (test.kind == AttrTest::Kind::kDisjunction) {
    out += "<<";
    for (size_t i = 0; i < test.disjunction.size(); ++i) {
      out += " " + PrintConst(test.disjunction[i], test.disjunction_texts[i]);
    }
    out += " >>";
    return out;
  }
  auto atom = [this](const std::pair<TestPred, TestTerm>& a) {
    std::string s;
    if (a.first != TestPred::kEq) {
      s += TestPredName(a.first);
      s += " ";
    }
    s += PrintTerm(a.second);
    return s;
  };
  if (test.atoms.size() == 1) return out + atom(test.atoms.front());
  out += "{";
  for (const auto& a : test.atoms) out += " " + atom(a);
  out += " }";
  return out;
}

std::string AstPrinter::PrintCondition(const ConditionAst& ce) const {
  std::string inner;
  inner += ce.set_oriented ? "[" : "(";
  inner += ce.cls;
  for (const AttrTest& test : ce.attrs) inner += " " + PrintAttrTest(test);
  inner += ce.set_oriented ? "]" : ")";
  std::string out;
  if (ce.negated) out += "- ";
  if (!ce.elem_var.empty()) {
    out += "{ " + inner + " <" + ce.elem_var + "> }";
  } else {
    out += inner;
  }
  return out;
}

std::string AstPrinter::PrintExpr(const Expr& e) const {
  switch (e.kind) {
    case Expr::Kind::kConst:
      return PrintConst(e.constant, e.var);
    case Expr::Kind::kVar:
      return "<" + e.var + ">";
    case Expr::Kind::kAggregate:
      return "(" + std::string(AggOpName(e.agg_op)) + " <" + e.var + ">)";
    case Expr::Kind::kCrlf:
      return "(crlf)";
    case Expr::Kind::kNot:
      return "(not " + PrintExpr(*e.lhs) + ")";
    case Expr::Kind::kBinary:
      return "(" + PrintExpr(*e.lhs) + " " + std::string(BinOpName(e.bin_op)) +
             " " + PrintExpr(*e.rhs) + ")";
  }
  return "?";
}

std::string AstPrinter::PrintActions(const std::vector<ActionPtr>& actions,
                                     int indent) const {
  std::string out;
  for (const ActionPtr& action : actions) {
    out += "\n" + Indent(indent) + PrintAction(*action, indent);
  }
  return out;
}

std::string AstPrinter::PrintAction(const Action& action, int indent) const {
  switch (action.kind) {
    case Action::Kind::kMake:
    case Action::Kind::kModify:
    case Action::Kind::kSetModify: {
      std::string out = "(";
      out += action.kind == Action::Kind::kMake
                 ? "make " + action.cls
                 : (action.kind == Action::Kind::kModify ? "modify <"
                                                         : "set-modify <") +
                       action.var + ">";
      for (const auto& [attr, expr] : action.assigns) {
        out += " ^" + attr + " " + PrintExpr(*expr);
      }
      return out + ")";
    }
    case Action::Kind::kRemove:
      if (action.var.empty()) {
        return "(remove " + std::to_string(action.remove_ordinal) + ")";
      }
      return "(remove <" + action.var + ">)";
    case Action::Kind::kSetRemove:
      return "(set-remove <" + action.var + ">)";
    case Action::Kind::kWrite: {
      std::string out = "(write";
      for (const ExprPtr& arg : action.write_args) {
        out += " " + PrintExpr(*arg);
      }
      return out + ")";
    }
    case Action::Kind::kBind:
      return "(bind <" + action.var + "> " + PrintExpr(*action.expr) + ")";
    case Action::Kind::kForeach: {
      std::string out = "(foreach <" + action.var + ">";
      if (action.order == Action::Order::kAscending) out += " ascending";
      if (action.order == Action::Order::kDescending) out += " descending";
      out += PrintActions(action.body, indent + 2);
      return out + ")";
    }
    case Action::Kind::kIf: {
      std::string out = "(if " + PrintExpr(*action.expr);
      out += PrintActions(action.body, indent + 2);
      if (!action.else_body.empty()) {
        out += "\n" + Indent(indent + 1) + "else";
        out += PrintActions(action.else_body, indent + 2);
      }
      return out + ")";
    }
    case Action::Kind::kHalt:
      return "(halt)";
  }
  return "?";
}

std::string AstPrinter::PrintRule(const RuleAst& rule) const {
  std::string out = "(p " + rule.name;
  for (const ConditionAst& ce : rule.conditions) {
    out += "\n   " + PrintCondition(ce);
  }
  if (!rule.scalar_vars.empty()) {
    out += "\n   :scalar (";
    for (size_t i = 0; i < rule.scalar_vars.size(); ++i) {
      if (i > 0) out += " ";
      out += "<" + rule.scalar_vars[i] + ">";
    }
    out += ")";
  }
  if (rule.test != nullptr) {
    out += "\n   :test " + PrintExpr(*rule.test);
  }
  out += "\n   -->";
  out += PrintActions(rule.actions, 3);
  return out + ")";
}

std::string AstPrinter::PrintLiteralize(const LiteralizeAst& lit) const {
  std::string out = "(literalize " + lit.cls;
  for (const std::string& attr : lit.attrs) out += " " + attr;
  return out + ")";
}

std::string AstPrinter::PrintProgram(const ProgramAst& program) const {
  std::string out;
  for (const LiteralizeAst& lit : program.literalizes) {
    out += PrintLiteralize(lit) + "\n";
  }
  for (const RuleAst& rule : program.rules) {
    out += PrintRule(rule) + "\n";
  }
  return out;
}

}  // namespace sorel
