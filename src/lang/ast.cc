#include "lang/ast.h"

namespace sorel {

std::string_view TestPredName(TestPred pred) {
  switch (pred) {
    case TestPred::kEq:
      return "=";
    case TestPred::kNe:
      return "<>";
    case TestPred::kLt:
      return "<";
    case TestPred::kLe:
      return "<=";
    case TestPred::kGt:
      return ">";
    case TestPred::kGe:
      return ">=";
  }
  return "?";
}

bool EvalTestPred(TestPred pred, const Value& a, const Value& b) {
  switch (pred) {
    case TestPred::kEq:
      return a == b;
    case TestPred::kNe:
      return a != b;
    default:
      break;
  }
  if (!a.is_number() || !b.is_number()) return false;
  double da = a.AsDouble(), db = b.AsDouble();
  switch (pred) {
    case TestPred::kLt:
      return da < db;
    case TestPred::kLe:
      return da <= db;
    case TestPred::kGt:
      return da > db;
    case TestPred::kGe:
      return da >= db;
    default:
      return false;
  }
}

std::string_view AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kCount:
      return "count";
    case AggOp::kMin:
      return "min";
    case AggOp::kMax:
      return "max";
    case AggOp::kSum:
      return "sum";
    case AggOp::kAvg:
      return "avg";
  }
  return "?";
}

ExprPtr Expr::Const(Value v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kConst;
  e->constant = v;
  e->loc = loc;
  return e;
}

ExprPtr Expr::Var(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kVar;
  e->var = std::move(name);
  e->loc = loc;
  return e;
}

ExprPtr Expr::Aggregate(AggOp op, std::string var, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAggregate;
  e->agg_op = op;
  e->var = std::move(var);
  e->loc = loc;
  return e;
}

ExprPtr Expr::Binary(BinOp op, ExprPtr l, ExprPtr r, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->bin_op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  e->loc = loc;
  return e;
}

ExprPtr Expr::Not(ExprPtr operand, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kNot;
  e->lhs = std::move(operand);
  e->loc = loc;
  return e;
}

ExprPtr Expr::Crlf(SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCrlf;
  e->loc = loc;
  return e;
}

}  // namespace sorel
