#ifndef SOREL_LANG_PRINTER_H_
#define SOREL_LANG_PRINTER_H_

#include <string>

#include "base/symbol_table.h"
#include "lang/ast.h"

namespace sorel {

/// Renders AST nodes back to rule-language source. Round-trip property:
/// `Parse(Print(ast))` is structurally identical to `ast` (used by the
/// parser round-trip tests and the shell's `rules` command).
///
/// Interned symbol constants are printed via `symbols`; constants that are
/// still carrying parser-stashed text print that text directly, so printing
/// works both before and after compilation.
class AstPrinter {
 public:
  explicit AstPrinter(const SymbolTable* symbols) : symbols_(symbols) {}

  std::string PrintProgram(const ProgramAst& program) const;
  std::string PrintLiteralize(const LiteralizeAst& lit) const;
  std::string PrintRule(const RuleAst& rule) const;
  std::string PrintCondition(const ConditionAst& ce) const;
  std::string PrintAction(const Action& action, int indent = 2) const;
  std::string PrintExpr(const Expr& e) const;

 private:
  std::string PrintConst(const Value& value, const std::string& text) const;
  std::string PrintTerm(const TestTerm& term) const;
  std::string PrintAttrTest(const AttrTest& test) const;
  std::string PrintActions(const std::vector<ActionPtr>& actions,
                           int indent) const;

  const SymbolTable* symbols_;
};

}  // namespace sorel

#endif  // SOREL_LANG_PRINTER_H_
