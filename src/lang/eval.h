#ifndef SOREL_LANG_EVAL_H_
#define SOREL_LANG_EVAL_H_

#include <string>

#include "base/status.h"
#include "base/value.h"
#include "lang/ast.h"

namespace sorel {

/// Name resolution environment for expression evaluation. Implemented by
/// the S-node (for `:test`, §5) and the RHS executor (for actions, §6).
class EvalContext {
 public:
  virtual ~EvalContext() = default;

  /// Scalar value of variable `name` in the current context.
  virtual Result<Value> ResolveVar(const std::string& name) const = 0;

  /// Value of an aggregate expression (`agg.kind == kAggregate`).
  virtual Result<Value> EvalAggregate(const Expr& agg) const = 0;
};

/// Evaluates `e` under `ctx`. Comparison results are the symbols
/// true/false; `and`/`or`/`not` treat exactly the symbol `true` as truthy.
/// Arithmetic stays integral when both operands are integers (except `/`
/// by zero and `mod` on non-integers, which are errors).
Result<Value> EvalExpr(const Expr& e, const EvalContext& ctx);

}  // namespace sorel

#endif  // SOREL_LANG_EVAL_H_
