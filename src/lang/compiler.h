#ifndef SOREL_LANG_COMPILER_H_
#define SOREL_LANG_COMPILER_H_

#include "base/status.h"
#include "base/symbol_table.h"
#include "lang/ast.h"
#include "lang/compiled_rule.h"
#include "wm/schema.h"

namespace sorel {

/// Semantic analysis: resolves classes/attributes against `literalize`
/// declarations, classifies pattern variables as scalar vs set-oriented
/// (§4.1), derives alpha/intra/join tests, the SOI partition key (the
/// paper's C and P), the aggregate specs (APVs/ACEs), and validates the RHS
/// including `foreach` scoping rules (§6).
class RuleCompiler {
 public:
  RuleCompiler(SymbolTable* symbols, SchemaRegistry* schemas)
      : symbols_(symbols), schemas_(schemas) {}

  /// Registers a `(literalize ...)` declaration.
  Status DeclareLiteralize(const LiteralizeAst& lit);

  /// Compiles one rule. Takes ownership of the AST.
  Result<CompiledRulePtr> Compile(RuleAst rule);

  /// Validates and resolves the actions of a `(startup ...)` form. Only
  /// make / write / bind / if / halt are allowed (there is no matched
  /// instantiation to reference).
  Status CompileStartup(std::vector<ActionPtr>* actions);

 private:
  SymbolTable* symbols_;
  SchemaRegistry* schemas_;
};

}  // namespace sorel

#endif  // SOREL_LANG_COMPILER_H_
