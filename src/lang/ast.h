#ifndef SOREL_LANG_AST_H_
#define SOREL_LANG_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/value.h"

namespace sorel {

/// Position inside a rule source buffer (1-based).
struct SourceLoc {
  int line = 0;
  int column = 0;
};

/// Comparison predicates usable inside LHS attribute tests.
enum class TestPred { kEq, kNe, kLt, kLe, kGt, kGe };

/// Returns the surface syntax of `pred` ("=", "<>", ...).
std::string_view TestPredName(TestPred pred);

/// Evaluates `a pred b` with OPS5 matching semantics: equality/inequality
/// across any kinds (numbers compare numerically), relational predicates
/// defined only between two numbers (false otherwise).
bool EvalTestPred(TestPred pred, const Value& a, const Value& b);

/// Binary operators in `:test` / RHS expressions.
enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

/// Aggregate operators of §4.2 (the SQL five).
enum class AggOp { kCount, kMin, kMax, kSum, kAvg };

/// Returns "count", "min", ...
std::string_view AggOpName(AggOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression AST shared by `:test`, `bind`, `if`, `write` arguments, and
/// RHS value terms.
struct Expr {
  enum class Kind {
    kConst,      // literal value
    kVar,        // <x>
    kAggregate,  // (count <x>) etc.
    kBinary,     // (a op b)
    kNot,        // (not a)
    kCrlf,       // (crlf), only meaningful inside write
  };

  Kind kind;
  SourceLoc loc;
  Value constant;    // kConst
  std::string var;   // kVar and kAggregate target
  AggOp agg_op = AggOp::kCount;  // kAggregate
  BinOp bin_op = BinOp::kAdd;    // kBinary
  ExprPtr lhs;       // kBinary / kNot operand
  ExprPtr rhs;       // kBinary
  /// Filled by the compiler for aggregates that appear in `:test`: index
  /// into CompiledRule::test_aggregates. -1 elsewhere.
  int agg_index = -1;

  static ExprPtr Const(Value v, SourceLoc loc = {});
  static ExprPtr Var(std::string name, SourceLoc loc = {});
  static ExprPtr Aggregate(AggOp op, std::string var, SourceLoc loc = {});
  static ExprPtr Binary(BinOp op, ExprPtr l, ExprPtr r, SourceLoc loc = {});
  static ExprPtr Not(ExprPtr operand, SourceLoc loc = {});
  static ExprPtr Crlf(SourceLoc loc = {});
};

/// One value test attached to an attribute: `pred term` where term is a
/// constant or a variable.
///
/// Symbol constants cannot be interned at parse time (the SymbolTable lives
/// in the engine), so for a symbolic constant the parser leaves
/// `constant == nil` and stashes the text in `var`; the compiler interns it.
/// The same convention applies to `Expr::kConst`.
struct TestTerm {
  enum class Kind { kConst, kVar };
  Kind kind = Kind::kConst;
  Value constant;
  std::string var;  // variable name, or stashed symbol-constant text
};

/// The tests written after one `^attr` inside a CE: either a conjunction of
/// predicate atoms (the common single equality test is a one-atom
/// conjunction) or a disjunction `<< a b c >>` of constants.
struct AttrTest {
  std::string attr;
  enum class Kind { kAtoms, kDisjunction };
  Kind kind = Kind::kAtoms;
  std::vector<std::pair<TestPred, TestTerm>> atoms;
  std::vector<Value> disjunction;
  /// Parallel to `disjunction`: non-empty entries are un-interned symbol
  /// constant texts (see TestTerm).
  std::vector<std::string> disjunction_texts;
  SourceLoc loc;
};

/// One condition element. `set_oriented` corresponds to the paper's square
/// brackets; `elem_var` to the `{ce <v>}` element-variable syntax.
struct ConditionAst {
  bool negated = false;
  bool set_oriented = false;
  std::string cls;
  std::vector<AttrTest> attrs;
  std::string elem_var;  // empty if none
  SourceLoc loc;
};

struct Action;
using ActionPtr = std::unique_ptr<Action>;

/// One RHS action. Which fields are meaningful depends on `kind`.
struct Action {
  enum class Kind {
    kMake,       // (make cls ^a v ...)
    kModify,     // (modify <e> ^a v ...)
    kRemove,     // (remove <e>) or (remove N)
    kSetModify,  // (set-modify <E> ^a v ...)      [§6, paper]
    kSetRemove,  // (set-remove <E>)               [§6, paper]
    kWrite,      // (write args...)
    kBind,       // (bind <x> expr)
    kForeach,    // (foreach <v> [ascending|descending] actions...)  [§6]
    kIf,         // (if (cond) actions... [else actions...])
    kHalt,       // (halt)
  };

  enum class Order { kDefault, kAscending, kDescending };

  Kind kind;
  SourceLoc loc;
  std::string cls;                   // kMake
  std::string var;                   // target of modify/remove/set-*/bind/foreach
  int remove_ordinal = -1;           // (remove N); -1 when a variable is used
  std::vector<std::pair<std::string, ExprPtr>> assigns;  // make/modify attrs
  ExprPtr expr;                      // bind value / if condition
  std::vector<ExprPtr> write_args;   // kWrite
  Order order = Order::kDefault;     // kForeach
  std::vector<ActionPtr> body;       // foreach body / if-then
  std::vector<ActionPtr> else_body;  // if-else
};

/// A parsed `(p name ...)` production.
struct RuleAst {
  std::string name;
  std::vector<ConditionAst> conditions;
  std::vector<std::string> scalar_vars;  // :scalar clause
  ExprPtr test;                          // :test clause, may be null
  std::vector<ActionPtr> actions;
  SourceLoc loc;
};

/// A parsed `(literalize cls attrs...)`.
struct LiteralizeAst {
  std::string cls;
  std::vector<std::string> attrs;
  SourceLoc loc;
};

/// A whole source buffer.
struct ProgramAst {
  std::vector<LiteralizeAst> literalizes;
  std::vector<RuleAst> rules;
  /// Actions from `(startup ...)` forms, executed once at load time.
  std::vector<ActionPtr> startup;
};

}  // namespace sorel

#endif  // SOREL_LANG_AST_H_
