#ifndef SOREL_LANG_LEXER_H_
#define SOREL_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "lang/ast.h"

namespace sorel {

/// Lexical token kinds of the sorel rule language (OPS5 syntax plus the
/// paper's set-oriented extensions).
enum class TokKind {
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [   set-oriented CE open
  kRBracket,  // ]
  kLBrace,    // {
  kRBrace,    // }
  kArrow,     // -->
  kSymbol,    // bare atom: player, make, +, -, and, :scalar ...
  kInt,       // 42
  kFloat,     // 4.5
  kVariable,  // <x>  (text carries "x")
  kAttr,      // ^name (text carries "name")
  kEq,        // = or ==
  kNe,        // <>
  kLt,        // <
  kLe,        // <=
  kGt,        // >
  kGe,        // >=
  kDLAngle,   // <<  disjunction open
  kDRAngle,   // >>  disjunction close
  kEnd,       // end of input
};

/// One lexical token.
struct Tok {
  TokKind kind;
  std::string text;    // symbol / variable / attribute name
  int64_t int_value = 0;
  double float_value = 0;
  SourceLoc loc;
};

/// Tokenizes rule source. Comments run from `;` to end of line. Symbols may
/// be quoted with `|...|` (OPS5 style) or `"..."`.
Result<std::vector<Tok>> Lex(std::string_view source);

}  // namespace sorel

#endif  // SOREL_LANG_LEXER_H_
