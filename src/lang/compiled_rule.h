#ifndef SOREL_LANG_COMPILED_RULE_H_
#define SOREL_LANG_COMPILED_RULE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/symbol_table.h"
#include "base/value.h"
#include "lang/ast.h"
#include "wm/schema.h"
#include "wm/wme.h"

namespace sorel {

/// Alpha-level test: `field pred constant`.
struct ConstantTest {
  int field;
  TestPred pred;
  Value value;
};

/// Alpha-level membership test from `<< a b c >>`.
struct MemberTest {
  int field;
  std::vector<Value> values;
};

/// Intra-CE variable consistency: `field pred other_field` within one WME.
struct IntraTest {
  int field;
  TestPred pred;
  int other_field;
};

/// Join test against an earlier positive CE:
/// `wme.field pred token[other_token_pos].field(other_field)`.
struct JoinTest {
  int field;
  TestPred pred;
  int other_token_pos;
  int other_field;
};

/// A fully resolved condition element.
struct CompiledCondition {
  bool negated = false;
  bool set_oriented = false;
  SymbolId cls = kInvalidSymbol;
  const ClassSchema* schema = nullptr;
  std::vector<ConstantTest> const_tests;
  std::vector<MemberTest> member_tests;
  std::vector<IntraTest> intra_tests;
  std::vector<JoinTest> join_tests;
  /// `join_tests` split by predicate kind (filled after condition
  /// compilation): the equality tests form the hash key of the matcher's
  /// indexed join memories, the rest are evaluated as residual predicates
  /// on each bucket candidate.
  std::vector<JoinTest> eq_join_tests;
  std::vector<JoinTest> residual_join_tests;
  /// Index among the rule's positive CEs (what tokens and instantiation rows
  /// are indexed by); -1 for negated CEs.
  int token_pos = -1;
  /// Index in RuleAst::conditions.
  int ce_index = 0;
};

/// How a pattern variable is classified after analysis (§4.1).
struct VarInfo {
  enum class Kind { kValue, kElement };

  std::string name;
  Kind kind = Kind::kValue;
  /// True if the variable is set-oriented: all occurrences are in
  /// set-oriented CEs and it is not listed in `:scalar`.
  bool set_oriented = false;
  /// All (token_pos, field) value occurrences in positive CEs, in CE order.
  /// Join tests already enforce that every row agrees across occurrences.
  std::vector<std::pair<int, int>> occurrences;
  /// For kElement: the token position of the CE it names.
  int elem_token_pos = -1;
  /// For kValue: true if listed in the `:scalar` clause.
  bool in_scalar_clause = false;
};

/// One aggregate occurring in the `:test` expression; the S-node maintains
/// incremental state per spec (the paper's APVs and ACEs).
struct AggregateSpec {
  AggOp op;
  std::string var;
  /// True when the target is a CE element variable (an "ACE"): the
  /// aggregated values are WME time tags.
  bool over_element = false;
  /// Value source for PV aggregates; for element aggregates only
  /// `token_pos` is meaningful.
  int token_pos = 0;
  int field = 0;
};

/// A production compiled against a schema registry and symbol table;
/// consumed by the Rete builder, the TREAT matcher, the DIPS translator,
/// and the RHS executor.
struct CompiledRule {
  std::string name;
  /// The rule AST; RHS actions and the raw test expression stay in AST form
  /// and are interpreted at fire time.
  RuleAst ast;
  std::vector<CompiledCondition> conditions;
  std::unordered_map<std::string, VarInfo> vars;
  /// Aggregates appearing in `:test`, deduplicated; Expr::agg_index points
  /// here.
  std::vector<AggregateSpec> test_aggregates;

  /// True if any CE is set-oriented (the rule needs an S-node).
  bool has_set = false;
  int num_positive = 0;
  /// SOI partition key, per Figure 3: token positions of the non-set
  /// positive CEs (the paper's C)...
  std::vector<int> key_token_positions;
  /// ...plus value sources of the `:scalar` variables (the paper's P).
  std::vector<std::pair<int, int>> key_scalars;

  /// LEX specificity: total number of tests in the LHS.
  int specificity = 0;

  const VarInfo* FindVar(const std::string& name) const {
    auto it = vars.find(name);
    return it == vars.end() ? nullptr : &it->second;
  }
};

using CompiledRulePtr = std::unique_ptr<CompiledRule>;

/// True if `wme` (already class-checked) passes `cond`'s intra-WME tests
/// (constants, disjunctions, same-WME variable consistency).
bool PassesAlphaTests(const CompiledCondition& cond, const Wme& wme);

/// Structural equality of alpha-level test lists — the "same tests" check
/// behind alpha-memory sharing (Rete), alpha-group sharing (plan), and
/// topology deduplication (CompiledRuleBase). Order-sensitive: conditions
/// compile their tests deterministically, so equal test sequences imply
/// identical acceptance behavior *and* identical sharing decisions.
bool SameConstantTests(const std::vector<ConstantTest>& a,
                       const std::vector<ConstantTest>& b);
bool SameMemberTests(const std::vector<MemberTest>& a,
                     const std::vector<MemberTest>& b);
bool SameIntraTests(const std::vector<IntraTest>& a,
                    const std::vector<IntraTest>& b);

/// True if `wme` passes `cond`'s join tests against `row` (indexed by token
/// position; referenced entries must be non-null).
bool PassesJoinTests(const CompiledCondition& cond,
                     const std::vector<WmePtr>& row, const Wme& wme);

}  // namespace sorel

#endif  // SOREL_LANG_COMPILED_RULE_H_
