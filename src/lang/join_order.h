#ifndef SOREL_LANG_JOIN_ORDER_H_
#define SOREL_LANG_JOIN_ORDER_H_

#include <vector>

#include "lang/compiled_rule.h"
#include "wm/wme.h"

namespace sorel {

/// Which condition-element order the match layer executes (see
/// docs/INTERNALS.md, "Join ordering & the plan matcher").
enum class JoinOrder {
  /// The program's textual CE order — OPS5's (and the paper's §5 network's)
  /// implicit join plan.
  kTextual,
  /// Greedy smallest-intermediate-first order over the CE join graph,
  /// constrained to follow equality-join connectivity. The plan matcher
  /// executes it directly; Rete/TREAT consume it as a CE pre-reordering
  /// pass at rule load (ReorderRuleInPlace).
  kOptimized,
};

/// Per-condition cardinality estimates, indexed like
/// CompiledRule::conditions. Estimates are row counts (>= 0); the optimizer
/// only compares them, so any consistent unit works.
using CardVec = std::vector<double>;

/// Counts, per CE, how many of `wms` pass the alpha tests — the exact
/// per-CE cardinality for the current working memory. When WM is empty
/// every estimate falls back to a static test-count heuristic (more
/// alpha tests => assumed more selective), so rule-load-time ordering is
/// still meaningful before any data arrives.
CardVec EstimateCards(const CompiledRule& rule,
                      const std::vector<WmePtr>& wms);

/// One edge of the CE join graph: an equality (or residual) join test
/// linking two conditions, expressed symmetrically. `a` is the condition
/// the test was compiled onto (the later textual CE), `b` the referenced
/// one; `a_field pred b_field`.
struct JoinEdge {
  int a = 0;
  int a_field = 0;
  TestPred pred = TestPred::kEq;
  int b = 0;
  int b_field = 0;
};

/// Flattens every join test of `rule` into condition-index pairs
/// (`other_token_pos` resolved back to the owning condition).
std::vector<JoinEdge> BuildJoinGraph(const CompiledRule& rule);

/// The `pred` for evaluating a JoinEdge with the roles of `a` and `b`
/// swapped (kLt <-> kGt, kLe <-> kGe; kEq/kNe are symmetric).
TestPred MirrorPred(TestPred pred);

struct JoinOrderResult {
  /// Every condition index, in execution order. Positive CEs follow the
  /// greedy plan; each negated CE is placed at the earliest step where all
  /// the positive CEs it references are bound.
  std::vector<int> order;
  /// Estimated intermediate row count after each step of `order` (negated
  /// steps repeat the previous estimate — they only filter).
  std::vector<double> est;
  /// True if `order` differs from the textual order.
  bool reordered = false;
};

/// Greedy smallest-intermediate-first ordering over the CE join graph:
/// start from the smallest-cardinality positive CE, then repeatedly take
/// the equality-connected candidate with the smallest estimated
/// intermediate (eq join of r and s rows estimates max(r, s); an
/// unconnected CE estimates the full cross product r * s and is only
/// chosen when no connected candidate exists). Ties fall back to textual
/// order, so equal estimates leave the program order untouched.
/// `seed_ce` >= 0 forces that positive CE first (the plan matcher's
/// seeded searches start from the changed WME, whose selectivity is 1).
JoinOrderResult OptimizeJoinOrder(const CompiledRule& rule,
                                  const CardVec& cards, int seed_ce = -1);

/// Permutes `rule`'s conditions into `order` in place, renumbering token
/// positions to the new chain order and re-homing every join test onto the
/// condition that now appears later (mirroring the predicate when the
/// original owner moved ahead of the CE it referenced). Variable
/// occurrence maps and element positions follow the renumbering, so the
/// RHS and conflict-set keys see a consistent rule. Must not be applied
/// to set-oriented rules (callers skip `has_set`).
void ReorderRuleInPlace(CompiledRule* rule, const std::vector<int>& order);

}  // namespace sorel

#endif  // SOREL_LANG_JOIN_ORDER_H_
