#include "lang/compiled_rule.h"

#include "wm/wme.h"

namespace sorel {

bool PassesAlphaTests(const CompiledCondition& cond, const Wme& wme) {
  for (const ConstantTest& t : cond.const_tests) {
    if (!EvalTestPred(t.pred, wme.field(t.field), t.value)) return false;
  }
  for (const MemberTest& t : cond.member_tests) {
    bool any = false;
    for (const Value& v : t.values) {
      if (wme.field(t.field) == v) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  for (const IntraTest& t : cond.intra_tests) {
    if (!EvalTestPred(t.pred, wme.field(t.field), wme.field(t.other_field))) {
      return false;
    }
  }
  return true;
}

bool PassesJoinTests(const CompiledCondition& cond,
                     const std::vector<WmePtr>& row, const Wme& wme) {
  for (const JoinTest& jt : cond.join_tests) {
    const WmePtr& other = row[static_cast<size_t>(jt.other_token_pos)];
    if (other == nullptr) return false;
    if (!EvalTestPred(jt.pred, wme.field(jt.field),
                      other->field(jt.other_field))) {
      return false;
    }
  }
  return true;
}

}  // namespace sorel
