#include "lang/compiled_rule.h"

#include "wm/wme.h"

namespace sorel {

bool PassesAlphaTests(const CompiledCondition& cond, const Wme& wme) {
  for (const ConstantTest& t : cond.const_tests) {
    if (!EvalTestPred(t.pred, wme.field(t.field), t.value)) return false;
  }
  for (const MemberTest& t : cond.member_tests) {
    bool any = false;
    for (const Value& v : t.values) {
      if (wme.field(t.field) == v) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  for (const IntraTest& t : cond.intra_tests) {
    if (!EvalTestPred(t.pred, wme.field(t.field), wme.field(t.other_field))) {
      return false;
    }
  }
  return true;
}

bool SameConstantTests(const std::vector<ConstantTest>& a,
                       const std::vector<ConstantTest>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].field != b[i].field || a[i].pred != b[i].pred ||
        !(a[i].value == b[i].value)) {
      return false;
    }
  }
  return true;
}

bool SameMemberTests(const std::vector<MemberTest>& a,
                     const std::vector<MemberTest>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].field != b[i].field || a[i].values.size() != b[i].values.size()) {
      return false;
    }
    for (size_t k = 0; k < a[i].values.size(); ++k) {
      if (!(a[i].values[k] == b[i].values[k])) return false;
    }
  }
  return true;
}

bool SameIntraTests(const std::vector<IntraTest>& a,
                    const std::vector<IntraTest>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].field != b[i].field || a[i].pred != b[i].pred ||
        a[i].other_field != b[i].other_field) {
      return false;
    }
  }
  return true;
}

bool PassesJoinTests(const CompiledCondition& cond,
                     const std::vector<WmePtr>& row, const Wme& wme) {
  for (const JoinTest& jt : cond.join_tests) {
    const WmePtr& other = row[static_cast<size_t>(jt.other_token_pos)];
    if (other == nullptr) return false;
    if (!EvalTestPred(jt.pred, wme.field(jt.field),
                      other->field(jt.other_field))) {
      return false;
    }
  }
  return true;
}

}  // namespace sorel
