#include "lang/parser.h"

#include <optional>
#include <utility>
#include <vector>

#include "lang/lexer.h"

namespace sorel {

namespace {

// The parser builds values before symbol interning happens (interning needs
// the engine's SymbolTable), so constants are carried as "pre-values": the
// compiler interns symbol texts later. To keep the AST simple we intern
// symbol constants into a parse-local table and re-intern in the compiler.
// Instead, we store symbol constants as Value::Symbol over a *string pool*
// owned by the ProgramAst... To avoid that machinery the parser receives a
// SymbolTable-free design: symbol constants are kept in `TestTerm::var`-like
// string form. Simpler: the Lexer gives us text; we encode symbol constants
// as Value only at compile time. The AST therefore stores constants of
// symbol kind using a sidecar string in TestTerm / Expr.
//
// Implementation choice: we give the parser its own little trick — symbol
// constants are represented as Expr/TestTerm with `kind kConst` and the
// *text* stashed in the `var` field with `constant == Value::Nil()`, except
// for numbers which are real Values. A cleaner representation would thread
// the SymbolTable into the parser; the compiler handles both cases via
// `ResolveConst`.
//
// To keep that contract in one place:
Value NumberValue(const Tok& t) {
  return t.kind == TokKind::kInt ? Value::Int(t.int_value)
                                 : Value::Float(t.float_value);
}

class Parser {
 public:
  explicit Parser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<ProgramAst> Run() {
    ProgramAst program;
    while (!Check(TokKind::kEnd)) {
      SOREL_RETURN_IF_ERROR(Expect(TokKind::kLParen, "top-level form"));
      const Tok& head = PeekTok();
      if (head.kind != TokKind::kSymbol) {
        return Error(head, "expected 'literalize' or 'p'");
      }
      if (head.text == "literalize") {
        Advance();
        SOREL_RETURN_IF_ERROR(ParseLiteralize(&program));
      } else if (head.text == "p") {
        Advance();
        RuleAst rule;
        SOREL_RETURN_IF_ERROR(ParseRule(&rule));
        program.rules.push_back(std::move(rule));
      } else if (head.text == "startup") {
        Advance();
        while (!Check(TokKind::kRParen)) {
          if (Check(TokKind::kEnd)) return Error(head, "unclosed startup");
          SOREL_RETURN_IF_ERROR(ParseAction(&program.startup));
        }
        Advance();  // ')'
      } else {
        return Error(head, "unknown top-level form '" + head.text + "'");
      }
    }
    return program;
  }

 private:
  // ---- token plumbing ----
  const Tok& PeekTok(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool Check(TokKind k) const { return PeekTok().kind == k; }
  bool CheckSymbol(std::string_view text) const {
    return Check(TokKind::kSymbol) && PeekTok().text == text;
  }
  const Tok& Advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  Status Expect(TokKind k, std::string_view what) {
    if (!Check(k)) {
      return Error(PeekTok(), "expected " + std::string(what));
    }
    Advance();
    return Status::Ok();
  }
  static Status Error(const Tok& tok, std::string msg) {
    return Status::ParseError("line " + std::to_string(tok.loc.line) + ":" +
                              std::to_string(tok.loc.column) + ": " +
                              std::move(msg));
  }

  // ---- forms ----
  Status ParseLiteralize(ProgramAst* program) {
    LiteralizeAst lit;
    lit.loc = PeekTok().loc;
    if (!Check(TokKind::kSymbol)) {
      return Error(PeekTok(), "expected class name after literalize");
    }
    lit.cls = Advance().text;
    while (Check(TokKind::kSymbol)) lit.attrs.push_back(Advance().text);
    SOREL_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')' after literalize"));
    program->literalizes.push_back(std::move(lit));
    return Status::Ok();
  }

  Status ParseRule(RuleAst* rule) {
    rule->loc = PeekTok().loc;
    if (!Check(TokKind::kSymbol)) {
      return Error(PeekTok(), "expected rule name after 'p'");
    }
    rule->name = Advance().text;
    // Condition elements and clauses until '-->'.
    while (!Check(TokKind::kArrow)) {
      if (Check(TokKind::kEnd)) return Error(PeekTok(), "missing '-->'");
      if (CheckSymbol(":scalar")) {
        Advance();
        SOREL_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'(' after :scalar"));
        while (Check(TokKind::kVariable)) {
          rule->scalar_vars.push_back(Advance().text);
        }
        SOREL_RETURN_IF_ERROR(
            Expect(TokKind::kRParen, "')' closing :scalar list"));
        continue;
      }
      if (CheckSymbol(":test")) {
        Advance();
        ExprPtr test;
        SOREL_RETURN_IF_ERROR(ParseExprTerm(&test));
        if (rule->test == nullptr) {
          rule->test = std::move(test);
        } else {
          SourceLoc loc = rule->test->loc;
          rule->test = Expr::Binary(BinOp::kAnd, std::move(rule->test),
                                    std::move(test), loc);
        }
        continue;
      }
      ConditionAst ce;
      SOREL_RETURN_IF_ERROR(ParseCondition(&ce));
      rule->conditions.push_back(std::move(ce));
    }
    Advance();  // -->
    while (!Check(TokKind::kRParen)) {
      if (Check(TokKind::kEnd)) return Error(PeekTok(), "missing ')'");
      SOREL_RETURN_IF_ERROR(ParseAction(&rule->actions));
    }
    Advance();  // ')'
    return Status::Ok();
  }

  // ---- condition elements ----
  Status ParseCondition(ConditionAst* ce) {
    ce->loc = PeekTok().loc;
    if (CheckSymbol("-")) {
      Advance();
      ce->negated = true;
    }
    if (Check(TokKind::kLBrace)) {
      // { ce <var> }  or  { <var> ce }
      Advance();
      if (Check(TokKind::kVariable)) {
        ce->elem_var = Advance().text;
        SOREL_RETURN_IF_ERROR(ParseBareCondition(ce));
      } else {
        SOREL_RETURN_IF_ERROR(ParseBareCondition(ce));
        if (!Check(TokKind::kVariable)) {
          return Error(PeekTok(), "expected element variable inside { ... }");
        }
        ce->elem_var = Advance().text;
      }
      return Expect(TokKind::kRBrace, "'}' closing element-variable CE");
    }
    return ParseBareCondition(ce);
  }

  Status ParseBareCondition(ConditionAst* ce) {
    TokKind close;
    if (Check(TokKind::kLParen)) {
      close = TokKind::kRParen;
    } else if (Check(TokKind::kLBracket)) {
      ce->set_oriented = true;
      close = TokKind::kRBracket;
    } else {
      return Error(PeekTok(), "expected '(' or '[' starting condition");
    }
    Advance();
    if (!Check(TokKind::kSymbol)) {
      return Error(PeekTok(), "expected class name in condition");
    }
    ce->cls = Advance().text;
    while (!Check(close)) {
      if (Check(TokKind::kEnd)) return Error(PeekTok(), "unclosed condition");
      AttrTest at;
      at.loc = PeekTok().loc;
      if (!Check(TokKind::kAttr)) {
        return Error(PeekTok(), "expected ^attribute in condition");
      }
      at.attr = Advance().text;
      SOREL_RETURN_IF_ERROR(ParseValueSpec(&at));
      ce->attrs.push_back(std::move(at));
    }
    Advance();  // close
    return Status::Ok();
  }

  // Parses the test(s) following one ^attr.
  Status ParseValueSpec(AttrTest* at) {
    if (Check(TokKind::kDLAngle)) {
      Advance();
      at->kind = AttrTest::Kind::kDisjunction;
      while (!Check(TokKind::kDRAngle)) {
        if (Check(TokKind::kEnd)) {
          return Error(PeekTok(), "unterminated '<<' disjunction");
        }
        const Tok& t = PeekTok();
        std::optional<std::pair<TestPred, TestTerm>> atom;
        SOREL_RETURN_IF_ERROR(ParseTermAtom(&atom));
        if (!atom || atom->first != TestPred::kEq ||
            atom->second.kind != TestTerm::Kind::kConst) {
          return Error(t, "only constants allowed inside '<< ... >>'");
        }
        at->disjunction.push_back(atom->second.constant);
        // Symbol constants keep their text in `var` (see ResolveConst note):
        if (!atom->second.var.empty()) {
          at->disjunction_texts.push_back(atom->second.var);
        } else {
          at->disjunction_texts.emplace_back();
        }
      }
      Advance();  // >>
      return Status::Ok();
    }
    at->kind = AttrTest::Kind::kAtoms;
    if (Check(TokKind::kLBrace)) {
      Advance();
      while (!Check(TokKind::kRBrace)) {
        if (Check(TokKind::kEnd)) {
          return Error(PeekTok(), "unterminated '{' conjunction");
        }
        std::optional<std::pair<TestPred, TestTerm>> atom;
        SOREL_RETURN_IF_ERROR(ParseTermAtom(&atom));
        if (!atom) return Error(PeekTok(), "expected test inside '{ ... }'");
        at->atoms.push_back(std::move(*atom));
      }
      Advance();  // }
      return Status::Ok();
    }
    std::optional<std::pair<TestPred, TestTerm>> atom;
    SOREL_RETURN_IF_ERROR(ParseTermAtom(&atom));
    if (!atom) return Error(PeekTok(), "expected value test after ^attr");
    at->atoms.push_back(std::move(*atom));
    return Status::Ok();
  }

  // Parses one `[pred] term`. Yields nullopt if the current token cannot
  // start an atom (caller decides whether that is an error).
  Status ParseTermAtom(std::optional<std::pair<TestPred, TestTerm>>* out) {
    TestPred pred = TestPred::kEq;
    switch (PeekTok().kind) {
      case TokKind::kEq:
        pred = TestPred::kEq;
        Advance();
        break;
      case TokKind::kNe:
        pred = TestPred::kNe;
        Advance();
        break;
      case TokKind::kLt:
        pred = TestPred::kLt;
        Advance();
        break;
      case TokKind::kLe:
        pred = TestPred::kLe;
        Advance();
        break;
      case TokKind::kGt:
        pred = TestPred::kGt;
        Advance();
        break;
      case TokKind::kGe:
        pred = TestPred::kGe;
        Advance();
        break;
      default:
        break;
    }
    TestTerm term;
    const Tok& t = PeekTok();
    switch (t.kind) {
      case TokKind::kInt:
      case TokKind::kFloat:
        term.kind = TestTerm::Kind::kConst;
        term.constant = NumberValue(t);
        Advance();
        break;
      case TokKind::kSymbol:
        term.kind = TestTerm::Kind::kConst;
        term.constant = Value::Nil();  // symbol text resolved by compiler
        term.var = t.text;             // stashed text (see ResolveConst)
        Advance();
        break;
      case TokKind::kVariable:
        term.kind = TestTerm::Kind::kVar;
        term.var = t.text;
        Advance();
        break;
      default:
        out->reset();
        return Status::Ok();
    }
    *out = std::make_pair(pred, std::move(term));
    return Status::Ok();
  }

  // ---- actions ----
  Status ParseAction(std::vector<ActionPtr>* out) {
    SOREL_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'(' starting action"));
    const Tok& head = PeekTok();
    if (head.kind != TokKind::kSymbol) {
      return Error(head, "expected action name");
    }
    std::string name = head.text;
    SourceLoc loc = head.loc;
    Advance();
    auto action = std::make_unique<Action>();
    action->loc = loc;
    if (name == "make") {
      action->kind = Action::Kind::kMake;
      if (!Check(TokKind::kSymbol)) {
        return Error(PeekTok(), "expected class name in make");
      }
      action->cls = Advance().text;
      SOREL_RETURN_IF_ERROR(ParseAssignments(action.get()));
    } else if (name == "modify" || name == "set-modify") {
      action->kind = name == "modify" ? Action::Kind::kModify
                                      : Action::Kind::kSetModify;
      if (!Check(TokKind::kVariable)) {
        return Error(PeekTok(), "expected element variable in " + name);
      }
      action->var = Advance().text;
      SOREL_RETURN_IF_ERROR(ParseAssignments(action.get()));
    } else if (name == "remove" || name == "set-remove") {
      // (remove <e1> <e2> 3) expands to one action per target.
      Action::Kind kind = name == "remove" ? Action::Kind::kRemove
                                           : Action::Kind::kSetRemove;
      bool any = false;
      while (!Check(TokKind::kRParen)) {
        auto one = std::make_unique<Action>();
        one->kind = kind;
        one->loc = loc;
        if (Check(TokKind::kVariable)) {
          one->var = Advance().text;
        } else if (Check(TokKind::kInt) && kind == Action::Kind::kRemove) {
          one->remove_ordinal = static_cast<int>(Advance().int_value);
        } else {
          return Error(PeekTok(), "expected element variable in " + name);
        }
        out->push_back(std::move(one));
        any = true;
      }
      if (!any) return Error(PeekTok(), name + " needs a target");
      return Expect(TokKind::kRParen, "')' closing action");
    } else if (name == "write") {
      action->kind = Action::Kind::kWrite;
      while (!Check(TokKind::kRParen)) {
        if (Check(TokKind::kEnd)) return Error(PeekTok(), "unclosed write");
        ExprPtr arg;
        SOREL_RETURN_IF_ERROR(ParseExprTerm(&arg));
        action->write_args.push_back(std::move(arg));
      }
    } else if (name == "bind") {
      action->kind = Action::Kind::kBind;
      if (!Check(TokKind::kVariable)) {
        return Error(PeekTok(), "expected variable in bind");
      }
      action->var = Advance().text;
      SOREL_RETURN_IF_ERROR(ParseExprTerm(&action->expr));
    } else if (name == "foreach") {
      action->kind = Action::Kind::kForeach;
      if (!Check(TokKind::kVariable)) {
        return Error(PeekTok(), "expected iterator variable in foreach");
      }
      action->var = Advance().text;
      if (CheckSymbol("ascending")) {
        Advance();
        action->order = Action::Order::kAscending;
      } else if (CheckSymbol("descending")) {
        Advance();
        action->order = Action::Order::kDescending;
      }
      while (!Check(TokKind::kRParen)) {
        if (Check(TokKind::kEnd)) return Error(PeekTok(), "unclosed foreach");
        SOREL_RETURN_IF_ERROR(ParseAction(&action->body));
      }
    } else if (name == "if") {
      action->kind = Action::Kind::kIf;
      SOREL_RETURN_IF_ERROR(ParseExprTerm(&action->expr));
      bool in_else = false;
      while (!Check(TokKind::kRParen)) {
        if (Check(TokKind::kEnd)) return Error(PeekTok(), "unclosed if");
        if (CheckSymbol("else")) {
          if (in_else) return Error(PeekTok(), "duplicate else");
          Advance();
          in_else = true;
          continue;
        }
        SOREL_RETURN_IF_ERROR(
            ParseAction(in_else ? &action->else_body : &action->body));
      }
    } else if (name == "halt") {
      action->kind = Action::Kind::kHalt;
    } else {
      return Error(head, "unknown action '" + name + "'");
    }
    SOREL_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')' closing action"));
    out->push_back(std::move(action));
    return Status::Ok();
  }

  Status ParseAssignments(Action* action) {
    while (!Check(TokKind::kRParen)) {
      if (!Check(TokKind::kAttr)) {
        return Error(PeekTok(), "expected ^attribute in action");
      }
      std::string attr = Advance().text;
      ExprPtr value;
      SOREL_RETURN_IF_ERROR(ParseExprTerm(&value));
      action->assigns.emplace_back(std::move(attr), std::move(value));
    }
    return Status::Ok();
  }

  // ---- expressions ----
  // A "term": constant, variable, or parenthesized expression / aggregate /
  // (crlf) / (compute ...) / (not ...).
  Status ParseExprTerm(ExprPtr* out) {
    const Tok& t = PeekTok();
    switch (t.kind) {
      case TokKind::kInt:
      case TokKind::kFloat: {
        *out = Expr::Const(NumberValue(t), t.loc);
        Advance();
        return Status::Ok();
      }
      case TokKind::kSymbol: {
        // Symbol constant; text resolved by the compiler.
        auto e = Expr::Const(Value::Nil(), t.loc);
        e->var = t.text;
        *out = std::move(e);
        Advance();
        return Status::Ok();
      }
      case TokKind::kVariable:
        *out = Expr::Var(t.text, t.loc);
        Advance();
        return Status::Ok();
      case TokKind::kLParen:
        Advance();
        return ParseParenExpr(t.loc, out);
      default:
        return Error(t, "expected expression");
    }
  }

  static std::optional<AggOp> AggOpFromName(std::string_view name) {
    if (name == "count") return AggOp::kCount;
    if (name == "min") return AggOp::kMin;
    if (name == "max") return AggOp::kMax;
    if (name == "sum") return AggOp::kSum;
    if (name == "avg") return AggOp::kAvg;
    return std::nullopt;
  }

  // Binary operator at the cursor, if any.
  std::optional<BinOp> PeekBinOp() const {
    const Tok& t = PeekTok();
    switch (t.kind) {
      case TokKind::kEq:
        return BinOp::kEq;
      case TokKind::kNe:
        return BinOp::kNe;
      case TokKind::kLt:
        return BinOp::kLt;
      case TokKind::kLe:
        return BinOp::kLe;
      case TokKind::kGt:
        return BinOp::kGt;
      case TokKind::kGe:
        return BinOp::kGe;
      case TokKind::kSymbol:
        if (t.text == "+") return BinOp::kAdd;
        if (t.text == "-") return BinOp::kSub;
        if (t.text == "*") return BinOp::kMul;
        if (t.text == "/" || t.text == "//") return BinOp::kDiv;
        if (t.text == "mod" || t.text == "\\\\") return BinOp::kMod;
        if (t.text == "and") return BinOp::kAnd;
        if (t.text == "or") return BinOp::kOr;
        return std::nullopt;
      default:
        return std::nullopt;
    }
  }

  // Already consumed '('. Parses the inside and the closing ')'.
  Status ParseParenExpr(SourceLoc loc, ExprPtr* out) {
    if (CheckSymbol("crlf")) {
      Advance();
      *out = Expr::Crlf(loc);
      return Expect(TokKind::kRParen, "')' after crlf");
    }
    if (CheckSymbol("not")) {
      Advance();
      ExprPtr inner;
      SOREL_RETURN_IF_ERROR(ParseExprTerm(&inner));
      *out = Expr::Not(std::move(inner), loc);
      return Expect(TokKind::kRParen, "')' closing not");
    }
    if (CheckSymbol("compute")) {
      Advance();  // (compute a op b ...) — plain infix chain
    } else if (Check(TokKind::kSymbol) && AggOpFromName(PeekTok().text) &&
               PeekTok(1).kind == TokKind::kVariable) {
      AggOp op = *AggOpFromName(PeekTok().text);
      Advance();
      std::string var = Advance().text;
      *out = Expr::Aggregate(op, std::move(var), loc);
      return Expect(TokKind::kRParen, "')' closing aggregate");
    }
    // Infix chain: term (op term)*  — left-associative, no precedence
    // (parenthesize to group, as OPS5's `compute` does).
    ExprPtr acc;
    SOREL_RETURN_IF_ERROR(ParseExprTerm(&acc));
    while (!Check(TokKind::kRParen)) {
      std::optional<BinOp> op = PeekBinOp();
      if (!op) return Error(PeekTok(), "expected operator or ')'");
      Advance();
      ExprPtr rhs;
      SOREL_RETURN_IF_ERROR(ParseExprTerm(&rhs));
      acc = Expr::Binary(*op, std::move(acc), std::move(rhs), loc);
    }
    Advance();  // ')'
    *out = std::move(acc);
    return Status::Ok();
  }

  std::vector<Tok> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<ProgramAst> Parse(std::string_view source) {
  SOREL_ASSIGN_OR_RETURN(std::vector<Tok> toks, Lex(source));
  return Parser(std::move(toks)).Run();
}

}  // namespace sorel
