#ifndef SOREL_LANG_RULE_BASE_H_
#define SOREL_LANG_RULE_BASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/symbol_table.h"
#include "lang/ast.h"
#include "lang/compiled_rule.h"
#include "lang/join_order.h"
#include "wm/schema.h"
#include "wm/wme.h"

namespace sorel {

/// The immutable alpha-level signature of one condition element: the class
/// plus every intra-WME test. This is the *compiled-artifact* half of an
/// alpha memory — what used to be copied into each session's `AlphaMemory`
/// (and the plan matcher's alpha groups) now lives here, deduplicated, and
/// the per-session memories hold only a borrowed pointer plus their mutable
/// item storage.
///
/// Patterns are compared structurally when built (Matches), and by pointer
/// identity afterwards: two CEs share a pattern iff their tests are equal,
/// so pointer equality is exactly the Rete "shared tests" property (§5).
struct AlphaPattern {
  SymbolId cls = kInvalidSymbol;
  std::vector<ConstantTest> const_tests;
  std::vector<MemberTest> member_tests;
  std::vector<IntraTest> intra_tests;

  /// Copies the alpha-level tests out of `cond`.
  static std::unique_ptr<AlphaPattern> FromCondition(
      const CompiledCondition& cond);

  /// True if `wme` (already of class `cls`) passes every test.
  bool Accepts(const Wme& wme) const;

  /// Structural equality against a condition's alpha tests — the sharing
  /// check.
  bool Matches(const CompiledCondition& cond) const;

  /// Bytes held by the test vectors (counted once per rule base, not per
  /// session).
  size_t MemoryBytes() const;
};

/// The deduplicated alpha-pattern set of a rule base, plus each rule's
/// per-CE pattern assignment. Patterns appear in first-use order — the
/// order an unbound matcher's GetOrCreateAlpha would create memories in —
/// so a session binding to the topology builds a network whose memory
/// creation order, successor lists, and therefore every observable trace
/// are bit-identical to a session that compiled privately.
class NetworkTopology {
 public:
  /// The patterns of `rule`'s conditions, in CE order, or nullptr if the
  /// rule is not part of this topology.
  const std::vector<const AlphaPattern*>* PatternsFor(
      const CompiledRule* rule) const {
    auto it = by_rule_.find(rule);
    return it == by_rule_.end() ? nullptr : &it->second;
  }

  size_t num_patterns() const { return patterns_.size(); }
  const std::vector<std::unique_ptr<AlphaPattern>>& patterns() const {
    return patterns_;
  }

  /// Registers every condition of `rule`, reusing structurally equal
  /// patterns (first-use order). Called by CompiledRuleBase::Compile.
  void AddRule(const CompiledRule* rule);

  size_t MemoryBytes() const;

 private:
  std::vector<std::unique_ptr<AlphaPattern>> patterns_;
  std::unordered_map<const CompiledRule*, std::vector<const AlphaPattern*>>
      by_rule_;
};

/// Compile-time knobs that change the compiled artifact itself (and hence
/// the sharing fingerprint). Kept free of engine-level concepts: two
/// sessions differing only in runtime options (matcher kind, threads,
/// strategy, tracing) share one base.
struct RuleBaseConfig {
  /// Join-order policy the artifact was compiled for (kOptimized plans are
  /// consumed at run time by the plan matcher; see `reorder_at_load` for
  /// the Rete/TREAT load-time rewrite).
  JoinOrder join_order = JoinOrder::kTextual;
  /// Apply the cost-guided CE pre-reordering pass (ReorderRuleInPlace) to
  /// tuple-oriented rules at compile time — what Engine::LoadString does
  /// for kRete/kTreat with join_order == kOptimized. Compile-time WM is
  /// empty, so the estimates use the static test-count heuristic, exactly
  /// as a fresh session's load did.
  bool reorder_at_load = false;
};

/// The immutable compiled artifact of one rule source: parsed + compiled
/// rules (with any load-time join reordering already applied), the symbol
/// table and schema registry they were compiled against, the startup
/// actions, and the deduplicated alpha-pattern topology. Produced once per
/// (source, config) fingerprint and shared — `EngineServer` holds a
/// registry of these, and every session binding to one instantiates only
/// its private match state (alpha columns, token arenas, conflict set).
///
/// Thread safety: a CompiledRuleBase is deeply const after Compile returns
/// (no mutable members, no caches), so any number of sessions may read it
/// concurrently without synchronization.
class CompiledRuleBase {
 public:
  /// Parses and compiles `source`. The returned base is immutable and
  /// shareable; compilation errors come back as the usual lang statuses.
  static Result<std::shared_ptr<const CompiledRuleBase>> Compile(
      std::string source, RuleBaseConfig config = {});

  /// FNV-1a over the source text and the config bits — the sharing key.
  /// Stable across processes (used to key the server's base registry and
  /// to name nothing on disk; snapshots still carry the full source).
  static uint64_t Fingerprint(std::string_view source,
                              const RuleBaseConfig& config);

  const std::string& source() const { return source_; }
  const RuleBaseConfig& config() const { return config_; }
  uint64_t fingerprint() const { return fingerprint_; }
  const SymbolTable& symbols() const { return symbols_; }
  const SchemaRegistry& schemas() const { return schemas_; }
  const std::vector<CompiledRulePtr>& rules() const { return rules_; }
  /// Actions of the source's `(startup ...)` forms, already resolved;
  /// each binding session executes them once against its own WM.
  const std::vector<ActionPtr>& startup() const { return startup_; }
  const NetworkTopology& topology() const { return topology_; }

  const CompiledRule* FindRule(std::string_view name) const;

  /// Estimated bytes of the shared artifact (source, rules, topology) —
  /// what N sessions *don't* pay N times; feeds the
  /// `server.shared_network_bytes` gauge.
  size_t MemoryBytes() const;

 private:
  CompiledRuleBase() = default;

  std::string source_;
  RuleBaseConfig config_;
  uint64_t fingerprint_ = 0;
  SymbolTable symbols_;
  SchemaRegistry schemas_;
  std::vector<CompiledRulePtr> rules_;
  std::vector<ActionPtr> startup_;
  NetworkTopology topology_;
};

using RuleBasePtr = std::shared_ptr<const CompiledRuleBase>;

}  // namespace sorel

#endif  // SOREL_LANG_RULE_BASE_H_
