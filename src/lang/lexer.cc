#include "lang/lexer.h"

#include <cctype>
#include <cstdlib>

namespace sorel {

namespace {

/// Characters that terminate a bare symbol / variable / attribute name.
bool IsDelimiter(char c) {
  switch (c) {
    case '(':
    case ')':
    case '[':
    case ']':
    case '{':
    case '}':
    case ';':
    case '^':
    case '<':
    case '>':
    case '=':
    case '|':
    case '"':
      return true;
    default:
      return std::isspace(static_cast<unsigned char>(c)) != 0;
  }
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view src) : src_(src) {}

  Result<std::vector<Tok>> Run() {
    std::vector<Tok> out;
    while (true) {
      SkipWhitespaceAndComments();
      SourceLoc loc = Loc();
      if (AtEnd()) {
        out.push_back({TokKind::kEnd, "", 0, 0, loc});
        return out;
      }
      char c = Peek();
      switch (c) {
        case '(':
          Next();
          out.push_back({TokKind::kLParen, "", 0, 0, loc});
          continue;
        case ')':
          Next();
          out.push_back({TokKind::kRParen, "", 0, 0, loc});
          continue;
        case '[':
          Next();
          out.push_back({TokKind::kLBracket, "", 0, 0, loc});
          continue;
        case ']':
          Next();
          out.push_back({TokKind::kRBracket, "", 0, 0, loc});
          continue;
        case '{':
          Next();
          out.push_back({TokKind::kLBrace, "", 0, 0, loc});
          continue;
        case '}':
          Next();
          out.push_back({TokKind::kRBrace, "", 0, 0, loc});
          continue;
        case '^': {
          Next();
          std::string name = ReadSymbolText();
          if (name.empty()) {
            return Status::ParseError(Where(loc) + "empty attribute name");
          }
          out.push_back({TokKind::kAttr, std::move(name), 0, 0, loc});
          continue;
        }
        case '=':
          Next();
          if (!AtEnd() && Peek() == '=') Next();
          out.push_back({TokKind::kEq, "", 0, 0, loc});
          continue;
        case '<': {
          Next();
          if (!AtEnd() && Peek() == '<') {
            Next();
            out.push_back({TokKind::kDLAngle, "", 0, 0, loc});
          } else if (!AtEnd() && Peek() == '=') {
            Next();
            out.push_back({TokKind::kLe, "", 0, 0, loc});
          } else if (!AtEnd() && Peek() == '>') {
            Next();
            out.push_back({TokKind::kNe, "", 0, 0, loc});
          } else if (!AtEnd() && !IsDelimiter(Peek())) {
            std::string name = ReadSymbolText();
            if (AtEnd() || Peek() != '>') {
              return Status::ParseError(Where(loc) +
                                        "unterminated variable '<" + name +
                                        "'");
            }
            Next();  // consume '>'
            out.push_back({TokKind::kVariable, std::move(name), 0, 0, loc});
          } else {
            out.push_back({TokKind::kLt, "", 0, 0, loc});
          }
          continue;
        }
        case '>':
          Next();
          if (!AtEnd() && Peek() == '>') {
            Next();
            out.push_back({TokKind::kDRAngle, "", 0, 0, loc});
          } else if (!AtEnd() && Peek() == '=') {
            Next();
            out.push_back({TokKind::kGe, "", 0, 0, loc});
          } else {
            out.push_back({TokKind::kGt, "", 0, 0, loc});
          }
          continue;
        case '|':
        case '"': {
          char quote = c;
          Next();
          std::string text;
          while (!AtEnd() && Peek() != quote) text.push_back(Next());
          if (AtEnd()) {
            return Status::ParseError(Where(loc) + "unterminated quoted atom");
          }
          Next();  // closing quote
          out.push_back({TokKind::kSymbol, std::move(text), 0, 0, loc});
          continue;
        }
        default:
          break;
      }
      // Arrow, number, or bare symbol.
      if (c == '-' && pos_ + 2 < src_.size() && src_[pos_ + 1] == '-' &&
          src_[pos_ + 2] == '>') {
        Next();
        Next();
        Next();
        out.push_back({TokKind::kArrow, "", 0, 0, loc});
        continue;
      }
      if (IsDigit(c) ||
          ((c == '-' || c == '+') && pos_ + 1 < src_.size() &&
           (IsDigit(src_[pos_ + 1]) || src_[pos_ + 1] == '.')) ||
          (c == '.' && pos_ + 1 < src_.size() && IsDigit(src_[pos_ + 1]))) {
        SOREL_RETURN_IF_ERROR(LexNumber(loc, &out));
        continue;
      }
      std::string name = ReadSymbolText();
      if (name.empty()) {
        return Status::ParseError(Where(loc) + "unexpected character '" +
                                  std::string(1, Next()) + "'");
      }
      out.push_back({TokKind::kSymbol, std::move(name), 0, 0, loc});
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return src_[pos_]; }
  char Next() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  SourceLoc Loc() const { return {line_, col_}; }
  static std::string Where(SourceLoc loc) {
    return "line " + std::to_string(loc.line) + ":" +
           std::to_string(loc.column) + ": ";
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Next();
      } else if (c == ';') {
        while (!AtEnd() && Peek() != '\n') Next();
      } else {
        return;
      }
    }
  }

  std::string ReadSymbolText() {
    std::string out;
    while (!AtEnd() && !IsDelimiter(Peek())) out.push_back(Next());
    return out;
  }

  Status LexNumber(SourceLoc loc, std::vector<Tok>* out) {
    std::string text;
    bool is_float = false;
    if (Peek() == '-' || Peek() == '+') text.push_back(Next());
    while (!AtEnd() && (IsDigit(Peek()) || Peek() == '.' || Peek() == 'e' ||
                        Peek() == 'E' ||
                        ((Peek() == '-' || Peek() == '+') && !text.empty() &&
                         (text.back() == 'e' || text.back() == 'E')))) {
      if (Peek() == '.' || Peek() == 'e' || Peek() == 'E') is_float = true;
      text.push_back(Next());
    }
    if (is_float) {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size()) {
        return Status::ParseError(Where(loc) + "bad number '" + text + "'");
      }
      out->push_back({TokKind::kFloat, "", 0, v, loc});
    } else {
      char* end = nullptr;
      int64_t v = std::strtoll(text.c_str(), &end, 10);
      if (end != text.c_str() + text.size()) {
        return Status::ParseError(Where(loc) + "bad number '" + text + "'");
      }
      out->push_back({TokKind::kInt, "", v, 0, loc});
    }
    return Status::Ok();
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<Tok>> Lex(std::string_view source) {
  return LexerImpl(source).Run();
}

}  // namespace sorel
