#ifndef SOREL_LANG_LINTER_H_
#define SOREL_LANG_LINTER_H_

#include <string>
#include <vector>

#include "lang/compiled_rule.h"

namespace sorel {

/// Static analysis over compiled rules. The paper argues (§1) that directly
/// expressed set operations give compilers something to optimize; this
/// linter is the first half of that story — it recognizes the patterns
/// (unconstrained joins, pointless set-ness, self-triggering RHS actions,
/// dead variables) that either cost performance or signal intent mismatch.
enum class LintCode {
  kUnusedVariable,    // bound once, never read
  kCrossProduct,      // positive CE with no join to any earlier CE
  kPointlessSet,      // set CE never used via aggregate/foreach/set-action
  kSelfTrigger,       // RHS makes/modifies a class the LHS matches
  kNoTestNoPartition, // set rule collapsing everything into one SOI
};

/// Returns a short stable identifier ("unused-variable", ...).
std::string_view LintCodeName(LintCode code);

struct LintWarning {
  LintCode code;
  std::string rule;
  std::string message;

  std::string ToString() const {
    return rule + ": [" + std::string(LintCodeName(code)) + "] " + message;
  }
};

/// Analyzes one compiled rule.
std::vector<LintWarning> LintRule(const CompiledRule& rule);

}  // namespace sorel

#endif  // SOREL_LANG_LINTER_H_
