#include "lang/join_order.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace sorel {

namespace {

/// token_pos -> condition index, for resolving JoinTest::other_token_pos.
std::vector<int> CondOfTokenPos(const CompiledRule& rule) {
  std::vector<int> cond_of(static_cast<size_t>(rule.num_positive), -1);
  for (size_t ce = 0; ce < rule.conditions.size(); ++ce) {
    int pos = rule.conditions[ce].token_pos;
    if (pos >= 0) cond_of[static_cast<size_t>(pos)] = static_cast<int>(ce);
  }
  return cond_of;
}

}  // namespace

CardVec EstimateCards(const CompiledRule& rule,
                      const std::vector<WmePtr>& wms) {
  CardVec cards(rule.conditions.size(), 0.0);
  for (size_t ce = 0; ce < rule.conditions.size(); ++ce) {
    const CompiledCondition& cond = rule.conditions[ce];
    double n = 0;
    for (const WmePtr& w : wms) {
      if (w->cls() == cond.cls && PassesAlphaTests(cond, *w)) n += 1;
    }
    if (wms.empty()) {
      // Static fallback: every alpha test is assumed to halve the class
      // population. Only the relative order matters.
      double tests = static_cast<double>(cond.const_tests.size() +
                                         cond.member_tests.size() +
                                         cond.intra_tests.size());
      n = 1024.0 / (1.0 + tests);
    }
    cards[ce] = n;
  }
  return cards;
}

std::vector<JoinEdge> BuildJoinGraph(const CompiledRule& rule) {
  std::vector<int> cond_of = CondOfTokenPos(rule);
  std::vector<JoinEdge> edges;
  for (size_t ce = 0; ce < rule.conditions.size(); ++ce) {
    for (const JoinTest& jt : rule.conditions[ce].join_tests) {
      JoinEdge e;
      e.a = static_cast<int>(ce);
      e.a_field = jt.field;
      e.pred = jt.pred;
      e.b = cond_of[static_cast<size_t>(jt.other_token_pos)];
      e.b_field = jt.other_field;
      edges.push_back(e);
    }
  }
  return edges;
}

TestPred MirrorPred(TestPred pred) {
  switch (pred) {
    case TestPred::kLt: return TestPred::kGt;
    case TestPred::kGt: return TestPred::kLt;
    case TestPred::kLe: return TestPred::kGe;
    case TestPred::kGe: return TestPred::kLe;
    case TestPred::kEq:
    case TestPred::kNe: return pred;
  }
  return pred;
}

JoinOrderResult OptimizeJoinOrder(const CompiledRule& rule,
                                  const CardVec& cards, int seed_ce) {
  const size_t n = rule.conditions.size();
  std::vector<JoinEdge> edges = BuildJoinGraph(rule);
  JoinOrderResult r;
  r.order.reserve(n);
  r.est.reserve(n);

  std::vector<char> placed(n, 0);
  std::vector<char> bound(n, 0);  // positive CEs joined so far

  // Eq-connectivity between a candidate and the bound set.
  auto eq_connected = [&](int ce) {
    for (const JoinEdge& e : edges) {
      if (e.pred != TestPred::kEq) continue;
      if (e.a == ce && bound[static_cast<size_t>(e.b)]) return true;
      if (e.b == ce && bound[static_cast<size_t>(e.a)]) return true;
    }
    return false;
  };

  // Negated CEs attach at the earliest step where every positive CE they
  // reference is bound (they only filter, so earlier is strictly better).
  auto place_ready_negated = [&](double cur_est) {
    for (size_t ce = 0; ce < n; ++ce) {
      if (placed[ce] || !rule.conditions[ce].negated) continue;
      bool ready = true;
      for (const JoinEdge& e : edges) {
        if (e.a == static_cast<int>(ce) &&
            !bound[static_cast<size_t>(e.b)]) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      placed[ce] = 1;
      r.order.push_back(static_cast<int>(ce));
      r.est.push_back(cur_est);
    }
  };

  double cur_est = 1.0;
  bool first = true;
  for (;;) {
    int best = -1;
    double best_est = std::numeric_limits<double>::infinity();
    bool best_connected = false;
    for (size_t ce = 0; ce < n; ++ce) {
      if (placed[ce] || rule.conditions[ce].negated) continue;
      bool connected;
      double est;
      if (first) {
        connected = true;  // no bound set yet; compare raw cardinalities
        est = (seed_ce >= 0)
                  ? (static_cast<int>(ce) == seed_ce ? 0.0 : cards[ce])
                  : cards[ce];
      } else if (eq_connected(static_cast<int>(ce))) {
        connected = true;
        est = std::max(cur_est, cards[ce]);
      } else {
        connected = false;
        est = cur_est * std::max(cards[ce], 1.0);
      }
      // Prefer any eq-connected candidate over any cross product; within
      // a class, smallest estimate wins and ties keep textual order (the
      // scan runs in ascending ce).
      if (connected && !best_connected) {
        best = static_cast<int>(ce);
        best_est = est;
        best_connected = true;
      } else if (connected == best_connected && est < best_est) {
        best = static_cast<int>(ce);
        best_est = est;
      }
    }
    if (best < 0) break;
    placed[static_cast<size_t>(best)] = 1;
    bound[static_cast<size_t>(best)] = 1;
    if (first && best == seed_ce) {
      cur_est = 1.0;  // a seeded search pins exactly one row
    } else {
      cur_est = first ? std::max(cards[static_cast<size_t>(best)], 1.0)
                      : std::max(best_est, 1.0);
    }
    first = false;
    r.order.push_back(best);
    r.est.push_back(cur_est);
    place_ready_negated(cur_est);
  }
  // Defensive: a negated CE referencing nothing bound (can't happen — join
  // tests always target positive positions) would be appended here.
  place_ready_negated(cur_est);

  for (size_t i = 0; i < r.order.size(); ++i) {
    if (r.order[i] != static_cast<int>(i)) {
      r.reordered = true;
      break;
    }
  }
  return r;
}

void ReorderRuleInPlace(CompiledRule* rule, const std::vector<int>& order) {
  const size_t n = rule->conditions.size();
  if (order.size() != n) return;

  // Old token position -> new token position (new chain order).
  std::vector<int> new_pos_of(static_cast<size_t>(rule->num_positive), -1);
  {
    int next = 0;
    for (int ce : order) {
      int old = rule->conditions[static_cast<size_t>(ce)].token_pos;
      if (old >= 0) new_pos_of[static_cast<size_t>(old)] = next++;
    }
  }
  // Old condition index -> new condition index.
  std::vector<int> new_ce_of(n, 0);
  for (size_t p = 0; p < n; ++p) {
    new_ce_of[static_cast<size_t>(order[p])] = static_cast<int>(p);
  }

  // Pool every join test as a symmetric edge (in old indices), then permute.
  std::vector<JoinEdge> edges = BuildJoinGraph(*rule);

  std::vector<CompiledCondition> conds;
  conds.reserve(n);
  for (int ce : order) {
    conds.push_back(std::move(rule->conditions[static_cast<size_t>(ce)]));
  }
  rule->conditions = std::move(conds);
  {
    int next = 0;
    for (size_t p = 0; p < n; ++p) {
      CompiledCondition& cc = rule->conditions[p];
      cc.ce_index = static_cast<int>(p);
      cc.token_pos = cc.negated ? -1 : next++;
      cc.join_tests.clear();
      cc.eq_join_tests.clear();
      cc.residual_join_tests.clear();
    }
  }

  // Re-home each edge onto the condition now appearing later in the chain,
  // referencing the earlier one's (renumbered) token position. A negated CE
  // always owns its edges — the optimizer places it after every positive CE
  // it references.
  for (const JoinEdge& e : edges) {
    int na = new_ce_of[static_cast<size_t>(e.a)];
    int nb = new_ce_of[static_cast<size_t>(e.b)];
    JoinTest jt;
    CompiledCondition* owner;
    if (rule->conditions[static_cast<size_t>(na)].negated || na > nb) {
      owner = &rule->conditions[static_cast<size_t>(na)];
      jt.field = e.a_field;
      jt.pred = e.pred;
      jt.other_token_pos =
          rule->conditions[static_cast<size_t>(nb)].token_pos;
      jt.other_field = e.b_field;
    } else {
      owner = &rule->conditions[static_cast<size_t>(nb)];
      jt.field = e.b_field;
      jt.pred = MirrorPred(e.pred);
      jt.other_token_pos =
          rule->conditions[static_cast<size_t>(na)].token_pos;
      jt.other_field = e.a_field;
    }
    owner->join_tests.push_back(jt);
    (jt.pred == TestPred::kEq ? owner->eq_join_tests
                              : owner->residual_join_tests)
        .push_back(jt);
  }

  // Variable occurrence maps and element positions follow the renumbering.
  for (auto& [name, var] : rule->vars) {
    for (auto& occ : var.occurrences) {
      occ.first = new_pos_of[static_cast<size_t>(occ.first)];
    }
    if (var.elem_token_pos >= 0) {
      var.elem_token_pos = new_pos_of[static_cast<size_t>(var.elem_token_pos)];
    }
  }
  // Set-oriented key fields exist only on has_set rules, which callers
  // never reorder; remap anyway so the invariant is local.
  for (int& pos : rule->key_token_positions) {
    pos = new_pos_of[static_cast<size_t>(pos)];
  }
  for (auto& [pos, field] : rule->key_scalars) {
    pos = new_pos_of[static_cast<size_t>(pos)];
  }
  for (AggregateSpec& agg : rule->test_aggregates) {
    agg.token_pos = new_pos_of[static_cast<size_t>(agg.token_pos)];
  }
}

}  // namespace sorel
