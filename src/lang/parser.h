#ifndef SOREL_LANG_PARSER_H_
#define SOREL_LANG_PARSER_H_

#include <string_view>

#include "base/status.h"
#include "lang/ast.h"

namespace sorel {

/// Parses a source buffer containing `(literalize ...)` and `(p ...)` forms
/// into a `ProgramAst`. Syntax is OPS5 plus the paper's extensions:
///
///   (p name
///      (class ^attr test ...)            ; regular CE
///      [class ^attr test ...]            ; set-oriented CE       (§4.1)
///      { [class ...] <E> }               ; CE with element variable
///      - (class ...)                     ; negated CE
///      :scalar (<x> <y>)                 ; scalar clause         (§4.1)
///      :test ((count <E>) > 1)           ; aggregate test        (§4.2)
///      -->
///      (make ...) (modify <e> ...) (remove <e>) (write ... (crlf))
///      (bind <x> expr) (halt)
///      (set-modify <E> ^a v) (set-remove <E>)                  ; (§6)
///      (foreach <v> [ascending|descending] actions...)         ; (§6)
///      (if (expr) actions... [else actions...]))
///
/// Attribute tests: constant, <var>, predicate+term (`> 5`, `<> <x>`),
/// conjunction `{ > 2 < 8 }`, disjunction `<< red blue >>`.
Result<ProgramAst> Parse(std::string_view source);

}  // namespace sorel

#endif  // SOREL_LANG_PARSER_H_
