#include "lang/eval.h"

namespace sorel {

namespace {

Status TypeError(const Expr& e, const char* what) {
  return Status::RuntimeError("line " + std::to_string(e.loc.line) + ": " +
                              what);
}

Result<Value> EvalArith(const Expr& e, const Value& a, const Value& b) {
  if (!a.is_number() || !b.is_number()) {
    return TypeError(e, "arithmetic on non-numeric value");
  }
  bool both_int = a.is_int() && b.is_int();
  switch (e.bin_op) {
    case BinOp::kAdd:
      return both_int ? Value::Int(a.as_int() + b.as_int())
                      : Value::Float(a.AsDouble() + b.AsDouble());
    case BinOp::kSub:
      return both_int ? Value::Int(a.as_int() - b.as_int())
                      : Value::Float(a.AsDouble() - b.AsDouble());
    case BinOp::kMul:
      return both_int ? Value::Int(a.as_int() * b.as_int())
                      : Value::Float(a.AsDouble() * b.AsDouble());
    case BinOp::kDiv:
      if (both_int) {
        if (b.as_int() == 0) return TypeError(e, "division by zero");
        return Value::Int(a.as_int() / b.as_int());
      }
      if (b.AsDouble() == 0) return TypeError(e, "division by zero");
      return Value::Float(a.AsDouble() / b.AsDouble());
    case BinOp::kMod:
      if (!both_int) return TypeError(e, "mod on non-integer value");
      if (b.as_int() == 0) return TypeError(e, "mod by zero");
      return Value::Int(a.as_int() % b.as_int());
    default:
      return TypeError(e, "unexpected operator");
  }
}

}  // namespace

Result<Value> EvalExpr(const Expr& e, const EvalContext& ctx) {
  switch (e.kind) {
    case Expr::Kind::kConst:
      return e.constant;
    case Expr::Kind::kVar:
      return ctx.ResolveVar(e.var);
    case Expr::Kind::kAggregate:
      return ctx.EvalAggregate(e);
    case Expr::Kind::kCrlf:
      return TypeError(e, "(crlf) used outside write");
    case Expr::Kind::kNot: {
      SOREL_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.lhs, ctx));
      return Value::Bool(!v.IsTruthy());
    }
    case Expr::Kind::kBinary:
      break;
  }
  // Binary operators. `and`/`or` short-circuit.
  if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
    SOREL_ASSIGN_OR_RETURN(Value a, EvalExpr(*e.lhs, ctx));
    bool ta = a.IsTruthy();
    if (e.bin_op == BinOp::kAnd && !ta) return Value::Bool(false);
    if (e.bin_op == BinOp::kOr && ta) return Value::Bool(true);
    SOREL_ASSIGN_OR_RETURN(Value b, EvalExpr(*e.rhs, ctx));
    return Value::Bool(b.IsTruthy());
  }
  SOREL_ASSIGN_OR_RETURN(Value a, EvalExpr(*e.lhs, ctx));
  SOREL_ASSIGN_OR_RETURN(Value b, EvalExpr(*e.rhs, ctx));
  switch (e.bin_op) {
    case BinOp::kEq:
      return Value::Bool(a == b);
    case BinOp::kNe:
      return Value::Bool(a != b);
    case BinOp::kLt:
      return Value::Bool(EvalTestPred(TestPred::kLt, a, b));
    case BinOp::kLe:
      return Value::Bool(EvalTestPred(TestPred::kLe, a, b));
    case BinOp::kGt:
      return Value::Bool(EvalTestPred(TestPred::kGt, a, b));
    case BinOp::kGe:
      return Value::Bool(EvalTestPred(TestPred::kGe, a, b));
    default:
      return EvalArith(e, a, b);
  }
}

}  // namespace sorel
