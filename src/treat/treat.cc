#include "treat/treat.h"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <unordered_map>
#include <utility>

#include "base/thread_pool.h"
#include "rete/instantiation.h"

namespace sorel {

namespace {

struct TagVecHash {
  size_t operator()(const std::vector<TimeTag>& tags) const {
    size_t h = 0x9e3779b97f4a7c15ull;
    for (TimeTag t : tags) {
      h ^= std::hash<TimeTag>()(t) + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

std::vector<TimeTag> RowSignature(const Row& row) {
  std::vector<TimeTag> sig;
  sig.reserve(row.size());
  for (const WmePtr& w : row) sig.push_back(w->time_tag());
  return sig;
}

}  // namespace

/// A TREAT instantiation: one complete row, owned by the matcher.
class TreatMatcher::TreatInst : public InstantiationRef {
 public:
  TreatInst(const CompiledRule* rule, Row row)
      : rule_(rule), row_(std::move(row)) {}

  const CompiledRule& rule() const override { return *rule_; }
  void CollectRows(std::vector<Row>* out) const override {
    out->push_back(row_);
  }
  std::vector<TimeTag> RecencyTags() const override {
    std::vector<TimeTag> tags = RowSignature(row_);
    std::sort(tags.rbegin(), tags.rend());
    return tags;
  }
  TimeTag FirstCeTag() const override {
    return row_.empty() ? 0 : row_.front()->time_tag();
  }
  const Row& row() const { return row_; }

 private:
  const CompiledRule* rule_;
  Row row_;
};

/// One per-rule, per-CE alpha memory. In columnar (`soa`) mode the WME
/// column carries a parallel time-tag column, so the removal passes scan
/// contiguous integers instead of dereferencing a WME per item; erasures
/// compact eagerly (no tombstones), keeping sizes, iteration order, and
/// first-CE slice bounds byte-identical to the plain vector layout. The
/// tuple-mode (AoS) layout is the ablation baseline.
class TreatMatcher::TreatAlpha {
 public:
  explicit TreatAlpha(bool soa) : soa_(soa) {}

  size_t size() const { return wmes_.size(); }
  const WmePtr& operator[](size_t i) const { return wmes_[i]; }
  std::vector<WmePtr>::const_iterator begin() const { return wmes_.begin(); }
  std::vector<WmePtr>::const_iterator end() const { return wmes_.end(); }

  void Append(const WmePtr& w) {
    if (soa_) tags_.push_back(w->time_tag());
    wmes_.push_back(w);
  }

  /// Erases the item holding `w`; returns false if absent. Columnar mode
  /// finds it by scanning the tag column (tags are unique per WME, so this
  /// matches the pointer-equality find of the tuple layout).
  bool Remove(const Wme& w) {
    size_t i;
    if (soa_) {
      const TimeTag tag = w.time_tag();
      for (i = 0; i < tags_.size(); ++i) {
        if (tags_[i] == tag) break;
      }
      if (i == tags_.size()) return false;
      tags_.erase(tags_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      for (i = 0; i < wmes_.size(); ++i) {
        if (wmes_[i].get() == &w) break;
      }
      if (i == wmes_.size()) return false;
    }
    wmes_.erase(wmes_.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }

  /// Erases every item whose tag is in `victims` in one stable two-pointer
  /// pass, invoking `hit(tag)` per erased item in position order. Returns
  /// the number erased.
  template <typename Fn>
  size_t RemoveTags(const std::unordered_set<TimeTag>& victims, Fn&& hit) {
    const size_t n = wmes_.size();
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      const TimeTag tag = soa_ ? tags_[i] : wmes_[i]->time_tag();
      if (victims.count(tag) != 0) {
        hit(tag);
        continue;
      }
      if (out != i) {
        if (soa_) tags_[out] = tags_[i];
        wmes_[out] = std::move(wmes_[i]);
      }
      ++out;
    }
    if (soa_) tags_.resize(out);
    wmes_.resize(out);
    ShrinkIfSlack();
    return n - out;
  }

  size_t MemoryBytes() const {
    return wmes_.capacity() * sizeof(WmePtr) +
           tags_.capacity() * sizeof(TimeTag);
  }

 private:
  /// Caps peak RSS after a bulk erase drained a memory far below its
  /// high-water mark; small or mostly-full memories keep their capacity.
  void ShrinkIfSlack() {
    if (wmes_.capacity() > 64 && wmes_.size() * 4 < wmes_.capacity()) {
      wmes_.shrink_to_fit();
      tags_.shrink_to_fit();
    }
  }

  bool soa_;
  std::vector<WmePtr> wmes_;
  std::vector<TimeTag> tags_;  // parallel to wmes_; empty in tuple mode
};

struct TreatMatcher::RuleState {
  const CompiledRule* rule = nullptr;
  /// Alpha memory per CE (original index).
  std::vector<TreatAlpha> alpha;
  /// Current instantiations keyed by their time-tag signature.
  std::unordered_map<std::vector<TimeTag>, std::unique_ptr<TreatInst>,
                     TagVecHash>
      insts;
  /// A negated-CE removal occurred this batch; run one SearchAll at end.
  bool needs_research = false;
};

TreatMatcher::TreatMatcher(WorkingMemory* wm, ConflictSet* cs,
                           ThreadPool* pool, int intra_split_min,
                           obs::MetricRegistry* metrics, obs::Tracer* tracer,
                           bool soa_memories)
    : wm_(wm), cs_(cs), pool_(pool), intra_split_min_(intra_split_min),
      soa_memories_(soa_memories), metrics_(metrics), tracer_(tracer) {
  wm_->AddListener(this);
  if (metrics_ != nullptr) {
    metrics_->RegisterGauge(this, "treat.alpha_bytes", [this] {
      return static_cast<double>(AlphaMemoryBytes());
    });
    metrics_->RegisterCounter(this, "treat.seeded_searches",
                              [this] { return stats_.seeded_searches; });
    metrics_->RegisterCounter(this, "treat.full_searches",
                              [this] { return stats_.full_searches; });
    metrics_->RegisterCounter(this, "treat.batches",
                              [this] { return stats_.batches; });
    metrics_->RegisterCounter(this, "treat.coalesced_researches",
                              [this] { return stats_.coalesced_researches; });
    metrics_->RegisterCounter(this, "treat.grouped_removals",
                              [this] { return stats_.grouped_removals; });
    metrics_->RegisterCounter(this, "treat.intra_splits",
                              [this] { return stats_.intra_splits; });
    metrics_->RegisterCounter(this, "treat.intra_slice_tasks",
                              [this] { return stats_.intra_slice_tasks; });
    metrics_->RegisterReset(this, [this] { ResetStats(); });
    if (metrics_->timing_enabled()) {
      match_timer_ = metrics_->GetOrCreateTimer("phase.match");
    }
  }
}

TreatMatcher::~TreatMatcher() {
  if (metrics_ != nullptr) metrics_->Unregister(this);
  wm_->RemoveListener(this);
  for (const auto& rs : rules_) {
    for (const auto& [sig, inst] : rs->insts) cs_->Remove(inst.get());
  }
}

Status TreatMatcher::AddRule(const CompiledRule* rule) {
  if (rule->has_set) {
    return Status::Unimplemented(
        "rule '" + rule->name +
        "': TREAT is the tuple-oriented baseline and does not support "
        "set-oriented constructs");
  }
  auto rs = std::make_unique<RuleState>();
  rs->rule = rule;
  rs->alpha.assign(rule->conditions.size(), TreatAlpha(soa_memories_));
  for (const WmePtr& w : wm_->Snapshot()) {
    for (size_t ce = 0; ce < rule->conditions.size(); ++ce) {
      const CompiledCondition& cond = rule->conditions[ce];
      if (w->cls() == cond.cls && PassesAlphaTests(cond, *w)) {
        rs->alpha[ce].Append(w);
      }
    }
  }
  SearchAll(rs.get(), &stats_);
  rules_.push_back(std::move(rs));
  return Status::Ok();
}

Status TreatMatcher::RemoveRule(const CompiledRule* rule) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if ((*it)->rule != rule) continue;
    for (const auto& [sig, inst] : (*it)->insts) cs_->Remove(inst.get());
    rules_.erase(it);
    return Status::Ok();
  }
  return Status::NotFound("rule not loaded: " + rule->name);
}

void TreatMatcher::ExtendRow(RuleState* rs, size_t ce_index, Row* row,
                             const SearchCtx& ctx) {
  const auto& conditions = rs->rule->conditions;
  if (ce_index == conditions.size()) {
    if (BlockedByNegated(*rs, *row)) return;
    if (ctx.out != nullptr) {
      ctx.out->push_back(*row);  // slice task: defer emission
    } else {
      EmitInst(rs, *row);
    }
    return;
  }
  const CompiledCondition& cond = conditions[ce_index];
  if (cond.negated) {
    ExtendRow(rs, ce_index + 1, row, ctx);
    return;
  }
  if (static_cast<int>(ce_index) == ctx.seed_ce) {
    if (PassesJoinTests(cond, *row, *ctx.seed)) {
      (*row)[static_cast<size_t>(cond.token_pos)] = ctx.seed;
      ExtendRow(rs, ce_index + 1, row, ctx);
      (*row)[static_cast<size_t>(cond.token_pos)] = nullptr;
    }
    return;
  }
  const auto& items = rs->alpha[ce_index];
  size_t lo = 0, hi = items.size();
  if (static_cast<int>(ce_index) == ctx.slice_ce) {
    lo = ctx.slice_lo;
    hi = ctx.slice_hi;
  }
  for (size_t i = lo; i < hi; ++i) {
    const WmePtr& w = items[i];
    if (PassesJoinTests(cond, *row, *w)) {
      (*row)[static_cast<size_t>(cond.token_pos)] = w;
      ExtendRow(rs, ce_index + 1, row, ctx);
      (*row)[static_cast<size_t>(cond.token_pos)] = nullptr;
    }
  }
}

bool TreatMatcher::BlockedByNegated(const RuleState& rs,
                                    const Row& row) const {
  const auto& conditions = rs.rule->conditions;
  for (size_t ce = 0; ce < conditions.size(); ++ce) {
    const CompiledCondition& cond = conditions[ce];
    if (!cond.negated) continue;
    for (const WmePtr& w : rs.alpha[ce]) {
      if (PassesJoinTests(cond, row, *w)) return true;
    }
  }
  return false;
}

void TreatMatcher::EmitInst(RuleState* rs, const Row& row) {
  std::vector<TimeTag> sig = RowSignature(row);
  if (rs->insts.count(sig) != 0) return;
  auto inst = std::make_unique<TreatInst>(rs->rule, row);
  cs_->Add(inst.get());
  rs->insts.emplace(std::move(sig), std::move(inst));
}

void TreatMatcher::SearchFromSeed(RuleState* rs, int seed_ce,
                                  const WmePtr& seed, Stats* stats) {
  ++stats->seeded_searches;
  SearchCtx ctx;
  ctx.seed_ce = seed_ce;
  ctx.seed = seed;
  Row row(static_cast<size_t>(rs->rule->num_positive));
  ExtendRow(rs, 0, &row, ctx);
}

void TreatMatcher::SearchAll(RuleState* rs, Stats* stats) {
  ++stats->full_searches;
  const auto& conditions = rs->rule->conditions;
  int first_pos = -1;
  for (size_t ce = 0; ce < conditions.size(); ++ce) {
    if (!conditions[ce].negated) {
      first_pos = static_cast<int>(ce);
      break;
    }
  }
  size_t n =
      first_pos < 0 ? 0 : rs->alpha[static_cast<size_t>(first_pos)].size();
  if (pool_ != nullptr && intra_split_min_ > 0 &&
      n >= static_cast<size_t>(intra_split_min_)) {
    // Intra-rule split: fork the first-CE scan into slices that run the
    // pure join search into private row buffers (alpha memories and the
    // rule are frozen for the duration — slices touch no shared state).
    // Emission then runs serially in slice-concatenation order, which is
    // the sequential scan order, so dedup decisions and conflict-set sends
    // are bit-identical to the unsplit search.
    size_t max_slices = static_cast<size_t>(pool_->num_threads()) + 1;
    size_t min_per_slice =
        std::max<size_t>(1, static_cast<size_t>(intra_split_min_) / 2);
    size_t slices = std::max<size_t>(
        2, std::min(max_slices, (n + min_per_slice - 1) / min_per_slice));
    size_t chunk = (n + slices - 1) / slices;
    std::vector<std::vector<Row>> slice_rows(slices);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(slices);
    for (size_t s = 0; s < slices; ++s) {
      size_t lo = s * chunk;
      size_t hi = std::min(n, lo + chunk);
      if (lo >= hi) break;
      tasks.push_back([this, rs, first_pos, lo, hi, &slice_rows, s] {
        SearchCtx ctx;
        ctx.slice_ce = first_pos;
        ctx.slice_lo = lo;
        ctx.slice_hi = hi;
        ctx.out = &slice_rows[s];
        Row row(static_cast<size_t>(rs->rule->num_positive));
        ExtendRow(rs, 0, &row, ctx);
      });
    }
    ++stats->intra_splits;
    stats->intra_slice_tasks += tasks.size();
    pool_->RunAll(std::move(tasks));
    for (std::vector<Row>& rows : slice_rows) {
      for (const Row& r : rows) EmitInst(rs, r);
    }
    return;
  }
  SearchCtx ctx;
  Row row(static_cast<size_t>(rs->rule->num_positive));
  ExtendRow(rs, 0, &row, ctx);
}

void TreatMatcher::DropInstsContaining(RuleState* rs, const Wme& wme) {
  for (auto it = rs->insts.begin(); it != rs->insts.end();) {
    bool contains = false;
    for (const WmePtr& w : it->second->row()) {
      if (w->time_tag() == wme.time_tag()) {
        contains = true;
        break;
      }
    }
    if (contains) {
      cs_->Remove(it->second.get());
      // Keep the instantiation alive until any buffered conflict-set ops
      // have been applied (a reused address would alias in the entry map).
      cs_->Release(std::move(it->second));
      it = rs->insts.erase(it);
    } else {
      ++it;
    }
  }
}

void TreatMatcher::ApplyAddToRule(RuleState* rs, const WmePtr& wme,
                                  Stats* stats) {
  const auto& conditions = rs->rule->conditions;
  std::vector<size_t> matched_pos, matched_neg;
  for (size_t ce = 0; ce < conditions.size(); ++ce) {
    const CompiledCondition& cond = conditions[ce];
    if (wme->cls() != cond.cls || !PassesAlphaTests(cond, *wme)) continue;
    rs->alpha[ce].Append(wme);
    (cond.negated ? matched_neg : matched_pos).push_back(ce);
  }
  // New blockers delete the instantiations they now block.
  for (size_t ce : matched_neg) {
    const CompiledCondition& cond = conditions[ce];
    for (auto it = rs->insts.begin(); it != rs->insts.end();) {
      if (PassesJoinTests(cond, it->second->row(), *wme)) {
        cs_->Remove(it->second.get());
        cs_->Release(std::move(it->second));
        it = rs->insts.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Seeded search for new instantiations through each matched positive CE.
  for (size_t ce : matched_pos) {
    SearchFromSeed(rs, static_cast<int>(ce), wme, stats);
  }
}

void TreatMatcher::ApplyAdd(const WmePtr& wme) {
  for (const auto& rs : rules_) ApplyAddToRule(rs.get(), wme, &stats_);
}

void TreatMatcher::ApplyRemoveFromRule(RuleState* rs, const WmePtr& wme,
                                       bool defer_unblock, Stats* stats) {
  bool touched_pos = false, touched_neg = false;
  for (size_t ce = 0; ce < rs->alpha.size(); ++ce) {
    if (!rs->alpha[ce].Remove(*wme)) continue;
    (rs->rule->conditions[ce].negated ? touched_neg : touched_pos) = true;
  }
  if (touched_pos) DropInstsContaining(rs, *wme);
  if (touched_neg) {
    if (defer_unblock) {
      if (rs->needs_research) ++stats->coalesced_researches;
      rs->needs_research = true;
    } else {
      SearchAll(rs, stats);  // unblocking re-search
    }
  }
}

void TreatMatcher::ApplyRemove(const WmePtr& wme, bool defer_unblock) {
  for (const auto& rs : rules_) {
    ApplyRemoveFromRule(rs.get(), wme, defer_unblock, &stats_);
  }
}

void TreatMatcher::DropInstsContainingAny(
    RuleState* rs, const std::unordered_set<TimeTag>& victims) {
  for (auto it = rs->insts.begin(); it != rs->insts.end();) {
    bool contains = false;
    for (const WmePtr& w : it->second->row()) {
      if (victims.count(w->time_tag()) != 0) {
        contains = true;
        break;
      }
    }
    if (contains) {
      cs_->Remove(it->second.get());
      cs_->Release(std::move(it->second));
      it = rs->insts.erase(it);
    } else {
      ++it;
    }
  }
}

void TreatMatcher::ApplyRemoveRun(const std::vector<WmChange>& changes,
                                  size_t begin, size_t end) {
  if (end - begin == 1) {
    ApplyRemove(changes[begin].wme, /*defer_unblock=*/true);
    return;
  }
  ++stats_.grouped_removals;
  std::unordered_set<TimeTag> victims;
  for (size_t i = begin; i < end; ++i) {
    victims.insert(changes[i].wme->time_tag());
  }
  for (const auto& rs : rules_) {
    // One stable compaction per alpha memory; the survivors keep exactly
    // the order per-WME find+erase would have left. Removals in a run
    // cannot re-enable each other, so dropping/unblocking once at run
    // granularity reaches the same final state.
    bool touched_pos = false;
    std::unordered_set<TimeTag> neg_touched;
    for (size_t ce = 0; ce < rs->alpha.size(); ++ce) {
      const bool negated = rs->rule->conditions[ce].negated;
      const size_t erased = rs->alpha[ce].RemoveTags(victims, [&](TimeTag t) {
        if (negated) neg_touched.insert(t);
      });
      if (!negated && erased != 0) touched_pos = true;
    }
    if (touched_pos) DropInstsContainingAny(rs.get(), victims);
    if (!neg_touched.empty()) {
      // Per-WME accounting: every negated-CE-touching victim past the
      // first (or all of them, if a re-search was already pending) would
      // have found needs_research set.
      stats_.coalesced_researches +=
          neg_touched.size() - (rs->needs_research ? 0 : 1);
      rs->needs_research = true;
    }
  }
}

void TreatMatcher::OnAdd(const WmePtr& wme) {
  obs::ScopedTimer timer(match_timer_);
  ApplyAdd(wme);
}

void TreatMatcher::OnRemove(const WmePtr& wme) {
  obs::ScopedTimer timer(match_timer_);
  ApplyRemove(wme, /*defer_unblock=*/false);
}

void TreatMatcher::ReplayRule(RuleState* rs, const ChangeBatch& batch,
                              ConflictSet::Delta* delta, Stats* stats) {
  // Scoped: while this task waits on a slice fork it help-drains the pool
  // queue and can execute another replay task, whose exit must restore this
  // frame's redirection rather than clear it.
  ConflictSet::ScopedThreadDelta scoped_delta(cs_, delta);
  for (size_t e = 0; e < batch.changes.size(); ++e) {
    const WmChange& c = batch.changes[e];
    delta->SetStamp({static_cast<uint32_t>(e), 0, 0, 0});
    if (c.added) {
      ApplyAddToRule(rs, c.wme, stats);
    } else {
      ApplyRemoveFromRule(rs, c.wme, /*defer_unblock=*/true, stats);
    }
  }
  if (rs->needs_research) {
    rs->needs_research = false;
    delta->SetStamp({static_cast<uint32_t>(batch.changes.size()), 0, 0, 0});
    SearchAll(rs, stats);
  }
}

void TreatMatcher::OnBatch(const ChangeBatch& batch) {
  obs::ScopedTimer timer(match_timer_);
  ++stats_.batches;
  if (pool_ != nullptr && rules_.size() > 1) {
    if (tracer_ != nullptr && tracer_->enabled()) {
      for (const auto& rs : rules_) {
        tracer_->Emit(obs::TraceEvent("rule_replay")
                          .Str("rule", rs->rule->name)
                          .Num("changes", batch.changes.size()));
      }
    }
    // Rule states are disjoint, so each rule replays the whole batch as one
    // task. Stamping ops with the change index and merging deltas in rule
    // order reproduces the sequential (change-major) op stream exactly.
    std::vector<ConflictSet::Delta> deltas(rules_.size());
    std::vector<Stats> stats(rules_.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(rules_.size());
    for (size_t i = 0; i < rules_.size(); ++i) {
      tasks.push_back([this, &batch, &deltas, &stats, i] {
        ReplayRule(rules_[i].get(), batch, &deltas[i], &stats[i]);
      });
    }
    pool_->RunAll(std::move(tasks));
    for (const Stats& s : stats) {
      stats_.seeded_searches += s.seeded_searches;
      stats_.full_searches += s.full_searches;
      stats_.coalesced_researches += s.coalesced_researches;
      stats_.grouped_removals += s.grouped_removals;
      stats_.intra_splits += s.intra_splits;
      stats_.intra_slice_tasks += s.intra_slice_tasks;
    }
    cs_->ApplyDeltas(&deltas);
    return;
  }
  // Consecutive removals apply as one grouped run (mirrors the Rete
  // matcher's removal run-grouping): same final state, far fewer passes.
  const std::vector<WmChange>& changes = batch.changes;
  for (size_t i = 0; i < changes.size();) {
    if (changes[i].added) {
      ApplyAdd(changes[i].wme);
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < changes.size() && !changes[j].added) ++j;
    ApplyRemoveRun(changes, i, j);
    i = j;
  }
  for (const auto& rs : rules_) {
    if (!rs->needs_research) continue;
    rs->needs_research = false;
    SearchAll(rs.get(), &stats_);
  }
}

size_t TreatMatcher::AlphaMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& rs : rules_) {
    for (const TreatAlpha& a : rs->alpha) bytes += a.MemoryBytes();
  }
  return bytes;
}

size_t TreatMatcher::num_instantiations() const {
  size_t n = 0;
  for (const auto& rs : rules_) n += rs->insts.size();
  return n;
}

}  // namespace sorel
