#ifndef SOREL_TREAT_TREAT_H_
#define SOREL_TREAT_TREAT_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "lang/compiled_rule.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rete/conflict_set.h"
#include "rete/matcher.h"
#include "wm/working_memory.h"

namespace sorel {

class ThreadPool;

/// TREAT (Miranker 1986): the tuple-oriented baseline matcher the paper
/// cites. Keeps only alpha memories (no beta memories); on each WM change it
/// searches for new instantiations seeded at the changed WME, and deletes
/// conflict-set instantiations that contain a removed WME. Negated CEs are
/// handled by blocking (additions delete blocked instantiations; removals
/// trigger a constrained re-search).
///
/// Set-oriented rules are rejected — that tuple orientation is precisely
/// what the paper's S-node extension addresses.
class TreatMatcher : public Matcher {
 public:
  struct Stats {
    uint64_t seeded_searches = 0;
    uint64_t full_searches = 0;
    /// ChangeBatch deliveries handled natively.
    uint64_t batches = 0;
    /// Unblocking re-searches coalesced by batching (per-WME delivery would
    /// have run one SearchAll per negated-CE removal; the batch runs one
    /// per touched rule).
    uint64_t coalesced_researches = 0;
    /// Multi-removal runs in a batch handled as one grouped pass (one alpha
    /// compaction + one instantiation sweep per rule instead of one of each
    /// per removed WME). Sequential batch path only; the parallel replay
    /// path already amortizes per-rule.
    uint64_t grouped_removals = 0;
    /// Full searches whose first-CE scan was forked into parallel slices
    /// (intra-rule parallelism), and the slice tasks dispatched.
    uint64_t intra_splits = 0;
    uint64_t intra_slice_tasks = 0;
  };

  /// `pool` (borrowed, may be null) enables parallel batch propagation:
  /// every rule's state (alpha memories, instantiations) is private to it,
  /// so each touched rule replays the whole batch as one worker task, with
  /// conflict-set sends buffered and merged in the sequential order.
  /// `intra_split_min` (0 disables) additionally forks a full search's
  /// first-CE scan into parallel slices when that alpha memory holds at
  /// least this many WMEs: slices run the pure join search into private row
  /// buffers, and emission (dedup + conflict-set sends) happens serially in
  /// slice-concatenation order — the sequential scan order — so observable
  /// behavior is unchanged.
  /// `metrics` / `tracer` (borrowed, may be null) hook the matcher into
  /// the observability layer: treat.* counters register as registry views
  /// and the parallel batch path emits per-rule rule_replay events.
  /// `soa_memories` selects the columnar alpha layout (a parallel time-tag
  /// column beside the WME column, so removal passes scan contiguous tags);
  /// off keeps the plain WME-pointer vectors as the ablation baseline.
  TreatMatcher(WorkingMemory* wm, ConflictSet* cs, ThreadPool* pool = nullptr,
               int intra_split_min = 0,
               obs::MetricRegistry* metrics = nullptr,
               obs::Tracer* tracer = nullptr, bool soa_memories = true);
  ~TreatMatcher() override;

  TreatMatcher(const TreatMatcher&) = delete;
  TreatMatcher& operator=(const TreatMatcher&) = delete;

  Status AddRule(const CompiledRule* rule) override;
  Status RemoveRule(const CompiledRule* rule) override;
  ConflictSet& conflict_set() override { return *cs_; }

  void OnAdd(const WmePtr& wme) override;
  void OnRemove(const WmePtr& wme) override;
  /// Native batched propagation: replays the changes in staging order so
  /// seeded searches see exactly the per-WME alpha states, but defers the
  /// negated-CE unblocking re-search to one SearchAll per touched rule at
  /// batch end (final instantiation set is order-insensitive: every row the
  /// intermediate re-searches could emit is either found by the final one
  /// or was deleted by a later change anyway).
  void OnBatch(const ChangeBatch& batch) override;

  size_t num_instantiations() const;
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  class TreatInst;
  class TreatAlpha;
  struct RuleState;

  /// Parameters of one recursive search: the optional seed constraint, the
  /// optional first-CE slice restriction, and the optional row buffer that
  /// defers emission (slice tasks buffer; the coordinator emits).
  struct SearchCtx {
    int seed_ce = -1;
    WmePtr seed;
    int slice_ce = -1;
    size_t slice_lo = 0;
    size_t slice_hi = 0;
    std::vector<Row>* out = nullptr;
  };

  void ApplyAdd(const WmePtr& wme);
  /// `defer_unblock`: flag the rule for a batch-end SearchAll instead of
  /// re-searching immediately on a negated-CE removal.
  void ApplyRemove(const WmePtr& wme, bool defer_unblock);
  /// Grouped form of ApplyRemove for a run of consecutive removals
  /// `[begin, end)` in a batch: one stable alpha compaction and one
  /// instantiation sweep per rule for the whole run. Final rule state,
  /// surviving alpha order, and the coalesced_researches count are
  /// identical to removing the WMEs one at a time with defer_unblock.
  void ApplyRemoveRun(const std::vector<WmChange>& changes, size_t begin,
                      size_t end);
  /// Single-rule bodies of ApplyAdd/ApplyRemove. Counters go through
  /// `stats` so concurrent per-rule replays can accumulate privately.
  void ApplyAddToRule(RuleState* rs, const WmePtr& wme, Stats* stats);
  void ApplyRemoveFromRule(RuleState* rs, const WmePtr& wme,
                           bool defer_unblock, Stats* stats);
  /// One task of the parallel batch path: replays every change against one
  /// rule, buffering conflict-set ops into `delta` with per-change stamps.
  void ReplayRule(RuleState* rs, const ChangeBatch& batch,
                  ConflictSet::Delta* delta, Stats* stats);
  void SearchFromSeed(RuleState* rs, int seed_ce, const WmePtr& seed,
                      Stats* stats);
  void SearchAll(RuleState* rs, Stats* stats);
  void ExtendRow(RuleState* rs, size_t ce_index, Row* row,
                 const SearchCtx& ctx);
  bool BlockedByNegated(const RuleState& rs, const Row& row) const;
  void EmitInst(RuleState* rs, const Row& row);
  void DropInstsContaining(RuleState* rs, const Wme& wme);
  void DropInstsContainingAny(RuleState* rs,
                              const std::unordered_set<TimeTag>& victims);

  size_t AlphaMemoryBytes() const;

  WorkingMemory* wm_;
  ConflictSet* cs_;
  ThreadPool* pool_;
  int intra_split_min_;
  bool soa_memories_;
  obs::MetricRegistry* metrics_ = nullptr;  // borrowed; may be null
  obs::Tracer* tracer_ = nullptr;           // borrowed; may be null
  obs::Timer* match_timer_ = nullptr;       // non-null when timing enabled
  std::vector<std::unique_ptr<RuleState>> rules_;
  Stats stats_;
};

}  // namespace sorel

#endif  // SOREL_TREAT_TREAT_H_
