#include "core/aggregate.h"

namespace sorel {

void AggState::Insert(const Value& v) {
  auto [it, inserted] = support_.try_emplace(v, 0);
  ++it->second;
  if (!inserted) return;
  // `v` entered the domain.
  if (v.is_int()) {
    isum_ += v.as_int();
  } else if (v.is_float()) {
    fsum_ += v.as_float();
    ++float_count_;
  } else {
    ++nonnum_count_;
  }
}

void AggState::Remove(const Value& v) {
  auto it = support_.find(v);
  if (it == support_.end()) return;  // defensive; callers keep this balanced
  if (--it->second > 0) return;
  support_.erase(it);
  // `v` left the domain.
  if (v.is_int()) {
    isum_ -= v.as_int();
  } else if (v.is_float()) {
    fsum_ -= v.as_float();
    --float_count_;
  } else {
    --nonnum_count_;
  }
}

Result<Value> AggState::Current() const {
  switch (op_) {
    case AggOp::kCount:
      return Value::Int(static_cast<int64_t>(support_.size()));
    case AggOp::kMin:
      if (support_.empty()) {
        return Status::RuntimeError("min of an empty domain");
      }
      return support_.begin()->first;
    case AggOp::kMax:
      if (support_.empty()) {
        return Status::RuntimeError("max of an empty domain");
      }
      return support_.rbegin()->first;
    case AggOp::kSum:
    case AggOp::kAvg: {
      if (nonnum_count_ != 0) {
        return Status::RuntimeError("sum/avg over non-numeric domain");
      }
      if (op_ == AggOp::kSum) {
        if (float_count_ == 0) return Value::Int(isum_);
        return Value::Float(fsum_ + static_cast<double>(isum_));
      }
      if (support_.empty()) {
        return Status::RuntimeError("avg of an empty domain");
      }
      double total = fsum_ + static_cast<double>(isum_);
      return Value::Float(total / static_cast<double>(support_.size()));
    }
  }
  return Status::RuntimeError("unknown aggregate");
}

void AggState::Clear() {
  support_.clear();
  isum_ = 0;
  fsum_ = 0;
  float_count_ = 0;
  nonnum_count_ = 0;
}

}  // namespace sorel
