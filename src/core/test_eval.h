#ifndef SOREL_CORE_TEST_EVAL_H_
#define SOREL_CORE_TEST_EVAL_H_

#include <vector>

#include "base/status.h"
#include "lang/compiled_rule.h"
#include "rete/instantiation.h"

namespace sorel {

/// Evaluates `rule`'s `:test` expression over an explicit row set,
/// computing aggregates from scratch (distinct-domain semantics identical
/// to the S-node's incremental state). Returns true if the rule has no
/// test. Used by the DIPS matcher (§8.2, per-group test evaluation) and as
/// the non-incremental oracle in property tests.
Result<bool> EvalTestOverRows(const CompiledRule& rule,
                              const std::vector<Row>& rows);

}  // namespace sorel

#endif  // SOREL_CORE_TEST_EVAL_H_
