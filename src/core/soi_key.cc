#include "core/soi_key.h"

#include <functional>

namespace sorel {

size_t SoiKeyHash::operator()(const SoiKey& k) const {
  size_t h = 0x9e3779b97f4a7c15ull;
  for (TimeTag t : k.tags) {
    h ^= std::hash<TimeTag>()(t) + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  for (const Value& v : k.vals) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

SoiKey MakeSoiKey(const CompiledRule& rule, const Row& row) {
  SoiKey key;
  key.tags.reserve(rule.key_token_positions.size());
  for (int pos : rule.key_token_positions) {
    key.tags.push_back(row[static_cast<size_t>(pos)]->time_tag());
  }
  key.vals.reserve(rule.key_scalars.size());
  for (const auto& [pos, field] : rule.key_scalars) {
    key.vals.push_back(row[static_cast<size_t>(pos)]->field(field));
  }
  return key;
}

}  // namespace sorel
