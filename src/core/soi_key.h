#ifndef SOREL_CORE_SOI_KEY_H_
#define SOREL_CORE_SOI_KEY_H_

#include <vector>

#include "base/value.h"
#include "lang/compiled_rule.h"
#include "rete/instantiation.h"

namespace sorel {

/// The SOI partition key of Figure 3: the identities (time tags) of the
/// WMEs matching the non-set-oriented CEs (the paper's C) plus the values
/// of the `:scalar` PVs (the paper's P). Two regular instantiations belong
/// to the same SOI iff their keys are equal. Shared by the S-node's
/// γ-memory and the DIPS group-by retrieval (§8.2).
struct SoiKey {
  std::vector<TimeTag> tags;
  std::vector<Value> vals;

  bool operator==(const SoiKey& other) const {
    return tags == other.tags && vals == other.vals;
  }
};

struct SoiKeyHash {
  size_t operator()(const SoiKey& k) const;
};

/// Builds the key for one instantiation row of `rule`.
SoiKey MakeSoiKey(const CompiledRule& rule, const Row& row);

}  // namespace sorel

#endif  // SOREL_CORE_SOI_KEY_H_
