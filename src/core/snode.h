#ifndef SOREL_CORE_SNODE_H_
#define SOREL_CORE_SNODE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/aggregate.h"
#include "core/soi_key.h"
#include "lang/compiled_rule.h"
#include "rete/conflict_set.h"
#include "rete/network.h"
#include "rete/token.h"

namespace sorel {

/// Tuning/ablation switches for the S-node (benchmarked in bench_fig3).
struct SNodeOptions {
  /// Ablation: rebuild every aggregate from all member rows after each
  /// token instead of updating incrementally.
  bool recompute_aggregates = false;
  /// Ablation: locate the candidate SOI with the literal `for i in
  /// candidate SOIs` scan of Figure 3 instead of a hash lookup.
  bool linear_scan_gamma = false;
};

/// A set-oriented instantiation: an aggregation of regular instantiations
/// that agree on all non-set-oriented CEs and all `:scalar` PVs (§4.1, §5).
/// Lives in the γ-memory of its S-node; the conflict set holds a pointer,
/// so γ-memory updates are transparently visible (§5).
class Soi : public InstantiationRef {
 public:
  /// One member (a regular instantiation), with its recency key.
  struct Member {
    Token* token;
    Row row;
    std::vector<TimeTag> rec;  // tags sorted descending
  };

  explicit Soi(const CompiledRule* rule) : rule_(rule) {}

  const CompiledRule& rule() const override { return *rule_; }
  void CollectRows(std::vector<Row>* out) const override;
  std::vector<TimeTag> RecencyTags() const override;
  TimeTag FirstCeTag() const override;

  /// Members ordered like the conflict set (most recent first).
  const std::vector<Member>& members() const { return members_; }
  size_t size() const { return members_.size(); }
  /// True when the SOI currently satisfies the `:test` expression and is
  /// flowed to the conflict set (the paper's Status field).
  bool active() const { return active_; }
  /// Bumped on every γ-memory change; powers §6 re-eligibility.
  uint64_t mutation() const { return mutation_; }
  /// Current value of test aggregate `index` (see
  /// CompiledRule::test_aggregates).
  Result<Value> AggregateValue(int index) const;

 private:
  friend class SNode;

  const CompiledRule* rule_;
  /// The γ-memory key this SOI is filed under (kept so deletion — possibly
  /// at batch end, long after the last member row is gone — needs no
  /// re-derivation).
  SoiKey key_;
  std::vector<Member> members_;
  std::vector<AggState> aggs_;
  bool active_ = false;
  uint64_t mutation_ = 0;
  // --- batch-mode bookkeeping (meaningful only between OnBatchBegin/End) ---
  bool batch_touched_ = false;
  bool batch_head_changed_ = false;
};

/// The paper's S-node (Figure 3): placed after the last test node of a
/// set-oriented rule; aggregates candidate instantiations into SOIs in its
/// γ-memory, incrementally maintains aggregate values, evaluates the test
/// expression, and decides the flow of each SOI into the conflict set with
/// +, -, and `time` marks.
class SNode : public ReteSink {
 public:
  struct Stats {
    uint64_t tokens = 0;
    uint64_t sends_plus = 0;
    uint64_t sends_minus = 0;
    uint64_t sends_time = 0;
    uint64_t sois_created = 0;
    uint64_t sois_deleted = 0;
    /// `:test` expression evaluations. Per-WME mode pays one per member
    /// token; batch mode pays one per *touched SOI* per batch — the O(1)
    /// evaluations-per-set-action the ISSUE acceptance criterion names.
    uint64_t test_evals = 0;
    /// OnBatchEnd flushes performed.
    uint64_t batch_flushes = 0;
  };

  /// `metrics` (borrowed, may be null) registers this S-node's snode.*
  /// counters as registry views; every S-node registers under the same
  /// names and the registry sums them, which is exactly the aggregation
  /// Engine::match_stats() reports.
  SNode(const CompiledRule* rule, ConflictSet* cs, SNodeOptions options = {},
        obs::MetricRegistry* metrics = nullptr);
  ~SNode() override;

  SNode(const SNode&) = delete;
  SNode& operator=(const SNode&) = delete;

  void OnToken(Token* token, bool added) override;
  /// Batch mode: between Begin and End, OnToken only maintains γ-memory
  /// membership and (incremental) aggregates; `:test` evaluation and the
  /// flow decision are deferred to End — one evaluation and at most one
  /// conflict-set send per touched SOI, however many member tokens the
  /// batch carried.
  void OnBatchBegin() override;
  void OnBatchEnd() override;

  /// Candidate SOIs currently in the γ-memory (active and inactive).
  size_t num_sois() const { return gamma_.size(); }
  std::vector<const Soi*> sois() const;

  /// First `:test` evaluation error, if any (treated as test failure).
  const Status& last_error() const { return last_error_; }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  Soi* FindOrNull(const SoiKey& key);
  /// Evaluates the rule's test expression for `soi` (true if no test).
  bool EvalTest(const Soi& soi);
  void RebuildAggregates(Soi* soi);

  const CompiledRule* rule_;
  ConflictSet* cs_;
  SNodeOptions options_;
  obs::MetricRegistry* metrics_ = nullptr;  // borrowed; may be null
  std::unordered_map<SoiKey, std::unique_ptr<Soi>, SoiKeyHash> gamma_;
  Status last_error_;
  Stats stats_;
  bool in_batch_ = false;
  /// SOIs touched this batch, first-touch order (flush order).
  std::vector<Soi*> touched_;
};

}  // namespace sorel

#endif  // SOREL_CORE_SNODE_H_
