#ifndef SOREL_CORE_AGGREGATE_H_
#define SOREL_CORE_AGGREGATE_H_

#include <map>

#include "base/status.h"
#include "base/value.h"
#include "lang/ast.h"

namespace sorel {

/// Incrementally maintained aggregate state: the paper's AV entry — "the
/// aggregate's current value followed by a list of (value, counter) pairs
/// representing the values in the WMEs used in the computation" (§5).
///
/// Aggregates operate on the *domain* of a set-oriented PV, which §4.1
/// defines as the **set** of values occurring in the matching WMEs; the
/// counters track support so a value leaves the domain only when its last
/// supporting instantiation row is removed. For CE element variables the
/// values are WME time tags, making `count` the number of distinct WMEs.
class AggState {
 public:
  explicit AggState(AggOp op) : op_(op) {}

  /// Registers one supporting occurrence of `v`.
  void Insert(const Value& v);

  /// Unregisters one supporting occurrence of `v` (must be supported).
  void Remove(const Value& v);

  /// Current aggregate value:
  ///   count -> Int(#distinct values)
  ///   min/max -> smallest/largest domain value (error on empty domain)
  ///   sum -> Int if the domain is all-integer, else Float
  ///          (error if any domain value is non-numeric)
  ///   avg -> Float (same numeric requirement; error on empty domain)
  Result<Value> Current() const;

  AggOp op() const { return op_; }
  /// Number of distinct values in the domain.
  size_t distinct() const { return support_.size(); }
  bool empty() const { return support_.empty(); }

  /// Rebuilds state from scratch (ablation baseline for benches).
  void Clear();

 private:
  AggOp op_;
  std::map<Value, int64_t, ValueLess> support_;
  // Maintained only while the domain stays numeric-only; `sum` falls back
  // to an error otherwise.
  int64_t isum_ = 0;
  double fsum_ = 0;
  size_t float_count_ = 0;    // distinct float values
  size_t nonnum_count_ = 0;   // distinct non-numeric values
};

}  // namespace sorel

#endif  // SOREL_CORE_AGGREGATE_H_
