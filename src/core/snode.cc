#include "core/snode.h"

#include <algorithm>
#include <utility>

#include "lang/eval.h"

namespace sorel {

namespace {

/// The aggregated value one row contributes to `spec`: the PV's value at
/// its binding site, or the WME's time tag for CE element aggregates.
Value AggInputValue(const AggregateSpec& spec, const Row& row) {
  const WmePtr& wme = row[static_cast<size_t>(spec.token_pos)];
  if (spec.over_element) return Value::Int(wme->time_tag());
  return wme->field(spec.field);
}

std::vector<TimeTag> RowRecency(const Row& row) {
  std::vector<TimeTag> tags;
  tags.reserve(row.size());
  for (const WmePtr& w : row) tags.push_back(w->time_tag());
  std::sort(tags.rbegin(), tags.rend());
  return tags;
}

/// Resolves scalar variables of the rule against an SOI's head row for
/// `:test` evaluation; aggregates come from the γ-memory state.
class SoiTestContext : public EvalContext {
 public:
  explicit SoiTestContext(const Soi& soi) : soi_(soi) {}

  Result<Value> ResolveVar(const std::string& name) const override {
    const VarInfo* info = soi_.rule().FindVar(name);
    if (info == nullptr || info->kind != VarInfo::Kind::kValue ||
        info->set_oriented || info->occurrences.empty() ||
        soi_.members().empty()) {
      return Status::RuntimeError("variable <" + name +
                                  "> is not scalar in :test");
    }
    const auto& [pos, field] = info->occurrences.front();
    const Row& row = soi_.members().front().row;
    return row[static_cast<size_t>(pos)]->field(field);
  }

  Result<Value> EvalAggregate(const Expr& agg) const override {
    if (agg.agg_index < 0) {
      return Status::RuntimeError("aggregate not compiled for :test");
    }
    return soi_.AggregateValue(agg.agg_index);
  }

 private:
  const Soi& soi_;
};

}  // namespace

// ------------------------------------------------------------------ Soi ---

void Soi::CollectRows(std::vector<Row>* out) const {
  out->reserve(out->size() + members_.size());
  for (const Member& m : members_) out->push_back(m.row);
}

std::vector<TimeTag> Soi::RecencyTags() const {
  if (members_.empty()) return {};
  return members_.front().rec;
}

TimeTag Soi::FirstCeTag() const {
  if (members_.empty() || members_.front().row.empty()) return 0;
  return members_.front().row.front()->time_tag();
}

Result<Value> Soi::AggregateValue(int index) const {
  if (index < 0 || index >= static_cast<int>(aggs_.size())) {
    return Status::InvalidArgument("aggregate index out of range");
  }
  return aggs_[static_cast<size_t>(index)].Current();
}

// ---------------------------------------------------------------- SNode ---

SNode::SNode(const CompiledRule* rule, ConflictSet* cs, SNodeOptions options,
             obs::MetricRegistry* metrics)
    : rule_(rule), cs_(cs), options_(options), metrics_(metrics) {
  if (metrics_ == nullptr) return;
  metrics_->RegisterCounter(this, "snode.tokens",
                            [this] { return stats_.tokens; });
  metrics_->RegisterCounter(this, "snode.sends_plus",
                            [this] { return stats_.sends_plus; });
  metrics_->RegisterCounter(this, "snode.sends_minus",
                            [this] { return stats_.sends_minus; });
  metrics_->RegisterCounter(this, "snode.sends_time",
                            [this] { return stats_.sends_time; });
  metrics_->RegisterCounter(this, "snode.sois_created",
                            [this] { return stats_.sois_created; });
  metrics_->RegisterCounter(this, "snode.sois_deleted",
                            [this] { return stats_.sois_deleted; });
  metrics_->RegisterCounter(this, "snode.test_evals",
                            [this] { return stats_.test_evals; });
  metrics_->RegisterCounter(this, "snode.batch_flushes",
                            [this] { return stats_.batch_flushes; });
  metrics_->RegisterReset(this, [this] { ResetStats(); });
}

SNode::~SNode() {
  if (metrics_ != nullptr) metrics_->Unregister(this);
  for (auto& [key, soi] : gamma_) {
    if (soi->active_) cs_->Remove(soi.get());
  }
}

Soi* SNode::FindOrNull(const SoiKey& key) {
  if (options_.linear_scan_gamma) {
    // Figure 3 verbatim: "for i in candidate SOIs ... if ∀x∈C i[x] =
    // token[x] and ∀x∈P i[x] = token[x]".
    for (auto& [k, soi] : gamma_) {
      if (k == key) return soi.get();
    }
    return nullptr;
  }
  auto it = gamma_.find(key);
  return it == gamma_.end() ? nullptr : it->second.get();
}

bool SNode::EvalTest(const Soi& soi) {
  ++stats_.test_evals;
  if (rule_->ast.test == nullptr) return true;
  SoiTestContext ctx(soi);
  Result<Value> result = EvalExpr(*rule_->ast.test, ctx);
  if (!result.ok()) {
    if (last_error_.ok()) last_error_ = result.status();
    return false;
  }
  return result->IsTruthy();
}

void SNode::RebuildAggregates(Soi* soi) {
  for (size_t i = 0; i < soi->aggs_.size(); ++i) {
    AggState& agg = soi->aggs_[i];
    agg.Clear();
    for (const Soi::Member& m : soi->members_) {
      agg.Insert(AggInputValue(rule_->test_aggregates[i], m.row));
    }
  }
}

void SNode::OnToken(Token* token, bool added) {
  ++stats_.tokens;
  Row row;
  TokenRow(token, &row);
  SoiKey key = MakeSoiKey(*rule_, row);

  enum class Chg { kNew, kDelete, kNewTime, kSameTime, kFail };
  Chg chg;
  Soi* soi = FindOrNull(key);

  // --- Stage 1 (Figure 3): find the SOI and the place within it. ---
  if (added) {
    Soi::Member member{token, row, RowRecency(row)};
    if (soi == nullptr) {
      auto fresh = std::make_unique<Soi>(rule_);
      fresh->key_ = key;
      for (const AggregateSpec& spec : rule_->test_aggregates) {
        fresh->aggs_.emplace_back(spec.op);
      }
      soi = fresh.get();
      gamma_.emplace(std::move(key), std::move(fresh));
      ++stats_.sois_created;
      chg = Chg::kNew;
      soi->members_.push_back(std::move(member));
    } else {
      // Insert ordered like the conflict set: descending recency.
      size_t i = 0;
      while (i < soi->members_.size() &&
             CompareRecencyTags(member.rec, soi->members_[i].rec) <= 0) {
        ++i;
      }
      chg = (i == 0) ? Chg::kNewTime : Chg::kSameTime;
      soi->members_.insert(
          soi->members_.begin() + static_cast<ptrdiff_t>(i),
          std::move(member));
    }
  } else {
    if (soi == nullptr) return;  // defensive: unknown token
    size_t i = 0;
    while (i < soi->members_.size() && soi->members_[i].token != token) ++i;
    if (i == soi->members_.size()) return;  // defensive
    bool was_head = (i == 0);
    soi->members_.erase(soi->members_.begin() + static_cast<ptrdiff_t>(i));
    if (soi->members_.empty()) {
      chg = Chg::kDelete;
    } else {
      chg = was_head ? Chg::kNewTime : Chg::kSameTime;
    }
  }
  ++soi->mutation_;

  if (in_batch_) {
    // Batch mode: maintain membership and aggregates only; the test and
    // the flow decision run once per touched SOI in OnBatchEnd. The
    // aggregate update is unconditional (even when the SOI just emptied):
    // the SOI object survives until flush and may be refilled by a later
    // change in the same batch, so its AV entries must stay in sync.
    if (!options_.recompute_aggregates) {
      for (size_t i = 0; i < soi->aggs_.size(); ++i) {
        Value v = AggInputValue(rule_->test_aggregates[i], row);
        if (added) {
          soi->aggs_[i].Insert(v);
        } else {
          soi->aggs_[i].Remove(v);
        }
      }
    }
    if (!soi->batch_touched_) {
      soi->batch_touched_ = true;
      touched_.push_back(soi);
    }
    if (chg != Chg::kSameTime) soi->batch_head_changed_ = true;
    return;
  }

  // --- Stage 2: update the aggregates and re-evaluate the test. ---
  if (chg != Chg::kDelete) {
    if (options_.recompute_aggregates) {
      RebuildAggregates(soi);
    } else {
      for (size_t i = 0; i < soi->aggs_.size(); ++i) {
        Value v = AggInputValue(rule_->test_aggregates[i], row);
        if (added) {
          soi->aggs_[i].Insert(v);
        } else {
          soi->aggs_[i].Remove(v);
        }
      }
    }
    if (!EvalTest(*soi)) chg = Chg::kFail;
  }

  // --- Stage 3: decide the flow of the SOI. ---
  switch (chg) {
    case Chg::kNew:
      // Figure 3 activates unconditionally here, but the test was already
      // evaluated in stage 2 (chg would be kFail had it failed).
      soi->active_ = true;
      cs_->Add(soi);
      ++stats_.sends_plus;
      break;
    case Chg::kDelete: {
      if (soi->active_) {
        cs_->Remove(soi);
        ++stats_.sends_minus;
      }
      // (The stored key outlives the member rows; copy before erasing —
      // the erase destroys the Soi that owns it.)
      SoiKey dead = soi->key_;
      gamma_.erase(dead);
      ++stats_.sois_deleted;
      break;
    }
    case Chg::kFail:
      if (soi->active_) {
        soi->active_ = false;
        cs_->Remove(soi);
        ++stats_.sends_minus;
      }
      break;
    case Chg::kNewTime:
      if (soi->active_) {
        cs_->Touch(soi);  // the `time` mark: reposition in the conflict set
        ++stats_.sends_time;
      } else {
        soi->active_ = true;
        cs_->Add(soi);
        ++stats_.sends_plus;
      }
      break;
    case Chg::kSameTime:
      // Figure 3 sends nothing here; §6 still makes the SOI eligible again
      // ("if any part of the instantiation changes"). Touch restores
      // eligibility without repositioning. We also activate an inactive SOI
      // whose test now passes — a completion of the paper's pseudocode
      // (see DESIGN.md).
      if (soi->active_) {
        cs_->Touch(soi);
      } else {
        soi->active_ = true;
        cs_->Add(soi);
        ++stats_.sends_plus;
      }
      break;
  }
}

void SNode::OnBatchBegin() {
  in_batch_ = true;
  touched_.clear();
}

void SNode::OnBatchEnd() {
  in_batch_ = false;
  ++stats_.batch_flushes;
  // Flush in first-touch order: the order per-WME delivery would have
  // reached each SOI's first conflict-set decision.
  for (Soi* soi : touched_) {
    soi->batch_touched_ = false;
    bool head_changed = soi->batch_head_changed_;
    soi->batch_head_changed_ = false;
    if (soi->members_.empty()) {
      if (soi->active_) {
        cs_->Remove(soi);
        ++stats_.sends_minus;
      }
      SoiKey dead = soi->key_;
      gamma_.erase(dead);
      ++stats_.sois_deleted;
      continue;
    }
    if (options_.recompute_aggregates) RebuildAggregates(soi);
    if (EvalTest(*soi)) {
      if (soi->active_) {
        // Touch regardless of head movement: any membership change restores
        // §6 eligibility. `time` sends are only counted when the head (and
        // therefore the conflict-set position) actually moved.
        cs_->Touch(soi);
        if (head_changed) ++stats_.sends_time;
      } else {
        soi->active_ = true;
        cs_->Add(soi);
        ++stats_.sends_plus;
      }
    } else if (soi->active_) {
      soi->active_ = false;
      cs_->Remove(soi);
      ++stats_.sends_minus;
    }
  }
  touched_.clear();
}

std::vector<const Soi*> SNode::sois() const {
  std::vector<const Soi*> out;
  out.reserve(gamma_.size());
  for (const auto& [key, soi] : gamma_) out.push_back(soi.get());
  return out;
}

}  // namespace sorel
