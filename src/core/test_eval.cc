#include "core/test_eval.h"

#include "core/aggregate.h"
#include "lang/eval.h"

namespace sorel {

namespace {

class RowsTestContext : public EvalContext {
 public:
  RowsTestContext(const CompiledRule& rule, const std::vector<Row>& rows)
      : rule_(rule), rows_(rows) {}

  Result<Value> ResolveVar(const std::string& name) const override {
    const VarInfo* info = rule_.FindVar(name);
    if (info == nullptr || info->kind != VarInfo::Kind::kValue ||
        info->set_oriented || info->occurrences.empty() || rows_.empty()) {
      return Status::RuntimeError("variable <" + name +
                                  "> is not scalar in :test");
    }
    const auto& [pos, field] = info->occurrences.front();
    return rows_.front()[static_cast<size_t>(pos)]->field(field);
  }

  Result<Value> EvalAggregate(const Expr& agg) const override {
    const VarInfo* info = rule_.FindVar(agg.var);
    if (info == nullptr) {
      return Status::RuntimeError("unbound variable <" + agg.var + ">");
    }
    AggState state(agg.agg_op);
    if (info->kind == VarInfo::Kind::kElement) {
      for (const Row& row : rows_) {
        state.Insert(Value::Int(
            row[static_cast<size_t>(info->elem_token_pos)]->time_tag()));
      }
    } else {
      if (info->occurrences.empty()) {
        return Status::RuntimeError("variable <" + agg.var +
                                    "> has no binding site");
      }
      const auto& [pos, field] = info->occurrences.front();
      for (const Row& row : rows_) {
        state.Insert(row[static_cast<size_t>(pos)]->field(field));
      }
    }
    return state.Current();
  }

 private:
  const CompiledRule& rule_;
  const std::vector<Row>& rows_;
};

}  // namespace

Result<bool> EvalTestOverRows(const CompiledRule& rule,
                              const std::vector<Row>& rows) {
  if (rule.ast.test == nullptr) return true;
  RowsTestContext ctx(rule, rows);
  SOREL_ASSIGN_OR_RETURN(Value v, EvalExpr(*rule.ast.test, ctx));
  return v.IsTruthy();
}

}  // namespace sorel
