#ifndef SOREL_BASE_STATUS_H_
#define SOREL_BASE_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace sorel {

/// Error categories used across the library. The library never throws;
/// all fallible operations return `Status` or `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  // bad API usage (unknown class, wrong value kind, ...)
  kParseError,       // lexical or syntactic error in rule source
  kCompileError,     // semantic error in a rule (unbound variable, ...)
  kRuntimeError,     // error during rule firing (bad action target, ...)
  kNotFound,         // lookup failure (time tag, attribute, ...)
  kUnimplemented,    // feature intentionally not supported
};

/// Returns a short human-readable name for `code` ("ParseError", ...).
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status; `code` must not be kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status CompileError(std::string msg) {
    return Status(StatusCode::kCompileError, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error. Holds `T` when `ok()`, otherwise an error `Status`.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_t;` inside Result-returning functions.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::ParseError(...)`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Accessors for the held value.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error Status from `expr` out of the enclosing function.
#define SOREL_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::sorel::Status _sorel_status = (expr);        \
    if (!_sorel_status.ok()) return _sorel_status; \
  } while (false)

/// Evaluates `expr` (a Result<T>), propagating its error or assigning
/// its value to `lhs`.
#define SOREL_ASSIGN_OR_RETURN(lhs, expr)            \
  SOREL_ASSIGN_OR_RETURN_IMPL_(                      \
      SOREL_STATUS_CONCAT_(_sorel_result, __LINE__), lhs, expr)

#define SOREL_STATUS_CONCAT_INNER_(a, b) a##b
#define SOREL_STATUS_CONCAT_(a, b) SOREL_STATUS_CONCAT_INNER_(a, b)
#define SOREL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace sorel

#endif  // SOREL_BASE_STATUS_H_
