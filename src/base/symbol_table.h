#ifndef SOREL_BASE_SYMBOL_TABLE_H_
#define SOREL_BASE_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sorel {

/// Identifier of an interned symbol. Symbols with equal text always have
/// equal ids within one `SymbolTable`.
using SymbolId = int32_t;

/// Id of the invalid/unset symbol.
inline constexpr SymbolId kInvalidSymbol = -1;

/// Interns strings to dense small integer ids, as OPS5 implementations do
/// for symbolic atoms. A table is owned by an `Engine` (or a test) and is
/// passed by const reference to code that needs symbol names.
///
/// Well-known symbols (`nil`, `true`, `false`) are pre-interned with fixed
/// ids so that code can refer to them without a table lookup.
class SymbolTable {
 public:
  /// Fixed ids of the pre-interned symbols.
  static constexpr SymbolId kNil = 0;
  static constexpr SymbolId kTrue = 1;
  static constexpr SymbolId kFalse = 2;

  SymbolTable();

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Replaces this table's contents with a copy of `other`, preserving
  /// every id. Used when an Engine binds to a shared CompiledRuleBase: the
  /// session table starts from the base's interning so compiled SymbolIds
  /// resolve identically, then grows privately as the session interns new
  /// atoms.
  void CopyFrom(const SymbolTable& other);

  /// Returns the id for `text`, interning it on first use.
  SymbolId Intern(std::string_view text);

  /// Returns the id for `text` or kInvalidSymbol if never interned.
  SymbolId Find(std::string_view text) const;

  /// Returns the text of `id`. `id` must be a valid id from this table.
  std::string_view Name(SymbolId id) const;

  /// Number of interned symbols.
  size_t size() const { return names_.size(); }

 private:
  // Deque: element addresses are stable, so the string_view keys in ids_
  // (which point into these strings) survive growth.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, SymbolId> ids_;
};

}  // namespace sorel

#endif  // SOREL_BASE_SYMBOL_TABLE_H_
