#include "base/status.h"

namespace sorel {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kCompileError:
      return "CompileError";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace sorel
