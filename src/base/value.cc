#include "base/value.h"

#include <cmath>
#include <cstdio>

namespace sorel {

namespace {

// Rank used to order values of different kinds: nil < numbers < symbols.
int KindRank(ValueKind k) {
  switch (k) {
    case ValueKind::kNil:
      return 0;
    case ValueKind::kInt:
    case ValueKind::kFloat:
      return 1;
    case ValueKind::kSymbol:
      return 2;
  }
  return 3;
}

}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  int ra = KindRank(a.kind()), rb = KindRank(b.kind());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a.kind()) {
    case ValueKind::kNil:
      return 0;
    case ValueKind::kInt:
      if (b.kind() == ValueKind::kInt) {
        return a.int_ < b.int_ ? -1 : (a.int_ > b.int_ ? 1 : 0);
      }
      [[fallthrough]];
    case ValueKind::kFloat: {
      double da = a.AsDouble(), db = b.AsDouble();
      return da < db ? -1 : (da > db ? 1 : 0);
    }
    case ValueKind::kSymbol: {
      SymbolId sa = a.as_symbol(), sb = b.as_symbol();
      return sa < sb ? -1 : (sa > sb ? 1 : 0);
    }
  }
  return 0;
}

size_t Value::Hash() const {
  switch (kind_) {
    case ValueKind::kNil:
      return 0x9e3779b97f4a7c15ull;
    case ValueKind::kInt:
      // Hash ints via their double image so 5 and 5.0 collide, matching ==.
      // Integers beyond 2^53 lose precision in the key but == still
      // disambiguates inside buckets.
      return std::hash<double>()(static_cast<double>(int_));
    case ValueKind::kFloat:
      return std::hash<double>()(float_);
    case ValueKind::kSymbol:
      return std::hash<int64_t>()(int_) ^ 0x517cc1b727220a95ull;
  }
  return 0;
}

std::string Value::ToString(const SymbolTable& symbols) const {
  switch (kind_) {
    case ValueKind::kNil:
      return "nil";
    case ValueKind::kInt:
      return std::to_string(int_);
    case ValueKind::kFloat: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", float_);
      return buf;
    }
    case ValueKind::kSymbol:
      return std::string(symbols.Name(as_symbol()));
  }
  return "?";
}

bool ValueNameLess::operator()(const Value& a, const Value& b) const {
  if (a.is_symbol() && b.is_symbol()) {
    return symbols_->Name(a.as_symbol()) < symbols_->Name(b.as_symbol());
  }
  return Value::Compare(a, b) < 0;
}

}  // namespace sorel
