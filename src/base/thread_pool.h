#ifndef SOREL_BASE_THREAD_POOL_H_
#define SOREL_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sorel {

/// A fixed-size worker pool for fork/join match propagation. The intended
/// use is a sequence of `RunAll` calls, each handing over one batch of
/// independent tasks (e.g. one per-rule beta replay per touched rule) and
/// blocking until the whole batch has drained. The calling thread helps
/// execute queued tasks while it waits, so a pool of N workers gives N+1
/// executing threads at peak and `RunAll` never deadlocks even under
/// oversubscription.
///
/// `RunAll` is re-entrant: a task may itself call `RunAll` (intra-rule
/// splitting forks slice sub-batches from inside a per-rule replay task).
/// Each call tracks its own batch's completion, and a waiting caller helps
/// drain whatever is queued — its own sub-batch or anyone else's tasks —
/// so nesting cannot deadlock, even on a pool with zero workers (where the
/// calling thread simply executes everything inline).
///
/// Tasks must be independent: the pool provides no ordering guarantees
/// between them beyond "all complete before RunAll returns". Determinism is
/// the caller's job (sorel's matchers buffer conflict-set sends per task and
/// merge them in rule-registration order afterwards; slice forks evaluate
/// pure predicates and apply results in scan order on the forking thread).
class ThreadPool {
 public:
  /// Counters surfaced through Engine::match_stats().
  struct Stats {
    /// Worker threads in the pool (constant; repeated here so one struct
    /// describes the whole pool).
    uint64_t threads = 0;
    /// Tasks executed across all RunAll calls.
    uint64_t tasks = 0;
    /// RunAll invocations (one per parallelized batch).
    uint64_t batches = 0;
    /// RunAll invocations made from inside a pool task (intra-rule slice
    /// forks and other nested fork/join work).
    uint64_t nested_batches = 0;
    /// Queue high-water mark: the most tasks ever waiting at once.
    uint64_t max_task_depth = 0;
  };

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Runs every task (workers plus the calling thread) and returns when all
  /// of *this call's* tasks have finished. May be called from inside a task
  /// (see the class comment); the nested call only waits for its own batch.
  void RunAll(std::vector<std::function<void()>> tasks);

  const Stats& stats() const { return stats_; }
  void ResetStats();

 private:
  /// Completion state of one RunAll call, owned by its caller's frame.
  struct Batch {
    size_t remaining = 0;
  };
  struct QueuedTask {
    std::function<void()> fn;
    Batch* batch;
  };

  void WorkerLoop();
  /// Pops and runs one queued task under `lock` held; returns false when the
  /// queue is empty. Signals `done_cv_` when the task's batch completes.
  bool RunOne(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stopping
  std::condition_variable done_cv_;   // RunAll: some batch fully drained
  std::deque<QueuedTask> queue_;
  bool stop_ = false;
  Stats stats_;
};

}  // namespace sorel

#endif  // SOREL_BASE_THREAD_POOL_H_
