#ifndef SOREL_BASE_VALUE_H_
#define SOREL_BASE_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "base/symbol_table.h"

namespace sorel {

/// Runtime kind of a `Value`.
enum class ValueKind : uint8_t {
  kNil = 0,   // absent attribute / the symbol `nil`
  kInt,       // 64-bit integer
  kFloat,     // IEEE double
  kSymbol,    // interned symbolic atom
};

/// An OPS5 attribute value: nil, an integer, a float, or an interned symbol.
///
/// Equality follows OPS5 matching rules: integers and floats compare
/// numerically across kinds (`5 == 5.0`), symbols compare by identity, and
/// nil equals only nil. `Compare` extends this to a total order used by
/// aggregate state and `foreach ... ascending|descending`:
/// nil < all numbers (by numeric value) < all symbols (by id).
///
/// For user-facing symbol ordering by *name* (rather than interning order)
/// use `ValueNameLess` with the owning `SymbolTable`.
class Value {
 public:
  /// Constructs nil.
  constexpr Value() : kind_(ValueKind::kNil), int_(0) {}

  static constexpr Value Nil() { return Value(); }
  static constexpr Value Int(int64_t v) { return Value(ValueKind::kInt, v); }
  static constexpr Value Float(double v) {
    Value out(ValueKind::kFloat, 0);
    out.float_ = v;
    return out;
  }
  static constexpr Value Symbol(SymbolId id) {
    return Value(ValueKind::kSymbol, id);
  }
  /// The boolean results of test expressions are the symbols true/false.
  static constexpr Value Bool(bool b) {
    return Symbol(b ? SymbolTable::kTrue : SymbolTable::kFalse);
  }

  ValueKind kind() const { return kind_; }
  bool is_nil() const { return kind_ == ValueKind::kNil; }
  bool is_int() const { return kind_ == ValueKind::kInt; }
  bool is_float() const { return kind_ == ValueKind::kFloat; }
  bool is_symbol() const { return kind_ == ValueKind::kSymbol; }
  bool is_number() const { return is_int() || is_float(); }

  /// Requires is_int().
  int64_t as_int() const { return int_; }
  /// Requires is_float().
  double as_float() const { return float_; }
  /// Requires is_symbol().
  SymbolId as_symbol() const { return static_cast<SymbolId>(int_); }
  /// Requires is_number(); widens ints to double.
  double AsDouble() const {
    return kind_ == ValueKind::kFloat ? float_ : static_cast<double>(int_);
  }
  /// True iff this is the symbol `true`. Anything else is falsy.
  bool IsTruthy() const {
    return kind_ == ValueKind::kSymbol && as_symbol() == SymbolTable::kTrue;
  }

  friend bool operator==(const Value& a, const Value& b) {
    if (a.is_number() && b.is_number()) {
      if (a.kind_ == b.kind_) {
        return a.kind_ == ValueKind::kInt ? a.int_ == b.int_
                                          : a.float_ == b.float_;
      }
      return a.AsDouble() == b.AsDouble();
    }
    if (a.kind_ != b.kind_) return false;
    if (a.kind_ == ValueKind::kNil) return true;
    return a.int_ == b.int_;  // symbol ids (and exact ints) share storage
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order: returns <0, 0, >0. See class comment.
  static int Compare(const Value& a, const Value& b);

  /// Hash compatible with operator== (numerically equal int/float values
  /// hash equally).
  size_t Hash() const;

  /// Renders the value using `symbols` for symbol names.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  constexpr Value(ValueKind kind, int64_t raw) : kind_(kind), int_(raw) {}

  ValueKind kind_;
  union {
    int64_t int_;  // also holds SymbolId for kSymbol
    double float_;
  };
};

/// std-container hasher for Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Strict weak order on `Value` using `Value::Compare`.
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return Value::Compare(a, b) < 0;
  }
};

/// Order that sorts symbols lexicographically by name (numbers and nil as in
/// `Value::Compare`); used by `foreach ... ascending|descending`.
class ValueNameLess {
 public:
  explicit ValueNameLess(const SymbolTable& symbols) : symbols_(&symbols) {}
  bool operator()(const Value& a, const Value& b) const;

 private:
  const SymbolTable* symbols_;
};

}  // namespace sorel

#endif  // SOREL_BASE_VALUE_H_
