#include "base/symbol_table.h"

#include <cassert>

namespace sorel {

SymbolTable::SymbolTable() {
  SymbolId nil = Intern("nil");
  SymbolId tru = Intern("true");
  SymbolId fls = Intern("false");
  assert(nil == kNil && tru == kTrue && fls == kFalse);
  (void)nil;
  (void)tru;
  (void)fls;
}

void SymbolTable::CopyFrom(const SymbolTable& other) {
  names_ = other.names_;
  // Rebuild the id map from scratch: its string_view keys must point into
  // *this* table's strings, not the source's.
  ids_.clear();
  ids_.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    ids_.emplace(std::string_view(names_[i]), static_cast<SymbolId>(i));
  }
}

SymbolId SymbolTable::Intern(std::string_view text) {
  auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(text);
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

SymbolId SymbolTable::Find(std::string_view text) const {
  auto it = ids_.find(text);
  return it == ids_.end() ? kInvalidSymbol : it->second;
}

std::string_view SymbolTable::Name(SymbolId id) const {
  assert(id >= 0 && static_cast<size_t>(id) < names_.size());
  return names_[static_cast<size_t>(id)];
}

}  // namespace sorel
