#include "base/thread_pool.h"

#include <algorithm>
#include <utility>

namespace sorel {

namespace {
/// Depth of RunAll frames on this thread — nonzero inside a pool task that
/// is itself forking (used only for the nested_batches counter).
thread_local int tls_runall_depth = 0;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  stats_.threads = static_cast<uint64_t>(std::max(num_threads, 0));
  threads_.reserve(static_cast<size_t>(std::max(num_threads, 0)));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::RunOne(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) return false;
  QueuedTask task = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  ++tls_runall_depth;
  task.fn();
  --tls_runall_depth;
  lock.lock();
  if (--task.batch->remaining == 0) done_cv_.notify_all();
  return true;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    RunOne(lock);
  }
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  Batch batch;
  batch.remaining = tasks.size();
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.batches;
  if (tls_runall_depth > 0) ++stats_.nested_batches;
  stats_.tasks += tasks.size();
  for (std::function<void()>& t : tasks) {
    queue_.push_back({std::move(t), &batch});
  }
  stats_.max_task_depth = std::max(stats_.max_task_depth,
                                   static_cast<uint64_t>(queue_.size()));
  work_cv_.notify_all();
  // Wake sleeping RunAll waiters too: their predicate lets them help with
  // newly queued work (a nested fork's slices would otherwise wait for the
  // workers already blocked inside the tasks that forked them).
  done_cv_.notify_all();
  // Help drain the queue until this call's batch has finished. Helping may
  // execute other batches' tasks too — that only speeds them up, and it is
  // what makes nested RunAll (and the 0-worker pool) make progress.
  while (batch.remaining > 0) {
    if (!RunOne(lock)) {
      done_cv_.wait(lock, [this, &batch] {
        return batch.remaining == 0 || !queue_.empty();
      });
    }
  }
}

void ThreadPool::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t threads = stats_.threads;
  stats_ = {};
  stats_.threads = threads;
}

}  // namespace sorel
