#include "base/thread_pool.h"

#include <algorithm>
#include <utility>

namespace sorel {

ThreadPool::ThreadPool(int num_threads) {
  stats_.threads = static_cast<uint64_t>(std::max(num_threads, 0));
  threads_.reserve(static_cast<size_t>(std::max(num_threads, 0)));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::RunOne(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) return false;
  std::function<void()> task = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  task();
  lock.lock();
  if (--unfinished_ == 0) done_cv_.notify_all();
  return true;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    RunOne(lock);
  }
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.batches;
  stats_.tasks += tasks.size();
  for (std::function<void()>& t : tasks) queue_.push_back(std::move(t));
  unfinished_ += tasks.size();
  stats_.max_task_depth = std::max(stats_.max_task_depth,
                                   static_cast<uint64_t>(queue_.size()));
  work_cv_.notify_all();
  // Help drain the queue, then wait for in-flight tasks to finish.
  while (RunOne(lock)) {
  }
  done_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

void ThreadPool::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t threads = stats_.threads;
  stats_ = {};
  stats_.threads = threads;
}

}  // namespace sorel
