// Team manager: the paper's Figure 5 rules as a small application —
// deduplicate a roster, report it hierarchically, and swap two equal-sized
// teams in a single rule firing each.
//
// Build & run:  ./build/examples/team_manager

#include <cstdio>
#include <iostream>

#include "engine/engine.h"

namespace {

constexpr const char* kProgram = R"(
  (literalize player name team)
  (literalize command kind)

  ; §7.2: remove duplicate (name, team) records, keeping the most recent.
  (p RemoveDups
     { [player ^name <n> ^team <t>] <P> }
     :scalar (<n> <t>)
     :test ((count <P>) > 1)
     -->
     (write cleanup: <n> / <t> appears (count <P>) times (crlf))
     (bind <first> true)
     (foreach <P> descending
       (if (<first> == true)
           (bind <first> false)
         else
           (remove <P>))))

  ; Figure 4: hierarchical roster report via nested foreach.
  (p Report
     (command ^kind report)
     [player ^team <t> ^name <n>]
     -->
     (remove 1)
     (foreach <t> ascending
       (write Team <t> |(| (count <n>) |players)| (crlf))
       (foreach <n> ascending (write |   | <n> (crlf)))))

  ; Figure 5: swap equal-sized teams in one firing, guarded by a command
  ; WME so the swapped state does not immediately swap back.
  (p SwitchTeams
     (command ^kind switch)
     { [player ^team A] <ATeam> }
     { [player ^team B] <BTeam> }
     :test ((count <ATeam>) == (count <BTeam>))
     -->
     (remove 1)
     (write switching (count <ATeam>) players per team (crlf))
     (set-modify <ATeam> ^team B)
     (set-modify <BTeam> ^team A))

  (p SwitchRefused
     (command ^kind switch)
     -->
     (remove 1)
     (write switch refused: teams are not the same size (crlf)))
)";

void Must(const sorel::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Must(sorel::Result<T> result) {
  Must(result.status());
  return std::move(result).value();
}

void AddPlayer(sorel::Engine& engine, const char* name, const char* team) {
  Must(engine.MakeWme("player", {{"name", engine.Sym(name)},
                                 {"team", engine.Sym(team)}}));
}

void Command(sorel::Engine& engine, const char* kind) {
  Must(engine.MakeWme("command", {{"kind", engine.Sym(kind)}}));
  Must(engine.Run().status());
}

}  // namespace

int main() {
  sorel::Engine engine;
  Must(engine.LoadString(kProgram));

  std::cout << "== enrolling players (with a duplicate) ==\n";
  AddPlayer(engine, "Jack", "A");
  AddPlayer(engine, "Janice", "A");
  AddPlayer(engine, "Sue", "B");
  AddPlayer(engine, "Jack", "B");
  AddPlayer(engine, "Sue", "B");  // duplicate of (Sue, B)
  Must(engine.Run().status());    // RemoveDups fires immediately

  std::cout << "== roster report ==\n";
  Command(engine, "report");

  std::cout << "== switch teams (2 vs 2) ==\n";
  Command(engine, "switch");

  std::cout << "== roster report after the switch ==\n";
  Command(engine, "report");

  std::cout << "== switch teams after enrolling one more A player ==\n";
  AddPlayer(engine, "Zoe", "A");
  Command(engine, "switch");

  std::cout << "== done: " << engine.run_stats().firings << " firings, "
            << engine.wm().size() << " WMEs live ==\n";
  return 0;
}
