// Payroll monitor: second-order (aggregate) tests driving database-style
// bulk updates — the kind of workload §8 argues rule languages need
// set-oriented constructs for. Departments whose average salary drifts
// below a target get an across-the-board raise in ONE rule firing;
// head-count compliance is matched directly with (count ...).
//
// Build & run:  ./build/examples/payroll_monitor

#include <cstdio>
#include <iostream>

#include "engine/engine.h"

namespace {

constexpr const char* kProgram = R"(
  (literalize employee id name dept salary)
  (literalize dept-target dept floor headcount)
  (literalize audit dept)

  ; Department below its salary floor: raise everyone 10% in one firing.
  ; The :test reads the second-order value directly (§4.2) instead of
  ; maintaining running totals in extra WMEs.
  (p below-floor-raise
     (dept-target ^dept <d> ^floor <f>)
     { [employee ^dept <d> ^salary <s>] <Staff> }
     :test ((avg <s>) < <f>)
     -->
     (write raise: dept <d> avg (avg <s>) below floor <f>
            — raising (count <Staff>) employees (crlf))
     (foreach <Staff>
       (modify <Staff> ^salary ((<s> * 11) / 10))))

  ; Head-count compliance: cardinality matched directly.
  (p overstaffed
     (dept-target ^dept <d> ^headcount <h>)
     { [employee ^dept <d>] <Staff> }
     :test ((count <Staff>) > <h>)
     -->
     (write alert: dept <d> has (count <Staff>) employees
            |(limit| <h> |)| (crlf))
     (make audit ^dept <d>))

  ; Audit report: salary spread per audited department.
  (p audit-report
     { (audit ^dept <d>) <A> }
     [employee ^dept <d> ^salary <s> ^name <n>]
     -->
     (remove <A>)
     (write audit <d> : min (min <s>) max (max <s>)
            sum (sum <s>) avg (avg <s>) (crlf))
     (foreach <s> descending
       (foreach <n> (write |   | <n> at <s> (crlf)))))
)";

void Must(const sorel::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

void Hire(sorel::Engine& engine, int id, const char* name, const char* dept,
          int salary) {
  Must(engine
           .MakeWme("employee", {{"id", sorel::Value::Int(id)},
                                 {"name", engine.Sym(name)},
                                 {"dept", engine.Sym(dept)},
                                 {"salary", sorel::Value::Int(salary)}})
           .status());
}

}  // namespace

int main() {
  sorel::Engine engine;
  Must(engine.LoadString(kProgram));

  // Targets first: engineering floor 100, support floor 50, headcount 3.
  Must(engine
           .MakeWme("dept-target", {{"dept", engine.Sym("eng")},
                                    {"floor", sorel::Value::Int(100)},
                                    {"headcount", sorel::Value::Int(3)}})
           .status());
  Must(engine
           .MakeWme("dept-target", {{"dept", engine.Sym("support")},
                                    {"floor", sorel::Value::Int(50)},
                                    {"headcount", sorel::Value::Int(3)}})
           .status());

  std::cout << "== hiring ==\n";
  Hire(engine, 1, "ada", "eng", 90);
  Hire(engine, 2, "grace", "eng", 95);
  Hire(engine, 3, "edsger", "eng", 80);   // eng avg 88.3 < 100
  Hire(engine, 4, "tony", "support", 60);
  Hire(engine, 5, "barbara", "support", 70);  // support avg 65 >= 50

  std::cout << "== payroll pass ==\n";
  Must(engine.Run(32).status());  // raises iterate until avg >= floor

  std::cout << "== hiring a fourth engineer trips the head-count rule ==\n";
  Hire(engine, 6, "alan", "eng", 120);
  Must(engine.Run(32).status());

  std::cout << "== final payroll ==\n";
  sorel::SymbolId name = engine.symbols().Intern("name");
  sorel::SymbolId salary = engine.symbols().Intern("salary");
  sorel::SymbolId dept = engine.symbols().Intern("dept");
  for (const sorel::WmePtr& w : engine.wm().Snapshot()) {
    const sorel::ClassSchema* schema = engine.schemas().Find(w->cls());
    if (engine.symbols().Name(w->cls()) != "employee") continue;
    std::cout << "  " << w->field(schema->FieldOf(name)).ToString(engine.symbols())
              << " (" << w->field(schema->FieldOf(dept)).ToString(engine.symbols())
              << ") " << w->field(schema->FieldOf(salary)).ToString(engine.symbols())
              << "\n";
  }
  std::cout << "== " << engine.run_stats().firings << " firings total ==\n";
  return 0;
}
