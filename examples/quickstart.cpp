// Quickstart: load a rule program, add working memory, run the engine.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "engine/engine.h"

int main() {
  sorel::Engine engine;

  // 1. Declare a WME class and two rules — one tuple-oriented (regular
  //    OPS5), one set-oriented with an aggregate test (the paper's
  //    extension).
  sorel::Status status = engine.LoadString(R"(
    (literalize player name team)

    ; Regular OPS5: fires once per (A, B) pair.
    (p compete
       (player ^name <n1> ^team A)
       (player ^name <n2> ^team B)
       -->
       (write <n1> vs <n2> (crlf)))

    ; Set-oriented: one firing sees the whole team roster.
    (p roster
       [player ^team <t> ^name <n>]
       :scalar (<t>)
       :test ((count <n>) >= 2)
       -->
       (write team <t> has (count <n>) distinct players: (crlf))
       (foreach <n> ascending (write |  -| <n> (crlf))))
  )");
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 2. Populate working memory (Figure 1 of the paper).
  const char* roster[][2] = {{"A", "Jack"}, {"A", "Janice"}, {"B", "Sue"},
                             {"B", "Jack"}, {"B", "Sue"}};
  for (const auto& [team, name] : roster) {
    auto tag = engine.MakeWme("player", {{"team", engine.Sym(team)},
                                         {"name", engine.Sym(name)}});
    if (!tag.ok()) {
      std::fprintf(stderr, "make failed: %s\n",
                   tag.status().ToString().c_str());
      return 1;
    }
  }

  // 3. Run the recognize-act cycle to quiescence.
  auto fired = engine.Run();
  if (!fired.ok()) {
    std::fprintf(stderr, "run failed: %s\n", fired.status().ToString().c_str());
    return 1;
  }
  std::cout << "---\n"
            << *fired << " rule firings ("
            << engine.run_stats().actions << " primitive actions)\n";
  return 0;
}
