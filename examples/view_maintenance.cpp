// Materialized-view maintenance — the §8 motivation ("Rules can be used to
// maintain consistency and views") done with set-oriented constructs:
// a per-customer order summary is recomputed in ONE rule firing using
// aggregates, and a second-order :test detects when the stored count has
// drifted from the base data (e.g. after deletions).
//
// Build & run:  ./build/examples/view_maintenance

#include <cstdio>
#include <iostream>

#include "engine/engine.h"

namespace {

constexpr const char* kProgram = R"(
  (literalize order id customer amount)
  (literalize summary customer total orders fresh)

  ; A first order from an unknown customer creates its (stale) summary row.
  ; No per-order marking is needed: the second-order `stale` test below
  ; detects both insertions and deletions — exactly the marking scheme the
  ; paper's §7.1 argues set-oriented constructs eliminate.
  (p new-customer
     (order ^customer <c>)
     - (summary ^customer <c>)
     -->
     (make summary ^customer <c> ^total 0 ^orders 0 ^fresh no))

  ; The set-oriented refresh: one firing reads the whole order set through
  ; aggregates and rewrites the view row (§4.2's "directly accessed"
  ; second-order values).
  (p refresh
     { (summary ^customer <c> ^fresh no) <s> }
     { [order ^customer <c> ^amount <a>] <O> }
     -->
     (modify <s> ^fresh yes ^total (sum <a>) ^orders (count <O>))
     (write refresh: <c> now (count <O>) orders totalling (sum <a>) (crlf)))

  ; Second-order consistency check: the stored cardinality no longer
  ; matches the base table (an order arrived or was deleted).
  (p stale
     { (summary ^customer <c> ^fresh yes ^orders <n>) <s> }
     { [order ^customer <c>] <O> }
     :test ((count <O>) <> <n>)
     -->
     (write stale: <c> stored <n> but base has (count <O>) (crlf))
     (modify <s> ^fresh no))

  ; A customer whose last order disappeared loses the view row.
  (p empty-summary
     { (summary ^customer <c>) <s> }
     - (order ^customer <c>)
     -->
     (write dropping empty view row for <c> (crlf))
     (remove <s>))
)";

void Must(const sorel::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

sorel::TimeTag Order(sorel::Engine& engine, int id, const char* customer,
                     int amount) {
  auto r = engine.MakeWme("order", {{"id", sorel::Value::Int(id)},
                                    {"customer", engine.Sym(customer)},
                                    {"amount", sorel::Value::Int(amount)}});
  Must(r.status());
  return *r;
}

void ShowViews(sorel::Engine& engine) {
  sorel::SymbolId customer = engine.symbols().Intern("customer");
  sorel::SymbolId total = engine.symbols().Intern("total");
  sorel::SymbolId orders = engine.symbols().Intern("orders");
  for (const sorel::WmePtr& w : engine.wm().Snapshot()) {
    if (engine.symbols().Name(w->cls()) != "summary") continue;
    const sorel::ClassSchema* s = engine.schemas().Find(w->cls());
    std::cout << "  view[" << w->field(s->FieldOf(customer)).ToString(engine.symbols())
              << "] total=" << w->field(s->FieldOf(total)).ToString(engine.symbols())
              << " orders=" << w->field(s->FieldOf(orders)).ToString(engine.symbols())
              << "\n";
  }
}

}  // namespace

int main() {
  sorel::Engine engine;
  Must(engine.LoadString(kProgram));

  std::cout << "== three orders arrive ==\n";
  Order(engine, 1, "acme", 120);
  sorel::TimeTag acme2 = Order(engine, 2, "acme", 80);
  Order(engine, 3, "zenith", 500);
  Must(engine.Run(64).status());
  ShowViews(engine);

  std::cout << "== an acme order is cancelled ==\n";
  Must(engine.RemoveWme(acme2));
  Must(engine.Run(64).status());
  ShowViews(engine);

  std::cout << "== zenith's only order is cancelled ==\n";
  Must(engine.RemoveWme(3));
  Must(engine.Run(64).status());
  ShowViews(engine);

  std::cout << "== done (" << engine.run_stats().firings << " firings) ==\n";
  return 0;
}
