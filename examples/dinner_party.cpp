// Dinner party: a Manners-style seating run with a set-oriented completion
// test and one-firing report.
//
// Build & run:  ./build/examples/dinner_party [guests]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "engine/engine.h"
#include "examples/dinner_party_program.h"

int main(int argc, char** argv) {
  int guests = argc > 1 ? std::atoi(argv[1]) : 8;
  if (guests < 2 || guests % 2 != 0) {
    std::fprintf(stderr, "usage: %s <even guest count>\n", argv[0]);
    return 1;
  }
  sorel::Engine engine;
  sorel::Status status = engine.LoadString(sorel_examples::kDinnerRules);
  if (status.ok()) {
    status = engine.LoadString(sorel_examples::DinnerPartyWm(guests));
  }
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto fired = engine.Run(10 * guests + 16);
  if (!fired.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 fired.status().ToString().c_str());
    return 1;
  }
  std::cout << "---\n" << *fired << " firings to seat " << guests
            << " guests\n";
  return 0;
}
