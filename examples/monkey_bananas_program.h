#ifndef SOREL_EXAMPLES_MONKEY_BANANAS_PROGRAM_H_
#define SOREL_EXAMPLES_MONKEY_BANANAS_PROGRAM_H_

// The classic OPS5 "monkey and bananas" planning program (after Cooper &
// Wogrin 1988, which the paper cites for OPS5 programming practice),
// adapted to sorel syntax. Goal-driven: runs under the MEA strategy so the
// most recent subgoal controls the search. Shared by the monkey_bananas
// example and the integration test.

namespace sorel_examples {

inline constexpr const char* kMonkeyBananas = R"(
  (literalize monkey at on holds)
  (literalize thing name at on weight)
  (literalize goal status type object to)

  ; ---- holds: grab an object hanging from the ceiling ----
  (p holds-ceiling-needs-ladder
     (goal ^status active ^type holds ^object <o>)
     (thing ^name <o> ^on ceiling ^at <p>)
     - (thing ^name ladder ^at <p>)
     -->
     (write subgoal: move the ladder (crlf))
     (make goal ^status active ^type move ^object ladder ^to <p>))

  (p holds-ceiling-needs-climb
     (goal ^status active ^type holds ^object <o>)
     (thing ^name <o> ^on ceiling ^at <p>)
     (thing ^name ladder ^at <p>)
     - (monkey ^on ladder)
     -->
     (write subgoal: climb the ladder (crlf))
     (make goal ^status active ^type on ^object ladder))

  (p grab-from-ladder
     { (goal ^status active ^type holds ^object <o>) <g> }
     (thing ^name <o> ^on ceiling ^at <p>)
     (thing ^name ladder ^at <p>)
     { (monkey ^on ladder ^holds nil) <m> }
     -->
     (write the monkey grabs the <o> (crlf))
     (modify <m> ^holds <o>)
     (modify <g> ^status satisfied))

  ; ---- holds: grab an object lying on the floor ----
  (p holds-floor-needs-walk
     (goal ^status active ^type holds ^object <o>)
     (thing ^name <o> ^on floor ^at <p>)
     - (monkey ^at <p>)
     -->
     (write subgoal: walk to the <o> (crlf))
     (make goal ^status active ^type at ^to <p>))

  (p grab-from-floor
     { (goal ^status active ^type holds ^object <o>) <g> }
     (thing ^name <o> ^on floor ^at <p>)
     { (monkey ^at <p> ^on floor ^holds nil) <m> }
     -->
     (write the monkey picks up the <o> (crlf))
     (modify <m> ^holds <o>)
     (modify <g> ^status satisfied))

  ; ---- move: bring a light object somewhere ----
  (p move-needs-holds
     (goal ^status active ^type move ^object <o>)
     (thing ^name <o> ^weight light)
     - (monkey ^holds <o>)
     -->
     (write subgoal: hold the <o> first (crlf))
     (make goal ^status active ^type holds ^object <o>))

  (p move-carry
     { (goal ^status active ^type move ^object <o> ^to <to>) <g> }
     { (thing ^name <o> ^at { <p> <> <to> }) <t> }
     { (monkey ^holds <o> ^on floor) <m> }
     -->
     (write the monkey carries the <o> to <to> (crlf))
     (modify <m> ^at <to>)
     (modify <t> ^at <to>)
     (modify <g> ^status satisfied))

  ; After carrying, the monkey's hands must be free for the next grab.
  (p drop-after-move
     (goal ^status satisfied ^type move ^object <o>)
     { (monkey ^holds <o>) <m> }
     -->
     (write the monkey drops the <o> (crlf))
     (modify <m> ^holds nil))

  ; ---- on: climb onto something ----
  (p on-needs-walk
     (goal ^status active ^type on ^object <o>)
     (thing ^name <o> ^at <p>)
     - (monkey ^at <p>)
     -->
     (write subgoal: walk to the <o> (crlf))
     (make goal ^status active ^type at ^to <p>))

  (p climb
     { (goal ^status active ^type on ^object <o>) <g> }
     (thing ^name <o> ^at <p>)
     { (monkey ^at <p> ^on floor ^holds nil) <m> }
     -->
     (write the monkey climbs onto the <o> (crlf))
     (modify <m> ^on <o>)
     (modify <g> ^status satisfied))

  ; ---- at: walk somewhere (floor only) ----
  (p walk
     { (goal ^status active ^type at ^to <to>) <g> }
     { (monkey ^on floor ^at { <p> <> <to> }) <m> }
     -->
     (write the monkey walks to <to> (crlf))
     (modify <m> ^at <to>)
     (modify <g> ^status satisfied))

  (p get-down-first
     (goal ^status active ^type at)
     { (monkey ^on { <x> <> floor }) <m> }
     -->
     (write the monkey climbs down (crlf))
     (modify <m> ^on floor))

  ; ---- success + set-oriented cleanup ----
  (p success
     (monkey ^holds bananas)
     -->
     (write the monkey has the bananas! (crlf))
     (halt))

  ; One firing sweeps every satisfied goal away (a set-oriented cleanup
  ; that plain OPS5 would do one goal at a time).
  (p cleanup-satisfied
     { [goal ^status satisfied] <Done> }
     :test ((count <Done>) >= 3)
     -->
     (write cleanup: (count <Done>) satisfied goals removed (crlf))
     (set-remove <Done>))
)";

// The standard initial situation: bananas hang from the ceiling at 9-9,
// the ladder stands at 7-7, the monkey idles on the couch at 5-5.
inline constexpr const char* kMonkeyBananasWm = R"(
  (startup
    (make monkey ^at |5-5| ^on couch ^holds nil)
    (make thing ^name couch ^at |5-5| ^on floor ^weight heavy)
    (make thing ^name ladder ^at |7-7| ^on floor ^weight light)
    (make thing ^name bananas ^at |9-9| ^on ceiling ^weight light)
    (make goal ^status active ^type holds ^object bananas ^to eat))
)";

}  // namespace sorel_examples

#endif  // SOREL_EXAMPLES_MONKEY_BANANAS_PROGRAM_H_
