// sorel_serve: the sorel rule service. Hosts N independent engine
// sessions over a line-oriented JSON protocol (see
// src/server/engine_server.h), journaling every working-memory commit to
// a per-session WAL so a killed server recovers its sessions bit-identically
// on restart.
//
//   # stdio transport (one request line in, one response line out):
//   $ ./build/examples/sorel_serve rules.ops --data-dir /tmp/sorel
//   {"cmd":"open","session":"s1"}
//   {"ok":true,"session":"s1","recovered":false,...}
//
//   # unix-socket transport, for sorel_shell --connect:
//   $ ./build/examples/sorel_serve rules.ops --socket /tmp/sorel.sock
//
// Options:
//   --data-dir DIR      WAL + snapshot directory (default ".")
//   --socket PATH       serve a unix domain socket instead of stdio
//   --fsync-every N     default WAL fsync batching for new sessions
//   --max-sessions N    evict LRU idle sessions past N resident (0 = off)

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/engine_server.h"

namespace {

using sorel::server::EngineServer;

int ServeStdio(EngineServer& server) {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::cout << server.HandleLine(line) << "\n" << std::flush;
    if (server.shutdown_requested()) break;
  }
  return 0;
}

/// Reads newline-terminated requests from one connection and answers each
/// with one response line. Returns when the client disconnects or a
/// `shutdown` command lands on this connection.
void ServeConnection(EngineServer& server, int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      std::string response = server.HandleLine(line) + "\n";
      size_t sent = 0;
      while (sent < response.size()) {
        ssize_t n = ::write(fd, response.data() + sent,
                            response.size() - sent);
        if (n <= 0) return;  // client went away; keep serving others
        sent += static_cast<size_t>(n);
      }
      if (server.shutdown_requested()) return;
    }
    ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got <= 0) return;
    buffer.append(chunk, static_cast<size_t>(got));
  }
}

int ServeSocket(EngineServer& server, const std::string& path) {
  int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "socket path too long: " << path << "\n";
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listener, 16) != 0) {
    std::cerr << "bind/listen " << path << ": " << std::strerror(errno)
              << "\n";
    ::close(listener);
    return 1;
  }
  std::cerr << "sorel_serve: listening on " << path << "\n";
  // Thread-per-connection event loop: HandleLine is thread-safe (the
  // compiled rule base is shared read-only; each session slot has its own
  // mutex), so clients on distinct sessions run concurrently and clients
  // on the same session serialize at the slot. A `shutdown` command from
  // any client closes the listener, which unblocks accept() and drains.
  std::mutex mu;
  std::vector<std::thread> workers;
  for (;;) {
    int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !server.shutdown_requested()) continue;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      workers.emplace_back([&server, &mu, &listener, fd] {
        ServeConnection(server, fd);
        ::close(fd);
        if (server.shutdown_requested()) {
          // Wake the accept loop (shutdown closes every other client's
          // next read too, since HandleLine answers with an error line).
          std::lock_guard<std::mutex> lock(mu);
          if (listener >= 0) ::shutdown(listener, SHUT_RDWR);
        }
      });
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    ::close(listener);
    listener = -1;
  }
  for (std::thread& worker : workers) worker.join();
  ::unlink(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string rules_path;
  std::string socket_path;
  sorel::server::EngineServerOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs " << what << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--data-dir") {
      options.data_dir = next("a directory");
    } else if (arg == "--socket") {
      socket_path = next("a path");
    } else if (arg == "--fsync-every") {
      options.fsync_every = std::atoi(next("a count"));
    } else if (arg == "--max-sessions") {
      options.max_resident_sessions = std::atoi(next("a count"));
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return 1;
    } else {
      rules_path = arg;
    }
  }
  if (rules_path.empty()) {
    std::cerr << "usage: sorel_serve <rules.ops> [--data-dir DIR] "
                 "[--socket PATH] [--fsync-every N] [--max-sessions N]\n";
    return 1;
  }
  std::ifstream in(rules_path);
  if (!in.is_open()) {
    std::cerr << "cannot open " << rules_path << "\n";
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  auto server = EngineServer::Create(source.str(), options);
  if (!server.ok()) {
    std::cerr << server.status().ToString() << "\n";
    return 1;
  }
  if (socket_path.empty()) return ServeStdio(**server);
  return ServeSocket(**server, socket_path);
}
