// sorel_serve: the sorel rule service. Hosts N independent engine
// sessions over a line-oriented JSON protocol (see
// src/server/engine_server.h), journaling every working-memory commit to
// a per-session WAL so a killed server recovers its sessions bit-identically
// on restart.
//
//   # stdio transport (one request line in, one response line out):
//   $ ./build/examples/sorel_serve rules.ops --data-dir /tmp/sorel
//   {"cmd":"open","session":"s1"}
//   {"ok":true,"session":"s1","recovered":false,...}
//
//   # unix-socket transport, for sorel_shell --connect:
//   $ ./build/examples/sorel_serve rules.ops --socket /tmp/sorel.sock
//
// Options:
//   --data-dir DIR      WAL + snapshot directory (default ".")
//   --socket PATH       serve a unix domain socket instead of stdio
//   --fsync-every N     default WAL fsync batching for new sessions

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "server/engine_server.h"

namespace {

using sorel::server::EngineServer;

int ServeStdio(EngineServer& server) {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::cout << server.HandleLine(line) << "\n" << std::flush;
    if (server.shutdown_requested()) break;
  }
  return 0;
}

/// Reads newline-terminated requests from one connection and answers each
/// with one response line. Returns false when the server should exit.
bool ServeConnection(EngineServer& server, int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      std::string response = server.HandleLine(line) + "\n";
      size_t sent = 0;
      while (sent < response.size()) {
        ssize_t n = ::write(fd, response.data() + sent,
                            response.size() - sent);
        if (n <= 0) return true;  // client went away; keep serving others
        sent += static_cast<size_t>(n);
      }
      if (server.shutdown_requested()) return false;
    }
    ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got <= 0) return true;
    buffer.append(chunk, static_cast<size_t>(got));
  }
}

int ServeSocket(EngineServer& server, const std::string& path) {
  int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "socket path too long: " << path << "\n";
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listener, 4) != 0) {
    std::cerr << "bind/listen " << path << ": " << std::strerror(errno)
              << "\n";
    ::close(listener);
    return 1;
  }
  std::cerr << "sorel_serve: listening on " << path << "\n";
  // Sequential accept loop: the engine core is single-threaded by design
  // (sessions isolate state, not threads), so clients take turns.
  for (;;) {
    int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool keep_serving = ServeConnection(server, fd);
    ::close(fd);
    if (!keep_serving) break;
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string rules_path;
  std::string socket_path;
  sorel::server::EngineServerOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs " << what << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--data-dir") {
      options.data_dir = next("a directory");
    } else if (arg == "--socket") {
      socket_path = next("a path");
    } else if (arg == "--fsync-every") {
      options.fsync_every = std::atoi(next("a count"));
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return 1;
    } else {
      rules_path = arg;
    }
  }
  if (rules_path.empty()) {
    std::cerr << "usage: sorel_serve <rules.ops> [--data-dir DIR] "
                 "[--socket PATH] [--fsync-every N]\n";
    return 1;
  }
  std::ifstream in(rules_path);
  if (!in.is_open()) {
    std::cerr << "cannot open " << rules_path << "\n";
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  auto server = EngineServer::Create(source.str(), options);
  if (!server.ok()) {
    std::cerr << server.status().ToString() << "\n";
    return 1;
  }
  if (socket_path.empty()) return ServeStdio(**server);
  return ServeSocket(**server, socket_path);
}
