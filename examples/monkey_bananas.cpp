// Monkey and bananas: the classic OPS5 goal-driven planning demo running
// on the sorel engine under the MEA strategy, with a set-oriented goal
// cleanup rule thrown in (one firing sweeps all satisfied goals).
//
// Build & run:  ./build/examples/monkey_bananas

#include <cstdio>
#include <iostream>

#include "engine/engine.h"
#include "examples/monkey_bananas_program.h"

int main() {
  sorel::EngineOptions options;
  options.strategy = sorel::Strategy::kMea;  // goal-driven control
  sorel::Engine engine(options);

  sorel::Status status = engine.LoadString(sorel_examples::kMonkeyBananas);
  if (status.ok()) status = engine.LoadString(sorel_examples::kMonkeyBananasWm);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  auto fired = engine.Run(200);
  if (!fired.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 fired.status().ToString().c_str());
    return 1;
  }
  std::cout << "---\nplan finished in " << *fired << " firings"
            << (engine.halted() ? " (success)" : " (no solution!)") << "\n";
  return engine.halted() ? 0 : 1;
}
