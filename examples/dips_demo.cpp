// DIPS demo (§8): the same rule program matched by the relational
// COND-table engine. Reproduces Figure 6's tables and the SOI-retrieval
// group-by query, then runs a set-oriented rule to completion on the
// relational matcher.
//
// Build & run:  ./build/examples/dips_demo

#include <cstdio>
#include <iostream>

#include "dips/dips.h"
#include "engine/engine.h"

namespace {

void Must(const sorel::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  sorel::EngineOptions options;
  options.matcher = sorel::MatcherKind::kDips;
  sorel::Engine engine(options);

  Must(engine.LoadString(R"(
    (literalize E name salary)
    (literalize W name job)

    ; Figure 6's rule-1: a regular CE over employees, a set-oriented CE
    ; over the clerk records with the same name.
    (p rule-1
       (E ^name <x> ^salary <s>)
       { [W ^name <x> ^job clerk] <Clerks> }
       -->
       (write <x> at salary <s> supervises (count <Clerks>)
              clerk records (crlf)))
  )"));

  // Figure 6's working memory (identifiers 1..4).
  Must(engine.MakeWme("W", {{"name", engine.Sym("Mike")},
                            {"job", engine.Sym("clerk")}}).status());
  Must(engine.MakeWme("E", {{"name", engine.Sym("Mike")},
                            {"salary", sorel::Value::Int(10000)}}).status());
  Must(engine.MakeWme("W", {{"name", engine.Sym("Mike")},
                            {"job", engine.Sym("clerk")}}).status());
  Must(engine.MakeWme("E", {{"name", engine.Sym("Mike")},
                            {"salary", sorel::Value::Int(5000)}}).status());

  auto* dips = static_cast<sorel::dips::DipsMatcher*>(&engine.matcher());
  const sorel::CompiledRule* rule = engine.FindRule("rule-1");

  std::cout << "== COND tables (the paper's relational alpha storage) ==\n";
  std::cout << "COND-E:\n"
            << dips->cond_table(rule, 0)->relation().ToString(engine.symbols());
  std::cout << "COND-W:\n"
            << dips->cond_table(rule, 1)->relation().ToString(engine.symbols());

  std::cout << "== match relation (joined COND tables) ==\n";
  auto match = dips->MatchRelation(rule);
  Must(match.status());
  std::cout << match->ToString(engine.symbols());

  std::cout << "== SOI retrieval: group-by over the non-set CE tags ==\n";
  auto sois = dips->RetrieveSois(rule);
  Must(sois.status());
  std::cout << sois->ToString(engine.symbols());

  auto summary = dips->SoiSummary(rule);
  Must(summary.status());
  std::cout << "== SOI summary ==\n" << summary->ToString(engine.symbols());

  std::cout << "== firing on the relational matcher ==\n";
  auto fired = engine.Run();
  Must(fired.status());
  std::cout << "== " << *fired << " set-oriented firings on DIPS ==\n";
  return 0;
}
