// Animal identification: the classic forward-chaining expert-system demo
// (in the style of Winston's ZOOKEEPER), showing disjunctions, negation,
// and inference chains — plus a set-oriented summary rule that reports all
// conclusions in one firing.
//
// Build & run:  ./build/examples/animal_expert

#include <cstdio>
#include <iostream>

#include "engine/engine.h"

namespace {

constexpr const char* kRules = R"(
  (literalize fact animal attr value)
  (literalize conclusion animal species)
  (literalize request kind)

  ; ---- intermediate classification ----
  (p mammal-by-hair
     (fact ^animal <a> ^attr has ^value hair)
     - (fact ^animal <a> ^attr class ^value mammal)
     -->
     (make fact ^animal <a> ^attr class ^value mammal))

  (p mammal-by-milk
     (fact ^animal <a> ^attr gives ^value milk)
     - (fact ^animal <a> ^attr class ^value mammal)
     -->
     (make fact ^animal <a> ^attr class ^value mammal))

  (p bird-by-feathers
     (fact ^animal <a> ^attr has ^value feathers)
     - (fact ^animal <a> ^attr class ^value bird)
     -->
     (make fact ^animal <a> ^attr class ^value bird))

  (p bird-by-flight
     (fact ^animal <a> ^attr can ^value fly)
     (fact ^animal <a> ^attr lays ^value eggs)
     - (fact ^animal <a> ^attr class ^value bird)
     -->
     (make fact ^animal <a> ^attr class ^value bird))

  (p carnivore-by-teeth
     (fact ^animal <a> ^attr has ^value << |sharp teeth| claws >>)
     (fact ^animal <a> ^attr eats ^value meat)
     - (fact ^animal <a> ^attr class ^value carnivore)
     -->
     (make fact ^animal <a> ^attr class ^value carnivore))

  (p ungulate
     (fact ^animal <a> ^attr class ^value mammal)
     (fact ^animal <a> ^attr has ^value hooves)
     - (fact ^animal <a> ^attr class ^value ungulate)
     -->
     (make fact ^animal <a> ^attr class ^value ungulate))

  ; ---- species ----
  (p cheetah
     (fact ^animal <a> ^attr class ^value mammal)
     (fact ^animal <a> ^attr class ^value carnivore)
     (fact ^animal <a> ^attr has ^value |tawny color|)
     (fact ^animal <a> ^attr has ^value |dark spots|)
     - (conclusion ^animal <a>)
     -->
     (make conclusion ^animal <a> ^species cheetah))

  (p tiger
     (fact ^animal <a> ^attr class ^value mammal)
     (fact ^animal <a> ^attr class ^value carnivore)
     (fact ^animal <a> ^attr has ^value |tawny color|)
     (fact ^animal <a> ^attr has ^value |black stripes|)
     - (conclusion ^animal <a>)
     -->
     (make conclusion ^animal <a> ^species tiger))

  (p giraffe
     (fact ^animal <a> ^attr class ^value ungulate)
     (fact ^animal <a> ^attr has ^value |long neck|)
     (fact ^animal <a> ^attr has ^value |dark spots|)
     - (conclusion ^animal <a>)
     -->
     (make conclusion ^animal <a> ^species giraffe))

  (p zebra
     (fact ^animal <a> ^attr class ^value ungulate)
     (fact ^animal <a> ^attr has ^value |black stripes|)
     - (conclusion ^animal <a>)
     -->
     (make conclusion ^animal <a> ^species zebra))

  (p penguin
     (fact ^animal <a> ^attr class ^value bird)
     - (fact ^animal <a> ^attr can ^value fly)
     (fact ^animal <a> ^attr can ^value swim)
     - (conclusion ^animal <a>)
     -->
     (make conclusion ^animal <a> ^species penguin))

  (p albatross
     (fact ^animal <a> ^attr class ^value bird)
     (fact ^animal <a> ^attr can ^value |fly well|)
     - (conclusion ^animal <a>)
     -->
     (make conclusion ^animal <a> ^species albatross))

  ; ---- set-oriented report: one firing lists every identification ----
  (p report
     (request ^kind report)
     { [conclusion ^animal <a> ^species <s>] <C> }
     -->
     (remove 1)
     (write identified (count <C>) animals: (crlf))
     (foreach <C> ascending
       (write |  | <a> is a <s> (crlf))))

  (p report-nothing
     (request ^kind report)
     -->
     (remove 1)
     (write no animals identified (crlf)))
)";

void Must(const sorel::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

void Fact(sorel::Engine& engine, const char* animal, const char* attr,
          const char* value) {
  Must(engine
           .MakeWme("fact", {{"animal", engine.Sym(animal)},
                             {"attr", engine.Sym(attr)},
                             {"value", engine.Sym(value)}})
           .status());
}

}  // namespace

int main() {
  sorel::Engine engine;
  Must(engine.LoadString(kRules));

  // Observations about three zoo animals.
  Fact(engine, "blaze", "has", "hair");
  Fact(engine, "blaze", "eats", "meat");
  Fact(engine, "blaze", "has", "sharp teeth");
  Fact(engine, "blaze", "has", "tawny color");
  Fact(engine, "blaze", "has", "black stripes");

  Fact(engine, "patches", "gives", "milk");
  Fact(engine, "patches", "has", "hooves");
  Fact(engine, "patches", "has", "long neck");
  Fact(engine, "patches", "has", "dark spots");

  Fact(engine, "waddles", "has", "feathers");
  Fact(engine, "waddles", "can", "swim");
  Fact(engine, "waddles", "lays", "eggs");

  Must(engine.Run(200).status());
  Must(engine.MakeWme("request", {{"kind", engine.Sym("report")}}).status());
  Must(engine.Run(10).status());

  std::cout << "(" << engine.run_stats().firings << " inference firings)\n";
  return 0;
}
