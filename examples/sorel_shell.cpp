// sorel_shell: an interactive OPS5-style top level for the sorel engine.
//
//   $ ./build/examples/sorel_shell
//   sorel> (literalize player name team)
//   sorel> (p hi [player ^name <n>] --> (write hello (count <n>) (crlf)))
//   sorel> make player ^name Jack ^team A
//   sorel> run
//   sorel> wm
//   sorel> quit
//
// Also works in batch mode:  sorel_shell < script.txt
// and can pre-load programs: sorel_shell program.ops
//
// Client mode: with --connect PATH the shell talks to a running
// sorel_serve unix socket instead of an in-process engine. The same
// commands work (make/remove/run/wm/cs/...), translated to the JSON
// protocol; responses print as raw JSON lines. `open <name> [matcher]`
// opens/recovers a server session, `json {...}` sends a raw request.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "lang/linter.h"
#include "lang/printer.h"
#include "obs/json.h"

namespace {

using sorel::Engine;

void PrintHelp() {
  std::cout <<
      "commands:\n"
      "  (literalize ...) / (p ...) / (startup ...)   load source forms\n"
      "  load <file>         load a rule file\n"
      "  make <cls> ^a v ..  add a WME\n"
      "  remove <tag>        remove the WME with that time tag\n"
      "  run [n]             fire until quiescence (or at most n firings)\n"
      "  wm                  list working memory\n"
      "  cs                  list the conflict set\n"
      "  rules               pretty-print the loaded rules\n"
      "  excise <rule>       remove a rule\n"
      "  lint                run the rule linter\n"
      "  save <file>         dump working memory as a reloadable file\n"
      "  network             dump the Rete network topology\n"
      "  matches <rule>      show a set-oriented rule's SOIs\n"
      "  watch <0|1|2>       0: quiet, 1: firings, 2: firings + WM changes\n"
      "  stats               cumulative firing statistics\n"
      "  help                this text\n"
      "  quit                exit\n";
}

bool BalancedParens(const std::string& text) {
  int depth = 0;
  for (char c : text) {
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
  }
  return depth <= 0;
}

void ShowStatus(const sorel::Status& status) {
  if (!status.ok()) std::cout << "error: " << status.ToString() << "\n";
}

void CmdWm(Engine& engine) {
  for (const sorel::WmePtr& wme : engine.wm().Snapshot()) {
    const sorel::ClassSchema* schema = engine.schemas().Find(wme->cls());
    std::cout << wme->ToString(engine.symbols(), *schema) << "\n";
  }
  std::cout << engine.wm().size() << " wmes\n";
}

void CmdCs(Engine& engine) {
  for (sorel::InstantiationRef* inst : engine.conflict_set().Entries()) {
    std::vector<sorel::Row> rows;
    inst->CollectRows(&rows);
    std::cout << inst->rule().name << " (" << rows.size()
              << (rows.size() == 1 ? " row;" : " rows;") << " recency";
    for (sorel::TimeTag tag : inst->RecencyTags()) std::cout << " " << tag;
    std::cout << ")\n";
  }
  std::cout << engine.conflict_set().EligibleCount() << " eligible of "
            << engine.conflict_set().size() << " entries\n";
}

void CmdRules(Engine& engine) {
  sorel::AstPrinter printer(&engine.symbols());
  for (const sorel::CompiledRule* rule : engine.rules()) {
    std::cout << printer.PrintRule(rule->ast) << "\n";
  }
  std::cout << engine.rules().size() << " rules\n";
}

void CmdMatches(Engine& engine, const std::string& rule_name) {
  const sorel::CompiledRule* rule = engine.FindRule(rule_name);
  if (rule == nullptr) {
    std::cout << "no such rule: " << rule_name << "\n";
    return;
  }
  sorel::SNode* snode = engine.snode(rule_name);
  if (snode == nullptr) {
    std::cout << rule_name << " is not set-oriented (or not on Rete)\n";
    return;
  }
  for (const sorel::Soi* soi : snode->sois()) {
    std::cout << (soi->active() ? "active  " : "inactive") << " SOI with "
              << soi->size() << " rows:";
    for (const sorel::Soi::Member& m : soi->members()) {
      std::cout << " [";
      for (size_t i = 0; i < m.row.size(); ++i) {
        std::cout << (i > 0 ? " " : "") << m.row[i]->time_tag();
      }
      std::cout << "]";
    }
    std::cout << "\n";
  }
  std::cout << snode->num_sois() << " SOIs in the gamma memory\n";
}

void CmdStats(Engine& engine) {
  const Engine::RunStats& stats = engine.run_stats();
  std::cout << stats.firings << " firings, " << stats.actions
            << " actions\n";
  for (const auto& [rule, count] : stats.firings_by_rule) {
    std::cout << "  " << rule << ": " << count << "\n";
  }
  const Engine::MatchStats match = engine.match_stats();
  std::cout << "match: " << match.rete.join_attempts << " join attempts, "
            << match.rete.index_probes << " index probes, "
            << match.rete.tokens_created << " tokens created, "
            << match.rete.tokens_deleted << " deleted\n"
            << "select: " << match.select.selects << " selects, "
            << match.select.comparisons << " comparisons\n";
}

/// Dispatches one complete command line. Returns false to quit.
bool Dispatch(Engine& engine, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty()) return true;
  if (cmd == "quit" || cmd == "exit") return false;
  if (cmd == "help") {
    PrintHelp();
  } else if (cmd[0] == '(') {
    ShowStatus(engine.LoadString(line));
  } else if (cmd == "load") {
    std::string path;
    in >> path;
    ShowStatus(engine.LoadFile(path));
  } else if (cmd == "make") {
    std::string rest;
    std::getline(in, rest);
    ShowStatus(engine.LoadString("(startup (make " + rest + "))"));
  } else if (cmd == "remove") {
    sorel::TimeTag tag = 0;
    in >> tag;
    ShowStatus(engine.RemoveWme(tag));
  } else if (cmd == "run") {
    int max = -1;
    in >> max;
    auto fired = engine.Run(in ? max : -1);
    ShowStatus(fired.status());
    if (fired.ok()) {
      std::cout << *fired << " firings"
                << (engine.halted() ? " (halted)" : "") << "\n";
    }
  } else if (cmd == "wm") {
    CmdWm(engine);
  } else if (cmd == "cs") {
    CmdCs(engine);
  } else if (cmd == "rules") {
    CmdRules(engine);
  } else if (cmd == "matches") {
    std::string rule;
    in >> rule;
    CmdMatches(engine, rule);
  } else if (cmd == "watch") {
    int level = 0;
    in >> level;
    engine.set_trace_firings(level >= 1);
    engine.set_trace_wm(level >= 2);
    std::cout << "watch level " << level << "\n";
  } else if (cmd == "lint") {
    size_t count = 0;
    for (const sorel::CompiledRule* rule : engine.rules()) {
      for (const sorel::LintWarning& w : sorel::LintRule(*rule)) {
        std::cout << w.ToString() << "\n";
        ++count;
      }
    }
    std::cout << count << " warnings\n";
  } else if (cmd == "excise") {
    std::string rule;
    in >> rule;
    ShowStatus(engine.ExciseRule(rule));
  } else if (cmd == "save") {
    std::string path;
    in >> path;
    std::ofstream out(path);
    if (!out) {
      std::cout << "cannot open " << path << "\n";
    } else {
      engine.DumpWm(out);
      std::cout << "saved " << engine.wm().size() << " wmes to " << path
                << "\n";
    }
  } else if (cmd == "network") {
    if (engine.rete_matcher() != nullptr) {
      engine.rete_matcher()->DumpNetwork(std::cout, engine.symbols());
    } else {
      std::cout << "network dump is only available on the Rete matcher\n";
    }
  } else if (cmd == "stats") {
    CmdStats(engine);
  } else {
    std::cout << "unknown command '" << cmd << "' (try: help)\n";
  }
  return true;
}

// --- client mode (--connect): drive a sorel_serve socket ---

void PrintClientHelp() {
  std::cout <<
      "client commands (responses are raw protocol JSON):\n"
      "  open <name> [rete|treat|dips|plan]   open/recover a session\n"
      "  use <name>          switch the current session\n"
      "  close               close the current session\n"
      "  make <cls> ^a v ..  add a WME\n"
      "  remove <tag>        remove a WME\n"
      "  modify <tag> ^a v   modify a WME\n"
      "  run [n]             fire rules\n"
      "  begin/commit/rollback   client transaction\n"
      "  wm / cs / metrics / trace / wal / dump   inspect\n"
      "  snapshot            checkpoint + truncate the WAL\n"
      "  sessions / rules / ping / shutdown\n"
      "  json {...}          send a raw request line\n"
      "  help / quit\n";
}

/// Renders one `^attr value` token as a protocol value: exact integers as
/// {"i":"..."} (64-bit safe), other numbers as JSON numbers, everything
/// else as a string (the server interns it as a symbol).
std::string ClientValue(const std::string& token) {
  if (!token.empty()) {
    char* end = nullptr;
    errno = 0;
    (void)std::strtoll(token.c_str(), &end, 10);
    if (errno == 0 && end != token.c_str() && *end == '\0') {
      return "{\"i\":\"" + token + "\"}";
    }
    std::strtod(token.c_str(), &end);
    if (end != token.c_str() && *end == '\0') return token;
  }
  return "\"" + sorel::obs::JsonEscape(token) + "\"";
}

/// Parses `^attr value ^attr value ...` into a JSON attrs object.
bool ClientAttrs(std::istream& in, std::string* out) {
  *out = "{";
  std::string attr;
  bool first = true;
  while (in >> attr) {
    if (attr.empty() || attr[0] != '^') return false;
    std::string value;
    if (!(in >> value)) return false;
    if (!first) *out += ",";
    *out += "\"" + sorel::obs::JsonEscape(attr.substr(1)) +
            "\":" + ClientValue(value);
    first = false;
  }
  *out += "}";
  return true;
}

class Client {
 public:
  explicit Client(int fd) : fd_(fd) {}
  ~Client() { ::close(fd_); }

  /// Sends one request line and prints the one response line. Returns
  /// false when the connection is gone.
  bool Call(const std::string& request) {
    std::string line = request + "\n";
    size_t sent = 0;
    while (sent < line.size()) {
      ssize_t n = ::write(fd_, line.data() + sent, line.size() - sent);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    size_t newline;
    while ((newline = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      ssize_t got = ::read(fd_, chunk, sizeof(chunk));
      if (got <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(got));
    }
    std::cout << buffer_.substr(0, newline) << "\n";
    buffer_.erase(0, newline + 1);
    return true;
  }

 private:
  int fd_;
  std::string buffer_;
};

/// Translates one shell command into a protocol request, or returns ""
/// (handled locally / unknown). `quit` sets *done.
std::string ClientRequest(const std::string& line, std::string* session,
                          bool* done) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty()) return "";
  auto with_session = [session](std::string body) {
    return "{\"cmd\":\"" + body + "\",\"session\":\"" +
           sorel::obs::JsonEscape(*session) + "\"";
  };
  if (cmd == "quit" || cmd == "exit") {
    *done = true;
    return "";
  }
  if (cmd == "help") {
    PrintClientHelp();
    return "";
  }
  if (cmd == "json") {
    std::string rest;
    std::getline(in, rest);
    return rest;
  }
  if (cmd == "ping" || cmd == "rules" || cmd == "sessions" ||
      cmd == "shutdown") {
    if (cmd == "shutdown") *done = true;
    return "{\"cmd\":\"" + cmd + "\"}";
  }
  if (cmd == "open") {
    std::string name, matcher;
    in >> name >> matcher;
    if (name.empty()) {
      std::cout << "open needs a session name\n";
      return "";
    }
    *session = name;
    std::string req = with_session("open");
    if (!matcher.empty()) req += ",\"matcher\":\"" + matcher + "\"";
    return req + "}";
  }
  if (cmd == "use") {
    std::string name;
    in >> name;
    if (name.empty()) {
      std::cout << "use needs a session name\n";
    } else {
      *session = name;
      std::cout << "session " << name << "\n";
    }
    return "";
  }
  if (session->empty()) {
    std::cout << "no session (use: open <name>)\n";
    return "";
  }
  if (cmd == "make") {
    std::string cls, attrs;
    in >> cls;
    if (cls.empty() || !ClientAttrs(in, &attrs)) {
      std::cout << "usage: make <cls> ^attr value ...\n";
      return "";
    }
    return with_session("make") + ",\"cls\":\"" +
           sorel::obs::JsonEscape(cls) + "\",\"attrs\":" + attrs + "}";
  }
  if (cmd == "remove" || cmd == "modify") {
    std::string tag;
    in >> tag;
    if (tag.empty()) {
      std::cout << "usage: " << cmd << " <tag> ...\n";
      return "";
    }
    std::string req = with_session(cmd) + ",\"tag\":\"" + tag + "\"";
    if (cmd == "modify") {
      std::string attrs;
      if (!ClientAttrs(in, &attrs)) {
        std::cout << "usage: modify <tag> ^attr value ...\n";
        return "";
      }
      req += ",\"attrs\":" + attrs;
    }
    return req + "}";
  }
  if (cmd == "run") {
    int max = -1;
    in >> max;
    std::string req = with_session("run");
    if (in) req += ",\"max\":" + std::to_string(max);
    return req + "}";
  }
  if (cmd == "wm" || cmd == "cs" || cmd == "metrics" || cmd == "trace" ||
      cmd == "wal" || cmd == "dump" || cmd == "snapshot" || cmd == "begin" ||
      cmd == "commit" || cmd == "rollback" || cmd == "close") {
    return with_session(cmd) + "}";
  }
  std::cout << "unknown client command '" << cmd << "' (try: help)\n";
  return "";
}

int RunClient(const std::string& socket_path, std::string session) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "socket path too long: " << socket_path << "\n";
    return 1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::cerr << "connect " << socket_path << ": " << std::strerror(errno)
              << "\n";
    ::close(fd);
    return 1;
  }
  Client client(fd);
  bool interactive = isatty(STDIN_FILENO) != 0;
  if (interactive) {
    std::cout << "sorel shell — connected to " << socket_path
              << " (type 'help')\n";
  }
  std::string line;
  bool done = false;
  while (!done) {
    if (interactive) std::cout << "sorel> ";
    if (!std::getline(std::cin, line)) break;
    std::string request = ClientRequest(line, &session, &done);
    if (request.empty()) continue;
    if (!client.Call(request)) {
      std::cerr << "connection closed by server\n";
      return done ? 0 : 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_path;
  std::string session;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect_path = argv[++i];
    } else if (arg == "--session" && i + 1 < argc) {
      session = argv[++i];
    } else {
      files.push_back(arg);
    }
  }
  if (!connect_path.empty()) return RunClient(connect_path, session);

  Engine engine;
  for (const std::string& file : files) {
    sorel::Status status = engine.LoadFile(file);
    if (!status.ok()) {
      std::cerr << file << ": " << status.ToString() << "\n";
      return 1;
    }
  }
  bool interactive = isatty(STDIN_FILENO) != 0;
  if (interactive) {
    std::cout << "sorel shell — set-oriented production system "
                 "(type 'help')\n";
  }
  std::string pending;
  std::string line;
  while (true) {
    if (interactive) std::cout << (pending.empty() ? "sorel> " : "...    ");
    if (!std::getline(std::cin, line)) break;
    pending += pending.empty() ? line : "\n" + line;
    // Multi-line source forms: wait for balanced brackets.
    if (!pending.empty() && pending[0] == '(' && !BalancedParens(pending)) {
      continue;
    }
    bool keep_going = Dispatch(engine, pending);
    pending.clear();
    if (!keep_going) break;
  }
  return 0;
}
