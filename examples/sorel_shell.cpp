// sorel_shell: an interactive OPS5-style top level for the sorel engine.
//
//   $ ./build/examples/sorel_shell
//   sorel> (literalize player name team)
//   sorel> (p hi [player ^name <n>] --> (write hello (count <n>) (crlf)))
//   sorel> make player ^name Jack ^team A
//   sorel> run
//   sorel> wm
//   sorel> quit
//
// Also works in batch mode:  sorel_shell < script.txt
// and can pre-load programs: sorel_shell program.ops

#include <unistd.h>

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "lang/linter.h"
#include "lang/printer.h"

namespace {

using sorel::Engine;

void PrintHelp() {
  std::cout <<
      "commands:\n"
      "  (literalize ...) / (p ...) / (startup ...)   load source forms\n"
      "  load <file>         load a rule file\n"
      "  make <cls> ^a v ..  add a WME\n"
      "  remove <tag>        remove the WME with that time tag\n"
      "  run [n]             fire until quiescence (or at most n firings)\n"
      "  wm                  list working memory\n"
      "  cs                  list the conflict set\n"
      "  rules               pretty-print the loaded rules\n"
      "  excise <rule>       remove a rule\n"
      "  lint                run the rule linter\n"
      "  save <file>         dump working memory as a reloadable file\n"
      "  network             dump the Rete network topology\n"
      "  matches <rule>      show a set-oriented rule's SOIs\n"
      "  watch <0|1|2>       0: quiet, 1: firings, 2: firings + WM changes\n"
      "  stats               cumulative firing statistics\n"
      "  help                this text\n"
      "  quit                exit\n";
}

bool BalancedParens(const std::string& text) {
  int depth = 0;
  for (char c : text) {
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
  }
  return depth <= 0;
}

void ShowStatus(const sorel::Status& status) {
  if (!status.ok()) std::cout << "error: " << status.ToString() << "\n";
}

void CmdWm(Engine& engine) {
  for (const sorel::WmePtr& wme : engine.wm().Snapshot()) {
    const sorel::ClassSchema* schema = engine.schemas().Find(wme->cls());
    std::cout << wme->ToString(engine.symbols(), *schema) << "\n";
  }
  std::cout << engine.wm().size() << " wmes\n";
}

void CmdCs(Engine& engine) {
  for (sorel::InstantiationRef* inst : engine.conflict_set().Entries()) {
    std::vector<sorel::Row> rows;
    inst->CollectRows(&rows);
    std::cout << inst->rule().name << " (" << rows.size()
              << (rows.size() == 1 ? " row;" : " rows;") << " recency";
    for (sorel::TimeTag tag : inst->RecencyTags()) std::cout << " " << tag;
    std::cout << ")\n";
  }
  std::cout << engine.conflict_set().EligibleCount() << " eligible of "
            << engine.conflict_set().size() << " entries\n";
}

void CmdRules(Engine& engine) {
  sorel::AstPrinter printer(&engine.symbols());
  for (const sorel::CompiledRulePtr& rule : engine.rules()) {
    std::cout << printer.PrintRule(rule->ast) << "\n";
  }
  std::cout << engine.rules().size() << " rules\n";
}

void CmdMatches(Engine& engine, const std::string& rule_name) {
  const sorel::CompiledRule* rule = engine.FindRule(rule_name);
  if (rule == nullptr) {
    std::cout << "no such rule: " << rule_name << "\n";
    return;
  }
  sorel::SNode* snode = engine.snode(rule_name);
  if (snode == nullptr) {
    std::cout << rule_name << " is not set-oriented (or not on Rete)\n";
    return;
  }
  for (const sorel::Soi* soi : snode->sois()) {
    std::cout << (soi->active() ? "active  " : "inactive") << " SOI with "
              << soi->size() << " rows:";
    for (const sorel::Soi::Member& m : soi->members()) {
      std::cout << " [";
      for (size_t i = 0; i < m.row.size(); ++i) {
        std::cout << (i > 0 ? " " : "") << m.row[i]->time_tag();
      }
      std::cout << "]";
    }
    std::cout << "\n";
  }
  std::cout << snode->num_sois() << " SOIs in the gamma memory\n";
}

void CmdStats(Engine& engine) {
  const Engine::RunStats& stats = engine.run_stats();
  std::cout << stats.firings << " firings, " << stats.actions
            << " actions\n";
  for (const auto& [rule, count] : stats.firings_by_rule) {
    std::cout << "  " << rule << ": " << count << "\n";
  }
  const Engine::MatchStats match = engine.match_stats();
  std::cout << "match: " << match.rete.join_attempts << " join attempts, "
            << match.rete.index_probes << " index probes, "
            << match.rete.tokens_created << " tokens created, "
            << match.rete.tokens_deleted << " deleted\n"
            << "select: " << match.select.selects << " selects, "
            << match.select.comparisons << " comparisons\n";
}

/// Dispatches one complete command line. Returns false to quit.
bool Dispatch(Engine& engine, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty()) return true;
  if (cmd == "quit" || cmd == "exit") return false;
  if (cmd == "help") {
    PrintHelp();
  } else if (cmd[0] == '(') {
    ShowStatus(engine.LoadString(line));
  } else if (cmd == "load") {
    std::string path;
    in >> path;
    ShowStatus(engine.LoadFile(path));
  } else if (cmd == "make") {
    std::string rest;
    std::getline(in, rest);
    ShowStatus(engine.LoadString("(startup (make " + rest + "))"));
  } else if (cmd == "remove") {
    sorel::TimeTag tag = 0;
    in >> tag;
    ShowStatus(engine.RemoveWme(tag));
  } else if (cmd == "run") {
    int max = -1;
    in >> max;
    auto fired = engine.Run(in ? max : -1);
    ShowStatus(fired.status());
    if (fired.ok()) {
      std::cout << *fired << " firings"
                << (engine.halted() ? " (halted)" : "") << "\n";
    }
  } else if (cmd == "wm") {
    CmdWm(engine);
  } else if (cmd == "cs") {
    CmdCs(engine);
  } else if (cmd == "rules") {
    CmdRules(engine);
  } else if (cmd == "matches") {
    std::string rule;
    in >> rule;
    CmdMatches(engine, rule);
  } else if (cmd == "watch") {
    int level = 0;
    in >> level;
    engine.set_trace_firings(level >= 1);
    engine.set_trace_wm(level >= 2);
    std::cout << "watch level " << level << "\n";
  } else if (cmd == "lint") {
    size_t count = 0;
    for (const sorel::CompiledRulePtr& rule : engine.rules()) {
      for (const sorel::LintWarning& w : sorel::LintRule(*rule)) {
        std::cout << w.ToString() << "\n";
        ++count;
      }
    }
    std::cout << count << " warnings\n";
  } else if (cmd == "excise") {
    std::string rule;
    in >> rule;
    ShowStatus(engine.ExciseRule(rule));
  } else if (cmd == "save") {
    std::string path;
    in >> path;
    std::ofstream out(path);
    if (!out) {
      std::cout << "cannot open " << path << "\n";
    } else {
      engine.DumpWm(out);
      std::cout << "saved " << engine.wm().size() << " wmes to " << path
                << "\n";
    }
  } else if (cmd == "network") {
    if (engine.rete_matcher() != nullptr) {
      engine.rete_matcher()->DumpNetwork(std::cout, engine.symbols());
    } else {
      std::cout << "network dump is only available on the Rete matcher\n";
    }
  } else if (cmd == "stats") {
    CmdStats(engine);
  } else {
    std::cout << "unknown command '" << cmd << "' (try: help)\n";
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Engine engine;
  for (int i = 1; i < argc; ++i) {
    sorel::Status status = engine.LoadFile(argv[i]);
    if (!status.ok()) {
      std::cerr << argv[i] << ": " << status.ToString() << "\n";
      return 1;
    }
  }
  bool interactive = isatty(STDIN_FILENO) != 0;
  if (interactive) {
    std::cout << "sorel shell — set-oriented production system "
                 "(type 'help')\n";
  }
  std::string pending;
  std::string line;
  while (true) {
    if (interactive) std::cout << (pending.empty() ? "sorel> " : "...    ");
    if (!std::getline(std::cin, line)) break;
    pending += pending.empty() ? line : "\n" + line;
    // Multi-line source forms: wait for balanced brackets.
    if (!pending.empty() && pending[0] == '(' && !BalancedParens(pending)) {
      continue;
    }
    bool keep_going = Dispatch(engine, pending);
    pending.clear();
    if (!keep_going) break;
  }
  return 0;
}
