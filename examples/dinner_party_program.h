#ifndef SOREL_EXAMPLES_DINNER_PARTY_PROGRAM_H_
#define SOREL_EXAMPLES_DINNER_PARTY_PROGRAM_H_

#include <string>

// A Manners-style dinner-seating workload (after the classic OPS5
// benchmark): seat guests around the table alternating sex, each adjacent
// pair sharing a hobby. The generated guest population (equal sexes, two
// of three hobbies each, so any two guests overlap) makes the greedy
// strategy complete, keeping runs deterministic across matchers. Shared by
// the dinner_party example and the macro-workload benchmark.

namespace sorel_examples {

inline constexpr const char* kDinnerRules = R"(
  (literalize guest name sex hobby)
  (literalize seated seat name)
  (literalize context state target)
  (literalize lastseat n)

  ; Seat any male guest first.
  (p start
     { (context ^state start) <c> }
     (guest ^name <g> ^sex m)
     -->
     (modify <c> ^state seat)
     (make seated ^seat 1 ^name <g>)
     (make lastseat ^n 1))

  ; Extend the chain: opposite sex, shared hobby, not yet seated.
  (p seat-next
     (context ^state seat)
     { (lastseat ^n <k>) <l> }
     (seated ^seat <k> ^name <prev>)
     (guest ^name <prev> ^sex <ps> ^hobby <h>)
     (guest ^name <g> ^sex <> <ps> ^hobby <h>)
     - (seated ^name <g>)
     -->
     (make seated ^seat (<k> + 1) ^name <g>)
     (modify <l> ^n (<k> + 1)))

  ; Set-oriented completion check: the second-order count against the
  ; target replaces a counter-maintenance scheme, and the report walks the
  ; whole seating in one firing.
  (p all-seated
     { (context ^state seat ^target <n>) <c> }
     { [seated ^seat <s> ^name <g>] <S> }
     :test ((count <S>) == <n>)
     -->
     (modify <c> ^state done)
     (write seated (count <S>) guests: (crlf))
     (foreach <s> ascending
       (foreach <g> (write |  seat| <s> : <g> (crlf)))))
)";

// Tuple-oriented completion check used when running on the TREAT baseline
// (which rejects set-oriented rules).
inline constexpr const char* kDinnerDoneTuple = R"(
  (p all-seated
     { (context ^state seat ^target <n>) <c> }
     (lastseat ^n <n>)
     -->
     (modify <c> ^state done))
)";

/// Generates `(startup ...)` forms for `n` guests (n even): alternating
/// sexes, hobbies {i%3, (i+1)%3} so any two guests share one.
inline std::string DinnerPartyWm(int n) {
  std::string out = "(startup\n";
  for (int i = 0; i < n; ++i) {
    std::string name = "guest" + std::to_string(i);
    const char* sex = (i % 2 == 0) ? "m" : "f";
    for (int h : {i % 3, (i + 1) % 3}) {
      out += "  (make guest ^name " + name + " ^sex " + sex + " ^hobby h" +
             std::to_string(h) + ")\n";
    }
  }
  out += "  (make context ^state start ^target " + std::to_string(n) +
         "))\n";
  return out;
}

}  // namespace sorel_examples

#endif  // SOREL_EXAMPLES_DINNER_PARTY_PROGRAM_H_
