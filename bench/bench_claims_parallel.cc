// Experiment C5 (§1 + §8.1): parallel-firing cycles. DIPS executes all
// satisfied instantiations concurrently but "instantiations frequently
// conflict"; set-oriented rules change the granularity: one large firing
// instead of many small ones that must be conflict-checked. We measure
// cycles (parallel steps), batch sizes, and conflict aborts.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"

namespace sorel {
namespace bench {
namespace {

// Independent per-element work.
constexpr const char* kTupleIndependent =
    "(p drain { (player ^team A) <p> } --> (modify <p> ^team done))";
// Same work through one shared tally WME: every pair conflicts.
constexpr const char* kTupleShared =
    "(literalize tally n)"
    "(p drain { (player ^team A) <p> } { (tally ^n <c>) <t> } -->"
    " (modify <p> ^team done) (modify <t> ^n (<c> + 1)))";
// One set-oriented firing for the whole batch.
constexpr const char* kSetDrain =
    "(p drain { [player ^team A] <A> } --> (set-modify <A> ^team done))";

struct Measured {
  int cycles = 0;
  uint64_t firings = 0;
  uint64_t conflicts = 0;
  uint64_t largest_batch = 0;
};

Measured Drain(const char* rules, int n, bool with_tally,
               int match_threads = 0) {
  EngineOptions options;
  options.match_threads = match_threads;
  Engine engine(options);
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) + rules);
  if (with_tally) MustMake(engine, "tally", {{"n", Value::Int(0)}});
  for (int i = 0; i < n; ++i) {
    MustMake(engine, "player", {{"team", engine.Sym("A")},
                                {"id", Value::Int(i)}});
  }
  Measured m;
  m.cycles = CheckResult(engine.RunParallel(1000000), "RunParallel");
  m.firings = engine.parallel_stats().firings;
  m.conflicts = engine.parallel_stats().conflicts;
  m.largest_batch = engine.parallel_stats().largest_batch;
  return m;
}

void PrintTable() {
  std::printf("=== §1/§8.1: parallel-firing cycles ===\n");
  std::printf("%8s | %28s | %10s %10s %10s %10s\n", "batch", "formulation",
              "cycles", "firings", "batchmax", "conflicts");
  for (int n : {16, 128, 1024}) {
    struct Case {
      const char* label;
      const char* rules;
      bool tally;
    };
    const Case kCases[] = {
        {"tuple, independent", kTupleIndependent, false},
        {"tuple, shared counter", kTupleShared, true},
        {"set-oriented", kSetDrain, false},
    };
    for (const Case& c : kCases) {
      Measured m = Drain(c.rules, n, c.tally);
      std::printf("%8d | %28s | %10d %10llu %10llu %10llu\n", n, c.label,
                  m.cycles, static_cast<unsigned long long>(m.firings),
                  static_cast<unsigned long long>(m.largest_batch),
                  static_cast<unsigned long long>(m.conflicts));
    }
  }
  std::printf("(shape: independent tuple work parallelizes into 1 cycle of n\n"
              " firings; a shared WME serializes it into n cycles with O(n^2)\n"
              " conflict aborts; the set-oriented rule does the whole batch\n"
              " as 1 firing with no conflict checking at all)\n\n");
}

void BM_ParallelDrain(benchmark::State& state) {
  int mode = static_cast<int>(state.range(0));
  int n = static_cast<int>(state.range(1));
  const char* rules = mode == 0   ? kTupleIndependent
                      : mode == 1 ? kTupleShared
                                  : kSetDrain;
  for (auto _ : state) {
    Measured m = Drain(rules, n, mode == 1);
    state.counters["cycles"] = m.cycles;
    state.counters["conflicts"] = static_cast<double>(m.conflicts);
    benchmark::DoNotOptimize(m.cycles);
  }
  state.SetLabel(mode == 0   ? "tuple independent"
                 : mode == 1 ? "tuple shared-counter"
                             : "set-oriented");
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelDrain)
    ->Args({0, 128})
    ->Args({1, 128})
    ->Args({2, 128})
    ->Args({0, 512})
    ->Args({2, 512});

/// The same drain under the multi-threaded match layer: firing batches
/// commit as transactions, so each cycle's changes propagate through the
/// worker pool (cycle results stay bit-identical by construction).
void BM_ParallelDrainThreads(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Measured m = Drain(kTupleIndependent, 256, false, threads);
    state.counters["cycles"] = m.cycles;
    benchmark::DoNotOptimize(m.cycles);
  }
  state.SetLabel("match_threads=" + std::to_string(threads));
}
BENCHMARK(BM_ParallelDrainThreads)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  sorel::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
