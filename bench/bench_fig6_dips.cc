// Experiment F6 (Figure 6, §8): set-oriented DIPS. Prints the COND tables
// and the SOI-retrieval query result exactly as in the figure, then
// benchmarks the relational (query-per-change) matcher against the
// incremental extended Rete.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "dips/dips.h"

namespace sorel {
namespace bench {
namespace {

constexpr const char* kRule1Schema =
    "(literalize E name salary)(literalize W name job)";
constexpr const char* kRule1 =
    "(p rule-1 (E ^name <x> ^salary <s>) [W ^name <x> ^job clerk]"
    " --> (halt))";

Engine MakeDips() {
  EngineOptions options;
  options.matcher = MatcherKind::kDips;
  return Engine(options);
}

void PrintFigure6() {
  std::printf("=== Figure 6: set-oriented DIPS ===\n");
  Engine engine = MakeDips();
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kRule1Schema) + kRule1);
  MustMake(engine, "W", {{"name", engine.Sym("Mike")},
                         {"job", engine.Sym("clerk")}});
  MustMake(engine, "E", {{"name", engine.Sym("Mike")},
                         {"salary", Value::Int(10000)}});
  MustMake(engine, "W", {{"name", engine.Sym("Mike")},
                         {"job", engine.Sym("clerk")}});
  MustMake(engine, "E", {{"name", engine.Sym("Mike")},
                         {"salary", Value::Int(5000)}});
  auto* dips = static_cast<dips::DipsMatcher*>(&engine.matcher());
  const CompiledRule* rule = engine.FindRule("rule-1");
  std::printf("COND-E:\n%s",
              dips->cond_table(rule, 0)->relation()
                  .ToString(engine.symbols()).c_str());
  std::printf("COND-W:\n%s",
              dips->cond_table(rule, 1)->relation()
                  .ToString(engine.symbols()).c_str());
  auto sois = dips->RetrieveSois(rule);
  Check(sois.status(), "RetrieveSois");
  std::printf("Relation containing SOIs (group-by COND-E.WME-TAGS):\n%s",
              sois->ToString(engine.symbols()).c_str());
  auto summary = dips->SoiSummary(rule);
  Check(summary.status(), "SoiSummary");
  std::printf("SOI summary:\n%s",
              summary->ToString(engine.symbols()).c_str());
  std::printf("(paper: two groups — E#2 with W#{1,3}, E#4 with W#{1,3})\n\n");
}

// SOI retrieval query cost as WM grows.
void BM_DipsSoiRetrieval(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Engine engine = MakeDips();
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kRule1Schema) + kRule1);
  for (int i = 0; i < n; ++i) {
    std::string name = "emp" + std::to_string(i % 16);
    MustMake(engine, "E", {{"name", engine.Sym(name)},
                           {"salary", Value::Int(1000 + i)}});
    MustMake(engine, "W", {{"name", engine.Sym(name)},
                           {"job", engine.Sym("clerk")}});
  }
  auto* dips = static_cast<dips::DipsMatcher*>(&engine.matcher());
  const CompiledRule* rule = engine.FindRule("rule-1");
  for (auto _ : state) {
    auto sois = dips->RetrieveSois(rule);
    Check(sois.status(), "RetrieveSois");
    benchmark::DoNotOptimize(sois->size());
    state.counters["result_rows"] = static_cast<double>(sois->size());
  }
}
BENCHMARK(BM_DipsSoiRetrieval)->Arg(16)->Arg(64)->Arg(256);

// Per-WM-change cost: query-per-change DIPS vs incremental Rete (the §8
// motivation for integrating set-oriented constructs into the DBMS match).
void BM_WmChurn(benchmark::State& state) {
  bool use_dips = state.range(0) != 0;
  int n = static_cast<int>(state.range(1));
  EngineOptions options;
  options.matcher = use_dips ? MatcherKind::kDips : MatcherKind::kRete;
  Engine engine(options);
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kRule1Schema) + kRule1);
  for (int i = 0; i < n; ++i) {
    std::string name = "emp" + std::to_string(i % 16);
    MustMake(engine, "E", {{"name", engine.Sym(name)},
                           {"salary", Value::Int(1000 + i)}});
    MustMake(engine, "W", {{"name", engine.Sym(name)},
                           {"job", engine.Sym("clerk")}});
  }
  for (auto _ : state) {
    TimeTag tag = MustMake(engine, "W", {{"name", engine.Sym("emp0")},
                                         {"job", engine.Sym("clerk")}});
    Check(engine.RemoveWme(tag), "remove");
  }
  state.SetLabel(use_dips ? "DIPS (query per change)" : "Rete (incremental)");
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_WmChurn)->Args({1, 32})->Args({0, 32})->Args({1, 128})
    ->Args({0, 128});

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  sorel::bench::PrintFigure6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
