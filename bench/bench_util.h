#ifndef SOREL_BENCH_BENCH_UTIL_H_
#define SOREL_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "obs/json.h"

namespace sorel {
namespace bench {

/// An ostream that discards everything (rule output is not what we time).
inline std::ostream* DevNull() {
  static std::ostringstream* sink = new std::ostringstream;
  sink->str("");  // keep it from growing across benchmarks
  return sink;
}

/// Aborts the benchmark on error — benches must not silently misreport.
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "benchmark setup failed (%s): %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
inline T CheckResult(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "benchmark setup failed (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void MustLoad(Engine& engine, const std::string& src) {
  Check(engine.LoadString(src), "LoadString");
}

inline TimeTag MustMake(
    Engine& engine, std::string_view cls,
    const std::vector<std::pair<std::string, Value>>& values) {
  return CheckResult(engine.MakeWme(cls, values), "MakeWme");
}

inline int MustRun(Engine& engine, int max = -1) {
  return CheckResult(engine.Run(max), "Run");
}

/// Adds `n` players per team over `teams` team symbols; names cycle through
/// `distinct_names` values. Returns the last time tag.
inline TimeTag FillPlayers(Engine& engine, int n, int teams,
                           int distinct_names) {
  TimeTag last = 0;
  for (int i = 0; i < n; ++i) {
    std::string team = "team" + std::to_string(i % teams);
    std::string name = "name" + std::to_string(i % distinct_names);
    last = MustMake(engine, "player",
                    {{"team", engine.Sym(team)}, {"name", engine.Sym(name)}});
  }
  return last;
}

inline constexpr const char* kPlayerSchema =
    "(literalize player name team score id)";

/// Strips `--json` from argv and reports whether it was present. Call
/// before benchmark::Initialize, which rejects flags it doesn't know.
inline bool StripJsonFlag(int* argc, char** argv) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      found = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return found;
}

/// Accumulates one bench run's numbers and writes `BENCH_<name>.json` in
/// the working directory: a `config` object plus a `results` array of
/// labeled rows (wall clocks, counters, match_stats snapshots) — the
/// machine-readable companion to the printed tables, for tracking perf
/// across commits.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void Config(const std::string& key, double value) {
    config_.emplace_back(key, value);
  }
  /// Starts a result row; subsequent Value/MatchStats calls land in it.
  void BeginRow(std::string label) { rows_.push_back({std::move(label), {}}); }
  void Value(const std::string& key, double value) {
    rows_.back().fields.emplace_back(key, value);
  }
  /// Flattens a MatchStats snapshot into the current row.
  void MatchStats(const Engine::MatchStats& s) {
    Value("rete.join_attempts", static_cast<double>(s.rete.join_attempts));
    Value("rete.index_probes", static_cast<double>(s.rete.index_probes));
    Value("rete.tokens_created", static_cast<double>(s.rete.tokens_created));
    Value("rete.tokens_deleted", static_cast<double>(s.rete.tokens_deleted));
    Value("rete.right_activations",
          static_cast<double>(s.rete.right_activations));
    Value("rete.batches", static_cast<double>(s.rete.batches));
    Value("rete.token_pool_hits",
          static_cast<double>(s.rete.token_pool_hits));
    Value("rete.parallel_batches",
          static_cast<double>(s.rete.parallel_batches));
    Value("rete.replay_tasks", static_cast<double>(s.rete.replay_tasks));
    Value("rete.intra_splits", static_cast<double>(s.rete.intra_splits));
    Value("rete.intra_slice_tasks",
          static_cast<double>(s.rete.intra_slice_tasks));
    Value("select.selects", static_cast<double>(s.select.selects));
    Value("select.comparisons", static_cast<double>(s.select.comparisons));
    Value("snode.test_evals", static_cast<double>(s.snode.test_evals));
    Value("treat.seeded_searches",
          static_cast<double>(s.treat.seeded_searches));
    Value("treat.full_searches", static_cast<double>(s.treat.full_searches));
    Value("treat.intra_splits", static_cast<double>(s.treat.intra_splits));
    Value("treat.intra_slice_tasks",
          static_cast<double>(s.treat.intra_slice_tasks));
    Value("dips.refreshes", static_cast<double>(s.dips.refreshes));
    Value("plan.join_attempts", static_cast<double>(s.plan.join_attempts));
    Value("plan.reorders", static_cast<double>(s.plan.reorders));
    Value("plan.est_cardinality_error",
          static_cast<double>(s.plan.est_cardinality_error));
    Value("plan.index_builds", static_cast<double>(s.plan.index_builds));
    Value("plan.seeded_searches",
          static_cast<double>(s.plan.seeded_searches));
    Value("plan.full_searches", static_cast<double>(s.plan.full_searches));
    Value("wm.adds", static_cast<double>(s.wm.adds));
    Value("wm.removes", static_cast<double>(s.wm.removes));
    Value("wm.batches", static_cast<double>(s.wm.batches));
    Value("pool.threads", static_cast<double>(s.pool.threads));
    Value("pool.tasks", static_cast<double>(s.pool.tasks));
    Value("pool.batches", static_cast<double>(s.pool.batches));
    Value("pool.nested_batches",
          static_cast<double>(s.pool.nested_batches));
    Value("pool.max_task_depth",
          static_cast<double>(s.pool.max_task_depth));
  }

  /// Renders the report to `out` (exposed separately from Write so tests
  /// can check the JSON without touching the filesystem).
  void WriteTo(std::ostream& out) const {
    out << "{\n  \"bench\": \"" << Escape(name_) << "\",\n  \"config\": {";
    for (size_t i = 0; i < config_.size(); ++i) {
      out << (i ? ", " : "") << "\"" << Escape(config_[i].first)
          << "\": " << Number(config_[i].second);
    }
    out << "},\n  \"results\": [\n";
    for (size_t r = 0; r < rows_.size(); ++r) {
      out << "    {\"label\": \"" << Escape(rows_[r].label) << "\"";
      for (const auto& [key, value] : rows_[r].fields) {
        out << ", \"" << Escape(key) << "\": " << Number(value);
      }
      out << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  /// Writes BENCH_<name>.json. Returns false (with a stderr note) on I/O
  /// failure; benches treat that as fatal.
  bool Write() const {
    std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    WriteTo(out);
    out.flush();
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  // Rendering delegates to the shared obs JSON helpers, so bench reports
  // and trace exporters agree on one escaping/number format (and the
  // reports parse back with obs::ParseJson / ValidateBenchReport).
  static std::string Escape(const std::string& s) { return obs::JsonEscape(s); }
  static std::string Number(double v) { return obs::JsonNumber(v); }

  struct Row {
    std::string label;
    std::vector<std::pair<std::string, double>> fields;
  };
  std::string name_;
  std::vector<std::pair<std::string, double>> config_;
  std::vector<Row> rows_;
};

}  // namespace bench
}  // namespace sorel

#endif  // SOREL_BENCH_BENCH_UTIL_H_
