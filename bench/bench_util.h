#ifndef SOREL_BENCH_BENCH_UTIL_H_
#define SOREL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

#include "engine/engine.h"

namespace sorel {
namespace bench {

/// An ostream that discards everything (rule output is not what we time).
inline std::ostream* DevNull() {
  static std::ostringstream* sink = new std::ostringstream;
  sink->str("");  // keep it from growing across benchmarks
  return sink;
}

/// Aborts the benchmark on error — benches must not silently misreport.
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "benchmark setup failed (%s): %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
inline T CheckResult(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "benchmark setup failed (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void MustLoad(Engine& engine, const std::string& src) {
  Check(engine.LoadString(src), "LoadString");
}

inline TimeTag MustMake(
    Engine& engine, std::string_view cls,
    const std::vector<std::pair<std::string, Value>>& values) {
  return CheckResult(engine.MakeWme(cls, values), "MakeWme");
}

inline int MustRun(Engine& engine, int max = -1) {
  return CheckResult(engine.Run(max), "Run");
}

/// Adds `n` players per team over `teams` team symbols; names cycle through
/// `distinct_names` values. Returns the last time tag.
inline TimeTag FillPlayers(Engine& engine, int n, int teams,
                           int distinct_names) {
  TimeTag last = 0;
  for (int i = 0; i < n; ++i) {
    std::string team = "team" + std::to_string(i % teams);
    std::string name = "name" + std::to_string(i % distinct_names);
    last = MustMake(engine, "player",
                    {{"team", engine.Sym(team)}, {"name", engine.Sym(name)}});
  }
  return last;
}

inline constexpr const char* kPlayerSchema =
    "(literalize player name team score id)";

}  // namespace bench
}  // namespace sorel

#endif  // SOREL_BENCH_BENCH_UTIL_H_
