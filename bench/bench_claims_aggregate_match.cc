// Experiment C3 (§4.2): "If an OPS5 program needs to act based on the
// cardinality of a set ... it needs to cycle through all the members of
// that set calculating the second order value. With aggregate operators,
// this value can be directly accessed."
// Compares a :test (count ...) trigger against the classic counter-WME
// maintenance program.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"

namespace sorel {
namespace bench {
namespace {

// Direct second-order match (the paper's way).
std::string SetProgram(int threshold) {
  return std::string(kPlayerSchema) +
         "(p enough { [player ^team A] <A> }"
         " :test ((count <A>) >= " + std::to_string(threshold) + ")"
         " --> (make player ^team signal) (halt))";
}

// Tuple-oriented counting: every new member must be marked counted and a
// counter WME incremented — one firing per member (§4.2's "cycle").
std::string TupleProgram(int threshold) {
  return std::string(kPlayerSchema) +
         "(literalize tally n)"
         "(p count-one { (player ^team A ^score nil) <p> }"
         "             { (tally ^n <c>) <t> } -->"
         " (modify <p> ^score counted)"
         " (modify <t> ^n (<c> + 1)))"
         "(p enough (tally ^n >= " + std::to_string(threshold) + ")"
         " --> (make player ^team signal) (halt))";
}

struct Measured {
  int firings;
  double millis;
};

Measured RunToSignal(const std::string& program, int members, bool tuple) {
  Engine engine;
  engine.set_output(DevNull());
  MustLoad(engine, program);
  if (tuple) MustMake(engine, "tally", {{"n", Value::Int(0)}});
  for (int i = 0; i < members; ++i) {
    MustMake(engine, "player", {{"team", engine.Sym("A")},
                                {"id", Value::Int(i)}});
  }
  auto start = std::chrono::steady_clock::now();
  Measured m;
  m.firings = MustRun(engine, 1000000);
  m.millis = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
                 .count();
  if (!engine.halted()) {
    std::fprintf(stderr, "threshold never reached — bad workload\n");
    std::abort();
  }
  return m;
}

void PrintTable() {
  std::printf("=== §4.2 claim: direct aggregate match vs counting rules ===\n");
  std::printf("%8s | %16s %10s | %16s %10s\n", "members", "set-firings",
              "set-ms", "tuple-firings", "tuple-ms");
  for (int n : {16, 128, 1024}) {
    Measured set = RunToSignal(SetProgram(n), n, false);
    Measured tuple = RunToSignal(TupleProgram(n), n, true);
    std::printf("%8d | %16d %10.2f | %16d %10.2f\n", n, set.firings,
                set.millis, tuple.firings, tuple.millis);
  }
  std::printf("(shape: cardinality is matched directly in 1 firing; the\n"
              " counting program needs one firing per member and the count\n"
              " 'is not automatically updated when the size changes')\n\n");
}

void BM_CardinalityTrigger(benchmark::State& state) {
  bool tuple = state.range(0) != 0;
  int n = static_cast<int>(state.range(1));
  std::string program = tuple ? TupleProgram(n) : SetProgram(n);
  for (auto _ : state) {
    Measured m = RunToSignal(program, n, tuple);
    state.counters["firings"] = m.firings;
    benchmark::DoNotOptimize(m.firings);
  }
  state.SetLabel(tuple ? "counter-WME maintenance" : ":test (count ...)");
}
BENCHMARK(BM_CardinalityTrigger)->Args({0, 128})->Args({1, 128})
    ->Args({0, 512})->Args({1, 512});

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  sorel::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
