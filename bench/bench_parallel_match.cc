// Tentpole experiment: multi-threaded match propagation over ChangeBatches.
// A wide multi-rule program (one join-heavy rule per team) is driven with
// one large add transaction, one large remove transaction, and a smaller
// re-add transaction (which must recycle the removed tokens); with
// `match_threads` = N each matcher fans the batch out per rule (Rete
// replays beta chains, TREAT re-searches, DIPS refreshes) and the buffered
// conflict-set sends merge deterministically. The rules' final CE never
// matches, so conflict-set traffic is ~zero by construction and the
// measured time is the parallelizable join work — the speedup ceiling the
// deterministic merge leaves intact. Run with `--json` to also write
// BENCH_parallel_match.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace sorel {
namespace bench {
namespace {

constexpr int kRules = 32;
constexpr int kPlayers = 4096;

/// One rule per team. CE1 x CE2 is a non-equijoin (`<=`), so every team-k
/// add scans team k's alpha memory — O(m^2) join attempts per team, all of
/// it rule-private beta work. CE3 never matches: the chain does full join
/// work but emits nothing, keeping the serialized merge phase empty.
std::string HeavyRules(int rules) {
  std::string src;
  for (int k = 0; k < rules; ++k) {
    const std::string t = "team" + std::to_string(k);
    src += "(p heavy-" + std::to_string(k) + " (player ^team " + t +
           " ^id <i> ^score <s>) (player ^team " + t +
           " ^score <= <s>) (player ^id 999999) --> (write x))";
  }
  return src;
}

std::string HeavyProgram(int rules) {
  return std::string(kPlayerSchema) + HeavyRules(rules);
}

struct Measured {
  double add_ms = 0;
  double remove_ms = 0;
  double readd_ms = 0;
  Engine::MatchStats stats;
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Adds `players` WMEs in one transaction, removes half in another, then
/// adds a quarter more in a third, timing each commit's match propagation.
/// The re-add lands on the token storage the removals just vacated, so for
/// Rete it must be served from the arena free lists — the run aborts if
/// the recycling counter stayed at zero.
Measured RunOnce(MatcherKind kind, int threads, int rules, int players,
                 bool soa = true) {
  EngineOptions options;
  options.matcher = kind;
  options.match_threads = threads;
  options.rete.soa_memories = soa;
  Engine engine(options);
  engine.set_output(DevNull());
  MustLoad(engine, HeavyProgram(rules));
  engine.ResetMatchStats();

  Measured m;
  std::vector<TimeTag> tags;
  tags.reserve(players);
  auto t0 = std::chrono::steady_clock::now();
  engine.wm().Begin();
  for (int i = 0; i < players; ++i) {
    tags.push_back(MustMake(
        engine, "player",
        {{"team", engine.Sym("team" + std::to_string(i % rules))},
         {"id", Value::Int(i)},
         {"score", Value::Int(i % 17)}}));
  }
  Check(engine.wm().Commit(), "add commit");
  m.add_ms = MsSince(t0);

  auto t1 = std::chrono::steady_clock::now();
  engine.wm().Begin();
  for (size_t i = 0; i < tags.size(); i += 2) {
    Check(engine.RemoveWme(tags[i]), "RemoveWme");
  }
  Check(engine.wm().Commit(), "remove commit");
  m.remove_ms = MsSince(t1);

  auto t2 = std::chrono::steady_clock::now();
  engine.wm().Begin();
  for (int i = 0; i < players / 4; ++i) {
    MustMake(engine, "player",
             {{"team", engine.Sym("team" + std::to_string(i % rules))},
              {"id", Value::Int(players + i)},
              {"score", Value::Int(i % 17)}});
  }
  Check(engine.wm().Commit(), "re-add commit");
  m.readd_ms = MsSince(t2);

  m.stats = engine.match_stats();
  if (kind == MatcherKind::kRete && m.stats.rete.token_pool_hits == 0) {
    std::fprintf(stderr,
                 "bench_parallel_match: rete.token_pool_hits == 0 after the "
                 "re-add phase — removal stopped recycling tokens into the "
                 "arena free lists\n");
    std::abort();
  }
  return m;
}

const char* KindName(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kRete:
      return "Rete";
    case MatcherKind::kTreat:
      return "TREAT";
    case MatcherKind::kDips:
      return "DIPS";
    case MatcherKind::kPlan:
      return "plan";
  }
  return "?";
}

void PrintTable(JsonReport* report) {
  std::printf("=== tentpole: multi-threaded batch match propagation ===\n");
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("%d rules (one per team), %d players added in 1 transaction,\n"
              "half removed in a second one; threads=0 is the sequential\n"
              "ablation baseline; host has %u core(s) — speedup is capped\n"
              "by that, not by the match layer\n\n", kRules, kPlayers, cores);
  if (report != nullptr) {
    report->Config("rules", kRules);
    report->Config("players", kPlayers);
    report->Config("host_cores", cores);
  }
  std::printf("%7s %8s | %10s %8s | %10s %8s | %9s | %9s %9s\n", "matcher",
              "threads", "add ms", "speedup", "remove ms", "speedup",
              "readd ms", "pool tasks", "depth");
  // Discarded warmup (see bench_removal): keep one-time process costs off
  // the first measured row.
  RunOnce(MatcherKind::kRete, 0, kRules, kPlayers);
  for (MatcherKind kind : {MatcherKind::kRete, MatcherKind::kTreat,
                           MatcherKind::kDips, MatcherKind::kPlan}) {
    double base_add = 0, base_remove = 0;
    for (int threads : {0, 1, 2, 4, 8}) {
      Measured m = RunOnce(kind, threads, kRules, kPlayers);
      if (threads == 0) {
        base_add = m.add_ms;
        base_remove = m.remove_ms;
      }
      std::printf(
          "%7s %8d | %10.2f %7.2fx | %10.2f %7.2fx | %9.2f | %9llu %9llu\n",
          KindName(kind), threads, m.add_ms, base_add / m.add_ms, m.remove_ms,
          base_remove / m.remove_ms, m.readd_ms,
          static_cast<unsigned long long>(m.stats.pool.tasks),
          static_cast<unsigned long long>(m.stats.pool.max_task_depth));
      if (report != nullptr) {
        report->BeginRow(std::string(KindName(kind)) +
                         "/threads=" + std::to_string(threads));
        report->Value("threads", threads);
        report->Value("add_ms", m.add_ms);
        report->Value("remove_ms", m.remove_ms);
        report->Value("readd_ms", m.readd_ms);
        report->Value("add_speedup", base_add / m.add_ms);
        report->Value("remove_speedup", base_remove / m.remove_ms);
        report->MatchStats(m.stats);
      }
    }
    if (kind != MatcherKind::kRete && kind != MatcherKind::kTreat) continue;
    // Tuple-layout (AoS) ablation rows for the matchers that carry the
    // columnar match-state flag; the default rows above are soa=on.
    for (int threads : {0, 4}) {
      Measured m = RunOnce(kind, threads, kRules, kPlayers, /*soa=*/false);
      std::printf(
          "%7s %8d | %10.2f %7s  | %10.2f %7s  | %9.2f | %9llu %9llu"
          "  (soa=off)\n",
          KindName(kind), threads, m.add_ms, "", m.remove_ms, "", m.readd_ms,
          static_cast<unsigned long long>(m.stats.pool.tasks),
          static_cast<unsigned long long>(m.stats.pool.max_task_depth));
      if (report != nullptr) {
        report->BeginRow(std::string(KindName(kind)) +
                         "/threads=" + std::to_string(threads) + "/soa=off");
        report->Value("threads", threads);
        report->Value("soa_memories", 0);
        report->Value("add_ms", m.add_ms);
        report->Value("remove_ms", m.remove_ms);
        report->Value("readd_ms", m.readd_ms);
        report->MatchStats(m.stats);
      }
    }
  }
  std::printf("\n(the per-rule beta/alpha work dominates and shards cleanly;\n"
              " the serialized parts — WM staging, alpha inserts, the\n"
              " conflict-set merge — stay on the coordinator)\n\n");
}

// --- intra-rule sweep -----------------------------------------------------
//
// Two wide rules on purpose: with fewer rules than threads, the per-rule
// fan-out from the tentpole above cannot fill the pool, so any further
// speedup must come from splitting a single rule's work. Rete slices its
// batch replay scans; TREAT slices the add-rule full search. Both phases
// are timed: `rule ms` loads the rules into an already-populated WM (the
// TREAT split site), `add ms` commits a second player batch (the Rete
// split site).

constexpr int kIntraRules = 2;
constexpr int kIntraPlayers = 2048;
constexpr int kIntraSecondBatch = 1024;

struct IntraMeasured {
  double rule_ms = 0;
  double add_ms = 0;
  Engine::MatchStats stats;
};

IntraMeasured RunIntraOnce(MatcherKind kind, int threads, int split) {
  EngineOptions options;
  options.matcher = kind;
  options.match_threads = threads;
  options.intra_rule_split_min_tokens = split;
  Engine engine(options);
  engine.set_output(DevNull());
  MustLoad(engine, kPlayerSchema);
  engine.wm().Begin();
  for (int i = 0; i < kIntraPlayers; ++i) {
    MustMake(engine, "player",
             {{"team", engine.Sym("team" + std::to_string(i % kIntraRules))},
              {"id", Value::Int(i)},
              {"score", Value::Int(i % 17)}});
  }
  Check(engine.wm().Commit(), "populate commit");
  engine.ResetMatchStats();

  IntraMeasured m;
  auto t0 = std::chrono::steady_clock::now();
  MustLoad(engine, HeavyRules(kIntraRules));
  m.rule_ms = MsSince(t0);

  auto t1 = std::chrono::steady_clock::now();
  engine.wm().Begin();
  for (int i = 0; i < kIntraSecondBatch; ++i) {
    MustMake(engine, "player",
             {{"team", engine.Sym("team" + std::to_string(i % kIntraRules))},
              {"id", Value::Int(kIntraPlayers + i)},
              {"score", Value::Int(i % 17)}});
  }
  Check(engine.wm().Commit(), "second add commit");
  m.add_ms = MsSince(t1);

  m.stats = engine.match_stats();
  return m;
}

void PrintIntraTable(JsonReport* report) {
  std::printf("=== intra-rule split sweep (threshold x threads) ===\n");
  std::printf("%d rules only — too few to fill the pool rule-per-task; "
              "%d players\npre-loaded, rules added on top (TREAT split "
              "site), then %d more\nplayers in one batch (Rete split site); "
              "threshold 0 disables splitting\n\n",
              kIntraRules, kIntraPlayers, kIntraSecondBatch);
  if (report != nullptr) {
    report->Config("rules", kIntraRules);
    report->Config("players", kIntraPlayers);
    report->Config("second_batch", kIntraSecondBatch);
    report->Config("host_cores", std::thread::hardware_concurrency());
  }
  std::printf("%7s %6s %8s | %9s %8s | %9s %8s | %7s %7s\n", "matcher",
              "split", "threads", "rule ms", "speedup", "add ms", "speedup",
              "splits", "slices");
  for (MatcherKind kind : {MatcherKind::kRete, MatcherKind::kTreat}) {
    double base_rule = 0, base_add = 0;
    for (int split : {0, 1024, 256, 64}) {
      for (int threads : {0, 2, 4, 8}) {
        if (split == 0 && threads != 0) continue;  // one no-split baseline
        IntraMeasured m = RunIntraOnce(kind, threads, split);
        if (split == 0) {
          base_rule = m.rule_ms;
          base_add = m.add_ms;
        }
        uint64_t splits = kind == MatcherKind::kRete
                              ? m.stats.rete.intra_splits
                              : m.stats.treat.intra_splits;
        uint64_t slices = kind == MatcherKind::kRete
                              ? m.stats.rete.intra_slice_tasks
                              : m.stats.treat.intra_slice_tasks;
        std::printf(
            "%7s %6d %8d | %9.2f %7.2fx | %9.2f %7.2fx | %7llu %7llu\n",
            KindName(kind), split, threads, m.rule_ms, base_rule / m.rule_ms,
            m.add_ms, base_add / m.add_ms,
            static_cast<unsigned long long>(splits),
            static_cast<unsigned long long>(slices));
        if (report != nullptr) {
          report->BeginRow(std::string(KindName(kind)) +
                           "/split=" + std::to_string(split) +
                           "/threads=" + std::to_string(threads));
          report->Value("split_min_tokens", split);
          report->Value("threads", threads);
          report->Value("rule_ms", m.rule_ms);
          report->Value("add_ms", m.add_ms);
          report->Value("rule_speedup", base_rule / m.rule_ms);
          report->Value("add_speedup", base_add / m.add_ms);
          report->MatchStats(m.stats);
        }
      }
    }
  }
  std::printf("\n(slice forks pay a per-batch fork/merge toll, so the win\n"
              " depends on slice width: low thresholds over-shard small\n"
              " alphas, high thresholds never engage)\n\n");
}

void BM_ParallelMatchBatch(benchmark::State& state) {
  MatcherKind kind = static_cast<MatcherKind>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Measured m = RunOnce(kind, threads, 16, 1024);
    benchmark::DoNotOptimize(m.add_ms);
  }
  state.SetLabel(std::string(KindName(kind)) + " threads=" +
                 std::to_string(threads));
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ParallelMatchBatch)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({0, 4})
    ->Args({0, 8})
    ->Args({1, 0})
    ->Args({1, 4})
    ->Args({2, 0})
    ->Args({2, 4})
    ->Args({3, 0})
    ->Args({3, 4});

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  bool json = sorel::bench::StripJsonFlag(&argc, argv);
  sorel::bench::JsonReport report("parallel_match");
  sorel::bench::PrintTable(json ? &report : nullptr);
  if (json && !report.Write()) return 1;
  sorel::bench::JsonReport intra_report("intra_rule");
  sorel::bench::PrintIntraTable(json ? &intra_report : nullptr);
  if (json && !intra_report.Write()) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
