// Experiment F5 + C4 (Figure 5, §7): expressive power of set-oriented
// rules. Pits the paper's one-firing set-oriented programs against the
// tuple-oriented OPS5 formulations they replace (pairwise deduplication and
// a phase/marking-scheme team switch). Reported shape: set-oriented firings
// stay O(1) while tuple-oriented firings grow with the data, at comparable
// or better wall time. Run with `--json` to also write
// BENCH_fig5_expressiveness.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"

namespace sorel {
namespace bench {
namespace {

constexpr const char* kSetRemoveDups =
    "(p RemoveDups { [player ^name <n> ^team <t>] <P> } :scalar (<n> <t>)"
    " :test ((count <P>) > 1) -->"
    " (bind <first> true)"
    " (foreach <P> descending"
    "   (if (<first> == true) (bind <first> false) else (remove <P>))))";

// The tuple-oriented formulation needs unique ids to avoid self-pairing —
// exactly the kind of encoding trick §7.2 calls out.
constexpr const char* kTupleRemoveDups =
    "(p RemoveDups (player ^id <i> ^name <n> ^team <t>)"
    "              (player ^id { <> <i> } ^name <n> ^team <t>)"
    " --> (remove 2))";

constexpr const char* kSetSwitch =
    "(literalize phase step)"
    "(p Switch (phase) { [player ^team A] <A> } { [player ^team B] <B> } -->"
    " (remove 1)"
    " (set-modify <A> ^team B)"
    " (set-modify <B> ^team A))";

// The marking scheme of §7.1: three sweep phases plus three control rules.
constexpr const char* kTupleSwitch =
    "(literalize phase step)"
    "(p switchA (phase ^step 1) { (player ^team A) <p> }"
    " --> (modify <p> ^team toB))"
    "(p doneA { (phase ^step 1) <ph> } - (player ^team A)"
    " --> (modify <ph> ^step 2))"
    "(p switchB (phase ^step 2) { (player ^team B) <p> }"
    " --> (modify <p> ^team A))"
    "(p doneB { (phase ^step 2) <ph> } - (player ^team B)"
    " --> (modify <ph> ^step 3))"
    "(p switchToB (phase ^step 3) { (player ^team toB) <p> }"
    " --> (modify <p> ^team B))"
    "(p doneAll { (phase ^step 3) <ph> } - (player ^team toB)"
    " --> (remove <ph>))";

struct Outcome {
  int firings = 0;
  uint64_t actions = 0;
  double millis = 0;
};

// `players` WMEs spread over 4 (name, team) groups: few groups, many
// duplicates — the §7.2 scenario where one set-oriented firing replaces a
// long chain of tuple-oriented firings.
Outcome RunDedup(const char* rules, int players) {
  Engine engine;
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) + rules);
  for (int i = 0; i < players; ++i) {
    MustMake(engine, "player",
             {{"name", engine.Sym("n" + std::to_string(i % 2))},
              {"team", engine.Sym("t" + std::to_string((i / 2) % 2))},
              {"id", Value::Int(i)}});
  }
  auto start = std::chrono::steady_clock::now();
  Outcome out;
  out.firings = MustRun(engine, 1000000);
  out.millis = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  out.actions = engine.run_stats().actions;
  return out;
}

Outcome RunSwitch(const char* rules, int per_team) {
  Engine engine;
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) + rules);
  for (int i = 0; i < per_team; ++i) {
    MustMake(engine, "player", {{"team", engine.Sym("A")},
                                {"id", Value::Int(i)}});
    MustMake(engine, "player", {{"team", engine.Sym("B")},
                                {"id", Value::Int(per_team + i)}});
  }
  MustMake(engine, "phase", {{"step", Value::Int(1)}});
  auto start = std::chrono::steady_clock::now();
  Outcome out;
  out.firings = MustRun(engine, 1000000);
  out.millis = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  out.actions = engine.run_stats().actions;
  return out;
}

void Report(JsonReport* report, const char* table, const char* variant,
            int size, const Outcome& out) {
  if (report == nullptr) return;
  report->BeginRow(std::string(table) + "/" + variant + "/n=" +
                   std::to_string(size));
  report->Value("size", size);
  report->Value("firings", out.firings);
  report->Value("actions", static_cast<double>(out.actions));
  report->Value("run_ms", out.millis);
}

void PrintFigure5Tables(JsonReport* report) {
  std::printf("=== Figure 5 / §7: set-oriented vs tuple-oriented ===\n");
  // Discarded warmup (see bench_removal): keep one-time process costs off
  // the first measured row.
  RunDedup(kSetRemoveDups, 24);
  std::printf("-- RemoveDups (duplicate elimination, §7.2) --\n");
  std::printf("%8s %10s | %12s %12s %10s | %12s %12s %10s\n", "players",
              "dups", "set-firings", "set-actions", "set-ms",
              "tuple-firing", "tuple-action", "tuple-ms");
  for (int players : {24, 96, 384}) {
    Outcome set = RunDedup(kSetRemoveDups, players);
    Outcome tuple = RunDedup(kTupleRemoveDups, players);
    std::printf("%8d %10d | %12d %12llu %10.2f | %12d %12llu %10.2f\n",
                players, players - 4, set.firings,
                static_cast<unsigned long long>(set.actions), set.millis,
                tuple.firings, static_cast<unsigned long long>(tuple.actions),
                tuple.millis);
    Report(report, "RemoveDups", "set", players, set);
    Report(report, "RemoveDups", "tuple", players, tuple);
  }
  std::printf("(shape: 4 set-oriented firings (one per group) vs "
              "#removed-WMEs tuple firings)\n\n");

  std::printf("-- SwitchTeams (aggregate update, §7.1 marking scheme) --\n");
  std::printf("%8s | %12s %12s %10s | %12s %12s %10s\n", "per-team",
              "set-firings", "set-actions", "set-ms", "tuple-firing",
              "tuple-action", "tuple-ms");
  for (int per_team : {8, 32, 128}) {
    Outcome set = RunSwitch(kSetSwitch, per_team);
    Outcome tuple = RunSwitch(kTupleSwitch, per_team);
    std::printf("%8d | %12d %12llu %10.2f | %12d %12llu %10.2f\n", per_team,
                set.firings, static_cast<unsigned long long>(set.actions),
                set.millis, tuple.firings,
                static_cast<unsigned long long>(tuple.actions), tuple.millis);
    Report(report, "SwitchTeams", "set", per_team, set);
    Report(report, "SwitchTeams", "tuple", per_team, tuple);
  }
  std::printf("(shape: 1 set-oriented firing vs ~3n marking-scheme "
              "firings; note the two-set-CE rule materializes an n^2-row "
              "SOI — see EXPERIMENTS.md)\n\n");
}

void BM_SwitchTeams(benchmark::State& state) {
  bool set_oriented = state.range(0) != 0;
  int per_team = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Outcome out =
        RunSwitch(set_oriented ? kSetSwitch : kTupleSwitch, per_team);
    state.counters["firings"] = out.firings;
    state.counters["actions"] = static_cast<double>(out.actions);
    benchmark::DoNotOptimize(out.firings);
  }
  state.SetLabel(set_oriented ? "set-oriented" : "tuple-oriented marking");
}
BENCHMARK(BM_SwitchTeams)
    ->Args({1, 32})
    ->Args({0, 32})
    ->Args({1, 128})
    ->Args({0, 128});

void BM_RemoveDups(benchmark::State& state) {
  bool set_oriented = state.range(0) != 0;
  int players = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Outcome out =
        RunDedup(set_oriented ? kSetRemoveDups : kTupleRemoveDups, players);
    state.counters["firings"] = out.firings;
    benchmark::DoNotOptimize(out.firings);
  }
  state.SetLabel(set_oriented ? "set-oriented" : "tuple-oriented pairwise");
}
BENCHMARK(BM_RemoveDups)->Args({1, 96})->Args({0, 96})->Args({1, 384})
    ->Args({0, 384});

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  bool json = sorel::bench::StripJsonFlag(&argc, argv);
  sorel::bench::JsonReport report("fig5_expressiveness");
  sorel::bench::PrintFigure5Tables(json ? &report : nullptr);
  if (json && !report.Write()) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
