// Experiment F3 (Figure 3): the S-node algorithm. Demonstrates the
// +/-/time decision flow, then benchmarks the two design choices the
// γ-memory state buys (DESIGN.md ablations):
//   - incremental aggregate maintenance vs full recompute per token,
//   - hashed SOI lookup vs Figure 3's literal candidate scan.

// `--json` switches to a fast smoke mode: each ablation pair runs once at
// a small size with manual wall-clock timing (no google-benchmark rerun
// machinery) and the numbers land in BENCH_fig3_snode.json via JsonReport
// — the output CI validates against the JSON schema checker.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

#include "bench/bench_util.h"

namespace sorel {
namespace bench {
namespace {

constexpr const char* kThreshold =
    "(p pair { [player ^team <t> ^name <n>] <P> } :scalar (<t>)"
    " :test ((count <P>) >= 2) --> (halt))";

void PrintFigure3() {
  std::printf("=== Figure 3: S-node decision flow ===\n");
  Engine engine;
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) + kThreshold);
  SNode* snode = engine.snode("pair");
  auto report = [&](const char* event) {
    const SNode::Stats& s = snode->stats();
    std::printf("  %-28s -> tokens=%llu  <S,+>=%llu  <S,->=%llu  "
                "<S,time>=%llu  SOIs=%zu\n",
                event, static_cast<unsigned long long>(s.tokens),
                static_cast<unsigned long long>(s.sends_plus),
                static_cast<unsigned long long>(s.sends_minus),
                static_cast<unsigned long long>(s.sends_time),
                snode->num_sois());
  };
  TimeTag first = MustMake(engine, "player", {{"team", engine.Sym("A")},
                                              {"name", engine.Sym("p1")}});
  report("add p1 (new, test fails)");
  MustMake(engine, "player",
           {{"team", engine.Sym("A")}, {"name", engine.Sym("p2")}});
  report("add p2 (new-time, activate)");
  MustMake(engine, "player",
           {{"team", engine.Sym("A")}, {"name", engine.Sym("p3")}});
  report("add p3 (new-time on active)");
  Check(engine.RemoveWme(first), "remove");
  report("remove p1 (same-time)");
  std::printf("\n");
}

// Incremental (value, counter) aggregates vs recompute-from-members, as a
// function of SOI size. Incremental is O(log d) per token; recompute is
// O(n) — the γ-memory "additional state" of §5.
void BM_AggregateMaintenance(benchmark::State& state) {
  bool recompute = state.range(0) != 0;
  int soi_size = static_cast<int>(state.range(1));
  EngineOptions options;
  options.snode.recompute_aggregates = recompute;
  Engine engine(options);
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p sums { [player ^score <s>] <P> }"
                       " :test ((sum <s>) > 1000000) --> (halt))");
  for (int i = 0; i < soi_size; ++i) {
    MustMake(engine, "player", {{"score", Value::Int(i % 97)}});
  }
  // Steady state: one token in, one token out per iteration.
  for (auto _ : state) {
    TimeTag tag = MustMake(engine, "player", {{"score", Value::Int(7)}});
    Check(engine.RemoveWme(tag), "remove");
  }
  state.SetLabel(recompute ? "ablation: recompute per token"
                           : "incremental (paper)");
  state.SetItemsProcessed(state.iterations() * 2);  // two tokens
}
BENCHMARK(BM_AggregateMaintenance)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 1024})
    ->Args({1, 1024})
    ->Args({0, 8192})
    ->Args({1, 8192});

// Hashed γ-memory lookup vs Figure 3's literal "for i in candidate SOIs"
// scan, as a function of the number of SOIs.
void BM_GammaLookup(benchmark::State& state) {
  bool linear = state.range(0) != 0;
  int sois = static_cast<int>(state.range(1));
  EngineOptions options;
  options.snode.linear_scan_gamma = linear;
  Engine engine(options);
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p bygroup [player ^team <t> ^name <n>]"
                       " :scalar (<t>) --> (halt))");
  FillPlayers(engine, sois * 4, sois, 16);
  for (auto _ : state) {
    TimeTag tag = MustMake(engine, "player",
                           {{"team", engine.Sym("team0")},
                            {"name", engine.Sym("probe")}});
    Check(engine.RemoveWme(tag), "remove");
  }
  state.SetLabel(linear ? "ablation: Figure-3 linear scan" : "hashed γ-memory");
  state.counters["sois"] = static_cast<double>(sois);
}
BENCHMARK(BM_GammaLookup)
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({0, 512})
    ->Args({1, 512});

// Hash-indexed join memories vs the seed's linear scans, as a function of
// alpha-memory size. Distinct names: every indexed probe hits a one- or
// two-element bucket while the linear join walks all `wmes` items.
void BM_IndexedJoin(benchmark::State& state) {
  bool linear = state.range(0) != 0;
  int wmes = static_cast<int>(state.range(1));
  EngineOptions options;
  options.rete.use_indexed_joins = !linear;
  Engine engine(options);
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p pair (player ^name <n>) (player ^name <n> ^team <t>)"
                       " --> (halt))");
  FillPlayers(engine, wmes, /*teams=*/4, /*distinct_names=*/wmes);
  // Steady state: one matching WME in, one out per iteration.
  for (auto _ : state) {
    TimeTag tag = MustMake(engine, "player",
                           {{"name", engine.Sym("name0")},
                            {"team", engine.Sym("team0")}});
    Check(engine.RemoveWme(tag), "remove");
  }
  state.SetLabel(linear ? "ablation: linear join scan"
                        : "hash-indexed joins");
  state.counters["wmes"] = static_cast<double>(wmes);
  state.counters["probes"] = static_cast<double>(
      engine.rete_matcher()->stats().index_probes);
}
BENCHMARK(BM_IndexedJoin)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 1024})
    ->Args({1, 1024})
    ->Args({0, 8192})
    ->Args({1, 8192});

// Ordered conflict-set index vs the seed's full-scan Select, with many
// standing instantiations: each cycle adds one instantiation and fires the
// best, so linear selection is O(standing) per firing.
void BM_ConflictSetSelect(benchmark::State& state) {
  bool linear = state.range(0) != 0;
  int standing = static_cast<int>(state.range(1));
  EngineOptions options;
  options.indexed_conflict_set = !linear;
  Engine engine(options);
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p note (player ^name <n>) --> (write <n>))");
  FillPlayers(engine, standing, /*teams=*/4, /*distinct_names=*/standing);
  for (auto _ : state) {
    // The fresh WME's instantiation is the most recent: Select picks it,
    // refraction drops it, and the `standing` older entries stay put.
    TimeTag tag = MustMake(engine, "player",
                           {{"name", engine.Sym("probe")}});
    MustRun(engine, 1);
    Check(engine.RemoveWme(tag), "remove");
  }
  state.SetLabel(linear ? "ablation: full-scan Select"
                        : "ordered conflict-set index");
  state.counters["standing"] = static_cast<double>(standing);
}
BENCHMARK(BM_ConflictSetSelect)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 1024})
    ->Args({1, 1024})
    ->Args({0, 8192})
    ->Args({1, 8192});

// Times `iters` repetitions of `op` and records one labeled row with the
// engine's counter snapshot.
void TimedRow(JsonReport* report, const std::string& label, Engine& engine,
              int iters, const std::function<void()>& op) {
  engine.ResetMatchStats();
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) op();
  double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  report->BeginRow(label);
  report->Value("iters", iters);
  report->Value("ns_per_op", ns / iters);
  report->MatchStats(engine.match_stats());
}

int RunJsonSmoke() {
  constexpr int kIters = 200;
  JsonReport report("fig3_snode");
  report.Config("iters", kIters);
  report.Config("smoke", 1);

  for (bool recompute : {false, true}) {
    EngineOptions options;
    options.snode.recompute_aggregates = recompute;
    Engine engine(options);
    engine.set_output(DevNull());
    MustLoad(engine, std::string(kPlayerSchema) +
                         "(p sums { [player ^score <s>] <P> }"
                         " :test ((sum <s>) > 1000000) --> (halt))");
    for (int i = 0; i < 256; ++i) {
      MustMake(engine, "player", {{"score", Value::Int(i % 97)}});
    }
    TimedRow(&report,
             recompute ? "aggregate/recompute" : "aggregate/incremental",
             engine, kIters, [&engine] {
               TimeTag tag =
                   MustMake(engine, "player", {{"score", Value::Int(7)}});
               Check(engine.RemoveWme(tag), "remove");
             });
  }

  for (bool linear : {false, true}) {
    EngineOptions options;
    options.snode.linear_scan_gamma = linear;
    Engine engine(options);
    engine.set_output(DevNull());
    MustLoad(engine, std::string(kPlayerSchema) +
                         "(p bygroup [player ^team <t> ^name <n>]"
                         " :scalar (<t>) --> (halt))");
    FillPlayers(engine, 64 * 4, 64, 16);
    TimedRow(&report, linear ? "gamma/linear-scan" : "gamma/hashed", engine,
             kIters, [&engine] {
               TimeTag tag = MustMake(engine, "player",
                                      {{"team", engine.Sym("team0")},
                                       {"name", engine.Sym("probe")}});
               Check(engine.RemoveWme(tag), "remove");
             });
  }

  for (bool linear : {false, true}) {
    EngineOptions options;
    options.rete.use_indexed_joins = !linear;
    Engine engine(options);
    engine.set_output(DevNull());
    MustLoad(engine,
             std::string(kPlayerSchema) +
                 "(p pair (player ^name <n>) (player ^name <n> ^team <t>)"
                 " --> (halt))");
    FillPlayers(engine, 256, /*teams=*/4, /*distinct_names=*/256);
    TimedRow(&report, linear ? "join/linear" : "join/indexed", engine,
             kIters, [&engine] {
               TimeTag tag = MustMake(engine, "player",
                                      {{"name", engine.Sym("name0")},
                                       {"team", engine.Sym("team0")}});
               Check(engine.RemoveWme(tag), "remove");
             });
  }

  for (bool linear : {false, true}) {
    EngineOptions options;
    options.indexed_conflict_set = !linear;
    Engine engine(options);
    engine.set_output(DevNull());
    MustLoad(engine, std::string(kPlayerSchema) +
                         "(p note (player ^name <n>) --> (write <n>))");
    FillPlayers(engine, 256, /*teams=*/4, /*distinct_names=*/256);
    TimedRow(&report, linear ? "select/full-scan" : "select/indexed", engine,
             kIters, [&engine] {
               TimeTag tag =
                   MustMake(engine, "player", {{"name", engine.Sym("probe")}});
               MustRun(engine, 1);
               Check(engine.RemoveWme(tag), "remove");
             });
  }

  return report.Write() ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  if (sorel::bench::StripJsonFlag(&argc, argv)) {
    return sorel::bench::RunJsonSmoke();
  }
  sorel::bench::PrintFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
