// Experiment B1: the cited tuple-oriented baseline matchers. Runs the same
// programs on extended Rete, TREAT (Miranker 1986), and the DIPS relational
// matcher, comparing per-change and run-to-quiescence cost.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"

namespace sorel {
namespace bench {
namespace {

constexpr const char* kProgram =
    "(p cross (player ^team A ^name <n>) (player ^team B ^name <n>)"
    " --> (halt))"
    "(p lonely (player ^team A ^name <n>)"
    " - (player ^team B ^name <n>) --> (halt))";

Engine MakeEngine(MatcherKind kind) {
  EngineOptions options;
  options.matcher = kind;
  return Engine(options);
}

const char* KindName(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kRete:
      return "Rete";
    case MatcherKind::kTreat:
      return "TREAT";
    case MatcherKind::kDips:
      return "DIPS";
    case MatcherKind::kPlan:
      return "plan";
  }
  return "?";
}

void BM_MatcherChurn(benchmark::State& state) {
  MatcherKind kind = static_cast<MatcherKind>(state.range(0));
  int warm = static_cast<int>(state.range(1));
  Engine engine = MakeEngine(kind);
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) + kProgram);
  FillPlayers(engine, warm, 2, 16);
  int i = 0;
  for (auto _ : state) {
    TimeTag tag = MustMake(
        engine, "player",
        {{"team", engine.Sym(i % 2 == 0 ? "A" : "B")},
         {"name", engine.Sym("name" + std::to_string(i % 16))}});
    Check(engine.RemoveWme(tag), "remove");
    ++i;
  }
  state.SetLabel(KindName(kind));
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MatcherChurn)
    ->Args({0, 128})
    ->Args({1, 128})
    ->Args({2, 128})
    ->Args({0, 512})
    ->Args({1, 512})
    ->Args({2, 512});

void BM_MatcherBuild(benchmark::State& state) {
  MatcherKind kind = static_cast<MatcherKind>(state.range(0));
  int n = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Engine engine = MakeEngine(kind);
    engine.set_output(DevNull());
    MustLoad(engine, std::string(kPlayerSchema) + kProgram);
    FillPlayers(engine, n, 2, 16);
    benchmark::DoNotOptimize(engine.conflict_set().size());
  }
  state.SetLabel(KindName(kind));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MatcherBuild)->Args({0, 256})->Args({1, 256})->Args({2, 256});

void PrintHeader() {
  std::printf("=== Baseline B1: extended Rete vs TREAT vs DIPS ===\n");
  std::printf("Same tuple-oriented program on all three matchers. Expected\n");
  std::printf("shape: Rete's beta memories pay off under churn; TREAT saves\n");
  std::printf("memory but recomputes joins; DIPS re-runs the match query "
              "per change.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  sorel::bench::PrintHeader();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
