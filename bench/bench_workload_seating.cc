// Experiment B2: a macro workload in the style of the classic OPS5
// benchmark suite (Manners): run the dinner-seating program end-to-end on
// all three matchers, and compare the set-oriented completion test against
// the tuple-oriented one.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "examples/dinner_party_program.h"

namespace sorel {
namespace bench {
namespace {

int RunSeating(MatcherKind kind, int guests, bool set_oriented_done,
               bool indexed = true, int match_threads = 0,
               int intra_split = 0, bool parallel_rhs = false) {
  EngineOptions options;
  options.matcher = kind;
  options.rete.use_indexed_joins = indexed;
  options.indexed_conflict_set = indexed;
  options.match_threads = match_threads;
  options.intra_rule_split_min_tokens = intra_split;
  options.parallel_rhs = parallel_rhs;
  Engine engine(options);
  engine.set_output(DevNull());
  std::string rules = sorel_examples::kDinnerRules;
  if (!set_oriented_done) {
    // Swap the set-oriented completion rule for the tuple check.
    size_t cut = rules.find("(p all-seated");
    rules = rules.substr(0, cut);
    rules += sorel_examples::kDinnerDoneTuple;
  }
  MustLoad(engine, rules);
  MustLoad(engine, sorel_examples::DinnerPartyWm(guests));
  int fired = MustRun(engine, 10 * guests + 16);
  if (fired != guests + 1) {
    std::fprintf(stderr, "seating did not complete: %d firings for %d\n",
                 fired, guests);
    std::abort();
  }
  return fired;
}

void BM_SeatingWorkload(benchmark::State& state) {
  MatcherKind kind = static_cast<MatcherKind>(state.range(0));
  int guests = static_cast<int>(state.range(1));
  // TREAT and the plan matcher reject set-oriented rules.
  bool set_done =
      kind != MatcherKind::kTreat && kind != MatcherKind::kPlan;
  for (auto _ : state) {
    int fired = RunSeating(kind, guests, set_done);
    state.counters["firings"] = fired;
    benchmark::DoNotOptimize(fired);
  }
  const char* name =
      kind == MatcherKind::kRete
          ? "Rete"
          : (kind == MatcherKind::kTreat
                 ? "TREAT"
                 : (kind == MatcherKind::kPlan ? "plan" : "DIPS"));
  state.SetLabel(std::string(name) +
                 (set_done ? " (set-oriented done)" : " (tuple done)"));
  state.SetItemsProcessed(state.iterations() * guests);
}
BENCHMARK(BM_SeatingWorkload)
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({2, 16})
    ->Args({3, 16})
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({3, 64})
    ->Args({0, 128});

void BM_SeatingDoneVariant(benchmark::State& state) {
  bool set_done = state.range(0) != 0;
  int guests = static_cast<int>(state.range(1));
  for (auto _ : state) {
    int fired = RunSeating(MatcherKind::kRete, guests, set_done);
    benchmark::DoNotOptimize(fired);
  }
  state.SetLabel(set_done ? ":test (count) completion"
                          : "lastseat-counter completion");
}
BENCHMARK(BM_SeatingDoneVariant)->Args({1, 64})->Args({0, 64});

/// Ablation: hash-indexed join memories + ordered conflict set vs the
/// seed's linear scans, on the Rete matcher (the seat-next joins key on
/// `<k>`, `<prev>`, `<h>`, so most of the match work is index-eligible).
void BM_SeatingIndexedAblation(benchmark::State& state) {
  bool indexed = state.range(0) != 0;
  int guests = static_cast<int>(state.range(1));
  for (auto _ : state) {
    int fired = RunSeating(MatcherKind::kRete, guests,
                           /*set_oriented_done=*/true, indexed);
    benchmark::DoNotOptimize(fired);
  }
  state.SetLabel(indexed ? "indexed joins + ordered conflict set"
                         : "linear scans (seed baseline)");
  state.SetItemsProcessed(state.iterations() * guests);
}
BENCHMARK(BM_SeatingIndexedAblation)
    ->Args({1, 64})
    ->Args({0, 64})
    ->Args({1, 128})
    ->Args({0, 128});

/// Threads sweep on the macro workload. Seating fires one rule at a time
/// with tiny per-firing batches, so this measures the parallel layer's
/// overhead floor on latency-bound work rather than its speedup.
void BM_SeatingThreads(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  int guests = static_cast<int>(state.range(1));
  for (auto _ : state) {
    int fired = RunSeating(MatcherKind::kRete, guests,
                           /*set_oriented_done=*/true, /*indexed=*/true,
                           threads);
    benchmark::DoNotOptimize(fired);
  }
  state.SetLabel("match_threads=" + std::to_string(threads));
  state.SetItemsProcessed(state.iterations() * guests);
}
BENCHMARK(BM_SeatingThreads)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({4, 64})
    ->Args({8, 64});

/// Intra-rule split sweep on the macro workload. Seating alphas hold at
/// most `guests` rows, so low thresholds engage slicing on every
/// seat-next replay while high ones leave it off — this benchmarks the
/// fork/merge toll when slices are tiny, the worst case for the feature.
void BM_SeatingIntraRule(benchmark::State& state) {
  int split = static_cast<int>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  int guests = static_cast<int>(state.range(2));
  for (auto _ : state) {
    int fired = RunSeating(MatcherKind::kRete, guests,
                           /*set_oriented_done=*/true, /*indexed=*/true,
                           threads, split);
    benchmark::DoNotOptimize(fired);
  }
  state.SetLabel("split=" + std::to_string(split) +
                 " threads=" + std::to_string(threads));
  state.SetItemsProcessed(state.iterations() * guests);
}
BENCHMARK(BM_SeatingIntraRule)
    ->Args({0, 4, 64})
    ->Args({4, 4, 64})
    ->Args({16, 4, 64})
    ->Args({4, 2, 64})
    ->Args({4, 8, 64});

/// Parallel RHS on/off: the set-oriented completion rule is the only
/// multi-member firing, so this measures pool fork overhead against one
/// wide set-modify-style action per run.
void BM_SeatingParallelRhs(benchmark::State& state) {
  bool parallel = state.range(0) != 0;
  int guests = static_cast<int>(state.range(1));
  for (auto _ : state) {
    int fired = RunSeating(MatcherKind::kRete, guests,
                           /*set_oriented_done=*/true, /*indexed=*/true,
                           /*match_threads=*/0, /*intra_split=*/0, parallel);
    benchmark::DoNotOptimize(fired);
  }
  state.SetLabel(parallel ? "parallel_rhs" : "sequential rhs");
}
BENCHMARK(BM_SeatingParallelRhs)->Args({0, 64})->Args({1, 64});

void PrintHeader() {
  std::printf("=== B2: Manners-style seating macro workload ===\n");
  Engine engine;
  engine.set_output(DevNull());
  MustLoad(engine, sorel_examples::kDinnerRules);
  MustLoad(engine, sorel_examples::DinnerPartyWm(16));
  int fired = MustRun(engine, 200);
  std::printf("16 guests seated in %d firings (1 start + 15 extend + 1 "
              "set-oriented report)\n\n", fired);
}

/// Wall-clock sweep of the intra-rule threshold on the macro workload,
/// mirrored into BENCH_seating_intra.json under --json. The workload is
/// latency-bound (one firing at a time over small alphas), so the
/// interesting number is how close the split path stays to the threads=0
/// baseline, not any speedup.
void PrintIntraSweep(JsonReport* report) {
  constexpr int kGuests = 64;
  std::printf("--- intra-rule sweep, %d guests (Rete) ---\n", kGuests);
  if (report != nullptr) report->Config("guests", kGuests);
  std::printf("%6s %8s | %9s %9s\n", "split", "threads", "total ms",
              "vs base");
  double base_ms = 0;
  for (int split : {0, 4, 16}) {
    for (int threads : {0, 2, 4}) {
      if (split == 0 && threads != 0) continue;
      auto t0 = std::chrono::steady_clock::now();
      RunSeating(MatcherKind::kRete, kGuests, /*set_oriented_done=*/true,
                 /*indexed=*/true, threads, split);
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      if (split == 0) base_ms = ms;
      std::printf("%6d %8d | %9.2f %8.2fx\n", split, threads, ms,
                  base_ms / ms);
      if (report != nullptr) {
        report->BeginRow("split=" + std::to_string(split) +
                         "/threads=" + std::to_string(threads));
        report->Value("split_min_tokens", split);
        report->Value("threads", threads);
        report->Value("total_ms", ms);
        report->Value("speedup", base_ms / ms);
      }
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  bool json = sorel::bench::StripJsonFlag(&argc, argv);
  sorel::bench::PrintHeader();
  sorel::bench::JsonReport report("seating_intra");
  sorel::bench::PrintIntraSweep(json ? &report : nullptr);
  if (json && !report.Write()) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
