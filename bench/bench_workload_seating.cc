// Experiment B2: a macro workload in the style of the classic OPS5
// benchmark suite (Manners): run the dinner-seating program end-to-end on
// all three matchers, and compare the set-oriented completion test against
// the tuple-oriented one.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "examples/dinner_party_program.h"

namespace sorel {
namespace bench {
namespace {

int RunSeating(MatcherKind kind, int guests, bool set_oriented_done,
               bool indexed = true, int match_threads = 0) {
  EngineOptions options;
  options.matcher = kind;
  options.rete.use_indexed_joins = indexed;
  options.indexed_conflict_set = indexed;
  options.match_threads = match_threads;
  Engine engine(options);
  engine.set_output(DevNull());
  std::string rules = sorel_examples::kDinnerRules;
  if (!set_oriented_done) {
    // Swap the set-oriented completion rule for the tuple check.
    size_t cut = rules.find("(p all-seated");
    rules = rules.substr(0, cut);
    rules += sorel_examples::kDinnerDoneTuple;
  }
  MustLoad(engine, rules);
  MustLoad(engine, sorel_examples::DinnerPartyWm(guests));
  int fired = MustRun(engine, 10 * guests + 16);
  if (fired != guests + 1) {
    std::fprintf(stderr, "seating did not complete: %d firings for %d\n",
                 fired, guests);
    std::abort();
  }
  return fired;
}

void BM_SeatingWorkload(benchmark::State& state) {
  MatcherKind kind = static_cast<MatcherKind>(state.range(0));
  int guests = static_cast<int>(state.range(1));
  bool set_done = kind != MatcherKind::kTreat;  // TREAT rejects set rules
  for (auto _ : state) {
    int fired = RunSeating(kind, guests, set_done);
    state.counters["firings"] = fired;
    benchmark::DoNotOptimize(fired);
  }
  const char* name = kind == MatcherKind::kRete
                         ? "Rete"
                         : (kind == MatcherKind::kTreat ? "TREAT" : "DIPS");
  state.SetLabel(std::string(name) +
                 (set_done ? " (set-oriented done)" : " (tuple done)"));
  state.SetItemsProcessed(state.iterations() * guests);
}
BENCHMARK(BM_SeatingWorkload)
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({2, 16})
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 128});

void BM_SeatingDoneVariant(benchmark::State& state) {
  bool set_done = state.range(0) != 0;
  int guests = static_cast<int>(state.range(1));
  for (auto _ : state) {
    int fired = RunSeating(MatcherKind::kRete, guests, set_done);
    benchmark::DoNotOptimize(fired);
  }
  state.SetLabel(set_done ? ":test (count) completion"
                          : "lastseat-counter completion");
}
BENCHMARK(BM_SeatingDoneVariant)->Args({1, 64})->Args({0, 64});

/// Ablation: hash-indexed join memories + ordered conflict set vs the
/// seed's linear scans, on the Rete matcher (the seat-next joins key on
/// `<k>`, `<prev>`, `<h>`, so most of the match work is index-eligible).
void BM_SeatingIndexedAblation(benchmark::State& state) {
  bool indexed = state.range(0) != 0;
  int guests = static_cast<int>(state.range(1));
  for (auto _ : state) {
    int fired = RunSeating(MatcherKind::kRete, guests,
                           /*set_oriented_done=*/true, indexed);
    benchmark::DoNotOptimize(fired);
  }
  state.SetLabel(indexed ? "indexed joins + ordered conflict set"
                         : "linear scans (seed baseline)");
  state.SetItemsProcessed(state.iterations() * guests);
}
BENCHMARK(BM_SeatingIndexedAblation)
    ->Args({1, 64})
    ->Args({0, 64})
    ->Args({1, 128})
    ->Args({0, 128});

/// Threads sweep on the macro workload. Seating fires one rule at a time
/// with tiny per-firing batches, so this measures the parallel layer's
/// overhead floor on latency-bound work rather than its speedup.
void BM_SeatingThreads(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  int guests = static_cast<int>(state.range(1));
  for (auto _ : state) {
    int fired = RunSeating(MatcherKind::kRete, guests,
                           /*set_oriented_done=*/true, /*indexed=*/true,
                           threads);
    benchmark::DoNotOptimize(fired);
  }
  state.SetLabel("match_threads=" + std::to_string(threads));
  state.SetItemsProcessed(state.iterations() * guests);
}
BENCHMARK(BM_SeatingThreads)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({4, 64})
    ->Args({8, 64});

void PrintHeader() {
  std::printf("=== B2: Manners-style seating macro workload ===\n");
  Engine engine;
  engine.set_output(DevNull());
  MustLoad(engine, sorel_examples::kDinnerRules);
  MustLoad(engine, sorel_examples::DinnerPartyWm(16));
  int fired = MustRun(engine, 200);
  std::printf("16 guests seated in %d firings (1 start + 15 extend + 1 "
              "set-oriented report)\n\n", fired);
}

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  sorel::bench::PrintHeader();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
