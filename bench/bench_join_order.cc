// Tentpole experiment: cost-guided join ordering vs. the textual CE order.
//
// The workload is adversarial for textual-order matching: a bridge rule
//
//   (p bridge (lhs ^key <kl>) (rhs ^key <kr>)
//             (link ^lkey <kl> ^rkey <kr>) --> ...)
//
// whose first two CEs share no variable. In textual order every matcher
// pays the lhs x rhs cross product before the link CE filters it down to
// |link| matches — Rete materializes it as beta tokens, TREAT and the
// plan matcher walk it on every seeded search. The optimizer sees the
// same rule as an equality-join graph and never places the two
// unconnected CEs adjacently: it routes through link ([lhs, link, rhs]
// or [link, lhs, rhs] depending on live cardinalities), which keeps
// every path linear. The plan matcher executes the optimized order as
// hash-join/scan pipelines with no beta memories at all; Rete and TREAT
// consume it as a load-time CE pre-reordering pass
// (EngineOptions::join_order = optimized).
//
// All links plus a small sample of each entity class are committed
// before the rules load, so the pre-reordering pass estimates
// cardinalities from live alpha memories (the same signal the plan
// matcher keeps re-reading as WM drifts). The measured phase adds the
// remaining entities, then retracts half the lhs WMEs. Run with
// `--json` to also write BENCH_join_order.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace sorel {
namespace bench {
namespace {

constexpr int kEntities = 512;   // lhs and rhs WMEs each
constexpr int kLinks = 128;      // link WMEs (the filtering relation)
constexpr int kSamplePct = 12;   // % of entities committed before rule load

constexpr const char* kSchema =
    "(literalize lhs key pad)"
    "(literalize rhs key pad)"
    "(literalize link lkey rkey)";

constexpr const char* kRule =
    "(p bridge (lhs ^key <kl>) (rhs ^key <kr>)"
    " (link ^lkey <kl> ^rkey <kr>) --> (write x))";

struct Measured {
  double add_ms = 0;
  double remove_ms = 0;
  size_t matches = 0;
  Engine::MatchStats stats;
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

TimeTag AddEntity(Engine& engine, const char* cls, int key) {
  return MustMake(engine, cls,
                  {{"key", Value::Int(key)}, {"pad", Value::Int(0)}});
}

Measured RunOnce(MatcherKind kind, JoinOrder order) {
  EngineOptions options;
  options.matcher = kind;
  options.join_order = order;
  Engine engine(options);
  engine.set_output(DevNull());

  // Pre-load phase: every link plus a sample of each entity class, so the
  // load-time pre-reordering pass (Rete/TREAT) and the plan matcher's
  // initial plans both see representative cardinalities.
  const int sample_entities = kEntities * kSamplePct / 100;
  MustLoad(engine, kSchema);
  engine.wm().Begin();
  for (int i = 0; i < kLinks; ++i) {
    // Each link pairs one lhs key with one rhs key (7 and 13 are coprime
    // to kEntities, so the keys are distinct), hence the joined result is
    // exactly kLinks rows no matter the order.
    MustMake(engine, "link",
             {{"lkey", Value::Int((i * 7) % kEntities)},
              {"rkey", Value::Int((i * 13) % kEntities)}});
  }
  for (int i = 0; i < sample_entities; ++i) {
    AddEntity(engine, "lhs", i);
    AddEntity(engine, "rhs", i);
  }
  Check(engine.wm().Commit(), "pre-load commit");
  MustLoad(engine, kRule);
  engine.ResetMatchStats();

  Measured m;
  std::vector<TimeTag> lhs_tags;
  auto t0 = std::chrono::steady_clock::now();
  engine.wm().Begin();
  for (int i = sample_entities; i < kEntities; ++i) {
    lhs_tags.push_back(AddEntity(engine, "lhs", i));
    AddEntity(engine, "rhs", i);
  }
  Check(engine.wm().Commit(), "add commit");
  m.add_ms = MsSince(t0);
  m.matches = engine.conflict_set().size();

  auto t1 = std::chrono::steady_clock::now();
  engine.wm().Begin();
  for (size_t i = 0; i < lhs_tags.size(); i += 2) {
    Check(engine.RemoveWme(lhs_tags[i]), "RemoveWme");
  }
  Check(engine.wm().Commit(), "remove commit");
  m.remove_ms = MsSince(t1);

  m.stats = engine.match_stats();
  return m;
}

const char* KindName(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kRete:
      return "Rete";
    case MatcherKind::kTreat:
      return "TREAT";
    case MatcherKind::kDips:
      return "DIPS";
    case MatcherKind::kPlan:
      return "plan";
  }
  return "?";
}

void PrintTable(JsonReport* report) {
  std::printf("=== tentpole: cost-guided join ordering ===\n");
  std::printf(
      "bridge rule whose first two CEs are unconnected: textual order\n"
      "pays a %d x %d cross product (Rete materializes it as beta\n"
      "tokens), the optimized order routes through the %d links and\n"
      "stays linear; %d%% of each entity class is committed before rule\n"
      "load so reordering sees live cardinalities\n\n",
      kEntities, kEntities, kLinks, kSamplePct);
  if (report != nullptr) {
    report->Config("entities", kEntities);
    report->Config("links", kLinks);
    report->Config("sample_pct", kSamplePct);
  }
  std::printf("%7s %10s | %10s %8s | %10s | %14s %9s\n", "matcher", "order",
              "add ms", "speedup", "remove ms", "join attempts", "reorders");
  // Discarded warmup (see bench_removal): keep one-time process costs off
  // the first measured row.
  RunOnce(MatcherKind::kPlan, JoinOrder::kOptimized);
  double rete_textual_add = 0, plan_optimized_add = 0;
  size_t expected_matches = 0;
  for (MatcherKind kind :
       {MatcherKind::kRete, MatcherKind::kTreat, MatcherKind::kPlan}) {
    for (JoinOrder order : {JoinOrder::kTextual, JoinOrder::kOptimized}) {
      Measured m = RunOnce(kind, order);
      const char* order_name =
          order == JoinOrder::kTextual ? "textual" : "optimized";
      if (kind == MatcherKind::kRete && order == JoinOrder::kTextual) {
        rete_textual_add = m.add_ms;
        expected_matches = m.matches;
      }
      if (kind == MatcherKind::kPlan && order == JoinOrder::kOptimized) {
        plan_optimized_add = m.add_ms;
      }
      if (m.matches != expected_matches) {
        std::fprintf(stderr,
                     "bench_join_order: %s/%s found %zu matches, textual "
                     "Rete found %zu — join ordering changed the result\n",
                     KindName(kind), order_name, m.matches, expected_matches);
        std::abort();
      }
      uint64_t attempts = kind == MatcherKind::kPlan
                              ? m.stats.plan.join_attempts
                              : m.stats.rete.join_attempts;
      std::printf("%7s %10s | %10.2f %7.2fx | %10.2f | %14llu %9llu\n",
                  KindName(kind), order_name, m.add_ms,
                  rete_textual_add / m.add_ms, m.remove_ms,
                  static_cast<unsigned long long>(attempts),
                  static_cast<unsigned long long>(m.stats.plan.reorders));
      if (report != nullptr) {
        report->BeginRow(std::string(KindName(kind)) + "/order=" +
                         order_name);
        report->Value("add_ms", m.add_ms);
        report->Value("remove_ms", m.remove_ms);
        report->Value("add_speedup_vs_textual_rete",
                      rete_textual_add / m.add_ms);
        report->Value("matches", static_cast<double>(m.matches));
        report->MatchStats(m.stats);
      }
    }
  }
  std::printf(
      "\n(textual Rete pays the cross product in beta tokens and pays it\n"
      " again tearing them down on removal; the optimized plan matcher\n"
      " pays one join pipeline per change, linear in the alpha sizes)\n\n");
  // Regression tripwire, set well below the paper-grade ratio measured on
  // an idle host (>=10x) so CI noise and sanitizer builds do not flake it.
  if (plan_optimized_add * 3 > rete_textual_add) {
    std::fprintf(stderr,
                 "bench_join_order: optimized plan matcher is no longer "
                 ">=3x faster than textual Rete on the cross-product "
                 "workload (%.2f ms vs %.2f ms)\n",
                 plan_optimized_add, rete_textual_add);
    std::abort();
  }
}

void BM_JoinOrderAdds(benchmark::State& state) {
  MatcherKind kind = static_cast<MatcherKind>(state.range(0));
  JoinOrder order = static_cast<JoinOrder>(state.range(1));
  for (auto _ : state) {
    Measured m = RunOnce(kind, order);
    benchmark::DoNotOptimize(m.add_ms);
  }
  state.SetLabel(std::string(KindName(kind)) + " order=" +
                 (order == JoinOrder::kTextual ? "textual" : "optimized"));
  state.SetItemsProcessed(state.iterations() * (2 * kEntities + kLinks));
}
BENCHMARK(BM_JoinOrderAdds)
    ->Args({0, 0})   // Rete textual
    ->Args({0, 1})   // Rete optimized
    ->Args({3, 0})   // plan textual
    ->Args({3, 1});  // plan optimized

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  bool json = sorel::bench::StripJsonFlag(&argc, argv);
  sorel::bench::JsonReport report("join_order");
  sorel::bench::PrintTable(json ? &report : nullptr);
  if (json && !report.Write()) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
