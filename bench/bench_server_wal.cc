// Server WAL benchmark: what durability costs. Three measurements —
// raw CRC-framed appends across the fsync batching sweep (the group-commit
// knob), journaled session mutations vs the bare engine (per-command WAL
// overhead), and recovery replay throughput (records/sec through the
// normal batch path at Session::Open). Diagnostic only: not part of the
// bench_compare CI gates.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "server/session.h"
#include "server/wal.h"

namespace sorel {
namespace server {
namespace {

constexpr const char* kRules = R"(
(literalize item id cat val)
(p promote { (item ^cat A ^val <v>) <i> } -->
  (modify <i> ^cat B ^val (compute <v> * 2)))
)";

std::string TempPath(const char* stem) {
  std::string path = "/tmp/sorel_bench_wal_XXXXXX";
  int fd = ::mkstemp(path.data());
  if (fd >= 0) ::close(fd);
  return path + "." + stem;
}

void BM_WalAppend(benchmark::State& state) {
  const int fsync_every = static_cast<int>(state.range(0));
  // A typical journaled batch payload is ~100 bytes of JSON.
  const std::string payload(96, 'x');
  std::string path = TempPath("append");
  uint64_t records = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::remove(path.c_str());
    WalWriter writer;
    if (!writer.Open(path, fsync_every).ok()) state.SkipWithError("open");
    state.ResumeTiming();
    for (int i = 0; i < 256; ++i) {
      benchmark::DoNotOptimize(writer.Append(payload));
    }
    if (!writer.Sync().ok()) state.SkipWithError("sync");
    records += 256;
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<int64_t>(records));
  state.SetLabel("fsync_every=" + std::to_string(fsync_every));
}
BENCHMARK(BM_WalAppend)->Arg(1)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

/// Makes through a journaled session (WAL on) vs the bare engine; the gap
/// is the per-command durability cost at the given fsync batching.
void BM_JournaledMake(benchmark::State& state) {
  const int fsync_every = static_cast<int>(state.range(0));
  const bool journaled = fsync_every > 0;
  std::string dir = "/tmp/sorel_bench_wal_session_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr) {
    state.SkipWithError("mkdtemp");
    return;
  }
  uint64_t made = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::remove((dir + "/s.wal").c_str());
    Engine bare;
    std::unique_ptr<Session> session;
    if (journaled) {
      SessionOptions options;
      options.fsync_every = fsync_every;
      auto opened = Session::Open("s", kRules, dir, options);
      if (!opened.ok()) {
        state.SkipWithError("open");
        break;
      }
      session = std::move(*opened);
    } else if (!bare.LoadString(kRules).ok()) {
      state.SkipWithError("load");
      break;
    }
    SymbolTable& symbols =
        journaled ? session->engine().symbols() : bare.symbols();
    Value cat = Value::Symbol(symbols.Intern("C"));
    state.ResumeTiming();
    for (int i = 0; i < 256; ++i) {
      std::vector<std::pair<std::string, Value>> attrs = {
          {"id", Value::Int(i)}, {"cat", cat}, {"val", Value::Int(i % 7)}};
      if (journaled) {
        benchmark::DoNotOptimize(session->Make("item", attrs));
      } else {
        benchmark::DoNotOptimize(bare.MakeWme("item", attrs));
      }
    }
    made += 256;
  }
  std::string cleanup = "rm -rf '" + dir + "'";
  (void)std::system(cleanup.c_str());
  state.SetItemsProcessed(static_cast<int64_t>(made));
  state.SetLabel(journaled ? "wal fsync_every=" + std::to_string(fsync_every)
                           : "bare engine");
}
// 0 = no WAL (bare engine baseline), then the batching sweep.
BENCHMARK(BM_JournaledMake)->Arg(0)->Arg(1)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// Recovery replay: Open a session whose WAL holds `range(0)` records.
void BM_Recovery(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  std::string dir = "/tmp/sorel_bench_wal_recover_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr) {
    state.SkipWithError("mkdtemp");
    return;
  }
  {
    SessionOptions options;
    options.fsync_every = 64;
    auto session = Session::Open("s", kRules, dir, options);
    if (!session.ok()) {
      state.SkipWithError("open");
      return;
    }
    SymbolTable& symbols = (*session)->engine().symbols();
    Value cat = Value::Symbol(symbols.Intern("C"));
    for (int i = 0; i < records; ++i) {
      (void)(*session)->Make("item", {{"id", Value::Int(i)},
                                      {"cat", cat},
                                      {"val", Value::Int(i % 7)}});
    }
  }
  uint64_t replayed = 0;
  for (auto _ : state) {
    SessionOptions options;
    auto session = Session::Open("s", kRules, dir, options);
    if (!session.ok()) {
      state.SkipWithError("recover");
      break;
    }
    replayed += (*session)->recovery().replayed_records;
  }
  std::string cleanup = "rm -rf '" + dir + "'";
  (void)std::system(cleanup.c_str());
  state.SetItemsProcessed(static_cast<int64_t>(replayed));
}
BENCHMARK(BM_Recovery)->Arg(256)->Arg(2048)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace server
}  // namespace sorel

BENCHMARK_MAIN();
