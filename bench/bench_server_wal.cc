// Server WAL benchmark: what durability costs. Three timed measurements —
// raw CRC-framed appends across the fsync batching sweep (the group-commit
// knob), journaled session mutations vs the bare engine (per-command WAL
// overhead), and recovery replay throughput (records/sec through the
// normal batch path at Session::Open) — plus, under `--json`, a
// deterministic table (journal/recovery/shared-base byte and record
// counters for a fixed workload) written to BENCH_server_wal.json for the
// bench_compare CI gate.

#include <benchmark/benchmark.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "engine/engine.h"
#include "server/engine_server.h"
#include "server/session.h"
#include "server/wal.h"

namespace sorel {
namespace server {
namespace {

constexpr const char* kRules = R"(
(literalize item id cat val)
(p promote { (item ^cat A ^val <v>) <i> } -->
  (modify <i> ^cat B ^val (compute <v> * 2)))
)";

std::string TempPath(const char* stem) {
  std::string path = "/tmp/sorel_bench_wal_XXXXXX";
  int fd = ::mkstemp(path.data());
  if (fd >= 0) ::close(fd);
  return path + "." + stem;
}

void BM_WalAppend(benchmark::State& state) {
  const int fsync_every = static_cast<int>(state.range(0));
  // A typical journaled batch payload is ~100 bytes of JSON.
  const std::string payload(96, 'x');
  std::string path = TempPath("append");
  uint64_t records = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::remove(path.c_str());
    WalWriter writer;
    if (!writer.Open(path, fsync_every).ok()) state.SkipWithError("open");
    state.ResumeTiming();
    for (int i = 0; i < 256; ++i) {
      benchmark::DoNotOptimize(writer.Append(payload));
    }
    if (!writer.Sync().ok()) state.SkipWithError("sync");
    records += 256;
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<int64_t>(records));
  state.SetLabel("fsync_every=" + std::to_string(fsync_every));
}
BENCHMARK(BM_WalAppend)->Arg(1)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

/// Makes through a journaled session (WAL on) vs the bare engine; the gap
/// is the per-command durability cost at the given fsync batching.
void BM_JournaledMake(benchmark::State& state) {
  const int fsync_every = static_cast<int>(state.range(0));
  const bool journaled = fsync_every > 0;
  std::string dir = "/tmp/sorel_bench_wal_session_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr) {
    state.SkipWithError("mkdtemp");
    return;
  }
  uint64_t made = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::remove((dir + "/s.wal").c_str());
    Engine bare;
    std::unique_ptr<Session> session;
    if (journaled) {
      SessionOptions options;
      options.fsync_every = fsync_every;
      auto opened = Session::Open("s", kRules, dir, options);
      if (!opened.ok()) {
        state.SkipWithError("open");
        break;
      }
      session = std::move(*opened);
    } else if (!bare.LoadString(kRules).ok()) {
      state.SkipWithError("load");
      break;
    }
    SymbolTable& symbols =
        journaled ? session->engine().symbols() : bare.symbols();
    Value cat = Value::Symbol(symbols.Intern("C"));
    state.ResumeTiming();
    for (int i = 0; i < 256; ++i) {
      std::vector<std::pair<std::string, Value>> attrs = {
          {"id", Value::Int(i)}, {"cat", cat}, {"val", Value::Int(i % 7)}};
      if (journaled) {
        benchmark::DoNotOptimize(session->Make("item", attrs));
      } else {
        benchmark::DoNotOptimize(bare.MakeWme("item", attrs));
      }
    }
    made += 256;
  }
  std::string cleanup = "rm -rf '" + dir + "'";
  (void)std::system(cleanup.c_str());
  state.SetItemsProcessed(static_cast<int64_t>(made));
  state.SetLabel(journaled ? "wal fsync_every=" + std::to_string(fsync_every)
                           : "bare engine");
}
// 0 = no WAL (bare engine baseline), then the batching sweep.
BENCHMARK(BM_JournaledMake)->Arg(0)->Arg(1)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// Recovery replay: Open a session whose WAL holds `range(0)` records.
void BM_Recovery(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  std::string dir = "/tmp/sorel_bench_wal_recover_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr) {
    state.SkipWithError("mkdtemp");
    return;
  }
  {
    SessionOptions options;
    options.fsync_every = 64;
    auto session = Session::Open("s", kRules, dir, options);
    if (!session.ok()) {
      state.SkipWithError("open");
      return;
    }
    SymbolTable& symbols = (*session)->engine().symbols();
    Value cat = Value::Symbol(symbols.Intern("C"));
    for (int i = 0; i < records; ++i) {
      (void)(*session)->Make("item", {{"id", Value::Int(i)},
                                      {"cat", cat},
                                      {"val", Value::Int(i % 7)}});
    }
  }
  uint64_t replayed = 0;
  for (auto _ : state) {
    SessionOptions options;
    auto session = Session::Open("s", kRules, dir, options);
    if (!session.ok()) {
      state.SkipWithError("recover");
      break;
    }
    replayed += (*session)->recovery().replayed_records;
  }
  std::string cleanup = "rm -rf '" + dir + "'";
  (void)std::system(cleanup.c_str());
  state.SetItemsProcessed(static_cast<int64_t>(replayed));
}
BENCHMARK(BM_Recovery)->Arg(256)->Arg(2048)->Unit(benchmark::kMillisecond);

uint64_t FileBytes(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

/// What a recovered engine must reproduce, as comparable strings (the
/// bench-local stand-in for the test suites' full fingerprint).
std::string StateKey(Engine& engine) {
  std::ostringstream out;
  engine.DumpWm(out);
  out << "|next_tag=" << engine.wm().next_time_tag();
  return out.str();
}

/// The deterministic section behind the bench_compare CI gate: a fixed
/// journal/replay/share workload whose byte and record counters must not
/// drift between commits without refreshing the committed seed JSON.
/// Timing columns are reported but excluded from the comparison (`*_ms`).
void PrintTable(bench::JsonReport* report) {
  constexpr int kMakes = 512;
  constexpr int kSessions = 4;
  std::printf("=== server WAL: journal, replay, shared rule base ===\n");
  std::printf("%d journaled makes + runs, snapshot round trip, then %d "
              "server sessions\nbound to one compiled rule base\n\n",
              kMakes, kSessions);
  if (report != nullptr) {
    report->Config("makes", kMakes);
    report->Config("sessions", kSessions);
  }

  // -- journal + replay -------------------------------------------------
  std::string dir = "/tmp/sorel_bench_wal_table_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr) return;
  SessionOptions options;
  options.fsync_every = 64;
  options.trace_firings = false;
  std::string live_key;
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  double journal_ms = 0;
  {
    auto session = Session::Open("s", kRules, dir, options);
    if (!session.ok()) return;
    auto start = std::chrono::steady_clock::now();
    SymbolTable& symbols = (*session)->engine().symbols();
    Value cat = Value::Symbol(symbols.Intern("A"));
    for (int i = 0; i < kMakes; ++i) {
      (void)(*session)->Make("item", {{"id", Value::Int(i)},
                                      {"cat", cat},
                                      {"val", Value::Int(i % 13)}});
    }
    (void)(*session)->Run(-1);
    (void)(*session)->SyncWal();
    journal_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    live_key = StateKey((*session)->engine());
    auto wal = ReadWal((*session)->wal_path());
    if (wal.ok()) wal_records = wal->records.size();
    wal_bytes = FileBytes((*session)->wal_path());
  }
  double replay_ms = 0;
  uint64_t replayed = 0;
  bool identical = false;
  {
    auto start = std::chrono::steady_clock::now();
    auto recovered = Session::Open("s", kRules, dir, options);
    replay_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (recovered.ok()) {
      replayed = (*recovered)->recovery().replayed_records;
      identical = StateKey((*recovered)->engine()) == live_key;
    }
  }
  std::printf("journal: %llu records, %llu bytes, %.2f ms; replay: %llu "
              "records in %.2f ms, identical=%s\n",
              static_cast<unsigned long long>(wal_records),
              static_cast<unsigned long long>(wal_bytes), journal_ms,
              static_cast<unsigned long long>(replayed), replay_ms,
              identical ? "yes" : "NO");
  if (report != nullptr) {
    report->BeginRow("journal");
    report->Value("wal.records", static_cast<double>(wal_records));
    report->Value("wal.bytes", static_cast<double>(wal_bytes));
    report->Value("journal_ms", journal_ms);
    report->BeginRow("replay");
    report->Value("recovery.replayed_records", static_cast<double>(replayed));
    report->Value("recovery.bit_identical", identical ? 1 : 0);
    report->Value("replay_ms", replay_ms);
  }

  // -- shared compiled rule base ----------------------------------------
  std::string server_dir = dir + "/srv";
  EngineServerOptions sopts;
  sopts.data_dir = server_dir;
  auto server = EngineServer::Create(kRules, sopts);
  uint64_t base_bytes = 0;
  uint64_t shared_bytes = 0;
  int resident = 0;
  double open_ms = 0;
  if (server.ok()) {
    auto start = std::chrono::steady_clock::now();
    for (int s = 0; s < kSessions; ++s) {
      (void)(*server)->HandleLine("{\"cmd\":\"open\",\"session\":\"s" +
                                  std::to_string(s) + "\"}");
    }
    open_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    base_bytes = (*server)->rule_base()->MemoryBytes();
    shared_bytes = (*server)->shared_network_bytes();
    resident = (*server)->sessions_resident();
  }
  std::printf("shared base: %llu bytes serving %d sessions (%llu bytes "
              "saved vs per-session compiles)\n\n",
              static_cast<unsigned long long>(shared_bytes), resident,
              static_cast<unsigned long long>(base_bytes * (kSessions - 1)));
  if (report != nullptr) {
    report->BeginRow("shared_base/sessions=" + std::to_string(kSessions));
    report->Value("server.rule_base_bytes", static_cast<double>(base_bytes));
    report->Value("server.shared_network_bytes",
                  static_cast<double>(shared_bytes));
    report->Value("server.sessions_resident", resident);
    report->Value("server.bytes_saved",
                  static_cast<double>(base_bytes * (kSessions - 1)));
    report->Value("open_ms", open_ms);
  }
  std::string cleanup = "rm -rf '" + dir + "'";
  (void)std::system(cleanup.c_str());
}

}  // namespace
}  // namespace server
}  // namespace sorel

int main(int argc, char** argv) {
  bool json = sorel::bench::StripJsonFlag(&argc, argv);
  sorel::bench::JsonReport report("server_wal");
  sorel::server::PrintTable(json ? &report : nullptr);
  if (json && !report.Write()) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
