// Experiment F4 (Figure 4): the foreach iterator over PV bindings.
// Prints the paper's exact GroupByTeam iteration trace, then benchmarks
// nested-foreach firing cost against group structure.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>

#include "bench/bench_util.h"

namespace sorel {
namespace bench {
namespace {

constexpr const char* kGroupByTeam =
    "(p GroupByTeam [player ^team <t> ^name <n>] -->"
    " (foreach <t> (write team <t> (crlf))"
    "   (foreach <n> (write |  | <n> (crlf)))))";

void PrintFigure4() {
  std::printf("=== Figure 4: GroupByTeam nested foreach ===\n");
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) + kGroupByTeam);
  const char* kWm[][2] = {{"A", "Jack"}, {"A", "Janice"}, {"B", "Sue"},
                          {"B", "Jack"}, {"B", "Sue"}};
  for (const auto& [team, name] : kWm) {
    MustMake(engine, "player", {{"team", engine.Sym(team)},
                                {"name", engine.Sym(name)}});
  }
  MustRun(engine, 1);
  std::printf("%s", out.str().c_str());
  std::printf("(paper: <t>=B first with Sue printed once, then Jack; "
              "then <t>=A)\n\n");
}

// Firing a nested-foreach rule over n players in g teams. The measured
// firing includes a WM touch that restores SOI eligibility.
void BM_NestedForeachFiring(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int groups = static_cast<int>(state.range(1));
  Engine engine;
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p g [player ^team <t> ^name <n>] -->"
                       " (foreach <t> (foreach <n> (bind <x> 1))))");
  FillPlayers(engine, n, groups, n);
  for (auto _ : state) {
    // Touch: makes the SOI eligible again, then fire once.
    TimeTag tag = MustMake(engine, "player",
                           {{"team", engine.Sym("team0")},
                            {"name", engine.Sym("touch")}});
    int fired = MustRun(engine, 1);
    benchmark::DoNotOptimize(fired);
    Check(engine.RemoveWme(tag), "remove");
    MustRun(engine, 1);  // consume the removal-induced eligibility
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["rows"] = n;
  state.counters["groups"] = groups;
}
BENCHMARK(BM_NestedForeachFiring)
    ->Args({256, 2})
    ->Args({256, 16})
    ->Args({256, 128})
    ->Args({2048, 16});

// Batched-WM ablation on a foreach-driven drain: one firing modifies all
// n members one by one. With batched_wm the n modifies commit as a single
// ChangeBatch (one propagation wave, one S-node `:test` eval at flush);
// per-WME mode pays 2n waves and re-evaluates the test per member change.
void BM_ForeachModifyAblation(benchmark::State& state) {
  bool batched = state.range(0) != 0;
  int n = static_cast<int>(state.range(1));
  for (auto _ : state) {
    EngineOptions opts;
    opts.batched_wm = batched;
    Engine engine(opts);
    engine.set_output(DevNull());
    MustLoad(engine, std::string(kPlayerSchema) +
                         "(p drain { [player ^team <> done] <P> } -->"
                         " (foreach <P> (modify <P> ^team done)))");
    FillPlayers(engine, n, 4, n);
    engine.ResetMatchStats();
    int fired = MustRun(engine, 1000000);
    benchmark::DoNotOptimize(fired);
    Engine::MatchStats m = engine.match_stats();
    state.counters["prop_waves"] =
        static_cast<double>(m.wm.direct_events + m.wm.batches);
    state.counters["test_evals"] = static_cast<double>(m.snode.test_evals);
  }
  state.SetLabel(batched ? "batched" : "per-wme");
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ForeachModifyAblation)
    ->Args({1, 256})->Args({0, 256})->Args({1, 2048})->Args({0, 2048});

// foreach ordering modes: default (conflict-set order) vs sorted.
void BM_ForeachOrdering(benchmark::State& state) {
  int mode = static_cast<int>(state.range(0));
  const char* order = mode == 0 ? "" : (mode == 1 ? "ascending" : "descending");
  Engine engine;
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) + "(p g [player ^name <n>] -->"
                       " (foreach <n> " + order + " (bind <x> 1)))");
  FillPlayers(engine, 1024, 1, 1024);
  for (auto _ : state) {
    TimeTag tag = MustMake(engine, "player", {{"name", engine.Sym("touch")}});
    MustRun(engine, 1);
    Check(engine.RemoveWme(tag), "remove");
    MustRun(engine, 1);
  }
  state.SetLabel(mode == 0 ? "default (recency)" : order);
}
BENCHMARK(BM_ForeachOrdering)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  sorel::bench::PrintFigure4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
