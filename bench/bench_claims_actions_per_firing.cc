// Experiment C1 (§1): "The number of actions in a set-oriented rule should
// be substantially greater, providing the ability to increase parallelism."
// Gupta/Miranker/Pasik identify operations-per-firing as the limiting
// factor for Rete parallelization; we measure exactly that quantity.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"

namespace sorel {
namespace bench {
namespace {

// One firing retires the whole batch (set) vs one element (tuple).
constexpr const char* kSetDrain =
    "(p drain { [player ^team A] <A> } --> (set-modify <A> ^team done))";
constexpr const char* kTupleDrain =
    "(p drain { (player ^team A) <p> } --> (modify <p> ^team done))";

struct Measured {
  int firings;
  uint64_t actions;
  Engine::MatchStats match;
};

Measured Drain(const char* rule, int n, bool batched = true) {
  EngineOptions opts;
  opts.batched_wm = batched;
  Engine engine(opts);
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) + rule);
  for (int i = 0; i < n; ++i) {
    MustMake(engine, "player", {{"team", engine.Sym("A")},
                                {"id", Value::Int(i)}});
  }
  // Count only the firing phase: the n setup adds propagate identically
  // in both modes.
  engine.ResetMatchStats();
  Measured m;
  m.firings = MustRun(engine, 1000000);
  m.actions = engine.run_stats().actions;
  m.match = engine.match_stats();
  return m;
}

/// Propagation waves the matchers saw during the drain: one per direct
/// per-WME event plus one per committed batch.
uint64_t Waves(const Measured& m) {
  return m.match.wm.direct_events + m.match.wm.batches;
}

void PrintActionsPerFiring() {
  std::printf("=== §1 claim: actions per rule firing ===\n");
  std::printf("%8s | %12s %16s | %12s %16s\n", "batch", "set-firings",
              "set-actions/fire", "tuple-firing", "tuple-actions/fire");
  for (int n : {8, 64, 512, 4096}) {
    Measured set = Drain(kSetDrain, n);
    Measured tuple = Drain(kTupleDrain, n);
    std::printf("%8d | %12d %16.1f | %12d %16.1f\n", n, set.firings,
                static_cast<double>(set.actions) / set.firings, tuple.firings,
                static_cast<double>(tuple.actions) / tuple.firings);
  }
  std::printf("(shape: set-oriented actions/firing grows O(n); "
              "tuple-oriented stays 1)\n\n");
}

// Batched-WM ablation over the same set drain: with batched_wm the whole
// firing reaches the matchers as ONE ChangeBatch (one propagation wave,
// one S-node `:test` eval per touched SOI) instead of 2n per-WME waves.
void PrintBatchedAblation() {
  std::printf("=== batched-WM ablation: propagation per set firing ===\n");
  std::printf("%8s | %10s %12s %12s | %10s %12s %12s\n", "batch",
              "b-waves", "b-rightact", "b-testevals", "u-waves",
              "u-rightact", "u-testevals");
  for (int n : {8, 64, 512, 4096}) {
    Measured b = Drain(kSetDrain, n, /*batched=*/true);
    Measured u = Drain(kSetDrain, n, /*batched=*/false);
    std::printf("%8d | %10llu %12llu %12llu | %10llu %12llu %12llu\n", n,
                static_cast<unsigned long long>(Waves(b)),
                static_cast<unsigned long long>(b.match.rete.right_activations),
                static_cast<unsigned long long>(b.match.snode.test_evals),
                static_cast<unsigned long long>(Waves(u)),
                static_cast<unsigned long long>(u.match.rete.right_activations),
                static_cast<unsigned long long>(u.match.snode.test_evals));
  }
  std::printf("(shape: batched waves stay O(1) per firing and `:test` "
              "evals one per touched SOI; unbatched grow O(n))\n\n");
}

void BM_DrainBatch(benchmark::State& state) {
  bool set_oriented = state.range(0) != 0;
  int n = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Measured m = Drain(set_oriented ? kSetDrain : kTupleDrain, n);
    state.counters["firings"] = m.firings;
    state.counters["actions_per_firing"] =
        static_cast<double>(m.actions) / m.firings;
    benchmark::DoNotOptimize(m.firings);
  }
  state.SetLabel(set_oriented ? "set-oriented" : "tuple-oriented");
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DrainBatch)->Args({1, 64})->Args({0, 64})->Args({1, 1024})
    ->Args({0, 1024});

// Timed batched-vs-unbatched ablation of the same set drain.
void BM_DrainPropagationAblation(benchmark::State& state) {
  bool batched = state.range(0) != 0;
  int n = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Measured m = Drain(kSetDrain, n, batched);
    state.counters["prop_waves"] = static_cast<double>(Waves(m));
    state.counters["test_evals"] =
        static_cast<double>(m.match.snode.test_evals);
    state.counters["right_activations"] =
        static_cast<double>(m.match.rete.right_activations);
    benchmark::DoNotOptimize(m.firings);
  }
  state.SetLabel(batched ? "batched" : "per-wme");
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DrainPropagationAblation)
    ->Args({1, 64})->Args({0, 64})->Args({1, 1024})->Args({0, 1024});

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  sorel::bench::PrintActionsPerFiring();
  sorel::bench::PrintBatchedAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
