// Experiment C1 (§1): "The number of actions in a set-oriented rule should
// be substantially greater, providing the ability to increase parallelism."
// Gupta/Miranker/Pasik identify operations-per-firing as the limiting
// factor for Rete parallelization; we measure exactly that quantity.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"

namespace sorel {
namespace bench {
namespace {

// One firing retires the whole batch (set) vs one element (tuple).
constexpr const char* kSetDrain =
    "(p drain { [player ^team A] <A> } --> (set-modify <A> ^team done))";
constexpr const char* kTupleDrain =
    "(p drain { (player ^team A) <p> } --> (modify <p> ^team done))";

struct Measured {
  int firings;
  uint64_t actions;
};

Measured Drain(const char* rule, int n) {
  Engine engine;
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) + rule);
  for (int i = 0; i < n; ++i) {
    MustMake(engine, "player", {{"team", engine.Sym("A")},
                                {"id", Value::Int(i)}});
  }
  Measured m;
  m.firings = MustRun(engine, 1000000);
  m.actions = engine.run_stats().actions;
  return m;
}

void PrintActionsPerFiring() {
  std::printf("=== §1 claim: actions per rule firing ===\n");
  std::printf("%8s | %12s %16s | %12s %16s\n", "batch", "set-firings",
              "set-actions/fire", "tuple-firing", "tuple-actions/fire");
  for (int n : {8, 64, 512, 4096}) {
    Measured set = Drain(kSetDrain, n);
    Measured tuple = Drain(kTupleDrain, n);
    std::printf("%8d | %12d %16.1f | %12d %16.1f\n", n, set.firings,
                static_cast<double>(set.actions) / set.firings, tuple.firings,
                static_cast<double>(tuple.actions) / tuple.firings);
  }
  std::printf("(shape: set-oriented actions/firing grows O(n); "
              "tuple-oriented stays 1)\n\n");
}

void BM_DrainBatch(benchmark::State& state) {
  bool set_oriented = state.range(0) != 0;
  int n = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Measured m = Drain(set_oriented ? kSetDrain : kTupleDrain, n);
    state.counters["firings"] = m.firings;
    state.counters["actions_per_firing"] =
        static_cast<double>(m.actions) / m.firings;
    benchmark::DoNotOptimize(m.firings);
  }
  state.SetLabel(set_oriented ? "set-oriented" : "tuple-oriented");
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DrainBatch)->Args({1, 64})->Args({0, 64})->Args({1, 1024})
    ->Args({0, 1024});

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  sorel::bench::PrintActionsPerFiring();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
