// Experiment F1 (Figure 1): the tuple-oriented `compete` rule — rule, WM,
// and conflict set. Prints the paper's six instantiations, then benchmarks
// conflict-set growth for the n x m cross product that motivates
// set-oriented matching.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"

namespace sorel {
namespace bench {
namespace {

constexpr const char* kCompete =
    "(p compete (player ^name <n1> ^team A) (player ^name <n2> ^team B)"
    " --> (write PlayerA: <n1> PlayerB: <n2> (crlf)))";

void PrintFigure1() {
  std::printf("=== Figure 1: rule, working memory, and conflict set ===\n");
  Engine engine;
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) + kCompete);
  const char* kWm[][2] = {{"A", "Jack"}, {"A", "Janice"}, {"B", "Sue"},
                          {"B", "Jack"}, {"B", "Sue"}};
  for (const auto& [team, name] : kWm) {
    TimeTag tag = MustMake(engine, "player",
                           {{"team", engine.Sym(team)},
                            {"name", engine.Sym(name)}});
    std::printf("%lld: (player ^team %s ^name %s)\n",
                static_cast<long long>(tag), team, name);
  }
  std::printf("%zu instantiations:\n", engine.conflict_set().size());
  for (InstantiationRef* inst : engine.conflict_set().Entries()) {
    std::vector<Row> rows;
    inst->CollectRows(&rows);
    const Row& row = rows.front();
    std::printf("  %lld: player A  %lld: player B\n",
                static_cast<long long>(row[0]->time_tag()),
                static_cast<long long>(row[1]->time_tag()));
  }
  std::printf("(paper: 6 instantiations — the 2 x 3 cross product)\n\n");
}

// Conflict-set growth: n A-players x n B-players => n^2 instantiations.
void BM_CrossProductMatch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    engine.set_output(DevNull());
    MustLoad(engine, std::string(kPlayerSchema) + kCompete);
    for (int i = 0; i < n; ++i) {
      MustMake(engine, "player", {{"team", engine.Sym("A")},
                                  {"name", engine.Sym("x" + std::to_string(i))}});
      MustMake(engine, "player", {{"team", engine.Sym("B")},
                                  {"name", engine.Sym("y" + std::to_string(i))}});
    }
    benchmark::DoNotOptimize(engine.conflict_set().size());
    state.counters["instantiations"] =
        static_cast<double>(engine.conflict_set().size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_CrossProductMatch)->Arg(8)->Arg(32)->Arg(128)->Complexity();

// Firing every instantiation: the tuple-oriented cost the paper contrasts
// with a single set-oriented firing (see bench_fig5).
void BM_FireAllInstantiations(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    engine.set_output(DevNull());
    MustLoad(engine, std::string(kPlayerSchema) + kCompete);
    for (int i = 0; i < n; ++i) {
      MustMake(engine, "player", {{"team", engine.Sym("A")},
                                  {"name", engine.Sym("x" + std::to_string(i))}});
      MustMake(engine, "player", {{"team", engine.Sym("B")},
                                  {"name", engine.Sym("y" + std::to_string(i))}});
    }
    state.ResumeTiming();
    int fired = MustRun(engine);
    state.counters["firings"] = static_cast<double>(fired);
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_FireAllInstantiations)->Arg(8)->Arg(32)->Arg(64);

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  sorel::bench::PrintFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
