// Experiment C2 (§1): "the introduction of the set-oriented changes was
// made in a way that does not degrade the performance when executing
// regular OPS5 programs." Rules without set constructs never reach an
// S-node; loading set-oriented rules for *other* data must not slow the
// regular match path.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"

namespace sorel {
namespace bench {
namespace {

constexpr const char* kRegularProgram =
    "(p cross (player ^team A ^name <n1>) (player ^team B ^name <n1>)"
    " --> (halt))"
    "(p guard (player ^score <s>) (player ^score > <s>) --> (halt))";

// Set-oriented rules over an unrelated class: their presence exercises the
// S-node machinery in the same engine.
constexpr const char* kUnrelatedSetRules =
    "(literalize widget kind weight)"
    "(p w1 [widget ^kind <k> ^weight <w>] :scalar (<k>)"
    " :test ((sum <w>) > 100) --> (halt))"
    "(p w2 { [widget ^kind gear] <G> } :test ((count <G>) > 3) --> (halt))";

void ChurnLoop(benchmark::State& state, Engine& engine, int warm) {
  FillPlayers(engine, warm, 4, 16);
  int i = 0;
  for (auto _ : state) {
    TimeTag tag = MustMake(
        engine, "player",
        {{"team", engine.Sym(i % 2 == 0 ? "A" : "B")},
         {"name", engine.Sym("name" + std::to_string(i % 16))},
         {"score", Value::Int(i % 100)}});
    Check(engine.RemoveWme(tag), "remove");
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

void BM_RegularOnly(benchmark::State& state) {
  Engine engine;
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) + kRegularProgram);
  ChurnLoop(state, engine, static_cast<int>(state.range(0)));
  state.SetLabel("regular rules only");
}
BENCHMARK(BM_RegularOnly)->Arg(64)->Arg(512);

void BM_RegularWithSetRulesLoaded(benchmark::State& state) {
  Engine engine;
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) + kRegularProgram +
                       kUnrelatedSetRules);
  ChurnLoop(state, engine, static_cast<int>(state.range(0)));
  state.SetLabel("regular rules + unrelated set-oriented rules (claim: same)");
}
BENCHMARK(BM_RegularWithSetRulesLoaded)->Arg(64)->Arg(512);

// The same tuple-oriented pattern expressed set-oriented: the S-node cost
// you opt into when you *do* want SOIs for this data.
void BM_SetOrientedVariant(benchmark::State& state) {
  Engine engine;
  engine.set_output(DevNull());
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p cross [player ^team A ^name <n1>]"
                       "         (player ^team B ^name <n1>) --> (halt))"
                       "(p guard (player ^score <s>)"
                       "         (player ^score > <s>) --> (halt))");
  ChurnLoop(state, engine, static_cast<int>(state.range(0)));
  state.SetLabel("same program with one set-oriented CE");
}
BENCHMARK(BM_SetOrientedVariant)->Arg(64)->Arg(512);

void PrintHeader() {
  std::printf("=== §1 claim: no degradation for regular OPS5 programs ===\n");
  std::printf("Compare BM_RegularOnly vs BM_RegularWithSetRulesLoaded: the\n");
  std::printf("regular match path never traverses an S-node, so per-change\n");
  std::printf("cost should be indistinguishable.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  sorel::bench::PrintHeader();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
