// Experiment F2 (Figure 2): set-oriented LHSs and their instantiations.
// Prints the 1-SOI / 3-SOI / 6-instantiation comparison of the figure,
// then benchmarks the S-node's SOI grouping as the number of partitions
// varies (same total work, different γ-memory shapes).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"

namespace sorel {
namespace bench {
namespace {

void PrintFigure2() {
  std::printf("=== Figure 2: set-oriented LHSs and instantiations ===\n");
  struct Variant {
    const char* label;
    const char* lhs;
  };
  const Variant kVariants[] = {
      {"[A] [B]  (both set-oriented)",
       "[player ^name <n1> ^team A] [player ^name <n2> ^team B]"},
      {"[A] (B)  (mixed)",
       "[player ^name <n1> ^team A] (player ^name <n2> ^team B)"},
      {"(A) (B)  (regular OPS5)",
       "(player ^name <n1> ^team A) (player ^name <n2> ^team B)"},
  };
  for (const Variant& v : kVariants) {
    Engine engine;
    engine.set_output(DevNull());
    MustLoad(engine, std::string(kPlayerSchema) + "(p compete " + v.lhs +
                         " --> (halt))");
    const char* kWm[][2] = {{"A", "Jack"}, {"A", "Janice"}, {"B", "Sue"},
                            {"B", "Jack"}, {"B", "Sue"}};
    for (const auto& [team, name] : kWm) {
      MustMake(engine, "player", {{"team", engine.Sym(team)},
                                  {"name", engine.Sym(name)}});
    }
    SNode* snode = engine.snode("compete");
    if (snode != nullptr) {
      std::printf("  %-32s -> %zu instantiation(s)", v.label,
                  snode->num_sois());
      std::printf(" with rows:");
      for (const Soi* soi : snode->sois()) std::printf(" %zu", soi->size());
      std::printf("\n");
    } else {
      std::printf("  %-32s -> %zu instantiation(s) with rows: 1 each\n",
                  v.label, engine.conflict_set().size());
    }
  }
  std::printf("(paper: 1 SOI of 6; 3 SOIs of 2; 6 regular instantiations)\n\n");
}

// Fixed number of tokens, varying partition count: grouping cost of the
// S-node key (non-set CE identity + :scalar values).
void BM_SoiPartitioning(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  constexpr int kWmes = 2048;
  for (auto _ : state) {
    Engine engine;
    engine.set_output(DevNull());
    MustLoad(engine, std::string(kPlayerSchema) +
                         "(p bygroup [player ^team <t> ^name <n>]"
                         " :scalar (<t>) --> (halt))");
    FillPlayers(engine, kWmes, groups, 16);
    SNode* snode = engine.snode("bygroup");
    benchmark::DoNotOptimize(snode->num_sois());
    state.counters["sois"] = static_cast<double>(snode->num_sois());
  }
  state.SetItemsProcessed(state.iterations() * kWmes);
}
BENCHMARK(BM_SoiPartitioning)->Arg(1)->Arg(16)->Arg(256)->Arg(2048);

// The invariant behind Figure 2: an SOI aggregates exactly the regular
// instantiations. Measures both matchers' build cost for the same LHS.
void BM_SetVsRegularMatchCost(benchmark::State& state) {
  bool set_oriented = state.range(0) != 0;
  constexpr int kWmes = 512;
  std::string lhs = set_oriented
                        ? "[player ^team <t> ^name <n>] :scalar (<t>)"
                        : "(player ^team <t> ^name <n>)";
  for (auto _ : state) {
    Engine engine;
    engine.set_output(DevNull());
    MustLoad(engine, std::string(kPlayerSchema) + "(p r " + lhs +
                         " --> (halt))");
    FillPlayers(engine, kWmes, 8, 16);
    benchmark::DoNotOptimize(engine.conflict_set().size());
  }
  state.SetItemsProcessed(state.iterations() * kWmes);
  state.SetLabel(set_oriented ? "set-oriented (8 SOIs)"
                              : "tuple-oriented (512 instantiations)");
}
BENCHMARK(BM_SetVsRegularMatchCost)->Arg(0)->Arg(1);

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  sorel::bench::PrintFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
