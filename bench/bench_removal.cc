// Removal-path benchmark: how fast does the Rete matcher retract?
// One join-heavy rule per team is driven through three phases — a bulk add
// transaction, a bulk remove transaction retracting half the WMEs, and a
// churn loop of remove+re-add transactions that hammers the token arena
// free lists. The sweep ablates the removal-path options
// (`rete.bulk_removal`: per-batch bulk token-tree deletion vs per-token
// tree walks; `rete.token_slab`: slab-backed token arenas vs tracked heap
// allocation; `rete.soa_memories`: columnar vs tuple-oriented match-state
// layout) at sequential and parallel thread counts. Run with `--json` to
// also write BENCH_removal.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace sorel {
namespace bench {
namespace {

constexpr int kRules = 16;
constexpr int kPlayers = 2048;
constexpr int kChurnRounds = 4;
constexpr int kChurnSize = 256;

/// One rule per team; CE1 x CE2 is a non-equijoin (`<=`) so every team's
/// alpha memory joins quadratically — plenty of tokens to retract — and
/// the never-matching CE3 keeps the conflict set empty by construction.
std::string RemovalProgram(int rules) {
  std::string src = kPlayerSchema;
  for (int k = 0; k < rules; ++k) {
    const std::string t = "team" + std::to_string(k);
    src += "(p churn-" + std::to_string(k) + " (player ^team " + t +
           " ^id <i> ^score <s>) (player ^team " + t +
           " ^score <= <s>) (player ^id 999999) --> (write x))";
  }
  return src;
}

struct Measured {
  double add_ms = 0;
  double remove_ms = 0;
  double churn_ms = 0;
  Engine::MatchStats stats;
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

Measured RunOnce(bool bulk, int slab, int threads, bool soa = true) {
  EngineOptions options;
  options.matcher = MatcherKind::kRete;
  options.match_threads = threads;
  options.rete.bulk_removal = bulk;
  options.rete.token_slab = slab;
  options.rete.soa_memories = soa;
  Engine engine(options);
  engine.set_output(DevNull());
  MustLoad(engine, RemovalProgram(kRules));
  engine.ResetMatchStats();

  Measured m;
  std::vector<TimeTag> live;
  live.reserve(kPlayers);
  int next_id = 0;
  auto make_player = [&](Engine& e) {
    live.push_back(MustMake(
        e, "player",
        {{"team", e.Sym("team" + std::to_string(next_id % kRules))},
         {"id", Value::Int(next_id)},
         {"score", Value::Int(next_id % 17)}}));
    ++next_id;
  };

  auto t0 = std::chrono::steady_clock::now();
  engine.wm().Begin();
  for (int i = 0; i < kPlayers; ++i) make_player(engine);
  Check(engine.wm().Commit(), "add commit");
  m.add_ms = MsSince(t0);

  auto t1 = std::chrono::steady_clock::now();
  engine.wm().Begin();
  std::vector<TimeTag> survivors;
  survivors.reserve(live.size() / 2);
  for (size_t i = 0; i < live.size(); ++i) {
    if (i % 2 == 0) {
      Check(engine.RemoveWme(live[i]), "RemoveWme");
    } else {
      survivors.push_back(live[i]);
    }
  }
  Check(engine.wm().Commit(), "remove commit");
  m.remove_ms = MsSince(t1);
  live = std::move(survivors);

  auto t2 = std::chrono::steady_clock::now();
  for (int round = 0; round < kChurnRounds; ++round) {
    engine.wm().Begin();
    for (int i = 0; i < kChurnSize; ++i) {
      Check(engine.RemoveWme(live[static_cast<size_t>(i)]), "churn remove");
    }
    live.erase(live.begin(), live.begin() + kChurnSize);
    for (int i = 0; i < kChurnSize; ++i) make_player(engine);
    Check(engine.wm().Commit(), "churn commit");
  }
  m.churn_ms = MsSince(t2);

  m.stats = engine.match_stats();
  // Every configuration recycles dead tokens through the free lists
  // (slab-backed or tracked-heap, bulk or per-token), so the churn loop
  // must produce pool hits — zero means recycling regressed.
  if (m.stats.rete.token_pool_hits == 0) {
    std::fprintf(stderr,
                 "bench_removal: rete.token_pool_hits == 0 after churn "
                 "(bulk=%d slab=%d threads=%d) — token recycling is broken\n",
                 bulk ? 1 : 0, slab, threads);
    std::abort();
  }
  return m;
}

void PrintTable(JsonReport* report) {
  std::printf("=== removal path: bulk deletion x token arenas ===\n");
  std::printf("%d rules (one per team), %d players added in 1 transaction,\n"
              "half removed in a second, then %d churn rounds of %d "
              "remove+re-add;\nbulk=off walks token trees one WME at a "
              "time, slab=0 allocates\ntokens from the tracked heap (the "
              "two ablation baselines)\n\n",
              kRules, kPlayers, kChurnRounds, kChurnSize);
  if (report != nullptr) {
    report->Config("rules", kRules);
    report->Config("players", kPlayers);
    report->Config("churn_rounds", kChurnRounds);
    report->Config("churn_size", kChurnSize);
    report->Config("host_cores", std::thread::hardware_concurrency());
  }
  std::printf("%5s %5s %8s %4s | %8s %9s %8s | %9s %7s %7s\n", "bulk",
              "slab", "threads", "soa", "add ms", "remove ms", "churn ms",
              "pool hits", "bulkdel", "slabs");
  // Discarded warmup: the process's first run pays one-time costs (page
  // faults, lazy allocator growth) that would otherwise land entirely on
  // the first table row and skew its ablation comparison.
  RunOnce(true, 256, 0);
  for (bool bulk : {true, false}) {
    for (int slab : {256, 0}) {
      for (int threads : {0, 4}) {
        for (bool soa : {true, false}) {
          Measured m = RunOnce(bulk, slab, threads, soa);
          std::printf(
              "%5s %5d %8d %4s | %8.2f %9.2f %8.2f | %9llu %7llu %7llu\n",
              bulk ? "on" : "off", slab, threads, soa ? "on" : "off",
              m.add_ms, m.remove_ms, m.churn_ms,
              static_cast<unsigned long long>(m.stats.rete.token_pool_hits),
              static_cast<unsigned long long>(m.stats.rete.bulk_deletes),
              static_cast<unsigned long long>(m.stats.rete.arena_slabs));
          if (report != nullptr) {
            report->BeginRow(std::string("bulk=") + (bulk ? "on" : "off") +
                             "/slab=" + std::to_string(slab) +
                             "/threads=" + std::to_string(threads) +
                             "/soa=" + (soa ? "on" : "off"));
            report->Value("bulk_removal", bulk ? 1 : 0);
            report->Value("token_slab", slab);
            report->Value("threads", threads);
            report->Value("soa_memories", soa ? 1 : 0);
            report->Value("add_ms", m.add_ms);
            report->Value("remove_ms", m.remove_ms);
            report->Value("churn_ms", m.churn_ms);
            report->MatchStats(m.stats);
            // Not part of the MatchStats flatten (their values are
            // configuration-shaped, not workload-shaped), but this bench is
            // precisely about them.
            report->Value("rete.bulk_deletes",
                          static_cast<double>(m.stats.rete.bulk_deletes));
            report->Value("rete.arena_slabs",
                          static_cast<double>(m.stats.rete.arena_slabs));
            report->Value("wm.wme_pool_hits",
                          static_cast<double>(m.stats.wm.wme_pool_hits));
            report->Value("wm.wme_slabs",
                          static_cast<double>(m.stats.wm.wme_slabs));
          }
        }
      }
    }
  }
  std::printf("\n(bulk deletion turns per-token output/child/anchor erases\n"
              " into one stable compaction per dirty container per batch;\n"
              " the arenas keep dead tokens on per-rule free lists so churn\n"
              " stops round-tripping through the heap)\n\n");
}

void BM_RemovalChurn(benchmark::State& state) {
  bool bulk = state.range(0) != 0;
  int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Measured m = RunOnce(bulk, 256, threads);
    benchmark::DoNotOptimize(m.remove_ms);
  }
  state.SetLabel(std::string(bulk ? "bulk" : "per-token") + " threads=" +
                 std::to_string(threads));
  state.SetItemsProcessed(state.iterations() * kPlayers);
}
BENCHMARK(BM_RemovalChurn)->Args({1, 0})->Args({0, 0})->Args({1, 4});

}  // namespace
}  // namespace bench
}  // namespace sorel

int main(int argc, char** argv) {
  bool json = sorel::bench::StripJsonFlag(&argc, argv);
  sorel::bench::JsonReport report("removal");
  sorel::bench::PrintTable(json ? &report : nullptr);
  if (json && !report.Write()) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
