#include <gtest/gtest.h>

#include "rete/conflict_set.h"

namespace sorel {
namespace {

/// A scriptable instantiation for conflict-set unit tests.
class FakeInst : public InstantiationRef {
 public:
  FakeInst(const CompiledRule* rule, std::vector<TimeTag> tags)
      : rule_(rule), tags_(std::move(tags)) {
    std::sort(tags_.rbegin(), tags_.rend());
  }

  const CompiledRule& rule() const override { return *rule_; }
  void CollectRows(std::vector<Row>* out) const override { out->emplace_back(); }
  std::vector<TimeTag> RecencyTags() const override { return tags_; }
  TimeTag FirstCeTag() const override { return first_ce_tag; }

  TimeTag first_ce_tag = 0;

 private:
  const CompiledRule* rule_;
  std::vector<TimeTag> tags_;
};

class ConflictSetTest : public ::testing::Test {
 protected:
  ConflictSetTest() {
    plain_.specificity = 1;
    specific_.specificity = 5;
  }

  CompiledRule plain_, specific_;
  ConflictSet cs_;
};

TEST_F(ConflictSetTest, EmptySelectsNull) {
  EXPECT_EQ(cs_.Select(Strategy::kLex), nullptr);
  EXPECT_EQ(cs_.size(), 0u);
}

TEST_F(ConflictSetTest, LexPrefersHigherRecency) {
  FakeInst old_inst(&plain_, {3, 1});
  FakeInst new_inst(&plain_, {4, 2});
  cs_.Add(&old_inst);
  cs_.Add(&new_inst);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &new_inst);
}

TEST_F(ConflictSetTest, LexTieBrokenBySecondTag) {
  FakeInst a(&plain_, {9, 1});
  FakeInst b(&plain_, {9, 5});
  cs_.Add(&a);
  cs_.Add(&b);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &b);
}

TEST_F(ConflictSetTest, LongerTagListDominatesEqualPrefix) {
  FakeInst shorter(&plain_, {9, 5});
  FakeInst longer(&plain_, {9, 5, 2});
  cs_.Add(&shorter);
  cs_.Add(&longer);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &longer);
}

TEST_F(ConflictSetTest, SpecificityBreaksRecencyTies) {
  FakeInst a(&plain_, {9, 5});
  FakeInst b(&specific_, {9, 5});
  cs_.Add(&a);
  cs_.Add(&b);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &b);
}

TEST_F(ConflictSetTest, MeaComparesFirstCeTagFirst) {
  FakeInst a(&plain_, {9, 1});
  a.first_ce_tag = 1;
  FakeInst b(&plain_, {5, 2});
  b.first_ce_tag = 2;
  cs_.Add(&a);
  cs_.Add(&b);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &a);  // 9 > 5
  EXPECT_EQ(cs_.Select(Strategy::kMea), &b);  // first CE 2 > 1
}

TEST_F(ConflictSetTest, MarkFiredRemoveDropsEntry) {
  FakeInst a(&plain_, {1});
  cs_.Add(&a);
  cs_.MarkFired(&a, /*remove_entry=*/true);
  EXPECT_EQ(cs_.size(), 0u);
  EXPECT_EQ(cs_.Select(Strategy::kLex), nullptr);
}

TEST_F(ConflictSetTest, MarkFiredKeepMakesIneligibleUntilTouch) {
  FakeInst a(&plain_, {1});
  cs_.Add(&a);
  cs_.MarkFired(&a, /*remove_entry=*/false);
  EXPECT_EQ(cs_.size(), 1u);
  EXPECT_EQ(cs_.EligibleCount(), 0u);
  EXPECT_EQ(cs_.Select(Strategy::kLex), nullptr);
  cs_.Touch(&a);  // the SOI changed: eligible again (§6)
  EXPECT_EQ(cs_.EligibleCount(), 1u);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &a);
}

TEST_F(ConflictSetTest, AddIsIdempotentButReinstates) {
  FakeInst a(&plain_, {1});
  cs_.Add(&a);
  cs_.MarkFired(&a, false);
  cs_.Add(&a);
  EXPECT_EQ(cs_.size(), 1u);
  EXPECT_EQ(cs_.EligibleCount(), 1u);
}

TEST_F(ConflictSetTest, RemoveUnknownIsNoop) {
  FakeInst a(&plain_, {1});
  cs_.Remove(&a);
  EXPECT_EQ(cs_.size(), 0u);
}

TEST_F(ConflictSetTest, EntriesInInsertionOrder) {
  FakeInst a(&plain_, {1}), b(&plain_, {2}), c(&plain_, {3});
  cs_.Add(&a);
  cs_.Add(&b);
  cs_.Add(&c);
  auto entries = cs_.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], &a);
  EXPECT_EQ(entries[2], &c);
}

TEST_F(ConflictSetTest, DeterministicTieBreakPrefersNewerEntry) {
  FakeInst a(&plain_, {7}), b(&plain_, {7});
  cs_.Add(&a);
  cs_.Add(&b);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &b);
}

}  // namespace
}  // namespace sorel
