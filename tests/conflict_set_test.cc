#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "rete/conflict_set.h"

namespace sorel {
namespace {

/// A scriptable instantiation for conflict-set unit tests.
class FakeInst : public InstantiationRef {
 public:
  FakeInst(const CompiledRule* rule, std::vector<TimeTag> tags)
      : rule_(rule), tags_(std::move(tags)) {
    std::sort(tags_.rbegin(), tags_.rend());
  }

  const CompiledRule& rule() const override { return *rule_; }
  void CollectRows(std::vector<Row>* out) const override { out->emplace_back(); }
  std::vector<TimeTag> RecencyTags() const override { return tags_; }
  TimeTag FirstCeTag() const override { return first_ce_tag; }

  /// Simulates a content change (an SOI gaining/losing members).
  void set_tags(std::vector<TimeTag> tags) {
    tags_ = std::move(tags);
    std::sort(tags_.rbegin(), tags_.rend());
  }

  TimeTag first_ce_tag = 0;

 private:
  const CompiledRule* rule_;
  std::vector<TimeTag> tags_;
};

class ConflictSetTest : public ::testing::Test {
 protected:
  ConflictSetTest() {
    plain_.specificity = 1;
    specific_.specificity = 5;
  }

  CompiledRule plain_, specific_;
  ConflictSet cs_;
};

TEST_F(ConflictSetTest, EmptySelectsNull) {
  EXPECT_EQ(cs_.Select(Strategy::kLex), nullptr);
  EXPECT_EQ(cs_.size(), 0u);
}

TEST_F(ConflictSetTest, LexPrefersHigherRecency) {
  FakeInst old_inst(&plain_, {3, 1});
  FakeInst new_inst(&plain_, {4, 2});
  cs_.Add(&old_inst);
  cs_.Add(&new_inst);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &new_inst);
}

TEST_F(ConflictSetTest, LexTieBrokenBySecondTag) {
  FakeInst a(&plain_, {9, 1});
  FakeInst b(&plain_, {9, 5});
  cs_.Add(&a);
  cs_.Add(&b);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &b);
}

TEST_F(ConflictSetTest, LongerTagListDominatesEqualPrefix) {
  FakeInst shorter(&plain_, {9, 5});
  FakeInst longer(&plain_, {9, 5, 2});
  cs_.Add(&shorter);
  cs_.Add(&longer);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &longer);
}

TEST_F(ConflictSetTest, SpecificityBreaksRecencyTies) {
  FakeInst a(&plain_, {9, 5});
  FakeInst b(&specific_, {9, 5});
  cs_.Add(&a);
  cs_.Add(&b);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &b);
}

TEST_F(ConflictSetTest, MeaComparesFirstCeTagFirst) {
  FakeInst a(&plain_, {9, 1});
  a.first_ce_tag = 1;
  FakeInst b(&plain_, {5, 2});
  b.first_ce_tag = 2;
  cs_.Add(&a);
  cs_.Add(&b);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &a);  // 9 > 5
  EXPECT_EQ(cs_.Select(Strategy::kMea), &b);  // first CE 2 > 1
}

TEST_F(ConflictSetTest, MarkFiredRemoveDropsEntry) {
  FakeInst a(&plain_, {1});
  cs_.Add(&a);
  cs_.MarkFired(&a, /*remove_entry=*/true);
  EXPECT_EQ(cs_.size(), 0u);
  EXPECT_EQ(cs_.Select(Strategy::kLex), nullptr);
}

TEST_F(ConflictSetTest, MarkFiredKeepMakesIneligibleUntilTouch) {
  FakeInst a(&plain_, {1});
  cs_.Add(&a);
  cs_.MarkFired(&a, /*remove_entry=*/false);
  EXPECT_EQ(cs_.size(), 1u);
  EXPECT_EQ(cs_.EligibleCount(), 0u);
  EXPECT_EQ(cs_.Select(Strategy::kLex), nullptr);
  cs_.Touch(&a);  // the SOI changed: eligible again (§6)
  EXPECT_EQ(cs_.EligibleCount(), 1u);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &a);
}

TEST_F(ConflictSetTest, AddIsIdempotentButReinstates) {
  FakeInst a(&plain_, {1});
  cs_.Add(&a);
  cs_.MarkFired(&a, false);
  cs_.Add(&a);
  EXPECT_EQ(cs_.size(), 1u);
  EXPECT_EQ(cs_.EligibleCount(), 1u);
}

TEST_F(ConflictSetTest, RemoveUnknownIsNoop) {
  FakeInst a(&plain_, {1});
  cs_.Remove(&a);
  EXPECT_EQ(cs_.size(), 0u);
}

TEST_F(ConflictSetTest, EntriesInInsertionOrder) {
  FakeInst a(&plain_, {1}), b(&plain_, {2}), c(&plain_, {3});
  cs_.Add(&a);
  cs_.Add(&b);
  cs_.Add(&c);
  auto entries = cs_.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], &a);
  EXPECT_EQ(entries[2], &c);
}

TEST_F(ConflictSetTest, DeterministicTieBreakPrefersNewerEntry) {
  FakeInst a(&plain_, {7}), b(&plain_, {7});
  cs_.Add(&a);
  cs_.Add(&b);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &b);
}

TEST_F(ConflictSetTest, ReactivatedSoiGetsFreshSeq) {
  // A fired SOI reinstated by a later change re-enters the conflict set as
  // the *newer* arrival: it must win a dead-even tie against an entry that
  // was added while it sat fired, not keep its original insertion rank.
  FakeInst a(&plain_, {7}), b(&plain_, {7});
  cs_.Add(&a);
  cs_.MarkFired(&a, /*remove_entry=*/false);
  cs_.Add(&b);
  cs_.Touch(&a);  // γ-memory changed: a is eligible again
  EXPECT_EQ(cs_.Select(Strategy::kLex), &a);
}

TEST_F(ConflictSetTest, TouchOfEligibleEntryKeepsSeq) {
  // Touching an entry that never fired refreshes its keys but not its
  // tie-break rank; the later arrival still wins.
  FakeInst a(&plain_, {7}), b(&plain_, {7});
  cs_.Add(&a);
  cs_.Add(&b);
  cs_.Touch(&a);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &b);
}

TEST_F(ConflictSetTest, TouchRepositionsAfterContentChange) {
  FakeInst a(&plain_, {1}), b(&plain_, {5});
  cs_.Add(&a);
  cs_.Add(&b);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &b);
  a.set_tags({9});
  cs_.Touch(&a);  // every content change reaches the set as Add/Touch
  EXPECT_EQ(cs_.Select(Strategy::kLex), &a);
}

TEST_F(ConflictSetTest, RemoveAfterUnreportedChangeIsSafe) {
  // Removal must locate the entry under the keys it was *filed* under even
  // if the live instantiation changed in between (the S-node removes SOIs
  // after mutating them).
  FakeInst a(&plain_, {1}), b(&plain_, {5});
  cs_.Add(&a);
  cs_.Add(&b);
  a.set_tags({9});  // no Touch
  cs_.Remove(&a);
  EXPECT_EQ(cs_.size(), 1u);
  EXPECT_EQ(cs_.Select(Strategy::kLex), &b);
}

TEST_F(ConflictSetTest, SelectCountsStats) {
  FakeInst a(&plain_, {1});
  cs_.Add(&a);
  EXPECT_EQ(cs_.stats().selects, 0u);
  cs_.Select(Strategy::kLex);
  cs_.Select(Strategy::kMea);
  EXPECT_EQ(cs_.stats().selects, 2u);
  EXPECT_GT(cs_.stats().comparisons + 1, 0u);  // counter wired up
  cs_.ResetStats();
  EXPECT_EQ(cs_.stats().selects, 0u);
}

/// Drives an indexed and a linear conflict set through the same script and
/// checks every observable agrees.
TEST(ConflictSetEquivalenceTest, IndexedMatchesLinearScan) {
  CompiledRule plain, specific;
  plain.specificity = 1;
  specific.specificity = 5;
  ConflictSet indexed(/*use_index=*/true);
  ConflictSet linear(/*use_index=*/false);
  ASSERT_TRUE(indexed.use_index());
  ASSERT_FALSE(linear.use_index());

  std::vector<std::unique_ptr<FakeInst>> ia, la;
  auto make = [&](const CompiledRule* rule, std::vector<TimeTag> tags,
                  TimeTag first_ce) {
    ia.push_back(std::make_unique<FakeInst>(rule, tags));
    ia.back()->first_ce_tag = first_ce;
    la.push_back(std::make_unique<FakeInst>(rule, std::move(tags)));
    la.back()->first_ce_tag = first_ce;
    indexed.Add(ia.back().get());
    linear.Add(la.back().get());
    return ia.size() - 1;
  };
  auto expect_agree = [&](const char* what) {
    SCOPED_TRACE(what);
    ASSERT_EQ(indexed.size(), linear.size());
    ASSERT_EQ(indexed.EligibleCount(), linear.EligibleCount());
    for (Strategy s : {Strategy::kLex, Strategy::kMea}) {
      // Compare by script position: the two sets hold twin objects.
      std::vector<InstantiationRef*> ie = indexed.SortedEligible(s);
      std::vector<InstantiationRef*> le = linear.SortedEligible(s);
      ASSERT_EQ(ie.size(), le.size());
      for (size_t i = 0; i < ie.size(); ++i) {
        size_t ipos = 0, lpos = 0;
        while (ia[ipos].get() != ie[i]) ++ipos;
        while (la[lpos].get() != le[i]) ++lpos;
        EXPECT_EQ(ipos, lpos) << "rank " << i;
      }
      if (ie.empty()) {
        EXPECT_EQ(indexed.Select(s), nullptr);
        EXPECT_EQ(linear.Select(s), nullptr);
      } else {
        EXPECT_EQ(indexed.Select(s), ie.front());
        EXPECT_EQ(linear.Select(s), le.front());
      }
    }
  };

  make(&plain, {3, 1}, 1);
  make(&specific, {3, 1}, 3);
  make(&plain, {7, 2}, 2);
  make(&plain, {7, 2}, 7);
  expect_agree("after adds");

  size_t soi = make(&specific, {5}, 5);
  indexed.MarkFired(ia[soi].get(), /*remove_entry=*/false);
  linear.MarkFired(la[soi].get(), /*remove_entry=*/false);
  expect_agree("after fired-keep");

  ia[soi]->set_tags({8, 5});
  la[soi]->set_tags({8, 5});
  indexed.Touch(ia[soi].get());
  linear.Touch(la[soi].get());
  expect_agree("after reactivation with new content");

  indexed.MarkFired(ia[0].get(), /*remove_entry=*/true);
  linear.MarkFired(la[0].get(), /*remove_entry=*/true);
  indexed.Remove(ia[2].get());
  linear.Remove(la[2].get());
  expect_agree("after removals");
}

}  // namespace
}  // namespace sorel
