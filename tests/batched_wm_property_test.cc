// Batched-propagation equivalence: with `batched_wm` on, every firing's
// changes reach the matchers as one ChangeBatch (S-nodes evaluate `:test`
// once per touched SOI, TREAT coalesces re-searches, DIPS refreshes once
// per rule) — yet the observable behavior must be bit-identical to the
// per-WME baseline: same firing sequence (rule + recency tags), same
// conflict sets, same final working memory, same time-tag counter. Checked
// for every matcher × strategy over random op sequences with WM-mutating
// rules.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tests/test_util.h"

namespace sorel {
namespace {

/// Deterministic LCG so failures reproduce.
class Rng {
 public:
  explicit Rng(unsigned seed) : state_(seed * 2654435761u + 12345u) {}
  unsigned Next(unsigned bound) {
    state_ = state_ * 1664525u + 1013904223u;
    return (state_ >> 16) % bound;
  }

 private:
  unsigned state_;
};

constexpr std::string_view kSchema = "(literalize player name team score)";

// Tuple-oriented mutating rules: every matcher (TREAT included) runs these.
// Each one drains its own trigger, so capped runs terminate.
constexpr const char* kTupleRules =
    "(p cap { (player ^score > 4) <p> } --> (modify <p> ^score 4))"
    "(p purge-c (player ^team C ^name <n>) --> (remove 1))"
    "(p lone-b { (player ^team B ^name <n>) <p> }"
    " - (player ^team A ^name <n>) --> (modify <p> ^team A))";

// Set-oriented mutating rules (Rete and DIPS only; TREAT rejects set CEs).
// Scores are 0..5, so a passing SOI always has >= 2 members — its recency
// tags can never tie with a single-CE instantiation's.
constexpr const char* kSetRules =
    "(p zero-team { [player ^team <t> ^score <s>] <P> } :scalar (<t>)"
    " :test ((sum <s>) > 8) --> (set-modify <P> ^score 0))";

/// Canonical conflict-set fingerprint (rule name + sorted row signatures).
std::multiset<std::string> Fingerprint(Engine& engine) {
  std::multiset<std::string> out;
  for (InstantiationRef* inst : engine.conflict_set().Entries()) {
    std::vector<Row> rows;
    inst->CollectRows(&rows);
    std::vector<std::string> row_sigs;
    for (const Row& row : rows) {
      std::string sig;
      for (const WmePtr& w : row) {
        sig += std::to_string(w->time_tag());
        sig += ",";
      }
      row_sigs.push_back(std::move(sig));
    }
    std::sort(row_sigs.begin(), row_sigs.end());
    std::string entry = inst->rule().name + "{";
    for (const std::string& s : row_sigs) entry += s + ";";
    entry += "}";
    out.insert(std::move(entry));
  }
  return out;
}

std::string Dump(Engine& engine) {
  std::ostringstream out;
  engine.DumpWm(out);
  return out.str();
}

/// Drives a batched and an unbatched engine through the same random add /
/// remove / run schedule and asserts bit-identical behavior throughout.
void CheckEquivalence(MatcherKind matcher, Strategy strategy, unsigned seed,
                      bool with_set_rules) {
  std::ostringstream batched_trace, unbatched_trace;
  EngineOptions batched_opts, unbatched_opts;
  batched_opts.matcher = unbatched_opts.matcher = matcher;
  batched_opts.strategy = unbatched_opts.strategy = strategy;
  batched_opts.trace_firings = unbatched_opts.trace_firings = true;
  batched_opts.batched_wm = true;
  unbatched_opts.batched_wm = false;
  Engine batched(batched_opts), unbatched(unbatched_opts);
  batched.set_output(&batched_trace);
  unbatched.set_output(&unbatched_trace);
  std::string program = std::string(kSchema) + kTupleRules;
  if (with_set_rules) program += kSetRules;
  MustLoad(batched, program);
  MustLoad(unbatched, program);

  Rng rng(seed);
  static const char* kNames[] = {"ann", "bob", "cyd", "dee"};
  static const char* kTeams[] = {"A", "B", "C"};
  for (int step = 0; step < 36; ++step) {
    // Rule firings mutate the WM, so removal targets come from the live
    // snapshot, not a remembered tag list.
    std::vector<WmePtr> snap = batched.wm().Snapshot();
    if (!snap.empty() && rng.Next(4) == 0) {
      TimeTag tag = snap[rng.Next(static_cast<unsigned>(snap.size()))]
                        ->time_tag();
      ASSERT_NE(unbatched.wm().Find(tag), nullptr) << "step " << step;
      ASSERT_TRUE(batched.RemoveWme(tag).ok());
      ASSERT_TRUE(unbatched.RemoveWme(tag).ok());
    } else {
      const char* name = kNames[rng.Next(4)];
      const char* team = kTeams[rng.Next(3)];
      auto score = static_cast<int64_t>(rng.Next(6));
      for (Engine* e : {&batched, &unbatched}) {
        auto r = e->MakeWme("player", {{"name", e->Sym(name)},
                                       {"team", e->Sym(team)},
                                       {"score", Value::Int(score)}});
        ASSERT_TRUE(r.ok());
      }
    }
    ASSERT_EQ(Fingerprint(batched), Fingerprint(unbatched))
        << "step " << step;
    if (step % 4 == 3) {
      int fired_batched = MustRun(batched, 8);
      int fired_unbatched = MustRun(unbatched, 8);
      ASSERT_EQ(fired_batched, fired_unbatched) << "step " << step;
      ASSERT_EQ(batched_trace.str(), unbatched_trace.str())
          << "step " << step;
      ASSERT_EQ(Fingerprint(batched), Fingerprint(unbatched))
          << "step " << step;
      // Identical firing sequence implies identical modifies, so the
      // monotone tag counters must agree too.
      ASSERT_EQ(batched.wm().next_time_tag(), unbatched.wm().next_time_tag())
          << "step " << step;
      ASSERT_EQ(Dump(batched), Dump(unbatched)) << "step " << step;
    }
  }
  // The ablation really took: firings committed batches on one side only.
  if (batched.run_stats().firings > 0) {
    EXPECT_GT(batched.match_stats().wm.batches, 0u);
  }
  EXPECT_EQ(unbatched.match_stats().wm.batches, 0u);
}

class BatchedWmEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BatchedWmEquivalence, ReteLex) {
  CheckEquivalence(MatcherKind::kRete, Strategy::kLex,
                   static_cast<unsigned>(GetParam()), true);
}

TEST_P(BatchedWmEquivalence, ReteMea) {
  CheckEquivalence(MatcherKind::kRete, Strategy::kMea,
                   static_cast<unsigned>(GetParam()) + 100u, true);
}

TEST_P(BatchedWmEquivalence, TreatLex) {
  CheckEquivalence(MatcherKind::kTreat, Strategy::kLex,
                   static_cast<unsigned>(GetParam()) + 200u, false);
}

TEST_P(BatchedWmEquivalence, TreatMea) {
  CheckEquivalence(MatcherKind::kTreat, Strategy::kMea,
                   static_cast<unsigned>(GetParam()) + 300u, false);
}

TEST_P(BatchedWmEquivalence, DipsLex) {
  CheckEquivalence(MatcherKind::kDips, Strategy::kLex,
                   static_cast<unsigned>(GetParam()) + 400u, true);
}

TEST_P(BatchedWmEquivalence, DipsMea) {
  CheckEquivalence(MatcherKind::kDips, Strategy::kMea,
                   static_cast<unsigned>(GetParam()) + 500u, true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedWmEquivalence, ::testing::Range(0, 8));

}  // namespace
}  // namespace sorel
