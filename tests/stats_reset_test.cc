// Regression test for Engine::ResetMatchStats: every counter a benchmark
// can read — MatchStats sources, run_stats(), rhs_stats(),
// parallel_stats(), and the worker-pool counters — must be zero after a
// reset, so a measured phase is never polluted by its setup. A counter
// added to any Stats struct but missed by ResetMatchStats shows up here as
// a nonzero field after reset.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "tests/test_util.h"

namespace sorel {
namespace {

constexpr const char* kProgram =
    "(literalize player name team score)"
    "(p cap { (player ^score > 4) <p> } --> (modify <p> ^score 4))"
    "(p purge-c (player ^team C ^name <n>) --> (remove 1))"
    "(p pair (player ^name <n> ^team A) (player ^name <n> ^team B)"
    " --> (write pair))"
    "(p zero-team { [player ^team <t> ^score <s>] <P> } :scalar (<t>)"
    " :test ((sum <s>) > 8) --> (set-modify <P> ^score 0))";

constexpr const char* kTreatProgram =
    "(literalize player name team score)"
    "(p cap { (player ^score > 4) <p> } --> (modify <p> ^score 4))"
    "(p purge-c (player ^team C ^name <n>) --> (remove 1))"
    "(p pair (player ^name <n> ^team A) (player ^name <n> ^team B)"
    " --> (write pair))";

/// Loads a workload that bumps counters in every stats source, then
/// resets and checks all of them read zero.
void CheckReset(MatcherKind matcher, int threads) {
  SCOPED_TRACE("matcher=" + std::to_string(static_cast<int>(matcher)) +
               " threads=" + std::to_string(threads));
  EngineOptions opts;
  opts.matcher = matcher;
  opts.match_threads = threads;
  Engine engine(opts);
  std::ostringstream sink;
  engine.set_output(&sink);
  MustLoad(engine,
           matcher == MatcherKind::kTreat ? kTreatProgram : kProgram);
  static const char* kNames[] = {"ann", "bob", "cyd"};
  static const char* kTeams[] = {"A", "B", "C"};
  for (int i = 0; i < 12; ++i) {
    MustMake(engine, "player", {{"name", engine.Sym(kNames[i % 3])},
                                {"team", engine.Sym(kTeams[i % 3])},
                                {"score", Value::Int(5)}});
  }
  MustRun(engine, 16);
  ASSERT_GT(engine.run_stats().firings, 0u);

  engine.ResetMatchStats();
  Engine::MatchStats s = engine.match_stats();

  // ReteStats.
  EXPECT_EQ(s.rete.join_attempts, 0u);
  EXPECT_EQ(s.rete.index_probes, 0u);
  EXPECT_EQ(s.rete.tokens_created, 0u);
  EXPECT_EQ(s.rete.tokens_deleted, 0u);
  EXPECT_EQ(s.rete.right_activations, 0u);
  EXPECT_EQ(s.rete.batches, 0u);
  EXPECT_EQ(s.rete.grouped_removals, 0u);
  EXPECT_EQ(s.rete.token_pool_hits, 0u);
  EXPECT_EQ(s.rete.parallel_batches, 0u);
  EXPECT_EQ(s.rete.replay_tasks, 0u);
  // ConflictSet::Stats.
  EXPECT_EQ(s.select.selects, 0u);
  EXPECT_EQ(s.select.comparisons, 0u);
  // SNode::Stats (aggregated).
  EXPECT_EQ(s.snode.tokens, 0u);
  EXPECT_EQ(s.snode.sends_plus, 0u);
  EXPECT_EQ(s.snode.sends_minus, 0u);
  EXPECT_EQ(s.snode.sends_time, 0u);
  EXPECT_EQ(s.snode.sois_created, 0u);
  EXPECT_EQ(s.snode.sois_deleted, 0u);
  EXPECT_EQ(s.snode.test_evals, 0u);
  EXPECT_EQ(s.snode.batch_flushes, 0u);
  // TreatMatcher::Stats.
  EXPECT_EQ(s.treat.seeded_searches, 0u);
  EXPECT_EQ(s.treat.full_searches, 0u);
  EXPECT_EQ(s.treat.batches, 0u);
  EXPECT_EQ(s.treat.coalesced_researches, 0u);
  // DipsMatcher::Stats.
  EXPECT_EQ(s.dips.refreshes, 0u);
  EXPECT_EQ(s.dips.batches, 0u);
  // WorkingMemory::Stats.
  EXPECT_EQ(s.wm.adds, 0u);
  EXPECT_EQ(s.wm.removes, 0u);
  EXPECT_EQ(s.wm.direct_events, 0u);
  EXPECT_EQ(s.wm.batches, 0u);
  EXPECT_EQ(s.wm.batched_changes, 0u);
  EXPECT_EQ(s.wm.rollbacks, 0u);
  EXPECT_EQ(s.wm.changes_rolled_back, 0u);
  // ThreadPool::Stats: the measured-phase counters reset; `threads` is a
  // property of the pool, not of the phase.
  EXPECT_EQ(s.pool.tasks, 0u);
  EXPECT_EQ(s.pool.batches, 0u);
  EXPECT_EQ(s.pool.max_task_depth, 0u);
  EXPECT_EQ(s.pool.threads, static_cast<uint64_t>(threads));
  // RunStats.
  EXPECT_EQ(engine.run_stats().firings, 0u);
  EXPECT_EQ(engine.run_stats().actions, 0u);
  EXPECT_TRUE(engine.run_stats().firings_by_rule.empty());
  EXPECT_EQ(engine.run_stats().match.rete.join_attempts, 0u);
  // RhsExecutor::Stats.
  EXPECT_EQ(engine.rhs_stats().firings, 0u);
  EXPECT_EQ(engine.rhs_stats().actions, 0u);
  EXPECT_EQ(engine.rhs_stats().wmes_made, 0u);
  EXPECT_EQ(engine.rhs_stats().wmes_removed, 0u);
  EXPECT_EQ(engine.rhs_stats().skipped_dead_targets, 0u);
  // ParallelStats.
  EXPECT_EQ(engine.parallel_stats().cycles, 0u);
  EXPECT_EQ(engine.parallel_stats().firings, 0u);
  EXPECT_EQ(engine.parallel_stats().largest_batch, 0u);
  EXPECT_EQ(engine.parallel_stats().conflicts, 0u);

  // The engine still works after a reset and counts from zero.
  MustMake(engine, "player", {{"name", engine.Sym("eve")},
                              {"team", engine.Sym("C")},
                              {"score", Value::Int(5)}});
  MustRun(engine, 4);
  EXPECT_GT(engine.run_stats().firings, 0u);
}

TEST(StatsResetTest, Rete) { CheckReset(MatcherKind::kRete, 0); }
TEST(StatsResetTest, ReteThreaded) { CheckReset(MatcherKind::kRete, 2); }
TEST(StatsResetTest, Treat) { CheckReset(MatcherKind::kTreat, 0); }
TEST(StatsResetTest, TreatThreaded) { CheckReset(MatcherKind::kTreat, 2); }
TEST(StatsResetTest, Dips) { CheckReset(MatcherKind::kDips, 0); }
TEST(StatsResetTest, DipsThreaded) { CheckReset(MatcherKind::kDips, 2); }

}  // namespace
}  // namespace sorel
