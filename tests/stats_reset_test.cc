// Regression test for Engine::ResetMatchStats: every counter a benchmark
// can read — MatchStats sources, run_stats(), rhs_stats(),
// parallel_stats(), and the worker-pool counters — must be zero after a
// reset, so a measured phase is never polluted by its setup.
//
// The core check is a registry sweep, not a hand-kept field list: the
// engine's MetricRegistry enumerates every registered counter by name, so
// a counter added to any component is covered the moment its constructor
// registers it — including counters this file has never heard of (a
// test-registered canary proves that). The explicit MatchStats field
// checks below it pin the view-struct plumbing on top.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "tests/test_util.h"

namespace sorel {
namespace {

constexpr const char* kProgram =
    "(literalize player name team score)"
    "(p cap { (player ^score > 4) <p> } --> (modify <p> ^score 4))"
    "(p purge-c (player ^team C ^name <n>) --> (remove 1))"
    "(p pair (player ^name <n> ^team A) (player ^name <n> ^team B)"
    " --> (write pair))"
    "(p zero-team { [player ^team <t> ^score <s>] <P> } :scalar (<t>)"
    " :test ((sum <s>) > 8) --> (set-modify <P> ^score 0))";

constexpr const char* kTreatProgram =
    "(literalize player name team score)"
    "(p cap { (player ^score > 4) <p> } --> (modify <p> ^score 4))"
    "(p purge-c (player ^team C ^name <n>) --> (remove 1))"
    "(p pair (player ^name <n> ^team A) (player ^name <n> ^team B)"
    " --> (write pair))";

/// Loads a workload that bumps counters in every stats source, then
/// resets and checks all of them read zero.
void CheckReset(MatcherKind matcher, int threads) {
  SCOPED_TRACE("matcher=" + std::to_string(static_cast<int>(matcher)) +
               " threads=" + std::to_string(threads));
  EngineOptions opts;
  opts.matcher = matcher;
  opts.match_threads = threads;
  // Give the plan matcher a cost-relevant order so its optimizer counters
  // (est_cardinality_error and friends) actually move before the reset.
  if (matcher == MatcherKind::kPlan) opts.join_order = JoinOrder::kOptimized;
  Engine engine(opts);
  std::ostringstream sink;
  engine.set_output(&sink);
  const bool tuple_only =
      matcher == MatcherKind::kTreat || matcher == MatcherKind::kPlan;
  MustLoad(engine, tuple_only ? kTreatProgram : kProgram);
  static const char* kNames[] = {"ann", "bob", "cyd"};
  static const char* kTeams[] = {"A", "B", "C"};
  for (int i = 0; i < 12; ++i) {
    MustMake(engine, "player", {{"name", engine.Sym(kNames[i % 3])},
                                {"team", engine.Sym(kTeams[i % 3])},
                                {"score", Value::Int(5)}});
  }
  MustRun(engine, 16);
  ASSERT_GT(engine.run_stats().firings, 0u);

  // Canary: a counter registered from outside the engine (the way a future
  // component would) must be swept by the same reset. If the registry ever
  // went back to a hand-kept reset list, this is the counter the list
  // would not know about.
  uint64_t canary = 7;
  int canary_owner = 0;
  engine.metrics().RegisterCounter(&canary_owner, "test.canary",
                                   [&canary] { return canary; });
  engine.metrics().RegisterReset(&canary_owner, [&canary] { canary = 0; });

  // Before the reset, the workload must have left tracks: at least one
  // registered counter nonzero (proves the sweep below isn't vacuous).
  std::map<std::string, uint64_t> before = engine.metrics().SnapshotCounters();
  uint64_t total_before = 0;
  for (const auto& [name, value] : before) total_before += value;
  ASSERT_GT(total_before, 0u);

  engine.ResetMatchStats();

  // The registry sweep: every counter any component registered — whatever
  // its name — reads zero after the reset, except pool.threads, which is a
  // property of the pool rather than of the measured phase.
  std::map<std::string, uint64_t> after = engine.metrics().SnapshotCounters();
  for (const std::string& name : engine.metrics().CounterNames()) {
    if (name == "pool.threads") {
      EXPECT_EQ(after[name], static_cast<uint64_t>(threads)) << name;
    } else {
      EXPECT_EQ(after[name], 0u) << "counter '" << name
                                 << "' survived ResetMatchStats";
    }
  }
  EXPECT_EQ(canary, 0u) << "registry reset missed the canary hook";
  engine.metrics().Unregister(&canary_owner);

  Engine::MatchStats s = engine.match_stats();

  // ReteStats.
  EXPECT_EQ(s.rete.join_attempts, 0u);
  EXPECT_EQ(s.rete.index_probes, 0u);
  EXPECT_EQ(s.rete.tokens_created, 0u);
  EXPECT_EQ(s.rete.tokens_deleted, 0u);
  EXPECT_EQ(s.rete.right_activations, 0u);
  EXPECT_EQ(s.rete.batches, 0u);
  EXPECT_EQ(s.rete.grouped_removals, 0u);
  EXPECT_EQ(s.rete.token_pool_hits, 0u);
  EXPECT_EQ(s.rete.parallel_batches, 0u);
  EXPECT_EQ(s.rete.replay_tasks, 0u);
  // ConflictSet::Stats.
  EXPECT_EQ(s.select.selects, 0u);
  EXPECT_EQ(s.select.comparisons, 0u);
  // SNode::Stats (aggregated).
  EXPECT_EQ(s.snode.tokens, 0u);
  EXPECT_EQ(s.snode.sends_plus, 0u);
  EXPECT_EQ(s.snode.sends_minus, 0u);
  EXPECT_EQ(s.snode.sends_time, 0u);
  EXPECT_EQ(s.snode.sois_created, 0u);
  EXPECT_EQ(s.snode.sois_deleted, 0u);
  EXPECT_EQ(s.snode.test_evals, 0u);
  EXPECT_EQ(s.snode.batch_flushes, 0u);
  // TreatMatcher::Stats.
  EXPECT_EQ(s.treat.seeded_searches, 0u);
  EXPECT_EQ(s.treat.full_searches, 0u);
  EXPECT_EQ(s.treat.batches, 0u);
  EXPECT_EQ(s.treat.coalesced_researches, 0u);
  // DipsMatcher::Stats.
  EXPECT_EQ(s.dips.refreshes, 0u);
  EXPECT_EQ(s.dips.batches, 0u);
  // PlanMatcher::Stats.
  EXPECT_EQ(s.plan.join_attempts, 0u);
  EXPECT_EQ(s.plan.reorders, 0u);
  EXPECT_EQ(s.plan.est_cardinality_error, 0u);
  EXPECT_EQ(s.plan.index_builds, 0u);
  EXPECT_EQ(s.plan.seeded_searches, 0u);
  EXPECT_EQ(s.plan.full_searches, 0u);
  EXPECT_EQ(s.plan.batches, 0u);
  // WorkingMemory::Stats.
  EXPECT_EQ(s.wm.adds, 0u);
  EXPECT_EQ(s.wm.removes, 0u);
  EXPECT_EQ(s.wm.direct_events, 0u);
  EXPECT_EQ(s.wm.batches, 0u);
  EXPECT_EQ(s.wm.batched_changes, 0u);
  EXPECT_EQ(s.wm.rollbacks, 0u);
  EXPECT_EQ(s.wm.changes_rolled_back, 0u);
  // ThreadPool::Stats: the measured-phase counters reset; `threads` is a
  // property of the pool, not of the phase.
  EXPECT_EQ(s.pool.tasks, 0u);
  EXPECT_EQ(s.pool.batches, 0u);
  EXPECT_EQ(s.pool.max_task_depth, 0u);
  EXPECT_EQ(s.pool.threads, static_cast<uint64_t>(threads));
  // RunStats.
  EXPECT_EQ(engine.run_stats().firings, 0u);
  EXPECT_EQ(engine.run_stats().actions, 0u);
  EXPECT_TRUE(engine.run_stats().firings_by_rule.empty());
  EXPECT_EQ(engine.run_stats().match.rete.join_attempts, 0u);
  // RhsExecutor::Stats.
  EXPECT_EQ(engine.rhs_stats().firings, 0u);
  EXPECT_EQ(engine.rhs_stats().actions, 0u);
  EXPECT_EQ(engine.rhs_stats().wmes_made, 0u);
  EXPECT_EQ(engine.rhs_stats().wmes_removed, 0u);
  EXPECT_EQ(engine.rhs_stats().skipped_dead_targets, 0u);
  // ParallelStats.
  EXPECT_EQ(engine.parallel_stats().cycles, 0u);
  EXPECT_EQ(engine.parallel_stats().firings, 0u);
  EXPECT_EQ(engine.parallel_stats().largest_batch, 0u);
  EXPECT_EQ(engine.parallel_stats().conflicts, 0u);

  // The engine still works after a reset and counts from zero.
  MustMake(engine, "player", {{"name", engine.Sym("eve")},
                              {"team", engine.Sym("C")},
                              {"score", Value::Int(5)}});
  MustRun(engine, 4);
  EXPECT_GT(engine.run_stats().firings, 0u);
}

TEST(StatsResetTest, Rete) { CheckReset(MatcherKind::kRete, 0); }
TEST(StatsResetTest, ReteThreaded) { CheckReset(MatcherKind::kRete, 2); }
TEST(StatsResetTest, Treat) { CheckReset(MatcherKind::kTreat, 0); }
TEST(StatsResetTest, TreatThreaded) { CheckReset(MatcherKind::kTreat, 2); }
TEST(StatsResetTest, Dips) { CheckReset(MatcherKind::kDips, 0); }
TEST(StatsResetTest, DipsThreaded) { CheckReset(MatcherKind::kDips, 2); }
TEST(StatsResetTest, Plan) { CheckReset(MatcherKind::kPlan, 0); }
TEST(StatsResetTest, PlanThreaded) { CheckReset(MatcherKind::kPlan, 2); }

}  // namespace
}  // namespace sorel
