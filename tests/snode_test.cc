// Figure 3: the S-node algorithm's state machine, γ-memory, and ablations.

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"

namespace sorel {
namespace {

// Single set-CE rule counting per-team players; test passes at >= 2.
constexpr const char* kThresholdRule =
    "(p pair { [player ^team <t> ^name <n>] <P> } :scalar (<t>)"
    " :test ((count <P>) >= 2) --> (write fire))";

class SNodeTest : public ::testing::Test {
 protected:
  SNodeTest() { engine_.set_output(&out_); }

  void Load(const std::string& extra = kThresholdRule) {
    MustLoad(engine_, std::string(kPlayerSchema) + extra);
    snode_ = engine_.snode("pair");
  }

  TimeTag AddPlayer(std::string_view team, std::string_view name) {
    return MustMake(engine_, "player",
                    {{"team", engine_.Sym(std::string(team))},
                     {"name", engine_.Sym(std::string(name))}});
  }

  std::ostringstream out_;
  Engine engine_;
  SNode* snode_ = nullptr;
};

TEST_F(SNodeTest, NewSoiFailingTestStaysInactive) {
  Load();
  AddPlayer("A", "p1");
  ASSERT_EQ(snode_->num_sois(), 1u);
  EXPECT_FALSE(snode_->sois()[0]->active());
  EXPECT_EQ(engine_.conflict_set().size(), 0u);
  EXPECT_EQ(snode_->stats().sends_plus, 0u);
}

TEST_F(SNodeTest, ThresholdCrossingActivates) {
  Load();
  AddPlayer("A", "p1");
  AddPlayer("A", "p2");
  ASSERT_EQ(snode_->num_sois(), 1u);
  EXPECT_TRUE(snode_->sois()[0]->active());
  EXPECT_EQ(snode_->sois()[0]->size(), 2u);
  EXPECT_EQ(engine_.conflict_set().size(), 1u);
  EXPECT_EQ(snode_->stats().sends_plus, 1u);
}

TEST_F(SNodeTest, RemovalBelowThresholdDeactivates) {
  Load();
  AddPlayer("A", "p1");
  TimeTag second = AddPlayer("A", "p2");
  ASSERT_TRUE(engine_.RemoveWme(second).ok());
  ASSERT_EQ(snode_->num_sois(), 1u);
  EXPECT_FALSE(snode_->sois()[0]->active());
  EXPECT_EQ(engine_.conflict_set().size(), 0u);
  EXPECT_EQ(snode_->stats().sends_minus, 1u);
}

TEST_F(SNodeTest, LastMemberRemovalDeletesSoi) {
  Load();
  TimeTag only = AddPlayer("A", "p1");
  ASSERT_EQ(snode_->num_sois(), 1u);
  ASSERT_TRUE(engine_.RemoveWme(only).ok());
  EXPECT_EQ(snode_->num_sois(), 0u);
  EXPECT_EQ(snode_->stats().sois_deleted, 1u);
}

TEST_F(SNodeTest, HeadInsertionSendsTimeToken) {
  Load();
  AddPlayer("A", "p1");
  AddPlayer("A", "p2");  // activates
  uint64_t time_before = snode_->stats().sends_time;
  AddPlayer("A", "p3");  // newest: head insertion on an active SOI
  EXPECT_EQ(snode_->stats().sends_time, time_before + 1);
  EXPECT_EQ(engine_.conflict_set().size(), 1u);  // still one SOI
}

TEST_F(SNodeTest, HeadRemovalRepositions) {
  Load();
  AddPlayer("A", "p1");
  AddPlayer("A", "p2");
  TimeTag newest = AddPlayer("A", "p3");
  uint64_t time_before = snode_->stats().sends_time;
  ASSERT_TRUE(engine_.RemoveWme(newest).ok());  // head removal, still >= 2
  EXPECT_EQ(snode_->stats().sends_time, time_before + 1);
  EXPECT_TRUE(snode_->sois()[0]->active());
}

TEST_F(SNodeTest, ScalarClausePartitionsByValue) {
  Load();
  AddPlayer("A", "p1");
  AddPlayer("B", "p2");
  AddPlayer("B", "p3");
  EXPECT_EQ(snode_->num_sois(), 2u);
  EXPECT_EQ(engine_.conflict_set().size(), 1u);  // only team B passes
}

TEST_F(SNodeTest, FiredSoiBecomesEligibleAgainOnChange) {
  Load();
  AddPlayer("A", "p1");
  AddPlayer("A", "p2");
  EXPECT_EQ(MustRun(engine_), 1);
  EXPECT_EQ(engine_.conflict_set().EligibleCount(), 0u);
  AddPlayer("A", "p3");  // γ-memory change -> eligible again (§6)
  EXPECT_EQ(engine_.conflict_set().EligibleCount(), 1u);
  EXPECT_EQ(MustRun(engine_), 1);
}

TEST_F(SNodeTest, NonHeadChangeAlsoRestoresEligibility) {
  Load();
  AddPlayer("A", "p1");
  TimeTag middle = AddPlayer("A", "p2");
  AddPlayer("A", "p3");
  EXPECT_EQ(MustRun(engine_), 1);
  // Removing a non-head member is a same-time change; §6 still makes the
  // SOI eligible (our documented completion of Figure 3).
  ASSERT_TRUE(engine_.RemoveWme(middle).ok());
  EXPECT_EQ(engine_.conflict_set().EligibleCount(), 1u);
}

TEST_F(SNodeTest, ReactivationAfterFailure) {
  Load();
  AddPlayer("A", "p1");
  TimeTag second = AddPlayer("A", "p2");
  ASSERT_TRUE(engine_.RemoveWme(second).ok());  // below threshold
  EXPECT_FALSE(snode_->sois()[0]->active());
  AddPlayer("A", "p4");  // back to 2
  EXPECT_TRUE(snode_->sois()[0]->active());
  EXPECT_EQ(engine_.conflict_set().size(), 1u);
}

TEST_F(SNodeTest, MembersOrderedByDescendingRecency) {
  Load();
  AddPlayer("A", "p1");
  AddPlayer("A", "p2");
  AddPlayer("A", "p3");
  const Soi* soi = snode_->sois()[0];
  ASSERT_EQ(soi->size(), 3u);
  EXPECT_GT(soi->members()[0].rec[0], soi->members()[1].rec[0]);
  EXPECT_GT(soi->members()[1].rec[0], soi->members()[2].rec[0]);
}

TEST_F(SNodeTest, TypeErrorInTestIsRecordedAndFails) {
  Load("(p pair { [player ^name <n>] <P> } :test ((sum <n>) > 5)"
       " --> (write fire))");
  AddPlayer("A", "alice");  // sum over a symbol domain: runtime type error
  EXPECT_EQ(engine_.conflict_set().size(), 0u);
  EXPECT_FALSE(snode_->last_error().ok());
}

TEST_F(SNodeTest, MinMaxSumAvgInTest) {
  MustLoad(engine_,
           "(literalize item price)"
           "(p pair { [item ^price <p>] <I> }"
           " :test (((min <p>) >= 10) and ((max <p>) <= 100)"
           "        and ((sum <p>) > 50) and ((avg <p>) < 60))"
           " --> (write ok))");
  snode_ = engine_.snode("pair");
  MustMake(engine_, "item", {{"price", Value::Int(10)}});
  EXPECT_EQ(engine_.conflict_set().size(), 0u);  // sum 10 fails
  MustMake(engine_, "item", {{"price", Value::Int(50)}});
  EXPECT_EQ(engine_.conflict_set().size(), 1u);  // sum 60, avg 30
  MustMake(engine_, "item", {{"price", Value::Int(101)}});
  EXPECT_EQ(engine_.conflict_set().size(), 0u);  // max fails
}

// Ablation options must not change behaviour, only cost (bench_fig3).
class SNodeAblation : public ::testing::TestWithParam<int> {};

TEST_P(SNodeAblation, OptionsPreserveSemantics) {
  EngineOptions options;
  options.snode.recompute_aggregates = (GetParam() & 1) != 0;
  options.snode.linear_scan_gamma = (GetParam() & 2) != 0;
  Engine engine(options);
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p RemoveDups"
                       " { [player ^name <n> ^team <t>] <P> }"
                       " :scalar (<n> <t>)"
                       " :test ((count <P>) > 1) -->"
                       " (bind <First> true)"
                       " (foreach <P> descending"
                       "   (if (<First> == true) (bind <First> false)"
                       "    else (remove <P>))))");
  MakeFigure1Wm(engine);
  EXPECT_EQ(MustRun(engine), 1);
  EXPECT_EQ(engine.wm().size(), 4u);
  EXPECT_EQ(engine.wm().Find(3), nullptr);
}

INSTANTIATE_TEST_SUITE_P(AllCombos, SNodeAblation, ::testing::Range(0, 4));

}  // namespace
}  // namespace sorel
