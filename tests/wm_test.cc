#include <gtest/gtest.h>

#include "wm/schema.h"
#include "wm/wme.h"
#include "wm/working_memory.h"

namespace sorel {
namespace {

class WmTest : public ::testing::Test {
 protected:
  WmTest() : wm_(&schemas_, &symbols_) {
    player_ = symbols_.Intern("player");
    name_ = symbols_.Intern("name");
    team_ = symbols_.Intern("team");
    EXPECT_TRUE(schemas_.Declare(player_, {name_, team_}, symbols_).ok());
  }

  Value Sym(std::string_view s) { return Value::Symbol(symbols_.Intern(s)); }

  SymbolTable symbols_;
  SchemaRegistry schemas_;
  WorkingMemory wm_;
  SymbolId player_, name_, team_;
};

TEST_F(WmTest, SchemaFieldLookup) {
  const ClassSchema* s = schemas_.Find(player_);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->FieldOf(name_), 0);
  EXPECT_EQ(s->FieldOf(team_), 1);
  EXPECT_EQ(s->FieldOf(symbols_.Intern("ghost")), -1);
}

TEST_F(WmTest, RedeclareIdenticalOk) {
  EXPECT_TRUE(schemas_.Declare(player_, {name_, team_}, symbols_).ok());
}

TEST_F(WmTest, RedeclareDifferentFails) {
  EXPECT_FALSE(schemas_.Declare(player_, {team_}, symbols_).ok());
}

TEST_F(WmTest, MakeAssignsIncreasingTimeTags) {
  auto a = wm_.Make(player_, {{name_, Sym("Jack")}});
  auto b = wm_.Make(player_, {{name_, Sym("Sue")}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT((*a)->time_tag(), (*b)->time_tag());
  EXPECT_EQ(wm_.size(), 2u);
}

TEST_F(WmTest, UnmentionedAttributesAreNil) {
  auto a = wm_.Make(player_, {{name_, Sym("Jack")}});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->field(1), Value::Nil());
}

TEST_F(WmTest, MakeUnknownClassFails) {
  auto r = wm_.Make(symbols_.Intern("ghost"), {});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WmTest, MakeUnknownAttributeFails) {
  auto r = wm_.Make(player_, {{symbols_.Intern("salary"), Value::Int(1)}});
  EXPECT_FALSE(r.ok());
}

TEST_F(WmTest, RemoveByTag) {
  auto a = wm_.Make(player_, {{name_, Sym("Jack")}});
  ASSERT_TRUE(a.ok());
  TimeTag tag = (*a)->time_tag();
  EXPECT_TRUE(wm_.Remove(tag).ok());
  EXPECT_EQ(wm_.size(), 0u);
  EXPECT_EQ(wm_.Find(tag), nullptr);
  EXPECT_EQ(wm_.Remove(tag).code(), StatusCode::kNotFound);
}

TEST_F(WmTest, TimeTagsNeverReused) {
  auto a = wm_.Make(player_, {});
  TimeTag first = (*a)->time_tag();
  ASSERT_TRUE(wm_.Remove(first).ok());
  auto b = wm_.Make(player_, {});
  EXPECT_GT((*b)->time_tag(), first);
}

class CountingListener : public WorkingMemory::Listener {
 public:
  void OnAdd(const WmePtr&) override { ++adds; }
  void OnRemove(const WmePtr&) override { ++removes; }
  int adds = 0, removes = 0;
};

TEST_F(WmTest, ListenersNotified) {
  CountingListener l;
  wm_.AddListener(&l);
  auto a = wm_.Make(player_, {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(wm_.Remove((*a)->time_tag()).ok());
  EXPECT_EQ(l.adds, 1);
  EXPECT_EQ(l.removes, 1);
  wm_.RemoveListener(&l);
  ASSERT_TRUE(wm_.Make(player_, {}).ok());
  EXPECT_EQ(l.adds, 1);
}

TEST_F(WmTest, SnapshotInTagOrder) {
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(wm_.Make(player_, {}).ok());
  auto snap = wm_.Snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1]->time_tag(), snap[i]->time_tag());
  }
}

TEST_F(WmTest, WmeToString) {
  auto a = wm_.Make(player_, {{name_, Sym("Jack")}, {team_, Sym("A")}});
  const ClassSchema* s = schemas_.Find(player_);
  EXPECT_EQ((*a)->ToString(symbols_, *s),
            std::to_string((*a)->time_tag()) + ": (player ^name Jack ^team A)");
}

}  // namespace
}  // namespace sorel
