// JsonReport: the machine-readable bench output must stay valid JSON even
// when labels and keys carry quotes, backslashes, or control characters.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bench/bench_util.h"

namespace sorel {
namespace {

std::string Render(const bench::JsonReport& report) {
  std::ostringstream out;
  report.WriteTo(out);
  return out.str();
}

TEST(JsonReportTest, PlainReportShape) {
  bench::JsonReport report("demo");
  report.Config("wmes", 100);
  report.BeginRow("baseline");
  report.Value("wall_ms", 1.5);
  report.BeginRow("threads=4");
  report.Value("wall_ms", 0.5);
  std::string json = Render(report);
  EXPECT_NE(json.find("\"bench\": \"demo\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"wmes\": 100"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"label\": \"baseline\", \"wall_ms\": 1.5}"),
            std::string::npos)
      << json;
  // Rows are comma-separated; the last has no trailing comma.
  EXPECT_NE(json.find("\"wall_ms\": 1.5},"), std::string::npos) << json;
  EXPECT_NE(json.find("\"wall_ms\": 0.5}\n"), std::string::npos) << json;
}

TEST(JsonReportTest, EscapesQuotesAndBackslashes) {
  bench::JsonReport report("quo\"te");
  report.BeginRow("back\\slash \"quoted\"");
  report.Value("key\"with\\both", 1);
  std::string json = Render(report);
  EXPECT_NE(json.find("\"bench\": \"quo\\\"te\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"label\": \"back\\\\slash \\\"quoted\\\"\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"key\\\"with\\\\both\": 1"), std::string::npos)
      << json;
  // No raw (unescaped) quote or backslash may survive inside a string:
  // every '"' in the output must be structural or preceded by '\'.
  for (size_t i = json.find("quo"); i < json.size(); ++i) {
    if (json[i] == '\\') {
      ASSERT_LT(i + 1, json.size());
      char next = json[i + 1];
      EXPECT_TRUE(next == '\\' || next == '"' || next == 'n' ||
                  next == 't' || next == 'r' || next == 'u')
          << "stray backslash at " << i << " in " << json;
      ++i;  // skip the escaped character
    }
  }
}

TEST(JsonReportTest, EscapesControlCharacters) {
  bench::JsonReport report("ctl");
  report.BeginRow("line1\nline2\ttab\rcr\x01" "bel");
  report.Value("v", 2);
  std::string json = Render(report);
  EXPECT_NE(json.find("line1\\nline2\\ttab\\rcr\\u0001bel"),
            std::string::npos)
      << json;
  // The rendered report must not contain raw control bytes.
  for (char c : json) {
    EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20) << json;
  }
}

TEST(JsonReportTest, NumbersStayCompact) {
  bench::JsonReport report("num");
  report.BeginRow("r");
  report.Value("integral", 42.0);
  report.Value("fractional", 0.125);
  std::string json = Render(report);
  EXPECT_NE(json.find("\"integral\": 42"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"integral\": 42.0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fractional\": 0.125"), std::string::npos) << json;
}

}  // namespace
}  // namespace sorel
