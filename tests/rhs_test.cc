// RHS executor: foreach semantics (§6), set actions, bind/if, write, and
// runtime edge cases.

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"

namespace sorel {
namespace {

class RhsTest : public ::testing::Test {
 protected:
  RhsTest() { engine_.set_output(&out_); }

  std::ostringstream out_;
  Engine engine_;
};

TEST_F(RhsTest, ForeachDefaultOrderIsConflictSetOrder) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p r [player ^name <n>] -->"
                        " (foreach <n> (write <n>)))");
  MustMake(engine_, "player", {{"name", engine_.Sym("first")}});
  MustMake(engine_, "player", {{"name", engine_.Sym("second")}});
  MustMake(engine_, "player", {{"name", engine_.Sym("third")}});
  MustRun(engine_, 1);
  // Most recent first.
  EXPECT_EQ(out_.str(), "third second first");
}

TEST_F(RhsTest, ForeachAscendingSortsByName) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p r [player ^name <n>] -->"
                        " (foreach <n> ascending (write <n>)))");
  MustMake(engine_, "player", {{"name", engine_.Sym("zebra")}});
  MustMake(engine_, "player", {{"name", engine_.Sym("apple")}});
  MustMake(engine_, "player", {{"name", engine_.Sym("mango")}});
  MustRun(engine_, 1);
  EXPECT_EQ(out_.str(), "apple mango zebra");
}

TEST_F(RhsTest, ForeachDescendingNumeric) {
  MustLoad(engine_,
           "(literalize item price)"
           "(p r [item ^price <p>] -->"
           " (foreach <p> descending (write <p>)))");
  MustMake(engine_, "item", {{"price", Value::Int(10)}});
  MustMake(engine_, "item", {{"price", Value::Int(30)}});
  MustMake(engine_, "item", {{"price", Value::Int(20)}});
  MustRun(engine_, 1);
  EXPECT_EQ(out_.str(), "30 20 10");
}

TEST_F(RhsTest, ForeachOverElementVarBindsCeVariablesScalar) {
  // §6.2: inside foreach over a CE element variable, all PVs of that CE
  // are treated as regular PVs.
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p r { [player ^name <n> ^team <t>] <P> } -->"
                        " (foreach <P> ascending (write <n> <t> (crlf))))");
  MustMake(engine_, "player", {{"name", engine_.Sym("a")},
                               {"team", engine_.Sym("X")}});
  MustMake(engine_, "player", {{"name", engine_.Sym("b")},
                               {"team", engine_.Sym("Y")}});
  MustRun(engine_, 1);
  EXPECT_EQ(out_.str(), "a X\nb Y\n");
}

TEST_F(RhsTest, ForeachElementDistinctWmesNotValues) {
  // Two WMEs with identical values iterate twice over a CE variable
  // (distinct time tags), but once over a value variable (§6.1 vs §6.2).
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p byelem { [player ^name <n>] <P> } -->"
                        " (foreach <P> (write tick)))"
                        "(p byvalue [player ^name <m>] -->"
                        " (foreach <m> (write tock)))");
  MustMake(engine_, "player", {{"name", engine_.Sym("same")}});
  MustMake(engine_, "player", {{"name", engine_.Sym("same")}});
  MustRun(engine_);
  std::string text = out_.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), 'i'), 2);  // two ticks
  EXPECT_EQ(std::count(text.begin(), text.end(), 'o'), 1);  // one tock
}

TEST_F(RhsTest, NestedForeachComposesSelections) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p r [player ^team <t> ^name <n>] -->"
                        " (foreach <t> ascending"
                        "   (foreach <n> ascending (write <t> <n> (crlf)))))");
  MakeFigure1Wm(engine_);
  MustRun(engine_, 1);
  EXPECT_EQ(out_.str(), "A Jack\nA Janice\nB Jack\nB Sue\n");
}

TEST_F(RhsTest, BindPersistsAcrossForeachIterations) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p r [player ^name <n>] -->"
                        " (bind <i> 0)"
                        " (foreach <n> (bind <i> (<i> + 1)))"
                        " (write <i>))");
  MakeFigure1Wm(engine_);
  MustRun(engine_, 1);
  EXPECT_EQ(out_.str(), "3");  // three distinct names
}

TEST_F(RhsTest, IfElseBranches) {
  MustLoad(engine_,
           "(literalize reading value)"
           "(p r (reading ^value <v>) -->"
           " (if (<v> > 10) (write high) else (write low)))");
  MustMake(engine_, "reading", {{"value", Value::Int(5)}});
  MustMake(engine_, "reading", {{"value", Value::Int(15)}});
  MustRun(engine_);
  EXPECT_EQ(out_.str(), "high low");  // recency order: 15 first
}

TEST_F(RhsTest, MakeWithComputedValues) {
  MustLoad(engine_,
           "(literalize src v)(literalize dst v doubled)"
           "(p r (src ^v <v>) --> (make dst ^v <v> ^doubled (<v> * 2)))");
  MustMake(engine_, "src", {{"v", Value::Int(21)}});
  MustRun(engine_);
  auto snap = engine_.wm().Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[1]->field(1), Value::Int(42));
}

TEST_F(RhsTest, SetModifyTouchesEachDistinctWmeOnce) {
  MustLoad(engine_,
           "(literalize item flag)(literalize go)"
           "(p r (go) { [item] <I> } --> (remove 1)"
           " (set-modify <I> ^flag done))");
  for (int i = 0; i < 4; ++i) MustMake(engine_, "item", {});
  MustMake(engine_, "go", {});
  EXPECT_EQ(MustRun(engine_, 3), 1);
  EXPECT_EQ(engine_.wm().size(), 4u);
  for (const WmePtr& w : engine_.wm().Snapshot()) {
    EXPECT_EQ(w->field(0), engine_.Sym("done"));
  }
}

TEST_F(RhsTest, DeadTargetsAreSkippedNotFatal) {
  // The same WME reachable through two groups: second remove is a no-op.
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p r { [player ^name <n>] <P> } -->"
                        " (foreach <P> (remove <P>))"
                        " (foreach <P> (remove <P>)))");
  MustMake(engine_, "player", {{"name", engine_.Sym("x")}});
  EXPECT_EQ(MustRun(engine_, 2), 1);
  EXPECT_EQ(engine_.wm().size(), 0u);
  EXPECT_EQ(engine_.rhs_stats().skipped_dead_targets, 1u);
}

TEST_F(RhsTest, WriteFormatsValuesAndCrlf) {
  MustLoad(engine_,
           "(literalize m)"
           "(p r (m) --> (write a 1 2.5 (crlf) b (crlf)))");
  MustMake(engine_, "m", {});
  MustRun(engine_);
  EXPECT_EQ(out_.str(), "a 1 2.5\nb\n");
}

TEST_F(RhsTest, ActionsCountedPerFiring) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p r { [player ^team B] <B> } --> (set-remove <B>))");
  MakeFigure1Wm(engine_);
  MustRun(engine_, 1);
  // set-remove expands to one primitive action per distinct WME (3 B
  // players) — the paper's "actions per firing" measure (§1).
  EXPECT_EQ(engine_.run_stats().actions, 3u);
  EXPECT_EQ(engine_.run_stats().firings, 1u);
}

TEST_F(RhsTest, ModifyInsideForeachOverElement) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p r { [player ^team A ^name <n>] <P> } -->"
                        " (foreach <P> (modify <P> ^team B)))");
  MakeFigure1Wm(engine_);
  EXPECT_EQ(MustRun(engine_, 1), 1);
  SymbolId team = engine_.symbols().Intern("team");
  int team_b = 0;
  for (const WmePtr& w : engine_.wm().Snapshot()) {
    const ClassSchema* s = engine_.schemas().Find(w->cls());
    if (w->field(s->FieldOf(team)) == engine_.Sym("B")) ++team_b;
  }
  EXPECT_EQ(team_b, 5);
}

TEST_F(RhsTest, HaltInsideForeachStopsEverything) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p r [player ^name <n>] -->"
                        " (foreach <n> (write x) (halt) (write y))"
                        " (write z))");
  MakeFigure1Wm(engine_);
  MustRun(engine_);
  EXPECT_TRUE(engine_.halted());
  EXPECT_EQ(out_.str(), "x");
}

}  // namespace
}  // namespace sorel
