#include <gtest/gtest.h>

#include "rdb/query.h"

namespace sorel {
namespace rdb {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() {
    eng_ = Value::Symbol(symbols_.Intern("eng"));
    ops_ = Value::Symbol(symbols_.Intern("ops"));
    employees_ = Relation{RelSchema({"id", "dept", "salary"})};
    struct RowSpec {
      int id;
      Value dept;
      int salary;
    };
    for (const auto& [id, dept, salary] :
         {RowSpec{1, eng_, 100}, RowSpec{2, eng_, 150}, RowSpec{3, ops_, 90},
          RowSpec{4, ops_, 90}, RowSpec{5, eng_, 120}}) {
      EXPECT_TRUE(employees_
                      .Insert({Value::Int(id), dept, Value::Int(salary)})
                      .ok());
    }
    depts_ = Relation{RelSchema({"dept2", "floor"})};
    EXPECT_TRUE(depts_.Insert({eng_, Value::Int(110)}).ok());
    EXPECT_TRUE(depts_.Insert({ops_, Value::Int(80)}).ok());
  }

  SymbolTable symbols_;
  Value eng_, ops_;
  Relation employees_, depts_;
};

TEST_F(QueryTest, WhereProjectOrder) {
  auto result = Query(employees_)
                    .Where("salary", TestPred::kGe, Value::Int(100))
                    .Project({"id"})
                    .OrderBy({"id"})
                    .Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 3u);
  EXPECT_EQ(result->At(0, 0), Value::Int(1));
  EXPECT_EQ(result->At(2, 0), Value::Int(5));
}

TEST_F(QueryTest, JoinWithResidual) {
  // Employees earning above their department floor.
  auto result =
      Query(employees_)
          .Join(depts_, {{"dept", "dept2"}},
                [](const Tuple& l, const Tuple& r) {
                  return EvalTestPred(TestPred::kGt, l[2], r[1]);
                })
          .Project({"id"})
          .OrderBy({"id"})
          .Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // eng floor 110: ids 2, 5; ops floor 80: ids 3, 4.
  EXPECT_EQ(result->size(), 4u);
  EXPECT_EQ(result->At(0, 0), Value::Int(2));
}

TEST_F(QueryTest, GroupByPipeline) {
  std::vector<AggColumn> aggs;
  aggs.push_back({AggOp::kAvg, "salary", "mean", false});
  aggs.push_back({AggOp::kCount, "", "n", true});
  auto result = Query(employees_)
                    .GroupBy({"dept"}, aggs)
                    .OrderBy({"dept"})
                    .Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 2u);
  // Interning order: eng first.
  EXPECT_EQ(result->At(0, 0), eng_);
  EXPECT_EQ(result->At(0, 1), Value::Float((100.0 + 150.0 + 120.0) / 3));
  EXPECT_EQ(result->At(0, 2), Value::Int(3));
  EXPECT_EQ(result->At(1, 2), Value::Int(2));
}

TEST_F(QueryTest, AntiJoinAndDistinct) {
  Relation banned{RelSchema({"dept3"})};
  ASSERT_TRUE(banned.Insert({eng_}).ok());
  auto result = Query(employees_)
                    .AntiJoin(banned, {{"dept", "dept3"}})
                    .Project({"salary"})
                    .Distinct()
                    .Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 1u);  // the two ops rows share salary 90
  EXPECT_EQ(result->At(0, 0), Value::Int(90));
}

TEST_F(QueryTest, RenameAvoidsJoinCollision) {
  auto result = Query(employees_)
                    .Rename({{"dept", "d"}})
                    .Join(depts_, {{"d", "dept2"}})
                    .Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 5u);
  EXPECT_GE(result->schema().IndexOf("floor"), 0);
}

TEST_F(QueryTest, ErrorsAbortThePipeline) {
  auto result = Query(employees_)
                    .Where("ghost", TestPred::kEq, Value::Int(1))
                    .Project({"id"})
                    .Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryTest, SnapshotSemantics) {
  // The query captured its input by value: mutating the source afterwards
  // does not change the result.
  Query q = Query(employees_);
  ASSERT_TRUE(
      employees_.Insert({Value::Int(9), eng_, Value::Int(999)}).ok());
  auto result = std::move(q).Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
}

TEST_F(QueryTest, CustomRowPredicate) {
  auto result = Query(employees_)
                    .Where([](const Tuple& row) {
                      return row[2].as_int() % 20 == 10;  // 90, 150
                    })
                    .Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);  // 150, 90, 90
}

}  // namespace
}  // namespace rdb
}  // namespace sorel
