// Rule excision (OPS5 excise) across all three matchers, plus WM dumps and
// network introspection.

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"

namespace sorel {
namespace {

class ExciseTest : public ::testing::TestWithParam<MatcherKind> {
 protected:
  ExciseTest() : engine_(MakeOptions()) { engine_.set_output(&out_); }

  EngineOptions MakeOptions() {
    EngineOptions options;
    options.matcher = GetParam();
    return options;
  }

  std::ostringstream out_;
  Engine engine_;
};

TEST_P(ExciseTest, RemovesInstantiationsAndStopsMatching) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p keep (player ^team A) --> (bind <x> 1))"
                        "(p gone (player ^team B) --> (bind <x> 1))");
  MakeFigure1Wm(engine_);
  EXPECT_EQ(engine_.conflict_set().size(), 5u);
  ASSERT_TRUE(engine_.ExciseRule("gone").ok());
  EXPECT_EQ(engine_.conflict_set().size(), 2u);  // only `keep`
  EXPECT_EQ(engine_.FindRule("gone"), nullptr);
  // New WMEs no longer match the excised rule.
  MustMake(engine_, "player", {{"team", engine_.Sym("B")}});
  EXPECT_EQ(engine_.conflict_set().size(), 2u);
  EXPECT_EQ(MustRun(engine_), 2);
}

TEST_P(ExciseTest, ExciseUnknownRuleFails) {
  EXPECT_EQ(engine_.ExciseRule("ghost").code(), StatusCode::kNotFound);
}

TEST_P(ExciseTest, RuleCanBeReloadedAfterExcise) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p r (player) --> (bind <x> 1))");
  MakeFigure1Wm(engine_);
  ASSERT_TRUE(engine_.ExciseRule("r").ok());
  MustLoad(engine_, "(p r (player ^team A) --> (bind <x> 1))");
  EXPECT_EQ(engine_.conflict_set().size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllMatchers, ExciseTest,
                         ::testing::Values(MatcherKind::kRete,
                                           MatcherKind::kTreat,
                                           MatcherKind::kDips));

TEST(ExciseReteTest, FreesTokensAndKeepsSharedAlphaAlive) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p r1 (player ^team A) (player ^team B) --> (halt))"
                       "(p r2 (player ^team A) --> (halt))");
  MakeFigure1Wm(engine);
  size_t tokens_before = engine.rete_matcher()->live_tokens();
  ASSERT_TRUE(engine.ExciseRule("r1").ok());
  EXPECT_LT(engine.rete_matcher()->live_tokens(), tokens_before);
  EXPECT_EQ(engine.conflict_set().size(), 2u);  // r2's two A players
  // The shared alpha memory still feeds r2.
  MustMake(engine, "player", {{"team", engine.Sym("A")}});
  EXPECT_EQ(engine.conflict_set().size(), 3u);
}

TEST(ExciseReteTest, SetRuleExciseDropsSois) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p s [player ^name <n>] --> (bind <x> 1))");
  MakeFigure1Wm(engine);
  ASSERT_NE(engine.snode("s"), nullptr);
  ASSERT_TRUE(engine.ExciseRule("s").ok());
  EXPECT_EQ(engine.snode("s"), nullptr);
  EXPECT_EQ(engine.conflict_set().size(), 0u);
  EXPECT_EQ(engine.rete_matcher()->live_tokens(), 0u);
}

TEST(DumpWmTest, RoundTripsThroughStartup) {
  Engine engine;
  std::ostringstream devnull;
  engine.set_output(&devnull);
  MustLoad(engine, std::string(kPlayerSchema));
  MustMake(engine, "player", {{"name", engine.Sym("Jack")},
                              {"team", engine.Sym("A")}});
  MustMake(engine, "player", {{"name", engine.Sym("two words")},
                              {"team", engine.Sym("B")}});
  MustMake(engine, "player", {});  // all-nil fields
  std::ostringstream dump;
  engine.DumpWm(dump);

  Engine fresh;
  fresh.set_output(&devnull);
  MustLoad(fresh, std::string(kPlayerSchema));
  ASSERT_TRUE(fresh.LoadString(dump.str()).ok()) << dump.str();
  EXPECT_EQ(fresh.wm().size(), 3u);
  // Contents identical (modulo time tags).
  auto render = [](Engine& e) {
    std::string out;
    for (const WmePtr& w : e.wm().Snapshot()) {
      const ClassSchema* s = e.schemas().Find(w->cls());
      std::string line = w->ToString(e.symbols(), *s);
      out += line.substr(line.find(' ')) + "\n";  // strip the tag
    }
    return out;
  };
  EXPECT_EQ(render(engine), render(fresh));
}

TEST(NetworkDumpTest, ShowsAlphaSharingAndChains) {
  Engine engine;
  std::ostringstream devnull;
  engine.set_output(&devnull);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p r1 (player ^team A) (player ^team B) --> (halt))"
                       "(p r2 [player ^team A] - (player ^team C)"
                       " --> (bind <x> 1))");
  MakeFigure1Wm(engine);
  std::ostringstream dump;
  engine.rete_matcher()->DumpNetwork(dump, engine.symbols());
  std::string text = dump.str();
  EXPECT_NE(text.find("alpha network:"), std::string::npos);
  EXPECT_NE(text.find("rule r1:"), std::string::npos);
  EXPECT_NE(text.find("-> S-node"), std::string::npos);
  EXPECT_NE(text.find("-> P-node"), std::string::npos);
  EXPECT_NE(text.find("neg("), std::string::npos);
}

}  // namespace
}  // namespace sorel
