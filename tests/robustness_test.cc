// Robustness: hostile inputs must produce Status errors, never crashes or
// hangs; runtime errors must leave the engine usable.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "lang/lexer.h"
#include "lang/parser.h"
#include "tests/test_util.h"

namespace sorel {
namespace {

class FuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSweep, LexerNeverCrashesOnRandomBytes) {
  unsigned state = static_cast<unsigned>(GetParam()) * 2654435761u + 7u;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (int round = 0; round < 50; ++round) {
    std::string input;
    size_t len = next() % 200;
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(next() % 256));
    }
    auto result = Lex(input);  // must return, ok or error
    (void)result;
  }
}

TEST_P(FuzzSweep, ParserNeverCrashesOnTokenSoup) {
  // Random sequences of *valid* tokens stress the grammar paths.
  static const char* kAtoms[] = {"(",  ")",   "[",  "]",    "{",    "}",
                                 "p",  "-->", "<x>", "^a",  "<<",   ">>",
                                 "42", "-",   ":test", ":scalar", "foo",
                                 "<",  ">",   "=",  "<>",   "make", "foreach"};
  unsigned state = static_cast<unsigned>(GetParam()) * 40503u + 3u;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (int round = 0; round < 50; ++round) {
    std::string input;
    size_t len = next() % 60;
    for (size_t i = 0; i < len; ++i) {
      input += kAtoms[next() % (sizeof(kAtoms) / sizeof(kAtoms[0]))];
      input += " ";
    }
    auto result = Parse(input);
    (void)result;
  }
}

TEST_P(FuzzSweep, TruncatedValidProgramsError) {
  std::string program =
      "(literalize player name team)"
      "(p r { [player ^name <n> ^team << A B >>] <P> } :scalar (<n>)"
      " :test ((count <P>) > 1) --> (foreach <P> descending"
      " (if (1 < 2) (remove <P>) else (write <n> (crlf)))))";
  size_t cut = static_cast<size_t>(GetParam()) * program.size() / 12;
  if (cut >= program.size()) cut = program.size() - 1;
  auto result = Parse(program.substr(0, cut));
  if (cut > 0) {
    EXPECT_FALSE(result.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(0, 12));

TEST(RobustnessTest, DeeplyNestedExpressionsParse) {
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  auto program =
      Parse("(literalize m)(p r (m) --> (bind <x> " + expr + "))");
  EXPECT_TRUE(program.ok());
}

TEST(RobustnessTest, RuntimeErrorPropagatesAndEngineStaysUsable) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  // ^team is a symbol at run time; (<t> + 1) is a runtime type error.
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p bad (player ^team <t>) --> (bind <x> (<t> + 1)))"
                       "(p good (player ^name <n>) --> (write <n>))");
  MustMake(engine, "player", {{"team", engine.Sym("A")},
                              {"name", engine.Sym("ann")}});
  auto r = engine.Run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kRuntimeError);
  // The failed firing is consumed; the engine continues.
  auto r2 = engine.Run();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(*r2, 1);
  EXPECT_EQ(out.str(), "ann");
}

TEST(RobustnessTest, HugeSymbolsAndNumbers) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  std::string big_symbol(5000, 'x');
  MustLoad(engine, "(literalize m v)(startup (make m ^v " + big_symbol +
                       ") (make m ^v 9223372036854775807))");
  EXPECT_EQ(engine.wm().size(), 2u);
  auto snap = engine.wm().Snapshot();
  EXPECT_EQ(snap[1]->field(0), Value::Int(9223372036854775807LL));
}

TEST(RobustnessTest, EmptyAndCommentOnlySources) {
  Engine engine;
  EXPECT_TRUE(engine.LoadString("").ok());
  EXPECT_TRUE(engine.LoadString("; nothing here\n;; more\n").ok());
  EXPECT_TRUE(engine.LoadString("   \n\t\n").ok());
}

TEST(RobustnessTest, ManyRulesManyClasses) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  std::string src;
  for (int i = 0; i < 60; ++i) {
    std::string c = "cls" + std::to_string(i);
    src += "(literalize " + c + " v)";
    src += "(p r" + std::to_string(i) + " (" + c + " ^v <x>) --> "
           "(bind <y> 1))";
  }
  MustLoad(engine, src);
  for (int i = 0; i < 60; ++i) {
    MustMake(engine, "cls" + std::to_string(i), {{"v", Value::Int(i)}});
  }
  EXPECT_EQ(engine.conflict_set().size(), 60u);
  EXPECT_EQ(MustRun(engine), 60);
}

TEST(RobustnessTest, InterleavedLoadAndRun) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p a (player ^team A) --> (bind <x> 1))");
  MakeFigure1Wm(engine);
  EXPECT_EQ(MustRun(engine), 2);
  MustLoad(engine, "(p b (player ^team B) --> (bind <x> 1))");
  EXPECT_EQ(MustRun(engine), 3);
  MustLoad(engine, "(p c [player ^team B ^name <n>] --> (bind <x> 1))");
  EXPECT_EQ(MustRun(engine), 1);
}

}  // namespace
}  // namespace sorel
