// Protocol golden tests: a scripted request transcript is replayed through
// EngineServer::HandleLine and the full request/response exchange is
// compared byte-for-byte against tests/golden/server_protocol.golden —
// response key order, value encodings, and error wording are all pinned.
// Error paths (malformed JSON, unknown session, unknown command, bad
// session names, run/rollback misuse) are additionally asserted against
// their Status codes inline, so a failure names the broken case even when
// the golden diff is large.
//
// To update the golden after an intentional protocol change:
//   SOREL_REGEN_GOLDEN=1 ./build/tests/server_protocol_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "server/engine_server.h"
#include "server_test_util.h"

namespace sorel {
namespace server {
namespace {

constexpr const char* kRules = R"(
(literalize item id cat val)
(p promote { (item ^cat A ^val <v>) <i> } -->
  (modify <i> ^cat B ^val (compute <v> * 2))
  (write promoted <v> (crlf)))
(p chain (item ^cat B ^val <v>) { (item ^cat C ^val <v>) <c> } -->
  (remove <c>)
  (write chained <v> (crlf)))
)";

/// The scripted exchange. Each request is paired with the Status code its
/// response must carry ("" = success). The exact response bytes live in
/// the golden file.
struct Step {
  const char* request;
  const char* code;  // expected "code" field; "" means ok:true
};

const Step kScript[] = {
    {R"({"cmd":"ping"})", ""},
    {R"({"cmd":"rules"})", ""},
    {R"({"cmd":"sessions"})", ""},
    // --- error paths before any session exists ---
    {R"(this is not json)", "ParseError"},
    {R"([1,2,3])", "InvalidArgument"},           // not an object
    {R"({"session":"s1"})", "InvalidArgument"},  // missing cmd
    {R"({"cmd":"open"})", "InvalidArgument"},    // missing session name
    {R"({"cmd":"open","session":"../evil"})", "InvalidArgument"},
    {R"({"cmd":"open","session":".hidden"})", "InvalidArgument"},
    {R"({"cmd":"open","session":"s1","matcher":"quantum"})",
     "InvalidArgument"},
    {R"({"cmd":"make","session":"nope","cls":"item","attrs":{}})",
     "NotFound"},
    // --- a working session ---
    {R"({"cmd":"open","session":"s1","matcher":"rete","strategy":"lex"})",
     ""},
    {R"({"cmd":"open","session":"s1"})", "InvalidArgument"},  // already open
    {R"({"cmd":"sessions"})", ""},
    {R"({"cmd":"frobnicate","session":"s1"})", "InvalidArgument"},
    {R"({"cmd":"make","session":"s1","cls":"bogus","attrs":{}})",
     "InvalidArgument"},
    {R"({"cmd":"make","session":"s1","cls":"item","attrs":{"id":1,"cat":"A","val":5}})",
     ""},
    {R"({"cmd":"make","session":"s1","cls":"item","attrs":{"id":2,"cat":"C","val":7}})",
     ""},
    {R"({"cmd":"make","session":"s1","cls":"item","attrs":{"val":[1,2]}})",
     "InvalidArgument"},  // arrays cannot coerce to attribute values
    {R"({"cmd":"run","session":"s1"})", ""},
    {R"({"cmd":"remove","session":"s1","tag":"999"})", "NotFound"},
    // --- transactions ---
    {R"({"cmd":"begin","session":"s1"})", ""},
    {R"({"cmd":"run","session":"s1"})", "InvalidArgument"},  // run in txn
    {R"({"cmd":"make","session":"s1","cls":"item","attrs":{"id":9,"cat":"C","val":1}})",
     ""},
    {R"({"cmd":"rollback","session":"s1"})", ""},
    {R"({"cmd":"rollback","session":"s1"})", "InvalidArgument"},  // no txn
    // --- inspection (exact encodings pinned by the golden) ---
    {R"({"cmd":"wm","session":"s1"})", ""},
    {R"({"cmd":"cs","session":"s1"})", ""},
    {R"({"cmd":"metrics","session":"s1"})", ""},
    {R"({"cmd":"wal","session":"s1"})", ""},
    {R"({"cmd":"modify","session":"s1","tag":"2","attrs":{"val":9}})", ""},
    {R"({"cmd":"dump","session":"s1"})", ""},
    {R"({"cmd":"trace","session":"s1"})", ""},  // opened untraced: []
    // --- snapshot + close ---
    {R"({"cmd":"snapshot","session":"s1"})", ""},
    {R"({"cmd":"wal","session":"s1"})", ""},  // truncated: records back to 0
    {R"({"cmd":"close","session":"s1"})", ""},
    {R"({"cmd":"close","session":"s1"})", "NotFound"},
    {R"({"cmd":"shutdown"})", ""},
};

std::string GoldenPath() {
  std::string file = __FILE__;
  size_t slash = file.rfind('/');
  return file.substr(0, slash + 1) + "golden/server_protocol.golden";
}

/// Pulls the "code" field out of an error response line (crudely — the
/// field is always first after ok).
std::string ResponseCode(const std::string& response) {
  const std::string key = "\"code\":\"";
  size_t at = response.find(key);
  if (at == std::string::npos) return "";
  size_t end = response.find('"', at + key.size());
  return response.substr(at + key.size(), end - at - key.size());
}

TEST(ServerProtocolTest, TranscriptMatchesGolden) {
  TempDir dir;
  EngineServerOptions options;
  options.data_dir = dir.path();
  auto server = EngineServer::Create(kRules, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::ostringstream transcript;
  for (const Step& step : kScript) {
    std::string response = (*server)->HandleLine(step.request);
    transcript << "> " << step.request << "\n< " << response << "\n";
    if (std::string(step.code).empty()) {
      EXPECT_NE(response.find("\"ok\":true"), std::string::npos)
          << step.request << " -> " << response;
    } else {
      EXPECT_EQ(ResponseCode(response), step.code)
          << step.request << " -> " << response;
    }
  }
  EXPECT_TRUE((*server)->shutdown_requested());

  if (std::getenv("SOREL_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.is_open()) << GoldenPath();
    out << transcript.str();
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.is_open())
      << "missing " << GoldenPath()
      << " — regenerate with SOREL_REGEN_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(transcript.str(), golden.str())
      << "protocol output changed; if intentional, regenerate with "
         "SOREL_REGEN_GOLDEN=1 ./server_protocol_test";
}

TEST(ServerProtocolTest, ResponsesAreValidJson) {
  // Every response line — success or error — must parse as a JSON object
  // with an "ok" member (clients dispatch on it).
  TempDir dir;
  EngineServerOptions options;
  options.data_dir = dir.path();
  auto server = EngineServer::Create(kRules, options);
  ASSERT_TRUE(server.ok());
  for (const Step& step : kScript) {
    std::string response = (*server)->HandleLine(step.request);
    auto parsed = obs::ParseJson(response);
    ASSERT_TRUE(parsed.ok()) << step.request << " -> " << response;
    ASSERT_TRUE(parsed->is_object()) << response;
    EXPECT_NE(parsed->Find("ok"), nullptr) << response;
  }
}

TEST(ServerProtocolTest, SessionsAreIsolatedOverTheProtocol) {
  // The protocol-level view of the isolation property: two sessions, same
  // commands with different values — neither's wm/cs/metrics mention the
  // other's state, and tag counters advance independently.
  TempDir dir;
  EngineServerOptions options;
  options.data_dir = dir.path();
  auto server = EngineServer::Create(kRules, options);
  ASSERT_TRUE(server.ok());
  EngineServer& srv = **server;
  EXPECT_NE(srv.HandleLine(R"({"cmd":"open","session":"a"})")
                .find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(srv.HandleLine(R"({"cmd":"open","session":"b"})")
                .find("\"ok\":true"),
            std::string::npos);
  std::string t1 = srv.HandleLine(
      R"({"cmd":"make","session":"a","cls":"item","attrs":{"id":1,"cat":"A","val":111}})");
  std::string t2 = srv.HandleLine(
      R"({"cmd":"make","session":"b","cls":"item","attrs":{"id":1,"cat":"A","val":333}})");
  // Both sessions hand out tag 1: independent counters.
  EXPECT_NE(t1.find("\"tag\":\"1\""), std::string::npos) << t1;
  EXPECT_NE(t2.find("\"tag\":\"1\""), std::string::npos) << t2;
  srv.HandleLine(R"({"cmd":"run","session":"a"})");
  std::string wm_a = srv.HandleLine(R"({"cmd":"wm","session":"a"})");
  std::string wm_b = srv.HandleLine(R"({"cmd":"wm","session":"b"})");
  // a ran: its item was promoted to val 222 (= 2*111). b never ran and
  // still holds val 333. Neither listing mentions the other's values.
  EXPECT_NE(wm_a.find("\"i\":\"222\""), std::string::npos) << wm_a;
  EXPECT_EQ(wm_a.find("\"i\":\"333\""), std::string::npos) << wm_a;
  EXPECT_NE(wm_b.find("\"i\":\"333\""), std::string::npos) << wm_b;
  EXPECT_EQ(wm_b.find("\"i\":\"222\""), std::string::npos) << wm_b;
  // b's unrun instantiation sits in its conflict set, untouched by a's run.
  std::string cs_b = srv.HandleLine(R"({"cmd":"cs","session":"b"})");
  EXPECT_NE(cs_b.find("promote"), std::string::npos) << cs_b;
}

}  // namespace
}  // namespace server
}  // namespace sorel
