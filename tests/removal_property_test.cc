// Removal-path property tests.
//
// The Rete matcher's removal pipeline has two independently switchable
// layers — per-batch bulk token-tree deletion (`rete.bulk_removal`) and
// slab-backed token arenas (`rete.token_slab`) — plus the WME slab pool
// (`EngineOptions::wme_arena`). None of them may change observable
// behavior: over seeded remove-heavy fuzz schedules, every ablation (and
// every parallel configuration on top of it) must reproduce the default
// configuration's firing trace, per-op conflict-set fingerprints, final
// WM dump, and time-tag counter bit for bit.
//
// A deterministic churn check then pins the recycling contract itself:
// tokens freed by a removal batch must be served back out of the arena
// free lists on the next add batch (`rete.token_pool_hits` > 0), and for
// a negation-free program the hit count must be identical sequential vs
// parallel (no allocation happens inside a removal run there, so every
// configuration sees the same free-list state at every allocation).

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "tests/fuzz_gen.h"
#include "tests/test_util.h"

namespace sorel {
namespace {

using fuzz::FuzzOp;
using fuzz::FuzzProgram;
using fuzz::FuzzRng;

struct RemovalConfig {
  bool bulk = true;
  int slab = 256;
  int threads = 0;
  bool wme_arena = true;
  bool soa = true;

  std::string ToString() const {
    return std::string("bulk=") + std::to_string(bulk) +
           " slab=" + std::to_string(slab) +
           " threads=" + std::to_string(threads) +
           " wme_arena=" + std::to_string(wme_arena) +
           " soa=" + std::to_string(soa);
  }
};

struct RunResult {
  std::string load_error;
  std::string run_error;
  std::string trace;  // firing trace + RHS write output
  std::vector<std::string> fingerprints;
  std::string dump;
  uint64_t next_tag = 0;
};

/// Canonical conflict-set fingerprint (same scheme as the differential
/// fuzzer): sorted "rule{sorted row tags}" entries.
std::string Fingerprint(Engine& engine) {
  std::vector<std::string> entries;
  for (InstantiationRef* inst : engine.conflict_set().Entries()) {
    std::vector<Row> rows;
    inst->CollectRows(&rows);
    std::vector<std::string> row_sigs;
    for (const Row& row : rows) {
      std::string sig;
      for (const WmePtr& w : row) {
        sig += std::to_string(w->time_tag());
        sig += ",";
      }
      row_sigs.push_back(std::move(sig));
    }
    std::sort(row_sigs.begin(), row_sigs.end());
    std::string entry = inst->rule().name + "{";
    for (const std::string& s : row_sigs) entry += s + ";";
    entry += "}";
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end());
  std::string out;
  for (const std::string& e : entries) {
    out += e;
    out += " ";
  }
  return out;
}

RunResult RunSchedule(const FuzzProgram& program,
                      const std::vector<FuzzOp>& schedule,
                      const RemovalConfig& config) {
  RunResult result;
  EngineOptions opts;
  opts.matcher = MatcherKind::kRete;
  opts.trace_firings = true;
  opts.match_threads = config.threads;
  opts.rete.bulk_removal = config.bulk;
  opts.rete.token_slab = config.slab;
  opts.rete.soa_memories = config.soa;
  opts.wme_arena = config.wme_arena;
  Engine engine(opts);
  std::ostringstream out;
  engine.set_output(&out);
  Status loaded = engine.LoadString(program.Source());
  if (!loaded.ok()) {
    result.load_error = loaded.ToString();
    return result;
  }
  for (const FuzzOp& op : schedule) {
    switch (op.kind) {
      case FuzzOp::Kind::kMake: {
        auto r = engine.MakeWme(
            "item", {{"id", Value::Int(op.id)},
                     {"cat", engine.Sym(fuzz::kCats[op.cat])},
                     {"val", Value::Int(op.val)}});
        if (!r.ok() && result.run_error.empty()) {
          result.run_error = r.status().ToString();
        }
        break;
      }
      case FuzzOp::Kind::kRemove: {
        std::vector<WmePtr> snap = engine.wm().Snapshot();
        if (snap.empty()) break;
        TimeTag tag =
            snap[op.pick % static_cast<unsigned>(snap.size())]->time_tag();
        Status s = engine.RemoveWme(tag);
        if (!s.ok() && result.run_error.empty()) {
          result.run_error = s.ToString();
        }
        break;
      }
      case FuzzOp::Kind::kRun: {
        auto r = engine.Run(op.cap);
        if (!r.ok() && result.run_error.empty()) {
          result.run_error = r.status().ToString();
        }
        break;
      }
    }
    result.fingerprints.push_back(Fingerprint(engine));
  }
  result.trace = out.str();
  std::ostringstream dump;
  engine.DumpWm(dump);
  result.dump = dump.str();
  result.next_tag = static_cast<uint64_t>(engine.wm().next_time_tag());
  return result;
}

std::string Diff(const RunResult& a, const RunResult& b) {
  if (a.load_error != b.load_error) {
    return "load: [" + a.load_error + "] vs [" + b.load_error + "]";
  }
  if (!a.load_error.empty()) return "";
  if (a.run_error != b.run_error) {
    return "run status: [" + a.run_error + "] vs [" + b.run_error + "]";
  }
  if (a.trace != b.trace) {
    return "trace:\n--- A ---\n" + a.trace + "--- B ---\n" + b.trace;
  }
  size_t steps = std::min(a.fingerprints.size(), b.fingerprints.size());
  for (size_t i = 0; i < steps; ++i) {
    if (a.fingerprints[i] != b.fingerprints[i]) {
      return "conflict set after op " + std::to_string(i) + ":\nA: " +
             a.fingerprints[i] + "\nB: " + b.fingerprints[i];
    }
  }
  if (a.dump != b.dump) {
    return "final WM:\n--- A ---\n" + a.dump + "--- B ---\n" + b.dump;
  }
  if (a.next_tag != b.next_tag) {
    return "time-tag counter: " + std::to_string(a.next_tag) + " vs " +
           std::to_string(b.next_tag);
  }
  return "";
}

/// One seed: a high-negation program against a remove-heavy schedule,
/// default config vs every removal-path ablation.
void CheckSeed(unsigned seed, unsigned remove_pct) {
  FuzzRng rng(seed);
  FuzzProgram program = fuzz::GenProgram(rng, /*allow_set=*/true,
                                         /*neg_chance=*/70);
  std::vector<FuzzOp> schedule =
      fuzz::GenSchedule(rng, 40, /*with_runs=*/true, remove_pct);
  RemovalConfig base;
  RunResult base_result = RunSchedule(program, schedule, base);
  ASSERT_EQ(base_result.load_error, "")
      << "seed " << seed << "\n" << program.Source();
  RemovalConfig variants[] = {
      {/*bulk=*/false, 256, 0, true},   // per-token tree deletion
      {true, /*slab=*/0, 0, true},      // tracked-heap token allocation
      {false, 0, 0, true},              // both ablations at once
      {true, 256, /*threads=*/4, true},       // parallel replay, bulk
      {false, 256, /*threads=*/4, true},      // parallel replay, per-token
      {true, 256, 0, /*wme_arena=*/false},    // make_shared WMEs
      {true, 256, 0, true, /*soa=*/false},    // AoS alpha/beta memories
      {true, 256, 4, true, /*soa=*/false},    // AoS + parallel replay
  };
  for (const RemovalConfig& variant : variants) {
    std::string mismatch =
        Diff(base_result, RunSchedule(program, schedule, variant));
    EXPECT_EQ(mismatch, "")
        << "seed " << seed << " remove_pct " << remove_pct << "\nbase: "
        << base.ToString() << "\nvariant: " << variant.ToString() << "\n"
        << program.Source() << "\n" << fuzz::ScheduleToString(schedule);
    if (::testing::Test::HasFailure()) return;
  }
}

class RemovalProperty : public ::testing::TestWithParam<int> {};

TEST_P(RemovalProperty, RemoveMostlySchedules) {
  for (unsigned s = 0; s < 4; ++s) {
    CheckSeed(7000 + static_cast<unsigned>(GetParam()) * 10 + s,
              /*remove_pct=*/60);
    if (::testing::Test::HasFailure()) return;
  }
}

TEST_P(RemovalProperty, ChurnSchedules) {
  for (unsigned s = 0; s < 4; ++s) {
    CheckSeed(8000 + static_cast<unsigned>(GetParam()) * 10 + s,
              /*remove_pct=*/40);
    if (::testing::Test::HasFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RemovalProperty, ::testing::Range(0, 4));

/// The recycling contract, on a deterministic negation-free churn: remove
/// batches must feed the arena free lists, the next add batch must drain
/// them, and the hit count must not depend on the thread count.
TEST(RemovalChurn, RecyclesTokensDeterministically) {
  const char* kProgram =
      "(literalize item id cat val)\n"
      "(p pair (item ^cat A ^val <v>) (item ^cat B ^val <v>) -->"
      " (write paired (crlf)))";
  auto churn = [&](int threads) {
    EngineOptions opts;
    opts.match_threads = threads;
    Engine engine(opts);
    std::ostringstream out;
    engine.set_output(&out);
    EXPECT_TRUE(engine.LoadString(kProgram).ok());
    std::vector<TimeTag> tags;
    engine.wm().Begin();
    for (int i = 0; i < 64; ++i) {
      auto r = engine.MakeWme(
          "item", {{"id", Value::Int(i)},
                   {"cat", engine.Sym(i % 2 == 0 ? "A" : "B")},
                   {"val", Value::Int(i % 8)}});
      EXPECT_TRUE(r.ok());
      tags.push_back(*r);
    }
    EXPECT_TRUE(engine.wm().Commit().ok());
    engine.wm().Begin();
    for (size_t i = 0; i < tags.size(); i += 2) {
      EXPECT_TRUE(engine.RemoveWme(tags[i]).ok());
    }
    EXPECT_TRUE(engine.wm().Commit().ok());
    engine.wm().Begin();
    for (int i = 64; i < 96; ++i) {
      EXPECT_TRUE(engine
                      .MakeWme("item",
                               {{"id", Value::Int(i)},
                                {"cat", engine.Sym(i % 2 == 0 ? "A" : "B")},
                                {"val", Value::Int(i % 8)}})
                      .ok());
    }
    EXPECT_TRUE(engine.wm().Commit().ok());
    Engine::MatchStats stats = engine.match_stats();
    std::ostringstream dump;
    engine.DumpWm(dump);
    return std::make_tuple(stats.rete.token_pool_hits, stats.rete.bulk_deletes,
                           dump.str());
  };
  auto [seq_hits, seq_bulk, seq_dump] = churn(0);
  auto [par_hits, par_bulk, par_dump] = churn(4);
  EXPECT_GT(seq_hits, 0u);
  EXPECT_GT(seq_bulk, 0u);
  EXPECT_GT(par_bulk, 0u);
  EXPECT_EQ(seq_hits, par_hits);
  EXPECT_EQ(seq_dump, par_dump);
}

/// Regression: removing a WME that blocks two negated CEs of one rule must
/// not fire the rule while another WME still blocks the second CE. The
/// first negative node's unblock cascade creates the second node's token
/// *after* the WME left the alpha memories, so the WME's own pending
/// right-activation there must not decrement a blocker count that never
/// included it (Token::born_of_removal) — doing so propagated a token WME 0
/// still blocks.
TEST(RemovalRegression, CascadeBornTokenKeepsItsBlockers) {
  const char* kProgram =
      "(literalize item id cat val)\n"
      "(p guard (item ^cat A) - (item ^cat B) - (item ^val 2) -->"
      " (write fired (crlf)))";
  struct Config {
    MatcherKind matcher;
    bool bulk;
    int threads;
    bool soa = true;
  };
  const Config configs[] = {
      {MatcherKind::kRete, true, 0},
      {MatcherKind::kRete, false, 0},
      {MatcherKind::kRete, true, 4},
      {MatcherKind::kRete, true, 0, /*soa=*/false},
      {MatcherKind::kTreat, true, 0},
      {MatcherKind::kTreat, true, 0, /*soa=*/false},
  };
  for (const Config& config : configs) {
    EngineOptions opts;
    opts.matcher = config.matcher;
    opts.rete.bulk_removal = config.bulk;
    opts.rete.soa_memories = config.soa;
    opts.match_threads = config.threads;
    Engine engine(opts);
    std::ostringstream out;
    engine.set_output(&out);
    ASSERT_TRUE(engine.LoadString(kProgram).ok());
    auto make = [&](int id, const char* cat, int val) {
      auto r = engine.MakeWme("item", {{"id", Value::Int(id)},
                                       {"cat", engine.Sym(cat)},
                                       {"val", Value::Int(val)}});
      EXPECT_TRUE(r.ok());
      return *r;
    };
    TimeTag x = make(0, "X", 2);  // blocks -(item ^val 2) only
    TimeTag w = make(1, "B", 2);  // blocks both negated CEs
    make(2, "A", 0);              // matches the positive CE
    std::string label = "matcher " +
                        std::to_string(static_cast<int>(config.matcher)) +
                        " bulk " + std::to_string(config.bulk) + " threads " +
                        std::to_string(config.threads) + " soa " +
                        std::to_string(config.soa);
    EXPECT_EQ(engine.conflict_set().Entries().size(), 0u) << label;
    EXPECT_TRUE(engine.RemoveWme(w).ok());
    EXPECT_EQ(engine.conflict_set().Entries().size(), 0u) << label;
    // Dropping the remaining blocker finally fires the rule.
    EXPECT_TRUE(engine.RemoveWme(x).ok());
    EXPECT_EQ(engine.conflict_set().Entries().size(), 1u) << label;
  }
}

/// The same churn with the WME arena: the remove batch must push freed
/// WME blocks, and the re-add batch must pop them.
TEST(RemovalChurn, RecyclesWmeBlocks) {
  EngineOptions opts;
  Engine engine(opts);
  std::ostringstream out;
  engine.set_output(&out);
  EXPECT_TRUE(engine.LoadString("(literalize item id cat val)").ok());
  std::vector<TimeTag> tags;
  for (int i = 0; i < 32; ++i) {
    auto r = engine.MakeWme("item", {{"id", Value::Int(i)}});
    ASSERT_TRUE(r.ok());
    tags.push_back(*r);
  }
  for (TimeTag t : tags) EXPECT_TRUE(engine.RemoveWme(t).ok());
  for (int i = 32; i < 64; ++i) {
    EXPECT_TRUE(engine.MakeWme("item", {{"id", Value::Int(i)}}).ok());
  }
  Engine::MatchStats stats = engine.match_stats();
  EXPECT_GT(stats.wm.wme_pool_hits, 0u);
  EXPECT_GT(stats.wm.wme_slabs, 0u);
}

}  // namespace
}  // namespace sorel
