#ifndef SOREL_TESTS_SERVER_TEST_UTIL_H_
#define SOREL_TESTS_SERVER_TEST_UTIL_H_

// Shared helpers for the server test suites: scratch data directories and
// full-state fingerprints (working memory, tag counter, conflict set with
// refraction flags, metric counters) that recovered sessions are compared
// against.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "server/codec.h"
#include "server/session.h"

namespace sorel {
namespace server {

/// A per-test scratch directory for WAL + snapshot files.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/sorel_server_test_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) std::abort();
    path_ = tmpl;
  }
  ~TempDir() {
    std::string cmd = "rm -rf '" + path_ + "'";
    (void)std::system(cmd.c_str());
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Everything a recovered session must reproduce, captured as comparable
/// values. `cs` keys are sorted: recovery preserves entry identity and
/// refraction, not insertion order.
struct Fingerprint {
  std::string dump;
  TimeTag next_tag = 0;
  std::vector<std::string> cs;
  std::map<std::string, uint64_t> counters;

  bool operator==(const Fingerprint& other) const {
    return dump == other.dump && next_tag == other.next_tag &&
           cs == other.cs && counters == other.counters;
  }
  bool operator!=(const Fingerprint& other) const {
    return !(*this == other);
  }
};

inline Fingerprint Capture(Session& session) {
  Fingerprint fp;
  std::ostringstream dump;
  session.engine().DumpWm(dump);
  fp.dump = dump.str();
  fp.next_tag = session.engine().wm().next_time_tag();
  for (const ConflictSet::EntryState& state :
       session.engine().conflict_set().EntriesWithState()) {
    CsEntrySnapshot entry;
    entry.rule = state.inst->rule().name;
    std::vector<Row> rows;
    state.inst->CollectRows(&rows);
    for (const Row& row : rows) {
      std::vector<TimeTag> tags;
      for (const WmePtr& wme : row) {
        tags.push_back(wme == nullptr ? 0 : wme->time_tag());
      }
      entry.rows.push_back(std::move(tags));
    }
    fp.cs.push_back(entry.Key() + (state.fired ? "|fired" : "|eligible"));
  }
  std::sort(fp.cs.begin(), fp.cs.end());
  fp.counters = session.engine().metrics().SnapshotCounters();
  return fp;
}

/// Renders where two fingerprints differ (for test failure messages).
inline std::string DiffFingerprints(const Fingerprint& want,
                                    const Fingerprint& got) {
  std::ostringstream out;
  if (want.dump != got.dump) {
    out << "wm dump:\n--- want ---\n" << want.dump << "--- got ---\n"
        << got.dump;
  }
  if (want.next_tag != got.next_tag) {
    out << "next_tag: want " << want.next_tag << " got " << got.next_tag
        << "\n";
  }
  if (want.cs != got.cs) {
    out << "conflict set: want {";
    for (const std::string& k : want.cs) out << k << " ";
    out << "} got {";
    for (const std::string& k : got.cs) out << k << " ";
    out << "}\n";
  }
  if (want.counters != got.counters) {
    for (const auto& [name, value] : want.counters) {
      auto it = got.counters.find(name);
      if (it == got.counters.end()) {
        out << "counter " << name << ": want " << value << " got <absent>\n";
      } else if (it->second != value) {
        out << "counter " << name << ": want " << value << " got "
            << it->second << "\n";
      }
    }
    for (const auto& [name, value] : got.counters) {
      if (want.counters.find(name) == want.counters.end()) {
        out << "counter " << name << ": want <absent> got " << value << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace server
}  // namespace sorel

#endif  // SOREL_TESTS_SERVER_TEST_UTIL_H_
