// DumpWm round-trip: the dumped `(startup (make ...))` form, loaded into a
// fresh engine with the same schemas, must rebuild an identical working
// memory — including symbols that need quoting (spaces, `|`, `"`, leading
// digits and signs, reserved punctuation) and nil fields.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "tests/test_util.h"

namespace sorel {
namespace {

constexpr std::string_view kSchema = "(literalize thing name val)";

std::string Dump(Engine& engine) {
  std::ostringstream out;
  engine.DumpWm(out);
  return out.str();
}

/// Dumps `first`, loads the dump into a fresh engine, and expects the
/// second dump to be byte-identical.
void ExpectRoundTrip(Engine& first) {
  std::string dump = Dump(first);
  Engine second;
  MustLoad(second, kSchema);
  MustLoad(second, dump);
  EXPECT_EQ(Dump(second), dump) << "original dump:\n" << dump;
  EXPECT_EQ(second.wm().size(), first.wm().size());
}

TEST(DumpRoundTripTest, PlainValuesAndNilFields) {
  Engine engine;
  MustLoad(engine, kSchema);
  MustMake(engine, "thing",
           {{"name", engine.Sym("plain")}, {"val", Value::Int(42)}});
  MustMake(engine, "thing", {{"val", Value::Float(2.5)}});  // name stays nil
  MustMake(engine, "thing", {{"name", engine.Sym("negative")},
                             {"val", Value::Int(-3)}});
  MustMake(engine, "thing", {});  // all nil
  ExpectRoundTrip(engine);
}

TEST(DumpRoundTripTest, SymbolsNeedingQuotes) {
  Engine engine;
  MustLoad(engine, kSchema);
  MustMake(engine, "thing", {{"name", engine.Sym("has space")}});
  MustMake(engine, "thing", {{"name", engine.Sym("semi;colon")}});
  MustMake(engine, "thing", {{"name", engine.Sym("(parens)")}});
  MustMake(engine, "thing", {{"name", engine.Sym("^caret")}});
  MustMake(engine, "thing", {{"name", engine.Sym("<angle>")}});
  // Note: the *empty* symbol is unrepresentable in source text (`||`
  // compiles to nil), like a symbol containing both quote delimiters.
  ExpectRoundTrip(engine);
}

TEST(DumpRoundTripTest, NumericLookingSymbols) {
  // A symbol that lexes as a number must come back as a symbol, so the
  // dump has to quote it.
  Engine engine;
  MustLoad(engine, kSchema);
  MustMake(engine, "thing", {{"name", engine.Sym("123")}});
  MustMake(engine, "thing", {{"name", engine.Sym("-7")}});
  MustMake(engine, "thing", {{"name", engine.Sym("+up")}});
  std::string dump = Dump(engine);
  EXPECT_NE(dump.find("|123|"), std::string::npos) << dump;
  ExpectRoundTrip(engine);
  // And the reloaded field really is a symbol, not the integer 123.
  Engine second;
  MustLoad(second, kSchema);
  MustLoad(second, dump);
  EXPECT_EQ(second.wm().Snapshot()[0]->field(0), second.Sym("123"));
}

TEST(DumpRoundTripTest, PipeSymbolUsesDoubleQuoteDelimiter) {
  // `|` cannot appear inside a pipe-quoted atom (the lexer has no
  // escapes), so the dump switches to the `"` delimiter for it.
  Engine engine;
  MustLoad(engine, kSchema);
  MustMake(engine, "thing", {{"name", engine.Sym("pipe|inside")}});
  MustMake(engine, "thing", {{"name", engine.Sym("quote\"inside")}});
  std::string dump = Dump(engine);
  EXPECT_NE(dump.find("\"pipe|inside\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("|quote\"inside|"), std::string::npos) << dump;
  ExpectRoundTrip(engine);
}

TEST(DumpRoundTripTest, WhitespaceAndControlSymbolsRoundTrip) {
  // Quoted atoms may span lines: the lexer consumes raw bytes up to the
  // closing delimiter (no escapes), so symbols containing newlines,
  // carriage returns, and tabs round-trip through the dump unchanged.
  Engine engine;
  MustLoad(engine, kSchema);
  MustMake(engine, "thing", {{"name", engine.Sym("line\nbreak")}});
  MustMake(engine, "thing", {{"name", engine.Sym("carriage\rreturn")}});
  MustMake(engine, "thing", {{"name", engine.Sym("tab\tstop")}});
  MustMake(engine, "thing", {{"name", engine.Sym(" padded ")}});
  std::string dump = Dump(engine);
  EXPECT_NE(dump.find("|line\nbreak|"), std::string::npos) << dump;
  EXPECT_NE(dump.find("| padded |"), std::string::npos) << dump;
  ExpectRoundTrip(engine);
}

TEST(DumpRoundTripTest, BothDelimitersIsUnrepresentable) {
  // A symbol containing both `|` and `"` cannot be written in the source
  // syntax at all (quoted atoms have no escapes; the dump picks whichever
  // delimiter the text lacks). Pin that this case fails *loudly* on
  // reload instead of silently rebuilding a wrong-looking WM. Such
  // symbols do survive the server's WAL/snapshot codec, which JSON-escapes
  // them (see server_wal_test.cc) — only the OPS5 source form is lossy.
  Engine engine;
  MustLoad(engine, kSchema);
  MustMake(engine, "thing", {{"name", engine.Sym("both|\"inside")}});
  std::string dump = Dump(engine);
  Engine second;
  MustLoad(second, kSchema);
  Status loaded = second.LoadString(dump);
  EXPECT_TRUE(!loaded.ok() || Dump(second) != dump)
      << "a both-delimiter symbol unexpectedly round-tripped: " << dump;
}

TEST(DumpRoundTripTest, SurvivesARunThatMutatesWm) {
  // Dump after actual rule activity (modifies assign fresh time tags), to
  // check the dump is a snapshot of live WMEs, not of history.
  Engine engine;
  MustLoad(engine, std::string(kSchema) +
                       "(p bump { (thing ^val <v> ^name todo) <e> } -->"
                       " (modify <e> ^val (<v> + 1) ^name done))");
  MustMake(engine, "thing",
           {{"name", engine.Sym("todo")}, {"val", Value::Int(1)}});
  MustMake(engine, "thing",
           {{"name", engine.Sym("todo")}, {"val", Value::Int(2)}});
  MustRun(engine, 10);
  ExpectRoundTrip(engine);
}

}  // namespace
}  // namespace sorel
