// OPS5 semantic conformance corpus: matching, conflict resolution, and
// action semantics details that real OPS5 programs rely on.

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"

namespace sorel {
namespace {

class Ops5Test : public ::testing::Test {
 protected:
  Ops5Test() { engine_.set_output(&out_); }

  std::ostringstream out_;
  Engine engine_;
};

TEST_F(Ops5Test, NilMatchesUnsetAttribute) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p unset (player ^team nil ^name <n>) --> "
                        "(write <n>))");
  MustMake(engine_, "player", {{"name", engine_.Sym("loner")}});
  MustMake(engine_, "player", {{"name", engine_.Sym("member")},
                               {"team", engine_.Sym("A")}});
  EXPECT_EQ(MustRun(engine_), 1);
  EXPECT_EQ(out_.str(), "loner");
}

TEST_F(Ops5Test, IntFloatEqualityInMatch) {
  MustLoad(engine_,
           "(literalize m v)(p eq (m ^v 5) --> (write hit))");
  MustMake(engine_, "m", {{"v", Value::Float(5.0)}});
  EXPECT_EQ(MustRun(engine_), 1);
}

TEST_F(Ops5Test, RelationalPredicateIgnoresSymbols) {
  MustLoad(engine_,
           "(literalize m v)(p gt (m ^v > 3) --> (write hit))");
  MustMake(engine_, "m", {{"v", engine_.Sym("seven")}});
  MustMake(engine_, "m", {{"v", Value::Int(7)}});
  EXPECT_EQ(MustRun(engine_), 1);  // only the number matches
}

TEST_F(Ops5Test, VariablePredicateAgainstEarlierBinding) {
  MustLoad(engine_,
           "(literalize m v)"
           "(p pairs (m ^v <a>) (m ^v > <a>) --> (write <a> (crlf)))");
  MustMake(engine_, "m", {{"v", Value::Int(1)}});
  MustMake(engine_, "m", {{"v", Value::Int(2)}});
  MustMake(engine_, "m", {{"v", Value::Int(3)}});
  // Pairs with second > first: (1,2) (1,3) (2,3).
  EXPECT_EQ(MustRun(engine_), 3);
}

TEST_F(Ops5Test, ConjunctionRangeTest) {
  MustLoad(engine_,
           "(literalize m v)"
           "(p range (m ^v { > 2 < 8 <> 5 }) --> (write hit (crlf)))");
  for (int v : {1, 3, 5, 7, 9}) {
    MustMake(engine_, "m", {{"v", Value::Int(v)}});
  }
  EXPECT_EQ(MustRun(engine_), 2);  // 3 and 7
}

TEST_F(Ops5Test, RefractionIsPermanentForIdenticalInstantiations) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p once (player ^name <n>) --> (write fired))");
  MustMake(engine_, "player", {{"name", engine_.Sym("x")}});
  EXPECT_EQ(MustRun(engine_), 1);
  EXPECT_EQ(MustRun(engine_), 0);  // same instantiation never refires
}

TEST_F(Ops5Test, ModifyCreatesFreshInstantiation) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p watch (player ^name <n>) --> (write saw <n>))");
  TimeTag tag = MustMake(engine_, "player", {{"name", engine_.Sym("x")}});
  EXPECT_EQ(MustRun(engine_), 1);
  auto modified = engine_.ModifyWme(tag, {{"name", engine_.Sym("y")}});
  ASSERT_TRUE(modified.ok());
  EXPECT_GT(*modified, tag);
  EXPECT_EQ(MustRun(engine_), 1);  // the remade WME is a new match
}

TEST_F(Ops5Test, ModifyPreservesUnmentionedFields) {
  MustLoad(engine_, std::string(kPlayerSchema));
  TimeTag tag = MustMake(engine_, "player", {{"name", engine_.Sym("x")},
                                             {"team", engine_.Sym("A")}});
  auto modified = engine_.ModifyWme(tag, {{"team", engine_.Sym("B")}});
  ASSERT_TRUE(modified.ok());
  WmePtr wme = engine_.wm().Find(*modified);
  ASSERT_NE(wme, nullptr);
  EXPECT_EQ(wme->field(0), engine_.Sym("x"));  // name untouched
  EXPECT_EQ(wme->field(1), engine_.Sym("B"));
  EXPECT_FALSE(engine_.ModifyWme(tag, {}).ok());  // old tag is gone
}

TEST_F(Ops5Test, LexComparesSecondTagOnTie) {
  // Instantiations sharing the most recent WME are ordered by the next
  // most recent one.
  MustLoad(engine_,
           "(literalize a v)(literalize b v)"
           "(p r (a ^v <x>) (b) --> (write <x> (crlf)))");
  MustMake(engine_, "a", {{"v", Value::Int(1)}});  // tag 1
  MustMake(engine_, "a", {{"v", Value::Int(2)}});  // tag 2
  MustMake(engine_, "b", {});                      // tag 3 (shared)
  MustRun(engine_);
  EXPECT_EQ(out_.str(), "2\n1\n");
}

TEST_F(Ops5Test, SoiRepositionsOnNewHead) {
  // Two SOIs; adding a member to the older one must move it to the top of
  // the conflict set (the S-node's `time` mark).
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p g [player ^team <t> ^name <n>] :scalar (<t>)"
                        " --> (write team <t> (crlf)))");
  MustMake(engine_, "player", {{"team", engine_.Sym("A")},
                               {"name", engine_.Sym("a1")}});
  MustMake(engine_, "player", {{"team", engine_.Sym("B")},
                               {"name", engine_.Sym("b1")}});
  // B is more recent; but now team A gains the newest member.
  MustMake(engine_, "player", {{"team", engine_.Sym("A")},
                               {"name", engine_.Sym("a2")}});
  MustRun(engine_, 1);
  EXPECT_EQ(out_.str(), "team A\n");
}

TEST_F(Ops5Test, MultiFieldJoinConsistency) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p same (player ^name <n> ^team <t>)"
                        "        (player ^name <t> ^team <n>) -->"
                        " (write crossed (crlf)))");
  MustMake(engine_, "player", {{"name", engine_.Sym("x")},
                               {"team", engine_.Sym("y")}});
  EXPECT_EQ(engine_.conflict_set().size(), 0u);
  MustMake(engine_, "player", {{"name", engine_.Sym("y")},
                               {"team", engine_.Sym("x")}});
  EXPECT_EQ(engine_.conflict_set().size(), 2u);  // both orientations
}

TEST_F(Ops5Test, NegatedCeSeesRhsEffectsImmediately) {
  // OPS5 actions take effect one at a time: the make in the RHS
  // immediately blocks the rule's remaining instantiations.
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(literalize done)"
                        "(p only-once (player) - (done) --> (make done))");
  MakeFigure1Wm(engine_);
  EXPECT_EQ(MustRun(engine_), 1);  // the first firing blocks the rest
}

TEST_F(Ops5Test, WriteNumbersAndNegatives) {
  MustLoad(engine_,
           "(literalize m)(p w (m) --> (write -3 2.25 0 (crlf)))");
  MustMake(engine_, "m", {});
  MustRun(engine_);
  EXPECT_EQ(out_.str(), "-3 2.25 0\n");
}

TEST_F(Ops5Test, ComputeSynonym) {
  MustLoad(engine_,
           "(literalize m v)"
           "(p c (m ^v <x>) --> (write (compute <x> * 2 + 1)))");
  MustMake(engine_, "m", {{"v", Value::Int(5)}});
  MustRun(engine_);
  EXPECT_EQ(out_.str(), "11");  // left-assoc: (5*2)+1
}

TEST_F(Ops5Test, QuotedSymbolsMatchExactly) {
  MustLoad(engine_,
           "(literalize m v)"
           "(p q (m ^v |hello world|) --> (write matched))");
  MustMake(engine_, "m", {{"v", engine_.Sym("hello world")}});
  EXPECT_EQ(MustRun(engine_), 1);
}

}  // namespace
}  // namespace sorel
