// Parallel-firing cycles (§8.1 / §1): batch selection, the conservative
// conflict test, and equivalence with sequential execution on confluent
// programs.

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"

namespace sorel {
namespace {

TEST(ParallelTest, IndependentInstantiationsFireInOneCycle) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p drain { (player ^team A) <p> } -->"
                       " (modify <p> ^team done))");
  for (int i = 0; i < 16; ++i) {
    MustMake(engine, "player", {{"team", engine.Sym("A")}});
  }
  auto cycles = engine.RunParallel();
  ASSERT_TRUE(cycles.ok());
  EXPECT_EQ(*cycles, 1);
  EXPECT_EQ(engine.parallel_stats().firings, 16u);
  EXPECT_EQ(engine.parallel_stats().largest_batch, 16u);
  EXPECT_EQ(engine.parallel_stats().conflicts, 0u);
}

TEST(ParallelTest, SharedSupportSerializes) {
  // Every instantiation matches the same counter WME: the batch degrades
  // to one firing per cycle — §8.1's "instantiations frequently conflict".
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine,
           "(literalize job id)(literalize tally n)"
           "(p count-job { (job ^id <i>) <j> } { (tally ^n <c>) <t> } -->"
           " (remove <j>) (modify <t> ^n (<c> + 1)))");
  MustMake(engine, "tally", {{"n", Value::Int(0)}});
  for (int i = 0; i < 8; ++i) {
    MustMake(engine, "job", {{"id", Value::Int(i)}});
  }
  auto cycles = engine.RunParallel();
  ASSERT_TRUE(cycles.ok());
  EXPECT_EQ(*cycles, 8);  // fully serialized on the tally WME
  EXPECT_GT(engine.parallel_stats().conflicts, 0u);
  auto snap = engine.wm().Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0]->field(0), Value::Int(8));
}

TEST(ParallelTest, DuplicateRemovalConflictResolvedSafely) {
  // The paper's example: "multiple instantiations of a single rule
  // invalidate each other (e.g. try to remove the same WME)". With the
  // conservative conflict test, only one of the pair fires per cycle and
  // the other is retracted by the WM change.
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, "(literalize player name team id score)"
                       "(p dedup (player ^id <i> ^name <n>)"
                       "         { (player ^id { <> <i> } ^name <n>) <p2> }"
                       " --> (remove <p2>))");
  for (int i = 0; i < 4; ++i) {
    MustMake(engine, "player", {{"id", Value::Int(i)},
                                {"name", engine.Sym("same")}});
  }
  auto cycles = engine.RunParallel(100);
  ASSERT_TRUE(cycles.ok());
  EXPECT_EQ(engine.wm().size(), 1u);  // exactly one survivor
}

TEST(ParallelTest, SetOrientedRuleIsOneBatchOfOne) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p drain { [player ^team A] <A> } -->"
                       " (set-modify <A> ^team done))");
  for (int i = 0; i < 16; ++i) {
    MustMake(engine, "player", {{"team", engine.Sym("A")}});
  }
  auto cycles = engine.RunParallel();
  ASSERT_TRUE(cycles.ok());
  EXPECT_EQ(*cycles, 1);
  EXPECT_EQ(engine.parallel_stats().firings, 1u);
  EXPECT_EQ(engine.run_stats().actions, 16u);  // §1: big firings
}

TEST(ParallelTest, MatchesSequentialOutcomeOnConfluentProgram) {
  const std::string program =
      "(literalize player name team id score)"
      "(p promote { (player ^team A ^score { <s> >= 5 }) <p> } -->"
      " (modify <p> ^team B))"
      "(p demote { (player ^team A ^score < 5) <p> } -->"
      " (modify <p> ^team C))";
  auto final_teams = [&](bool parallel) {
    Engine engine;
    std::ostringstream out;
    engine.set_output(&out);
    MustLoad(engine, program);
    for (int i = 0; i < 20; ++i) {
      MustMake(engine, "player", {{"team", engine.Sym("A")},
                                  {"score", Value::Int(i % 10)},
                                  {"id", Value::Int(i)}});
    }
    if (parallel) {
      EXPECT_TRUE(engine.RunParallel().ok());
    } else {
      MustRun(engine);
    }
    std::multiset<std::string> teams;
    SymbolId id = engine.symbols().Intern("id");
    SymbolId team = engine.symbols().Intern("team");
    for (const WmePtr& w : engine.wm().Snapshot()) {
      const ClassSchema* s = engine.schemas().Find(w->cls());
      teams.insert(w->field(s->FieldOf(id)).ToString(engine.symbols()) + ":" +
                   w->field(s->FieldOf(team)).ToString(engine.symbols()));
    }
    return teams;
  };
  EXPECT_EQ(final_teams(false), final_teams(true));
}

TEST(ParallelTest, HaltStopsTheCycle) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p stop (player) --> (halt))");
  MakeFigure1Wm(engine);
  auto cycles = engine.RunParallel();
  ASSERT_TRUE(cycles.ok());
  EXPECT_TRUE(engine.halted());
  EXPECT_EQ(*cycles, 1);
}

TEST(ParallelTest, MaxCyclesRespected) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine,
           "(literalize job id)(literalize tally n)"
           "(p count-job { (job ^id <i>) <j> } { (tally ^n <c>) <t> } -->"
           " (remove <j>) (modify <t> ^n (<c> + 1)))");
  MustMake(engine, "tally", {{"n", Value::Int(0)}});
  for (int i = 0; i < 8; ++i) MustMake(engine, "job", {{"id", Value::Int(i)}});
  auto cycles = engine.RunParallel(3);
  ASSERT_TRUE(cycles.ok());
  EXPECT_EQ(*cycles, 3);
  EXPECT_EQ(engine.wm().size(), 6u);  // 1 tally + 5 remaining jobs
}

}  // namespace
}  // namespace sorel
