// WAL-replay admission test (ctest label `slow`): journal ~1M records
// through a live session, then reopen from disk and require the replayed
// session to be bit-identical to the live one. The point is scale — replay
// must stay O(records) with a small constant and must not accumulate
// memory, so the workload is alternating make/remove churn that keeps
// working memory tiny while the WAL grows without bound.
//
// Record count is env-overridable: SOREL_SCALE_RECORDS=200000 for a quick
// local run, or higher to stress further. The default meets the issue's
// >= 1M floor.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "engine/engine.h"
#include "server/session.h"
#include "server_test_util.h"

namespace sorel {
namespace server {
namespace {

constexpr char kRules[] = R"(
(literalize item id cat val)
(literalize bin cat total)
(p pair (item ^cat <c> ^val <v>)
        (item ^cat <c> ^val > <v>)
        --> (make bin ^cat <c> ^total <v>))
)";

uint64_t RecordTarget() {
  if (const char* env = std::getenv("SOREL_SCALE_RECORDS")) {
    long long v = std::atoll(env);
    if (v > 0) return static_cast<uint64_t>(v);
  }
  return 1'000'000;
}

TEST(ServerScaleTest, MillionRecordWalReplaysBitIdentically) {
  const uint64_t target = RecordTarget();
  TempDir dir;
  SessionOptions options;
  options.fsync_every = 1 << 16;  // throughput, not durability, is on trial
  options.trace_firings = false;

  Fingerprint live;
  uint64_t records = 0;
  {
    auto session = Session::Open("scale", kRules, dir.path(), options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    Session& s = **session;
    SymbolId cat_a = s.engine().symbols().Intern("A");

    // Every iteration journals two records (make + remove) and leaves WM
    // unchanged — except each 10000th WME survives, so the final state has
    // real content for the fingerprint to disagree about.
    int id = 0;
    while (records + 2 <= target) {
      auto tag = s.Make("item", {{"id", Value::Int(id)},
                                 {"cat", Value::Symbol(cat_a)},
                                 {"val", Value::Int(id % 97)}});
      ASSERT_TRUE(tag.ok()) << tag.status().ToString();
      ++records;
      if (id % 10000 != 0) {
        ASSERT_TRUE(s.Remove(*tag).ok());
        ++records;
      }
      ++id;
    }
    while (records < target) {
      auto tag = s.Make("item", {{"id", Value::Int(id++)},
                                 {"cat", Value::Symbol(cat_a)},
                                 {"val", Value::Int(7)}});
      ASSERT_TRUE(tag.ok()) << tag.status().ToString();
      ++records;
    }
    // One run at the end: the survivors join pairwise, and the firings +
    // their bin WMEs are journaled too (records grows past the target,
    // which only strengthens the admission claim).
    auto fired = s.Run(-1);
    ASSERT_TRUE(fired.ok()) << fired.status().ToString();
    ASSERT_TRUE(s.SyncWal().ok());
    (void)s.DrainOutput();
    live = Capture(s);
  }
  ASSERT_GE(records, target);

  auto recovered = Session::Open("scale", kRules, dir.path(), options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE((*recovered)->recovery().had_snapshot);
  EXPECT_GE((*recovered)->recovery().replayed_records, records);
  EXPECT_EQ((*recovered)->recovery().torn_bytes, 0u);
  EXPECT_FALSE((*recovered)->recovery().crc_mismatch);
  Fingerprint replayed = Capture(**recovered);
  EXPECT_EQ(live, replayed) << DiffFingerprints(live, replayed);
}

}  // namespace
}  // namespace server
}  // namespace sorel
