// TREAT baseline: semantics must match Rete on tuple-oriented programs.

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"
#include "treat/treat.h"

namespace sorel {
namespace {

Engine MakeTreatEngine() {
  EngineOptions options;
  options.matcher = MatcherKind::kTreat;
  return Engine(options);
}

TEST(TreatTest, CrossProductMatch) {
  Engine engine = MakeTreatEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p c (player ^team A) (player ^team B) --> (halt))");
  MakeFigure1Wm(engine);
  EXPECT_EQ(engine.conflict_set().size(), 6u);
}

TEST(TreatTest, RemovalDropsInstantiations) {
  Engine engine = MakeTreatEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p c (player ^team A) (player ^team B) --> (halt))");
  MakeFigure1Wm(engine);
  ASSERT_TRUE(engine.RemoveWme(1).ok());
  EXPECT_EQ(engine.conflict_set().size(), 3u);
  auto* treat = static_cast<TreatMatcher*>(&engine.matcher());
  EXPECT_EQ(treat->num_instantiations(), 3u);
}

TEST(TreatTest, SelfJoinNoDuplicates) {
  Engine engine = MakeTreatEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p same (player ^name <n>) (player ^name <n>)"
                       " --> (halt))");
  MustMake(engine, "player", {{"name", engine.Sym("x")}});
  MustMake(engine, "player", {{"name", engine.Sym("x")}});
  EXPECT_EQ(engine.conflict_set().size(), 4u);
}

TEST(TreatTest, NegationBlocksAndUnblocks) {
  Engine engine = MakeTreatEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p lonely (player ^name <n> ^team A)"
                       " - (player ^name <n> ^team B) --> (halt))");
  MakeFigure1Wm(engine);
  // Jack(A) blocked by Jack(B); Janice unblocked.
  EXPECT_EQ(engine.conflict_set().size(), 1u);
  ASSERT_TRUE(engine.RemoveWme(4).ok());  // Jack(B) leaves
  EXPECT_EQ(engine.conflict_set().size(), 2u);
  MustMake(engine, "player", {{"name", engine.Sym("Janice")},
                              {"team", engine.Sym("B")}});
  EXPECT_EQ(engine.conflict_set().size(), 1u);
}

TEST(TreatTest, RefractionSurvivesResearch) {
  // A fired instantiation must not re-enter the conflict set when an
  // unrelated negated-CE removal triggers the re-search.
  Engine engine = MakeTreatEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(literalize blockme)"
                       "(p r (player ^team A) - (blockme) --> (write fired))");
  MustMake(engine, "player", {{"name", engine.Sym("Ann")},
                              {"team", engine.Sym("A")}});
  EXPECT_EQ(MustRun(engine), 1);
  TimeTag b = MustMake(engine, "blockme", {});
  ASSERT_TRUE(engine.RemoveWme(b).ok());
  // Re-search finds the same signature; it must not fire again... but note:
  // OPS5 semantics: the instantiation was *retracted* while blocked, so it
  // is a fresh instantiation and fires again.
  EXPECT_EQ(MustRun(engine), 1);
  EXPECT_EQ(out.str(), "fired fired");
}

TEST(TreatTest, NonEqualityJoinPredicate) {
  Engine engine = MakeTreatEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine,
           "(literalize emp name salary)"
           "(p outearns (emp ^name <a> ^salary <s>)"
           "            (emp ^name <b> ^salary > <s>) -->"
           " (write <b> outearns <a> (crlf)))");
  MustMake(engine, "emp", {{"name", engine.Sym("lo")},
                           {"salary", Value::Int(100)}});
  MustMake(engine, "emp", {{"name", engine.Sym("hi")},
                           {"salary", Value::Int(200)}});
  EXPECT_EQ(MustRun(engine), 1);
  EXPECT_EQ(out.str(), "hi outearns lo\n");
}

TEST(TreatTest, ThreeWayJoinWithRemovalChurn) {
  Engine engine = MakeTreatEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p trio (player ^name <n> ^team A)"
                       "        (player ^name <n> ^team B)"
                       "        (player ^name <n> ^team C) --> (halt))");
  TimeTag a = MustMake(engine, "player", {{"name", engine.Sym("x")},
                                          {"team", engine.Sym("A")}});
  MustMake(engine, "player", {{"name", engine.Sym("x")},
                              {"team", engine.Sym("B")}});
  EXPECT_EQ(engine.conflict_set().size(), 0u);
  MustMake(engine, "player", {{"name", engine.Sym("x")},
                              {"team", engine.Sym("C")}});
  EXPECT_EQ(engine.conflict_set().size(), 1u);
  ASSERT_TRUE(engine.RemoveWme(a).ok());
  EXPECT_EQ(engine.conflict_set().size(), 0u);
}

}  // namespace
}  // namespace sorel
