#include <gtest/gtest.h>

#include <unordered_map>

#include "lang/eval.h"
#include "lang/parser.h"

namespace sorel {
namespace {

/// Fixed variable environment; aggregates resolve from a map keyed by
/// "op:var".
class FakeContext : public EvalContext {
 public:
  Result<Value> ResolveVar(const std::string& name) const override {
    auto it = vars.find(name);
    if (it == vars.end()) return Status::RuntimeError("unbound <" + name + ">");
    return it->second;
  }
  Result<Value> EvalAggregate(const Expr& agg) const override {
    std::string key = std::string(AggOpName(agg.agg_op)) + ":" + agg.var;
    auto it = aggs.find(key);
    if (it == aggs.end()) return Status::RuntimeError("no aggregate " + key);
    return it->second;
  }

  std::unordered_map<std::string, Value> vars;
  std::unordered_map<std::string, Value> aggs;
};

/// Parses `src` as a rule-RHS bind expression and evaluates it.
Result<Value> EvalSource(const std::string& expr_src, const FakeContext& ctx,
                         SymbolTable* symbols) {
  auto program =
      Parse("(literalize x)(p r (x) --> (bind <out> " + expr_src + "))");
  if (!program.ok()) return program.status();
  Expr* e = program->rules[0].actions[0]->expr.get();
  // Intern symbol constants the way the compiler does.
  struct Resolver {
    SymbolTable* symbols;
    void Fix(Expr* e) {
      if (e == nullptr) return;
      if (e->kind == Expr::Kind::kConst && !e->var.empty()) {
        e->constant = e->var == "nil"
                          ? Value::Nil()
                          : Value::Symbol(symbols->Intern(e->var));
      }
      Fix(e->lhs.get());
      Fix(e->rhs.get());
    }
  };
  Resolver{symbols}.Fix(e);
  return EvalExpr(*e, ctx);
}

class EvalTest : public ::testing::Test {
 protected:
  Value Eval(const std::string& src) {
    auto r = EvalSource(src, ctx_, &symbols_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : Value::Nil();
  }
  Status EvalError(const std::string& src) {
    auto r = EvalSource(src, ctx_, &symbols_);
    EXPECT_FALSE(r.ok()) << "expected error for " << src;
    return r.ok() ? Status::Ok() : r.status();
  }

  SymbolTable symbols_;
  FakeContext ctx_;
};

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(Eval("(1 + 2)"), Value::Int(3));
  EXPECT_EQ(Eval("(7 - 2)"), Value::Int(5));
  EXPECT_EQ(Eval("(3 * 4)"), Value::Int(12));
  EXPECT_EQ(Eval("(7 / 2)"), Value::Int(3));       // integral division
  EXPECT_EQ(Eval("(7.0 / 2)"), Value::Float(3.5));
  EXPECT_EQ(Eval("(7 mod 4)"), Value::Int(3));
  EXPECT_EQ(Eval("(1 + 2.5)"), Value::Float(3.5));
}

TEST_F(EvalTest, LeftAssociativeChain) {
  EXPECT_EQ(Eval("(10 - 2 - 3)"), Value::Int(5));
  EXPECT_EQ(Eval("(2 + 3 * 4)"), Value::Int(20));  // no precedence
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_TRUE(Eval("(1 < 2)").IsTruthy());
  EXPECT_FALSE(Eval("(2 < 1)").IsTruthy());
  EXPECT_TRUE(Eval("(2 <= 2)").IsTruthy());
  EXPECT_TRUE(Eval("(3 > 2)").IsTruthy());
  EXPECT_TRUE(Eval("(2 >= 2)").IsTruthy());
  EXPECT_TRUE(Eval("(5 == 5.0)").IsTruthy());
  EXPECT_TRUE(Eval("(red <> blue)").IsTruthy());
  EXPECT_TRUE(Eval("(red == red)").IsTruthy());
  // Relational on non-numbers is false, not an error (OPS5 match rules).
  EXPECT_FALSE(Eval("(red < blue)").IsTruthy());
}

TEST_F(EvalTest, BooleansAndShortCircuit) {
  EXPECT_TRUE(Eval("((1 < 2) and (3 < 4))").IsTruthy());
  EXPECT_FALSE(Eval("((1 < 2) and (4 < 3))").IsTruthy());
  EXPECT_TRUE(Eval("((1 > 2) or (3 < 4))").IsTruthy());
  EXPECT_TRUE(Eval("(not (1 > 2))").IsTruthy());
  // Short-circuit: the erroring right operand is never evaluated.
  EXPECT_FALSE(Eval("((1 > 2) and (1 / 0))").IsTruthy());
  EXPECT_TRUE(Eval("((1 < 2) or (1 / 0))").IsTruthy());
}

TEST_F(EvalTest, VariablesAndAggregates) {
  ctx_.vars["x"] = Value::Int(42);
  ctx_.aggs["count:S"] = Value::Int(7);
  EXPECT_EQ(Eval("(<x> + 1)"), Value::Int(43));
  EXPECT_EQ(Eval("((count <S>) * 2)"), Value::Int(14));
}

TEST_F(EvalTest, Errors) {
  EXPECT_EQ(EvalError("(1 / 0)").code(), StatusCode::kRuntimeError);
  EXPECT_EQ(EvalError("(1 mod 0)").code(), StatusCode::kRuntimeError);
  EXPECT_EQ(EvalError("(1.5 mod 2)").code(), StatusCode::kRuntimeError);
  EXPECT_EQ(EvalError("(red + 1)").code(), StatusCode::kRuntimeError);
  EXPECT_EQ(EvalError("(<ghost> + 1)").code(), StatusCode::kRuntimeError);
}

TEST_F(EvalTest, NilAndConstants) {
  EXPECT_EQ(Eval("nil"), Value::Nil());
  EXPECT_TRUE(Eval("(nil == nil)").IsTruthy());
  EXPECT_FALSE(Eval("(nil == 0)").IsTruthy());
  EXPECT_EQ(Eval("42"), Value::Int(42));
}

}  // namespace
}  // namespace sorel
