// WAL framing and codec unit tests: CRC-32 vectors, append/read round
// trips, fsync batching, every torn-tail shape the recovery path must
// survive, and exact value/record/snapshot-line encodings (64-bit ints and
// doubles must round-trip bit-identically — recovery is only as good as
// the codec).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "server/codec.h"
#include "server/wal.h"

namespace sorel {
namespace server {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/sorel_wal_test_XXXXXX";
    ASSERT_NE(::mkstemp(tmpl), -1);
    path_ = tmpl;
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Reads the raw file bytes.
  std::string FileBytes() {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string out;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, got);
    std::fclose(f);
    return out;
  }

  void WriteFileBytes(const std::string& bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  std::string path_;
};

TEST(Crc32Test, KnownVectors) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  // Any corruption must change the sum.
  EXPECT_NE(Crc32("hello world"), Crc32("hello worle"));
}

TEST_F(WalTest, AppendReadRoundTrip) {
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  std::vector<std::string> payloads = {"first", "", "third with spaces",
                                       std::string("\0binary\xff", 8)};
  for (const std::string& p : payloads) {
    ASSERT_TRUE(writer.Append(p).ok());
  }
  writer.Close();

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(read->records[i].payload, payloads[i]);
  }
  EXPECT_EQ(read->torn_bytes, 0u);
  EXPECT_FALSE(read->crc_mismatch);
  // end_offsets are cumulative frame sizes.
  uint64_t expect = 0;
  for (size_t i = 0; i < payloads.size(); ++i) {
    expect += 8 + payloads[i].size();
    EXPECT_EQ(read->records[i].end_offset, expect);
  }
}

TEST_F(WalTest, MissingFileReadsEmpty) {
  std::remove(path_.c_str());
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_EQ(read->torn_bytes, 0u);
}

TEST_F(WalTest, FsyncBatching) {
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path_, /*fsync_every=*/4).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer.Append("record").ok());
  }
  // 10 appends at every-4 batching: syncs after records 4 and 8.
  EXPECT_EQ(writer.stats().fsyncs, 2u);
  EXPECT_EQ(writer.stats().records, 10u);
  ASSERT_TRUE(writer.Sync().ok());  // flushes the 2 pending
  EXPECT_EQ(writer.stats().fsyncs, 3u);
  ASSERT_TRUE(writer.Sync().ok());  // nothing pending: no extra fsync
  EXPECT_EQ(writer.stats().fsyncs, 3u);
}

TEST_F(WalTest, TruncateResetsFile) {
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  ASSERT_TRUE(writer.Append("before").ok());
  ASSERT_TRUE(writer.Truncate().ok());
  ASSERT_TRUE(writer.Append("after").ok());
  writer.Close();
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].payload, "after");
}

TEST_F(WalTest, TornHeaderDropsTail) {
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  ASSERT_TRUE(writer.Append("intact").ok());
  writer.Close();
  WriteFileBytes(FileBytes() +
                 std::string("\x05\x00", 2));  // 2 bytes of a next header

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].payload, "intact");
  EXPECT_EQ(read->torn_bytes, 2u);
  EXPECT_FALSE(read->crc_mismatch);  // short, not corrupt
}

TEST_F(WalTest, TornPayloadDropsTail) {
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  ASSERT_TRUE(writer.Append("intact").ok());
  ASSERT_TRUE(writer.Append("this record gets cut").ok());
  writer.Close();
  std::string bytes = FileBytes();
  WriteFileBytes(bytes.substr(0, bytes.size() - 5));

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->torn_bytes, 8u + std::strlen("this record gets cut") - 5);
  EXPECT_FALSE(read->crc_mismatch);
}

TEST_F(WalTest, FlippedByteIsCrcMismatch) {
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  ASSERT_TRUE(writer.Append("intact").ok());
  ASSERT_TRUE(writer.Append("damaged").ok());
  writer.Close();
  std::string bytes = FileBytes();
  bytes.back() = static_cast<char>(bytes.back() ^ 0xFF);
  WriteFileBytes(bytes);

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].payload, "intact");
  EXPECT_EQ(read->torn_bytes, 8u + std::strlen("damaged"));
  EXPECT_TRUE(read->crc_mismatch);
}

TEST_F(WalTest, WildLengthIsCrcMismatch) {
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  ASSERT_TRUE(writer.Append("intact").ok());
  writer.Close();
  // A "header" whose length field is garbage (bit-flipped high byte).
  std::string bogus = std::string("\xff\xff\xff\x7f\x00\x00\x00\x00", 8) +
                      "trailing";
  WriteFileBytes(FileBytes() + bogus);

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->torn_bytes, bogus.size());
  EXPECT_TRUE(read->crc_mismatch);
}

// --- codec ---

TEST(CodecTest, ValueRoundTripsExactly) {
  SymbolTable symbols;
  std::vector<Value> values = {
      Value::Nil(),
      Value::Int(0),
      Value::Int(-1),
      Value::Int(INT64_MAX),
      Value::Int(INT64_MIN),
      // 2^53 + 1 is where doubles lose integers — the reason ints encode
      // as decimal strings, not JSON numbers.
      Value::Int((int64_t{1} << 53) + 1),
      Value::Float(0.0),
      Value::Float(-0.0),
      Value::Float(1.0 / 3.0),
      Value::Float(1e-300),
      Value::Float(1e300),
      Value::Symbol(symbols.Intern("plain")),
      Value::Symbol(symbols.Intern("with space")),
      Value::Symbol(symbols.Intern("multi\nline")),
      Value::Symbol(symbols.Intern("pipe|and\"quote")),  // both delimiters:
      // unrepresentable in OPS5 source text, fine in the codec.
      Value::Symbol(symbols.Intern("")),
  };
  for (const Value& v : values) {
    std::string encoded = EncodeValue(v, symbols);
    auto parsed = obs::ParseJson(encoded);
    ASSERT_TRUE(parsed.ok()) << encoded << ": " << parsed.status().ToString();
    auto decoded = DecodeValue(*parsed, &symbols);
    ASSERT_TRUE(decoded.ok()) << encoded << ": "
                              << decoded.status().ToString();
    EXPECT_EQ(decoded->kind(), v.kind()) << encoded;
    if (v.is_int()) EXPECT_EQ(decoded->as_int(), v.as_int());
    if (v.is_symbol()) EXPECT_EQ(decoded->as_symbol(), v.as_symbol());
    if (v.is_float()) {
      // Bit-exact, including the sign of zero.
      uint64_t want, got;
      double vf = v.as_float(), df = decoded->as_float();
      std::memcpy(&want, &vf, sizeof(want));
      std::memcpy(&got, &df, sizeof(got));
      EXPECT_EQ(got, want) << encoded;
    }
  }
}

TEST(CodecTest, BatchEntryRoundTrip) {
  SymbolTable symbols;
  SymbolId cls = symbols.Intern("item");
  std::vector<WmChange> changes;
  WmChange add;
  add.wme = std::make_shared<const Wme>(
      cls,
      std::vector<Value>{Value::Int(7), Value::Symbol(symbols.Intern("A")),
                         Value::Nil()},
      /*time_tag=*/41);
  add.added = true;
  add.modify_pair = 39;
  changes.push_back(add);
  WmChange rm;
  rm.wme = std::make_shared<const Wme>(cls, std::vector<Value>{}, 39);
  rm.added = false;
  rm.modify_pair = 41;
  changes.push_back(rm);

  std::string payload =
      EncodeBatch(/*lsn=*/12, /*direct=*/false, changes, /*next_tag=*/44,
                  symbols);
  SymbolTable fresh;  // recovery interns into a new table
  auto entry = DecodeEntry(payload, &fresh);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  EXPECT_EQ(entry->kind, WalEntry::Kind::kBatch);
  EXPECT_EQ(entry->lsn, 12u);
  EXPECT_FALSE(entry->direct);
  EXPECT_EQ(entry->next_tag, 44);
  ASSERT_EQ(entry->changes.size(), 2u);
  EXPECT_TRUE(entry->changes[0].added);
  EXPECT_EQ(entry->changes[0].tag, 41);
  EXPECT_EQ(entry->changes[0].modify_pair, 39);
  EXPECT_EQ(entry->changes[0].cls, fresh.Find("item"));
  ASSERT_EQ(entry->changes[0].fields.size(), 3u);
  EXPECT_EQ(entry->changes[0].fields[0].as_int(), 7);
  EXPECT_EQ(fresh.Name(entry->changes[0].fields[1].as_symbol()), "A");
  EXPECT_TRUE(entry->changes[0].fields[2].is_nil());
  EXPECT_FALSE(entry->changes[1].added);
  EXPECT_EQ(entry->changes[1].tag, 39);
  EXPECT_EQ(entry->changes[1].modify_pair, 41);
}

TEST(CodecTest, RunEntryRoundTrip) {
  SymbolTable symbols;
  auto entry = DecodeEntry(EncodeRun(/*lsn=*/3, /*max_firings=*/-1),
                           &symbols);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->kind, WalEntry::Kind::kRun);
  EXPECT_EQ(entry->lsn, 3u);
  EXPECT_EQ(entry->max_firings, -1);
}

TEST(CodecTest, MalformedEntriesError) {
  SymbolTable symbols;
  EXPECT_FALSE(DecodeEntry("not json", &symbols).ok());
  EXPECT_FALSE(DecodeEntry("{}", &symbols).ok());
  EXPECT_FALSE(DecodeEntry("{\"t\":\"mystery\",\"lsn\":\"1\"}", &symbols)
                   .ok());
  // Tags must be strings (numbers would silently lose 64-bit precision).
  EXPECT_FALSE(
      DecodeEntry("{\"t\":\"batch\",\"lsn\":\"1\",\"direct\":false,"
                  "\"next_tag\":7,\"changes\":[]}",
                  &symbols)
          .ok());
}

TEST(CodecTest, SnapshotLinesRoundTrip) {
  SymbolTable symbols;
  SnapshotHeader header;
  header.lsn = 99;
  header.next_tag = 1234;
  auto header2 = DecodeSnapshotHeader(EncodeSnapshotHeader(header));
  ASSERT_TRUE(header2.ok());
  EXPECT_EQ(header2->lsn, 99u);
  EXPECT_EQ(header2->next_tag, 1234);

  Wme wme(symbols.Intern("item"),
          {Value::Nil(), Value::Float(2.5), Value::Symbol(symbols.Intern(
                                                "line\nbreak"))},
          77);
  auto change = DecodeSnapshotWme(EncodeSnapshotWme(wme, symbols), &symbols);
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(change->tag, 77);
  EXPECT_EQ(change->cls, symbols.Find("item"));
  ASSERT_EQ(change->fields.size(), 3u);
  EXPECT_EQ(symbols.Name(change->fields[2].as_symbol()), "line\nbreak");

  CsEntrySnapshot entry;
  entry.rule = "my-rule";
  entry.rows = {{5, 2}, {9, 1}};
  entry.fired = true;
  auto entry2 = DecodeSnapshotCsEntry(EncodeSnapshotCsEntry(entry));
  ASSERT_TRUE(entry2.ok());
  EXPECT_EQ(entry2->rule, "my-rule");
  EXPECT_EQ(entry2->rows, entry.rows);
  EXPECT_TRUE(entry2->fired);
  EXPECT_EQ(entry2->Key(), entry.Key());

  EXPECT_TRUE(CheckSnapshotEnd(EncodeSnapshotEnd(3, 2), 3, 2).ok());
  // A count mismatch means the snapshot was torn mid-write.
  EXPECT_FALSE(CheckSnapshotEnd(EncodeSnapshotEnd(3, 2), 3, 1).ok());

  auto kind = SnapshotLineKind(EncodeSnapshotHeader(header));
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, "header");
  EXPECT_FALSE(SnapshotLineKind("{\"t\":\"weird\"}").ok());
}

TEST(CodecTest, CsEntryKeyDistinguishesRowOrder) {
  // Row tags are recorded in CE order precisely because a symmetric join
  // can give two different instantiations the same tag multiset.
  CsEntrySnapshot a, b;
  a.rule = b.rule = "r";
  a.rows = {{1, 2}};
  b.rows = {{2, 1}};
  EXPECT_NE(a.Key(), b.Key());
}

}  // namespace
}  // namespace server
}  // namespace sorel
